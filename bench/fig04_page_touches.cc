/**
 * @file
 * Reproduces Figure 4: among pages accessed outside the caches, the
 * share touched exactly once, exactly twice, and three or more times
 * (plus the share of external accesses falling on each class).
 *
 * Uses sparse sampling (see kSparseSamplerPeriod) to match the paper's
 * well-below-one-sample-per-page density; the paper reports 33-80% of
 * external accesses touching single-touch pages, with the single-touch
 * page share around 60% on average.
 */

#include "bench_common.h"

using namespace memtier;

int
main()
{
    benchHeader("Figure 4 -- page accesses with 1 / 2 / 3+ touches",
                "Section 5.2, Figure 4");

    TextTable table({"Workload", "pages 1", "pages 2", "pages 3+",
                     "accesses 1", "accesses 2", "accesses 3+",
                     "pages"});
    double sum_single = 0.0;
    int n = 0;
    for (const WorkloadSpec &w : paperWorkloads(benchScale())) {
        const RunResult r =
            runBench(w, Mode::AutoNuma, kSparseSamplerPeriod);
        const TouchBuckets tb = pageTouchBuckets(r.samples);
        table.addRow({w.name(), pct(tb.pagesFrac[0]),
                      pct(tb.pagesFrac[1]), pct(tb.pagesFrac[2]),
                      pct(tb.accessFrac[0]), pct(tb.accessFrac[1]),
                      pct(tb.accessFrac[2]), fmtCount(tb.touchedPages)});
        sum_single += tb.pagesFrac[0];
        ++n;
    }
    table.print(std::cout);
    std::cout << "\nAverage single-touch page share: "
              << pct(sum_single / n)
              << " (paper: ~60% average).\nExpected shape: the "
                 "single-touch class dominates the page population, so "
                 "a\nreactive two-touch policy like AutoNUMA cannot "
                 "classify most pages as hot.\n";
    return 0;
}

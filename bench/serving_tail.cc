/**
 * @file
 * Tail-latency characterization of the data-serving tier: the KV and
 * LSM applications replayed under the registry's tiering policies,
 * with and without THP, reporting p50/p99/p999 completion latency and
 * SLO-violation fractions per traffic phase (off-peak / peak /
 * connection storm).
 *
 * This is the serving-scenario counterpart of the paper's graph
 * sweeps: graph analytics measures throughput (execution time), a
 * data-serving tier lives and dies by its tail, which is exactly where
 * NVM-resident hot pages and migration stalls surface first.
 *
 * Usage:
 *   serving_tail [--apps=kv,lsm] [--policies=P1,P2,...] [--no-thp]
 *                [--faults PLAN] [--trials=N]
 *                [--out=PATH.json] [--csv=PATH.csv]
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "base/logging.h"
#include "bench_common.h"
#include "fault/fault_plan.h"
#include "policy/policy_registry.h"

using namespace memtier;

namespace {

/** Simulated cycles -> microseconds. */
double
usec(double cycles)
{
    return cycles * 1e6 / static_cast<double>(kCyclesPerSecond);
}

/** One (app, policy, thp) measurement. */
struct Cell
{
    std::string workload;
    std::string policy;
    bool thp = false;
    RunResult r;
};

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

}  // namespace

int
main(int argc, char **argv)
{
    // Serving stores are denser than graphs: a keyspace four scales
    // below the graph default keeps the same footprint:DRAM pressure.
    const int scale = std::max(12, benchScale() - 4);

    std::vector<std::string> apps = {"kv", "lsm"};
    std::vector<std::string> policies = {"autonuma", "exchange",
                                         "dram-only", "interleave"};
    std::vector<bool> thp_values = {false, true};
    FaultPlan faults;
    int trials = 2;
    std::string out_path = "BENCH_serving.json";
    std::string csv_path = "results/serving_tail.csv";

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--apps=", 0) == 0) {
            apps = splitCommas(arg.substr(7));
        } else if (arg.rfind("--policies=", 0) == 0) {
            policies = splitCommas(arg.substr(11));
        } else if (arg == "--no-thp") {
            thp_values = {false};
        } else if (arg.rfind("--trials=", 0) == 0) {
            trials = std::atoi(arg.c_str() + 9);
        } else if (arg == "--faults" && i + 1 < argc) {
            faults = FaultPlan::parseOrDie(argv[++i]);
        } else if (arg.rfind("--faults=", 0) == 0) {
            faults = FaultPlan::parseOrDie(arg.substr(9));
        } else if (arg.rfind("--out=", 0) == 0) {
            out_path = arg.substr(6);
        } else if (arg.rfind("--csv=", 0) == 0) {
            csv_path = arg.substr(6);
        } else {
            std::cerr << "usage: serving_tail [--apps=kv,lsm]"
                         " [--policies=P1,...] [--no-thp]"
                         " [--faults PLAN] [--trials=N]"
                         " [--out=PATH.json] [--csv=PATH.csv]\n";
            return 2;
        }
    }
    if (apps.empty() || policies.empty() || trials <= 0) {
        std::cerr << "serving_tail: bad sweep parameters\n";
        return 2;
    }
    for (const std::string &p : policies) {
        if (!PolicyRegistry::instance().contains(p))
            fatal("unknown policy '%s'", p.c_str());
    }

    benchHeader("data-serving tail latency under tiering policies",
                "serving-scenario extension of the paper's workload "
                "matrix (Section 4.1)");
    std::cout << "serving scale:        2^" << scale << " keys, "
              << trials * 5000 << " requests, "
              << (thp_values.size() > 1 ? "thp off+on" : "thp off")
              << "\n";
    if (faults.anyEnabled())
        std::cout << "fault plan:           " << faults.summary() << "\n";

    ServingSpec ref_spec;  // For the SLO threshold only.
    const Cycles slo = ref_spec.sloCycles();

    std::vector<Cell> cells;
    for (const std::string &app : apps) {
        for (const bool thp : thp_values) {
            for (const std::string &policy : policies) {
                WorkloadSpec w;
                if (app == "kv") {
                    w.app = App::KV;
                } else if (app == "lsm") {
                    w.app = App::LSM;
                } else {
                    fatal("unknown serving app '%s'", app.c_str());
                }
                w.kind = GraphKind::Kron;  // Zipfian keys.
                w.scale = scale;
                w.trials = trials;

                RunConfig rc;
                rc.workload = w;
                rc.policy = policy;
                rc.sampling = false;
                rc.sys.thp.enabled = thp;
                rc.sys.faults = faults;
                rc.sys.dram =
                    makeDramParams(scaledCapacity(24 * kMiB, scale));
                rc.sys.nvm =
                    makeNvmParams(scaledCapacity(96 * kMiB, scale));
                std::cerr << "running " << w.name() << " [" << policy
                          << (thp ? ", thp" : "") << "]...\n";

                Cell c;
                c.workload = w.name();
                c.policy = policy;
                c.thp = thp;
                c.r = runWorkload(rc);
                MEMTIER_ASSERT(c.r.hasServing,
                               "serving run produced no report");
                cells.push_back(std::move(c));
            }
        }
    }

    TextTable table({"workload", "policy", "thp", "p50 (us)", "p99 (us)",
                     "p999 (us)", "slo viol", "storm p99", "storm viol"});
    for (const Cell &c : cells) {
        const ServingReport &s = c.r.serving;
        const auto &storm =
            s.phaseLatency[static_cast<int>(ServePhase::Storm)];
        table.addRow(
            {c.workload, c.policy, c.thp ? "on" : "off",
             num(usec(s.latency.percentile(0.50)), 2),
             num(usec(s.latency.percentile(0.99)), 2),
             num(usec(s.latency.percentile(0.999)), 2),
             num(s.sloViolationFraction(slo), 4),
             num(usec(storm.percentile(0.99)), 2),
             num(storm.violationFraction(slo), 4)});
    }
    table.print(std::cout);

    std::ofstream csv(csv_path);
    if (!csv)
        fatal("cannot open %s", csv_path.c_str());
    csv << "workload,policy,thp,requests,p50_usec,p99_usec,p999_usec,"
           "mean_usec,max_usec,slo_violation,offpeak_p99_usec,"
           "peak_p99_usec,storm_p99_usec,offpeak_violation,"
           "peak_violation,storm_violation,prefill_sec,total_sec,"
           "checksum\n";
    for (const Cell &c : cells) {
        const ServingReport &s = c.r.serving;
        csv << c.workload << "," << c.policy << ","
            << (c.thp ? 1 : 0) << "," << s.requests << ","
            << usec(s.latency.percentile(0.50)) << ","
            << usec(s.latency.percentile(0.99)) << ","
            << usec(s.latency.percentile(0.999)) << ","
            << usec(s.latency.mean()) << ","
            << usec(static_cast<double>(s.latency.max())) << ","
            << s.sloViolationFraction(slo);
        for (int ph = 0; ph < kNumServePhases; ++ph)
            csv << "," << usec(s.phaseLatency[ph].percentile(0.99));
        for (int ph = 0; ph < kNumServePhases; ++ph)
            csv << "," << s.phaseLatency[ph].violationFraction(slo);
        csv << "," << s.prefillSeconds << "," << c.r.totalSeconds << ","
            << c.r.outputChecksum << "\n";
    }
    csv.close();

    std::ofstream json(out_path);
    if (!json)
        fatal("cannot open %s", out_path.c_str());
    json << "{\n"
         << "  \"bench\": \"serving_tail\",\n"
         << "  \"scale\": " << scale << ",\n"
         << "  \"requests\": " << trials * 5000 << ",\n"
         << "  \"slo_usec\": " << ref_spec.sloMicros << ",\n"
         << "  \"cells\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const Cell &c = cells[i];
        const ServingReport &s = c.r.serving;
        json << "    {\"workload\": \"" << c.workload
             << "\", \"policy\": \"" << c.policy << "\", \"thp\": "
             << (c.thp ? "true" : "false") << ",\n"
             << "     \"p50_usec\": " << usec(s.latency.percentile(0.50))
             << ", \"p99_usec\": " << usec(s.latency.percentile(0.99))
             << ", \"p999_usec\": "
             << usec(s.latency.percentile(0.999)) << ",\n"
             << "     \"mean_usec\": " << usec(s.latency.mean())
             << ", \"slo_violation\": " << s.sloViolationFraction(slo)
             << ", \"checksum\": " << c.r.outputChecksum << ",\n"
             << "     \"phases\": {";
        for (int ph = 0; ph < kNumServePhases; ++ph) {
            const auto &h = s.phaseLatency[ph];
            json << (ph ? ", " : "") << "\""
                 << servePhaseName(static_cast<ServePhase>(ph))
                 << "\": {\"requests\": " << h.count()
                 << ", \"p99_usec\": " << usec(h.percentile(0.99))
                 << ", \"violation\": " << h.violationFraction(slo)
                 << "}";
        }
        json << "}}" << (i + 1 < cells.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";

    std::cout << "\nwrote " << out_path << " and " << csv_path << " ("
              << cells.size() << " cells)\n";
    return 0;
}

/**
 * @file
 * Reproduces Figure 8: the access pattern of the hottest-on-NVM object
 * of bc_kron -- sampled (time, page-within-object) points over the full
 * run, then zoomed into a short window where the apparent structure
 * dissolves into random access (Finding 4).
 *
 * Instead of a scatter plot we print coarse occupancy rasters plus a
 * quantitative randomness check: the mean absolute page stride between
 * consecutive samples inside the zoom window.
 */

#include <algorithm>
#include <cmath>
#include <vector>

#include "bench_common.h"

using namespace memtier;

namespace {

/** Print a time x page-bucket raster of sample density. */
void
raster(const std::vector<MemorySample> &samples,
       const AllocationRecord &rec, double t0, double t1, int cols,
       int rows)
{
    const std::uint64_t pages = roundUpPages(rec.bytes);
    std::vector<std::vector<int>> grid(
        static_cast<std::size_t>(rows),
        std::vector<int>(static_cast<std::size_t>(cols), 0));
    for (const auto &s : samples) {
        const double t = s.seconds();
        if (t < t0 || t >= t1)
            continue;
        if (s.vaddr < rec.start || s.vaddr >= rec.start + rec.bytes)
            continue;
        const auto col = static_cast<std::size_t>(
            (t - t0) / (t1 - t0) * cols);
        const auto row = static_cast<std::size_t>(
            static_cast<double>(pageOf(s.vaddr) - pageOf(rec.start)) /
            static_cast<double>(pages) * rows);
        ++grid[std::min<std::size_t>(row, rows - 1)]
              [std::min<std::size_t>(col, cols - 1)];
    }
    for (int row = rows - 1; row >= 0; --row) {
        std::cout << "  |";
        for (int col = 0; col < cols; ++col) {
            const int density = grid[static_cast<std::size_t>(row)]
                                    [static_cast<std::size_t>(col)];
            std::cout << (density == 0 ? ' '
                                       : (density < 3 ? '.'
                                                      : (density < 10
                                                             ? 'o'
                                                             : '#')));
        }
        std::cout << "|\n";
    }
    std::cout << "   t=" << num(t0, 3) << "s"
              << std::string(static_cast<std::size_t>(
                                 std::max(0, cols - 18)),
                             ' ')
              << "t=" << num(t1, 3) << "s  (rows: page range 0.."
              << pages << ")\n";
}

}  // namespace

int
main()
{
    benchHeader("Figure 8 -- access pattern of the hottest NVM object "
                "(bc_kron)",
                "Section 6.4, Figures 8a/8b + Finding 4");

    WorkloadSpec w;
    w.app = App::BC;
    w.kind = GraphKind::Kron;
    w.scale = benchScale();
    w.trials = 3;
    const RunResult r = runBench(w);

    const auto counts = objectAccessCounts(r.samples, r.tracker);
    const ObjectId hottest = hottestNvmObject(counts);
    const AllocationRecord *rec =
        hottest != kNoObject ? r.tracker.find(hottest) : nullptr;
    if (rec == nullptr) {
        std::cout << "no NVM-sampled object found\n";
        return 0;
    }
    std::cout << "\nhottest NVM object: id " << hottest << " (site "
              << rec->site << ", " << fmtBytes(rec->bytes) << ")\n";

    const double start = cyclesToSeconds(rec->allocTime);
    const double end = rec->live() ? r.totalSeconds
                                   : cyclesToSeconds(rec->freeTime);
    std::cout << "\n(a) full lifetime raster:\n";
    raster(r.samples, *rec, start, end, 64, 16);

    // Zoom window: 10% of the lifetime, centred.
    const double mid = 0.5 * (start + end);
    const double half = 0.05 * (end - start);
    std::cout << "\n(b) zoom into [" << num(mid - half, 3) << ", "
              << num(mid + half, 3) << ") s:\n";
    raster(r.samples, *rec, mid - half, mid + half, 64, 16);

    // Quantitative randomness: mean |stride| between consecutive
    // same-object samples in the zoom window, in pages.
    std::vector<std::uint64_t> zoom_pages;
    for (const auto &s : r.samples) {
        const double t = s.seconds();
        if (t < mid - half || t >= mid + half)
            continue;
        if (s.vaddr < rec->start || s.vaddr >= rec->start + rec->bytes)
            continue;
        zoom_pages.push_back(pageOf(s.vaddr) - pageOf(rec->start));
    }
    double stride_sum = 0.0;
    for (std::size_t i = 1; i < zoom_pages.size(); ++i) {
        stride_sum += std::abs(static_cast<double>(zoom_pages[i]) -
                               static_cast<double>(zoom_pages[i - 1]));
    }
    const double mean_stride =
        zoom_pages.size() > 1
            ? stride_sum / static_cast<double>(zoom_pages.size() - 1)
            : 0.0;
    const double object_pages =
        static_cast<double>(roundUpPages(rec->bytes));
    std::cout << "\nzoom-window samples: " << zoom_pages.size()
              << ", mean |page stride| between consecutive samples: "
              << num(mean_stride, 1) << " of " << object_pages
              << " pages (" << pct(mean_stride / object_pages)
              << " of the object)\n";
    std::cout << "\nExpected shape: the full-lifetime raster looks "
                 "banded/structured, but the\nzoom shows accesses "
                 "scattered across the whole page range -- a random "
                 "walk with\na mean stride a large fraction of the "
                 "object (Finding 4: pages of the hottest\nobjects "
                 "cannot be characterized as hot).\n";
    return 0;
}

/**
 * @file
 * Reproduces Table 1: for each of the six workloads, the percentage of
 * memory samples that hit outside the caches, and the DRAM/NVM split of
 * those external samples, under AutoNUMA.
 *
 * Paper values for comparison (outside / DRAM / NVM):
 *   bc_kron 49.1 / 67.69 / 32.31      bc_urand 28.5 / 78.18 / 21.82
 *   bfs_kron 37.4 / 93.87 / 6.13      bfs_urand 27.1 / 68.83 / 31.17
 *   cc_kron 46.9 / 95.08 / 4.92       cc_urand 48.6 / 91.48 / 8.52
 */

#include "bench_common.h"

using namespace memtier;

int
main()
{
    benchHeader("Table 1 -- where external samples hit",
                "Section 6.1, Table 1");

    TextTable table({"Workload", "Outside Cache", "Pages in DRAM",
                     "Pages in NVM", "ext samples"});
    for (const WorkloadSpec &w : paperWorkloads(benchScale())) {
        const RunResult r = runBench(w);
        const LevelShares ls = levelShares(r.samples);
        const ExternalSplit es = externalSplit(r.samples);
        table.addRow({w.name(), pct(ls.externalFrac), pct(es.dramFrac, 2),
                      pct(es.nvmFrac, 2), fmtCount(es.externalSamples)});
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: every workload has a significant "
                 "external fraction (paper: 27-49%),\nDRAM holds the "
                 "majority of external hits, and the NVM share depends "
                 "on the\napplication-dataset combination rather than "
                 "either alone.\n";
    return 0;
}

/**
 * @file
 * Tuned-vs-default comparison for the online autotune policy: every
 * workload runs twice from the same construction-time configuration --
 * once under plain "autonuma", once under "autotune" wrapping autonuma
 * -- and the bench reports end-to-end speedup plus the tuner's
 * trajectory counters and the effective (post-tuning) tunable values.
 * This is the "From Good to Great" experiment run online: the starting
 * point is the stock configuration and the hill climber has to find
 * the better scan cadence / promotion budget while the workload runs.
 *
 * Usage:
 *   autotune_sweep [--workload APP:KIND]... [--trials=N] [--seed=S]
 *                  [--epoch-ms=MS] [--out=PATH.json] [--csv=PATH.csv]
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "base/logging.h"
#include "bench_common.h"
#include "policy/policy_registry.h"

using namespace memtier;

namespace {

/** One workload measured under both arms. */
struct Cell
{
    std::string workload;
    RunResult def;    ///< Plain autonuma, stock tunables.
    RunResult tuned;  ///< autotune wrapping autonuma, same start.
};

std::uint64_t
counter(const RunResult &r, const std::string &key)
{
    for (const auto &[name, value] : r.policyCounters) {
        if (name == key)
            return value;
    }
    return 0;
}

std::string
joinedEffective(const RunResult &r)
{
    std::string out;
    for (const auto &[key, value] : r.effectiveTunables) {
        if (!out.empty())
            out += ";";
        out += key + "=" + value;
    }
    return out;
}

App
parseApp(const std::string &s)
{
    if (s == "bc") return App::BC;
    if (s == "bfs") return App::BFS;
    if (s == "cc") return App::CC;
    if (s == "pr") return App::PR;
    if (s == "sssp") return App::SSSP;
    if (s == "kv") return App::KV;
    if (s == "lsm") return App::LSM;
    fatal("unknown app '%s' (expected bc, bfs, cc, pr, sssp, kv or lsm)",
          s.c_str());
}

GraphKind
parseKind(const std::string &s)
{
    if (s == "kron") return GraphKind::Kron;
    if (s == "urand") return GraphKind::Urand;
    fatal("unknown graph kind '%s' (expected kron or urand)", s.c_str());
}

WorkloadSpec
parseWorkload(const std::string &s, int scale, int trials)
{
    const std::size_t colon = s.find(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= s.size())
        fatal("malformed workload '%s' (expected APP:KIND)", s.c_str());
    WorkloadSpec w;
    w.app = parseApp(s.substr(0, colon));
    w.kind = parseKind(s.substr(colon + 1));
    w.scale = scale;
    w.trials = trials;
    return w;
}

}  // namespace

int
main(int argc, char **argv)
{
    const int scale = std::max(12, benchScale() - 4);

    std::vector<std::string> workload_names;
    int trials = 8;
    std::uint64_t seed = 42;
    double epoch_ms = 0.5;
    std::string out_path = "BENCH_autotune.json";
    std::string csv_path = "results/autotune_sweep.csv";

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value_of = [&](const std::string &flag) -> std::string {
            if (arg.size() > flag.size() && arg[flag.size()] == '=')
                return arg.substr(flag.size() + 1);
            if (i + 1 >= argc)
                fatal("%s needs a value", flag.c_str());
            return argv[++i];
        };
        if (arg.rfind("--workload", 0) == 0) {
            workload_names.push_back(value_of("--workload"));
        } else if (arg.rfind("--trials", 0) == 0) {
            trials = std::stoi(value_of("--trials"));
        } else if (arg.rfind("--seed", 0) == 0) {
            seed = std::stoull(value_of("--seed"));
        } else if (arg.rfind("--epoch-ms", 0) == 0) {
            epoch_ms = std::stod(value_of("--epoch-ms"));
        } else if (arg.rfind("--out", 0) == 0) {
            out_path = value_of("--out");
        } else if (arg.rfind("--csv", 0) == 0) {
            csv_path = value_of("--csv");
        } else {
            std::cerr << "usage: autotune_sweep [--workload APP:KIND]..."
                         " [--trials=N] [--seed=S] [--epoch-ms=MS]"
                         " [--out=PATH.json] [--csv=PATH.csv]\n";
            return 2;
        }
    }
    if (workload_names.empty()) {
        workload_names = {"pr:kron", "bc:kron", "cc:kron", "kv:kron",
                          "lsm:kron"};
    }
    if (trials <= 0)
        fatal("--trials needs a positive count");

    // Both arms start from the identical mistuned configuration -- a
    // sluggish scan and a starved promotion budget, the kind of stock
    // setting "From Good to Great" shows admins actually run with. The
    // tuned arm may then move any of the base's registered tunables
    // while the workload runs; the default arm is stuck with them.
    const std::vector<std::string> base_tunables = {
        "scan_period_ms=2", "adjust_period_ms=2", "rate_limit_kib=128"};
    std::ostringstream meta;
    meta << "epoch_ms=" << epoch_ms;
    const std::string epoch_assignment = meta.str();

    benchHeader("online autotuning vs. the stock configuration",
                "parameter-tuning methodology for tiered-memory "
                "kernels, applied online");
    std::cout << "tuner:                base=autonuma, " << epoch_assignment
              << ", seed=" << seed << "\n";

    std::vector<Cell> cells;
    for (const std::string &name : workload_names) {
        const WorkloadSpec w = parseWorkload(name, scale, trials);

        RunConfig rc;
        rc.workload = w;
        rc.sampling = false;
        // One third of the standard testbed's DRAM: placement quality
        // has to matter for parameter tuning to have any headroom, so
        // this sweep runs under real capacity pressure.
        rc.sys.dram = makeDramParams(scaledCapacity(8 * kMiB, scale));
        rc.sys.nvm = makeNvmParams(scaledCapacity(96 * kMiB, scale));

        Cell c;
        c.workload = w.name();

        std::cerr << "running " << c.workload << " [autonuma]...\n";
        rc.policy = "autonuma";
        rc.tunables = base_tunables;
        c.def = runWorkload(rc);

        std::cerr << "running " << c.workload << " [autotune]...\n";
        rc.policy = "autotune";
        rc.tunables = base_tunables;
        rc.tunables.push_back("base=autonuma");
        rc.tunables.push_back(epoch_assignment);
        rc.tunables.push_back("seed=" + std::to_string(seed));
        // Aggressive climb: the mistuned start is far from the optimum
        // (the promotion budget alone is off by an order of magnitude),
        // so take coarse steps and accept any measurable gain.
        rc.tunables.push_back("step=0.5");
        rc.tunables.push_back("min_gain=0.01");
        c.tuned = runWorkload(rc);

        MEMTIER_ASSERT(c.def.outputChecksum == c.tuned.outputChecksum,
                       "tuning changed application output");
        cells.push_back(std::move(c));
    }

    TextTable table({"workload", "default (s)", "tuned (s)", "speedup",
                     "applied", "accepted", "reverted"});
    for (const Cell &c : cells) {
        const double speedup = c.def.totalSeconds / c.tuned.totalSeconds;
        table.addRow({c.workload, num(c.def.totalSeconds, 4),
                      num(c.tuned.totalSeconds, 4), num(speedup, 3),
                      fmtCount(counter(c.tuned, "tuner_applied")),
                      fmtCount(counter(c.tuned, "tuner_accepted")),
                      fmtCount(counter(c.tuned, "tuner_reverted"))});
    }
    table.print(std::cout);

    std::ofstream csv(csv_path);
    if (!csv)
        fatal("cannot open %s", csv_path.c_str());
    csv << "workload,default_seconds,tuned_seconds,speedup,"
           "tuner_epochs,tuner_applied,tuner_accepted,tuner_reverted,"
           "effective_tunables\n";
    for (const Cell &c : cells) {
        csv << c.workload << "," << c.def.totalSeconds << ","
            << c.tuned.totalSeconds << ","
            << c.def.totalSeconds / c.tuned.totalSeconds << ","
            << counter(c.tuned, "tuner_epochs") << ","
            << counter(c.tuned, "tuner_applied") << ","
            << counter(c.tuned, "tuner_accepted") << ","
            << counter(c.tuned, "tuner_reverted") << ","
            << joinedEffective(c.tuned) << "\n";
    }
    csv.close();

    std::ofstream json(out_path);
    if (!json)
        fatal("cannot open %s", out_path.c_str());
    json << "{\n"
         << "  \"bench\": \"autotune_sweep\",\n"
         << "  \"scale\": " << scale << ",\n"
         << "  \"seed\": " << seed << ",\n"
         << "  \"epoch_ms\": " << epoch_ms << ",\n"
         << "  \"cells\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const Cell &c = cells[i];
        json << "    {\"workload\": \"" << c.workload
             << "\", \"default_seconds\": " << c.def.totalSeconds
             << ", \"tuned_seconds\": " << c.tuned.totalSeconds
             << ",\n     \"speedup\": "
             << c.def.totalSeconds / c.tuned.totalSeconds
             << ", \"tuner_epochs\": " << counter(c.tuned, "tuner_epochs")
             << ", \"tuner_applied\": "
             << counter(c.tuned, "tuner_applied")
             << ", \"tuner_accepted\": "
             << counter(c.tuned, "tuner_accepted")
             << ", \"tuner_reverted\": "
             << counter(c.tuned, "tuner_reverted")
             << ",\n     \"effective\": \"" << joinedEffective(c.tuned)
             << "\"}" << (i + 1 < cells.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";

    std::cout << "\nwrote " << out_path << " and " << csv_path << " ("
              << cells.size() << " cells)\n";
    return 0;
}

/**
 * @file
 * Reproduces Figure 11 -- the paper's headline result: execution-time
 * improvement of the object-level static mapping over AutoNUMA for all
 * six workloads, plus the spill variants (cc_kron*, cc_urand*).
 *
 * Paper: 21% average / up to 51% improvement; cc workloads regress
 * without spilling (-6% cc_kron) and recover with it (+2%); bc_kron's
 * NVM samples drop by 79%.
 */

#include "bench_common.h"

using namespace memtier;

int
main()
{
    benchHeader("Figure 11 -- object-level static mapping vs. AutoNUMA",
                "Section 7, Figure 11");

    TextTable table({"Workload", "autonuma (s)", "object (s)",
                     "improvement", "NVM sample change", "checksum"});
    double sum_improv = 0.0;
    double max_improv = 0.0;
    int n = 0;

    for (const WorkloadSpec &w : paperWorkloads(benchScale())) {
        const RunResult base = runBench(w);
        const std::uint64_t dram_capacity =
            scaledCapacity(24 * kMiB, w.scale);  // As runBench sets.
        const PlacementPlan plan =
            planFromProfile(base, dram_capacity, false);
        const RunResult obj =
            runBench(w, Mode::ObjectStatic, 61, &plan);

        const double improv =
            1.0 - obj.totalSeconds / base.totalSeconds;
        sum_improv += improv;
        max_improv = std::max(max_improv, improv);
        ++n;

        const ExternalSplit eb = externalSplit(base.samples);
        const ExternalSplit eo = externalSplit(obj.samples);
        const double nvm_base =
            eb.nvmFrac * static_cast<double>(eb.externalSamples);
        const double nvm_obj =
            eo.nvmFrac * static_cast<double>(eo.externalSamples);
        const double nvm_change =
            nvm_base > 0.0 ? nvm_obj / nvm_base - 1.0 : 0.0;

        table.addRow({w.name(), num(base.totalSeconds, 3),
                      num(obj.totalSeconds, 3), pct(improv),
                      pct(nvm_change), base.outputChecksum ==
                                               obj.outputChecksum
                                           ? "ok"
                                           : "MISMATCH"});

        // Spill variants for the cc workloads (the starred bars).
        if (w.app == App::CC) {
            const PlacementPlan spill_plan =
                planFromProfile(base, dram_capacity, true);
            const RunResult spill =
                runBench(w, Mode::ObjectSpill, 61, &spill_plan);
            const double improv2 =
                1.0 - spill.totalSeconds / base.totalSeconds;
            table.addRow({w.name() + "*", num(base.totalSeconds, 3),
                          num(spill.totalSeconds, 3), pct(improv2),
                          "-", base.outputChecksum ==
                                       spill.outputChecksum
                                   ? "ok"
                                   : "MISMATCH"});
        }
    }
    table.print(std::cout);

    std::cout << "\naverage improvement: " << pct(sum_improv / n)
              << " (paper: 21% avg), max: " << pct(max_improv)
              << " (paper: 51% max)\n";
    std::cout << "Expected shape: the object-level mapping wins "
                 "overall by cutting NVM accesses\n(the paper's "
                 "bc_kron: -79% NVM samples -> 41% faster); the spill "
                 "variants (cc*)\nimprove on whole-object assignment "
                 "by using leftover DRAM capacity.\n";
    return 0;
}

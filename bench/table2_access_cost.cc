/**
 * @file
 * Reproduces Table 2: the share of total external access *cost* (sum of
 * sampled latencies, in cycles) spent on DRAM vs. NVM per workload.
 *
 * Paper values (DRAM cost / NVM cost):
 *   bc_kron 37.53 / 62.47     bc_urand 62.95 / 37.05
 *   bfs_kron 79.81 / 20.19    bfs_urand 28.20 / 71.80
 *   cc_kron 89.51 / 10.49     cc_urand 80.30 / 19.70
 */

#include <algorithm>
#include <vector>

#include "bench_common.h"

using namespace memtier;

int
main()
{
    benchHeader("Table 2 -- external access cost split",
                "Section 6.1, Table 2");

    struct Row
    {
        std::string name;
        CostSplit cost;
        ExternalSplit access;
    };
    std::vector<Row> rows;
    for (const WorkloadSpec &w : paperWorkloads(benchScale())) {
        const RunResult r = runBench(w);
        rows.push_back({w.name(), externalCostSplit(r.samples),
                        externalSplit(r.samples)});
    }
    // The paper orders Table 2 by descending NVM cost share.
    std::sort(rows.begin(), rows.end(), [](const Row &a, const Row &b) {
        return a.cost.nvmCostFrac > b.cost.nvmCostFrac;
    });

    TextTable table({"Application", "DRAM Access Cost", "NVM Access Cost",
                     "NVM access share", "cost amplification"});
    for (const Row &row : rows) {
        const double amp =
            row.access.nvmFrac > 0.0
                ? row.cost.nvmCostFrac / row.access.nvmFrac
                : 0.0;
        table.addRow({row.name, pct(row.cost.dramCostFrac, 2),
                      pct(row.cost.nvmCostFrac, 2),
                      pct(row.access.nvmFrac, 2), num(amp, 2) + "x"});
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: the NVM cost share always exceeds "
                 "the NVM access share\n(the paper's bc_kron/bfs_urand "
                 "spend >half their external cost on ~1/3 of\naccesses) "
                 "-- the amplification column must be > 1x everywhere.\n";
    return 0;
}

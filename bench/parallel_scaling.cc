/**
 * @file
 * Host-thread and copy-worker scaling of the multi-threaded executor:
 * the same PageRank run executed at 1/2/4/8 host threads (wall-clock
 * accesses/second; every run must produce the same application
 * checksum), plus the migration copy engine's effective bandwidth on a
 * deterministic huge-promotion storm at 1/2/4/8 copy workers (simulated
 * GB/s -- identical on any machine, which is what the CI gate keys on:
 * >= 2x at 4 workers).
 *
 * Usage:
 *   parallel_scaling [--scale=N] [--trials=N] [--reps=N]
 *                    [--threads=A,B,...] [--out=PATH.json]
 *
 * --out writes a machine-readable JSON record (BENCH_parallel.json in
 * the CI flow). "host_cores" records the machine's core count so the
 * gate can skip wall-clock thresholds on starved runners.
 */

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "base/logging.h"
#include "exp/runner.h"
#include "os/kernel.h"
#include "os/physical_memory.h"

using namespace memtier;

namespace {

/** Shootdown sink for the kernel-level migration storm. */
class NullShootdown : public TlbShootdownClient
{
  public:
    void tlbShootdown(PageNum) override {}
    void tlbShootdownHuge(PageNum) override {}
};

RunConfig
benchConfig(int scale, int trials, std::uint32_t host_threads)
{
    RunConfig rc;
    rc.workload.app = App::PR;
    rc.workload.kind = GraphKind::Kron;
    rc.workload.scale = scale;
    rc.workload.trials = trials;
    rc.sampling = false;  // Observers force the serial path by design.
    rc.sys.hostThreads = host_threads;
    return rc;
}

/** Wall-clock seconds of one runWorkload invocation. */
double
timedRun(const RunConfig &rc, RunResult &out)
{
    const auto t0 = std::chrono::steady_clock::now();
    out = runWorkload(rc);
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

/**
 * Deterministic huge-promotion storm (same shape the CopyEngineVmstat
 * test asserts on): 32 huge pages faulted onto NVM behind a DRAM
 * filler, then promoted one by one with the pool draining in between.
 * Returns the copy engine's effective bandwidth in bytes per simulated
 * second -- a pure function of the worker count.
 */
double
migrationStormBandwidth(std::uint32_t copy_workers)
{
    constexpr std::uint64_t kHuge = 32;
    KernelParams kp;
    kp.thp.enabled = true;
    kp.copyThreads = copy_workers;
    PhysicalMemory phys(
        makeDramParams((kHuge + 8) * kPagesPerHuge * kPageSize),
        makeNvmParams(2 * kHuge * kPagesPerHuge * kPageSize));
    Kernel kern(phys, kp);
    NullShootdown sink;
    kern.setShootdownClient(&sink);

    const std::uint64_t filler_pages = (kHuge + 8) * kPagesPerHuge;
    const Addr filler =
        kern.mmap(0, filler_pages * kPageSize, 0, "filler");
    for (std::uint64_t i = 0; i < filler_pages; ++i)
        kern.touchPage(pageOf(filler) + i, 1000 + i, MemOp::Store);

    std::vector<PageNum> bases;
    for (std::uint64_t h = 0; h < kHuge; ++h) {
        const Addr a = kern.mmap(0, kHugePageSize, 1 + h, "huge");
        kern.touchPage(pageOf(a), 40000000 + h, MemOp::Store);
        if (!kern.isHugeMapped(pageOf(a)) ||
            kern.nodeOf(pageOf(a)) != MemNode::NVM) {
            fatal("parallel_scaling: storm setup failed to place a "
                  "huge page on NVM");
        }
        bases.push_back(pageOf(a));
    }
    kern.munmap(50000000, filler);

    Cycles now = 60000000;
    for (const PageNum base : bases) {
        if (kern.promotePage(base + 123, now) == 0)
            fatal("parallel_scaling: huge promotion failed mid-storm");
        now += 10000000;  // Pool drains fully between copies.
    }
    const CopyEngine &ce = kern.copyEngine();
    return static_cast<double>(ce.bytesCopied()) /
           cyclesToSeconds(ce.chargedCycles());
}

struct ThreadResult
{
    std::uint32_t threads = 0;
    double wall = 0.0;
    std::uint64_t accesses = 0;
    std::uint64_t checksum = 0;
    double migrationBps = 0.0;
};

}  // namespace

int
main(int argc, char **argv)
{
    int scale = 13;
    int trials = 4;
    int reps = 2;
    std::vector<std::uint32_t> threads = {1, 2, 4, 8};
    std::string out_path;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--scale=", 0) == 0) {
            scale = std::atoi(arg.c_str() + 8);
        } else if (arg.rfind("--trials=", 0) == 0) {
            trials = std::atoi(arg.c_str() + 9);
        } else if (arg.rfind("--reps=", 0) == 0) {
            reps = std::atoi(arg.c_str() + 7);
        } else if (arg.rfind("--threads=", 0) == 0) {
            threads.clear();
            std::stringstream ss(arg.substr(10));
            std::string item;
            while (std::getline(ss, item, ','))
                threads.push_back(
                    static_cast<std::uint32_t>(std::atoi(item.c_str())));
        } else if (arg.rfind("--out=", 0) == 0) {
            out_path = arg.substr(6);
        } else {
            std::cerr << "usage: parallel_scaling [--scale=N]"
                         " [--trials=N] [--reps=N] [--threads=A,B,...]"
                         " [--out=PATH.json]\n";
            return 2;
        }
    }
    if (threads.empty() || threads[0] != 1 || trials <= 0 || reps <= 0) {
        std::cerr << "parallel_scaling: bad sweep parameters (the"
                     " thread list must start at 1)\n";
        return 2;
    }

    const unsigned host_cores = std::thread::hardware_concurrency();
    std::cout << "parallel_scaling: pr:kron scale " << scale << ", "
              << trials << " trials, best of " << reps
              << " reps, host cores " << host_cores << "\n";

    // Warm the graph cache so the first sweep point pays no setup.
    {
        RunResult warm;
        (void)timedRun(benchConfig(scale, 1, 1), warm);
    }

    std::vector<ThreadResult> sweep;
    bool checksum_ok = true;
    for (const std::uint32_t h : threads) {
        ThreadResult res;
        res.threads = h;
        RunResult best;
        for (int r = 0; r < reps; ++r) {
            RunResult rr;
            const double w = timedRun(benchConfig(scale, trials, h), rr);
            if (r == 0 || w < res.wall) {
                res.wall = w;
                best = rr;
            }
        }
        res.accesses = best.totalAccesses;
        res.checksum = best.outputChecksum;
        res.migrationBps = migrationStormBandwidth(h);
        if (!sweep.empty() && res.checksum != sweep[0].checksum)
            checksum_ok = false;
        std::cout << "  threads " << h << ": wall " << res.wall
                  << " s, "
                  << static_cast<std::uint64_t>(
                         static_cast<double>(res.accesses) / res.wall)
                  << " accesses/s, migration "
                  << res.migrationBps / 1e9 << " GB/s\n";
        sweep.push_back(res);
    }

    if (!checksum_ok) {
        std::cerr << "parallel_scaling: application checksum changed"
                     " with the host thread count -- executor broken\n";
        return 1;
    }

    const ThreadResult &base = sweep[0];
    const double base_aps =
        static_cast<double>(base.accesses) / base.wall;

    if (!out_path.empty()) {
        std::ofstream out(out_path);
        if (!out) {
            std::cerr << "parallel_scaling: cannot write " << out_path
                      << "\n";
            return 1;
        }
        out << "{\n"
            << "  \"bench\": \"parallel_scaling\",\n"
            << "  \"workload\": \"pr_kron\",\n"
            << "  \"scale\": " << scale << ",\n"
            << "  \"trials\": " << trials << ",\n"
            << "  \"reps\": " << reps << ",\n"
            << "  \"host_cores\": " << host_cores << ",\n"
            << "  \"per_threads\": [\n";
        for (std::size_t i = 0; i < sweep.size(); ++i) {
            const ThreadResult &r = sweep[i];
            const double aps =
                static_cast<double>(r.accesses) / r.wall;
            out << "    {\"threads\": " << r.threads
                << ", \"wall_sec\": " << r.wall
                << ", \"accesses_per_sec\": " << aps
                << ", \"speedup\": " << aps / base_aps
                << ", \"migration_bytes_per_sec\": " << r.migrationBps
                << ", \"migration_speedup\": "
                << r.migrationBps / base.migrationBps << "}"
                << (i + 1 < sweep.size() ? "," : "") << "\n";
        }
        out << "  ],\n"
            << "  \"accesses\": " << base.accesses << ",\n"
            << "  \"base_accesses_per_sec\": " << base_aps << ",\n"
            << "  \"checksum_ok\": "
            << (checksum_ok ? "true" : "false") << "\n"
            << "}\n";
        std::cout << "  wrote " << out_path << "\n";
    }
    return 0;
}

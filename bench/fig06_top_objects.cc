/**
 * @file
 * Reproduces Figure 6: for bc_kron, the top-10 memory objects ranked by
 * external samples on DRAM (6a) and on NVM (6b), as a percentage of all
 * mapped external samples on that node plus the absolute count.
 *
 * Finding 2's check: very few objects concentrate the majority of NVM
 * accesses (the paper's bc_kron has one object with ~65% of NVM
 * samples; bfs_urand/cc_urand reach 90%).
 */

#include <algorithm>

#include "bench_common.h"

using namespace memtier;

namespace {

void
printTop(const std::vector<ObjectAccessCount> &counts, bool nvm)
{
    std::vector<ObjectAccessCount> sorted = counts;
    std::sort(sorted.begin(), sorted.end(),
              [nvm](const ObjectAccessCount &a,
                    const ObjectAccessCount &b) {
                  return (nvm ? a.nvmSamples : a.dramSamples) >
                         (nvm ? b.nvmSamples : b.dramSamples);
              });
    std::uint64_t total = 0;
    for (const auto &c : sorted)
        total += nvm ? c.nvmSamples : c.dramSamples;

    TextTable table({"rank", "object", "site", "size",
                     nvm ? "% of NVM samples" : "% of DRAM samples",
                     "samples"});
    for (std::size_t i = 0; i < std::min<std::size_t>(10, sorted.size());
         ++i) {
        const auto &c = sorted[i];
        const std::uint64_t n = nvm ? c.nvmSamples : c.dramSamples;
        if (n == 0)
            break;
        table.addRow({std::to_string(i), std::to_string(c.object),
                      c.site, fmtBytes(c.bytes),
                      pct(static_cast<double>(n) /
                          static_cast<double>(std::max<std::uint64_t>(
                              total, 1))),
                      fmtCount(n)});
    }
    table.print(std::cout);
}

}  // namespace

int
main()
{
    benchHeader("Figure 6 -- top-10 objects by DRAM/NVM samples "
                "(bc_kron)",
                "Section 6.2, Figures 6a/6b + Finding 2");

    WorkloadSpec w;
    w.app = App::BC;
    w.kind = GraphKind::Kron;
    w.scale = benchScale();
    w.trials = 3;
    const RunResult r = runBench(w);
    const auto counts = objectAccessCounts(r.samples, r.tracker);

    std::cout << "\n(a) DRAM: top 10 objects with most samples\n";
    printTop(counts, /*nvm=*/false);
    std::cout << "\n(b) NVM: top 10 objects with most samples\n";
    printTop(counts, /*nvm=*/true);

    std::cout << "\nExpected shape: a handful of objects concentrate "
                 "the NVM samples, and the\nhottest NVM object also "
                 "ranks high on DRAM (the paper's object 0 led both).\n";
    return 0;
}

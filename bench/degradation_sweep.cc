/**
 * @file
 * Graceful-degradation characterization: the KV serving scenario
 * replayed under escalating ECC error rates, per tiering policy. Each
 * erosion level arms the ecc_ce/ecc_ue fault points with a higher
 * probability; correctable errors past the retirement threshold
 * soft-offline DRAM frames (the tier shrinks under the workload) and
 * uncorrectable errors kill in-flight requests. The sweep reports, per
 * (policy, level): the fraction of DRAM retired by the end of the run,
 * p99 completion latency, SLO-violation fraction, and availability --
 * the robustness counterpart of serving_tail's healthy-machine sweep.
 *
 * Usage:
 *   degradation_sweep [--policies=P1,P2,...] [--levels=p1,p2,...]
 *                     [--trials=N] [--out=PATH.json] [--csv=PATH.csv]
 *
 * --levels gives the per-touch CE probability of each erosion level
 * (the UE probability rides along at 1/8 of it); level 0.0 is the
 * healthy baseline and is always included.
 */

#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "base/logging.h"
#include "bench_common.h"
#include "fault/fault_plan.h"
#include "policy/policy_registry.h"

using namespace memtier;

namespace {

/** Simulated cycles -> microseconds. */
double
usec(double cycles)
{
    return cycles * 1e6 / static_cast<double>(kCyclesPerSecond);
}

/** One (policy, erosion level) measurement. */
struct Cell
{
    std::string policy;
    double ceProb = 0.0;
    double ueProb = 0.0;
    RunResult r;
};

/** Fraction of the DRAM tier retired by the end of the run. */
double
dramRetiredFraction(const RunResult &r)
{
    const NumaStatSnapshot &numa = r.finalNumastat;
    const int d = static_cast<int>(MemNode::DRAM);
    const std::uint64_t total = numa.appPages[d] + numa.cachePages[d] +
                                numa.freePages[d] + numa.retiredPages[d];
    if (total == 0)
        return 0.0;
    return static_cast<double>(numa.retiredPages[d]) /
           static_cast<double>(total);
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

}  // namespace

int
main(int argc, char **argv)
{
    const int scale = std::max(12, benchScale() - 4);

    std::vector<std::string> policies = {"autonuma", "exchange",
                                         "dram-only", "interleave"};
    // Per-touch CE probabilities. Touches happen on TLB misses only
    // and a frame retires after its third CE, so erosion grows
    // superlinearly across the levels. Zero = healthy baseline.
    std::vector<double> levels = {0.0, 0.02, 0.08, 0.25};
    int trials = 2;
    std::string out_path = "BENCH_degradation.json";
    std::string csv_path = "results/degradation_sweep.csv";

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--policies=", 0) == 0) {
            policies = splitCommas(arg.substr(11));
        } else if (arg.rfind("--levels=", 0) == 0) {
            levels.clear();
            for (const std::string &l : splitCommas(arg.substr(9)))
                levels.push_back(std::atof(l.c_str()));
        } else if (arg.rfind("--trials=", 0) == 0) {
            trials = std::atoi(arg.c_str() + 9);
        } else if (arg.rfind("--out=", 0) == 0) {
            out_path = arg.substr(6);
        } else if (arg.rfind("--csv=", 0) == 0) {
            csv_path = arg.substr(6);
        } else {
            std::cerr << "usage: degradation_sweep [--policies=P1,...]"
                         " [--levels=p1,p2,...] [--trials=N]"
                         " [--out=PATH.json] [--csv=PATH.csv]\n";
            return 2;
        }
    }
    if (policies.empty() || levels.empty() || trials <= 0) {
        std::cerr << "degradation_sweep: bad sweep parameters\n";
        return 2;
    }
    for (const std::string &p : policies) {
        if (!PolicyRegistry::instance().contains(p))
            fatal("unknown policy '%s'", p.c_str());
    }
    // The healthy baseline anchors every degradation curve.
    if (std::find(levels.begin(), levels.end(), 0.0) == levels.end())
        levels.insert(levels.begin(), 0.0);
    std::sort(levels.begin(), levels.end());

    benchHeader("tail latency and availability under memory failures",
                "robustness extension: hwpoison-style ECC errors "
                "eroding the DRAM tier during the serving replay");
    std::cout << "serving scale:        2^" << scale << " keys, "
              << trials * 5000 << " requests, kv, thp off\n"
              << "erosion levels:       " << levels.size()
              << " (CE probability 0";
    for (std::size_t i = 1; i < levels.size(); ++i)
        std::cout << " -> " << levels[i];
    std::cout << ")\n";

    ServingSpec ref_spec;  // For the SLO threshold only.
    const Cycles slo = ref_spec.sloCycles();

    std::vector<Cell> cells;
    for (const std::string &policy : policies) {
        for (const double ce : levels) {
            WorkloadSpec w;
            w.app = App::KV;
            w.kind = GraphKind::Kron;  // Zipfian keys.
            w.scale = scale;
            w.trials = trials;

            RunConfig rc;
            rc.workload = w;
            rc.policy = policy;
            rc.sampling = false;
            rc.sys.dram =
                makeDramParams(scaledCapacity(24 * kMiB, scale));
            rc.sys.nvm =
                makeNvmParams(scaledCapacity(96 * kMiB, scale));
            if (ce > 0.0) {
                rc.sys.faults.at(FaultPoint::EccCorrectable)
                    .probability = ce;
                rc.sys.faults.at(FaultPoint::EccUncorrectable)
                    .probability = ce / 8.0;
                rc.sys.faults.seed = 7;
            }
            std::cerr << "running kv [" << policy << ", ce=" << ce
                      << "]...\n";

            Cell c;
            c.policy = policy;
            c.ceProb = ce;
            c.ueProb = ce > 0.0 ? ce / 8.0 : 0.0;
            c.r = runWorkload(rc);
            MEMTIER_ASSERT(c.r.hasServing,
                           "serving run produced no report");
            cells.push_back(std::move(c));
        }
    }

    TextTable table({"policy", "ce prob", "dram retired", "p50 (us)",
                     "p99 (us)", "slo viol", "availability", "errors"});
    for (const Cell &c : cells) {
        const ServingReport &s = c.r.serving;
        table.addRow({c.policy, num(c.ceProb, 6),
                      num(dramRetiredFraction(c.r), 4),
                      num(usec(s.latency.percentile(0.50)), 2),
                      num(usec(s.latency.percentile(0.99)), 2),
                      num(s.sloViolationFraction(slo), 4),
                      num(s.availability(), 6),
                      num(static_cast<double>(s.errors), 0)});
    }
    table.print(std::cout);

    std::ofstream csv(csv_path);
    if (!csv)
        fatal("cannot open %s", csv_path.c_str());
    csv << "policy,ce_prob,ue_prob,requests,errors,availability,"
           "dram_retired_fraction,frames_retired,soft_offline,"
           "soft_offline_fail,sigbus,cache_dropped,p50_usec,p99_usec,"
           "p999_usec,slo_violation,total_sec\n";
    for (const Cell &c : cells) {
        const ServingReport &s = c.r.serving;
        const VmStat &v = c.r.vmstat;
        csv << c.policy << "," << c.ceProb << "," << c.ueProb << ","
            << s.requests << "," << s.errors << "," << s.availability()
            << "," << dramRetiredFraction(c.r) << ","
            << v.hwpoisonFramesRetired << "," << v.hwpoisonSoftOffline
            << "," << v.hwpoisonSoftOfflineFail << ","
            << v.hwpoisonSigbus << "," << v.hwpoisonCacheDropped << ","
            << usec(s.latency.percentile(0.50)) << ","
            << usec(s.latency.percentile(0.99)) << ","
            << usec(s.latency.percentile(0.999)) << ","
            << s.sloViolationFraction(slo) << "," << c.r.totalSeconds
            << "\n";
    }
    csv.close();

    std::ofstream json(out_path);
    if (!json)
        fatal("cannot open %s", out_path.c_str());
    json << "{\n"
         << "  \"bench\": \"degradation_sweep\",\n"
         << "  \"scale\": " << scale << ",\n"
         << "  \"requests\": " << trials * 5000 << ",\n"
         << "  \"slo_usec\": " << ref_spec.sloMicros << ",\n"
         << "  \"cells\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const Cell &c = cells[i];
        const ServingReport &s = c.r.serving;
        const VmStat &v = c.r.vmstat;
        json << "    {\"policy\": \"" << c.policy
             << "\", \"ce_prob\": " << c.ceProb
             << ", \"ue_prob\": " << c.ueProb << ",\n"
             << "     \"dram_retired_fraction\": "
             << dramRetiredFraction(c.r)
             << ", \"frames_retired\": " << v.hwpoisonFramesRetired
             << ", \"sigbus\": " << v.hwpoisonSigbus << ",\n"
             << "     \"requests\": " << s.requests
             << ", \"errors\": " << s.errors
             << ", \"availability\": " << s.availability() << ",\n"
             << "     \"p50_usec\": " << usec(s.latency.percentile(0.50))
             << ", \"p99_usec\": " << usec(s.latency.percentile(0.99))
             << ", \"p999_usec\": "
             << usec(s.latency.percentile(0.999))
             << ", \"slo_violation\": " << s.sloViolationFraction(slo)
             << "}" << (i + 1 < cells.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";

    std::cout << "\nwrote " << out_path << " and " << csv_path << " ("
              << cells.size() << " cells)\n";
    return 0;
}

/**
 * @file
 * Shared helpers for the table/figure reproduction benches.
 *
 * Every bench accepts the MEMTIER_SCALE environment variable (log2
 * vertices, default 18) so the suite can be run faster (16) or at
 * higher fidelity (19-20) without recompiling.
 */

#ifndef MEMTIER_BENCH_BENCH_COMMON_H_
#define MEMTIER_BENCH_BENCH_COMMON_H_

#include <cstdlib>
#include <iostream>
#include <string>

#include "exp/report.h"
#include "exp/runner.h"
#include "profile/analysis.h"

namespace memtier {

/** Experiment scale: MEMTIER_SCALE env var, default 18. */
inline int
benchScale()
{
    if (const char *env = std::getenv("MEMTIER_SCALE")) {
        const int scale = std::atoi(env);
        if (scale >= 10 && scale <= 24)
            return scale;
    }
    return 18;
}

/**
 * Sparse sampling period used by the per-page touch/reuse analyses
 * (Figures 4 and 5). The paper samples a ~250 GB footprint with a few
 * million samples -- well under one sample per page; the default dense
 * period would count every page dozens of times and hide the
 * single-touch behaviour the paper reports.
 */
inline constexpr std::uint32_t kSparseSamplerPeriod = 8191;

/**
 * Tier capacity scaled with the workload so the footprint:DRAM pressure
 * is scale-invariant (base values are for the default scale 18).
 */
inline std::uint64_t
scaledCapacity(std::uint64_t base_at_18, int scale)
{
    return scale >= 18 ? base_at_18 << (scale - 18)
                       : base_at_18 >> (18 - scale);
}

/** Run one paper workload under @p mode with sampling. */
inline RunResult
runBench(const WorkloadSpec &w, Mode mode = Mode::AutoNuma,
         std::uint32_t sampler_period = 61,
         const PlacementPlan *plan = nullptr, bool thp = false)
{
    RunConfig rc;
    rc.workload = w;
    rc.mode = mode;
    rc.sampler.period = sampler_period;
    rc.sys.dram = makeDramParams(scaledCapacity(24 * kMiB, w.scale));
    rc.sys.nvm = makeNvmParams(scaledCapacity(96 * kMiB, w.scale));
    rc.sys.thp.enabled = thp;
    std::cerr << "running " << w.name() << " [" << modeName(mode)
              << (thp ? ", thp" : "") << "] scale=" << w.scale << "...\n";
    return runWorkload(rc, plan);
}

/**
 * Consume a leading `--thp` argument if present (shared by the benches
 * that report a THP column). Returns true and shifts argv when found.
 */
inline bool
consumeThpFlag(int &argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--thp") {
            for (int j = i; j + 1 < argc; ++j)
                argv[j] = argv[j + 1];
            --argc;
            return true;
        }
    }
    return false;
}

/** Header block naming the experiment. */
inline void
benchHeader(const std::string &what, const std::string &paper_ref)
{
    std::cout << "memtier reproduction: " << what << "\n"
              << "paper reference:      " << paper_ref << "\n"
              << "scale:                2^" << benchScale()
              << " vertices (set MEMTIER_SCALE to change)\n";
}

}  // namespace memtier

#endif  // MEMTIER_BENCH_BENCH_COMMON_H_

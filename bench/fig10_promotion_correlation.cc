/**
 * @file
 * Reproduces Figure 10: DRAM load samples over time vs. pages promoted
 * to DRAM over time for bc_kron, plus the (low) correlation between the
 * two series (Finding 7: promoted pages explain little of the DRAM
 * traffic; most DRAM-resident pages were simply allocated there).
 */

#include <cmath>
#include <vector>

#include "bench_common.h"

using namespace memtier;

namespace {

double
pearson(const std::vector<double> &x, const std::vector<double> &y)
{
    const std::size_t n = std::min(x.size(), y.size());
    if (n < 3)
        return 0.0;
    double mx = 0.0;
    double my = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        mx += x[i];
        my += y[i];
    }
    mx /= static_cast<double>(n);
    my /= static_cast<double>(n);
    double sxy = 0.0;
    double sxx = 0.0;
    double syy = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        sxy += (x[i] - mx) * (y[i] - my);
        sxx += (x[i] - mx) * (x[i] - mx);
        syy += (y[i] - my) * (y[i] - my);
    }
    if (sxx == 0.0 || syy == 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

}  // namespace

int
main()
{
    benchHeader("Figure 10 -- DRAM load samples vs. promotions over "
                "time (bc_kron)",
                "Section 6.7, Figure 10 + Finding 7");

    WorkloadSpec w;
    w.app = App::BC;
    w.kind = GraphKind::Kron;
    w.scale = benchScale();
    w.trials = 3;
    const RunResult r = runBench(w);

    // Bucket DRAM load samples by timeline interval.
    std::vector<double> dram_loads(r.timeline.size(), 0.0);
    const double period =
        r.timeline.size() >= 2
            ? r.timeline[1].sec - r.timeline[0].sec
            : 1.0;
    for (const auto &s : r.samples) {
        if (s.level != MemLevel::DRAM)
            continue;
        const auto bucket =
            static_cast<std::size_t>(s.seconds() / period);
        if (bucket < dram_loads.size())
            dram_loads[bucket] += 1.0;
    }
    // Promotion deltas per interval.
    std::vector<double> promotions;
    VmStat prev;
    for (const auto &p : r.timeline) {
        promotions.push_back(static_cast<double>(
            p.vm.delta(prev).pgpromoteSuccess));
        prev = p.vm;
    }

    TextTable table({"t (s)", "DRAM load samples", "pages promoted"});
    const std::size_t stride =
        std::max<std::size_t>(1, r.timeline.size() / 32);
    for (std::size_t i = 0; i < r.timeline.size(); i += stride) {
        table.addRow({num(r.timeline[i].sec, 2),
                      fmtCount(static_cast<std::uint64_t>(
                          dram_loads[i])),
                      fmtCount(static_cast<std::uint64_t>(
                          promotions[i]))});
    }
    table.print(std::cout);

    const double corr = pearson(dram_loads, promotions);
    std::uint64_t total_promo = r.vmstat.pgpromoteSuccess;
    std::uint64_t dram_total = 0;
    for (const double d : dram_loads)
        dram_total += static_cast<std::uint64_t>(d);
    std::cout << "\nPearson correlation(DRAM load samples, promotions) "
              << "= " << num(corr, 3) << "\n";
    std::cout << "total DRAM load samples: " << fmtCount(dram_total)
              << ", total promoted pages: " << fmtCount(total_promo)
              << "\n";
    std::cout << "Expected shape: promotions are small and weakly "
                 "correlated with DRAM traffic\n(Finding 7) -- DRAM "
                 "hits come overwhelmingly from initial placement, "
                 "not from\npromotion.\n";
    return 0;
}

/**
 * @file
 * Reproduces Figure 3: the distribution of memory samples across the
 * memory-hierarchy levels (L1/LFB/L2/L3/DRAM/NVM) for each workload,
 * with AutoNUMA enabled. The paper's claim: at least ~25% of samples
 * (up to ~50%) land outside the caches for these graph workloads.
 */

#include "bench_common.h"

using namespace memtier;

int
main()
{
    benchHeader("Figure 3 -- sample distribution across memory levels",
                "Section 5.1, Figure 3");

    TextTable table({"Workload", "L1", "LFB", "L2", "L3", "DRAM", "NVM",
                     "DRAM+NVM"});
    for (const WorkloadSpec &w : paperWorkloads(benchScale())) {
        const RunResult r = runBench(w);
        const LevelShares ls = levelShares(r.samples);
        table.addRow(
            {w.name(), pct(ls.frac[static_cast<int>(MemLevel::L1)]),
             pct(ls.frac[static_cast<int>(MemLevel::LFB)]),
             pct(ls.frac[static_cast<int>(MemLevel::L2)]),
             pct(ls.frac[static_cast<int>(MemLevel::L3)]),
             pct(ls.frac[static_cast<int>(MemLevel::DRAM)]),
             pct(ls.frac[static_cast<int>(MemLevel::NVM)]),
             pct(ls.externalFrac)});
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: the DRAM+NVM column sits in the "
                 "paper's 25-50% band,\nreflecting the poor cache "
                 "locality of graph analytics.\n";
    return 0;
}

/**
 * @file
 * Google-benchmark microbenchmarks of the memory substrate, validating
 * the calibration the paper cites (Section 2.1 / Izraelevitz et al.):
 * NVM random loads ~3x DRAM, sequential ~2x, write amplification on
 * sub-granularity stores, and the cost of the simulator's own hot
 * paths (cache lookup, TLB lookup, full engine access).
 */

#include <benchmark/benchmark.h>

#include "base/rng.h"
#include "cache/set_assoc_cache.h"
#include "cache/tlb.h"
#include "mem/tier_device.h"
#include "sim/engine.h"

namespace memtier {
namespace {

void
BM_TierDramRandomLoad(benchmark::State &state)
{
    TierDevice dev(makeDramParams(kMiB));
    Cycles now = 0;
    Cycles total = 0;
    for (auto _ : state) {
        total += dev.access(now, MemOp::Load, false);
        now += 1000;  // Uncontended.
    }
    state.counters["cycles"] = static_cast<double>(
        total / std::max<std::uint64_t>(1, state.iterations()));
}
BENCHMARK(BM_TierDramRandomLoad);

void
BM_TierNvmRandomLoad(benchmark::State &state)
{
    TierDevice dev(makeNvmParams(kMiB));
    Cycles now = 0;
    Cycles total = 0;
    for (auto _ : state) {
        total += dev.access(now, MemOp::Load, false);
        now += 1000;
    }
    state.counters["cycles"] = static_cast<double>(
        total / std::max<std::uint64_t>(1, state.iterations()));
}
BENCHMARK(BM_TierNvmRandomLoad);

void
BM_TierNvmSequentialLoad(benchmark::State &state)
{
    TierDevice dev(makeNvmParams(kMiB));
    Cycles now = 0;
    Cycles total = 0;
    for (auto _ : state) {
        total += dev.access(now, MemOp::Load, true);
        now += 1000;
    }
    state.counters["cycles"] = static_cast<double>(
        total / std::max<std::uint64_t>(1, state.iterations()));
}
BENCHMARK(BM_TierNvmSequentialLoad);

void
BM_TierNvmContendedStores(benchmark::State &state)
{
    // Saturating random stores: exposes write amplification + queuing.
    TierDevice dev(makeNvmParams(kMiB));
    Cycles now = 0;
    Cycles total = 0;
    for (auto _ : state) {
        total += dev.access(now, MemOp::Store, false);
        now += 10;  // Far above the per-channel service rate.
    }
    state.counters["cycles"] = static_cast<double>(
        total / std::max<std::uint64_t>(1, state.iterations()));
}
BENCHMARK(BM_TierNvmContendedStores);

void
BM_CacheHit(benchmark::State &state)
{
    SetAssocCache cache("L1", 32 * kKiB, 8);
    cache.insert(1, false);
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.access(1, false));
}
BENCHMARK(BM_CacheHit);

void
BM_CacheMissInsert(benchmark::State &state)
{
    SetAssocCache cache("L2", 64 * kKiB, 8);
    Addr line = 0;
    for (auto _ : state) {
        cache.access(line, false);
        cache.insert(line, false);
        ++line;
    }
}
BENCHMARK(BM_CacheMissInsert);

void
BM_TlbLookupHit(benchmark::State &state)
{
    Tlb tlb;
    tlb.lookup(7);
    for (auto _ : state)
        benchmark::DoNotOptimize(tlb.lookup(7));
}
BENCHMARK(BM_TlbLookupHit);

void
BM_EngineAccessHot(benchmark::State &state)
{
    SystemConfig cfg;
    cfg.dram = makeDramParams(4 * kMiB);
    cfg.nvm = makeNvmParams(16 * kMiB);
    cfg.numThreads = 1;
    Engine eng(cfg);
    ThreadContext &t = eng.thread(0);
    const Addr a = eng.sysMmap(t, 64 * kPageSize, 0, "bench");
    eng.load(t, a);
    for (auto _ : state)
        eng.load(t, a);  // L1 hit path.
}
BENCHMARK(BM_EngineAccessHot);

void
BM_EngineAccessStreaming(benchmark::State &state)
{
    SystemConfig cfg;
    cfg.dram = makeDramParams(32 * kMiB);
    cfg.nvm = makeNvmParams(64 * kMiB);
    cfg.numThreads = 1;
    Engine eng(cfg);
    ThreadContext &t = eng.thread(0);
    const std::uint64_t bytes = 16 * kMiB;
    const Addr a = eng.sysMmap(t, bytes, 0, "bench");
    Addr off = 0;
    for (auto _ : state) {
        eng.load(t, a + off);
        off = (off + kLineSize) % bytes;
    }
}
BENCHMARK(BM_EngineAccessStreaming);

void
BM_EngineAccessRandom(benchmark::State &state)
{
    SystemConfig cfg;
    cfg.dram = makeDramParams(32 * kMiB);
    cfg.nvm = makeNvmParams(64 * kMiB);
    cfg.numThreads = 1;
    Engine eng(cfg);
    ThreadContext &t = eng.thread(0);
    const std::uint64_t bytes = 16 * kMiB;
    const Addr a = eng.sysMmap(t, bytes, 0, "bench");
    Rng rng(3);
    for (auto _ : state)
        eng.load(t, a + (rng.nextBounded(bytes) & ~7ULL));
}
BENCHMARK(BM_EngineAccessRandom);

}  // namespace
}  // namespace memtier

BENCHMARK_MAIN();

/**
 * @file
 * Ablation studies beyond the paper's figures, exercising the design
 * choices DESIGN.md calls out:
 *
 *  1. Mode baselines: AutoNUMA vs. vanilla (no tiering) vs. all-DRAM
 *     (ideal) vs. all-NVM (worst case) vs. object-level.
 *  2. Promotion rate limit sweep (the tiering patch's key knob).
 *  3. Scanner aggressiveness sweep (scan period).
 *  4. DRAM-capacity sweep (how pressure changes the picture).
 *
 * Runs one workload (bc_kron) at a reduced scale so the whole ablation
 * stays a few minutes.
 */

#include "bench_common.h"

using namespace memtier;

namespace {

WorkloadSpec
ablationWorkload()
{
    WorkloadSpec w;
    w.app = App::BC;
    w.kind = GraphKind::Kron;
    w.scale = std::max(14, benchScale() - 2);
    w.trials = 2;
    return w;
}

RunConfig
baseConfig()
{
    RunConfig rc;
    rc.workload = ablationWorkload();
    // Scale the tiers with the reduced workload so pressure matches
    // the main experiments (footprint ~1.4x DRAM).
    const int shift = 18 - rc.workload.scale;
    rc.sys.dram = makeDramParams((24 * kMiB) >> shift);
    rc.sys.nvm = makeNvmParams((96 * kMiB) >> shift);
    return rc;
}

}  // namespace

int
main()
{
    benchHeader("Ablations -- mode baselines, rate limit, scan period, "
                "DRAM size",
                "DESIGN.md ablation index (extends the paper)");

    // -- 1. Mode baselines -------------------------------------------
    std::cout << "\n[1] memory-management mode baselines ("
              << ablationWorkload().name() << ")\n";
    {
        TextTable table({"mode", "exec (s)", "NVM ext share",
                         "promotions", "demotions"});
        RunResult profile_run;
        for (const Mode mode :
             {Mode::AllDram, Mode::AutoNuma, Mode::NoTiering,
              Mode::ObjectStatic, Mode::AllNvm}) {
            RunConfig rc = baseConfig();
            rc.mode = mode;
            PlacementPlan plan;
            const PlacementPlan *plan_ptr = nullptr;
            if (mode == Mode::ObjectStatic) {
                plan = planFromProfile(profile_run,
                                       rc.sys.dram.capacityBytes,
                                       false);
                plan_ptr = &plan;
            }
            std::cerr << "running mode " << modeName(mode) << "...\n";
            RunResult r = runWorkload(rc, plan_ptr);
            const ExternalSplit es = externalSplit(r.samples);
            table.addRow({modeName(mode), num(r.totalSeconds, 3),
                          pct(es.nvmFrac),
                          fmtCount(r.vmstat.pgpromoteSuccess),
                          fmtCount(r.vmstat.pgdemoteKswapd +
                                   r.vmstat.pgdemoteDirect)});
            if (mode == Mode::AutoNuma)
                profile_run = std::move(r);  // Feeds the planner below.
        }
        table.print(std::cout);
        std::cout << "expected: all_dram fastest, all_nvm slowest, "
                     "object_static between all_dram\nand autonuma.\n";
    }

    // -- 2. Promotion rate limit sweep --------------------------------
    std::cout << "\n[2] promotion rate limit sweep\n";
    {
        TextTable table({"rate limit (KiB/s)", "exec (s)", "promotions",
                         "promote-then-demote", "rate-limited"});
        for (const std::uint64_t kib : {16ULL, 128ULL, 512ULL, 2048ULL,
                                        16384ULL}) {
            RunConfig rc = baseConfig();
            rc.sys.autonuma.rateLimitBytesPerSec = kib * kKiB;
            std::cerr << "running rate=" << kib << "KiB/s...\n";
            const RunResult r = runWorkload(rc);
            table.addRow({fmtCount(kib), num(r.totalSeconds, 3),
                          fmtCount(r.vmstat.pgpromoteSuccess),
                          fmtCount(r.vmstat.pgpromoteDemoted),
                          fmtCount(r.vmstat.promoteRateLimited)});
        }
        table.print(std::cout);
        std::cout << "expected: promotions grow with the budget; "
                     "beyond some point extra promotion\ntraffic stops "
                     "paying off (thrashing appears in the "
                     "promote-then-demote column).\n";
    }

    // -- 3. Scan period sweep ------------------------------------------
    std::cout << "\n[3] scanner aggressiveness sweep\n";
    {
        TextTable table({"scan period (ms)", "exec (s)", "hint faults",
                         "pages scanned", "promotions"});
        for (const double ms : {2.5, 10.0, 40.0, 160.0}) {
            RunConfig rc = baseConfig();
            rc.sys.autonuma.scanPeriod = secondsToCycles(ms / 1000.0);
            std::cerr << "running scan=" << ms << "ms...\n";
            const RunResult r = runWorkload(rc);
            table.addRow({num(ms, 1), num(r.totalSeconds, 3),
                          fmtCount(r.vmstat.numaHintFaults),
                          fmtCount(r.numaStats.pagesScanned),
                          fmtCount(r.vmstat.pgpromoteSuccess)});
        }
        table.print(std::cout);
        std::cout << "expected: faster scanning finds more candidates "
                     "but costs hint-fault overhead;\nslow scanning "
                     "starves the policy of information.\n";
    }

    // -- 4. DRAM capacity sweep ----------------------------------------
    std::cout << "\n[4] DRAM capacity sweep (AutoNUMA)\n";
    {
        TextTable table({"DRAM", "exec (s)", "ext NVM share",
                         "demotions"});
        const std::uint64_t base_dram =
            baseConfig().sys.dram.capacityBytes;
        for (const double factor : {0.5, 0.75, 1.0, 1.5, 3.0}) {
            RunConfig rc = baseConfig();
            rc.sys.dram = makeDramParams(static_cast<std::uint64_t>(
                static_cast<double>(base_dram) * factor));
            std::cerr << "running dram x" << factor << "...\n";
            const RunResult r = runWorkload(rc);
            const ExternalSplit es = externalSplit(r.samples);
            table.addRow({fmtBytes(rc.sys.dram.capacityBytes),
                          num(r.totalSeconds, 3), pct(es.nvmFrac),
                          fmtCount(r.vmstat.pgdemoteKswapd +
                                   r.vmstat.pgdemoteDirect)});
        }
        table.print(std::cout);
        std::cout << "expected: execution time and NVM share fall "
                     "monotonically as DRAM grows;\nonce the footprint "
                     "fits, tiering activity disappears.\n";
    }
    return 0;
}

/**
 * @file
 * Reproduces Table 3: mean external access cost (cycles) broken down by
 * node (DRAM/NVM) and TLB outcome (hit/miss), plus Finding 1's ratio of
 * NVM+TLB-miss to DRAM+TLB-miss cost.
 *
 * Paper values (DRAM hit/miss | NVM hit/miss):
 *   bc_kron 659/772 | 1833/2727      bc_urand 1675/1617 | 2862/3439
 *   bfs_kron 404/490 | 1572/2218     bfs_urand 578/734 | 2632/4183
 *   cc_kron 315/866 | 1170/2975      cc_urand 325/903 | 1345/4141
 *
 * With --thp every run maps anonymous memory with 2 MiB PMD entries:
 * the dTLB miss rate drops (one entry covers 512 pages and the walk is
 * one level shorter) and the NVMmiss/DRAMmiss ratio narrows, since the
 * TLB-miss penalty that compounds the NVM access cost shrinks.
 */

#include "bench_common.h"

using namespace memtier;

namespace {

/** Fraction of samples whose access was preceded by a dTLB miss. */
double
tlbMissRate(const std::vector<MemorySample> &samples)
{
    if (samples.empty())
        return 0.0;
    std::uint64_t miss = 0;
    for (const MemorySample &s : samples)
        miss += s.tlbMiss ? 1 : 0;
    return static_cast<double>(miss) /
           static_cast<double>(samples.size());
}

}  // namespace

int
main(int argc, char **argv)
{
    const bool thp = consumeThpFlag(argc, argv);
    benchHeader("Table 3 -- external cost by node and TLB outcome",
                "Section 6.1, Table 3 + Finding 1");
    std::cout << "thp:                  " << (thp ? "on" : "off")
              << " (pass --thp to map with 2 MiB PMD entries)\n";

    TextTable table({"Application", "THP", "DRAM TLB Hit",
                     "DRAM TLB Miss", "NVM TLB Hit", "NVM TLB Miss",
                     "dTLB miss rate", "NVMmiss/DRAMmiss"});
    double worst_ratio = 0.0;
    for (const WorkloadSpec &w : paperWorkloads(benchScale())) {
        const RunResult r = runBench(w, Mode::AutoNuma, 61, nullptr, thp);
        const TlbCostMatrix m = tlbCostMatrix(r.samples);
        const double ratio =
            m.mean[0][1] > 0.0 ? m.mean[1][1] / m.mean[0][1] : 0.0;
        worst_ratio = std::max(worst_ratio, ratio);
        table.addRow({w.name(), thp ? "on" : "off", num(m.mean[0][0], 0),
                      num(m.mean[0][1], 0), num(m.mean[1][0], 0),
                      num(m.mean[1][1], 0), pct(tlbMissRate(r.samples)),
                      num(ratio, 2) + "x"});
    }
    table.print(std::cout);
    std::cout << "\nFinding 1 check: NVM accesses preceded by a TLB miss "
                 "cost a multiple of the\nDRAM TLB-miss case (paper: 4x "
                 "average, up to 5.7x). Max ratio measured: "
              << num(worst_ratio, 2) << "x\n";
    if (thp) {
        std::cout << "THP on: compare against the default run -- the "
                     "dTLB miss rate falls and the\nNVM/DRAM miss-cost "
                     "ratio narrows as PMD reach absorbs page walks.\n";
    }
    return 0;
}

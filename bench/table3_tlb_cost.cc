/**
 * @file
 * Reproduces Table 3: mean external access cost (cycles) broken down by
 * node (DRAM/NVM) and TLB outcome (hit/miss), plus Finding 1's ratio of
 * NVM+TLB-miss to DRAM+TLB-miss cost.
 *
 * Paper values (DRAM hit/miss | NVM hit/miss):
 *   bc_kron 659/772 | 1833/2727      bc_urand 1675/1617 | 2862/3439
 *   bfs_kron 404/490 | 1572/2218     bfs_urand 578/734 | 2632/4183
 *   cc_kron 315/866 | 1170/2975      cc_urand 325/903 | 1345/4141
 */

#include "bench_common.h"

using namespace memtier;

int
main()
{
    benchHeader("Table 3 -- external cost by node and TLB outcome",
                "Section 6.1, Table 3 + Finding 1");

    TextTable table({"Application", "DRAM TLB Hit", "DRAM TLB Miss",
                     "NVM TLB Hit", "NVM TLB Miss", "NVMmiss/DRAMmiss"});
    double worst_ratio = 0.0;
    for (const WorkloadSpec &w : paperWorkloads(benchScale())) {
        const RunResult r = runBench(w);
        const TlbCostMatrix m = tlbCostMatrix(r.samples);
        const double ratio =
            m.mean[0][1] > 0.0 ? m.mean[1][1] / m.mean[0][1] : 0.0;
        worst_ratio = std::max(worst_ratio, ratio);
        table.addRow({w.name(), num(m.mean[0][0], 0), num(m.mean[0][1], 0),
                      num(m.mean[1][0], 0), num(m.mean[1][1], 0),
                      num(ratio, 2) + "x"});
    }
    table.print(std::cout);
    std::cout << "\nFinding 1 check: NVM accesses preceded by a TLB miss "
                 "cost a multiple of the\nDRAM TLB-miss case (paper: 4x "
                 "average, up to 5.7x). Max ratio measured: "
              << num(worst_ratio, 2) << "x\n";
    return 0;
}

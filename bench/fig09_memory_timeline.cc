/**
 * @file
 * Reproduces Figure 9: for bc_kron over time -- (top) memory allocated
 * on DRAM and NVM split into application and page-cache pages, (middle)
 * demotion and promotion counter deltas, (bottom) CPU utilization --
 * plus Finding 5 (page cache halved by demotion) and Finding 6
 * (promotions far below the rate limit).
 */

#include "bench_common.h"

using namespace memtier;

int
main()
{
    benchHeader("Figure 9 -- memory usage, migrations, CPU over time "
                "(bc_kron)",
                "Section 6.5/6.6, Figure 9 + Findings 5, 6");

    WorkloadSpec w;
    w.app = App::BC;
    w.kind = GraphKind::Kron;
    w.scale = benchScale();
    w.trials = 3;
    const RunResult r = runBench(w);

    TextTable table({"t (s)", "DRAM app", "DRAM cache", "NVM app",
                     "NVM cache", "demote d", "promote d", "CPU"});
    VmStat prev;
    std::size_t printed = 0;
    const std::size_t stride =
        std::max<std::size_t>(1, r.timeline.size() / 32);
    for (std::size_t i = 0; i < r.timeline.size(); i += stride) {
        const TimelinePoint &p = r.timeline[i];
        const VmStat d = p.vm.delta(prev);
        prev = p.vm;
        table.addRow(
            {num(p.sec, 2), fmtBytes(p.numa.appPages[0] * kPageSize),
             fmtBytes(p.numa.cachePages[0] * kPageSize),
             fmtBytes(p.numa.appPages[1] * kPageSize),
             fmtBytes(p.numa.cachePages[1] * kPageSize),
             fmtCount(d.pgdemoteKswapd + d.pgdemoteDirect),
             fmtCount(d.pgpromoteSuccess), pct(p.cpuUtil, 0)});
        ++printed;
    }
    table.print(std::cout);

    // Finding 5: peak vs final DRAM page cache.
    std::uint64_t peak_cache = 0;
    for (const auto &p : r.timeline)
        peak_cache = std::max(peak_cache, p.numa.cachePages[0]);
    const std::uint64_t final_cache =
        r.timeline.empty() ? 0 : r.timeline.back().numa.cachePages[0];

    std::cout << "\ntotals: demotions kswapd="
              << fmtCount(r.vmstat.pgdemoteKswapd)
              << " direct=" << fmtCount(r.vmstat.pgdemoteDirect)
              << " promotions=" << fmtCount(r.vmstat.pgpromoteSuccess)
              << " promote-then-demote="
              << fmtCount(r.vmstat.pgpromoteDemoted) << "\n";
    std::cout << "Finding 5: DRAM page cache peak "
              << fmtBytes(peak_cache * kPageSize) << " -> final "
              << fmtBytes(final_cache * kPageSize)
              << " (demotion reclaimed the input-reading phase's "
                 "cache).\n";
    std::cout << "Finding 6: promotions ("
              << fmtCount(r.vmstat.pgpromoteSuccess)
              << " pages over " << num(r.totalSeconds, 2)
              << " s) stay below the configured rate limit budget of "
              << fmtBytes(static_cast<std::uint64_t>(
                     512.0 * 1024.0 * r.totalSeconds))
              << ".\n";
    std::cout << "Expected shape: DRAM fills early (app + page cache), "
                 "new allocations then go\nto NVM, demotions exceed "
                 "promotions, and CPU is low during the read phase "
                 "then\nhigh during compute.\n";
    return 0;
}

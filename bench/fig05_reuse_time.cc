/**
 * @file
 * Reproduces Figure 5: statistics of the time between the two accesses
 * of pages touched exactly twice, restricted to the hottest object on
 * NVM of each workload, plus the Section 5.2 text result that at most a
 * tiny fraction of two-touch pages are ever observed promoted
 * (NVM first, DRAM second).
 *
 * The paper's point: reuse intervals are widely dispersed (stddev close
 * to the mean), so even a dynamic hotness threshold cannot separate
 * these pages reliably.
 */

#include "bench_common.h"

using namespace memtier;

int
main()
{
    benchHeader("Figure 5 -- page reuse-time statistics",
                "Section 5.2, Figure 5 + promoted-pages text");

    TextTable table({"Workload", "min", "p25", "p50", "p75", "max",
                     "avg", "stddev", "pages", "2-touch promoted"});
    for (const WorkloadSpec &w : paperWorkloads(benchScale())) {
        // Medium sampling density: sparse enough that two-touch pages
        // exist (Figure 4's regime), dense enough that the hottest NVM
        // object contributes a measurable population of them.
        const RunResult r = runBench(w, Mode::AutoNuma, 2039);
        const auto counts = objectAccessCounts(r.samples, r.tracker);
        const ObjectId hottest = hottestNvmObject(counts);
        PercentileSummary reuse;
        if (hottest != kNoObject)
            reuse = twoTouchReuseSeconds(r.samples, hottest, r.tracker);
        const double promoted = twoTouchPromotedFraction(r.samples);
        table.addRow({w.name(), num(reuse.min(), 3),
                      num(reuse.percentile(0.25), 3),
                      num(reuse.percentile(0.50), 3),
                      num(reuse.percentile(0.75), 3),
                      num(reuse.max(), 3), num(reuse.mean(), 3),
                      num(reuse.stddev(), 3),
                      fmtCount(reuse.count()), pct(promoted, 2)});
    }
    table.print(std::cout);
    std::cout << "\nTimes are simulated seconds (runs last seconds "
                 "rather than the paper's minutes;\ncompare dispersion, "
                 "not absolute values). Expected shape: stddev is "
                 "comparable\nto the mean -- reuse intervals are too "
                 "irregular for a latency threshold -- and\nthe "
                 "promoted share of two-touch pages stays small "
                 "(paper: at most 1.3%).\n";
    return 0;
}

/**
 * @file
 * Policy ablation: every registered tiering policy (autonuma, exchange,
 * dram-only, interleave) on the paper's workload matrix
 * {bc,bfs,cc} x {kron,urand}, at a reduced scale so the full grid stays
 * a few minutes. Prints one table per workload and writes the whole
 * grid to results/ablation_policies.csv (runtime, promotions,
 * demotions, exchanges per policy).
 */

#include <fstream>

#include "base/csv.h"
#include "base/logging.h"
#include "bench_common.h"
#include "fault/fault_plan.h"
#include "policy/policy_registry.h"

using namespace memtier;

namespace {

/** The four policies, in presentation order. */
const char *kPolicies[] = {"autonuma", "exchange", "dram-only",
                           "interleave"};

/** Fault plan applied to every run (default: no faults). */
FaultPlan g_faults;

/** Map anonymous memory with 2 MiB PMD entries (--thp). */
bool g_thp = false;

RunConfig
policyConfig(const WorkloadSpec &w, const char *policy)
{
    RunConfig rc;
    rc.workload = w;
    rc.policy = policy;
    rc.sys.dram = makeDramParams(scaledCapacity(24 * kMiB, w.scale));
    rc.sys.nvm = makeNvmParams(scaledCapacity(96 * kMiB, w.scale));
    rc.sys.thp.enabled = g_thp;
    // The scaled testbed compresses hours to milliseconds; compress the
    // scan clocks the same way or no scan ever fires inside a run.
    if (std::string(policy) == "autonuma") {
        rc.tunables = {"scan_period_ms=0.5", "adjust_period_ms=2",
                       "rate_limit_kib=4096"};
    } else if (std::string(policy) == "exchange") {
        rc.tunables = {"scan_period_ms=0.5", "protect_ms=2"};
    }
    rc.sys.faults = g_faults;
    return rc;
}

}  // namespace

int
main(int argc, char **argv)
{
    g_thp = consumeThpFlag(argc, argv);
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--faults" && i + 1 < argc) {
            g_faults = FaultPlan::parseOrDie(argv[++i]);
        } else if (arg.rfind("--faults=", 0) == 0) {
            g_faults = FaultPlan::parseOrDie(arg.substr(9));
        } else {
            fatal("usage: ablation_policies [--thp] [--faults PLAN]\n"
                  "  PLAN e.g. 'migrate:p=0.2,burst=8;seed=7'");
        }
    }

    benchHeader("Policy ablation -- autonuma vs exchange vs static "
                "baselines",
                "extends the paper with the AutoTiering exchange policy "
                "(Sys-KU, ATC'21)");
    if (g_faults.anyEnabled())
        std::cout << "fault plan: " << g_faults.summary() << "\n";
    std::cout << "thp: " << (g_thp ? "on" : "off")
              << " (pass --thp for 2 MiB PMD mappings)\n";

    for (const char *policy : kPolicies) {
        MEMTIER_ASSERT(PolicyRegistry::instance().contains(policy),
                       "bench policy missing from the registry");
    }

    const int scale = std::max(12, benchScale() - 4);
    std::vector<WorkloadSpec> workloads;
    for (const App app : {App::BC, App::BFS, App::CC}) {
        for (const GraphKind kind : {GraphKind::Kron, GraphKind::Urand}) {
            WorkloadSpec w;
            w.app = app;
            w.kind = kind;
            w.scale = scale;
            w.trials = 2;
            workloads.push_back(w);
        }
    }

    std::ofstream csv_file("results/ablation_policies.csv");
    if (!csv_file) {
        fatal("cannot open results/ablation_policies.csv -- run from "
              "the repository root");
    }
    CsvWriter csv(csv_file);
    csv.header({"workload", "policy", "thp", "total_seconds",
                "compute_seconds", "ext_nvm_share", "hint_faults",
                "promotions", "demotions", "exchanges", "thrash",
                "migrate_fail", "promote_retry", "alloc_fail",
                "disk_read_retry", "breaker_trips", "thp_fault_alloc",
                "thp_collapse_alloc", "thp_split_page"});

    for (const WorkloadSpec &w : workloads) {
        std::cout << "\n" << w.name() << " (scale " << scale << ")\n";
        TextTable table({"policy", "exec (s)", "NVM ext share",
                         "promotions", "demotions", "exchanges",
                         "thrash"});
        for (const char *policy : kPolicies) {
            std::cerr << "running " << w.name() << " [" << policy
                      << "]...\n";
            const RunResult r = runWorkload(policyConfig(w, policy));
            const ExternalSplit es = externalSplit(r.samples);
            const std::uint64_t demotions =
                r.vmstat.pgdemoteKswapd + r.vmstat.pgdemoteDirect;
            const std::uint64_t thrash =
                r.vmstat.pgpromoteDemoted + r.vmstat.pgexchangeThrash;
            table.addRow({policy, num(r.totalSeconds, 3),
                          pct(es.nvmFrac),
                          fmtCount(r.vmstat.pgpromoteSuccess),
                          fmtCount(demotions),
                          fmtCount(r.vmstat.pgexchangeSuccess),
                          fmtCount(thrash)});
            csv.cell(w.name())
                .cell(std::string(policy))
                .cell(std::string(g_thp ? "on" : "off"))
                .cell(r.totalSeconds)
                .cell(r.computeSeconds)
                .cell(es.nvmFrac)
                .cell(r.vmstat.numaHintFaults)
                .cell(r.vmstat.pgpromoteSuccess)
                .cell(demotions)
                .cell(r.vmstat.pgexchangeSuccess)
                .cell(thrash)
                .cell(r.vmstat.pgmigrateFail)
                .cell(r.vmstat.promoteRetry)
                .cell(r.vmstat.pgallocFail)
                .cell(r.vmstat.diskReadRetry)
                .cell(r.vmstat.breakerTrips)
                .cell(r.vmstat.thpFaultAlloc)
                .cell(r.vmstat.thpCollapseAlloc)
                .cell(r.vmstat.thpSplitPage);
            csv.endRow();
        }
        table.print(std::cout);
    }

    std::cout << "\nwrote results/ablation_policies.csv (" << csv.rows()
              << " rows)\n"
              << "expected: exchange trades reclaim demotions for "
                 "direct exchanges and cuts\nthrash; the static "
                 "baselines bound the migration policies from both "
                 "sides.\n";
    return 0;
}

/**
 * @file
 * Extension study: offline static object mapping (the paper's proposal)
 * vs. the online dynamic object-level policy (the paper's suggested
 * future direction) vs. AutoNUMA, across all six workloads.
 *
 * The dynamic policy needs no profiling run, adapts to phases, and
 * migrates whole objects under a budget; the question is how much of
 * the static mapping's benefit it retains without offline knowledge.
 */

#include "bench_common.h"

using namespace memtier;

int
main()
{
    benchHeader("Extension -- static vs. dynamic object-level tiering",
                "Section 9 (conclusion: runtime object management)");

    TextTable table({"Workload", "autonuma (s)", "static (s)",
                     "dynamic (s)", "static gain", "dynamic gain",
                     "checksum"});
    double static_sum = 0.0;
    double dynamic_sum = 0.0;
    int n = 0;
    for (const WorkloadSpec &w : paperWorkloads(benchScale())) {
        const RunResult base = runBench(w);
        const PlacementPlan plan = planFromProfile(
            base, scaledCapacity(24 * kMiB, w.scale), false);
        const RunResult stat =
            runBench(w, Mode::ObjectStatic, 61, &plan);
        const RunResult dyn = runBench(w, Mode::ObjectDynamic);

        const double sg = 1.0 - stat.totalSeconds / base.totalSeconds;
        const double dg = 1.0 - dyn.totalSeconds / base.totalSeconds;
        static_sum += sg;
        dynamic_sum += dg;
        ++n;
        const bool ok = base.outputChecksum == stat.outputChecksum &&
                        base.outputChecksum == dyn.outputChecksum;
        table.addRow({w.name(), num(base.totalSeconds, 3),
                      num(stat.totalSeconds, 3),
                      num(dyn.totalSeconds, 3), pct(sg), pct(dg),
                      ok ? "ok" : "MISMATCH"});
    }
    table.print(std::cout);
    std::cout << "\naverage gain vs AutoNUMA: static "
              << pct(static_sum / n) << ", dynamic "
              << pct(dynamic_sum / n) << "\n";
    std::cout << "Expected shape: the dynamic policy recovers a "
                 "meaningful share of the static\nmapping's benefit "
                 "without any offline profile, at the cost of runtime "
                 "migration\ntraffic.\n";
    return 0;
}

/**
 * @file
 * Host-side throughput of the access hot path: the same PageRank sweep
 * executed through the forced scalar reference path and through the
 * batched pipeline (same-line coalescing, translation micro-cache,
 * hoisted service checks, batch observer dispatch). The two runs are
 * bit-identical in every simulated observable -- this bench verifies
 * that, then reports wall-clock accesses/second and the speedup.
 *
 * The sweep covers several graph scales; the headline speedup is the
 * aggregate over the whole sweep (total accesses / total wall).
 *
 * Usage:
 *   hotpath_speed [--scales=A,B,...] [--scale=N] [--trials=N]
 *                 [--reps=N] [--out=PATH.json]
 *
 * --scale=N is shorthand for a single-scale sweep. --out writes a
 * machine-readable JSON record (BENCH_hotpath.json in the CI flow).
 */

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "base/logging.h"
#include "exp/runner.h"

using namespace memtier;

namespace {

RunConfig
benchConfig(int scale, int trials, bool scalar)
{
    RunConfig rc;
    rc.workload.app = App::PR;
    rc.workload.kind = GraphKind::Kron;
    rc.workload.scale = scale;
    rc.workload.trials = trials;
    rc.sampling = false;  // Measure the raw hot path.
    rc.sys.scalarPath = scalar;
    return rc;
}

/** Wall-clock seconds of one runWorkload invocation. */
double
timedRun(const RunConfig &rc, RunResult &out)
{
    const auto t0 = std::chrono::steady_clock::now();
    out = runWorkload(rc);
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

/** One scale's best-of-reps measurement. */
struct ScaleResult
{
    int scale = 0;
    std::uint64_t accesses = 0;
    double scalarWall = 0.0;
    double batchedWall = 0.0;
    bool identical = false;
};

ScaleResult
runScale(int scale, int trials, int reps)
{
    // Warm the graph cache and the allocator so neither path pays
    // first-use costs.
    RunResult warm;
    (void)timedRun(benchConfig(scale, 1, false), warm);

    // Best-of-reps wall clock for each path; simulated results are
    // checked for bit-identity across every rep.
    ScaleResult res;
    res.scale = scale;
    RunResult scalar_r;
    RunResult batched_r;
    for (int r = 0; r < reps; ++r) {
        RunResult sr;
        RunResult br;
        const double sw = timedRun(benchConfig(scale, trials, true), sr);
        const double bw = timedRun(benchConfig(scale, trials, false), br);
        if (r == 0 || sw < res.scalarWall) {
            res.scalarWall = sw;
            scalar_r = sr;
        }
        if (r == 0 || bw < res.batchedWall) {
            res.batchedWall = bw;
            batched_r = br;
        }
    }
    res.accesses = scalar_r.totalAccesses;
    res.identical =
        scalar_r.totalSeconds == batched_r.totalSeconds &&
        scalar_r.outputChecksum == batched_r.outputChecksum &&
        scalar_r.totalAccesses == batched_r.totalAccesses &&
        scalar_r.vmstat.pgfault == batched_r.vmstat.pgfault &&
        scalar_r.vmstat.pgmigrateSuccess ==
            batched_r.vmstat.pgmigrateSuccess;
    return res;
}

}  // namespace

int
main(int argc, char **argv)
{
    std::vector<int> scales = {8, 9, 10};
    int trials = 48;
    int reps = 3;
    std::string out_path;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--scale=", 0) == 0) {
            scales = {std::atoi(arg.c_str() + 8)};
        } else if (arg.rfind("--scales=", 0) == 0) {
            scales.clear();
            std::stringstream ss(arg.substr(9));
            std::string item;
            while (std::getline(ss, item, ','))
                scales.push_back(std::atoi(item.c_str()));
        } else if (arg.rfind("--trials=", 0) == 0) {
            trials = std::atoi(arg.c_str() + 9);
        } else if (arg.rfind("--reps=", 0) == 0) {
            reps = std::atoi(arg.c_str() + 7);
        } else if (arg.rfind("--out=", 0) == 0) {
            out_path = arg.substr(6);
        } else {
            std::cerr << "usage: hotpath_speed [--scales=A,B,...]"
                         " [--scale=N] [--trials=N] [--reps=N]"
                         " [--out=PATH.json]\n";
            return 2;
        }
    }
    if (scales.empty() || trials <= 0 || reps <= 0) {
        std::cerr << "hotpath_speed: bad sweep parameters\n";
        return 2;
    }

    std::cout << "hotpath_speed: pr:kron sweep, " << trials
              << " trials per scale, best of " << reps << " reps\n";

    std::vector<ScaleResult> sweep;
    std::uint64_t accesses = 0;
    double scalar_wall = 0.0;
    double batched_wall = 0.0;
    bool identical = true;
    for (const int scale : scales) {
        const ScaleResult res = runScale(scale, trials, reps);
        accesses += res.accesses;
        scalar_wall += res.scalarWall;
        batched_wall += res.batchedWall;
        identical = identical && res.identical;
        const double s = (res.scalarWall / res.batchedWall);
        std::cout << "  scale " << res.scale << ": " << res.accesses
                  << " accesses, scalar " << res.scalarWall
                  << " s, batched " << res.batchedWall << " s, "
                  << s << "x\n";
        sweep.push_back(res);
    }

    if (!identical) {
        std::cerr << "hotpath_speed: scalar and batched runs diverged"
                     " -- the pipeline is broken\n";
        return 1;
    }

    const double scalar_aps =
        static_cast<double>(accesses) / scalar_wall;
    const double batched_aps =
        static_cast<double>(accesses) / batched_wall;
    const double speedup = batched_aps / scalar_aps;

    std::cout << "  accesses            " << accesses << "\n";
    std::cout << "  scalar   wall (s)   " << scalar_wall << "  ("
              << static_cast<std::uint64_t>(scalar_aps)
              << " accesses/s)\n";
    std::cout << "  batched  wall (s)   " << batched_wall << "  ("
              << static_cast<std::uint64_t>(batched_aps)
              << " accesses/s)\n";
    std::cout << "  speedup             " << speedup << "x\n";
    std::cout << "  bit_identical       "
              << (identical ? "true" : "false") << "\n";

    if (!out_path.empty()) {
        std::ofstream out(out_path);
        if (!out) {
            std::cerr << "hotpath_speed: cannot write " << out_path
                      << "\n";
            return 1;
        }
        out << "{\n"
            << "  \"bench\": \"hotpath_speed\",\n"
            << "  \"workload\": \"pr_kron_sweep\",\n"
            << "  \"trials\": " << trials << ",\n"
            << "  \"reps\": " << reps << ",\n"
            << "  \"per_scale\": [\n";
        for (std::size_t i = 0; i < sweep.size(); ++i) {
            const ScaleResult &r = sweep[i];
            out << "    {\"scale\": " << r.scale << ", \"accesses\": "
                << r.accesses << ", \"scalar_wall_sec\": "
                << r.scalarWall << ", \"batched_wall_sec\": "
                << r.batchedWall << ", \"speedup\": "
                << (r.scalarWall / r.batchedWall) << "}"
                << (i + 1 < sweep.size() ? "," : "") << "\n";
        }
        out << "  ],\n"
            << "  \"accesses\": " << accesses << ",\n"
            << "  \"scalar_wall_sec\": " << scalar_wall << ",\n"
            << "  \"batched_wall_sec\": " << batched_wall << ",\n"
            << "  \"scalar_accesses_per_sec\": " << scalar_aps << ",\n"
            << "  \"batched_accesses_per_sec\": " << batched_aps
            << ",\n"
            << "  \"speedup\": " << speedup << ",\n"
            << "  \"bit_identical\": "
            << (identical ? "true" : "false") << "\n"
            << "}\n";
        std::cout << "  wrote " << out_path << "\n";
    }
    return 0;
}

/**
 * @file
 * Footprint-vs-scale sweep over the segmented CSR path: runs PageRank
 * on out-of-core-built graphs from the paper's default scale up to
 * multi-GB footprints (scale 24-25, two orders of magnitude above the
 * scale-18 default), reporting simulated accesses/second, migration
 * volume and DRAM-hit fraction per {scale, kind, mode} cell, plus the
 * host peak RSS that the segment-by-segment build keeps bounded.
 *
 * Also self-checks the subsystem's golden property: a one-segment
 * out-of-core build must be bit-identical (simulated cycles, output,
 * per-level access counts) to the monolithic SimCsrGraph loader.
 *
 * Usage:
 *   scale_sweep [--rows=SCALE:KIND:MODE:SEGMENTS,...] [--trials=N]
 *               [--out=PATH.json] [--no-check]
 *
 * The default row set covers kron 18/20/22/24 and urand 25 under
 * autonuma (with a notiering contrast at the smaller scales). The
 * --rows form runs exactly the named cells, e.g.
 * --rows=22:kron:autonuma:8 (the CI regression gate re-runs a single
 * committed cell this way).
 */

#include <sys/resource.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/pagerank.h"
#include "base/logging.h"
#include "bench_common.h"
#include "bigraph/ooc_builder.h"
#include "bigraph/segmented_csr.h"
#include "exp/runner.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/sim_graph.h"
#include "runtime/sim_heap.h"

using namespace memtier;

namespace {

struct SweepRow
{
    int scale = 18;
    GraphKind kind = GraphKind::Kron;
    Mode mode = Mode::AutoNuma;
    int segments = 4;
};

/** Default segment count: finer row-range placement as graphs grow. */
int
autoSegments(int scale)
{
    const int shifted = scale - 19;
    const int count = shifted <= 2 ? 4 : 1 << shifted;
    return std::min(count, 64);
}

/** Host peak RSS in bytes (Linux ru_maxrss is in KiB). */
std::uint64_t
peakRssBytes()
{
    struct rusage ru;
    getrusage(RUSAGE_SELF, &ru);
    return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
}

struct RowResult
{
    SweepRow row;
    std::uint64_t footprintBytes = 0;
    std::int64_t nodes = 0;
    std::int64_t edges = 0;
    double loadSimSec = 0.0;
    double computeSimSec = 0.0;
    std::uint64_t totalAccesses = 0;
    double wallSec = 0.0;
    double accessesPerSec = 0.0;
    std::uint64_t copyBytes = 0;
    double dramHitFraction = 0.0;
    std::uint64_t promoted = 0;
    std::uint64_t demoted = 0;
    std::uint64_t peakRss = 0;
};

Mode
parseMode(const std::string &s)
{
    for (const Mode m : {Mode::AutoNuma, Mode::NoTiering, Mode::AllNvm,
                         Mode::AllDram}) {
        if (s == modeName(m))
            return m;
    }
    fatal("scale_sweep: unknown mode '%s' (expected autonuma, "
          "notiering, all_nvm or all_dram)",
          s.c_str());
}

GraphKind
parseKind(const std::string &s)
{
    if (s == "kron")
        return GraphKind::Kron;
    if (s == "urand")
        return GraphKind::Urand;
    fatal("scale_sweep: unknown kind '%s'", s.c_str());
}

SweepRow
parseRow(const std::string &s)
{
    std::stringstream ss(s);
    std::string part;
    std::vector<std::string> parts;
    while (std::getline(ss, part, ':'))
        parts.push_back(part);
    if (parts.size() < 3 || parts.size() > 4)
        fatal("scale_sweep: malformed row '%s' (expected "
              "SCALE:KIND:MODE[:SEGMENTS])",
              s.c_str());
    SweepRow row;
    row.scale = std::atoi(parts[0].c_str());
    if (row.scale < 10 || row.scale > 28)
        fatal("scale_sweep: scale %d out of range", row.scale);
    row.kind = parseKind(parts[1]);
    row.mode = parseMode(parts[2]);
    row.segments = parts.size() == 4 ? std::atoi(parts[3].c_str())
                                     : autoSegments(row.scale);
    if (row.segments < 1)
        fatal("scale_sweep: bad segment count in '%s'", s.c_str());
    return row;
}

RowResult
runRow(const SweepRow &row, int trials)
{
    RunConfig rc;
    rc.workload.app = App::PR;
    rc.workload.kind = row.kind;
    rc.workload.scale = row.scale;
    rc.workload.trials = trials;
    rc.workload.segments = row.segments;
    rc.mode = row.mode;
    rc.sampling = false;
    rc.sys.dram = makeDramParams(scaledCapacity(24 * kMiB, row.scale));
    rc.sys.nvm = makeNvmParams(scaledCapacity(96 * kMiB, row.scale));
    // Scan clocks compressed as in the sweep benches, or no scan fires
    // inside the short simulated runs.
    rc.sys.autonuma.scanPeriod = secondsToCycles(0.0005);
    rc.sys.autonuma.adjustPeriod = secondsToCycles(0.002);

    // Prewarm the spill artifacts so wall_sec times materialization +
    // simulated execution, not the one-off generate/sort pipeline --
    // otherwise the first mode at each scale pays generation and its
    // accesses/sec is not comparable to the cache-hitting second.
    const BigraphSpec bs{row.kind == GraphKind::Kron
                             ? BigraphKind::Kron
                             : BigraphKind::Urand,
                         row.scale,
                         16,
                         9241,
                         static_cast<std::uint32_t>(row.segments),
                         false,
                         false};
    const BigraphArtifacts &art = prepareBigraph(bs);

    std::cerr << "running scale " << row.scale << " "
              << graphKindName(row.kind) << " [" << modeName(row.mode)
              << "] segments=" << row.segments << "...\n";
    const auto t0 = std::chrono::steady_clock::now();
    const RunResult r = runWorkload(rc);
    const auto t1 = std::chrono::steady_clock::now();

    RowResult out;
    out.row = row;
    out.nodes = 1LL << row.scale;
    out.loadSimSec = r.loadSeconds;
    out.computeSimSec = r.computeSeconds;
    out.totalAccesses = r.totalAccesses;
    out.wallSec = std::chrono::duration<double>(t1 - t0).count();
    out.accessesPerSec =
        static_cast<double>(r.totalAccesses) / out.wallSec;
    out.copyBytes = r.copyBytes;
    const std::uint64_t dram =
        r.levelCounts[static_cast<int>(MemLevel::DRAM)];
    const std::uint64_t nvm =
        r.levelCounts[static_cast<int>(MemLevel::NVM)];
    out.dramHitFraction =
        dram + nvm > 0
            ? static_cast<double>(dram) /
                  static_cast<double>(dram + nvm)
            : 0.0;
    out.promoted = r.vmstat.pgpromoteSuccess;
    out.demoted = r.vmstat.pgdemoteKswapd + r.vmstat.pgdemoteDirect;
    out.peakRss = peakRssBytes();

    // Footprint of the segmented CSR = what the builder materialized.
    out.edges = art.totalEdges;
    out.footprintBytes =
        static_cast<std::uint64_t>(art.nodes + art.segments) * 8 +
        static_cast<std::uint64_t>(art.totalEdges) * 4;
    return out;
}

/**
 * Golden self-check at a small scale: a one-segment out-of-core build
 * must match the monolithic loader cycle for cycle.
 */
bool
segment1BitIdentical()
{
    BigraphSpec spec;
    spec.scale = 12;
    spec.degree = 16;
    spec.segments = 1;
    EdgeList edges = generateKron(spec.scale, spec.degree, spec.seed);
    const CsrGraph host = CsrGraph::fromEdgeList(
        static_cast<NodeId>(1LL << spec.scale), edges);

    SystemConfig cfg;
    cfg.dram = makeDramParams(scaledCapacity(24 * kMiB, spec.scale));
    cfg.nvm = makeNvmParams(scaledCapacity(96 * kMiB, spec.scale));

    Engine eng_a(cfg);
    SimHeap heap_a(eng_a);
    SimCsrGraph mono =
        SimCsrGraph::load(eng_a, heap_a, eng_a.thread(0), host, "gold");
    const PageRankOutput pr_a = runPageRank(eng_a, heap_a, mono, 2);
    mono.free(heap_a, eng_a.thread(0));

    Engine eng_b(cfg);
    SimHeap heap_b(eng_b);
    SegmentedCsrGraph seg = SegmentedCsrGraph::generate(
        eng_b, heap_b, eng_b.thread(0), spec, "gold");
    const PageRankOutput pr_b = runPageRank(eng_b, heap_b, seg, 2);
    seg.free(heap_b, eng_b.thread(0));

    bool same = eng_b.globalTime() == eng_a.globalTime() &&
                pr_b.rank.size() == pr_a.rank.size();
    for (std::size_t v = 0; same && v < pr_a.rank.size(); ++v)
        same = pr_b.rank[v] == pr_a.rank[v];
    for (int l = 0; same && l < kNumMemLevels; ++l) {
        same = eng_b.levelCount(static_cast<MemLevel>(l)) ==
               eng_a.levelCount(static_cast<MemLevel>(l));
    }
    return same;
}

std::string
rowLabel(const SweepRow &r)
{
    return std::to_string(r.scale) + ":" + graphKindName(r.kind) + ":" +
           modeName(r.mode) + ":" + std::to_string(r.segments);
}

}  // namespace

int
main(int argc, char **argv)
{
    std::vector<SweepRow> rows;
    int trials = 1;
    bool check = true;
    std::string out_path = "BENCH_scale.json";

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--rows=", 0) == 0) {
            std::stringstream ss(arg.substr(7));
            std::string item;
            while (std::getline(ss, item, ','))
                rows.push_back(parseRow(item));
        } else if (arg.rfind("--trials=", 0) == 0) {
            trials = std::atoi(arg.c_str() + 9);
        } else if (arg.rfind("--out=", 0) == 0) {
            out_path = arg.substr(6);
        } else if (arg == "--no-check") {
            check = false;
        } else {
            std::cerr << "usage: scale_sweep "
                         "[--rows=SCALE:KIND:MODE[:SEGS],...] "
                         "[--trials=N] [--out=PATH.json] [--no-check]\n";
            return 2;
        }
    }
    if (trials <= 0) {
        std::cerr << "scale_sweep: bad trial count\n";
        return 2;
    }
    if (rows.empty()) {
        // Default: the committed footprint-vs-scale matrix. The
        // notiering contrast stops at 22 and the biggest graphs run
        // autonuma only, to bound suite wall time.
        for (const int scale : {18, 20, 22}) {
            rows.push_back({scale, GraphKind::Kron, Mode::AutoNuma,
                            autoSegments(scale)});
            rows.push_back({scale, GraphKind::Kron, Mode::NoTiering,
                            autoSegments(scale)});
        }
        rows.push_back(
            {24, GraphKind::Kron, Mode::AutoNuma, autoSegments(24)});
        rows.push_back(
            {25, GraphKind::Urand, Mode::AutoNuma, autoSegments(25)});
    }

    benchHeader("footprint-vs-scale sweep on the segmented CSR path",
                "paper-scale graph footprints (Section 4.1) via "
                "out-of-core segmented builds");

    bool golden = true;
    if (check) {
        golden = segment1BitIdentical();
        std::cout << "segment-1 golden check: "
                  << (golden ? "bit-identical" : "DIVERGED") << "\n";
        if (!golden) {
            std::cerr << "scale_sweep: one-segment build diverged from "
                         "the monolithic loader\n";
            return 1;
        }
        clearBigraphArtifacts();
    }

    std::vector<RowResult> results;
    int last_scale = -1;
    for (const SweepRow &row : rows) {
        if (last_scale != -1 && row.scale != last_scale) {
            // New scale: previous spill buckets are no longer needed.
            clearBigraphArtifacts();
        }
        last_scale = row.scale;
        results.push_back(runRow(row, trials));
        const RowResult &r = results.back();
        std::cout << "  " << rowLabel(row) << ": footprint "
                  << (r.footprintBytes >> 20) << " MiB, "
                  << r.totalAccesses << " accesses, "
                  << static_cast<std::uint64_t>(r.accessesPerSec)
                  << " accesses/s, dram_hit "
                  << r.dramHitFraction << ", migrated "
                  << (r.copyBytes >> 20) << " MiB, peak rss "
                  << (r.peakRss >> 20) << " MiB\n";
    }
    clearBigraphArtifacts();

    std::ofstream out(out_path);
    if (!out) {
        std::cerr << "scale_sweep: cannot write " << out_path << "\n";
        return 1;
    }
    out << "{\n"
        << "  \"bench\": \"scale_sweep\",\n"
        << "  \"app\": \"pr\",\n"
        << "  \"trials\": " << trials << ",\n"
        << "  \"segment1_bit_identical\": "
        << (golden ? "true" : "false") << ",\n"
        << "  \"rows\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const RowResult &r = results[i];
        out << "    {\"scale\": " << r.row.scale << ", \"kind\": \""
            << graphKindName(r.row.kind) << "\", \"mode\": \""
            << modeName(r.row.mode) << "\", \"segments\": "
            << r.row.segments << ", \"nodes\": " << r.nodes
            << ", \"edges\": " << r.edges << ", \"footprint_bytes\": "
            << r.footprintBytes << ", \"load_sim_sec\": "
            << r.loadSimSec << ", \"compute_sim_sec\": "
            << r.computeSimSec << ", \"total_accesses\": "
            << r.totalAccesses << ", \"wall_sec\": " << r.wallSec
            << ", \"accesses_per_sec\": " << r.accessesPerSec
            << ", \"copy_bytes\": " << r.copyBytes
            << ", \"dram_hit_fraction\": " << r.dramHitFraction
            << ", \"pgpromote\": " << r.promoted << ", \"pgdemote\": "
            << r.demoted << ", \"peak_rss_bytes\": " << r.peakRss
            << "}" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ]\n"
        << "}\n";
    std::cout << "wrote " << out_path << " (" << results.size()
              << " rows)\n";
    return 0;
}

/**
 * @file
 * Parameter-sweep driver over the policy registry.
 *
 * Usage:
 *   policy_sweep [--policy=NAME] [--tunable KEY=V1,V2,...]...
 *                [--workload APP:KIND]... [--out=PATH.csv]
 *
 * Every --tunable flag contributes one sweep axis (comma-separated
 * values); the harness runs the full cross product over the workload
 * list and writes one CSV per sweep. Defaults reproduce the AutoNUMA
 * scan-period sweep on pr:kron.
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "base/logging.h"
#include "bench_common.h"
#include "exp/sweep.h"
#include "fault/fault_plan.h"
#include "policy/policy_registry.h"

using namespace memtier;

namespace {

void
usage()
{
    std::cout
        << "usage: policy_sweep [--policy=NAME] "
           "[--tunable KEY=V1,V2,...]...\n"
           "                    [--workload APP:KIND]... "
           "[--out=PATH.csv] [--faults PLAN] [--thp]\n\n"
           "  --policy=NAME    registry policy to sweep "
           "(default autonuma)\n"
           "  --thp            map anonymous memory with 2 MiB PMD "
           "entries\n"
           "  --tunable K=Vs   one sweep axis; comma-separated values\n"
           "  --workload A:K   app {bc,bfs,cc,pr,sssp,kv,lsm} : "
           "graph {kron,urand}\n"
           "                   (kv/lsm: kron = zipfian keys, urand = "
           "uniform)\n"
           "  --segments=N     run every workload on the segmented "
           "CSR path (N row-range segments)\n"
           "  --out=PATH       CSV output path "
           "(default results/sweep_<policy>.csv)\n"
           "  --faults PLAN    fault-injection plan applied to every "
           "point,\n"
           "                   e.g. 'migrate:p=0.2,burst=8;seed=7'\n\n"
           "registered policies:\n";
    for (const std::string &name : PolicyRegistry::instance().names()) {
        std::cout << "  " << name << " -- "
                  << PolicyRegistry::instance().description(name) << "\n";
        for (const std::string &key :
             PolicyRegistry::instance().tunableKeys(name)) {
            std::cout << "      tunable: " << key << "\n";
        }
    }
}

/** Split "a,b,c" into {"a","b","c"}; empty segments are dropped. */
std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        const std::size_t comma = s.find(',', start);
        const std::size_t end = comma == std::string::npos ? s.size()
                                                           : comma;
        if (end > start)
            out.push_back(s.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

App
parseApp(const std::string &s)
{
    if (s == "bc") return App::BC;
    if (s == "bfs") return App::BFS;
    if (s == "cc") return App::CC;
    if (s == "pr") return App::PR;
    if (s == "sssp") return App::SSSP;
    if (s == "kv") return App::KV;
    if (s == "lsm") return App::LSM;
    fatal("unknown app '%s' (expected bc, bfs, cc, pr, sssp, kv or lsm)",
          s.c_str());
}

GraphKind
parseKind(const std::string &s)
{
    if (s == "kron") return GraphKind::Kron;
    if (s == "urand") return GraphKind::Urand;
    fatal("unknown graph kind '%s' (expected kron or urand)", s.c_str());
}

WorkloadSpec
parseWorkload(const std::string &s, int scale)
{
    const std::size_t colon = s.find(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= s.size()) {
        fatal("malformed workload '%s' (expected APP:KIND, e.g. "
              "pr:kron)",
              s.c_str());
    }
    WorkloadSpec w;
    w.app = parseApp(s.substr(0, colon));
    w.kind = parseKind(s.substr(colon + 1));
    w.scale = scale;
    w.trials = 2;
    return w;
}

}  // namespace

int
main(int argc, char **argv)
{
    const int scale = std::max(12, benchScale() - 4);

    SweepSpec spec;
    spec.sys.thp.enabled = consumeThpFlag(argc, argv);
    std::string out_path;
    int segments = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value_of = [&](const std::string &flag) -> std::string {
            // Accept both --flag=value and --flag value.
            if (arg.size() > flag.size() && arg[flag.size()] == '=')
                return arg.substr(flag.size() + 1);
            if (i + 1 >= argc)
                fatal("%s needs a value", flag.c_str());
            return argv[++i];
        };
        if (arg == "-h" || arg == "--help") {
            usage();
            return 0;
        } else if (arg.rfind("--policy", 0) == 0) {
            spec.policy = value_of("--policy");
        } else if (arg.rfind("--tunable", 0) == 0) {
            const std::string assignment = value_of("--tunable");
            const std::size_t eq = assignment.find('=');
            if (eq == std::string::npos || eq == 0)
                fatal("malformed --tunable '%s' (expected KEY=V1,V2)",
                      assignment.c_str());
            SweepAxis axis;
            axis.key = assignment.substr(0, eq);
            axis.values = splitCommas(assignment.substr(eq + 1));
            if (axis.values.empty())
                fatal("--tunable %s has no values", axis.key.c_str());
            spec.axes.push_back(std::move(axis));
        } else if (arg.rfind("--workload", 0) == 0) {
            spec.workloads.push_back(
                parseWorkload(value_of("--workload"), scale));
        } else if (arg.rfind("--segments", 0) == 0) {
            segments = std::stoi(value_of("--segments"));
            if (segments < 1)
                fatal("--segments needs a positive count");
        } else if (arg.rfind("--out", 0) == 0) {
            out_path = value_of("--out");
        } else if (arg.rfind("--faults", 0) == 0) {
            spec.sys.faults = FaultPlan::parseOrDie(value_of("--faults"));
        } else {
            usage();
            fatal("unknown argument '%s'", arg.c_str());
        }
    }

    if (!PolicyRegistry::instance().contains(spec.policy)) {
        usage();
        fatal("unknown policy '%s'", spec.policy.c_str());
    }
    if (spec.workloads.empty())
        spec.workloads.push_back(parseWorkload("pr:kron", scale));
    for (WorkloadSpec &w : spec.workloads)
        w.segments = segments;
    if (spec.axes.empty() && spec.policy == "autonuma") {
        // Sub-millisecond values: simulated runs at sweep scale last a
        // few milliseconds, so paper-scale periods would never fire.
        SweepAxis axis;
        axis.key = "scan_period_ms";
        axis.values = {"0.25", "0.5", "1", "2"};
        spec.axes.push_back(std::move(axis));
    }
    if (out_path.empty())
        out_path = "results/sweep_" + spec.policy + ".csv";

    spec.sys.dram = makeDramParams(scaledCapacity(24 * kMiB, scale));
    spec.sys.nvm = makeNvmParams(scaledCapacity(96 * kMiB, scale));
    // The scaled testbed compresses hours to milliseconds; compress the
    // default scan clocks to match or no scan fires inside a sweep
    // point. Explicit --tunable values still override these.
    spec.sys.autonuma.scanPeriod = secondsToCycles(0.0005);
    spec.sys.autonuma.adjustPeriod = secondsToCycles(0.002);

    benchHeader("parameter sweep over policy '" + spec.policy + "'",
                "parameter-tuning methodology for tiered-memory "
                "kernels");
    if (spec.sys.faults.anyEnabled())
        std::cout << "fault plan: " << spec.sys.faults.summary() << "\n";
    if (spec.sys.thp.enabled)
        std::cout << "thp: on (2 MiB PMD mappings)\n";
    const std::vector<SweepPoint> points = runSweep(spec, &std::cerr);

    std::ofstream csv_file(out_path);
    if (!csv_file)
        fatal("cannot open %s", out_path.c_str());
    writeSweepCsv(spec, points, csv_file);

    TextTable table([&spec] {
        std::vector<std::string> headers = {"workload"};
        for (const SweepAxis &axis : spec.axes)
            headers.push_back(axis.key);
        headers.insert(headers.end(),
                       {"exec (s)", "promotions", "demotions",
                        "exchanges", "thrash"});
        if (spec.sys.faults.anyEnabled()) {
            headers.insert(headers.end(),
                           {"migrate fail", "retries", "breaker trips"});
        }
        return headers;
    }());
    for (const SweepPoint &p : points) {
        std::vector<std::string> row = {p.workload};
        for (const auto &[key, value] : p.tunables) {
            (void)key;
            row.push_back(value);
        }
        row.insert(row.end(),
                   {num(p.totalSeconds, 3), fmtCount(p.promotions),
                    fmtCount(p.demotions), fmtCount(p.exchanges),
                    fmtCount(p.thrash)});
        if (spec.sys.faults.anyEnabled()) {
            row.insert(row.end(),
                       {fmtCount(p.migrateFail), fmtCount(p.promoteRetry),
                        fmtCount(p.breakerTrips)});
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\nwrote " << out_path << " (" << points.size()
              << " points)\n";
    return 0;
}

/**
 * @file
 * Reproduces Figure 7: the allocation timeline of bc_kron -- current
 * live application bytes over time -- annotated with the allocation of
 * the hottest-on-NVM object, showing that it is mapped right after a
 * sizeable release by another object (Finding 3: pages land in DRAM
 * because space happens to be free, not because they are hot).
 */

#include "bench_common.h"

using namespace memtier;

int
main()
{
    benchHeader("Figure 7 -- object allocation timeline (bc_kron)",
                "Section 6.3, Figure 7 + Finding 3");

    WorkloadSpec w;
    w.app = App::BC;
    w.kind = GraphKind::Kron;
    w.scale = benchScale();
    w.trials = 3;
    const RunResult r = runBench(w);

    const auto counts = objectAccessCounts(r.samples, r.tracker);
    const ObjectId hottest = hottestNvmObject(counts);
    const AllocationRecord *hot_rec =
        hottest != kNoObject ? r.tracker.find(hottest) : nullptr;

    std::cout << "\nLive application bytes over time (downsampled):\n";
    TextTable table({"t (s)", "live bytes", "live"});
    const TimeSeries live = r.tracker.liveBytesSeries().downsampled(40);
    for (const auto &p : live.points()) {
        table.addRow({num(p.time, 3),
                      fmtBytes(static_cast<std::uint64_t>(p.value)),
                      std::string(
                          static_cast<std::size_t>(
                              40.0 * p.value /
                              std::max(1.0,
                                       r.tracker.liveBytesSeries()
                                           .max())),
                          '#')});
    }
    table.print(std::cout);

    std::cout << "\nAllocation/free events around the hottest NVM "
                 "object:\n";
    if (hot_rec != nullptr) {
        std::cout << "hottest NVM object: id " << hottest << " (site "
                  << hot_rec->site << ", " << fmtBytes(hot_rec->bytes)
                  << ") allocated at t=" << num(
                         cyclesToSeconds(hot_rec->allocTime), 3)
                  << " s\n";
        // Find the releases immediately preceding its allocation.
        std::uint64_t freed_before = 0;
        for (const auto &rec : r.tracker.records()) {
            if (!rec.live() && rec.freeTime <= hot_rec->allocTime &&
                rec.freeTime + secondsToCycles(0.25) >
                    hot_rec->allocTime) {
                freed_before += rec.bytes;
                std::cout << "  preceding release: object " << rec.object
                          << " (site " << rec.site << ", "
                          << fmtBytes(rec.bytes) << ") freed at t="
                          << num(cyclesToSeconds(rec.freeTime), 3)
                          << " s\n";
            }
        }
        std::cout << "  bytes released in the 0.25 s before the "
                     "allocation: "
                  << fmtBytes(freed_before) << "\n";
    } else {
        std::cout << "no NVM samples were mapped to an object\n";
    }

    std::cout << "\nExpected shape: the timeline shows the recurring "
                 "per-source allocate/free\npattern, and the hottest "
                 "NVM object is allocated shortly after space is "
                 "freed --\nso part of it lands on DRAM by accident of "
                 "timing (Finding 3).\n";
    return 0;
}

#include "profile/trace_export.h"

#include "base/csv.h"

namespace memtier {

std::size_t
writeMemoryTrace(std::ostream &out,
                 const std::vector<MemorySample> &samples)
{
    CsvWriter csv(out);
    csv.header({"timestamp_sec", "tid", "vaddr", "level",
                "latency_cycles", "tlb_miss"});
    for (const MemorySample &s : samples) {
        csv.cell(s.seconds())
            .cell(static_cast<std::uint64_t>(s.tid))
            .cell(s.vaddr)
            .cell(std::string(memLevelName(s.level)))
            .cell(s.latency)
            .cell(static_cast<std::uint64_t>(s.tlbMiss ? 1 : 0))
            .endRow();
    }
    return csv.rows();
}

std::size_t
writeMmapTrace(std::ostream &out, const MmapTracker &tracker)
{
    CsvWriter csv(out);
    csv.header({"timestamp_sec", "object", "site", "start_addr",
                "bytes"});
    for (const AllocationRecord &r : tracker.records()) {
        csv.cell(cyclesToSeconds(r.allocTime))
            .cell(static_cast<std::int64_t>(r.object))
            .cell(r.site)
            .cell(r.start)
            .cell(r.bytes)
            .endRow();
    }
    return csv.rows();
}

std::size_t
writeMunmapTrace(std::ostream &out, const MmapTracker &tracker)
{
    CsvWriter csv(out);
    csv.header({"timestamp_sec", "object", "start_addr", "bytes"});
    for (const AllocationRecord &r : tracker.records()) {
        if (r.live())
            continue;
        csv.cell(cyclesToSeconds(r.freeTime))
            .cell(static_cast<std::int64_t>(r.object))
            .cell(r.start)
            .cell(r.bytes)
            .endRow();
    }
    return csv.rows();
}

std::size_t
writeMappedSamples(std::ostream &out,
                   const std::vector<MemorySample> &samples,
                   const MmapTracker &tracker, MemNode node)
{
    const MemLevel level =
        node == MemNode::DRAM ? MemLevel::DRAM : MemLevel::NVM;
    CsvWriter csv(out);
    csv.header({"timestamp_sec", "vaddr", "object", "site",
                "page_in_object", "latency_cycles"});
    for (const MemorySample &s : samples) {
        if (s.level != level)
            continue;
        const ObjectId obj = tracker.objectAt(s.vaddr, s.time);
        if (obj == kNoObject)
            continue;
        const AllocationRecord *rec = tracker.find(obj);
        csv.cell(s.seconds())
            .cell(s.vaddr)
            .cell(static_cast<std::int64_t>(obj))
            .cell(rec->site)
            .cell(pageOf(s.vaddr) - pageOf(rec->start))
            .cell(s.latency)
            .endRow();
    }
    return csv.rows();
}

std::size_t
writeAllocations(std::ostream &out, const MmapTracker &tracker)
{
    CsvWriter csv(out);
    csv.header({"object", "site", "bytes", "alloc_sec", "free_sec"});
    for (const AllocationRecord &r : tracker.records()) {
        csv.cell(static_cast<std::int64_t>(r.object))
            .cell(r.site)
            .cell(r.bytes)
            .cell(cyclesToSeconds(r.allocTime))
            .cell(r.live() ? -1.0 : cyclesToSeconds(r.freeTime))
            .endRow();
    }
    return csv.rows();
}

}  // namespace memtier

#include "profile/perf_mem.h"

namespace memtier {

PerfMemSampler::PerfMemSampler(const SamplerParams &params)
    : cfg(params), rng(params.seed)
{
}

std::uint32_t
PerfMemSampler::nextGap()
{
    const std::uint32_t jitter = cfg.period / 8;
    if (jitter == 0)
        return cfg.period;
    const auto delta =
        static_cast<std::uint32_t>(rng.nextBounded(2 * jitter + 1));
    return cfg.period - jitter + delta;
}

void
PerfMemSampler::onAccess(const AccessRecord &record)
{
    sample(record);
}

void
PerfMemSampler::sample(const AccessRecord &record)
{
    if (record.op == MemOp::Store && !cfg.recordStores)
        return;
    if (record.op == MemOp::Load)
        ++loads_seen;

    if (record.tid >= countdown.size())
        countdown.resize(record.tid + 1, 0);
    auto &left = countdown[record.tid];
    if (left > 0) {
        --left;
        return;
    }
    left = nextGap();

    MemorySample s;
    s.time = record.time;
    s.vaddr = record.vaddr;
    s.latency = record.latency;
    s.tid = record.tid;
    // perf-mem resolves the data source of stores only at L1.
    s.level = record.op == MemOp::Store ? MemLevel::L1 : record.level;
    s.tlbMiss = record.tlbMiss;
    store.push_back(s);
}

}  // namespace memtier

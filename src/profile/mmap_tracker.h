/**
 * @file
 * MmapTracker: the syscall_intercept equivalent (Section 3.2). Records
 * every mmap/munmap with timestamp, size, address range and
 * allocation-site "call stack", defining the memory objects the paper's
 * object-level analyses operate on.
 */

#ifndef MEMTIER_PROFILE_MMAP_TRACKER_H_
#define MEMTIER_PROFILE_MMAP_TRACKER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/stats.h"
#include "base/types.h"
#include "os/kernel_hooks.h"

namespace memtier {

/** One tracked allocation (a "memory object", Section 3.3). */
struct AllocationRecord
{
    ObjectId object = kNoObject;
    std::string site;           ///< Allocation call-site tag.
    Addr start = 0;
    std::uint64_t bytes = 0;
    Cycles allocTime = 0;
    Cycles freeTime = 0;        ///< 0 while still live.

    /** True when the object was never freed. */
    bool live() const { return freeTime == 0; }

    /** True when @p addr at time @p when falls inside this object. */
    bool
    covers(Addr addr, Cycles when) const
    {
        if (addr < start || addr >= start + roundUpPages(bytes) * kPageSize)
            return false;
        if (when < allocTime)
            return false;
        return live() || when < freeTime;
    }
};

/** Observes the simulated mmap/munmap syscalls. */
class MmapTracker : public SyscallObserver
{
  public:
    void onMmap(Cycles now, Addr addr, std::uint64_t bytes,
                ObjectId object, const std::string &site) override;

    void onMunmap(Cycles now, Addr addr, std::uint64_t bytes,
                  ObjectId object) override;

    /** All allocation records in allocation order. */
    const std::vector<AllocationRecord> &records() const { return recs; }

    /** Record of @p object, or nullptr. */
    const AllocationRecord *find(ObjectId object) const;

    /**
     * Object covering @p addr live at time @p when, or kNoObject.
     * Addresses are never reused (bump allocation), so at most one
     * record matches by range.
     */
    ObjectId objectAt(Addr addr, Cycles when) const;

    /**
     * Allocation timeline (Figure 7): total live application bytes
     * after every mmap/munmap event.
     */
    TimeSeries liveBytesSeries() const;

    /**
     * Peak bytes simultaneously live per allocation site (the planner's
     * capacity requirement for one site).
     */
    std::vector<std::pair<std::string, std::uint64_t>>
    peakLiveBytesBySite() const;

  private:
    struct Event
    {
        Cycles time;
        std::int64_t delta;  ///< +bytes on mmap, -bytes on munmap.
        std::string site;
    };

    std::vector<AllocationRecord> recs;
    std::vector<std::size_t> liveByObject;  ///< object -> index in recs.
    std::vector<Event> events;
};

}  // namespace memtier

#endif  // MEMTIER_PROFILE_MMAP_TRACKER_H_

/**
 * @file
 * PerfMemSampler: the perf-mem equivalent. Observes every load the
 * engine executes and records every N-th one per thread (sampling, not
 * tracing -- Section 3.1 stresses that tracing all accesses is not
 * practical, and neither is keeping them all in a simulator run).
 */

#ifndef MEMTIER_PROFILE_PERF_MEM_H_
#define MEMTIER_PROFILE_PERF_MEM_H_

#include <cstdint>
#include <vector>

#include "base/rng.h"
#include "profile/sample.h"
#include "sim/access_observer.h"

namespace memtier {

/** Sampler configuration. */
struct SamplerParams
{
    /** Mean loads between samples per thread (prime avoids striding). */
    std::uint32_t period = 61;

    /** Also record stores (perf-mem sees stores only at L1). */
    bool recordStores = false;

    /** Jitter seed; sampling gaps vary +-period/8 deterministically. */
    std::uint64_t seed = 0x5eed5a;
};

/** Sampling observer; owns the collected samples. */
class PerfMemSampler : public AccessObserver
{
  public:
    /** @param params sampling configuration. */
    explicit PerfMemSampler(const SamplerParams &params = SamplerParams{});

    /** AccessObserver: maybe record this access. */
    void onAccess(const AccessRecord &record) override;

    /**
     * AccessObserver: consume a whole batch with one virtual dispatch;
     * per element only the non-virtual sampling filter runs.
     */
    void
    onBatch(const AccessRecord *records, std::size_t count) override
    {
        for (std::size_t i = 0; i < count; ++i)
            sample(records[i]);
    }

    /** Collected samples in completion order per thread interleaving. */
    const std::vector<MemorySample> &samples() const { return store; }

    /** Move the samples out (ends this sampler's usefulness). */
    std::vector<MemorySample> takeSamples() { return std::move(store); }

    /** Total loads observed (sampled or not). */
    std::uint64_t loadsSeen() const { return loads_seen; }

  private:
    /** Sampling filter shared by the scalar and batch entry points. */
    void sample(const AccessRecord &record);

    SamplerParams cfg;
    Rng rng;
    std::vector<std::uint32_t> countdown;  ///< Per thread.
    std::vector<MemorySample> store;
    std::uint64_t loads_seen = 0;

    std::uint32_t nextGap();
};

}  // namespace memtier

#endif  // MEMTIER_PROFILE_PERF_MEM_H_

/**
 * @file
 * The paper's sample analyses (Sections 5 and 6): memory-level shares,
 * DRAM/NVM splits, latency-cost splits, TLB cost matrices, per-page
 * touch counts, reuse-time statistics, promotion detection, and the
 * sample-to-object aggregations of Figure 6.
 */

#ifndef MEMTIER_PROFILE_ANALYSIS_H_
#define MEMTIER_PROFILE_ANALYSIS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/stats.h"
#include "profile/mmap_tracker.h"
#include "profile/sample.h"

namespace memtier {

/** Fraction of samples serviced at each memory level (Figure 3). */
struct LevelShares
{
    double frac[kNumMemLevels] = {};
    double externalFrac = 0.0;  ///< DRAM + NVM ("outside cache").
    std::uint64_t total = 0;
};

/** Compute level shares over all samples. */
LevelShares levelShares(const std::vector<MemorySample> &samples);

/** DRAM/NVM split of the external samples (Table 1). */
struct ExternalSplit
{
    double dramFrac = 0.0;
    double nvmFrac = 0.0;
    std::uint64_t externalSamples = 0;
};

/** Compute the external-sample split. */
ExternalSplit externalSplit(const std::vector<MemorySample> &samples);

/** Latency-weighted DRAM/NVM split of external samples (Table 2). */
struct CostSplit
{
    double dramCostFrac = 0.0;
    double nvmCostFrac = 0.0;
    double totalCostCycles = 0.0;
};

/** Compute the external cost split. */
CostSplit externalCostSplit(const std::vector<MemorySample> &samples);

/** Mean external access cost by node and TLB outcome (Table 3). */
struct TlbCostMatrix
{
    /** mean[node][miss]: node 0=DRAM 1=NVM; miss 0=TLB hit 1=TLB miss. */
    double mean[2][2] = {};
    std::uint64_t count[2][2] = {};
};

/** Compute the TLB cost matrix over external samples. */
TlbCostMatrix tlbCostMatrix(const std::vector<MemorySample> &samples);

/** Per-page touch-count buckets over external samples (Figure 4). */
struct TouchBuckets
{
    /** Fraction of touched pages with exactly 1 / 2 / 3+ touches. */
    double pagesFrac[3] = {};

    /** Fraction of external accesses landing on such pages. */
    double accessFrac[3] = {};

    std::uint64_t touchedPages = 0;
    std::uint64_t externalAccesses = 0;
};

/** Compute touch buckets. */
TouchBuckets pageTouchBuckets(const std::vector<MemorySample> &samples);

/**
 * Reuse-time distribution (seconds) between the two accesses of pages
 * touched exactly twice, restricted to pages of @p object whose touches
 * include an NVM access (Figure 5's methodology).
 */
PercentileSummary
twoTouchReuseSeconds(const std::vector<MemorySample> &samples,
                     ObjectId object, const MmapTracker &tracker);

/**
 * Fraction of two-touch pages whose first touch was on NVM and second
 * on DRAM, i.e. pages observably promoted between their touches
 * (Section 5.2 reports at most 1.3%).
 */
double twoTouchPromotedFraction(const std::vector<MemorySample> &samples);

/** Per-object external access aggregation (Figure 6). */
struct ObjectAccessCount
{
    ObjectId object = kNoObject;
    std::string site;
    std::uint64_t bytes = 0;
    std::uint64_t dramSamples = 0;
    std::uint64_t nvmSamples = 0;
    std::uint64_t totalSamples = 0;  ///< All levels, mapped to object.
};

/**
 * Aggregate samples per object.
 * @return one entry per tracked object with at least one mapped sample.
 */
std::vector<ObjectAccessCount>
objectAccessCounts(const std::vector<MemorySample> &samples,
                   const MmapTracker &tracker);

/** Object with the most NVM samples, or kNoObject when none. */
ObjectId hottestNvmObject(const std::vector<ObjectAccessCount> &counts);

/** Per-allocation-site aggregation feeding the object-level planner. */
struct SiteProfile
{
    std::string site;
    std::uint64_t peakLiveBytes = 0;
    std::uint64_t externalSamples = 0;
    std::uint64_t nvmSamples = 0;
    std::uint64_t totalSamples = 0;

    /** Planner score: external accesses per byte (Section 7). */
    double
    score() const
    {
        return peakLiveBytes == 0
                   ? 0.0
                   : static_cast<double>(externalSamples) /
                         static_cast<double>(peakLiveBytes);
    }
};

/** Aggregate per site, sorted by descending score. */
std::vector<SiteProfile>
siteProfiles(const std::vector<MemorySample> &samples,
             const MmapTracker &tracker);

}  // namespace memtier

#endif  // MEMTIER_PROFILE_ANALYSIS_H_

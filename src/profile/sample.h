/**
 * @file
 * The memory-sample record produced by the PEBS-style sampler --- the
 * same fields a perf-mem load sample carries (Section 3.1): memory
 * level, address, latency in cycles, plus the TLB outcome and timestamp
 * used by the paper's analyses.
 */

#ifndef MEMTIER_PROFILE_SAMPLE_H_
#define MEMTIER_PROFILE_SAMPLE_H_

#include <cstdint>

#include "base/types.h"

namespace memtier {

/** One sampled memory load. */
struct MemorySample
{
    Cycles time = 0;     ///< Completion timestamp.
    Addr vaddr = 0;      ///< Sampled virtual address.
    Cycles latency = 0;  ///< Access cost in cycles.
    ThreadId tid = 0;
    MemLevel level = MemLevel::L1;  ///< Where the load was serviced.
    bool tlbMiss = false;           ///< Preceded by a page walk.

    /** True when the sample hit DRAM or NVM (outside the caches). */
    bool external() const { return isExternalLevel(level); }

    /** Timestamp in simulated seconds. */
    double seconds() const { return cyclesToSeconds(time); }

    /** Page containing the sampled address. */
    PageNum page() const { return pageOf(vaddr); }
};

}  // namespace memtier

#endif  // MEMTIER_PROFILE_SAMPLE_H_

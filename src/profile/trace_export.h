/**
 * @file
 * Artifact-compatible trace export. The paper's artifact pipeline
 * post-processes perf.data and the syscall-intercept log into
 * memory_trace.csv / mmap_trace.csv / munmap_trace.csv, then maps the
 * samples to objects into perfmem_trace_mapped_DRAM.csv and
 * perfmem_trace_mapped_PMEM.csv (Appendix, Section 6). These writers
 * emit the same files from a simulator run so the artifact's plotting
 * scripts have a drop-in data source.
 */

#ifndef MEMTIER_PROFILE_TRACE_EXPORT_H_
#define MEMTIER_PROFILE_TRACE_EXPORT_H_

#include <ostream>
#include <string>
#include <vector>

#include "profile/mmap_tracker.h"
#include "profile/sample.h"

namespace memtier {

/**
 * memory_trace.csv: one row per sample --
 * timestamp_sec, tid, vaddr, level, latency_cycles, tlb_miss.
 * @return rows written.
 */
std::size_t writeMemoryTrace(std::ostream &out,
                             const std::vector<MemorySample> &samples);

/**
 * mmap_trace.csv: one row per allocation --
 * timestamp_sec, object, site, start_addr, bytes.
 * @return rows written.
 */
std::size_t writeMmapTrace(std::ostream &out, const MmapTracker &tracker);

/**
 * munmap_trace.csv: one row per free --
 * timestamp_sec, object, start_addr, bytes.
 * @return rows written.
 */
std::size_t writeMunmapTrace(std::ostream &out,
                             const MmapTracker &tracker);

/**
 * perfmem_trace_mapped_{DRAM,PMEM}.csv: external samples of the given
 * node, mapped to their object --
 * timestamp_sec, vaddr, object, site, page_in_object, latency_cycles.
 *
 * @param node which tier's samples to emit (the artifact splits the
 *        two into separate files, PMEM being its name for NVM).
 * @return rows written.
 */
std::size_t writeMappedSamples(std::ostream &out,
                               const std::vector<MemorySample> &samples,
                               const MmapTracker &tracker, MemNode node);

/**
 * allocations.csv: the per-object summary the artifact's ranking step
 * consumes -- object, site, bytes, alloc_sec, free_sec (-1 if live).
 * @return rows written.
 */
std::size_t writeAllocations(std::ostream &out,
                             const MmapTracker &tracker);

}  // namespace memtier

#endif  // MEMTIER_PROFILE_TRACE_EXPORT_H_

#include "profile/analysis.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "base/logging.h"

namespace memtier {

LevelShares
levelShares(const std::vector<MemorySample> &samples)
{
    LevelShares out;
    out.total = samples.size();
    if (samples.empty())
        return out;
    std::uint64_t counts[kNumMemLevels] = {};
    for (const auto &s : samples)
        ++counts[static_cast<int>(s.level)];
    for (int l = 0; l < kNumMemLevels; ++l) {
        out.frac[l] = static_cast<double>(counts[l]) /
                      static_cast<double>(out.total);
    }
    out.externalFrac = out.frac[static_cast<int>(MemLevel::DRAM)] +
                       out.frac[static_cast<int>(MemLevel::NVM)];
    return out;
}

ExternalSplit
externalSplit(const std::vector<MemorySample> &samples)
{
    ExternalSplit out;
    std::uint64_t dram = 0;
    std::uint64_t nvm = 0;
    for (const auto &s : samples) {
        if (s.level == MemLevel::DRAM)
            ++dram;
        else if (s.level == MemLevel::NVM)
            ++nvm;
    }
    out.externalSamples = dram + nvm;
    if (out.externalSamples == 0)
        return out;
    out.dramFrac = static_cast<double>(dram) /
                   static_cast<double>(out.externalSamples);
    out.nvmFrac = static_cast<double>(nvm) /
                  static_cast<double>(out.externalSamples);
    return out;
}

CostSplit
externalCostSplit(const std::vector<MemorySample> &samples)
{
    CostSplit out;
    double dram = 0.0;
    double nvm = 0.0;
    for (const auto &s : samples) {
        if (s.level == MemLevel::DRAM)
            dram += static_cast<double>(s.latency);
        else if (s.level == MemLevel::NVM)
            nvm += static_cast<double>(s.latency);
    }
    out.totalCostCycles = dram + nvm;
    if (out.totalCostCycles == 0.0)
        return out;
    out.dramCostFrac = dram / out.totalCostCycles;
    out.nvmCostFrac = nvm / out.totalCostCycles;
    return out;
}

TlbCostMatrix
tlbCostMatrix(const std::vector<MemorySample> &samples)
{
    TlbCostMatrix out;
    double sum[2][2] = {};
    for (const auto &s : samples) {
        if (!s.external())
            continue;
        const int node = s.level == MemLevel::DRAM ? 0 : 1;
        const int miss = s.tlbMiss ? 1 : 0;
        sum[node][miss] += static_cast<double>(s.latency);
        ++out.count[node][miss];
    }
    for (int n = 0; n < 2; ++n) {
        for (int m = 0; m < 2; ++m) {
            if (out.count[n][m] > 0) {
                out.mean[n][m] =
                    sum[n][m] / static_cast<double>(out.count[n][m]);
            }
        }
    }
    return out;
}

TouchBuckets
pageTouchBuckets(const std::vector<MemorySample> &samples)
{
    TouchBuckets out;
    std::unordered_map<PageNum, std::uint32_t> touches;
    for (const auto &s : samples) {
        if (!s.external())
            continue;
        ++touches[s.page()];
        ++out.externalAccesses;
    }
    out.touchedPages = touches.size();
    if (out.touchedPages == 0)
        return out;

    std::uint64_t pages[3] = {};
    std::uint64_t accesses[3] = {};
    for (const auto &[page, count] : touches) {
        const int bucket = count >= 3 ? 2 : static_cast<int>(count) - 1;
        ++pages[bucket];
        accesses[bucket] += count;
    }
    for (int b = 0; b < 3; ++b) {
        out.pagesFrac[b] = static_cast<double>(pages[b]) /
                           static_cast<double>(out.touchedPages);
        out.accessFrac[b] = static_cast<double>(accesses[b]) /
                            static_cast<double>(out.externalAccesses);
    }
    return out;
}

PercentileSummary
twoTouchReuseSeconds(const std::vector<MemorySample> &samples,
                     ObjectId object, const MmapTracker &tracker)
{
    // First & second external touch time per page of the object, pages
    // with exactly two touches and at least one NVM touch.
    struct Touches
    {
        Cycles first = 0;
        Cycles second = 0;
        std::uint32_t count = 0;
        bool nvm = false;
    };
    std::unordered_map<PageNum, Touches> touches;
    for (const auto &s : samples) {
        if (!s.external())
            continue;
        if (tracker.objectAt(s.vaddr, s.time) != object)
            continue;
        auto &t = touches[s.page()];
        ++t.count;
        if (t.count == 1)
            t.first = s.time;
        else if (t.count == 2)
            t.second = s.time;
        if (s.level == MemLevel::NVM)
            t.nvm = true;
    }

    PercentileSummary out;
    for (const auto &[page, t] : touches) {
        if (t.count == 2 && t.nvm)
            out.add(cyclesToSeconds(t.second - t.first));
    }
    return out;
}

double
twoTouchPromotedFraction(const std::vector<MemorySample> &samples)
{
    struct Pair
    {
        MemLevel first = MemLevel::L1;
        MemLevel second = MemLevel::L1;
        std::uint32_t count = 0;
    };
    std::unordered_map<PageNum, Pair> touches;
    for (const auto &s : samples) {
        if (!s.external())
            continue;
        auto &t = touches[s.page()];
        ++t.count;
        if (t.count == 1)
            t.first = s.level;
        else if (t.count == 2)
            t.second = s.level;
    }
    std::uint64_t two_touch = 0;
    std::uint64_t promoted = 0;
    for (const auto &[page, t] : touches) {
        if (t.count != 2)
            continue;
        ++two_touch;
        if (t.first == MemLevel::NVM && t.second == MemLevel::DRAM)
            ++promoted;
    }
    return two_touch == 0 ? 0.0
                          : static_cast<double>(promoted) /
                                static_cast<double>(two_touch);
}

std::vector<ObjectAccessCount>
objectAccessCounts(const std::vector<MemorySample> &samples,
                   const MmapTracker &tracker)
{
    std::map<ObjectId, ObjectAccessCount> counts;
    for (const auto &s : samples) {
        const ObjectId obj = tracker.objectAt(s.vaddr, s.time);
        if (obj == kNoObject)
            continue;
        auto &c = counts[obj];
        if (c.object == kNoObject) {
            c.object = obj;
            const AllocationRecord *rec = tracker.find(obj);
            MEMTIER_ASSERT(rec != nullptr, "sample mapped to ghost");
            c.site = rec->site;
            c.bytes = rec->bytes;
        }
        ++c.totalSamples;
        if (s.level == MemLevel::DRAM)
            ++c.dramSamples;
        else if (s.level == MemLevel::NVM)
            ++c.nvmSamples;
    }
    std::vector<ObjectAccessCount> out;
    out.reserve(counts.size());
    for (auto &[id, c] : counts)
        out.push_back(std::move(c));
    return out;
}

ObjectId
hottestNvmObject(const std::vector<ObjectAccessCount> &counts)
{
    ObjectId best = kNoObject;
    std::uint64_t most = 0;
    for (const auto &c : counts) {
        if (c.nvmSamples > most) {
            most = c.nvmSamples;
            best = c.object;
        }
    }
    return best;
}

std::vector<SiteProfile>
siteProfiles(const std::vector<MemorySample> &samples,
             const MmapTracker &tracker)
{
    std::map<std::string, SiteProfile> by_site;
    for (const auto &[site, peak] : tracker.peakLiveBytesBySite()) {
        SiteProfile p;
        p.site = site;
        p.peakLiveBytes = peak;
        by_site.emplace(site, std::move(p));
    }
    for (const auto &s : samples) {
        const ObjectId obj = tracker.objectAt(s.vaddr, s.time);
        if (obj == kNoObject)
            continue;
        const AllocationRecord *rec = tracker.find(obj);
        auto it = by_site.find(rec->site);
        MEMTIER_ASSERT(it != by_site.end(), "sample from unknown site");
        ++it->second.totalSamples;
        if (s.external()) {
            ++it->second.externalSamples;
            if (s.level == MemLevel::NVM)
                ++it->second.nvmSamples;
        }
    }
    std::vector<SiteProfile> out;
    out.reserve(by_site.size());
    for (auto &[site, p] : by_site)
        out.push_back(std::move(p));
    std::sort(out.begin(), out.end(),
              [](const SiteProfile &a, const SiteProfile &b) {
                  if (a.score() != b.score())
                      return a.score() > b.score();
                  return a.site < b.site;
              });
    return out;
}

}  // namespace memtier

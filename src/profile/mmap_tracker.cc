#include "profile/mmap_tracker.h"

#include <algorithm>
#include <map>

#include "base/logging.h"

namespace memtier {

void
MmapTracker::onMmap(Cycles now, Addr addr, std::uint64_t bytes,
                    ObjectId object, const std::string &site)
{
    if (object < 0)
        return;  // Page-cache ranges are not application objects.
    AllocationRecord rec;
    rec.object = object;
    rec.site = site;
    rec.start = addr;
    rec.bytes = bytes;
    rec.allocTime = now;
    if (static_cast<std::size_t>(object) >= liveByObject.size())
        liveByObject.resize(static_cast<std::size_t>(object) + 1, SIZE_MAX);
    liveByObject[static_cast<std::size_t>(object)] = recs.size();
    recs.push_back(rec);
    events.push_back({now, static_cast<std::int64_t>(bytes), site});
}

void
MmapTracker::onMunmap(Cycles now, Addr addr, std::uint64_t bytes,
                      ObjectId object)
{
    (void)addr;
    if (object < 0)
        return;
    MEMTIER_ASSERT(static_cast<std::size_t>(object) < liveByObject.size(),
                   "munmap of untracked object");
    const std::size_t idx = liveByObject[static_cast<std::size_t>(object)];
    MEMTIER_ASSERT(idx != SIZE_MAX, "munmap of freed object");
    recs[idx].freeTime = now;
    liveByObject[static_cast<std::size_t>(object)] = SIZE_MAX;
    events.push_back({now, -static_cast<std::int64_t>(bytes),
                      recs[idx].site});
}

const AllocationRecord *
MmapTracker::find(ObjectId object) const
{
    for (const auto &rec : recs) {
        if (rec.object == object)
            return &rec;
    }
    return nullptr;
}

ObjectId
MmapTracker::objectAt(Addr addr, Cycles when) const
{
    // Addresses are unique (bump allocation): binary search by start.
    // recs is sorted by start because mmap returns increasing addresses.
    auto it = std::upper_bound(
        recs.begin(), recs.end(), addr,
        [](Addr a, const AllocationRecord &r) { return a < r.start; });
    if (it == recs.begin())
        return kNoObject;
    --it;
    return it->covers(addr, when) ? it->object : kNoObject;
}

TimeSeries
MmapTracker::liveBytesSeries() const
{
    TimeSeries series;
    std::int64_t live = 0;
    for (const auto &e : events) {
        live += e.delta;
        series.add(cyclesToSeconds(e.time),
                   static_cast<double>(live));
    }
    return series;
}

std::vector<std::pair<std::string, std::uint64_t>>
MmapTracker::peakLiveBytesBySite() const
{
    std::map<std::string, std::int64_t> live;
    std::map<std::string, std::uint64_t> peak;
    for (const auto &e : events) {
        auto &cur = live[e.site];
        cur += e.delta;
        auto &pk = peak[e.site];
        pk = std::max(pk, static_cast<std::uint64_t>(
                              std::max<std::int64_t>(cur, 0)));
    }
    return {peak.begin(), peak.end()};
}

}  // namespace memtier

#include "serve/serve_driver.h"

#include <memory>

#include "base/logging.h"
#include "serve/kv_store.h"
#include "serve/request_gen.h"

namespace memtier {

namespace {

/** Deterministic value written by the @p seq'th SET of the stream. */
std::uint64_t
setValue(std::uint64_t seed, std::uint64_t seq)
{
    return (seed ^ 0x7365727665ULL) + seq;  // Never the LSM tombstone.
}

/** Checksum sentinel recorded for a request killed by SIGBUS. */
constexpr std::uint64_t kSigbusDigest = 0x53494742ULL;  // "SIGB"

}  // namespace

ServingReport
runServing(Engine &eng, SimHeap &heap, const ServingSpec &spec)
{
    MEMTIER_ASSERT(spec.serverThreads >= 1 &&
                       spec.serverThreads <= eng.threadCount(),
                   "server thread pool exceeds the machine");

    ServingReport out;
    // Expose the live request-latency histogram to the engine's
    // observation plane: per-epoch MetricsViews sample its quantiles
    // while the serve phase runs (cleared before returning).
    eng.setServingLatencyProbe(&out.latency);
    ThreadContext &t0 = eng.thread(0);

    // Construct only the selected store, on t0, so allocation and
    // prefill time lands in the load phase.
    std::unique_ptr<SimKvStore> kv_storage;
    std::unique_ptr<SimLsmStore> lsm_storage;
    if (spec.app == ServeApp::KV)
        kv_storage = std::make_unique<SimKvStore>(eng, heap, t0, spec.kv);
    else
        lsm_storage =
            std::make_unique<SimLsmStore>(eng, heap, t0, spec.lsm);
    SimKvStore *kv = kv_storage.get();
    SimLsmStore *lsm = lsm_storage.get();

    // Prefill every key (the store's working set; the serve phase then
    // churns it). Prefill values use sequence numbers past the request
    // stream so they never collide with served SETs.
    const std::uint64_t prefill_base = spec.gen.requests;
    for (std::uint64_t k = 0; k < spec.gen.numKeys; ++k) {
        const std::uint64_t v = setValue(spec.gen.seed, prefill_base + k);
        if (kv)
            kv->set(t0, k, v);
        else
            lsm->put(t0, k, v);
    }
    const Cycles prefill_end = eng.globalTime();
    out.prefillSeconds = cyclesToSeconds(prefill_end);

    // The server pool starts when the prefill ends.
    for (std::uint32_t i = 0; i < spec.serverThreads; ++i)
        eng.thread(i).setClock(prefill_end);

    RequestGenerator gen(spec.gen);
    ServeRequest r;
    std::uint64_t seq = 0;
    while (gen.next(&r)) {
        ThreadContext &t =
            eng.thread(static_cast<std::uint32_t>(seq % spec.serverThreads));
        const Cycles arrival = prefill_end + r.arrival;
        if (t.clock() < arrival)
            t.setClock(arrival);  // Idle server: no queueing delay.

        // Requests execute one at a time, so a change in the kernel's
        // SIGBUS count across the request pins the kill to it: the
        // server thread aborted mid-request and the client sees an
        // error response instead of an answer.
        const std::uint64_t sigbus_before =
            eng.kernel().vmstat().hwpoisonSigbus;

        std::uint64_t digest = 0;
        switch (r.op) {
          case ServeOp::Get: {
            if (kv) {
                const auto g = kv->get(t, r.key);
                digest = g.found ? g.value : 0x6d697373ULL;
            } else {
                const auto g = lsm->get(t, r.key);
                digest = g.found ? g.value : 0x6d697373ULL;
            }
            break;
          }
          case ServeOp::Set: {
            const std::uint64_t v = setValue(spec.gen.seed, seq);
            if (kv)
                kv->set(t, r.key, v);
            else
                lsm->put(t, r.key, v);
            break;
          }
          case ServeOp::Del: {
            if (kv)
                digest = kv->del(t, r.key) ? 1 : 2;
            else
                lsm->del(t, r.key);
            break;
          }
          case ServeOp::Scan: {
            digest = kv ? kv->scan(t, r.key, r.scanLength)
                        : lsm->scan(t, r.key, r.scanLength);
            break;
          }
        }

        if (eng.kernel().vmstat().hwpoisonSigbus != sigbus_before) {
            ++out.errors;
            digest = kSigbusDigest;
        }

        const Cycles latency = t.clock() - arrival;
        out.latency.add(latency);
        out.phaseLatency[static_cast<int>(r.phase)].add(latency);
        ++out.opCounts[static_cast<int>(r.op)];
        out.checksum += digest * 0x9e3779b97f4a7c15ULL;
        ++seq;
    }
    out.requests = seq;

    if (kv) {
        out.kvProbes = kv->totalProbes();
        out.checksum += kv->liveKeys() * 0x9e3779b97f4a7c15ULL;
        kv->freeStorage(t0);
    } else {
        out.lsm = lsm->stats();
        lsm->freeStorage(t0);
    }
    out.totalSeconds = cyclesToSeconds(eng.globalTime());
    eng.setServingLatencyProbe(nullptr);
    return out;
}

}  // namespace memtier

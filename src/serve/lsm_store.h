/**
 * @file
 * SimLsmStore: a LevelDB-style log-structured merge store on the
 * simulated tiered memory. The mutable and immutable memtables are
 * SimHeap hash regions (hot, allocation-churning), the SSTs are
 * SimFiles read through the simulated page cache, and point reads are
 * fronted by a block cache living in a SimHeap arena -- giving the
 * tiering policy the natural hot (memtable + block cache) vs. cold
 * (SST levels) split that the serving tier exists to stress.
 */

#ifndef MEMTIER_SERVE_LSM_STORE_H_
#define MEMTIER_SERVE_LSM_STORE_H_

#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <vector>

#include "runtime/sim_file.h"
#include "runtime/sim_heap.h"
#include "runtime/sim_vector.h"
#include "serve/serve_params.h"
#include "sim/engine.h"
#include "sim/thread_context.h"

namespace memtier {

/** The LSM application. */
class SimLsmStore
{
  public:
    /** Result of a GET. */
    struct GetResult
    {
        bool found = false;
        std::uint64_t value = 0;
    };

    /** Counters exposed for reports and invariant tests. */
    struct Stats
    {
        std::uint64_t flushes = 0;
        std::uint64_t compactions = 0;
        std::uint64_t blockCacheHits = 0;
        std::uint64_t blockCacheMisses = 0;
        std::uint64_t sstProbes = 0;
    };

    SimLsmStore(Engine &engine, SimHeap &heap, ThreadContext &t,
                const LsmParams &params);

    /** Release every simulated allocation and close open SSTs. */
    void freeStorage(ThreadContext &t);

    /** Timed upsert. @p value must not be the tombstone sentinel. */
    void put(ThreadContext &t, std::uint64_t key, std::uint64_t value);

    /** Timed delete (writes a tombstone). */
    void del(ThreadContext &t, std::uint64_t key);

    /** Timed point lookup: memtables, then L0 newest-first, then L1. */
    GetResult get(ThreadContext &t, std::uint64_t key);

    /**
     * Timed range scan: read up to @p n entries with key >= @p key from
     * L1 through the block cache, merging nothing (an approximation of
     * the iterator; memtable contents are not folded in).
     * @return digest of the visited entries.
     */
    std::uint64_t scan(ThreadContext &t, std::uint64_t key,
                       std::uint32_t n);

    /**
     * Rotate and flush every memtable and compact L0 into L1 (shutdown
     * / test barrier; makes L1 the single authoritative sorted run).
     */
    void flushAll(ThreadContext &t);

    const Stats &stats() const { return st; }

    /** Entries in the mutable memtable. */
    std::uint64_t mutableEntries() const { return mem.entries; }

    /** Immutable memtables waiting to flush. */
    std::size_t immutableCount() const { return immutables.size(); }

    /** L0 SST count. */
    std::size_t l0Count() const { return l0.size(); }

    /** True when L1 holds an SST. */
    bool hasL1() const { return l1 != nullptr; }

    /** Host-side view of an SST's sorted keys (invariant tests). */
    const std::vector<std::uint64_t> &l1Keys() const;

    /** Tombstone sentinel value (never a valid user value). */
    static constexpr std::uint64_t kTombstone = ~std::uint64_t{0};

  private:
    /** One memtable: an open-addressed hash region on the SimHeap. */
    struct Memtable
    {
        SimVector<std::uint64_t> keys;  ///< 0 empty, else key + 1.
        SimVector<std::uint64_t> vals;
        std::uint64_t entries = 0;
    };

    /** One sorted-run SST: a SimFile plus the host-side truth. */
    struct Sst
    {
        std::unique_ptr<SimFile> file;
        std::vector<std::uint64_t> keys;  ///< Strictly ascending.
        std::vector<std::uint64_t> vals;
        std::uint64_t minKey = 0;
        std::uint64_t maxKey = 0;
    };

    std::uint64_t memSlotOf(std::uint64_t key) const;
    void allocMemtable(ThreadContext &t, Memtable *m);
    void freeMemtable(ThreadContext &t, Memtable *m);
    bool memtableGet(ThreadContext &t, const Memtable &m,
                     std::uint64_t key, std::uint64_t *value);
    void rotateMemtable(ThreadContext &t);
    void flushOldestImmutable(ThreadContext &t);
    void maybeCompact(ThreadContext &t);

    /**
     * Timed read of entry @p index of @p sst through the block cache:
     * a cached block costs arena loads; a miss reads the SimFile block
     * (page cache + disk) and installs it in the cache arena.
     */
    void readSstEntry(ThreadContext &t, Sst &sst, std::uint64_t index);

    /** Binary search of @p sst, charging block reads per probe. */
    bool sstGet(ThreadContext &t, Sst &sst, std::uint64_t key,
                std::uint64_t *value);

    std::unique_ptr<Sst> buildSst(ThreadContext &t,
                                  std::vector<std::uint64_t> keys,
                                  std::vector<std::uint64_t> vals);

    Engine &eng;
    SimHeap &heap_;
    LsmParams p;

    Memtable mem;                     ///< Mutable.
    std::deque<Memtable> immutables;  ///< Oldest at front.

    std::vector<std::unique_ptr<Sst>> l0;  ///< Newest at back.
    std::unique_ptr<Sst> l1;

    /** Block cache: arena of 4 KiB block slots on the SimHeap. */
    SimVector<std::uint64_t> cacheArena;
    struct CacheKey
    {
        const Sst *sst;
        std::uint64_t block;
        auto operator<=>(const CacheKey &) const = default;
    };
    std::list<CacheKey> cacheLru;  ///< Most recent at front.
    std::map<CacheKey,
             std::pair<std::uint64_t, std::list<CacheKey>::iterator>>
        cacheIndex;  ///< Key -> (arena slot, LRU position).
    std::vector<std::uint64_t> freeCacheSlots;

    /** Drop every cached block of @p sst (before the SST is deleted). */
    void purgeCache(const Sst *sst);

    std::uint64_t nextSstId = 0;
    Stats st;
};

}  // namespace memtier

#endif  // MEMTIER_SERVE_LSM_STORE_H_

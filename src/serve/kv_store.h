/**
 * @file
 * SimKvStore: a Redis-style in-memory key-value store running on the
 * simulated tiered memory -- an open-addressed hash table plus a
 * value arena, both SimHeap objects, so every probe and value copy is
 * a timed access through the batched engine pipeline and the tiering
 * policy sees the natural hot split (table + hot values vs. the cold
 * arena tail).
 */

#ifndef MEMTIER_SERVE_KV_STORE_H_
#define MEMTIER_SERVE_KV_STORE_H_

#include <cstdint>
#include <vector>

#include "runtime/sim_heap.h"
#include "runtime/sim_vector.h"
#include "serve/serve_params.h"
#include "sim/engine.h"
#include "sim/thread_context.h"

namespace memtier {

/** The in-memory KV application. */
class SimKvStore
{
  public:
    /** Result of a GET. */
    struct GetResult
    {
        bool found = false;
        std::uint64_t value = 0;  ///< Digest of the value words.
    };

    /**
     * Allocate the table and arena (timed mmaps + initialization on
     * @p t). Keys are arbitrary uint64s; capacity is fixed for the
     * store's lifetime.
     */
    SimKvStore(Engine &engine, SimHeap &heap, ThreadContext &t,
               const KvParams &params);

    /** Release the store's simulated allocations. */
    void freeStorage(ThreadContext &t);

    /** Timed point lookup. */
    GetResult get(ThreadContext &t, std::uint64_t key);

    /**
     * Timed upsert: writes all value words derived from (key, value)
     * into the key's arena slot, allocating one on first insert.
     */
    void set(ThreadContext &t, std::uint64_t key, std::uint64_t value);

    /** Timed delete. @return true when the key was live. */
    bool del(ThreadContext &t, std::uint64_t key);

    /**
     * Timed scan: walk @p n table slots starting at @p key's natural
     * slot, reading the first value word of every live entry.
     * @return digest of the visited values.
     */
    std::uint64_t scan(ThreadContext &t, std::uint64_t key,
                       std::uint32_t n);

    /** Live keys. */
    std::uint64_t liveKeys() const { return live; }

    /** Table probes issued so far (load-factor health metric). */
    std::uint64_t totalProbes() const { return probes; }

    /** Digest of @p value's words as GET returns it (for models). */
    static std::uint64_t valueDigest(std::uint64_t key,
                                     std::uint64_t value,
                                     std::uint32_t value_words);

  private:
    // Slot encoding in the key table: 0 empty, 1 tombstone, else
    // key + 2 (keys near UINT64_MAX are rejected by the assert below).
    static constexpr std::uint64_t kEmpty = 0;
    static constexpr std::uint64_t kTombstone = 1;

    std::uint64_t slotOf(std::uint64_t key) const;

    /** Probe to @p key's slot. @return slot index, or the first free
     *  slot when @p for_insert and the key is absent; ~0 on miss. */
    std::uint64_t probe(ThreadContext &t, std::uint64_t key,
                        bool for_insert);

    Engine &eng;
    SimHeap &heap_;
    KvParams p;

    SimVector<std::uint64_t> table;    ///< Encoded keys.
    SimVector<std::uint64_t> slotRef;  ///< Table slot -> arena slot.
    SimVector<std::uint64_t> arena;    ///< arenaSlots * valueWords words.

    std::vector<std::uint32_t> freeSlots;  ///< Arena free list (host).
    std::vector<std::uint64_t> scratch;    ///< Value staging (host).
    std::uint64_t live = 0;
    std::uint64_t tombstones = 0;
    std::uint64_t probes = 0;
};

}  // namespace memtier

#endif  // MEMTIER_SERVE_KV_STORE_H_

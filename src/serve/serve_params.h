/**
 * @file
 * Configuration structs of the data-serving scenario tier: sizing of
 * the KV and LSM stores, the open-loop traffic model, and the SLO the
 * driver reports against. Everything is deterministic given the seed.
 */

#ifndef MEMTIER_SERVE_SERVE_PARAMS_H_
#define MEMTIER_SERVE_SERVE_PARAMS_H_

#include <cstdint>

#include "base/types.h"

namespace memtier {

/** Which serving application runs. */
enum class ServeApp : std::uint8_t {
    KV,   ///< Redis-style in-memory hash table + value arena.
    LSM,  ///< LevelDB-style memtables + block-cache-fronted SSTs.
};

/** Name of @p app ("kv"/"lsm"). */
const char *serveAppName(ServeApp app);

/** Sizing of the Redis-style in-memory KV store. */
struct KvParams
{
    /** Open-addressed table capacity (power of two). */
    std::uint64_t tableSlots = 1ULL << 17;

    /** Value-arena capacity in values (>= live keys at all times). */
    std::uint64_t arenaSlots = 1ULL << 16;

    /** Value size in 8-byte words (32 = 256 B values). */
    std::uint32_t valueWords = 32;
};

/** Sizing of the LevelDB-style LSM store. */
struct LsmParams
{
    /** Memtable hash capacity in entries (power of two). */
    std::uint64_t memtableSlots = 1ULL << 12;

    /** Rotate the mutable memtable at this fill fraction. */
    double memtableFillLimit = 0.7;

    /** Immutable memtables retained before the oldest is flushed. */
    std::uint32_t maxImmutables = 2;

    /** L0 SSTs that trigger a full merge into L1. */
    std::uint32_t l0CompactionThreshold = 4;

    /** Block-cache capacity in 4 KiB blocks. */
    std::uint64_t blockCacheBlocks = 128;
};

/** Phase of a serving run, derived from a request's arrival time. */
enum class ServePhase : std::uint8_t {
    OffPeak = 0,  ///< Diurnal trough (rate below the base rate).
    Peak,         ///< Diurnal crest (rate above the base rate).
    Storm,        ///< Connection-storm burst window.
};

/** Number of ServePhase values. */
inline constexpr int kNumServePhases = 3;

/** Name of @p phase ("offpeak", "peak", "storm"). */
const char *servePhaseName(ServePhase phase);

/** Request kinds issued by the generator. */
enum class ServeOp : std::uint8_t { Get = 0, Set, Del, Scan };

/** Name of @p op ("get", "set", "del", "scan"). */
const char *serveOpName(ServeOp op);

/** The open-loop traffic model. */
struct GeneratorParams
{
    /** Keyspace size (power of two; also the prefill population). */
    std::uint64_t numKeys = 1ULL << 15;

    /** Total requests to generate after the prefill. */
    std::uint64_t requests = 20000;

    /**
     * Zipfian skew of key popularity (0 = uniform; 0.99 = the YCSB
     * default hot-key distribution).
     */
    double zipfTheta = 0.99;

    /** Fraction of requests that are GETs. */
    double readFraction = 0.75;

    /** Fraction of requests that are SCANs. */
    double scanFraction = 0.05;

    /** Fraction of the remaining writes that are DELs (rest are SETs;
     *  every DEL'd key is eventually re-SET by the churn, keeping the
     *  live population near numKeys). */
    double deleteFraction = 0.10;

    /** Keys read per SCAN. */
    std::uint32_t scanLength = 32;

    /** Mean arrival rate in requests per simulated second. */
    double baseRate = 1.0e6;

    /**
     * Diurnal modulation: rate(t) = baseRate * (1 + amplitude *
     * sin(2*pi*t / period)), clipped below at 10% of base.
     */
    double diurnalAmplitude = 0.5;

    /** Diurnal period in simulated seconds. */
    double diurnalPeriodSec = 0.004;

    /** Connection-storm window start (simulated seconds from t=0). */
    double stormStartSec = 0.003;

    /** Connection-storm window length in simulated seconds. */
    double stormDurationSec = 0.0005;

    /** Arrival-rate multiplier inside the storm window. */
    double stormMultiplier = 4.0;

    /** Deterministic seed of the request stream. */
    std::uint64_t seed = 1234;
};

/** One full serving scenario: app, store sizing, traffic and SLO. */
struct ServingSpec
{
    ServeApp app = ServeApp::KV;
    KvParams kv;
    LsmParams lsm;
    GeneratorParams gen;

    /** Logical server threads requests round-robin onto. */
    std::uint32_t serverThreads = 4;

    /** Tail-latency SLO in simulated microseconds. */
    double sloMicros = 8.0;

    /** SLO converted to cycles. */
    Cycles sloCycles() const
    {
        return static_cast<Cycles>(
            sloMicros * static_cast<double>(kCyclesPerSecond) / 1e6);
    }
};

}  // namespace memtier

#endif  // MEMTIER_SERVE_SERVE_PARAMS_H_

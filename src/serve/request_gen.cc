#include "serve/request_gen.h"

#include <cmath>

#include "base/logging.h"

namespace memtier {

const char *
serveAppName(ServeApp app)
{
    switch (app) {
      case ServeApp::KV: return "kv";
      case ServeApp::LSM: return "lsm";
    }
    return "?";
}

const char *
servePhaseName(ServePhase phase)
{
    switch (phase) {
      case ServePhase::OffPeak: return "offpeak";
      case ServePhase::Peak: return "peak";
      case ServePhase::Storm: return "storm";
    }
    return "?";
}

const char *
serveOpName(ServeOp op)
{
    switch (op) {
      case ServeOp::Get: return "get";
      case ServeOp::Set: return "set";
      case ServeOp::Del: return "del";
      case ServeOp::Scan: return "scan";
    }
    return "?";
}

// ----------------------------------------------------------- ZipfianKeys

ZipfianKeys::ZipfianKeys(std::uint64_t num_keys, double theta)
    : numKeys(num_keys), theta(theta)
{
    MEMTIER_ASSERT(num_keys > 0 && (num_keys & (num_keys - 1)) == 0,
                   "keyspace must be a power of two");
    MEMTIER_ASSERT(theta >= 0.0 && theta < 1.0,
                   "zipf theta must be in [0, 1)");
    if (theta == 0.0)
        return;  // Uniform; no tables needed.
    for (std::uint64_t i = 1; i <= numKeys; ++i) {
        const double z = std::pow(1.0 / static_cast<double>(i), theta);
        zetan += z;
        if (i <= 2)
            zeta2 += z;
    }
    alpha = 1.0 / (1.0 - theta);
    eta = (1.0 - std::pow(2.0 / static_cast<double>(numKeys),
                          1.0 - theta)) /
          (1.0 - zeta2 / zetan);
}

std::uint64_t
ZipfianKeys::keyOfRank(std::uint64_t rank) const
{
    // Odd-multiplier multiplication is a bijection on Z_{2^k}, so the
    // popularity ranking is spread over the keyspace without collisions.
    return (rank * 0x9e3779b97f4a7c15ULL) & (numKeys - 1);
}

std::uint64_t
ZipfianKeys::next(Rng &rng) const
{
    if (theta == 0.0)
        return rng.nextBounded(numKeys);
    const double u = rng.nextDouble();
    const double uz = u * zetan;
    std::uint64_t rank;
    if (uz < 1.0) {
        rank = 0;
    } else if (uz < 1.0 + std::pow(0.5, theta)) {
        rank = 1;
    } else {
        rank = static_cast<std::uint64_t>(
            static_cast<double>(numKeys) *
            std::pow(eta * u - eta + 1.0, alpha));
        if (rank >= numKeys)
            rank = numKeys - 1;
    }
    return keyOfRank(rank);
}

// ------------------------------------------------------ RequestGenerator

RequestGenerator::RequestGenerator(const GeneratorParams &params)
    : p(params), keys(params.numKeys, params.zipfTheta), rng(params.seed)
{
    MEMTIER_ASSERT(p.baseRate > 0.0, "arrival rate must be positive");
    MEMTIER_ASSERT(p.readFraction + p.scanFraction <= 1.0,
                   "read + scan fractions exceed 1");
}

double
RequestGenerator::rateAt(double t_sec) const
{
    double rate = p.baseRate;
    if (p.diurnalAmplitude > 0.0 && p.diurnalPeriodSec > 0.0) {
        rate *= 1.0 + p.diurnalAmplitude *
                          std::sin(2.0 * M_PI * t_sec /
                                   p.diurnalPeriodSec);
    }
    if (phaseAt(t_sec) == ServePhase::Storm)
        rate *= p.stormMultiplier;
    return std::max(rate, 0.1 * p.baseRate);
}

ServePhase
RequestGenerator::phaseAt(double t_sec) const
{
    if (p.stormDurationSec > 0.0 && t_sec >= p.stormStartSec &&
        t_sec < p.stormStartSec + p.stormDurationSec) {
        return ServePhase::Storm;
    }
    if (p.diurnalAmplitude > 0.0 && p.diurnalPeriodSec > 0.0 &&
        std::sin(2.0 * M_PI * t_sec / p.diurnalPeriodSec) > 0.0) {
        return ServePhase::Peak;
    }
    return ServePhase::OffPeak;
}

bool
RequestGenerator::next(ServeRequest *out)
{
    if (emitted >= p.requests)
        return false;
    ++emitted;

    // Exponential inter-arrival at the instantaneous rate (a
    // non-homogeneous Poisson process by local linearization; exact
    // enough at these modulation depths and fully deterministic).
    const double u = rng.nextDouble();
    nowSec += -std::log1p(-u) / rateAt(nowSec);

    out->arrival = secondsToCycles(nowSec);
    out->phase = phaseAt(nowSec);
    out->key = keys.next(rng);
    out->scanLength = 0;

    const double mix = rng.nextDouble();
    if (mix < p.readFraction) {
        out->op = ServeOp::Get;
    } else if (mix < p.readFraction + p.scanFraction) {
        out->op = ServeOp::Scan;
        out->scanLength = p.scanLength;
    } else if (rng.nextBool(p.deleteFraction)) {
        out->op = ServeOp::Del;
    } else {
        out->op = ServeOp::Set;
    }
    return true;
}

std::vector<ServeRequest>
generateAll(const GeneratorParams &params)
{
    RequestGenerator gen(params);
    std::vector<ServeRequest> out;
    out.reserve(params.requests);
    ServeRequest r;
    while (gen.next(&r))
        out.push_back(r);
    return out;
}

}  // namespace memtier

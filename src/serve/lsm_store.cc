#include "serve/lsm_store.h"

#include <algorithm>
#include <utility>

#include "base/logging.h"

namespace memtier {

namespace {

/** SplitMix64 finalizer: the memtable's hash function. */
std::uint64_t
mix(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

// SST layout: 16-byte entries (key word, value word) in 4 KiB blocks.
constexpr std::uint64_t kBlockBytes = 4096;
constexpr std::uint64_t kEntryBytes = 16;
constexpr std::uint64_t kEntriesPerBlock = kBlockBytes / kEntryBytes;
constexpr std::uint64_t kWordsPerBlock = kBlockBytes / 8;

}  // namespace

SimLsmStore::SimLsmStore(Engine &engine, SimHeap &heap, ThreadContext &t,
                         const LsmParams &params)
    : eng(engine), heap_(heap), p(params)
{
    MEMTIER_ASSERT((p.memtableSlots & (p.memtableSlots - 1)) == 0,
                   "memtable capacity must be a power of two");
    MEMTIER_ASSERT(p.memtableFillLimit > 0.0 && p.memtableFillLimit < 1.0,
                   "memtable fill limit must be in (0, 1)");
    MEMTIER_ASSERT(p.blockCacheBlocks > 0, "block cache must be non-empty");
    allocMemtable(t, &mem);
    cacheArena = heap_.alloc<std::uint64_t>(
        t, "lsm.blockcache", p.blockCacheBlocks * kWordsPerBlock);
    freeCacheSlots.reserve(p.blockCacheBlocks);
    for (std::uint64_t s = p.blockCacheBlocks; s > 0; --s)
        freeCacheSlots.push_back(s - 1);
}

void
SimLsmStore::freeStorage(ThreadContext &t)
{
    freeMemtable(t, &mem);
    for (auto &m : immutables)
        freeMemtable(t, &m);
    immutables.clear();
    for (auto &sst : l0) {
        purgeCache(sst.get());
        sst->file->close(t);
    }
    l0.clear();
    if (l1) {
        purgeCache(l1.get());
        l1->file->close(t);
        l1.reset();
    }
    heap_.free(t, cacheArena);
}

std::uint64_t
SimLsmStore::memSlotOf(std::uint64_t key) const
{
    return mix(key) & (p.memtableSlots - 1);
}

void
SimLsmStore::allocMemtable(ThreadContext &t, Memtable *m)
{
    m->keys = heap_.alloc<std::uint64_t>(t, "lsm.mem.keys",
                                         p.memtableSlots);
    m->vals = heap_.alloc<std::uint64_t>(t, "lsm.mem.vals",
                                         p.memtableSlots);
    m->keys.fillRange(t, 0, p.memtableSlots, 0);
    m->entries = 0;
}

void
SimLsmStore::freeMemtable(ThreadContext &t, Memtable *m)
{
    heap_.free(t, m->keys);
    heap_.free(t, m->vals);
    m->entries = 0;
}

bool
SimLsmStore::memtableGet(ThreadContext &t, const Memtable &m,
                         std::uint64_t key, std::uint64_t *value)
{
    const std::uint64_t mask = p.memtableSlots - 1;
    std::uint64_t slot = memSlotOf(key);
    for (std::uint64_t i = 0; i <= mask; ++i, slot = (slot + 1) & mask) {
        const std::uint64_t enc = m.keys.get(t, slot);
        if (enc == key + 1) {
            *value = m.vals.get(t, slot);
            return true;
        }
        if (enc == 0)
            return false;
    }
    return false;
}

void
SimLsmStore::put(ThreadContext &t, std::uint64_t key, std::uint64_t value)
{
    MEMTIER_ASSERT(value != kTombstone,
                   "the tombstone sentinel is not a valid value");
    MEMTIER_ASSERT(key + 1 != 0, "key collides with the empty sentinel");
    const std::uint64_t mask = p.memtableSlots - 1;
    std::uint64_t slot = memSlotOf(key);
    for (std::uint64_t i = 0; i <= mask; ++i, slot = (slot + 1) & mask) {
        const std::uint64_t enc = mem.keys.get(t, slot);
        if (enc == key + 1) {
            mem.vals.set(t, slot, value);
            return;
        }
        if (enc == 0) {
            mem.keys.set(t, slot, key + 1);
            mem.vals.set(t, slot, value);
            ++mem.entries;
            if (static_cast<double>(mem.entries) >=
                p.memtableFillLimit *
                    static_cast<double>(p.memtableSlots)) {
                rotateMemtable(t);
            }
            return;
        }
    }
    MEMTIER_ASSERT(false, "lsm memtable is full");
}

void
SimLsmStore::del(ThreadContext &t, std::uint64_t key)
{
    // A delete is an upsert of the tombstone; it shadows older versions
    // down the tree and is dropped when compaction reaches the bottom.
    MEMTIER_ASSERT(key + 1 != 0, "key collides with the empty sentinel");
    const std::uint64_t mask = p.memtableSlots - 1;
    std::uint64_t slot = memSlotOf(key);
    for (std::uint64_t i = 0; i <= mask; ++i, slot = (slot + 1) & mask) {
        const std::uint64_t enc = mem.keys.get(t, slot);
        if (enc == key + 1) {
            mem.vals.set(t, slot, kTombstone);
            return;
        }
        if (enc == 0) {
            mem.keys.set(t, slot, key + 1);
            mem.vals.set(t, slot, kTombstone);
            ++mem.entries;
            if (static_cast<double>(mem.entries) >=
                p.memtableFillLimit *
                    static_cast<double>(p.memtableSlots)) {
                rotateMemtable(t);
            }
            return;
        }
    }
    MEMTIER_ASSERT(false, "lsm memtable is full");
}

SimLsmStore::GetResult
SimLsmStore::get(ThreadContext &t, std::uint64_t key)
{
    GetResult out;
    std::uint64_t v = 0;
    bool found = memtableGet(t, mem, key, &v);
    if (!found) {
        for (auto it = immutables.rbegin();
             !found && it != immutables.rend(); ++it)
            found = memtableGet(t, *it, key, &v);
    }
    if (!found) {
        for (auto it = l0.rbegin(); !found && it != l0.rend(); ++it)
            found = sstGet(t, **it, key, &v);
    }
    if (!found && l1)
        found = sstGet(t, *l1, key, &v);
    if (found && v != kTombstone) {
        out.found = true;
        out.value = v;
    }
    return out;
}

std::uint64_t
SimLsmStore::scan(ThreadContext &t, std::uint64_t key, std::uint32_t n)
{
    if (!l1)
        return 0;
    const auto &ks = l1->keys;
    std::uint64_t i = static_cast<std::uint64_t>(
        std::lower_bound(ks.begin(), ks.end(), key) - ks.begin());
    std::uint64_t h = 0;
    for (std::uint32_t read = 0; read < n && i < ks.size(); ++read, ++i) {
        readSstEntry(t, *l1, i);
        if (l1->vals[i] != kTombstone)
            h += ks[i] * 0x9e3779b97f4a7c15ULL + l1->vals[i];
    }
    return h;
}

void
SimLsmStore::rotateMemtable(ThreadContext &t)
{
    immutables.push_back(std::move(mem));
    allocMemtable(t, &mem);
    while (immutables.size() > p.maxImmutables)
        flushOldestImmutable(t);
}

void
SimLsmStore::flushOldestImmutable(ThreadContext &t)
{
    MEMTIER_ASSERT(!immutables.empty(), "no immutable memtable to flush");
    Memtable &m = immutables.front();

    // Timed sweep of the memtable, then a host-side sort: the flush
    // reads every slot once and emits one sorted run.
    std::vector<std::uint64_t> encs(p.memtableSlots);
    std::vector<std::uint64_t> vals(p.memtableSlots);
    m.keys.copyOut(t, 0, p.memtableSlots, encs.data());
    m.vals.copyOut(t, 0, p.memtableSlots, vals.data());

    std::vector<std::pair<std::uint64_t, std::uint64_t>> entries;
    entries.reserve(m.entries);
    for (std::uint64_t s = 0; s < p.memtableSlots; ++s) {
        if (encs[s] != 0)
            entries.emplace_back(encs[s] - 1, vals[s]);
    }
    std::sort(entries.begin(), entries.end());

    std::vector<std::uint64_t> keys_out, vals_out;
    keys_out.reserve(entries.size());
    vals_out.reserve(entries.size());
    for (const auto &[k, v] : entries) {
        keys_out.push_back(k);
        vals_out.push_back(v);
    }

    freeMemtable(t, &m);
    immutables.pop_front();

    if (auto sst = buildSst(t, std::move(keys_out), std::move(vals_out)))
        l0.push_back(std::move(sst));
    ++st.flushes;
    maybeCompact(t);
}

void
SimLsmStore::maybeCompact(ThreadContext &t)
{
    if (l0.size() < p.l0CompactionThreshold)
        return;

    // Full-merge compaction of every L0 run plus L1 into a single L1
    // run. Insert oldest-first so newer versions overwrite; this is the
    // bottom level, so tombstones are dropped from the output.
    std::map<std::uint64_t, std::uint64_t> merged;
    if (l1) {
        l1->file->read(t, 0, l1->file->size());
        for (std::size_t i = 0; i < l1->keys.size(); ++i)
            merged[l1->keys[i]] = l1->vals[i];
    }
    for (auto &sst : l0) {  // Front is oldest.
        sst->file->read(t, 0, sst->file->size());
        for (std::size_t i = 0; i < sst->keys.size(); ++i)
            merged[sst->keys[i]] = sst->vals[i];
    }

    std::vector<std::uint64_t> keys_out, vals_out;
    keys_out.reserve(merged.size());
    vals_out.reserve(merged.size());
    for (const auto &[k, v] : merged) {
        if (v != kTombstone) {
            keys_out.push_back(k);
            vals_out.push_back(v);
        }
    }

    for (auto &sst : l0) {
        purgeCache(sst.get());
        sst->file->close(t);
    }
    l0.clear();
    if (l1) {
        purgeCache(l1.get());
        l1->file->close(t);
        l1.reset();
    }
    l1 = buildSst(t, std::move(keys_out), std::move(vals_out));
    ++st.compactions;
}

void
SimLsmStore::flushAll(ThreadContext &t)
{
    if (mem.entries > 0) {
        immutables.push_back(std::move(mem));
        allocMemtable(t, &mem);
    }
    while (!immutables.empty())
        flushOldestImmutable(t);
    if (!l0.empty()) {
        // Force the L0 -> L1 merge regardless of the threshold.
        const std::uint32_t saved = p.l0CompactionThreshold;
        p.l0CompactionThreshold = 1;
        maybeCompact(t);
        p.l0CompactionThreshold = saved;
    }
}

const std::vector<std::uint64_t> &
SimLsmStore::l1Keys() const
{
    MEMTIER_ASSERT(l1 != nullptr, "no L1 SST");
    return l1->keys;
}

std::unique_ptr<SimLsmStore::Sst>
SimLsmStore::buildSst(ThreadContext &t, std::vector<std::uint64_t> keys,
                      std::vector<std::uint64_t> vals)
{
    if (keys.empty())
        return nullptr;
    auto sst = std::make_unique<Sst>();
    sst->minKey = keys.front();
    sst->maxKey = keys.back();
    sst->keys = std::move(keys);
    sst->vals = std::move(vals);
    const std::uint64_t bytes = sst->keys.size() * kEntryBytes;
    sst->file = std::make_unique<SimFile>(
        eng, "lsm.sst." + std::to_string(nextSstId++), bytes);
    // Writing the SST streams it through the page cache, so a fresh run
    // starts cached (and the write-back traffic is charged here).
    sst->file->read(t, 0, bytes);
    return sst;
}

void
SimLsmStore::purgeCache(const Sst *sst)
{
    for (auto it = cacheIndex.begin(); it != cacheIndex.end();) {
        if (it->first.sst == sst) {
            freeCacheSlots.push_back(it->second.first);
            cacheLru.erase(it->second.second);
            it = cacheIndex.erase(it);
        } else {
            ++it;
        }
    }
}

void
SimLsmStore::readSstEntry(ThreadContext &t, Sst &sst, std::uint64_t index)
{
    MEMTIER_ASSERT(index < sst.keys.size(), "SST read out of range");
    const std::uint64_t block = index / kEntriesPerBlock;
    const CacheKey ck{&sst, block};
    ++st.sstProbes;

    std::uint64_t slot;
    const auto it = cacheIndex.find(ck);
    if (it != cacheIndex.end()) {
        ++st.blockCacheHits;
        slot = it->second.first;
        cacheLru.splice(cacheLru.begin(), cacheLru, it->second.second);
        it->second.second = cacheLru.begin();
    } else {
        ++st.blockCacheMisses;
        if (freeCacheSlots.empty()) {
            const CacheKey victim = cacheLru.back();
            cacheLru.pop_back();
            const auto vit = cacheIndex.find(victim);
            MEMTIER_ASSERT(vit != cacheIndex.end(),
                           "LRU/index out of sync");
            slot = vit->second.first;
            cacheIndex.erase(vit);
        } else {
            slot = freeCacheSlots.back();
            freeCacheSlots.pop_back();
        }
        const std::uint64_t off = block * kBlockBytes;
        const std::uint64_t len =
            std::min(kBlockBytes, sst.file->size() - off);
        sst.file->read(t, off, len);
        // Install the block: timed stores of its words into the arena.
        const std::uint64_t wbase = slot * kWordsPerBlock;
        const std::uint64_t first = block * kEntriesPerBlock;
        cacheArena.generate(
            t, wbase, wbase + (len + 7) / 8, [&](std::uint64_t i) {
                const std::uint64_t w = i - wbase;
                const std::uint64_t e = first + w / 2;
                if (e >= sst.keys.size())
                    return std::uint64_t{0};
                return (w & 1) ? sst.vals[e] : sst.keys[e];
            });
        cacheLru.push_front(ck);
        cacheIndex[ck] = {slot, cacheLru.begin()};
    }

    // The point read itself: the entry's two words from the cache.
    const std::uint64_t wpos =
        slot * kWordsPerBlock + (index % kEntriesPerBlock) * 2;
    cacheArena.get(t, wpos);
    cacheArena.get(t, wpos + 1);
}

bool
SimLsmStore::sstGet(ThreadContext &t, Sst &sst, std::uint64_t key,
                    std::uint64_t *value)
{
    // The fence check is free (an in-memory index block).
    if (key < sst.minKey || key > sst.maxKey)
        return false;
    std::uint64_t lo = 0;
    std::uint64_t hi = sst.keys.size();
    while (lo < hi) {
        const std::uint64_t mid = lo + (hi - lo) / 2;
        readSstEntry(t, sst, mid);
        if (sst.keys[mid] < key)
            lo = mid + 1;
        else
            hi = mid;
    }
    if (lo < sst.keys.size() && sst.keys[lo] == key) {
        readSstEntry(t, sst, lo);
        *value = sst.vals[lo];
        return true;
    }
    return false;
}

}  // namespace memtier

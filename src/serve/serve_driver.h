/**
 * @file
 * The serving-tier driver: prefills a KV or LSM store, replays the
 * open-loop request stream over a pool of server threads, and reports
 * completion latency (arrival to finish, queueing included) as
 * log-bucketed histograms overall and per traffic phase.
 */

#ifndef MEMTIER_SERVE_SERVE_DRIVER_H_
#define MEMTIER_SERVE_SERVE_DRIVER_H_

#include <cstdint>

#include "base/stats.h"
#include "runtime/sim_heap.h"
#include "serve/lsm_store.h"
#include "serve/serve_params.h"
#include "sim/engine.h"

namespace memtier {

/** Everything a serving run measures. */
struct ServingReport
{
    /** Completion latency (cycles) of every request. */
    LatencyHistogram latency;

    /** Latency split by the phase each request arrived in. */
    LatencyHistogram phaseLatency[kNumServePhases];

    /** Requests executed per ServeOp value. */
    std::uint64_t opCounts[4] = {};

    /** Requests executed (== GeneratorParams::requests). */
    std::uint64_t requests = 0;

    /**
     * Requests failed by a memory-failure SIGBUS on the serving thread.
     * The request still consumed its service time (it is in the latency
     * histograms) but its answer was never delivered; the checksum
     * records the error sentinel instead of a read result.
     */
    std::uint64_t errors = 0;

    /** Fraction of requests answered successfully. */
    double
    availability() const
    {
        if (requests == 0)
            return 1.0;
        return static_cast<double>(requests - errors) /
               static_cast<double>(requests);
    }

    /** Order-independent digest of every read result (the
     *  policy-invariance check: placement must not change answers). */
    std::uint64_t checksum = 0;

    /** Simulated seconds spent prefilling the store. */
    double prefillSeconds = 0.0;

    /** Total simulated seconds (prefill + serve). */
    double totalSeconds = 0.0;

    /** LSM internals (all zero for the KV app). */
    SimLsmStore::Stats lsm;

    /** KV probe count (zero for the LSM app). */
    std::uint64_t kvProbes = 0;

    /** Fraction of requests that missed @p slo_cycles. */
    double
    sloViolationFraction(Cycles slo_cycles) const
    {
        return latency.violationFraction(slo_cycles);
    }
};

/**
 * Run one serving scenario on @p eng.
 *
 * Requests are executed in arrival order (so the store's state
 * evolution -- and therefore every answer and the checksum -- depends
 * only on the request stream, never on the tiering policy), but each
 * request runs on its round-robin server thread whose clock carries
 * the queueing delay: a request arriving while its thread is busy
 * waits, and its latency includes the wait.
 */
ServingReport runServing(Engine &eng, SimHeap &heap,
                         const ServingSpec &spec);

}  // namespace memtier

#endif  // MEMTIER_SERVE_SERVE_DRIVER_H_

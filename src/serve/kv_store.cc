#include "serve/kv_store.h"

#include "base/logging.h"

namespace memtier {

namespace {

/** SplitMix64 finalizer: the table's hash function. */
std::uint64_t
mix(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

}  // namespace

SimKvStore::SimKvStore(Engine &engine, SimHeap &heap, ThreadContext &t,
                       const KvParams &params)
    : eng(engine), heap_(heap), p(params)
{
    MEMTIER_ASSERT((p.tableSlots & (p.tableSlots - 1)) == 0,
                   "table capacity must be a power of two");
    MEMTIER_ASSERT(p.valueWords > 0, "values must be non-empty");
    table = heap_.alloc<std::uint64_t>(t, "kv.table", p.tableSlots);
    slotRef = heap_.alloc<std::uint64_t>(t, "kv.slotref", p.tableSlots);
    arena = heap_.alloc<std::uint64_t>(t, "kv.arena",
                                       p.arenaSlots * p.valueWords);
    table.fillRange(t, 0, p.tableSlots, kEmpty);
    // LIFO free list: the most recently freed slot is reused first,
    // concentrating allocation churn on a hot arena prefix.
    freeSlots.reserve(p.arenaSlots);
    for (std::uint64_t s = p.arenaSlots; s > 0; --s)
        freeSlots.push_back(static_cast<std::uint32_t>(s - 1));
    scratch.resize(p.valueWords);
}

void
SimKvStore::freeStorage(ThreadContext &t)
{
    heap_.free(t, table);
    heap_.free(t, slotRef);
    heap_.free(t, arena);
}

std::uint64_t
SimKvStore::slotOf(std::uint64_t key) const
{
    return mix(key) & (p.tableSlots - 1);
}

std::uint64_t
SimKvStore::probe(ThreadContext &t, std::uint64_t key, bool for_insert)
{
    MEMTIER_ASSERT(key + 2 > key, "key collides with slot sentinels");
    const std::uint64_t mask = p.tableSlots - 1;
    std::uint64_t slot = slotOf(key);
    std::uint64_t first_free = ~std::uint64_t{0};
    for (std::uint64_t i = 0; i <= mask; ++i, slot = (slot + 1) & mask) {
        ++probes;
        const std::uint64_t enc = table.get(t, slot);
        if (enc == key + 2)
            return slot;
        if (enc == kTombstone) {
            if (first_free == ~std::uint64_t{0})
                first_free = slot;
            continue;
        }
        if (enc == kEmpty) {
            if (!for_insert)
                return ~std::uint64_t{0};
            return first_free != ~std::uint64_t{0} ? first_free : slot;
        }
    }
    MEMTIER_ASSERT(for_insert && first_free != ~std::uint64_t{0},
                   "kv table is full");
    return first_free;
}

std::uint64_t
SimKvStore::valueDigest(std::uint64_t key, std::uint64_t value,
                        std::uint32_t value_words)
{
    std::uint64_t h = 0;
    for (std::uint32_t w = 0; w < value_words; ++w)
        h += mix(key + value + w) * 0x9e3779b97f4a7c15ULL;
    return h;
}

SimKvStore::GetResult
SimKvStore::get(ThreadContext &t, std::uint64_t key)
{
    GetResult out;
    const std::uint64_t slot = probe(t, key, /*for_insert=*/false);
    if (slot == ~std::uint64_t{0} || table.raw(slot) != key + 2)
        return out;
    const std::uint64_t aslot = slotRef.get(t, slot);
    const std::uint64_t base = aslot * p.valueWords;
    arena.copyOut(t, base, base + p.valueWords, scratch.data());
    out.found = true;
    std::uint64_t h = 0;
    for (std::uint32_t w = 0; w < p.valueWords; ++w)
        h += scratch[w] * 0x9e3779b97f4a7c15ULL;
    out.value = h;
    return out;
}

void
SimKvStore::set(ThreadContext &t, std::uint64_t key, std::uint64_t value)
{
    const std::uint64_t slot = probe(t, key, /*for_insert=*/true);
    const std::uint64_t prev = table.raw(slot);
    std::uint64_t aslot;
    if (prev == key + 2) {
        aslot = slotRef.get(t, slot);  // Overwrite in place.
    } else {
        MEMTIER_ASSERT(!freeSlots.empty(), "kv arena exhausted");
        aslot = freeSlots.back();
        freeSlots.pop_back();
        if (prev == kTombstone)
            --tombstones;
        table.set(t, slot, key + 2);
        slotRef.set(t, slot, aslot);
        ++live;
    }
    const std::uint64_t base = aslot * p.valueWords;
    arena.generate(t, base, base + p.valueWords,
                   [&](std::uint64_t i) {
                       return mix(key + value + (i - base));
                   });
}

bool
SimKvStore::del(ThreadContext &t, std::uint64_t key)
{
    const std::uint64_t slot = probe(t, key, /*for_insert=*/false);
    if (slot == ~std::uint64_t{0} || table.raw(slot) != key + 2)
        return false;
    const std::uint64_t aslot = slotRef.get(t, slot);
    table.set(t, slot, kTombstone);
    freeSlots.push_back(static_cast<std::uint32_t>(aslot));
    --live;
    ++tombstones;
    return true;
}

std::uint64_t
SimKvStore::scan(ThreadContext &t, std::uint64_t key, std::uint32_t n)
{
    const std::uint64_t mask = p.tableSlots - 1;
    std::uint64_t slot = slotOf(key);
    std::uint64_t h = 0;
    for (std::uint32_t i = 0; i < n; ++i, slot = (slot + 1) & mask) {
        const std::uint64_t enc = table.get(t, slot);
        if (enc == kEmpty || enc == kTombstone)
            continue;
        const std::uint64_t aslot = slotRef.get(t, slot);
        const std::uint64_t first =
            arena.get(t, aslot * p.valueWords);
        h += (enc - 2) * 0x9e3779b97f4a7c15ULL + first;
    }
    return h;
}

}  // namespace memtier

/**
 * @file
 * Open-loop request generator for the serving tier: Zipfian key
 * popularity, exponential inter-arrivals modulated by a diurnal ramp
 * and connection-storm bursts, and a GET/SET/DEL/SCAN mix. The stream
 * is a pure function of GeneratorParams (same seed, same requests --
 * the determinism tests and the bit-identical-percentiles acceptance
 * criterion both depend on it).
 */

#ifndef MEMTIER_SERVE_REQUEST_GEN_H_
#define MEMTIER_SERVE_REQUEST_GEN_H_

#include <cstdint>
#include <vector>

#include "base/rng.h"
#include "base/types.h"
#include "serve/serve_params.h"

namespace memtier {

/** One generated request. */
struct ServeRequest
{
    Cycles arrival = 0;       ///< Arrival time relative to stream start.
    ServeOp op = ServeOp::Get;
    std::uint64_t key = 0;
    std::uint32_t scanLength = 0;  ///< SCAN only.
    ServePhase phase = ServePhase::OffPeak;
};

/**
 * Zipfian rank generator (Gray et al.'s method, the YCSB generator),
 * with ranks scrambled over the keyspace by a bijective multiplicative
 * hash so the hot keys are not physically adjacent.
 */
class ZipfianKeys
{
  public:
    /**
     * @param num_keys keyspace size (power of two).
     * @param theta skew; 0 degenerates to the uniform distribution.
     */
    ZipfianKeys(std::uint64_t num_keys, double theta);

    /** Draw one key in [0, numKeys) using @p rng. */
    std::uint64_t next(Rng &rng) const;

    /** Popularity-rank -> key scrambling (exposed for tests). */
    std::uint64_t keyOfRank(std::uint64_t rank) const;

  private:
    std::uint64_t numKeys;
    double theta;
    double zetan = 0.0;
    double zeta2 = 0.0;
    double alpha = 0.0;
    double eta = 0.0;
};

/** The open-loop request stream. */
class RequestGenerator
{
  public:
    explicit RequestGenerator(const GeneratorParams &params);

    /**
     * Produce the next request into @p out.
     * @return false once the configured request count is exhausted.
     */
    bool next(ServeRequest *out);

    /** Requests produced so far. */
    std::uint64_t produced() const { return emitted; }

    /**
     * Instantaneous arrival rate at @p t_sec (requests per simulated
     * second): base rate with the diurnal modulation and the storm
     * multiplier applied. Exposed for tests.
     */
    double rateAt(double t_sec) const;

    /** Phase label of an arrival at @p t_sec (exposed for tests). */
    ServePhase phaseAt(double t_sec) const;

  private:
    GeneratorParams p;
    ZipfianKeys keys;
    Rng rng;
    double nowSec = 0.0;
    std::uint64_t emitted = 0;
};

/** Generate the whole stream at once (testing convenience). */
std::vector<ServeRequest> generateAll(const GeneratorParams &params);

}  // namespace memtier

#endif  // MEMTIER_SERVE_REQUEST_GEN_H_

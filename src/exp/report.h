/**
 * @file
 * Plain-text report helpers shared by the bench binaries: fixed-width
 * tables that mirror the paper's tables, plus number formatting.
 */

#ifndef MEMTIER_EXP_REPORT_H_
#define MEMTIER_EXP_REPORT_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace memtier {

/** Column-aligned text table. */
class TextTable
{
  public:
    /** @param headers column names. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append one row (must match the header width). */
    void addRow(std::vector<std::string> row);

    /** Render with aligned columns and a separator under the header. */
    void print(std::ostream &out) const;

    /** Number of data rows. */
    std::size_t rows() const { return body.size(); }

  private:
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> body;
};

/** "49.1%" style percent from a fraction. */
std::string pct(double frac, int precision = 1);

/** Fixed-precision double. */
std::string num(double value, int precision = 2);

/** Human-readable byte count ("12.5 MiB"). */
std::string fmtBytes(std::uint64_t bytes);

/** Thousands-separated integer. */
std::string fmtCount(std::uint64_t value);

/** Print a "=== title ===" banner. */
void banner(std::ostream &out, const std::string &title);

}  // namespace memtier

#endif  // MEMTIER_EXP_REPORT_H_

#include "exp/runner.h"

#include <algorithm>
#include <functional>

#include "apps/bc.h"
#include "apps/bfs.h"
#include "apps/cc.h"
#include "apps/pagerank.h"
#include "apps/sssp.h"
#include "base/logging.h"
#include "bigraph/ooc_builder.h"
#include "bigraph/segmented_csr.h"
#include "core/dynamic_tiering.h"
#include "core/object_planner.h"
#include "graph/sim_graph.h"
#include "runtime/sim_heap.h"

namespace memtier {

namespace {

/** Order-independent 64-bit digest of a value sequence. */
template <typename T>
std::uint64_t
digest(const std::vector<T> &values)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const T &v : values) {
        std::uint64_t bits = 0;
        static_assert(sizeof(T) <= sizeof(bits));
        __builtin_memcpy(&bits, &v, sizeof(T));
        // Commutative combine so thread interleaving differences in
        // result *ordering* (there are none, but belt and braces) do
        // not matter; multiplication spreads the bits.
        h += bits * 0x9e3779b97f4a7c15ULL;
    }
    return h;
}

/** Deterministic BFS/SSSP sources: spread over the vertex range
 *  (untimed degree probes, identical draws on any segmentation). */
std::vector<NodeId>
bfsSources(const SegmentedCsrView &g, int trials, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<NodeId> out;
    const auto n = static_cast<std::uint64_t>(g.numNodes());
    while (out.size() < static_cast<std::size_t>(trials)) {
        const auto s = static_cast<NodeId>(rng.nextBounded(n));
        if (g.rawDegree(s) > 0)
            out.push_back(s);
    }
    return out;
}

}  // namespace

/** Graph path of runWorkload: load, run, free. @return load seconds. */
static double runGraphWorkload(const RunConfig &config, Engine &eng,
                               SimHeap &heap, RunResult *out);

const char *
modeName(Mode mode)
{
    switch (mode) {
      case Mode::AutoNuma: return "autonuma";
      case Mode::NoTiering: return "notiering";
      case Mode::ObjectStatic: return "object_static";
      case Mode::ObjectSpill: return "object_spill";
      case Mode::ObjectDynamic: return "object_dynamic";
      case Mode::AllDram: return "all_dram";
      case Mode::AllNvm: return "all_nvm";
    }
    return "?";
}

RunResult
runWorkload(const RunConfig &config, const PlacementPlan *plan)
{
    SystemConfig sys = config.sys;
    switch (config.mode) {
      case Mode::AutoNuma:
      case Mode::ObjectStatic:
      case Mode::ObjectSpill:
        sys.autonumaEnabled = true;
        break;
      case Mode::ObjectDynamic:
        // The dynamic object policy replaces the AutoNUMA scanner but
        // keeps the tiering kernel's demotion path.
        sys.autonumaEnabled = false;
        sys.tieringKernel = true;
        break;
      case Mode::NoTiering:
      case Mode::AllNvm:
        sys.autonumaEnabled = false;
        sys.tieringKernel = false;
        break;
      case Mode::AllDram:
        // Ideal bound: a DRAM tier large enough for everything.
        sys.autonumaEnabled = false;
        sys.tieringKernel = false;
        sys.dram.capacityBytes = sys.nvm.capacityBytes * 4;
        break;
    }

    // An explicit policy name overrides the mode's policy choice: the
    // registry decides what runs, the tiering kernel's demotion path
    // stays available, and the policy itself decides whether to use it.
    if (!config.policy.empty()) {
        sys.autonumaEnabled = false;
        sys.tieringKernel = true;
        sys.policyName = config.policy;
        for (const std::string &assignment : config.tunables) {
            std::string perr;
            if (!sys.policyTunables.parseAssignment(assignment, &perr)) {
                fatal("malformed tunable '%s': %s", assignment.c_str(),
                      perr.c_str());
            }
        }
    }

    Engine eng(sys);
    MmapTracker tracker;
    eng.kernel().setSyscallObserver(&tracker);

    PerfMemSampler sampler(config.sampler);
    if (config.sampling)
        eng.setObserver(&sampler);

    SimHeap heap(eng);
    PlacementPlan bind_all;
    DynamicObjectTiering dynamic_policy(eng, tracker);
    if (config.mode == Mode::ObjectDynamic)
        dynamic_policy.install();
    switch (config.mode) {
      case Mode::ObjectStatic:
      case Mode::ObjectSpill:
        MEMTIER_ASSERT(plan != nullptr,
                       "object modes need a placement plan");
        heap.setAdvisor(const_cast<PlacementPlan *>(plan));
        break;
      case Mode::AllDram:
        bind_all = PlacementPlan::bindAll(MemNode::DRAM);
        heap.setAdvisor(&bind_all);
        break;
      case Mode::AllNvm:
        bind_all = PlacementPlan::bindAll(MemNode::NVM);
        heap.setAdvisor(&bind_all);
        break;
      default:
        break;
    }

    const WorkloadSpec &w = config.workload;
    RunResult out;
    out.workloadName = w.name();
    out.mode = config.mode;

    if (isServingApp(w.app)) {
        // Serving apps have no graph: the prefill is their
        // input-reading phase, the request replay their compute phase.
        out.serving = runServing(eng, heap, servingSpecFor(w));
        out.hasServing = true;
        out.outputChecksum = out.serving.checksum;
        out.loadSeconds = out.serving.prefillSeconds;
        out.iterationsTotal = out.serving.requests;
        out.iterationsAborted = out.serving.errors;
    } else {
        out.loadSeconds = runGraphWorkload(config, eng, heap, &out);
    }

    out.totalSeconds = cyclesToSeconds(eng.globalTime());
    out.computeSeconds = out.totalSeconds - out.loadSeconds;
    out.samples = sampler.takeSamples();
    out.tracker = std::move(tracker);
    out.timeline = eng.timeline();
    out.vmstat = eng.kernel().vmstat();
    out.finalNumastat = eng.kernel().numastat();
    if (eng.autonuma()) {
        out.numaStats = eng.autonuma()->stats();
        out.hasAutoNuma = true;
    }
    if (eng.tieringPolicy()) {
        out.policyName = eng.tieringPolicy()->name();
        out.policyCounters = eng.tieringPolicy()->snapshotStats();
    }
    // Post-tuning values of every live tunable: what the machine
    // actually ran with at the end, not the defaults it started from.
    for (const std::string &key : eng.tunableRegistry().keys()) {
        out.effectiveTunables.emplace_back(
            key, eng.tunableRegistry().formatValue(key));
    }
    out.metricsEpochs = eng.metricsEpochs();
    for (int l = 0; l < kNumMemLevels; ++l) {
        out.levelCounts[l] = eng.levelCount(static_cast<MemLevel>(l));
        out.totalAccesses += out.levelCounts[l];
    }
    out.copyBytes = eng.kernel().copyEngine().bytesCopied();
    out.copyChargedCycles = eng.kernel().copyEngine().chargedCycles();
    if (eng.faultInjector())
        out.faultsInjected = eng.faultInjector()->totalInjected();
    if (eng.invariantChecker()) {
        // One final sweep so even short runs validate end-state.
        eng.invariantChecker()->checkNow(eng.globalTime());
        out.invariantChecksRun = eng.invariantChecker()->checksRun();
    }
    return out;
}

static double
runGraphWorkload(const RunConfig &config, Engine &eng, SimHeap &heap,
                 RunResult *out)
{
    const WorkloadSpec &w = config.workload;
    ThreadContext &t0 = eng.thread(0);

    // Input-reading phase (Figure 9's low-CPU prefix). Monolithic path:
    // host graph through the dataset cache + SimCsrGraph::load.
    // Segmented path: the out-of-core builder materializes row-range
    // segments one at a time -- no whole host graph ever exists, which
    // is what unlocks scales past WorkloadSpec::maxScale.
    std::shared_ptr<const CsrGraph> host;
    SimCsrGraph mono;
    SegmentedCsrGraph seg;
    SegmentedCsrView g;
    if (w.segments > 1) {
        BigraphSpec bs;
        bs.kind = w.kind == GraphKind::Kron ? BigraphKind::Kron
                                            : BigraphKind::Urand;
        bs.scale = w.scale;
        bs.degree = w.degree;
        bs.seed = w.seed;
        bs.segments = static_cast<std::uint32_t>(w.segments);
        bs.weighted = w.app == App::SSSP;
        seg = SegmentedCsrGraph::generate(eng, heap, t0, bs, w.name());
        g = seg;
    } else {
        if (w.scale > w.maxScale) {
            fatal("workload %s: scale %d exceeds the monolithic limit "
                  "%d; set segments > 1 for the out-of-core path",
                  w.name().c_str(), w.scale, w.maxScale);
        }
        host = w.app == App::SSSP
                   ? weightedDatasetGraph(w.kind, w.scale, w.degree,
                                          w.seed)
                   : datasetGraph(w.kind, w.scale, w.degree, w.seed);
        mono = SimCsrGraph::load(eng, heap, t0, *host, w.name());
        g = mono;
    }
    const double load_sec = cyclesToSeconds(eng.globalTime());

    // A SIGBUS kill inside a trial aborts that trial (the paper app
    // would die; the harness restarts at the next source): its output
    // never reaches the checksum. Trials run back to back, so a delta
    // of the kernel's SIGBUS count across one pins the kill to it.
    const VmStat &vs = eng.kernel().vmstat();
    std::uint64_t sigbus_mark = vs.hwpoisonSigbus;
    const auto trialAborted = [&]() -> bool {
        const bool hit = vs.hwpoisonSigbus != sigbus_mark;
        sigbus_mark = vs.hwpoisonSigbus;
        if (hit)
            ++out->iterationsAborted;
        return hit;
    };
    std::uint64_t *checksum = &out->outputChecksum;

    switch (w.app) {
      case App::BC: {
        BcOutput bc = runBc(eng, heap, g, w.trials, w.seed);
        out->iterationsTotal = 1;  // One pass over all sampled sources.
        if (!trialAborted())
            *checksum = digest(bc.scores);
        break;
      }
      case App::BFS: {
        std::vector<NodeId> reached;
        for (const NodeId s : bfsSources(g, w.trials, w.seed)) {
            BfsOutput bfs = runBfs(eng, heap, g, s);
            ++out->iterationsTotal;
            if (!trialAborted())
                reached.push_back(static_cast<NodeId>(bfs.reached));
        }
        *checksum = digest(reached);
        break;
      }
      case App::CC: {
        std::vector<NodeId> comps;
        for (int i = 0; i < w.trials; ++i) {
            CcOutput cc = runCc(eng, heap, g);
            ++out->iterationsTotal;
            if (!trialAborted())
                comps.push_back(static_cast<NodeId>(cc.numComponents));
        }
        *checksum = digest(comps);
        break;
      }
      case App::PR: {
        PageRankOutput pr = runPageRank(eng, heap, g, w.trials);
        out->iterationsTotal = 1;  // One power iteration to convergence.
        if (!trialAborted())
            *checksum = digest(pr.rank);
        break;
      }
      case App::SSSP: {
        std::vector<std::int64_t> sums;
        for (const NodeId s : bfsSources(g, w.trials, w.seed)) {
            SsspOutput sp = runSssp(eng, heap, g, s);
            ++out->iterationsTotal;
            if (trialAborted())
                continue;
            std::int64_t sum = 0;
            for (const std::int64_t d : sp.dist)
                sum += d > 0 ? d : 0;
            sums.push_back(sum);
        }
        *checksum = digest(sums);
        break;
      }
      case App::KV:
      case App::LSM:
        MEMTIER_ASSERT(false, "serving apps do not run the graph path");
        break;
    }

    if (w.segments > 1)
        seg.free(heap, t0);
    else
        mono.free(heap, t0);
    return load_sec;
}

ServingSpec
servingSpecFor(const WorkloadSpec &w)
{
    MEMTIER_ASSERT(isServingApp(w.app), "not a serving workload");
    ServingSpec spec;
    spec.app = w.app == App::KV ? ServeApp::KV : ServeApp::LSM;
    spec.gen.numKeys = 1ULL << w.scale;
    spec.gen.requests = static_cast<std::uint64_t>(w.trials) * 5000;
    spec.gen.zipfTheta = w.kind == GraphKind::Kron ? 0.99 : 0.0;
    spec.gen.seed = w.seed;
    // Size the KV store to its keyspace: a half-full table plus one
    // arena slot per key (live keys never exceed the keyspace).
    spec.kv.tableSlots = spec.gen.numKeys * 2;
    spec.kv.arenaSlots = spec.gen.numKeys;
    // Scale the memtable with the keyspace so small workloads still
    // exercise rotation, flush and compaction (the default memtable
    // would swallow a 2^10 keyspace without ever filling).
    spec.lsm.memtableSlots =
        std::max<std::uint64_t>(256, spec.gen.numKeys / 8);
    return spec;
}

PlacementPlan
planFromProfile(const RunResult &profile,
                std::uint64_t dram_capacity_bytes, bool spill)
{
    const std::vector<SiteProfile> sites =
        siteProfiles(profile.samples, profile.tracker);
    PlannerConfig cfg;
    cfg.dramBudgetBytes = dramBudget(dram_capacity_bytes);
    cfg.allowSpill = spill;
    return buildPlan(sites, cfg).plan;
}

}  // namespace memtier

/**
 * @file
 * The paper's workload matrix: {bc, bfs, cc} x {kron, urand}
 * (Section 4.1), at a configurable scale, plus pr as an extension. A
 * process-wide dataset cache builds each host graph once.
 */

#ifndef MEMTIER_EXP_WORKLOADS_H_
#define MEMTIER_EXP_WORKLOADS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace memtier {

/** GAPBS kernel -- or data-serving application -- to run. */
enum class App : std::uint8_t { BC, BFS, CC, PR, SSSP, KV, LSM };

/** Input generator. For the serving apps the kind selects the key
 *  popularity instead: Kron -> zipfian (skewed), Urand -> uniform. */
enum class GraphKind : std::uint8_t { Kron, Urand };

/** Name of @p app ("bc", ...). */
const char *appName(App app);

/** True for the data-serving applications (KV, LSM). */
bool isServingApp(App app);

/** Name of @p kind ("kron"/"urand"). */
const char *graphKindName(GraphKind kind);

/** One workload = application + dataset + run parameters. */
struct WorkloadSpec
{
    App app = App::BC;
    GraphKind kind = GraphKind::Kron;

    /** log2 vertices (serving apps: log2 keys); default sized so the
     *  footprint exceeds the scaled 24 MiB DRAM (the paper's 228-292 GB
     *  vs. 192 GB). */
    int scale = 18;

    /** Average degree (GAPBS -k 16; unused by the serving apps). */
    int degree = 16;

    /** BC: sampled sources. BFS: sources (trials). CC: repetitions.
     *  PR: iterations. KV/LSM: requests in multiples of 5000. */
    int trials = 4;

    /** Deterministic workload seed. */
    std::uint64_t seed = 9241;

    /**
     * CSR segments. 1 = the classic monolithic path (host graph +
     * SimCsrGraph::load); > 1 switches the runner to the out-of-core
     * segmented build, which never materializes the whole host graph
     * and so unlocks scales past maxScale.
     */
    int segments = 1;

    /**
     * Largest scale the monolithic path may build (the host EdgeList
     * at scale 23/degree 16 is already ~4 GB). Scales above this
     * require segments > 1; the runner rejects the combination early
     * instead of letting the host allocation thrash the machine.
     */
    int maxScale = 22;

    /** "bc_kron" style name used throughout the paper's figures
     *  ("kv_zipf"/"kv_unif" style for the serving apps). */
    std::string name() const;
};

/** The paper's six workloads at the default scale. */
std::vector<WorkloadSpec> paperWorkloads(int scale = 18);

/**
 * Host graph for @p kind at @p scale/@p degree, built on first use and
 * held in a capped LRU cache (the "converter" step). The returned
 * shared_ptr keeps the graph alive across eviction, so callers may
 * hold it for as long as they need; the cache only bounds what *it*
 * retains between calls.
 */
std::shared_ptr<const CsrGraph> datasetGraph(GraphKind kind, int scale,
                                             int degree,
                                             std::uint64_t seed = 9241);

/**
 * Weighted variant of datasetGraph (the GAPBS .wsg input for SSSP),
 * built and cached independently of the unweighted graph.
 */
std::shared_ptr<const CsrGraph>
weightedDatasetGraph(GraphKind kind, int scale, int degree,
                     std::uint64_t seed = 9241);

/**
 * Cap on host bytes the dataset cache retains (approximate CSR bytes;
 * least-recently-used graphs are dropped first). Default 1 GiB,
 * overridable with MEMTIER_DATASET_CACHE_MB. A cap of 0 disables
 * retention entirely (every call rebuilds).
 */
void setDatasetCacheCapBytes(std::uint64_t bytes);

/** Approximate host bytes currently retained by the dataset cache. */
std::uint64_t datasetCacheBytes();

/** Number of graphs currently retained by the dataset cache. */
std::size_t datasetCacheCount();

/** Drop every retained graph (outstanding shared_ptrs stay valid). */
void clearDatasetCache();

}  // namespace memtier

#endif  // MEMTIER_EXP_WORKLOADS_H_

/**
 * @file
 * The paper's workload matrix: {bc, bfs, cc} x {kron, urand}
 * (Section 4.1), at a configurable scale, plus pr as an extension. A
 * process-wide dataset cache builds each host graph once.
 */

#ifndef MEMTIER_EXP_WORKLOADS_H_
#define MEMTIER_EXP_WORKLOADS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace memtier {

/** GAPBS kernel -- or data-serving application -- to run. */
enum class App : std::uint8_t { BC, BFS, CC, PR, SSSP, KV, LSM };

/** Input generator. For the serving apps the kind selects the key
 *  popularity instead: Kron -> zipfian (skewed), Urand -> uniform. */
enum class GraphKind : std::uint8_t { Kron, Urand };

/** Name of @p app ("bc", ...). */
const char *appName(App app);

/** True for the data-serving applications (KV, LSM). */
bool isServingApp(App app);

/** Name of @p kind ("kron"/"urand"). */
const char *graphKindName(GraphKind kind);

/** One workload = application + dataset + run parameters. */
struct WorkloadSpec
{
    App app = App::BC;
    GraphKind kind = GraphKind::Kron;

    /** log2 vertices (serving apps: log2 keys); default sized so the
     *  footprint exceeds the scaled 24 MiB DRAM (the paper's 228-292 GB
     *  vs. 192 GB). */
    int scale = 18;

    /** Average degree (GAPBS -k 16; unused by the serving apps). */
    int degree = 16;

    /** BC: sampled sources. BFS: sources (trials). CC: repetitions.
     *  PR: iterations. KV/LSM: requests in multiples of 5000. */
    int trials = 4;

    /** Deterministic workload seed. */
    std::uint64_t seed = 9241;

    /** "bc_kron" style name used throughout the paper's figures
     *  ("kv_zipf"/"kv_unif" style for the serving apps). */
    std::string name() const;
};

/** The paper's six workloads at the default scale. */
std::vector<WorkloadSpec> paperWorkloads(int scale = 18);

/**
 * Host graph for @p kind at @p scale/@p degree, built on first use and
 * cached for the process lifetime (the "converter" step).
 */
const CsrGraph &datasetGraph(GraphKind kind, int scale, int degree,
                             std::uint64_t seed = 9241);

/**
 * Weighted variant of datasetGraph (the GAPBS .wsg input for SSSP),
 * built and cached independently of the unweighted graph.
 */
const CsrGraph &weightedDatasetGraph(GraphKind kind, int scale,
                                     int degree,
                                     std::uint64_t seed = 9241);

}  // namespace memtier

#endif  // MEMTIER_EXP_WORKLOADS_H_

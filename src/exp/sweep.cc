#include "exp/sweep.h"

#include "base/csv.h"

namespace memtier {

std::vector<std::vector<std::pair<std::string, std::string>>>
sweepCombinations(const std::vector<SweepAxis> &axes)
{
    std::vector<std::vector<std::pair<std::string, std::string>>> combos;
    combos.emplace_back();  // The empty assignment.
    for (const SweepAxis &axis : axes) {
        std::vector<std::vector<std::pair<std::string, std::string>>>
            next;
        next.reserve(combos.size() * axis.values.size());
        for (const auto &combo : combos) {
            for (const std::string &value : axis.values) {
                auto extended = combo;
                extended.emplace_back(axis.key, value);
                next.push_back(std::move(extended));
            }
        }
        combos = std::move(next);
    }
    return combos;
}

std::vector<SweepPoint>
runSweep(const SweepSpec &spec, std::ostream *progress)
{
    const auto combos = sweepCombinations(spec.axes);
    std::vector<SweepPoint> points;
    points.reserve(combos.size() * spec.workloads.size());

    for (const auto &combo : combos) {
        for (const WorkloadSpec &w : spec.workloads) {
            RunConfig rc;
            rc.workload = w;
            rc.sys = spec.sys;
            rc.sampling = spec.sampling;
            rc.policy = spec.policy;
            for (const auto &[key, value] : combo)
                rc.tunables.push_back(key + "=" + value);

            if (progress != nullptr) {
                *progress << "sweep: " << spec.policy << " " << w.name();
                for (const auto &[key, value] : combo)
                    *progress << " " << key << "=" << value;
                *progress << "...\n";
            }
            const RunResult r = runWorkload(rc);

            SweepPoint p;
            p.workload = w.name();
            p.policy = spec.policy;
            p.tunables = combo;
            for (const auto &[key, value] : r.effectiveTunables) {
                if (!p.effectiveTunables.empty())
                    p.effectiveTunables += ";";
                p.effectiveTunables += key + "=" + value;
            }
            p.totalSeconds = r.totalSeconds;
            p.computeSeconds = r.computeSeconds;
            p.hintFaults = r.vmstat.numaHintFaults;
            p.promotions = r.vmstat.pgpromoteSuccess;
            p.demotions =
                r.vmstat.pgdemoteKswapd + r.vmstat.pgdemoteDirect;
            p.exchanges = r.vmstat.pgexchangeSuccess;
            p.migrations = r.vmstat.pgmigrateSuccess;
            p.thrash =
                r.vmstat.pgpromoteDemoted + r.vmstat.pgexchangeThrash;
            p.migrateFail = r.vmstat.pgmigrateFail;
            p.promoteRetry = r.vmstat.promoteRetry;
            p.allocFail = r.vmstat.pgallocFail;
            p.diskReadRetry = r.vmstat.diskReadRetry;
            p.breakerTrips = r.vmstat.breakerTrips;
            points.push_back(std::move(p));
        }
    }
    return points;
}

void
writeSweepCsv(const SweepSpec &spec,
              const std::vector<SweepPoint> &points, std::ostream &out)
{
    CsvWriter csv(out);
    std::vector<std::string> columns = {"workload", "policy", "thp"};
    for (const SweepAxis &axis : spec.axes)
        columns.push_back(axis.key);
    for (const char *metric :
         {"total_seconds", "compute_seconds", "hint_faults",
          "promotions", "demotions", "exchanges", "migrations",
          "thrash", "migrate_fail", "promote_retry", "alloc_fail",
          "disk_read_retry", "breaker_trips"}) {
        columns.push_back(metric);
    }
    columns.push_back("effective_tunables");
    csv.header(columns);

    const std::string thp = spec.sys.thp.enabled ? "on" : "off";
    for (const SweepPoint &p : points) {
        csv.cell(p.workload).cell(p.policy).cell(thp);
        for (const auto &[key, value] : p.tunables) {
            (void)key;
            csv.cell(value);
        }
        csv.cell(p.totalSeconds)
            .cell(p.computeSeconds)
            .cell(p.hintFaults)
            .cell(p.promotions)
            .cell(p.demotions)
            .cell(p.exchanges)
            .cell(p.migrations)
            .cell(p.thrash)
            .cell(p.migrateFail)
            .cell(p.promoteRetry)
            .cell(p.allocFail)
            .cell(p.diskReadRetry)
            .cell(p.breakerTrips)
            .cell(p.effectiveTunables);
        csv.endRow();
    }
}

}  // namespace memtier

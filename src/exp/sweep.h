/**
 * @file
 * Parameter-sweep harness over the policy registry: cross-products
 * tunable axes (scan period, hot threshold, rate limit, exchange batch
 * size, ...) with a workload list, runs every combination, and emits
 * one CSV per sweep -- the experiment design of "From Good to Great:
 * Improving Memory Tiering Performance Through Parameter Tuning"
 * applied to the scaled testbed.
 */

#ifndef MEMTIER_EXP_SWEEP_H_
#define MEMTIER_EXP_SWEEP_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "exp/runner.h"
#include "exp/workloads.h"

namespace memtier {

/** One tunable axis of a sweep: every value is tried. */
struct SweepAxis
{
    std::string key;                  ///< Tunable key ("scan_period_ms").
    std::vector<std::string> values;  ///< Values to cross-product.
};

/** One sweep = policy x tunable axes x workloads. */
struct SweepSpec
{
    std::string policy = "autonuma";  ///< Registry name.
    std::vector<SweepAxis> axes;      ///< Cross-producted tunables.
    std::vector<WorkloadSpec> workloads;
    SystemConfig sys;                 ///< Base machine for every run.
    bool sampling = false;            ///< Samples are off by default.
};

/** One completed sweep point. */
struct SweepPoint
{
    std::string workload;
    std::string policy;

    /** Tunable assignment of this point, in axis order. */
    std::vector<std::pair<std::string, std::string>> tunables;

    /**
     * Effective (post-tuning) tunable values the run ended with, joined
     * as "key=value;..." in key order. Equals the assignment above plus
     * defaults when nothing tuned at runtime; diverges under autotune.
     */
    std::string effectiveTunables;

    double totalSeconds = 0.0;
    double computeSeconds = 0.0;
    std::uint64_t hintFaults = 0;
    std::uint64_t promotions = 0;
    std::uint64_t demotions = 0;
    std::uint64_t exchanges = 0;
    std::uint64_t migrations = 0;
    std::uint64_t thrash = 0;  ///< Promote-then-demote + exchange thrash.
    std::uint64_t migrateFail = 0;    ///< Failed migrations (faults/ENOMEM).
    std::uint64_t promoteRetry = 0;   ///< Promotion retries after faults.
    std::uint64_t allocFail = 0;      ///< Injected DRAM allocation failures.
    std::uint64_t diskReadRetry = 0;  ///< Re-issued page-cache disk reads.
    std::uint64_t breakerTrips = 0;   ///< Circuit-breaker openings.
};

/**
 * All tunable combinations of @p axes (cross product, first axis
 * slowest). One empty combination when @p axes is empty.
 */
std::vector<std::vector<std::pair<std::string, std::string>>>
sweepCombinations(const std::vector<SweepAxis> &axes);

/**
 * Run the sweep: every tunable combination x every workload.
 *
 * @param spec what to sweep.
 * @param progress stream for per-run progress lines (nullptr = quiet).
 * @return one point per run, in execution order.
 */
std::vector<SweepPoint> runSweep(const SweepSpec &spec,
                                 std::ostream *progress = nullptr);

/**
 * Emit the sweep points as CSV: workload, policy, one column per axis,
 * then the metric columns.
 */
void writeSweepCsv(const SweepSpec &spec,
                   const std::vector<SweepPoint> &points,
                   std::ostream &out);

}  // namespace memtier

#endif  // MEMTIER_EXP_SWEEP_H_

/**
 * @file
 * The experiment runner: executes one workload on one simulated machine
 * under one tiering mode and harvests everything the paper's analyses
 * need (samples, allocation records, timelines, counters, timings).
 */

#ifndef MEMTIER_EXP_RUNNER_H_
#define MEMTIER_EXP_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "autonuma/autonuma.h"
#include "core/placement_plan.h"
#include "exp/workloads.h"
#include "profile/analysis.h"
#include "profile/mmap_tracker.h"
#include "profile/perf_mem.h"
#include "serve/serve_driver.h"
#include "sim/engine.h"

namespace memtier {

/** Memory-management mode of a run. */
enum class Mode : std::uint8_t {
    AutoNuma,      ///< AutoNUMA tiering enabled (the paper's baseline).
    NoTiering,     ///< Vanilla kernel: first touch, no migration.
    ObjectStatic,  ///< The paper's object-level static mapping.
    ObjectSpill,   ///< Static mapping with one spilled object (cc*).
    ObjectDynamic, ///< Online object-level tiering (extension): ranks
                   ///< live objects at runtime and migrates them whole,
                   ///< replacing the AutoNUMA scanner.
    AllDram,       ///< Oversized DRAM holds everything (ideal bound).
    AllNvm,        ///< Everything bound to NVM (worst-case bound).
};

/** Name of @p mode for reports. */
const char *modeName(Mode mode);

/** One experiment to run. */
struct RunConfig
{
    WorkloadSpec workload;
    Mode mode = Mode::AutoNuma;
    SystemConfig sys;        ///< Scaled-testbed defaults.
    SamplerParams sampler;
    bool sampling = true;    ///< Collect perf-mem style samples.

    /**
     * Tiering policy selected by registry name. When non-empty it
     * overrides the mode's policy choice (the run keeps the tiering
     * kernel's demotion path); tunables configures the policy.
     */
    std::string policy;

    /** "key=value" tunable assignments for @ref policy. */
    std::vector<std::string> tunables;
};

/** Everything harvested from one run. */
struct RunResult
{
    std::string workloadName;
    Mode mode = Mode::AutoNuma;

    double totalSeconds = 0.0;    ///< Simulated execution time.
    double loadSeconds = 0.0;     ///< Input-reading phase.
    double computeSeconds = 0.0;  ///< totalSeconds - loadSeconds.

    std::vector<MemorySample> samples;
    MmapTracker tracker;
    std::vector<TimelinePoint> timeline;
    VmStat vmstat;
    NumaStatSnapshot finalNumastat;
    AutoNumaStats numaStats;
    bool hasAutoNuma = false;

    /** Name of the tiering policy that ran ("" when tiering was off). */
    std::string policyName;

    /** The policy's snapshotStats() counters at end of run. */
    std::vector<PolicyCounter> policyCounters;

    /**
     * Effective (post-tuning) {key, value} of every live tunable the
     * run registered (kernel-owned plus policy-owned), in key order.
     * With no runtime tuning these equal the construction-time values.
     */
    std::vector<std::pair<std::string, std::string>> effectiveTunables;

    /** Per-epoch MetricsView history (empty without an epoch policy). */
    std::vector<MetricsView> metricsEpochs;

    std::uint64_t levelCounts[kNumMemLevels] = {};
    std::uint64_t totalAccesses = 0;

    /** Order-independent digest of the application output, used to
     *  check that placement policy never changes results. */
    std::uint64_t outputChecksum = 0;

    /** Faults the injector fired (0 when the plan enables nothing). */
    std::uint64_t faultsInjected = 0;

    /**
     * Work iterations attempted and aborted by a memory-failure SIGBUS:
     * one iteration per graph trial (BFS/CC/SSSP source, or the whole
     * run for the single-pass PR/BC apps), one per serving request.
     * Aborted graph iterations contribute nothing to the checksum.
     */
    std::uint64_t iterationsTotal = 0;
    std::uint64_t iterationsAborted = 0;

    /** Fraction of iterations that completed. */
    double
    availability() const
    {
        if (iterationsTotal == 0)
            return 1.0;
        return static_cast<double>(iterationsTotal - iterationsAborted) /
               static_cast<double>(iterationsTotal);
    }

    /** Invariant sweeps completed (0 when checking was off). */
    std::uint64_t invariantChecksRun = 0;

    /**
     * Bytes moved by the kernel's migration copy engine and the cycles
     * it charged for them. Simulated migration bandwidth is
     * copyBytes / cyclesToSeconds(copyChargedCycles); with one copy
     * worker the cycles equal the legacy per-page charges exactly.
     */
    std::uint64_t copyBytes = 0;
    std::uint64_t copyChargedCycles = 0;

    /** Latency report of the serving apps (valid when hasServing). */
    ServingReport serving;
    bool hasServing = false;
};

/**
 * Run one experiment.
 *
 * @param config what to run.
 * @param plan placement plan for the Object* modes (ignored otherwise;
 *        required for ObjectStatic/ObjectSpill).
 */
RunResult runWorkload(const RunConfig &config,
                      const PlacementPlan *plan = nullptr);

/**
 * Serving scenario derived from a KV/LSM WorkloadSpec: scale is log2
 * keys, kind picks zipfian vs. uniform popularity, and trials scales
 * the request count (5000 requests per trial). Exposed so benches and
 * tests size stores consistently.
 */
ServingSpec servingSpecFor(const WorkloadSpec &w);

/**
 * Build the object-level plan from a profiling run (the paper's
 * "profile once, then assign" flow, Section 7).
 *
 * @param profile a sampled run of the same workload (normally the
 *        AutoNuma run itself).
 * @param dram_capacity_bytes DRAM tier size of the target machine.
 * @param spill true for the starred spill variant.
 */
PlacementPlan planFromProfile(const RunResult &profile,
                              std::uint64_t dram_capacity_bytes,
                              bool spill);

}  // namespace memtier

#endif  // MEMTIER_EXP_RUNNER_H_

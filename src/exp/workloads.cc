#include "exp/workloads.h"

#include <map>
#include <memory>

#include "base/logging.h"
#include "graph/generators.h"

namespace memtier {

const char *
appName(App app)
{
    switch (app) {
      case App::BC: return "bc";
      case App::BFS: return "bfs";
      case App::CC: return "cc";
      case App::PR: return "pr";
      case App::SSSP: return "sssp";
      case App::KV: return "kv";
      case App::LSM: return "lsm";
    }
    return "?";
}

bool
isServingApp(App app)
{
    return app == App::KV || app == App::LSM;
}

const char *
graphKindName(GraphKind kind)
{
    return kind == GraphKind::Kron ? "kron" : "urand";
}

std::string
WorkloadSpec::name() const
{
    if (isServingApp(app)) {
        // For serving apps the kind is the key-popularity shape.
        return std::string(appName(app)) +
               (kind == GraphKind::Kron ? "_zipf" : "_unif");
    }
    return std::string(appName(app)) + "_" + graphKindName(kind);
}

std::vector<WorkloadSpec>
paperWorkloads(int scale)
{
    std::vector<WorkloadSpec> out;
    for (const App app : {App::BC, App::BFS, App::CC}) {
        for (const GraphKind kind : {GraphKind::Kron, GraphKind::Urand}) {
            WorkloadSpec w;
            w.app = app;
            w.kind = kind;
            w.scale = scale;
            // Trial counts sized so every workload runs for several
            // simulated seconds without dominating the bench suite.
            switch (app) {
              case App::BC: w.trials = 3; break;
              case App::BFS: w.trials = 4; break;
              case App::CC: w.trials = 1; break;
              case App::PR: w.trials = 5; break;
              case App::SSSP: w.trials = 2; break;
              case App::KV:
              case App::LSM: w.trials = 4; break;
            }
            out.push_back(w);
        }
    }
    return out;
}

const CsrGraph &
datasetGraph(GraphKind kind, int scale, int degree, std::uint64_t seed)
{
    struct Key
    {
        GraphKind kind;
        int scale;
        int degree;
        std::uint64_t seed;
        auto operator<=>(const Key &) const = default;
    };
    static std::map<Key, std::unique_ptr<CsrGraph>> cache;

    const Key key{kind, scale, degree, seed};
    auto it = cache.find(key);
    if (it != cache.end())
        return *it->second;

    inform("generating %s graph, scale %d, degree %d",
           graphKindName(kind), scale, degree);
    EdgeList edges = kind == GraphKind::Kron
                         ? generateKron(scale, degree, seed)
                         : generateUrand(scale, degree, seed);
    auto graph = std::make_unique<CsrGraph>(CsrGraph::fromEdgeList(
        static_cast<NodeId>(1LL << scale), edges));
    const CsrGraph &ref = *graph;
    cache.emplace(key, std::move(graph));
    return ref;
}

const CsrGraph &
weightedDatasetGraph(GraphKind kind, int scale, int degree,
                     std::uint64_t seed)
{
    struct Key
    {
        GraphKind kind;
        int scale;
        int degree;
        std::uint64_t seed;
        auto operator<=>(const Key &) const = default;
    };
    static std::map<Key, std::unique_ptr<CsrGraph>> cache;

    const Key key{kind, scale, degree, seed};
    auto it = cache.find(key);
    if (it != cache.end())
        return *it->second;

    auto graph = std::make_unique<CsrGraph>(
        datasetGraph(kind, scale, degree, seed));
    graph->generateWeights(seed ^ 0x5eed);
    const CsrGraph &ref = *graph;
    cache.emplace(key, std::move(graph));
    return ref;
}

}  // namespace memtier

#include "exp/workloads.h"

#include <cstdlib>
#include <map>
#include <memory>
#include <tuple>

#include "base/logging.h"
#include "graph/generators.h"

namespace memtier {

const char *
appName(App app)
{
    switch (app) {
      case App::BC: return "bc";
      case App::BFS: return "bfs";
      case App::CC: return "cc";
      case App::PR: return "pr";
      case App::SSSP: return "sssp";
      case App::KV: return "kv";
      case App::LSM: return "lsm";
    }
    return "?";
}

bool
isServingApp(App app)
{
    return app == App::KV || app == App::LSM;
}

const char *
graphKindName(GraphKind kind)
{
    return kind == GraphKind::Kron ? "kron" : "urand";
}

std::string
WorkloadSpec::name() const
{
    if (isServingApp(app)) {
        // For serving apps the kind is the key-popularity shape.
        return std::string(appName(app)) +
               (kind == GraphKind::Kron ? "_zipf" : "_unif");
    }
    return std::string(appName(app)) + "_" + graphKindName(kind);
}

std::vector<WorkloadSpec>
paperWorkloads(int scale)
{
    std::vector<WorkloadSpec> out;
    for (const App app : {App::BC, App::BFS, App::CC}) {
        for (const GraphKind kind : {GraphKind::Kron, GraphKind::Urand}) {
            WorkloadSpec w;
            w.app = app;
            w.kind = kind;
            w.scale = scale;
            // Trial counts sized so every workload runs for several
            // simulated seconds without dominating the bench suite.
            switch (app) {
              case App::BC: w.trials = 3; break;
              case App::BFS: w.trials = 4; break;
              case App::CC: w.trials = 1; break;
              case App::PR: w.trials = 5; break;
              case App::SSSP: w.trials = 2; break;
              case App::KV:
              case App::LSM: w.trials = 4; break;
            }
            out.push_back(w);
        }
    }
    return out;
}

namespace {

/** Identity of one cached host graph. */
struct DatasetKey
{
    GraphKind kind;
    int scale;
    int degree;
    std::uint64_t seed;
    bool weighted;
    auto operator<=>(const DatasetKey &) const = default;
};

struct DatasetEntry
{
    std::shared_ptr<const CsrGraph> graph;
    std::uint64_t bytes = 0;
    std::uint64_t lastUse = 0;  ///< LRU tick of the latest hit.
};

/** Shared-state of the capped LRU dataset cache. */
struct DatasetCache
{
    std::map<DatasetKey, DatasetEntry> entries;
    std::uint64_t totalBytes = 0;
    std::uint64_t tick = 0;
    std::uint64_t capBytes;

    DatasetCache()
    {
        capBytes = 1ULL << 30;  // 1 GiB default retention.
        if (const char *env = std::getenv("MEMTIER_DATASET_CACHE_MB");
            env && *env) {
            capBytes = std::strtoull(env, nullptr, 10) << 20;
        }
    }

    /** Evict least-recently-used graphs until under the cap. @p keep
     *  is never evicted (it is the entry being returned right now). */
    void
    enforceCap(const DatasetKey &keep)
    {
        while (totalBytes > capBytes && entries.size() > 1) {
            auto victim = entries.end();
            for (auto it = entries.begin(); it != entries.end(); ++it) {
                if (it->first == keep)
                    continue;
                if (victim == entries.end() ||
                    it->second.lastUse < victim->second.lastUse) {
                    victim = it;
                }
            }
            if (victim == entries.end())
                break;
            totalBytes -= victim->second.bytes;
            entries.erase(victim);
        }
    }
};

DatasetCache &
datasetCache()
{
    static DatasetCache cache;
    return cache;
}

std::shared_ptr<const CsrGraph>
cachedDataset(GraphKind kind, int scale, int degree, std::uint64_t seed,
              bool weighted)
{
    DatasetCache &cache = datasetCache();
    const DatasetKey key{kind, scale, degree, seed, weighted};
    if (auto it = cache.entries.find(key); it != cache.entries.end()) {
        it->second.lastUse = ++cache.tick;
        return it->second.graph;
    }

    std::shared_ptr<const CsrGraph> graph;
    if (weighted) {
        // Copy the (possibly cached) unweighted graph, then weight it.
        auto weighted_graph = std::make_shared<CsrGraph>(
            *cachedDataset(kind, scale, degree, seed, false));
        weighted_graph->generateWeights(seed ^ 0x5eed);
        graph = std::move(weighted_graph);
    } else {
        inform("generating %s graph, scale %d, degree %d",
               graphKindName(kind), scale, degree);
        EdgeList edges = kind == GraphKind::Kron
                             ? generateKron(scale, degree, seed)
                             : generateUrand(scale, degree, seed);
        graph = std::make_shared<CsrGraph>(CsrGraph::fromEdgeList(
            static_cast<NodeId>(1LL << scale), edges));
    }

    DatasetEntry entry;
    entry.graph = graph;
    entry.bytes = graph->serializedBytes();
    entry.lastUse = ++cache.tick;
    cache.totalBytes += entry.bytes;
    cache.entries.emplace(key, std::move(entry));
    cache.enforceCap(key);
    if (cache.capBytes == 0) {
        // Zero cap: hand the graph out but retain nothing.
        clearDatasetCache();
    }
    return graph;
}

}  // namespace

std::shared_ptr<const CsrGraph>
datasetGraph(GraphKind kind, int scale, int degree, std::uint64_t seed)
{
    return cachedDataset(kind, scale, degree, seed, false);
}

std::shared_ptr<const CsrGraph>
weightedDatasetGraph(GraphKind kind, int scale, int degree,
                     std::uint64_t seed)
{
    return cachedDataset(kind, scale, degree, seed, true);
}

void
setDatasetCacheCapBytes(std::uint64_t bytes)
{
    datasetCache().capBytes = bytes;
    if (!datasetCache().entries.empty()) {
        // Re-apply the cap with the most recent entry protected.
        DatasetKey newest = datasetCache().entries.begin()->first;
        std::uint64_t best = 0;
        for (const auto &[key, entry] : datasetCache().entries) {
            if (entry.lastUse >= best) {
                best = entry.lastUse;
                newest = key;
            }
        }
        datasetCache().enforceCap(newest);
        if (bytes == 0)
            clearDatasetCache();
    }
}

std::uint64_t
datasetCacheBytes()
{
    return datasetCache().totalBytes;
}

std::size_t
datasetCacheCount()
{
    return datasetCache().entries.size();
}

void
clearDatasetCache()
{
    DatasetCache &cache = datasetCache();
    cache.entries.clear();
    cache.totalBytes = 0;
}

}  // namespace memtier

#include "exp/report.h"

#include <algorithm>
#include <cstdio>

#include "base/logging.h"

namespace memtier {

TextTable::TextTable(std::vector<std::string> headers)
    : head(std::move(headers))
{
}

void
TextTable::addRow(std::vector<std::string> row)
{
    MEMTIER_ASSERT(row.size() == head.size(),
                   "table row width mismatch");
    body.push_back(std::move(row));
}

void
TextTable::print(std::ostream &out) const
{
    std::vector<std::size_t> width(head.size());
    for (std::size_t c = 0; c < head.size(); ++c)
        width[c] = head[c].size();
    for (const auto &row : body) {
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << (c ? "  " : "") << row[c]
                << std::string(width[c] - row[c].size(), ' ');
        }
        out << '\n';
    };
    emit(head);
    std::size_t total = 0;
    for (const std::size_t w : width)
        total += w + 2;
    out << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
    for (const auto &row : body)
        emit(row);
}

std::string
pct(double frac, int precision)
{
    return strprintf("%.*f%%", precision, frac * 100.0);
}

std::string
num(double value, int precision)
{
    return strprintf("%.*f", precision, value);
}

std::string
fmtBytes(std::uint64_t bytes)
{
    const char *units[] = {"B", "KiB", "MiB", "GiB"};
    double v = static_cast<double>(bytes);
    int u = 0;
    while (v >= 1024.0 && u < 3) {
        v /= 1024.0;
        ++u;
    }
    return strprintf("%.1f %s", v, units[u]);
}

std::string
fmtCount(std::uint64_t value)
{
    std::string digits = std::to_string(value);
    std::string out;
    const std::size_t n = digits.size();
    for (std::size_t i = 0; i < n; ++i) {
        if (i > 0 && (n - i) % 3 == 0)
            out += ',';
        out += digits[i];
    }
    return out;
}

void
banner(std::ostream &out, const std::string &title)
{
    out << "\n=== " << title << " ===\n";
}

}  // namespace memtier

#include "graph/generators.h"

namespace memtier {

EdgeList
generateKron(int scale, int degree, std::uint64_t seed)
{
    const std::uint64_t m = (1ULL << scale) *
                            static_cast<std::uint64_t>(degree);
    EdgeList edges;
    edges.reserve(m);
    forEachKronEdge(scale, degree, seed, [&](NodeId u, NodeId v) {
        edges.push_back({u, v});
    });
    return edges;
}

EdgeList
generateUrand(int scale, int degree, std::uint64_t seed)
{
    const std::uint64_t m = (1ULL << scale) *
                            static_cast<std::uint64_t>(degree);
    EdgeList edges;
    edges.reserve(m);
    forEachUrandEdge(scale, degree, seed, [&](NodeId u, NodeId v) {
        edges.push_back({u, v});
    });
    return edges;
}

}  // namespace memtier

#include "graph/generators.h"

#include "base/logging.h"
#include "base/rng.h"

namespace memtier {

EdgeList
generateKron(int scale, int degree, std::uint64_t seed)
{
    MEMTIER_ASSERT(scale > 0 && scale < 32, "kron scale out of range");
    const std::uint64_t n = 1ULL << scale;
    const std::uint64_t m = n * static_cast<std::uint64_t>(degree);
    Rng rng(seed);

    // Graph500 R-MAT quadrant probabilities.
    constexpr double kA = 0.57;
    constexpr double kB = 0.19;
    constexpr double kC = 0.19;

    EdgeList edges;
    edges.reserve(m);
    for (std::uint64_t e = 0; e < m; ++e) {
        std::uint64_t u = 0;
        std::uint64_t v = 0;
        for (int bit = 0; bit < scale; ++bit) {
            const double r = rng.nextDouble();
            if (r < kA) {
                // Top-left quadrant: no bits set.
            } else if (r < kA + kB) {
                v |= 1ULL << bit;
            } else if (r < kA + kB + kC) {
                u |= 1ULL << bit;
            } else {
                u |= 1ULL << bit;
                v |= 1ULL << bit;
            }
        }
        edges.push_back({static_cast<NodeId>(u), static_cast<NodeId>(v)});
    }
    return edges;
}

EdgeList
generateUrand(int scale, int degree, std::uint64_t seed)
{
    MEMTIER_ASSERT(scale > 0 && scale < 32, "urand scale out of range");
    const std::uint64_t n = 1ULL << scale;
    const std::uint64_t m = n * static_cast<std::uint64_t>(degree);
    Rng rng(seed);

    EdgeList edges;
    edges.reserve(m);
    for (std::uint64_t e = 0; e < m; ++e) {
        const auto u = static_cast<NodeId>(rng.nextBounded(n));
        const auto v = static_cast<NodeId>(rng.nextBounded(n));
        edges.push_back({u, v});
    }
    return edges;
}

}  // namespace memtier

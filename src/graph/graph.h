/**
 * @file
 * Host-side graph representation: edge lists and the symmetric CSR the
 * GAPBS applications run on. "Host-side" means plain process memory;
 * the timed copy living in simulated tiered memory is SimCsrGraph.
 */

#ifndef MEMTIER_GRAPH_GRAPH_H_
#define MEMTIER_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

namespace memtier {

/** Vertex identifier (GAPBS uses 32-bit ids at these scales). */
using NodeId = std::int32_t;

/** One undirected edge. */
struct Edge
{
    NodeId u = 0;
    NodeId v = 0;
};

/** Edge list produced by the generators. */
using EdgeList = std::vector<Edge>;

/**
 * Compressed-sparse-row graph, symmetrized (undirected), deduplicated,
 * self-loop free -- the shape GAPBS builds for BC/BFS/CC on the kron
 * and urand inputs.
 */
class CsrGraph
{
  public:
    /**
     * Build from an edge list.
     * @param num_nodes vertex count (ids must be < num_nodes).
     * @param edges undirected edge list; duplicates and self loops are
     *        removed.
     */
    static CsrGraph fromEdgeList(NodeId num_nodes, const EdgeList &edges);

    /** Vertex count. */
    std::int64_t numNodes() const { return n; }

    /** Directed edge count (2x the undirected count). */
    std::int64_t numEdges() const { return offsets_.back(); }

    /** Degree of @p u. */
    std::int64_t
    degree(NodeId u) const
    {
        return offsets_[static_cast<std::size_t>(u) + 1] -
               offsets_[static_cast<std::size_t>(u)];
    }

    /** Neighbors of @p u. */
    std::span<const NodeId>
    neighbors(NodeId u) const
    {
        const auto begin = offsets_[static_cast<std::size_t>(u)];
        return {neigh.data() + begin,
                static_cast<std::size_t>(degree(u))};
    }

    /** CSR offsets array (size numNodes()+1). */
    const std::vector<std::int64_t> &offsets() const { return offsets_; }

    /** CSR adjacency array (size numEdges()). */
    const std::vector<NodeId> &adjacency() const { return neigh; }

    /**
     * Attach uniform-random edge weights in [1, 255] (the GAPBS .wsg
     * convention), deterministic in the endpoints so both directions of
     * an undirected edge carry the same weight.
     */
    void generateWeights(std::uint64_t seed);

    /** True when generateWeights() has run. */
    bool hasWeights() const { return !weight_values.empty(); }

    /** Weight of adjacency entry @p e (requires hasWeights()). */
    std::int32_t
    weight(std::int64_t e) const
    {
        return weight_values[static_cast<std::size_t>(e)];
    }

    /** Weights array (parallel to adjacency()). */
    const std::vector<std::int32_t> &weights() const
    {
        return weight_values;
    }

    /**
     * Size in bytes of the serialized .sg form (header + offsets +
     * adjacency), which is what the loading phase streams from disk.
     */
    std::uint64_t serializedBytes() const;

  private:
    std::int64_t n = 0;
    std::vector<std::int64_t> offsets_;
    std::vector<NodeId> neigh;
    std::vector<std::int32_t> weight_values;
};

}  // namespace memtier

#endif  // MEMTIER_GRAPH_GRAPH_H_

#include "graph/graph.h"

#include <algorithm>

#include "base/logging.h"
#include "base/rng.h"

namespace memtier {

CsrGraph
CsrGraph::fromEdgeList(NodeId num_nodes, const EdgeList &edges)
{
    MEMTIER_ASSERT(num_nodes > 0, "graph needs at least one vertex");

    // Symmetrize: store both directions of every undirected edge.
    std::vector<Edge> directed;
    directed.reserve(edges.size() * 2);
    for (const Edge &e : edges) {
        MEMTIER_ASSERT(e.u >= 0 && e.u < num_nodes, "vertex out of range");
        MEMTIER_ASSERT(e.v >= 0 && e.v < num_nodes, "vertex out of range");
        if (e.u == e.v)
            continue;  // Drop self loops.
        directed.push_back({e.u, e.v});
        directed.push_back({e.v, e.u});
    }
    std::sort(directed.begin(), directed.end(),
              [](const Edge &a, const Edge &b) {
                  return a.u != b.u ? a.u < b.u : a.v < b.v;
              });
    directed.erase(std::unique(directed.begin(), directed.end(),
                               [](const Edge &a, const Edge &b) {
                                   return a.u == b.u && a.v == b.v;
                               }),
                   directed.end());

    CsrGraph g;
    g.n = num_nodes;
    g.offsets_.assign(static_cast<std::size_t>(num_nodes) + 1, 0);
    for (const Edge &e : directed)
        ++g.offsets_[static_cast<std::size_t>(e.u) + 1];
    for (std::size_t i = 1; i < g.offsets_.size(); ++i)
        g.offsets_[i] += g.offsets_[i - 1];
    g.neigh.reserve(directed.size());
    for (const Edge &e : directed)
        g.neigh.push_back(e.v);
    return g;
}

std::uint64_t
CsrGraph::serializedBytes() const
{
    // GAPBS .sg layout: directed flag + edge count + node count, then
    // the offsets and adjacency arrays; .wsg appends the weights.
    return 3 * sizeof(std::int64_t) +
           offsets_.size() * sizeof(std::int64_t) +
           neigh.size() * sizeof(NodeId) +
           weight_values.size() * sizeof(std::int32_t);
}

void
CsrGraph::generateWeights(std::uint64_t seed)
{
    weight_values.resize(neigh.size());
    for (NodeId u = 0; u < n; ++u) {
        const auto begin = offsets_[static_cast<std::size_t>(u)];
        const auto end = offsets_[static_cast<std::size_t>(u) + 1];
        for (std::int64_t e = begin; e < end; ++e) {
            const NodeId v = neigh[static_cast<std::size_t>(e)];
            // Symmetric hash of the endpoint pair -> both directions of
            // an undirected edge get the same weight.
            const std::uint64_t lo =
                static_cast<std::uint64_t>(std::min(u, v));
            const std::uint64_t hi =
                static_cast<std::uint64_t>(std::max(u, v));
            SplitMix64 h(seed ^ (lo << 32 | hi));
            weight_values[static_cast<std::size_t>(e)] =
                static_cast<std::int32_t>(h.next() % 255 + 1);
        }
    }
}

}  // namespace memtier

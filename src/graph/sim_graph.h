/**
 * @file
 * SimCsrGraph: the CSR graph living in simulated tiered memory, plus the
 * timed loader that streams it from a .sg file through the page cache
 * (the "input reading phase" of Figure 9).
 */

#ifndef MEMTIER_GRAPH_SIM_GRAPH_H_
#define MEMTIER_GRAPH_SIM_GRAPH_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "runtime/sim_heap.h"
#include "runtime/sim_vector.h"

namespace memtier {

/** CSR graph in simulated memory; values mirrored from a host CsrGraph. */
class SimCsrGraph
{
  public:
    /**
     * Load @p host into simulated memory on thread @p t: registers a
     * .sg-sized file, then streams it sequentially -- page-cache fetch,
     * file-line loads, and element stores into two freshly mmap'd
     * objects ("csr.index" and "csr.adjacency").
     */
    static SimCsrGraph load(Engine &engine, SimHeap &heap,
                            ThreadContext &t, const CsrGraph &host,
                            const std::string &name);

    /** Vertex count. */
    std::int64_t numNodes() const { return hostGraph->numNodes(); }

    /** Directed edge count. */
    std::int64_t numEdges() const { return hostGraph->numEdges(); }

    /** Timed load of the CSR offset of vertex @p u. */
    std::int64_t
    offset(ThreadContext &t, NodeId u) const
    {
        return index.get(t, static_cast<std::uint64_t>(u));
    }

    /** Timed load of adjacency entry @p e. */
    NodeId
    neighbor(ThreadContext &t, std::int64_t e) const
    {
        return adjacency.get(t, static_cast<std::uint64_t>(e));
    }

    /**
     * Timed neighbor iteration: calls @p fn(v) for each neighbor v of
     * @p u, issuing the two offset loads and one load per edge.
     */
    template <typename Fn>
    void
    forNeighbors(ThreadContext &t, NodeId u, Fn &&fn) const
    {
        const std::int64_t begin = offset(t, u);
        const std::int64_t end =
            index.get(t, static_cast<std::uint64_t>(u) + 1);
        for (std::int64_t e = begin; e < end; ++e)
            fn(neighbor(t, e));
    }

    /**
     * Timed bulk row read: loads the offset pair of @p u as one batch
     * and the whole adjacency row as batched loads into @p row (the
     * engine coalesces the same-line runs of the sequential edge
     * addresses). Same loads as @ref forNeighbors, issued in bulk.
     * @return the row's CSR range [begin, end).
     */
    std::pair<std::int64_t, std::int64_t>
    neighborsInto(ThreadContext &t, NodeId u,
                  std::vector<NodeId> &row) const
    {
        std::int64_t offs[2];
        index.copyOut(t, static_cast<std::uint64_t>(u),
                      static_cast<std::uint64_t>(u) + 2, offs);
        row.resize(static_cast<std::size_t>(offs[1] - offs[0]));
        adjacency.copyOut(t, static_cast<std::uint64_t>(offs[0]),
                          static_cast<std::uint64_t>(offs[1]),
                          row.data());
        return {offs[0], offs[1]};
    }

    /**
     * Timed bulk read of the offset pair of @p u (degree probes that
     * don't need the adjacency row).
     */
    std::pair<std::int64_t, std::int64_t>
    offsetPair(ThreadContext &t, NodeId u) const
    {
        std::int64_t offs[2];
        index.copyOut(t, static_cast<std::uint64_t>(u),
                      static_cast<std::uint64_t>(u) + 2, offs);
        return {offs[0], offs[1]};
    }

    /**
     * Timed bulk read of the edge weights for CSR range
     * [@p begin, @p end) into @p out.
     */
    void
    weightsInto(ThreadContext &t, std::int64_t begin, std::int64_t end,
                std::vector<std::int32_t> &out) const
    {
        out.resize(static_cast<std::size_t>(end - begin));
        weights.copyOut(t, static_cast<std::uint64_t>(begin),
                        static_cast<std::uint64_t>(end), out.data());
    }

    /** Host mirror, for untimed validation. */
    const CsrGraph &host() const { return *hostGraph; }

    /** The simulated index object (for experiment introspection). */
    const SimVector<std::int64_t> &indexVector() const { return index; }

    /** The simulated adjacency object. */
    const SimVector<NodeId> &adjacencyVector() const { return adjacency; }

    /** The simulated weights object (invalid for unweighted inputs). */
    const SimVector<std::int32_t> &weightsVector() const
    {
        return weights;
    }

    /** True when edge weights were loaded (.wsg input). */
    bool hasWeights() const { return weights.valid(); }

    /** Timed load of the weight of adjacency entry @p e. */
    std::int32_t
    weightOf(ThreadContext &t, std::int64_t e) const
    {
        return weights.get(t, static_cast<std::uint64_t>(e));
    }

    /** Free both simulated objects. */
    void free(SimHeap &heap, ThreadContext &t);

  private:
    const CsrGraph *hostGraph = nullptr;
    SimVector<std::int64_t> index;
    SimVector<NodeId> adjacency;
    SimVector<std::int32_t> weights;  ///< Valid for weighted inputs.
};

}  // namespace memtier

#endif  // MEMTIER_GRAPH_SIM_GRAPH_H_

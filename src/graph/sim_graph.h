/**
 * @file
 * SimCsrGraph: the CSR graph living in simulated tiered memory, plus the
 * timed loader that streams it from a .sg file through the page cache
 * (the "input reading phase" of Figure 9).
 */

#ifndef MEMTIER_GRAPH_SIM_GRAPH_H_
#define MEMTIER_GRAPH_SIM_GRAPH_H_

#include <cstdint>
#include <string>

#include "graph/graph.h"
#include "runtime/sim_heap.h"
#include "runtime/sim_vector.h"

namespace memtier {

/** CSR graph in simulated memory; values mirrored from a host CsrGraph. */
class SimCsrGraph
{
  public:
    /**
     * Load @p host into simulated memory on thread @p t: registers a
     * .sg-sized file, then streams it sequentially -- page-cache fetch,
     * file-line loads, and element stores into two freshly mmap'd
     * objects ("csr.index" and "csr.adjacency").
     */
    static SimCsrGraph load(Engine &engine, SimHeap &heap,
                            ThreadContext &t, const CsrGraph &host,
                            const std::string &name);

    /** Vertex count. */
    std::int64_t numNodes() const { return hostGraph->numNodes(); }

    /** Directed edge count. */
    std::int64_t numEdges() const { return hostGraph->numEdges(); }

    /** Timed load of the CSR offset of vertex @p u. */
    std::int64_t
    offset(ThreadContext &t, NodeId u) const
    {
        return index.get(t, static_cast<std::uint64_t>(u));
    }

    /** Timed load of adjacency entry @p e. */
    NodeId
    neighbor(ThreadContext &t, std::int64_t e) const
    {
        return adjacency.get(t, static_cast<std::uint64_t>(e));
    }

    /**
     * Timed neighbor iteration: calls @p fn(v) for each neighbor v of
     * @p u, issuing the two offset loads and one load per edge.
     */
    template <typename Fn>
    void
    forNeighbors(ThreadContext &t, NodeId u, Fn &&fn) const
    {
        const std::int64_t begin = offset(t, u);
        const std::int64_t end =
            index.get(t, static_cast<std::uint64_t>(u) + 1);
        for (std::int64_t e = begin; e < end; ++e)
            fn(neighbor(t, e));
    }

    /** Host mirror, for untimed validation. */
    const CsrGraph &host() const { return *hostGraph; }

    /** The simulated index object (for experiment introspection). */
    const SimVector<std::int64_t> &indexVector() const { return index; }

    /** The simulated adjacency object. */
    const SimVector<NodeId> &adjacencyVector() const { return adjacency; }

    /** True when edge weights were loaded (.wsg input). */
    bool hasWeights() const { return weights.valid(); }

    /** Timed load of the weight of adjacency entry @p e. */
    std::int32_t
    weightOf(ThreadContext &t, std::int64_t e) const
    {
        return weights.get(t, static_cast<std::uint64_t>(e));
    }

    /** Free both simulated objects. */
    void free(SimHeap &heap, ThreadContext &t);

  private:
    const CsrGraph *hostGraph = nullptr;
    SimVector<std::int64_t> index;
    SimVector<NodeId> adjacency;
    SimVector<std::int32_t> weights;  ///< Valid for weighted inputs.
};

}  // namespace memtier

#endif  // MEMTIER_GRAPH_SIM_GRAPH_H_

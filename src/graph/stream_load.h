/**
 * @file
 * Timed streaming of file-resident values into a simulated allocation:
 * one page-granular page-cache fetch plus line loads, interleaved with
 * the element stores, page by page -- the access pattern of a buffered
 * fread into a fresh allocation. Shared by the monolithic SimCsrGraph
 * loader and the segmented loader in src/bigraph, so both phases issue
 * the exact same access sequence per byte streamed.
 */

#ifndef MEMTIER_GRAPH_STREAM_LOAD_H_
#define MEMTIER_GRAPH_STREAM_LOAD_H_

#include <algorithm>
#include <cstdint>

#include "runtime/sim_file.h"
#include "runtime/sim_vector.h"

namespace memtier {

/**
 * Stream @p count elements of type T from @p file at @p file_offset
 * into @p dst, reading @p values from host memory.
 */
template <typename T>
void
streamInto(SimFile &file, ThreadContext &t, std::uint64_t file_offset,
           const SimVector<T> &dst, const T *values, std::uint64_t count)
{
    std::uint64_t copied = 0;
    while (copied < count) {
        const std::uint64_t bytes_done = copied * sizeof(T);
        const std::uint64_t chunk_bytes =
            std::min<std::uint64_t>(kPageSize,
                                    (count - copied) * sizeof(T));
        file.read(t, file_offset + bytes_done, chunk_bytes);
        const std::uint64_t chunk_elems = chunk_bytes / sizeof(T);
        dst.putRange(t, copied, values + copied, chunk_elems);
        copied += chunk_elems;
    }
}

}  // namespace memtier

#endif  // MEMTIER_GRAPH_STREAM_LOAD_H_

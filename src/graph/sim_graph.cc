#include "graph/sim_graph.h"

#include <algorithm>
#include <cstring>

#include "base/logging.h"
#include "runtime/sim_file.h"

namespace memtier {

namespace {

/**
 * Stream @p count elements of type T from @p file at @p file_offset into
 * @p dst: one page-granular cache fetch plus line loads, interleaved
 * with the element stores, page by page -- the access pattern of a
 * buffered fread into a fresh allocation.
 */
template <typename T>
void
streamInto(Engine &eng, SimFile &file, ThreadContext &t,
           std::uint64_t file_offset, const SimVector<T> &dst,
           const T *values, std::uint64_t count)
{
    std::uint64_t copied = 0;
    while (copied < count) {
        const std::uint64_t bytes_done = copied * sizeof(T);
        const std::uint64_t chunk_bytes =
            std::min<std::uint64_t>(kPageSize,
                                    (count - copied) * sizeof(T));
        file.read(t, file_offset + bytes_done, chunk_bytes);
        const std::uint64_t chunk_elems = chunk_bytes / sizeof(T);
        dst.putRange(t, copied, values + copied, chunk_elems);
        copied += chunk_elems;
    }
    (void)eng;
}

}  // namespace

SimCsrGraph
SimCsrGraph::load(Engine &engine, SimHeap &heap, ThreadContext &t,
                  const CsrGraph &host, const std::string &name)
{
    SimCsrGraph g;
    g.hostGraph = &host;

    SimFile file(engine, name + ".sg", host.serializedBytes());

    // Header: directed flag, edge count, node count.
    file.read(t, 0, 3 * sizeof(std::int64_t));

    const auto &offs = host.offsets();
    const auto &adj = host.adjacency();

    g.index = heap.alloc<std::int64_t>(t, "csr.index", offs.size());
    std::uint64_t file_pos = 3 * sizeof(std::int64_t);
    streamInto(engine, file, t, file_pos, g.index, offs.data(),
               offs.size());
    file_pos += offs.size() * sizeof(std::int64_t);

    g.adjacency = heap.alloc<NodeId>(t, "csr.adjacency", adj.size());
    streamInto(engine, file, t, file_pos, g.adjacency, adj.data(),
               adj.size());
    file_pos += adj.size() * sizeof(NodeId);

    if (host.hasWeights()) {
        const auto &wts = host.weights();
        g.weights =
            heap.alloc<std::int32_t>(t, "csr.weights", wts.size());
        streamInto(engine, file, t, file_pos, g.weights, wts.data(),
                   wts.size());
    }
    return g;
}

void
SimCsrGraph::free(SimHeap &heap, ThreadContext &t)
{
    heap.free(t, index);
    heap.free(t, adjacency);
    if (weights.valid())
        heap.free(t, weights);
}

}  // namespace memtier

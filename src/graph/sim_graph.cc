#include "graph/sim_graph.h"

#include <algorithm>
#include <cstring>

#include "base/logging.h"
#include "graph/stream_load.h"
#include "runtime/sim_file.h"

namespace memtier {

SimCsrGraph
SimCsrGraph::load(Engine &engine, SimHeap &heap, ThreadContext &t,
                  const CsrGraph &host, const std::string &name)
{
    SimCsrGraph g;
    g.hostGraph = &host;

    SimFile file(engine, name + ".sg", host.serializedBytes());

    // Header: directed flag, edge count, node count.
    file.read(t, 0, 3 * sizeof(std::int64_t));

    const auto &offs = host.offsets();
    const auto &adj = host.adjacency();

    g.index = heap.alloc<std::int64_t>(t, "csr.index", offs.size());
    std::uint64_t file_pos = 3 * sizeof(std::int64_t);
    streamInto(file, t, file_pos, g.index, offs.data(), offs.size());
    file_pos += offs.size() * sizeof(std::int64_t);

    g.adjacency = heap.alloc<NodeId>(t, "csr.adjacency", adj.size());
    streamInto(file, t, file_pos, g.adjacency, adj.data(), adj.size());
    file_pos += adj.size() * sizeof(NodeId);

    if (host.hasWeights()) {
        const auto &wts = host.weights();
        g.weights =
            heap.alloc<std::int32_t>(t, "csr.weights", wts.size());
        streamInto(file, t, file_pos, g.weights, wts.data(),
                   wts.size());
    }
    return g;
}

void
SimCsrGraph::free(SimHeap &heap, ThreadContext &t)
{
    heap.free(t, index);
    heap.free(t, adjacency);
    if (weights.valid())
        heap.free(t, weights);
}

}  // namespace memtier

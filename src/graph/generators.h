/**
 * @file
 * The two GAPBS synthetic inputs the paper uses (Section 4.1):
 * Kronecker (kron, Graph500 parameters) and uniform random (urand,
 * Erdos-Renyi style), both with average degree 16.
 *
 * The paper generates `-g30/-u31` (hundreds of GB); the scaled testbed
 * uses the same generators at smaller scale so the footprint exceeds
 * the scaled DRAM capacity by the same ratio.
 *
 * Both generators exist in two forms sharing one RNG sequence: the
 * EdgeList builders below, and streaming forEach*Edge visitors that
 * emit edges one at a time without materializing the list -- the form
 * the out-of-core segmented builder (src/bigraph) consumes, where the
 * full edge list at scale 24+ would not fit the host RSS budget.
 */

#ifndef MEMTIER_GRAPH_GENERATORS_H_
#define MEMTIER_GRAPH_GENERATORS_H_

#include <cstdint>

#include "base/logging.h"
#include "base/rng.h"
#include "graph/graph.h"

namespace memtier {

/**
 * Stream the Kronecker (R-MAT) edge sequence with Graph500
 * probabilities (A=0.57, B=0.19, C=0.19): calls @p fn(u, v) for each
 * of the degree*2^scale generated edges, in generation order.
 * Identical RNG draws to generateKron, so the emitted sequence is the
 * edge list element for element.
 */
template <typename Fn>
void
forEachKronEdge(int scale, int degree, std::uint64_t seed, Fn &&fn)
{
    MEMTIER_ASSERT(scale > 0 && scale < 32, "kron scale out of range");
    const std::uint64_t n = 1ULL << scale;
    const std::uint64_t m = n * static_cast<std::uint64_t>(degree);
    Rng rng(seed);

    // Graph500 R-MAT quadrant probabilities.
    constexpr double kA = 0.57;
    constexpr double kB = 0.19;
    constexpr double kC = 0.19;

    for (std::uint64_t e = 0; e < m; ++e) {
        std::uint64_t u = 0;
        std::uint64_t v = 0;
        for (int bit = 0; bit < scale; ++bit) {
            const double r = rng.nextDouble();
            if (r < kA) {
                // Top-left quadrant: no bits set.
            } else if (r < kA + kB) {
                v |= 1ULL << bit;
            } else if (r < kA + kB + kC) {
                u |= 1ULL << bit;
            } else {
                u |= 1ULL << bit;
                v |= 1ULL << bit;
            }
        }
        fn(static_cast<NodeId>(u), static_cast<NodeId>(v));
    }
}

/**
 * Stream the uniform-random edge sequence: calls @p fn(u, v) for each
 * of the degree*2^scale edges with independently uniform endpoints.
 * Identical RNG draws to generateUrand.
 */
template <typename Fn>
void
forEachUrandEdge(int scale, int degree, std::uint64_t seed, Fn &&fn)
{
    MEMTIER_ASSERT(scale > 0 && scale < 32, "urand scale out of range");
    const std::uint64_t n = 1ULL << scale;
    const std::uint64_t m = n * static_cast<std::uint64_t>(degree);
    Rng rng(seed);

    for (std::uint64_t e = 0; e < m; ++e) {
        const auto u = static_cast<NodeId>(rng.nextBounded(n));
        const auto v = static_cast<NodeId>(rng.nextBounded(n));
        fn(u, v);
    }
}

/**
 * Kronecker (R-MAT) generator with Graph500 probabilities
 * (A=0.57, B=0.19, C=0.19).
 *
 * @param scale log2 of the vertex count.
 * @param degree average edges per vertex (Graph500 edgefactor).
 * @param seed RNG seed.
 */
EdgeList generateKron(int scale, int degree, std::uint64_t seed);

/**
 * Uniform-random generator: degree*2^scale edges with independently
 * uniform endpoints.
 *
 * @param scale log2 of the vertex count.
 * @param degree average edges per vertex.
 * @param seed RNG seed.
 */
EdgeList generateUrand(int scale, int degree, std::uint64_t seed);

}  // namespace memtier

#endif  // MEMTIER_GRAPH_GENERATORS_H_

/**
 * @file
 * The two GAPBS synthetic inputs the paper uses (Section 4.1):
 * Kronecker (kron, Graph500 parameters) and uniform random (urand,
 * Erdos-Renyi style), both with average degree 16.
 *
 * The paper generates `-g30/-u31` (hundreds of GB); the scaled testbed
 * uses the same generators at smaller scale so the footprint exceeds
 * the scaled DRAM capacity by the same ratio.
 */

#ifndef MEMTIER_GRAPH_GENERATORS_H_
#define MEMTIER_GRAPH_GENERATORS_H_

#include <cstdint>

#include "graph/graph.h"

namespace memtier {

/**
 * Kronecker (R-MAT) generator with Graph500 probabilities
 * (A=0.57, B=0.19, C=0.19).
 *
 * @param scale log2 of the vertex count.
 * @param degree average edges per vertex (Graph500 edgefactor).
 * @param seed RNG seed.
 */
EdgeList generateKron(int scale, int degree, std::uint64_t seed);

/**
 * Uniform-random generator: degree*2^scale edges with independently
 * uniform endpoints.
 *
 * @param scale log2 of the vertex count.
 * @param degree average edges per vertex.
 * @param seed RNG seed.
 */
EdgeList generateUrand(int scale, int degree, std::uint64_t seed);

}  // namespace memtier

#endif  // MEMTIER_GRAPH_GENERATORS_H_

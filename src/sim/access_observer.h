/**
 * @file
 * Engine -> profiler notification interface. The PEBS-style sampler
 * implements this to see every memory operation and decide which to
 * record, mirroring perf-mem's position between the core and the tools.
 */

#ifndef MEMTIER_SIM_ACCESS_OBSERVER_H_
#define MEMTIER_SIM_ACCESS_OBSERVER_H_

#include <cstddef>

#include "base/types.h"

namespace memtier {

/** One memory operation submitted to Engine::accessBatch. */
struct AccessRequest
{
    Addr addr = 0;
    MemOp op = MemOp::Load;
};

/** One completed memory operation as the observer sees it. */
struct AccessRecord
{
    ThreadId tid = 0;
    Addr vaddr = 0;
    MemOp op = MemOp::Load;
    MemLevel level = MemLevel::L1;  ///< Where the data was found.
    Cycles latency = 0;             ///< Total cost charged to the thread.
    bool tlbMiss = false;           ///< Required a page walk.
    Cycles time = 0;                ///< Completion time (thread clock).
};

/** Receives every access the engine executes. */
class AccessObserver
{
  public:
    virtual ~AccessObserver() = default;

    /** Called after each memory operation completes. */
    virtual void onAccess(const AccessRecord &record) = 0;

    /**
     * Batch delivery contract: the engine completes every operation of
     * an accessBatch call, then delivers the records once, in issue
     * order. Observers only see completed batches -- state an observer
     * accumulates lags the simulation by at most one batch relative to
     * periodic services that fire mid-batch. The default loops over
     * onAccess so existing observers keep working unchanged; observers
     * on the hot path override this to skip per-record virtual dispatch.
     */
    virtual void
    onBatch(const AccessRecord *records, std::size_t count)
    {
        for (std::size_t i = 0; i < count; ++i)
            onAccess(records[i]);
    }
};

}  // namespace memtier

#endif  // MEMTIER_SIM_ACCESS_OBSERVER_H_

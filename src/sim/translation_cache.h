/**
 * @file
 * Per-thread software translation micro-cache for the batched access
 * path. A direct-mapped array of {vpn, node, huge} results tagged with
 * the kernel's translation epoch: a lookup only hits when the stored
 * epoch equals the kernel's current one, so any remap since the fill
 * (migration, demotion, exchange, THP collapse/split, munmap -- all
 * bump the epoch) invalidates every cached entry at once without a
 * walk over the cache.
 *
 * The cache elides only *pure* kernel queries (isHugeMapped, nodeOf)
 * from the hot path; it never short-circuits touchPage, whose side
 * effects (fault handling, recency stamping) the simulation depends
 * on. Consequently enabling it cannot change simulated state, which is
 * what keeps the batched path bit-identical to the scalar one.
 */

#ifndef MEMTIER_SIM_TRANSLATION_CACHE_H_
#define MEMTIER_SIM_TRANSLATION_CACHE_H_

#include <array>
#include <cstdint>

#include "base/types.h"

namespace memtier {

/** Direct-mapped, epoch-validated translation result cache. */
class TranslationMicroCache
{
  public:
    /** Cached result of one translation. */
    struct Entry
    {
        PageNum vpn = 0;
        std::uint64_t epoch = 0;
        MemNode node = MemNode::DRAM;
        bool huge = false;
        bool valid = false;
    };

    /** Slots; power of two, sized to cover a few MiB of working set. */
    static constexpr std::size_t kEntries = 512;

    /**
     * Find the cached translation of @p vpn, or nullptr when absent or
     * tagged with an epoch other than @p current_epoch.
     */
    const Entry *
    lookup(PageNum vpn, std::uint64_t current_epoch) const
    {
        const Entry &e = entries_[vpn & (kEntries - 1)];
        if (e.valid && e.vpn == vpn && e.epoch == current_epoch)
            return &e;
        return nullptr;
    }

    /** Cache a translation result read under @p epoch. */
    void
    insert(PageNum vpn, std::uint64_t epoch, MemNode node, bool huge)
    {
        entries_[vpn & (kEntries - 1)] = Entry{vpn, epoch, node, huge,
                                               true};
    }

    /** Drop every entry (tests; epoch validation makes this optional). */
    void
    clear()
    {
        for (Entry &e : entries_)
            e.valid = false;
    }

    /** All slots, for the invariant checker's audit sweep. */
    const std::array<Entry, kEntries> &entries() const { return entries_; }

  private:
    std::array<Entry, kEntries> entries_{};
};

}  // namespace memtier

#endif  // MEMTIER_SIM_TRANSLATION_CACHE_H_

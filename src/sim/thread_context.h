/**
 * @file
 * Per-logical-thread CPU state: clock, private L1/L2, TLB, line-fill
 * buffer and stream-detection state.
 */

#ifndef MEMTIER_SIM_THREAD_CONTEXT_H_
#define MEMTIER_SIM_THREAD_CONTEXT_H_

#include <cstdint>

#include "base/types.h"
#include "cache/cache_params.h"
#include "cache/line_fill_buffer.h"
#include "cache/set_assoc_cache.h"
#include "cache/tlb.h"

namespace memtier {

class Engine;

/** One simulated hardware thread (core). */
class ThreadContext
{
  public:
    /**
     * @param id logical thread id.
     * @param params cache geometry for the private levels.
     */
    ThreadContext(ThreadId id, const CacheParams &params);

    ThreadId id() const { return tid; }

    /** Current thread-local time. */
    Cycles clock() const { return now; }

    /** Advance the thread's clock by @p cycles. */
    void advance(Cycles cycles) { now += cycles; }

    /** Force the clock (barrier synchronization). */
    void setClock(Cycles t) { now = t; }

    /** @name Private memory-system state (used by the engine). */
    ///@{
    Tlb tlb;
    SetAssocCache l1;
    SetAssocCache l2;
    LineFillBuffer lfb;
    ///@}

    /** Last memory-serviced address, for stream detection. */
    Addr lastMemAddr = ~Addr{0};

    /** @name Per-thread counters. */
    ///@{
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t pageFaults = 0;
    std::uint64_t hintFaults = 0;
    ///@}

  private:
    ThreadId tid;
    Cycles now = 0;
};

}  // namespace memtier

#endif  // MEMTIER_SIM_THREAD_CONTEXT_H_

/**
 * @file
 * Per-logical-thread CPU state: clock, private L1/L2, TLB, line-fill
 * buffer and stream-detection state.
 */

#ifndef MEMTIER_SIM_THREAD_CONTEXT_H_
#define MEMTIER_SIM_THREAD_CONTEXT_H_

#include <cstdint>
#include <vector>

#include "base/types.h"
#include "cache/cache_params.h"
#include "cache/line_fill_buffer.h"
#include "cache/set_assoc_cache.h"
#include "cache/tlb.h"
#include "sim/access_observer.h"
#include "sim/translation_cache.h"

namespace memtier {

class Engine;

/** One simulated hardware thread (core). */
class ThreadContext
{
  public:
    /**
     * @param id logical thread id.
     * @param params cache geometry for the private levels.
     */
    ThreadContext(ThreadId id, const CacheParams &params);

    ThreadId id() const { return tid; }

    /** Current thread-local time. */
    Cycles clock() const { return now; }

    /** Advance the thread's clock by @p cycles. */
    void advance(Cycles cycles) { now += cycles; }

    /** Force the clock (barrier synchronization). */
    void setClock(Cycles t) { now = t; }

    /** @name Private memory-system state (used by the engine). */
    ///@{
    Tlb tlb;
    SetAssocCache l1;
    SetAssocCache l2;
    LineFillBuffer lfb;

    /** Epoch-validated translation micro-cache (batched path only). */
    TranslationMicroCache xlat;
    ///@}

    /**
     * Last memory-serviced address, for stream detection.
     *
     * Known limitation of the scalar path: this is a single global
     * cursor, so two interleaved array scans (e.g. the offsets and
     * adjacency arrays of a CSR traversal) keep resetting it and defeat
     * sequential detection even though each array individually streams.
     * The batched path fixes this structurally: the bulk SimVector API
     * groups requests per array, so each same-page run presents its
     * accesses contiguously and the cursor sees the stream intact.
     */
    Addr lastMemAddr = ~Addr{0};

    /** Reusable request buffer for the bulk SimVector operations. */
    std::vector<AccessRequest> reqScratch;

    /**
     * Reusable address buffer for the uniform-op bulk operations
     * (gather/scatter), issued through Engine::accessMany.
     */
    std::vector<Addr> addrScratch;

    /** @name Per-thread counters. */
    ///@{
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t pageFaults = 0;
    std::uint64_t hintFaults = 0;
    ///@}

  private:
    ThreadId tid;
    Cycles now = 0;
};

}  // namespace memtier

#endif  // MEMTIER_SIM_THREAD_CONTEXT_H_

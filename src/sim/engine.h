/**
 * @file
 * The simulation engine: composes the physical memory, kernel, AutoNUMA
 * policy, shared L3 and the logical threads, executes timed memory
 * accesses, interleaves threads deterministically by earliest clock, and
 * drives the periodic kernel services (kswapd, scanner, timeline
 * sampling).
 */

#ifndef MEMTIER_SIM_ENGINE_H_
#define MEMTIER_SIM_ENGINE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "autonuma/autonuma.h"
#include "base/stats.h"
#include "base/types.h"
#include "cache/set_assoc_cache.h"
#include "fault/fault_injector.h"
#include "os/invariants.h"
#include "os/kernel.h"
#include "os/metrics_view.h"
#include "os/physical_memory.h"
#include "policy/tunable_registry.h"
#include "sim/access_observer.h"
#include "sim/host_lane.h"
#include "sim/system_config.h"
#include "sim/thread_context.h"
#include "thp/khugepaged.h"

namespace memtier {

class HostExecutor;

/**
 * Sharing discipline of a parallel region's body, declared by the
 * caller. Serial (the default) always runs the deterministic
 * single-OS-thread interleaving. WriteDisjoint promises that each
 * logical thread writes only to its own partition (reads of other
 * partitions see phase-frozen data), which lets the engine run the
 * region on real host threads when SystemConfig::hostThreads > 1.
 */
enum class RegionMode : std::uint8_t {
    Serial = 0,
    WriteDisjoint,
};

/** One sample of the machine-wide timeline (Figures 9 and 10). */
struct TimelinePoint
{
    double sec = 0.0;        ///< Simulated seconds.
    NumaStatSnapshot numa;   ///< Per-node usage.
    VmStat vm;               ///< Cumulative vmstat counters.
    double cpuUtil = 0.0;    ///< Active threads / total threads.
};

/** The simulated machine. */
class Engine : public TlbShootdownClient
{
  public:
    /** Build a machine from @p config. */
    explicit Engine(const SystemConfig &config);
    ~Engine() override;

    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /** @name Component access */
    ///@{
    Kernel &kernel() { return *kern; }
    PhysicalMemory &physicalMemory() { return phys; }

    /** Installed tiering policy (nullptr when tiering is off). */
    TieringPolicy *tieringPolicy() { return tiering.get(); }

    /** The policy as AutoNuma, or nullptr when another one runs. */
    AutoNuma *autonuma() { return dynamic_cast<AutoNuma *>(tiering.get()); }
    ThreadContext &thread(std::uint32_t i) { return *threads.at(i); }
    std::uint32_t threadCount() const
    {
        return static_cast<std::uint32_t>(threads.size());
    }
    const SystemConfig &config() const { return cfg; }
    const SetAssocCache &sharedL3() const { return l3; }

    /** Fault injector, or nullptr when the plan enables nothing. */
    FaultInjector *faultInjector() { return faults_.get(); }

    /** Invariant checker, or nullptr when checking is off. */
    InvariantChecker *invariantChecker() { return invariants_.get(); }

    /** Collapse daemon, or nullptr when THP is off. */
    Khugepaged *khugepaged() { return khugepaged_.get(); }

    /**
     * Live tunable registry: kernel-owned tunables plus whatever the
     * installed policy registered at construction. Mutations through
     * TunableRegistry::set() take effect immediately; a scan-period
     * change re-arms the scan service.
     */
    TunableRegistry &tunableRegistry() { return registry_; }
    const TunableRegistry &tunableRegistry() const { return registry_; }
    ///@}

    /** Install the sole access observer (nullptr clears them all). */
    void
    setObserver(AccessObserver *obs)
    {
        observers.clear();
        if (obs)
            observers.push_back(obs);
    }

    /** Register an additional access observer. */
    void addObserver(AccessObserver *obs) { observers.push_back(obs); }

    /**
     * Register a periodic service invoked from the engine's service
     * clock every @p period cycles (like kswapd and the scanner).
     */
    void
    addPeriodicService(Cycles period, std::function<void(Cycles)> fn)
    {
        services.push_back({period, period, std::move(fn)});
        recomputeNextServiceDue();
    }

    // -- Timed memory operations --------------------------------------

    /**
     * Execute a batch of memory operations on thread @p t in issue
     * order, advancing its clock by the modelled latencies.
     *
     * Semantically identical to issuing the requests one at a time (the
     * golden tests diff the two paths bit for bit); the batch form
     * coalesces same-line runs so the per-element host work collapses
     * to the LFB attribution, validates translations through the
     * per-thread epoch micro-cache, and delivers observer records once
     * per batch (AccessObserver::onBatch). SystemConfig::scalarPath or
     * MEMTIER_SCALAR_PATH=ON forces the reference element-at-a-time
     * machinery instead.
     *
     * @return the summed latency charged (excluding issue cycles).
     */
    Cycles accessBatch(ThreadContext &t,
                       std::span<const AccessRequest> reqs);

    /**
     * Execute @p count same-op accesses at @p base, @p base + @p stride,
     * ... on thread @p t -- the contiguous-range form of accessBatch.
     * The addresses are synthesized on the fly, so neither path
     * materializes a request list: the batched pipeline walks line runs
     * arithmetically and the forced scalar reference runs the legacy
     * element-at-a-time loop. With observers attached the range falls
     * back to materialized accessBatch chunks so record staging and
     * batch delivery stay in one place.
     *
     * @return the summed latency charged (excluding issue cycles).
     */
    Cycles accessRange(ThreadContext &t, Addr base, std::uint64_t count,
                       std::uint32_t stride, MemOp op);

    /**
     * Execute one same-op access per address in @p addrs, in order --
     * the uniform-op form of accessBatch used by gathers and scatters.
     * Halves the staging traffic of a materialized request list and
     * lets the batch machinery skip per-element op reads.
     *
     * @return the summed latency charged (excluding issue cycles).
     */
    Cycles accessMany(ThreadContext &t, std::span<const Addr> addrs,
                      MemOp op);

    /**
     * Execute one memory operation on thread @p t, advancing its clock
     * by the modelled latency. Thin wrapper over a batch of one.
     * @return the latency charged.
     */
    Cycles
    access(ThreadContext &t, Addr addr, MemOp op)
    {
        const AccessRequest req{addr, op};
        return accessBatch(t, std::span<const AccessRequest>(&req, 1));
    }

    /** Timed load convenience. */
    Cycles load(ThreadContext &t, Addr addr)
    {
        return access(t, addr, MemOp::Load);
    }

    /** Timed store convenience. */
    Cycles store(ThreadContext &t, Addr addr)
    {
        return access(t, addr, MemOp::Store);
    }

    // -- Timed syscalls ------------------------------------------------

    /** mmap from thread @p t. */
    Addr sysMmap(ThreadContext &t, std::uint64_t bytes, ObjectId object,
                 const std::string &site);

    /** munmap from thread @p t. */
    void sysMunmap(ThreadContext &t, Addr start);

    /** mbind from thread @p t. */
    void sysMbind(ThreadContext &t, Addr start, const MemPolicy &policy);

    /** Register a disk file with the page cache (untimed setup). */
    Addr registerFile(std::uint64_t bytes, const std::string &name);

    /**
     * Ensure a file page is in the page cache, charging the disk fetch
     * to thread @p t when it misses.
     */
    void fileReadPage(ThreadContext &t, PageNum vpn);

    // -- Parallel execution --------------------------------------------

    /**
     * Run @p body(ctx, begin, end) over grain-sized subranges of
     * [0, n) across all logical threads with a static block partition,
     * interleaving threads by earliest clock (deterministic), and
     * barrier at the end. The range form lets the body issue one
     * accessBatch per subrange instead of per element; the scheduling
     * decisions are identical to the element form because a grain-sized
     * run always executed uninterrupted between clock comparisons.
     *
     * With @p mode == RegionMode::WriteDisjoint and hostThreads > 1
     * the region instead runs on real host threads (one group of
     * logical threads per OS thread, same per-thread partition, kernel
     * work serialized into deterministic rounds); results then differ
     * from the serial interleaving but replay bit-identically for a
     * fixed thread count.
     *
     * @param n iteration count.
     * @param body callable (ThreadContext &, uint64_t begin,
     *        uint64_t end) covering indices [begin, end).
     * @param grain consecutive iterations executed per scheduling step.
     * @param mode sharing discipline the body guarantees.
     */
    template <typename RangeBody>
    void
    parallelForRanges(std::uint64_t n, RangeBody &&body,
                      std::uint64_t grain = 16,
                      RegionMode mode = RegionMode::Serial)
    {
        if (n == 0)
            return;
        if (mode == RegionMode::WriteDisjoint && canRunParallelRegion()) {
            runParallelRegion(
                n, grain,
                std::function<void(ThreadContext &, std::uint64_t,
                                   std::uint64_t)>(
                    std::forward<RangeBody>(body)));
            return;
        }
        syncClocks();

        struct Range
        {
            std::uint64_t next;
            std::uint64_t end;
        };
        std::vector<Range> ranges(threads.size());
        const std::uint64_t per = n / threads.size();
        const std::uint64_t rem = n % threads.size();
        std::uint64_t cursor = 0;
        std::size_t busy = 0;
        for (std::size_t t = 0; t < threads.size(); ++t) {
            const std::uint64_t len = per + (t < rem ? 1 : 0);
            ranges[t] = {cursor, cursor + len};
            cursor += len;
            if (len > 0)
                ++busy;
        }
        activeThreads = static_cast<std::uint32_t>(busy);

        std::size_t remaining = busy;
        while (remaining > 0) {
            // Earliest-clock-first interleaving; ties go to the lowest
            // thread id, keeping runs bit-for-bit reproducible.
            std::size_t best = SIZE_MAX;
            for (std::size_t t = 0; t < threads.size(); ++t) {
                if (ranges[t].next >= ranges[t].end)
                    continue;
                if (best == SIZE_MAX ||
                    threads[t]->clock() < threads[best]->clock()) {
                    best = t;
                }
            }
            Range &r = ranges[best];
            ThreadContext &ctx = *threads[best];
            const std::uint64_t stop = std::min(r.end, r.next + grain);
            body(ctx, r.next, stop);
            r.next = stop;
            if (r.next >= r.end)
                --remaining;
        }
        barrier();
        activeThreads = 1;
    }

    /**
     * Run @p body(ctx, i) for i in [0, n); element-at-a-time form of
     * @ref parallelForRanges with identical scheduling.
     */
    template <typename Body>
    void
    parallelFor(std::uint64_t n, Body &&body, std::uint64_t grain = 16)
    {
        parallelForRanges(
            n,
            [&](ThreadContext &ctx, std::uint64_t begin,
                std::uint64_t end) {
                for (std::uint64_t i = begin; i < end; ++i)
                    body(ctx, i);
            },
            grain);
    }

    /** Synchronize every thread clock to the global maximum. */
    void barrier();

    /** Largest thread clock = current simulated time. */
    Cycles globalTime() const;

    // -- Introspection --------------------------------------------------

    /** Accesses serviced per memory level. */
    std::uint64_t levelCount(MemLevel level) const
    {
        return level_counts[static_cast<int>(level)];
    }

    /** Machine-wide timeline samples. */
    const std::vector<TimelinePoint> &timeline() const { return points; }

    /**
     * Simulated cycles charged per executed grain range on the host
     * workers (merged per-worker shards). Empty until a parallel
     * region has run with hostThreads > 1.
     */
    const LatencyHistogram &hostGrainLatency() const { return hostLat_; }

    // -- Observation plane ---------------------------------------------

    /**
     * Cumulative machine-metrics snapshot at @p now: accesses and their
     * summed memory-system cycles, vmstat, and the serving-latency
     * quantiles when a probe is registered. Reads only master state
     * (host-worker lane shards merge at region end), so a snapshot
     * taken from a service is deterministic for a fixed worker count.
     */
    MetricsView sampleMetrics(Cycles now) const;

    /**
     * Register the live serving-latency histogram the serving driver
     * appends to (nullptr clears it). Sampled, never mutated, by
     * sampleMetrics().
     */
    void
    setServingLatencyProbe(const LatencyHistogram *probe)
    {
        servingProbe_ = probe;
    }

    /** MetricsView history, one per policy epoch tick (oldest first). */
    const std::vector<MetricsView> &metricsEpochs() const
    {
        return metricsEpochs_;
    }

    /** TlbShootdownClient: invalidate @p vpn everywhere. */
    void tlbShootdown(PageNum vpn) override;

    /** TlbShootdownClient: drop the 2 MiB entry at @p base_vpn. */
    void tlbShootdownHuge(PageNum base_vpn) override;

  private:
    /** Per-element outcome of the shared access core. */
    struct AccessOutcome
    {
        Cycles cost = 0;
        MemLevel level = MemLevel::L1;
        bool tlbMiss = false;
        bool huge = false;  ///< Translated through the 2 MiB class.
    };

    friend class HostExecutor;  ///< Runs rounds and commits lane shards.

    void syncClocks();
    void maybeRunServices(Cycles now);
    void maybeRunServicesImpl(Cycles now);
    void recomputeNextServiceDue();

    /**
     * True when a WriteDisjoint region may actually go multi-threaded:
     * more than one host thread configured, no observers (batch record
     * delivery is inherently ordered), no forced scalar path, and no
     * fault injector (its RNG draws depend on global access order).
     * The invariant checker is allowed -- it audits inside rounds,
     * with every worker parked.
     */
    bool
    canRunParallelRegion() const
    {
        return hostThreads_ > 1 && threads.size() > 1 &&
               observers.empty() && !cfg.scalarPath &&
               faults_ == nullptr;
    }

    /** Execute one WriteDisjoint region on the host executor. */
    void runParallelRegion(
        std::uint64_t n, std::uint64_t grain,
        const std::function<void(ThreadContext &, std::uint64_t,
                                 std::uint64_t)> &body);

    /** @name Host-lane redirection
     * The access machinery funnels every mutation of the shared L3,
     * the tier timing devices and the level counts through these
     * helpers: on a host worker they resolve to the worker's private
     * lane, on the serial path to the master state. One thread-local
     * null check is the whole serial-path cost.
     */
    ///@{
    SetAssocCache &
    sharedL3Ref()
    {
        HostLane *lane = tls_host_lane;
        return lane != nullptr ? lane->l3 : l3;
    }

    std::uint64_t *
    levelCountsRef()
    {
        HostLane *lane = tls_host_lane;
        return lane != nullptr ? lane->levelCounts : level_counts;
    }

    std::uint64_t &
    accessCyclesRef()
    {
        HostLane *lane = tls_host_lane;
        return lane != nullptr ? lane->accessCycles : accessCycles_;
    }

    Cycles
    tierAccess(MemNode node, Cycles now, MemOp op, bool sequential)
    {
        HostLane *lane = tls_host_lane;
        if (lane != nullptr) {
            TierDevice &dev =
                node == MemNode::DRAM ? lane->dram : lane->nvm;
            return dev.access(now, op, sequential);
        }
        return phys.tier(node).access(now, op, sequential);
    }
    ///@}
    void accessPrologue(ThreadContext &t, bool assists);
    AccessOutcome accessCore(ThreadContext &t, Addr addr, MemOp op,
                             bool assists);

    /**
     * Process @p m uniform-op tail accesses of @p line after a head
     * that left the line resident in L1 and @p vpn in the TLB: the
     * one-shot quiet-LFB collapse plus the general bulk machinery
     * shared by accessRange and accessMany. Sets @p consumed to the
     * number of tails settled (short on an epoch break) and
     * @p prologue_next when a mid-run service already covered the next
     * element's issue-side prologue.
     *
     * @return the summed latency charged (excluding issue cycles).
     */
    Cycles tailRun(ThreadContext &t, Addr line, PageNum vpn, bool huge,
                   std::uint64_t head_epoch, std::uint64_t m,
                   bool is_store, std::uint64_t &consumed,
                   bool &prologue_next);
    void auditTranslationCaches(Cycles now) const;
    void fillOnMiss(ThreadContext &t, Addr line, bool dirty,
                    MemLevel from);
    void pushVictim(ThreadContext &t, SetAssocCache &lower,
                    const CacheEviction &victim);
    void writebackLine(ThreadContext &t, Addr line);
    Cycles memoryAccess(ThreadContext &t, Addr addr, MemNode node,
                        MemOp op, Cycles issue_time);

    SystemConfig cfg;
    PhysicalMemory phys;
    std::unique_ptr<Kernel> kern;
    std::unique_ptr<FaultInjector> faults_;
    std::unique_ptr<InvariantChecker> invariants_;
    std::unique_ptr<TieringPolicy> tiering;
    std::unique_ptr<Khugepaged> khugepaged_;
    SetAssocCache l3;
    std::vector<std::unique_ptr<ThreadContext>> threads;
    std::vector<AccessObserver *> observers;

    struct Service
    {
        Cycles next;
        Cycles period;
        std::function<void(Cycles)> fn;
    };
    std::vector<Service> services;

    // Periodic services.
    Cycles serviceClock = 0;
    Cycles nextKswapd;
    Cycles nextScan;
    Cycles nextTimeline;

    /**
     * Earliest pending service deadline (min of nextKswapd, nextScan,
     * the registered services and nextTimeline). The batched path only
     * enters maybeRunServices once a thread clock crosses it; the
     * skipped calls could at most have refreshed serviceClock, which is
     * unobservable outside the early-return guard.
     */
    Cycles nextServiceDue_ = 0;

    std::uint32_t activeThreads = 1;
    std::vector<TimelinePoint> points;

    /** Host worker count (resolved from config + env, clamped). */
    std::uint32_t hostThreads_ = 1;

    /** Lazily built at the first multi-threaded region. */
    std::unique_ptr<HostExecutor> hostExec_;

    /** Merged per-worker grain-latency shards. */
    LatencyHistogram hostLat_;

    /** Record staging for batch-at-a-time observer delivery. */
    std::vector<AccessRecord> recScratch_;

    /** Live tunable control plane (kernel + installed policy). */
    TunableRegistry registry_;

    /** Summed memory-system cycles of every completed access entry
     *  point (master shard; host lanes merge in at region end). */
    std::uint64_t accessCycles_ = 0;

    /** Live serving-latency histogram, owned by the serving driver. */
    const LatencyHistogram *servingProbe_ = nullptr;

    /** One MetricsView per policy epoch tick. */
    std::vector<MetricsView> metricsEpochs_;

    std::uint64_t level_counts[kNumMemLevels] = {};
};

}  // namespace memtier

#endif  // MEMTIER_SIM_ENGINE_H_

#include "sim/engine.h"

#include <cstdlib>

#include "base/logging.h"
#include "policy/policy_registry.h"
#include "sim/host_executor.h"

namespace memtier {

namespace {

/** MEMTIER_CHECK_INVARIANTS=ON/1 force-enables the checker. */
bool
invariantsForcedByEnv()
{
    const char *env = std::getenv("MEMTIER_CHECK_INVARIANTS");
    if (env == nullptr)
        return false;
    const std::string value(env);
    return value == "ON" || value == "on" || value == "1";
}

/** MEMTIER_SCALAR_PATH=ON/1 forces the reference scalar access path. */
bool
scalarForcedByEnv()
{
    const char *env = std::getenv("MEMTIER_SCALAR_PATH");
    if (env == nullptr)
        return false;
    const std::string value(env);
    return value == "ON" || value == "on" || value == "1";
}

/** Positive integer from @p name, or 0 when unset/unparsable. */
std::uint32_t
positiveIntFromEnv(const char *name)
{
    const char *env = std::getenv(name);
    if (env == nullptr || *env == '\0')
        return 0;
    char *end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || v <= 0)
        return 0;
    return static_cast<std::uint32_t>(v);
}

}  // namespace

Engine::Engine(const SystemConfig &config)
    : cfg(config),
      phys(config.dram, config.nvm),
      l3("L3", config.cache.l3Size, config.cache.l3Ways)
{
    if (thpForcedByEnv())
        cfg.thp.enabled = true;
    if (scalarForcedByEnv())
        cfg.scalarPath = true;
    KernelParams kp = cfg.kernel;
    kp.thp = cfg.thp;
    // MEMTIER_COPY_THREADS sizes the migration copy engine's worker
    // pool without recompiling, like the other MEMTIER_* overrides.
    if (const std::uint32_t cw = positiveIntFromEnv("MEMTIER_COPY_THREADS"))
        kp.copyThreads = cw;
    // The vanilla baseline has no demotion path; tiering kernels keep
    // it even when the AutoNUMA scanner is replaced by another policy.
    kp.demoteOnReclaim = cfg.tieringKernel;
    kern = std::make_unique<Kernel>(phys, kp);
    kern->setShootdownClient(this);

    // Kernel-owned live tunables: registered before the policy so the
    // control plane exists even for policy-less (vanilla) machines.
    registry_.add({"copy_threads", "migration copy-engine worker threads",
                   "kernel", 1.0, 64.0, /*integerValued=*/true, false,
                   [this] {
                       return static_cast<double>(
                           kern->copyEngine().params().workers);
                   },
                   [this](double v) {
                       kern->setCopyThreads(
                           static_cast<std::uint32_t>(v));
                   }});

    // A plan with no enabled point builds no injector at all, keeping
    // fault-free runs bit-identical (the kernel never even branches on
    // a plan, only on the injector pointer).
    if (cfg.faults.anyEnabled()) {
        faults_ = std::make_unique<FaultInjector>(cfg.faults);
        kern->setFaultInjector(faults_.get());
    }
    if (cfg.checkInvariants || invariantsForcedByEnv()) {
        invariants_ = std::make_unique<InvariantChecker>(
            *kern, cfg.invariantCheckPeriod);
        kern->setInvariantChecker(invariants_.get());
    }

    // Resolve the tiering policy through the registry. The legacy
    // autonumaEnabled flag maps onto the "autonuma" registry entry, so
    // both selection paths construct the identical policy.
    const std::string policy_name =
        !cfg.policyName.empty()
            ? cfg.policyName
            : (cfg.autonumaEnabled ? "autonuma" : "");
    if (!policy_name.empty()) {
        PolicyContext ctx{*kern, cfg.autonuma, cfg.policyTunables,
                          &registry_};
        std::string error;
        tiering =
            PolicyRegistry::instance().create(policy_name, ctx, &error);
        if (tiering == nullptr)
            fatal("%s", error.c_str());
        kern->setTieringPolicy(tiering.get());
    }

    // Runtime mutations (TunableRegistry::set) land here; the
    // construction-time setFromString path never fires the observer, so
    // installing after create() changes nothing for config-only runs.
    // A scan-period change re-arms the scan service: the next tick
    // lands one *new* period after the mutation instead of on the old
    // schedule.
    registry_.setApplyObserver(
        [this](const TunableRegistry::Tunable &t, Cycles now) {
            if (t.rearmScan && tiering && tiering->scanPeriod() > 0) {
                nextScan = now + tiering->scanPeriod();
                recomputeNextServiceDue();
            }
        });

    // Policy epoch service (the autotune observation plane). Policies
    // with epochPeriod() == 0 -- every non-tuning policy -- add no
    // service and keep the service cadence exactly as it was.
    if (tiering && tiering->epochPeriod() > 0) {
        addPeriodicService(tiering->epochPeriod(), [this](Cycles now) {
            const MetricsView mv = sampleMetrics(now);
            metricsEpochs_.push_back(mv);
            tiering->epochTick(now, mv);
        });
    }

    if (cfg.thp.enabled && cfg.thp.khugepagedPeriod > 0) {
        khugepaged_ = std::make_unique<Khugepaged>(*kern, cfg.thp);
        addPeriodicService(cfg.thp.khugepagedPeriod,
                           [this](Cycles now) { khugepaged_->tick(now); });
    }

    threads.reserve(cfg.numThreads);
    for (std::uint32_t i = 0; i < cfg.numThreads; ++i)
        threads.push_back(std::make_unique<ThreadContext>(i, cfg.cache));

    // Host execution width: config value, overridable by
    // MEMTIER_HOST_THREADS, clamped to the logical thread count (a
    // worker needs at least one logical thread to own). 1 keeps the
    // serial engine exactly as it was -- no executor is ever built.
    hostThreads_ = std::max<std::uint32_t>(1, cfg.hostThreads);
    if (const std::uint32_t hw = positiveIntFromEnv("MEMTIER_HOST_THREADS"))
        hostThreads_ = hw;
    hostThreads_ = std::min<std::uint32_t>(hostThreads_, cfg.numThreads);
    cfg.hostThreads = hostThreads_;

    nextKswapd = cfg.kswapdPeriod;
    nextScan = tiering && tiering->scanPeriod() > 0
                   ? tiering->scanPeriod()
                   : cfg.autonuma.scanPeriod;
    nextTimeline = cfg.timelinePeriod;
    recomputeNextServiceDue();

    // The checker audits the per-thread translation micro-caches
    // against the page table on every sweep: a valid entry carrying the
    // current epoch must agree with what the kernel would translate.
    if (invariants_) {
        invariants_->setAuditor(
            [this](Cycles now) { auditTranslationCaches(now); });
    }
}

Engine::~Engine() = default;

void
Engine::tlbShootdown(PageNum vpn)
{
    for (auto &t : threads)
        t->tlb.invalidate(vpn);
}

void
Engine::tlbShootdownHuge(PageNum base_vpn)
{
    for (auto &t : threads)
        t->tlb.invalidateHuge(base_vpn);
}

void
Engine::syncClocks()
{
    const Cycles m = globalTime();
    for (auto &t : threads)
        t->setClock(m);
}

void
Engine::barrier()
{
    // Synchronize to the slowest participant plus a small barrier cost.
    constexpr Cycles kBarrierCycles = 260;
    const Cycles m = globalTime() + kBarrierCycles;
    for (auto &t : threads)
        t->setClock(m);
}

Cycles
Engine::globalTime() const
{
    Cycles m = 0;
    for (const auto &t : threads)
        m = std::max(m, t->clock());
    return m;
}

void
Engine::maybeRunServices(Cycles now)
{
    // On a host worker the services cannot run in place -- they mutate
    // kernel state other workers are concurrently reading. Park until
    // the coordinator has run them in a round; round code itself calls
    // maybeRunServicesImpl directly, so this cannot recurse.
    if (hostExec_ && hostExec_->inWorker()) {
        hostExec_->parkForService(now);
        return;
    }
    maybeRunServicesImpl(now);
}

void
Engine::maybeRunServicesImpl(Cycles now)
{
    if (now <= serviceClock)
        return;
    serviceClock = now;
    while (nextKswapd <= serviceClock) {
        kern->kswapdTick(nextKswapd);
        nextKswapd += cfg.kswapdPeriod;
    }
    if (tiering && tiering->scanPeriod() > 0) {
        while (nextScan <= serviceClock) {
            tiering->scanTick(nextScan);
            nextScan += tiering->scanPeriod();
        }
    }
    for (Service &svc : services) {
        while (svc.next <= serviceClock) {
            svc.fn(svc.next);
            svc.next += svc.period;
        }
    }
    while (nextTimeline <= serviceClock) {
        TimelinePoint p;
        p.sec = cyclesToSeconds(nextTimeline);
        p.numa = kern->numastat();
        p.vm = kern->vmstat();
        p.cpuUtil = static_cast<double>(activeThreads) /
                    static_cast<double>(threads.size());
        points.push_back(p);
        nextTimeline += cfg.timelinePeriod;
    }
    recomputeNextServiceDue();
}

MetricsView
Engine::sampleMetrics(Cycles now) const
{
    MetricsView mv;
    mv.now = now;
    // Master shards only: host-worker lanes merge at region end, so a
    // snapshot taken from a service (every worker parked) is a pure
    // function of the deterministic merged state.
    for (int i = 0; i < kNumMemLevels; ++i)
        mv.accesses += level_counts[i];
    mv.accessCycles = accessCycles_;
    mv.vm = kern->vmstat();
    if (servingProbe_ != nullptr && servingProbe_->count() > 0) {
        mv.hasServing = true;
        mv.serveP50Cycles = servingProbe_->percentile(0.50);
        mv.serveP99Cycles = servingProbe_->percentile(0.99);
        mv.serveP999Cycles = servingProbe_->percentile(0.999);
    }
    return mv;
}

void
Engine::recomputeNextServiceDue()
{
    Cycles due = std::min(nextKswapd, nextTimeline);
    if (tiering && tiering->scanPeriod() > 0)
        due = std::min(due, nextScan);
    for (const Service &svc : services)
        due = std::min(due, svc.next);
    nextServiceDue_ = due;
}

void
Engine::writebackLine(ThreadContext &t, Addr line)
{
    // Asynchronous dirty writeback: occupies tier bandwidth but does not
    // stall the thread. Skip lines whose page has been unmapped.
    const PageMeta *meta = kern->pageMeta(pageOf(line << kLineShift));
    if (meta == nullptr || !meta->present)
        return;
    tierAccess(meta->node, t.clock(), MemOp::Store,
               /*sequential=*/false);
}

void
Engine::pushVictim(ThreadContext &t, SetAssocCache &lower,
                   const CacheEviction &victim)
{
    if (!victim.valid)
        return;
    if (lower.access(victim.line, victim.dirty))
        return;  // Already present; dirty bit merged by access().
    const CacheEviction next = lower.insert(victim.line, victim.dirty);
    SetAssocCache &shared_l3 = sharedL3Ref();
    if (&lower == &shared_l3) {
        if (next.valid && next.dirty)
            writebackLine(t, next.line);
        return;
    }
    // lower was L2; its victim falls to the shared L3.
    pushVictim(t, shared_l3, next);
}

void
Engine::fillOnMiss(ThreadContext &t, Addr line, bool dirty, MemLevel from)
{
    // Install the line at every level above the servicing one; victims
    // trickle downward and dirty L3 victims write back to memory.
    SetAssocCache &shared_l3 = sharedL3Ref();
    if (from == MemLevel::DRAM || from == MemLevel::NVM) {
        if (!shared_l3.contains(line)) {
            const CacheEviction ev = shared_l3.insert(line, false);
            if (ev.valid && ev.dirty)
                writebackLine(t, ev.line);
        }
    }
    if (from != MemLevel::L2 && !t.l2.contains(line)) {
        const CacheEviction ev = t.l2.insert(line, false);
        pushVictim(t, shared_l3, ev);
    }
    const CacheEviction ev = t.l1.insert(line, dirty);
    pushVictim(t, t.l2, ev);
}

Cycles
Engine::memoryAccess(ThreadContext &t, Addr addr, MemNode node, MemOp op,
                     Cycles issue_time)
{
    // Stream detection against the previous memory-serviced address.
    const bool sequential =
        addr >= t.lastMemAddr &&
        addr - t.lastMemAddr <= phys.tier(node).params().internalGranularity;
    t.lastMemAddr = addr;

    // Stores that miss all caches fetch the line for ownership (RFO) at
    // load latency; the dirty data leaves later via writeback.
    Cycles lat = tierAccess(node, issue_time, MemOp::Load, sequential);
    if (faults_ && node == MemNode::NVM) {
        // Injected NVM latency spike (media congestion / thermal jitter).
        lat += faults_->latencyPenalty(FaultPoint::NvmLatency, issue_time);
    }

    if (cfg.nextLinePrefetch && sequential) {
        // Next-line prefetch on a detected stream: fetch line+1 in the
        // shadow of this miss (no thread stall, but real bandwidth).
        const Addr next_addr = (lineOf(addr) + 1) << kLineShift;
        if (pageOf(next_addr) == pageOf(addr)) {
            const Addr next_line = lineOf(next_addr);
            if (!t.l1.contains(next_line) && !t.l2.contains(next_line) &&
                !sharedL3Ref().contains(next_line)) {
                const Cycles pf_lat = tierAccess(
                    node, issue_time, MemOp::Load, /*sequential=*/true);
                fillOnMiss(t, next_line, false, MemLevel::DRAM);
                t.lfb.add(next_line, issue_time + pf_lat);
            }
        }
    }
    (void)op;
    return lat;
}

void
Engine::accessPrologue(ThreadContext &t, bool assists)
{
    t.advance(cfg.issueCycles);
    // The batched path only enters maybeRunServices when a deadline is
    // actually due; a skipped call could at most have refreshed
    // serviceClock, which nothing else observes. The forced scalar path
    // keeps the unconditional legacy call.
    if (!assists || t.clock() >= nextServiceDue_)
        maybeRunServices(t.clock());
}

Engine::AccessOutcome
Engine::accessCore(ThreadContext &t, Addr addr, MemOp op, bool assists)
{
    const PageNum vpn = pageOf(addr);
    const Addr line = lineOf(addr);
    const CacheParams &cp = cfg.cache;

    Cycles cost = 0;
    bool tlb_miss = false;
    bool sigbus = false;
    MemNode node = MemNode::DRAM;
    bool node_known = false;

    // PMD-mapped ranges translate through the 2 MiB TLB entry class;
    // with THP off the branch reduces to the legacy 4 KiB lookup. The
    // micro-cache elides the huge-map probe on the batched path: an
    // entry tagged with the current epoch is guaranteed to agree with
    // the page table, since every remap bumps the epoch. With THP off
    // the consult is deferred to the full-miss branch (its only other
    // use) -- safe because no epoch bump can intervene: touchPage only
    // runs on the TLB-miss path, which resolves the node by itself.
    const bool thp_on = cfg.thp.enabled;
    std::uint64_t epoch0 = 0;
    const TranslationMicroCache::Entry *xe = nullptr;
    bool huge = false;
    if (thp_on) {
        epoch0 = kern->translationEpoch();
        xe = assists ? t.xlat.lookup(vpn, epoch0) : nullptr;
        huge = xe != nullptr ? xe->huge : kern->isHugeMapped(vpn);
    }
    switch (huge ? t.tlb.lookupHuge(hugeBaseOf(vpn)) : t.tlb.lookup(vpn)) {
      case TlbOutcome::L1Hit:
        break;
      case TlbOutcome::StlbHit:
        cost += t.tlb.stlbHitCycles();
        break;
      case TlbOutcome::Miss: {
        tlb_miss = true;
        // Page walk: a few cached steps plus some page-table references
        // that go to DRAM (page tables live on the DRAM node). A walk
        // that ends at a PMD entry is one level shorter.
        cost += cp.pageWalkBaseCycles;
        const unsigned mem_refs =
            huge ? cp.pageWalkMemRefsHuge : cp.pageWalkMemRefs;
        for (unsigned i = 0; i < mem_refs; ++i) {
            cost += tierAccess(MemNode::DRAM, t.clock() + cost,
                               MemOp::Load, /*sequential=*/false);
        }
        TouchResult tr;
        HostLane *lane = tls_host_lane;
        if (lane == nullptr) {
            tr = kern->touchPage(vpn, t.clock() + cost, op);
        } else if (kern->fastTouch(vpn, &tr)) {
            // Present page, no pending fault: resolved worker-locally.
            // touchPage would only have stamped recency; defer that to
            // the next round so the page table stays frozen.
            lane->recency.emplace_back(vpn, t.clock() + cost);
            ++lane->vm.hostFastTouches;
        } else {
            // Fault or hint fault: a kernel mutation. Park until the
            // coordinator has run the touch inside a round.
            const Cycles touch_now = t.clock() + cost;
            hostExec_->requestRound(touch_now, [&] {
                tr = kern->touchPage(vpn, touch_now, op);
            });
        }
        cost += tr.cost;
        node = tr.node;
        node_known = true;
        sigbus = tr.sigbus;
        if (tr.pageFault)
            ++t.pageFaults;
        if (tr.hintFault)
            ++t.hintFaults;
        if (cfg.thp.enabled && !huge && kern->isHugeMapped(vpn)) {
            // The fault PMD-mapped the range under a 4 KiB lookup:
            // replace the stale 4 KiB fill with the huge translation.
            t.tlb.invalidate(vpn);
            t.tlb.insertHuge(hugeBaseOf(vpn));
            huge = true;
        }
        break;
      }
    }

    MemLevel level;
    if (t.l1.access(line, op == MemOp::Store)) {
        // An L1 hit within the fill window of an outstanding miss is
        // attributed to the line-fill buffer, as PEBS does. When every
        // recorded fill is stale past the residency window, the batched
        // path skips both buffer scans outright.
        const Cycles ref = t.clock() + cost;
        if (assists && t.lfb.quietAt(ref, cp.lfbResidencyCycles)) {
            level = MemLevel::L1;
            cost += cp.l1Latency;
        } else if (auto rem = t.lfb.inFlight(line, ref)) {
            level = MemLevel::LFB;
            cost += std::min<Cycles>(*rem, cp.l3Latency);
            t.lfb.countHit();
        } else if (t.lfb.recentlyFilled(line, ref,
                                        cp.lfbResidencyCycles)) {
            level = MemLevel::LFB;
            cost += cp.l1Latency;
            t.lfb.countHit();
        } else {
            level = MemLevel::L1;
            cost += cp.l1Latency;
        }
    } else if (t.l2.access(line, false)) {
        level = MemLevel::L2;
        cost += cp.l2Latency;
        fillOnMiss(t, line, op == MemOp::Store, MemLevel::L2);
    } else if (sharedL3Ref().access(line, false)) {
        level = MemLevel::L3;
        cost += cp.l3Latency;
        fillOnMiss(t, line, op == MemOp::Store, MemLevel::L3);
    } else {
        if (!node_known) {
            if (assists && !thp_on) {
                epoch0 = kern->translationEpoch();
                xe = t.xlat.lookup(vpn, epoch0);
            }
            node = xe != nullptr ? xe->node : kern->nodeOf(vpn);
            node_known = true;
        }
        cost += cp.l3Latency;
        cost += memoryAccess(t, addr, node, op, t.clock() + cost);
        level = node == MemNode::DRAM ? MemLevel::DRAM : MemLevel::NVM;
        fillOnMiss(t, line, op == MemOp::Store,
                   node == MemNode::DRAM ? MemLevel::DRAM : MemLevel::NVM);
        t.lfb.add(line, t.clock() + cost);
    }

    if (assists && node_known && !sigbus) {
        // Cache the resolved translation (never on SIGBUS: the poison
        // handler destroyed the mapping, so there is nothing valid to
        // cache and the audit would rightly flag the entry). touchPage
        // may have remapped (epoch bump); its returned node is
        // post-mutation, but the hugeness read at lookup time could be
        // stale, so refresh it when the epoch moved under the element.
        const std::uint64_t epoch = kern->translationEpoch();
        const bool huge_now =
            thp_on ? (epoch == epoch0 ? huge : kern->isHugeMapped(vpn))
                   : false;
        t.xlat.insert(vpn, epoch, node, huge_now);
    }

    t.advance(cost);
    ++levelCountsRef()[static_cast<int>(level)];
    if (op == MemOp::Load)
        ++t.loads;
    else
        ++t.stores;

    AccessOutcome out;
    out.cost = cost;
    out.level = level;
    out.tlbMiss = tlb_miss;
    out.huge = huge;
    return out;
}

Cycles
Engine::accessBatch(ThreadContext &t, std::span<const AccessRequest> reqs)
{
    const bool record = !observers.empty();
    if (record)
        recScratch_.clear();
    const bool assists = !cfg.scalarPath;
    const CacheParams &cp = cfg.cache;
    Cycles total = 0;

    std::size_t i = 0;
    bool prologue_done = false;
    while (i < reqs.size()) {
        const Addr head_addr = reqs[i].addr;
        const Addr line = lineOf(head_addr);

        // Coalesce the same-line run starting here. The forced scalar
        // path keeps runs at one element, so every element takes the
        // full head machinery below.
        std::size_t run_end = i + 1;
        if (assists) {
            while (run_end < reqs.size() &&
                   lineOf(reqs[run_end].addr) == line)
                ++run_end;
        }

        // Head element: full scalar-equivalent processing. Runs of one
        // (every element on the forced scalar path, and the random
        // elements of gathers and scatters on the batched path) skip
        // the epoch bookkeeping -- it only guards tail processing.
        if (!prologue_done)
            accessPrologue(t, assists);
        prologue_done = false;
        const bool has_tails = run_end != i + 1;
        const std::uint64_t head_epoch =
            has_tails ? kern->translationEpoch() : 0;
        const AccessOutcome head =
            accessCore(t, head_addr, reqs[i].op, assists);
        total += head.cost;
        if (record) {
            AccessRecord rec;
            rec.tid = t.id();
            rec.vaddr = head_addr;
            rec.op = reqs[i].op;
            rec.level = head.level;
            rec.latency = head.cost + cfg.issueCycles;
            rec.tlbMiss = head.tlbMiss;
            rec.time = t.clock();
            recScratch_.push_back(rec);
        }
        ++i;
        if (!has_tails)
            continue;
        if (kern->translationEpoch() != head_epoch) {
            // The head's touchPage remapped something -- possibly the
            // very translation it just filled (hint-fault promotion).
            // Reprocess the rest of the run as fresh heads.
            continue;
        }

        // Tail elements: the head left the line resident and most
        // recently used in L1 and the translation resident in the TLB,
        // and no shootdown intervened (the epoch is unchanged), so each
        // remaining same-line access is a guaranteed TLB-L1 + cache-L1
        // hit. Per element only the LFB attribution can vary; the TLB,
        // L1 and LFB hit-counter updates are settled in bulk after the
        // run with the batch-accounting entry points.
        const PageNum vpn = pageOf(head_addr);
        const Cycles run_delta = cfg.issueCycles + cp.l1Latency;

        // Hot one-shot case: the LFB is quiet (every recorded fill's
        // residency window closed before even the first tail's
        // post-issue clock, so each tail is a plain L1 hit) and the
        // whole run finishes before the next service deadline. The run
        // then collapses to one clock jump plus bulk accounting.
        if (!record &&
            t.lfb.quietAt(t.clock() + cfg.issueCycles,
                          cp.lfbResidencyCycles) &&
            t.clock() + (run_end - i) * run_delta < nextServiceDue_) {
            const std::uint64_t m = run_end - i;
            std::uint64_t st = 0;
            for (std::size_t k = i; k < run_end; ++k)
                if (reqs[k].op == MemOp::Store)
                    ++st;
            t.advance(m * run_delta);
            total += m * cp.l1Latency;
            if (head.huge)
                t.tlb.repeatHitsHuge(hugeBaseOf(vpn), m);
            else
                t.tlb.repeatHits(vpn, m);
            t.l1.accessRepeats(line, m, st > 0);
            levelCountsRef()[static_cast<int>(MemLevel::L1)] += m;
            t.loads += m - st;
            t.stores += st;
            i = run_end;
            continue;
        }
        std::uint64_t repeats = 0;
        std::uint64_t lfb_hits = 0;
        bool any_write = false;
        const auto flushRun = [&]() {
            if (repeats == 0)
                return;
            if (head.huge)
                t.tlb.repeatHitsHuge(hugeBaseOf(vpn), repeats);
            else
                t.tlb.repeatHits(vpn, repeats);
            t.l1.accessRepeats(line, repeats, any_write);
            if (lfb_hits > 0)
                t.lfb.countHits(lfb_hits);
            repeats = 0;
            lfb_hits = 0;
            any_write = false;
        };
        // The LFB cannot change during the tails (only head misses
        // add() entries), so one scan per run captures every entry that
        // could ever attribute a tail to the LFB; per-tail attribution
        // is then arithmetic over those ready times, bit-identical to
        // the per-element quietAt/inFlight/recentlyFilled cascade.
        Cycles match_ready[LineFillBuffer::kEntries];
        const std::size_t nmatch = t.lfb.matchesInto(line, match_ready);
        Cycles match_max_ready = 0;
        Cycles match_end = 0;
        for (std::size_t k = 0; k < nmatch; ++k) {
            match_max_ready =
                std::max<Cycles>(match_max_ready, match_ready[k]);
            match_end = std::max<Cycles>(match_end,
                                         match_ready[k] +
                                             cp.lfbResidencyCycles);
        }
        const Cycles delta = cfg.issueCycles + cp.l1Latency;
        while (i < run_end) {
            // Constant-cost phases: once this tail's post-issue clock
            // reaches every matching entry's ready time, no fill is in
            // flight for it or any later tail, so each remaining
            // element costs exactly l1Latency; attribution is LFB while
            // the residency window is open (post-issue clock below
            // match_end -- monotone once every ready time has passed)
            // and L1 after. Collapse the largest prefix whose
            // per-element service check cannot fire into one bulk step;
            // a prefix boundary falls back to the per-element step
            // below, which runs the service and re-enters here.
            if (!record && delta > 0 &&
                (nmatch == 0 ||
                 t.clock() + cfg.issueCycles >= match_max_ready)) {
                std::uint64_t safe = 0;
                if (t.clock() + cfg.issueCycles < nextServiceDue_) {
                    const Cycles room =
                        nextServiceDue_ - t.clock() - cfg.issueCycles;
                    safe = std::min<std::uint64_t>(
                        run_end - i, (room - 1) / delta + 1);
                }
                if (safe > 0) {
                    // Tails still inside the residency window are LFB
                    // hits; the rest are plain L1 hits. Same cost.
                    std::uint64_t lfb_n = 0;
                    const Cycles base = t.clock() + cfg.issueCycles;
                    if (nmatch > 0 && base < match_end)
                        lfb_n = std::min<std::uint64_t>(
                            safe, (match_end - base - 1) / delta + 1);
                    std::uint64_t st = 0;
                    for (std::size_t k = i; k < i + safe; ++k)
                        if (reqs[k].op == MemOp::Store)
                            ++st;
                    t.advance(safe * delta);
                    total += safe * cp.l1Latency;
                    repeats += safe;
                    lfb_hits += lfb_n;
                    any_write = any_write || st > 0;
                    levelCountsRef()[static_cast<int>(MemLevel::LFB)] +=
                        lfb_n;
                    levelCountsRef()[static_cast<int>(MemLevel::L1)] +=
                        safe - lfb_n;
                    t.loads += safe - st;
                    t.stores += st;
                    i += safe;
                    continue;
                }
            }
            const MemOp op = reqs[i].op;
            t.advance(cfg.issueCycles);
            const Cycles now = t.clock();
            if (now >= nextServiceDue_) {
                // Settle the accumulated accounting first: a service
                // may shoot down the very entries it covers, and the
                // scalar order puts those hits before the service.
                flushRun();
                maybeRunServices(now);
                if (kern->translationEpoch() != head_epoch) {
                    // A service remapped pages; this element's issue
                    // and service work is done, so the outer loop must
                    // not repeat the prologue for it.
                    prologue_done = true;
                    break;
                }
            }
            MemLevel level;
            Cycles cost;
            Cycles rem = 0;
            bool in_flight = false;
            bool recent = false;
            for (std::size_t k = 0; k < nmatch; ++k) {
                if (now < match_ready[k]) {
                    if (!in_flight) {
                        in_flight = true;
                        rem = match_ready[k] - now;
                    }
                } else if (now <
                           match_ready[k] + cp.lfbResidencyCycles) {
                    recent = true;
                }
            }
            if (in_flight) {
                level = MemLevel::LFB;
                cost = std::min<Cycles>(rem, cp.l3Latency);
                ++lfb_hits;
            } else if (recent) {
                level = MemLevel::LFB;
                cost = cp.l1Latency;
                ++lfb_hits;
            } else {
                level = MemLevel::L1;
                cost = cp.l1Latency;
            }
            t.advance(cost);
            total += cost;
            ++repeats;
            any_write = any_write || op == MemOp::Store;
            ++levelCountsRef()[static_cast<int>(level)];
            if (op == MemOp::Load)
                ++t.loads;
            else
                ++t.stores;
            if (record) {
                AccessRecord rec;
                rec.tid = t.id();
                rec.vaddr = reqs[i].addr;
                rec.op = op;
                rec.level = level;
                rec.latency = cost + cfg.issueCycles;
                rec.tlbMiss = false;
                rec.time = t.clock();
                recScratch_.push_back(rec);
            }
            ++i;
        }
        flushRun();
    }

    if (record) {
        for (AccessObserver *obs : observers)
            obs->onBatch(recScratch_.data(), recScratch_.size());
    }
    accessCyclesRef() += total;
    return total;
}

Cycles
Engine::accessRange(ThreadContext &t, Addr base, std::uint64_t count,
                    std::uint32_t stride, MemOp op)
{
    MEMTIER_ASSERT(stride > 0, "accessRange needs a positive stride");
    if (!observers.empty()) {
        // Observer records are staged per element; materialize chunks
        // and reuse the batch path so staging and onBatch delivery live
        // in one place. Chunk size matches the runtime's bulk-op chunk,
        // keeping batch boundaries (and thus observer batch framing)
        // identical to a materialized issue of the same range.
        constexpr std::uint64_t kChunk = 4096;
        Cycles total = 0;
        auto &reqs = t.reqScratch;
        for (std::uint64_t c = 0; c < count;) {
            const std::uint64_t stop =
                std::min<std::uint64_t>(count, c + kChunk);
            reqs.clear();
            reqs.reserve(stop - c);
            for (std::uint64_t k = c; k < stop; ++k)
                reqs.push_back({base + k * stride, op});
            total += accessBatch(t, std::span<const AccessRequest>(reqs));
            c = stop;
        }
        return total;
    }

    Cycles total = 0;
    if (cfg.scalarPath) {
        // Reference semantics: the legacy element-at-a-time loop.
        for (std::uint64_t k = 0; k < count; ++k) {
            accessPrologue(t, false);
            total += accessCore(t, base + k * stride, op, false).cost;
        }
        accessCyclesRef() += total;
        return total;
    }

    const bool is_store = op == MemOp::Store;
    std::uint64_t k = 0;
    bool prologue_done = false;
    while (k < count) {
        const Addr addr = base + k * stride;
        const Addr line = lineOf(addr);
        // Elements share the head's line while their address stays
        // below the next line boundary; the run length follows from the
        // stride, no per-element scan needed.
        const Addr line_end = (line + 1) << kLineShift;
        const std::uint64_t run = std::min<std::uint64_t>(
            count - k, (line_end - addr + stride - 1) / stride);

        if (!prologue_done)
            accessPrologue(t, true);
        prologue_done = false;
        const std::uint64_t head_epoch =
            run > 1 ? kern->translationEpoch() : 0;
        const AccessOutcome head = accessCore(t, addr, op, true);
        total += head.cost;
        ++k;
        if (run == 1)
            continue;
        if (kern->translationEpoch() != head_epoch) {
            // The head's touchPage remapped something; reprocess the
            // rest of the run as fresh heads.
            continue;
        }

        std::uint64_t consumed = 0;
        total += tailRun(t, line, pageOf(addr), head.huge, head_epoch,
                         run - 1, is_store, consumed, prologue_done);
        k += consumed;
    }
    accessCyclesRef() += total;
    return total;
}

Cycles
Engine::tailRun(ThreadContext &t, Addr line, PageNum vpn, bool huge,
                std::uint64_t head_epoch, std::uint64_t m, bool is_store,
                std::uint64_t &consumed, bool &prologue_next)
{
    const CacheParams &cp = cfg.cache;
    const Cycles delta = cfg.issueCycles + cp.l1Latency;
    Cycles total = 0;
    consumed = 0;
    prologue_next = false;

    // Hot one-shot case, as in accessBatch: quiet LFB and the whole
    // run ahead of the next service deadline collapse the tails to
    // one clock jump plus bulk accounting.
    if (delta > 0 &&
        t.lfb.quietAt(t.clock() + cfg.issueCycles,
                      cp.lfbResidencyCycles) &&
        t.clock() + m * delta < nextServiceDue_) {
        t.advance(m * delta);
        total += m * cp.l1Latency;
        if (huge)
            t.tlb.repeatHitsHuge(hugeBaseOf(vpn), m);
        else
            t.tlb.repeatHits(vpn, m);
        t.l1.accessRepeats(line, m, is_store);
        levelCountsRef()[static_cast<int>(MemLevel::L1)] += m;
        if (is_store)
            t.stores += m;
        else
            t.loads += m;
        consumed = m;
        return total;
    }

    // General tail machinery, mirroring accessBatch for a uniform
    // op: one LFB scan per run, constant-cost phases in bulk,
    // per-element steps only across service deadlines or while a
    // fill is genuinely in flight.
    std::uint64_t repeats = 0;
    std::uint64_t lfb_hits = 0;
    const auto flushRun = [&]() {
        if (repeats == 0)
            return;
        if (huge)
            t.tlb.repeatHitsHuge(hugeBaseOf(vpn), repeats);
        else
            t.tlb.repeatHits(vpn, repeats);
        t.l1.accessRepeats(line, repeats, is_store);
        if (lfb_hits > 0)
            t.lfb.countHits(lfb_hits);
        repeats = 0;
        lfb_hits = 0;
    };
    Cycles match_ready[LineFillBuffer::kEntries];
    const std::size_t nmatch = t.lfb.matchesInto(line, match_ready);
    Cycles match_max_ready = 0;
    Cycles match_end = 0;
    for (std::size_t j = 0; j < nmatch; ++j) {
        match_max_ready =
            std::max<Cycles>(match_max_ready, match_ready[j]);
        match_end = std::max<Cycles>(match_end,
                                     match_ready[j] +
                                         cp.lfbResidencyCycles);
    }
    while (consumed < m) {
        if (delta > 0 &&
            (nmatch == 0 ||
             t.clock() + cfg.issueCycles >= match_max_ready)) {
            std::uint64_t safe = 0;
            if (t.clock() + cfg.issueCycles < nextServiceDue_) {
                const Cycles room =
                    nextServiceDue_ - t.clock() - cfg.issueCycles;
                safe = std::min<std::uint64_t>(m - consumed,
                                               (room - 1) / delta + 1);
            }
            if (safe > 0) {
                std::uint64_t lfb_n = 0;
                const Cycles at = t.clock() + cfg.issueCycles;
                if (nmatch > 0 && at < match_end)
                    lfb_n = std::min<std::uint64_t>(
                        safe, (match_end - at - 1) / delta + 1);
                t.advance(safe * delta);
                total += safe * cp.l1Latency;
                repeats += safe;
                lfb_hits += lfb_n;
                levelCountsRef()[static_cast<int>(MemLevel::LFB)] += lfb_n;
                levelCountsRef()[static_cast<int>(MemLevel::L1)] +=
                    safe - lfb_n;
                if (is_store)
                    t.stores += safe;
                else
                    t.loads += safe;
                consumed += safe;
                continue;
            }
        }
        t.advance(cfg.issueCycles);
        const Cycles now = t.clock();
        if (now >= nextServiceDue_) {
            flushRun();
            maybeRunServices(now);
            if (kern->translationEpoch() != head_epoch) {
                prologue_next = true;
                break;
            }
        }
        MemLevel level;
        Cycles cost;
        Cycles rem = 0;
        bool in_flight = false;
        bool recent = false;
        for (std::size_t j = 0; j < nmatch; ++j) {
            if (now < match_ready[j]) {
                if (!in_flight) {
                    in_flight = true;
                    rem = match_ready[j] - now;
                }
            } else if (now < match_ready[j] + cp.lfbResidencyCycles) {
                recent = true;
            }
        }
        if (in_flight) {
            level = MemLevel::LFB;
            cost = std::min<Cycles>(rem, cp.l3Latency);
            ++lfb_hits;
        } else if (recent) {
            level = MemLevel::LFB;
            cost = cp.l1Latency;
            ++lfb_hits;
        } else {
            level = MemLevel::L1;
            cost = cp.l1Latency;
        }
        t.advance(cost);
        total += cost;
        ++repeats;
        ++levelCountsRef()[static_cast<int>(level)];
        if (is_store)
            ++t.stores;
        else
            ++t.loads;
        ++consumed;
    }
    flushRun();
    return total;
}

Cycles
Engine::accessMany(ThreadContext &t, std::span<const Addr> addrs, MemOp op)
{
    if (!observers.empty()) {
        // Materialize requests and reuse the batch path so staging and
        // onBatch delivery live in one place; chunking matches the
        // runtime's bulk-op chunk so observer batch framing equals a
        // materialized issue of the same addresses.
        constexpr std::size_t kChunk = 4096;
        Cycles total = 0;
        auto &reqs = t.reqScratch;
        for (std::size_t c = 0; c < addrs.size();) {
            const std::size_t stop =
                std::min(addrs.size(), c + kChunk);
            reqs.clear();
            reqs.reserve(stop - c);
            for (std::size_t k = c; k < stop; ++k)
                reqs.push_back({addrs[k], op});
            total += accessBatch(t, std::span<const AccessRequest>(reqs));
            c = stop;
        }
        return total;
    }

    Cycles total = 0;
    if (cfg.scalarPath) {
        // Reference semantics: the legacy element-at-a-time loop.
        for (const Addr addr : addrs) {
            accessPrologue(t, false);
            total += accessCore(t, addr, op, false).cost;
        }
        accessCyclesRef() += total;
        return total;
    }

    const bool is_store = op == MemOp::Store;
    std::size_t i = 0;
    bool prologue_done = false;
    while (i < addrs.size()) {
        const Addr addr = addrs[i];
        const Addr line = lineOf(addr);
        std::size_t run_end = i + 1;
        while (run_end < addrs.size() && lineOf(addrs[run_end]) == line)
            ++run_end;

        if (!prologue_done)
            accessPrologue(t, true);
        prologue_done = false;
        const bool has_tails = run_end != i + 1;
        const std::uint64_t head_epoch =
            has_tails ? kern->translationEpoch() : 0;
        const AccessOutcome head = accessCore(t, addr, op, true);
        total += head.cost;
        ++i;
        if (!has_tails)
            continue;
        if (kern->translationEpoch() != head_epoch) {
            // The head's touchPage remapped something; reprocess the
            // rest of the run as fresh heads.
            continue;
        }

        std::uint64_t consumed = 0;
        total += tailRun(t, line, pageOf(addr), head.huge, head_epoch,
                         run_end - i, is_store, consumed, prologue_done);
        i += consumed;
    }
    accessCyclesRef() += total;
    return total;
}

void
Engine::auditTranslationCaches(Cycles now) const
{
    const std::uint64_t epoch = kern->translationEpoch();
    for (const auto &t : threads) {
        for (const auto &e : t->xlat.entries()) {
            if (!e.valid || e.epoch != epoch)
                continue;  // Stale entries are rejected on lookup.
            const Translation tr = kern->translate(e.vpn);
            if (!tr.present || tr.node != e.node || tr.huge != e.huge) {
                fatal("translation micro-cache divergence at cycle %llu: "
                      "thread %u vpn %llu cached {node=%d huge=%d} but "
                      "page table says {present=%d node=%d huge=%d}",
                      static_cast<unsigned long long>(now), t->id(),
                      static_cast<unsigned long long>(e.vpn),
                      static_cast<int>(e.node), e.huge ? 1 : 0,
                      tr.present ? 1 : 0, static_cast<int>(tr.node),
                      tr.huge ? 1 : 0);
            }
        }
    }
}

void
Engine::runParallelRegion(
    std::uint64_t n, std::uint64_t grain,
    const std::function<void(ThreadContext &, std::uint64_t,
                             std::uint64_t)> &body)
{
    syncClocks();

    // Identical static block partition to the serial template; only
    // the interleaving between partitions changes.
    std::vector<HostRange> ranges(threads.size());
    const std::uint64_t per = n / threads.size();
    const std::uint64_t rem = n % threads.size();
    std::uint64_t cursor = 0;
    std::size_t busy = 0;
    for (std::size_t t = 0; t < threads.size(); ++t) {
        const std::uint64_t len = per + (t < rem ? 1 : 0);
        ranges[t] = {cursor, cursor + len};
        cursor += len;
        if (len > 0)
            ++busy;
    }
    activeThreads = static_cast<std::uint32_t>(busy);

    if (!hostExec_)
        hostExec_ = std::make_unique<HostExecutor>(*this, hostThreads_);
    hostExec_->run(std::move(ranges), grain, body);

    barrier();
    activeThreads = 1;
}

Addr
Engine::sysMmap(ThreadContext &t, std::uint64_t bytes, ObjectId object,
                const std::string &site)
{
    t.advance(cfg.syscallCycles);
    if (hostExec_ && hostExec_->inWorker()) {
        Addr base = 0;
        hostExec_->requestRound(t.clock(), [&] {
            base = kern->mmap(t.clock(), bytes, object, site);
        });
        return base;
    }
    maybeRunServices(t.clock());
    return kern->mmap(t.clock(), bytes, object, site);
}

void
Engine::sysMunmap(ThreadContext &t, Addr start)
{
    t.advance(cfg.syscallCycles);
    if (hostExec_ && hostExec_->inWorker()) {
        hostExec_->requestRound(
            t.clock(), [&] { kern->munmap(t.clock(), start); });
        return;
    }
    maybeRunServices(t.clock());
    kern->munmap(t.clock(), start);
}

void
Engine::sysMbind(ThreadContext &t, Addr start, const MemPolicy &policy)
{
    t.advance(cfg.syscallCycles);
    if (hostExec_ && hostExec_->inWorker()) {
        hostExec_->requestRound(
            t.clock(), [&] { kern->mbind(start, policy); });
        return;
    }
    kern->mbind(start, policy);
}

Addr
Engine::registerFile(std::uint64_t bytes, const std::string &name)
{
    return kern->registerFile(bytes, name);
}

void
Engine::fileReadPage(ThreadContext &t, PageNum vpn)
{
    if (hostExec_ && hostExec_->inWorker()) {
        Cycles cost = 0;
        hostExec_->requestRound(t.clock(), [&] {
            cost = kern->ensureCached(vpn, t.clock());
        });
        t.advance(cost);
        return;
    }
    const Cycles cost = kern->ensureCached(vpn, t.clock());
    t.advance(cost);
    maybeRunServices(t.clock());
}

}  // namespace memtier

#include "sim/engine.h"

#include <cstdlib>

#include "base/logging.h"
#include "policy/policy_registry.h"

namespace memtier {

namespace {

/** MEMTIER_CHECK_INVARIANTS=ON/1 force-enables the checker. */
bool
invariantsForcedByEnv()
{
    const char *env = std::getenv("MEMTIER_CHECK_INVARIANTS");
    if (env == nullptr)
        return false;
    const std::string value(env);
    return value == "ON" || value == "on" || value == "1";
}

}  // namespace

Engine::Engine(const SystemConfig &config)
    : cfg(config),
      phys(config.dram, config.nvm),
      l3("L3", config.cache.l3Size, config.cache.l3Ways)
{
    if (thpForcedByEnv())
        cfg.thp.enabled = true;
    KernelParams kp = cfg.kernel;
    kp.thp = cfg.thp;
    // The vanilla baseline has no demotion path; tiering kernels keep
    // it even when the AutoNUMA scanner is replaced by another policy.
    kp.demoteOnReclaim = cfg.tieringKernel;
    kern = std::make_unique<Kernel>(phys, kp);
    kern->setShootdownClient(this);

    // A plan with no enabled point builds no injector at all, keeping
    // fault-free runs bit-identical (the kernel never even branches on
    // a plan, only on the injector pointer).
    if (cfg.faults.anyEnabled()) {
        faults_ = std::make_unique<FaultInjector>(cfg.faults);
        kern->setFaultInjector(faults_.get());
    }
    if (cfg.checkInvariants || invariantsForcedByEnv()) {
        invariants_ = std::make_unique<InvariantChecker>(
            *kern, cfg.invariantCheckPeriod);
        kern->setInvariantChecker(invariants_.get());
    }

    // Resolve the tiering policy through the registry. The legacy
    // autonumaEnabled flag maps onto the "autonuma" registry entry, so
    // both selection paths construct the identical policy.
    const std::string policy_name =
        !cfg.policyName.empty()
            ? cfg.policyName
            : (cfg.autonumaEnabled ? "autonuma" : "");
    if (!policy_name.empty()) {
        PolicyContext ctx{*kern, cfg.autonuma, cfg.policyTunables};
        std::string error;
        tiering =
            PolicyRegistry::instance().create(policy_name, ctx, &error);
        if (tiering == nullptr)
            fatal("%s", error.c_str());
        kern->setTieringPolicy(tiering.get());
    }

    if (cfg.thp.enabled && cfg.thp.khugepagedPeriod > 0) {
        khugepaged_ = std::make_unique<Khugepaged>(*kern, cfg.thp);
        addPeriodicService(cfg.thp.khugepagedPeriod,
                           [this](Cycles now) { khugepaged_->tick(now); });
    }

    threads.reserve(cfg.numThreads);
    for (std::uint32_t i = 0; i < cfg.numThreads; ++i)
        threads.push_back(std::make_unique<ThreadContext>(i, cfg.cache));

    nextKswapd = cfg.kswapdPeriod;
    nextScan = tiering && tiering->scanPeriod() > 0
                   ? tiering->scanPeriod()
                   : cfg.autonuma.scanPeriod;
    nextTimeline = cfg.timelinePeriod;
}

Engine::~Engine() = default;

void
Engine::tlbShootdown(PageNum vpn)
{
    for (auto &t : threads)
        t->tlb.invalidate(vpn);
}

void
Engine::tlbShootdownHuge(PageNum base_vpn)
{
    for (auto &t : threads)
        t->tlb.invalidateHuge(base_vpn);
}

void
Engine::syncClocks()
{
    const Cycles m = globalTime();
    for (auto &t : threads)
        t->setClock(m);
}

void
Engine::barrier()
{
    // Synchronize to the slowest participant plus a small barrier cost.
    constexpr Cycles kBarrierCycles = 260;
    const Cycles m = globalTime() + kBarrierCycles;
    for (auto &t : threads)
        t->setClock(m);
}

Cycles
Engine::globalTime() const
{
    Cycles m = 0;
    for (const auto &t : threads)
        m = std::max(m, t->clock());
    return m;
}

void
Engine::maybeRunServices(Cycles now)
{
    if (now <= serviceClock)
        return;
    serviceClock = now;
    while (nextKswapd <= serviceClock) {
        kern->kswapdTick(nextKswapd);
        nextKswapd += cfg.kswapdPeriod;
    }
    if (tiering && tiering->scanPeriod() > 0) {
        while (nextScan <= serviceClock) {
            tiering->scanTick(nextScan);
            nextScan += tiering->scanPeriod();
        }
    }
    for (Service &svc : services) {
        while (svc.next <= serviceClock) {
            svc.fn(svc.next);
            svc.next += svc.period;
        }
    }
    while (nextTimeline <= serviceClock) {
        TimelinePoint p;
        p.sec = cyclesToSeconds(nextTimeline);
        p.numa = kern->numastat();
        p.vm = kern->vmstat();
        p.cpuUtil = static_cast<double>(activeThreads) /
                    static_cast<double>(threads.size());
        points.push_back(p);
        nextTimeline += cfg.timelinePeriod;
    }
}

void
Engine::writebackLine(ThreadContext &t, Addr line)
{
    // Asynchronous dirty writeback: occupies tier bandwidth but does not
    // stall the thread. Skip lines whose page has been unmapped.
    const PageMeta *meta = kern->pageMeta(pageOf(line << kLineShift));
    if (meta == nullptr || !meta->present)
        return;
    phys.tier(meta->node).access(t.clock(), MemOp::Store,
                                 /*sequential=*/false);
}

void
Engine::pushVictim(ThreadContext &t, SetAssocCache &lower,
                   const CacheEviction &victim)
{
    if (!victim.valid)
        return;
    if (lower.access(victim.line, victim.dirty))
        return;  // Already present; dirty bit merged by access().
    const CacheEviction next = lower.insert(victim.line, victim.dirty);
    if (&lower == &l3) {
        if (next.valid && next.dirty)
            writebackLine(t, next.line);
        return;
    }
    // lower was L2; its victim falls to the shared L3.
    pushVictim(t, l3, next);
}

void
Engine::fillOnMiss(ThreadContext &t, Addr line, bool dirty, MemLevel from)
{
    // Install the line at every level above the servicing one; victims
    // trickle downward and dirty L3 victims write back to memory.
    if (from == MemLevel::DRAM || from == MemLevel::NVM) {
        if (!l3.contains(line)) {
            const CacheEviction ev = l3.insert(line, false);
            if (ev.valid && ev.dirty)
                writebackLine(t, ev.line);
        }
    }
    if (from != MemLevel::L2 && !t.l2.contains(line)) {
        const CacheEviction ev = t.l2.insert(line, false);
        pushVictim(t, l3, ev);
    }
    const CacheEviction ev = t.l1.insert(line, dirty);
    pushVictim(t, t.l2, ev);
}

Cycles
Engine::memoryAccess(ThreadContext &t, Addr addr, MemNode node, MemOp op,
                     Cycles issue_time)
{
    // Stream detection against the previous memory-serviced address.
    const bool sequential =
        addr >= t.lastMemAddr &&
        addr - t.lastMemAddr <= phys.tier(node).params().internalGranularity;
    t.lastMemAddr = addr;

    // Stores that miss all caches fetch the line for ownership (RFO) at
    // load latency; the dirty data leaves later via writeback.
    Cycles lat =
        phys.tier(node).access(issue_time, MemOp::Load, sequential);
    if (faults_ && node == MemNode::NVM) {
        // Injected NVM latency spike (media congestion / thermal jitter).
        lat += faults_->latencyPenalty(FaultPoint::NvmLatency, issue_time);
    }

    if (cfg.nextLinePrefetch && sequential) {
        // Next-line prefetch on a detected stream: fetch line+1 in the
        // shadow of this miss (no thread stall, but real bandwidth).
        const Addr next_addr = (lineOf(addr) + 1) << kLineShift;
        if (pageOf(next_addr) == pageOf(addr)) {
            const Addr next_line = lineOf(next_addr);
            if (!t.l1.contains(next_line) && !t.l2.contains(next_line) &&
                !l3.contains(next_line)) {
                const Cycles pf_lat = phys.tier(node).access(
                    issue_time, MemOp::Load, /*sequential=*/true);
                fillOnMiss(t, next_line, false, MemLevel::DRAM);
                t.lfb.add(next_line, issue_time + pf_lat);
            }
        }
    }
    (void)op;
    return lat;
}

Cycles
Engine::access(ThreadContext &t, Addr addr, MemOp op)
{
    t.advance(cfg.issueCycles);
    maybeRunServices(t.clock());

    const PageNum vpn = pageOf(addr);
    const Addr line = lineOf(addr);
    const CacheParams &cp = cfg.cache;

    Cycles cost = 0;
    bool tlb_miss = false;
    MemNode node = MemNode::DRAM;
    bool node_known = false;

    // PMD-mapped ranges translate through the 2 MiB TLB entry class;
    // with THP off the branch reduces to the legacy 4 KiB lookup (the
    // huge map is empty, so isHugeMapped is one empty-hash probe).
    const bool huge = cfg.thp.enabled && kern->isHugeMapped(vpn);
    switch (huge ? t.tlb.lookupHuge(hugeBaseOf(vpn)) : t.tlb.lookup(vpn)) {
      case TlbOutcome::L1Hit:
        break;
      case TlbOutcome::StlbHit:
        cost += t.tlb.stlbHitCycles();
        break;
      case TlbOutcome::Miss: {
        tlb_miss = true;
        // Page walk: a few cached steps plus some page-table references
        // that go to DRAM (page tables live on the DRAM node). A walk
        // that ends at a PMD entry is one level shorter.
        cost += cp.pageWalkBaseCycles;
        const unsigned mem_refs =
            huge ? cp.pageWalkMemRefsHuge : cp.pageWalkMemRefs;
        for (unsigned i = 0; i < mem_refs; ++i) {
            cost += phys.dram().access(t.clock() + cost, MemOp::Load,
                                       /*sequential=*/false);
        }
        const TouchResult tr = kern->touchPage(vpn, t.clock() + cost, op);
        cost += tr.cost;
        node = tr.node;
        node_known = true;
        if (tr.pageFault)
            ++t.pageFaults;
        if (tr.hintFault)
            ++t.hintFaults;
        if (cfg.thp.enabled && !huge && kern->isHugeMapped(vpn)) {
            // The fault PMD-mapped the range under a 4 KiB lookup:
            // replace the stale 4 KiB fill with the huge translation.
            t.tlb.invalidate(vpn);
            t.tlb.insertHuge(hugeBaseOf(vpn));
        }
        break;
      }
    }

    MemLevel level;
    if (t.l1.access(line, op == MemOp::Store)) {
        // An L1 hit within the fill window of an outstanding miss is
        // attributed to the line-fill buffer, as PEBS does.
        if (auto rem = t.lfb.inFlight(line, t.clock() + cost)) {
            level = MemLevel::LFB;
            cost += std::min<Cycles>(*rem, cp.l3Latency);
            t.lfb.countHit();
        } else if (t.lfb.recentlyFilled(line, t.clock() + cost,
                                        cp.lfbResidencyCycles)) {
            level = MemLevel::LFB;
            cost += cp.l1Latency;
            t.lfb.countHit();
        } else {
            level = MemLevel::L1;
            cost += cp.l1Latency;
        }
    } else if (t.l2.access(line, false)) {
        level = MemLevel::L2;
        cost += cp.l2Latency;
        fillOnMiss(t, line, op == MemOp::Store, MemLevel::L2);
    } else if (l3.access(line, false)) {
        level = MemLevel::L3;
        cost += cp.l3Latency;
        fillOnMiss(t, line, op == MemOp::Store, MemLevel::L3);
    } else {
        if (!node_known)
            node = kern->nodeOf(vpn);
        cost += cp.l3Latency;
        cost += memoryAccess(t, addr, node, op, t.clock() + cost);
        level = node == MemNode::DRAM ? MemLevel::DRAM : MemLevel::NVM;
        fillOnMiss(t, line, op == MemOp::Store,
                   node == MemNode::DRAM ? MemLevel::DRAM : MemLevel::NVM);
        t.lfb.add(line, t.clock() + cost);
    }

    t.advance(cost);
    ++level_counts[static_cast<int>(level)];
    if (op == MemOp::Load)
        ++t.loads;
    else
        ++t.stores;

    if (!observers.empty()) {
        AccessRecord rec;
        rec.tid = t.id();
        rec.vaddr = addr;
        rec.op = op;
        rec.level = level;
        rec.latency = cost + cfg.issueCycles;
        rec.tlbMiss = tlb_miss;
        rec.time = t.clock();
        for (AccessObserver *obs : observers)
            obs->onAccess(rec);
    }
    return cost;
}

Addr
Engine::sysMmap(ThreadContext &t, std::uint64_t bytes, ObjectId object,
                const std::string &site)
{
    t.advance(cfg.syscallCycles);
    maybeRunServices(t.clock());
    return kern->mmap(t.clock(), bytes, object, site);
}

void
Engine::sysMunmap(ThreadContext &t, Addr start)
{
    t.advance(cfg.syscallCycles);
    maybeRunServices(t.clock());
    kern->munmap(t.clock(), start);
}

void
Engine::sysMbind(ThreadContext &t, Addr start, const MemPolicy &policy)
{
    t.advance(cfg.syscallCycles);
    kern->mbind(start, policy);
}

Addr
Engine::registerFile(std::uint64_t bytes, const std::string &name)
{
    return kern->registerFile(bytes, name);
}

void
Engine::fileReadPage(ThreadContext &t, PageNum vpn)
{
    const Cycles cost = kern->ensureCached(vpn, t.clock());
    t.advance(cost);
    maybeRunServices(t.clock());
}

}  // namespace memtier

#include "sim/host_executor.h"

#include <algorithm>

#include "base/logging.h"
#include "sim/engine.h"

namespace memtier {

thread_local HostLane *tls_host_lane = nullptr;

HostExecutor::HostExecutor(Engine &eng, std::uint32_t workers)
    : eng_(eng)
{
    MEMTIER_ASSERT(workers >= 2, "one host thread never builds an executor");

    // Each worker gets a power-of-two slice of the shared L3 so the
    // set count stays valid; a worker's shard is private, trading the
    // serial model's cross-thread L3 sharing for race-freedom. Total
    // capacity is preserved for power-of-two worker counts.
    const CacheParams &cc = eng.cfg.cache;
    unsigned shift = 0;
    while ((1ULL << shift) < workers)
        ++shift;
    std::uint64_t shard = cc.l3Size >> shift;
    const std::uint64_t min_shard =
        static_cast<std::uint64_t>(cc.l3Ways) * kLineSize;
    shard = std::max(shard, min_shard);

    const TierParams &dp = eng.phys.dram().params();
    const TierParams &np = eng.phys.nvm().params();
    lanes_.reserve(workers);
    for (std::uint32_t w = 0; w < workers; ++w)
        lanes_.emplace_back(shard, cc.l3Ways, dp, np);

    workers_.resize(workers);
    doneGen_.assign(workers, 0);

    // Fixed contiguous partition of the logical threads: worker w owns
    // tids [w*T/W, (w+1)*T/W). The partition never changes, so each
    // ThreadContext is only ever touched by one OS thread per region.
    const std::uint32_t T =
        static_cast<std::uint32_t>(eng.threads.size());
    groupLo_.resize(workers);
    groupHi_.resize(workers);
    for (std::uint32_t w = 0; w < workers; ++w) {
        groupLo_[w] = static_cast<std::uint32_t>(
            static_cast<std::uint64_t>(w) * T / workers);
        groupHi_[w] = static_cast<std::uint32_t>(
            static_cast<std::uint64_t>(w + 1) * T / workers);
    }

    pool_.reserve(workers - 1);
    for (std::uint32_t w = 1; w < workers; ++w)
        pool_.emplace_back(&HostExecutor::poolMain, this, w);
}

HostExecutor::~HostExecutor()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        shutdown_ = true;
    }
    cv_.notify_all();
    for (std::thread &t : pool_)
        t.join();
}

bool
HostExecutor::allParkedLocked() const
{
    for (const Worker &w : workers_) {
        if (w.state == WState::Running)
            return false;
    }
    return true;
}

bool
HostExecutor::allDoneLocked() const
{
    for (const Worker &w : workers_) {
        if (w.state != WState::Done)
            return false;
    }
    return true;
}

void
HostExecutor::run(std::vector<HostRange> ranges, std::uint64_t grain,
                  const std::function<void(ThreadContext &, std::uint64_t,
                                           std::uint64_t)> &body)
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        ranges_ = std::move(ranges);
        grain_ = grain;
        body_ = &body;
        for (Worker &w : workers_)
            w.state = WState::Running;
        ++regionGen_;
    }
    cv_.notify_all();

    // The calling thread is worker 0; its final Done park coordinates
    // rounds until every worker's group is exhausted.
    tls_host_lane = &lanes_[0];
    workerLoop(0);
    tls_host_lane = nullptr;

    commitLanes();
    {
        std::lock_guard<std::mutex> lk(mu_);
        for (Worker &w : workers_)
            w.state = WState::Idle;
        body_ = nullptr;
    }
}

void
HostExecutor::poolMain(std::uint32_t w)
{
    tls_host_lane = &lanes_[w];
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
        cv_.wait(lk, [&] {
            return shutdown_ || regionGen_ > doneGen_[w];
        });
        if (shutdown_)
            return;
        doneGen_[w] = regionGen_;
        lk.unlock();
        workerLoop(w);
        lk.lock();
    }
}

void
HostExecutor::workerLoop(std::uint32_t w)
{
    const std::uint32_t lo = groupLo_[w];
    const std::uint32_t hi = groupHi_[w];
    std::size_t remaining = 0;
    for (std::uint32_t t = lo; t < hi; ++t) {
        if (ranges_[t].next < ranges_[t].end)
            ++remaining;
    }

    // The engine's serial earliest-clock-first interleaving, restricted
    // to this worker's group; ties go to the lowest tid as before.
    while (remaining > 0) {
        std::uint32_t best = hi;
        for (std::uint32_t t = lo; t < hi; ++t) {
            if (ranges_[t].next >= ranges_[t].end)
                continue;
            if (best == hi ||
                eng_.threads[t]->clock() < eng_.threads[best]->clock()) {
                best = t;
            }
        }
        HostRange &r = ranges_[best];
        ThreadContext &ctx = *eng_.threads[best];
        const std::uint64_t stop = std::min(r.end, r.next + grain_);
        const Cycles c0 = ctx.clock();
        (*body_)(ctx, r.next, stop);
        tls_host_lane->grainLat.add(ctx.clock() - c0);
        r.next = stop;
        if (r.next >= r.end)
            --remaining;
    }
    park(w, WState::Done, 0, nullptr);
}

void
HostExecutor::parkForService(Cycles now)
{
    const std::uint32_t w =
        static_cast<std::uint32_t>(tls_host_lane - lanes_.data());
    park(w, WState::ParkedService, now, nullptr);
}

void
HostExecutor::requestRound(Cycles now, const std::function<void()> &fn)
{
    const std::uint32_t w =
        static_cast<std::uint32_t>(tls_host_lane - lanes_.data());
    park(w, WState::ParkedRequest, now, &fn);
}

void
HostExecutor::park(std::uint32_t w, WState s, Cycles now,
                   const std::function<void()> *closure)
{
    std::unique_lock<std::mutex> lk(mu_);
    workers_[w].state = s;
    workers_[w].parkClock = now;
    workers_[w].closure = closure;
    cv_.notify_all();
    if (w == 0) {
        coordinateLocked(lk);
    } else if (s != WState::Done) {
        cv_.wait(lk, [&] {
            return workers_[w].state == WState::Running;
        });
    }
}

void
HostExecutor::coordinateLocked(std::unique_lock<std::mutex> &lk)
{
    for (;;) {
        if (workers_[0].state == WState::Running)
            return;
        if (allDoneLocked())
            return;
        cv_.wait(lk, [&] { return allParkedLocked(); });
        runRoundLocked();
        cv_.notify_all();
    }
}

void
HostExecutor::runRoundLocked()
{
    if (allDoneLocked())
        return;

    // Round code runs against the master state: clear the lane pointer
    // so closures and services never redirect into lane 0's shards.
    HostLane *saved = tls_host_lane;
    tls_host_lane = nullptr;

    // 1. Deferred recency stamps, in worker-id order.
    for (HostLane &lane : lanes_) {
        for (const auto &[vpn, stamp] : lane.recency)
            eng_.kern->applyDeferredRecency(vpn, stamp);
        lane.recency.clear();
    }

    // 2. Parked kernel-mutation requests, in worker-id order.
    bool released = false;
    for (Worker &w : workers_) {
        if (w.state != WState::ParkedRequest)
            continue;
        (*w.closure)();
        w.closure = nullptr;
        w.state = WState::Running;
        released = true;
    }

    // 3. Periodic services at the minimum parked clock. Every
    // service-parked worker crossed the deadline at its park time, so
    // when any exist the minimum has crossed it too; running the
    // services advances the deadline past that minimum, releasing at
    // least the earliest worker (progress is guaranteed).
    Cycles round_now = 0;
    bool any_service = false;
    for (const Worker &w : workers_) {
        if (w.state != WState::ParkedService)
            continue;
        round_now = any_service ? std::min(round_now, w.parkClock)
                                : w.parkClock;
        any_service = true;
    }
    if (any_service) {
        if (round_now >= eng_.nextServiceDue_) {
            eng_.maybeRunServicesImpl(round_now);
            if (eng_.nextServiceDue_ <= round_now) {
                fatal("host round failed to advance the service "
                      "deadline past cycle %llu",
                      static_cast<unsigned long long>(round_now));
            }
        }
        for (Worker &w : workers_) {
            if (w.state == WState::ParkedService &&
                w.parkClock < eng_.nextServiceDue_) {
                w.state = WState::Running;
                released = true;
            }
        }
        if (!released)
            fatal("host round made no progress");
    }

    tls_host_lane = saved;
}

void
HostExecutor::commitLanes()
{
    // Fixed worker-id reduction order: the merged vmstat, level counts,
    // device counters and latency shards are identical across replays
    // for a fixed worker count.
    for (HostLane &lane : lanes_) {
        for (const auto &[vpn, stamp] : lane.recency)
            eng_.kern->applyDeferredRecency(vpn, stamp);
        lane.recency.clear();

        for (int i = 0; i < kNumMemLevels; ++i) {
            eng_.level_counts[i] += lane.levelCounts[i];
            lane.levelCounts[i] = 0;
        }
        eng_.accessCycles_ += lane.accessCycles;
        lane.accessCycles = 0;
        lane.dram.drainCountersInto(eng_.phys.dram().deviceMutable());
        lane.nvm.drainCountersInto(eng_.phys.nvm().deviceMutable());

        eng_.kern->vmstatMutable().hostFastTouches +=
            lane.vm.hostFastTouches;
        lane.vm.hostFastTouches = 0;

        eng_.hostLat_.merge(lane.grainLat);
        lane.grainLat = LatencyHistogram();
    }
}

}  // namespace memtier

#pragma once
/**
 * @file
 * Per-host-worker execution lane for the parallel host backend.
 *
 * When the engine runs a write-disjoint parallel region over real
 * std::threads, each worker owns one HostLane: a private L3 shard, its
 * own tier-device timing replicas, level-count / vmstat / latency
 * shards, and a deferred-recency buffer. The lane is everything a
 * worker may mutate while other workers run; all shared engine and
 * kernel state is frozen between kernel rounds, so workers touching
 * only their lane (plus their own ThreadContexts) are race-free by
 * construction. Lanes merge into the master state in fixed worker-id
 * order at every round and at region commit, which keeps the merged
 * observables bit-identical across replays for a fixed worker count.
 */

#include <cstdint>
#include <utility>
#include <vector>

#include "base/stats.h"
#include "base/types.h"
#include "cache/set_assoc_cache.h"
#include "mem/tier_device.h"
#include "os/vmstat.h"

namespace memtier {

/** Everything one host worker may mutate outside a kernel round. */
struct HostLane
{
    /**
     * @param shard_bytes this worker's slice of the shared L3.
     * @param ways L3 associativity.
     * @param dram_params master DRAM tier parameters (replica timing).
     * @param nvm_params master NVM tier parameters.
     */
    HostLane(std::uint64_t shard_bytes, unsigned ways,
             const TierParams &dram_params, const TierParams &nvm_params)
        : l3("L3", shard_bytes, ways), dram(dram_params), nvm(nvm_params)
    {
    }

    /** This worker's slice of the shared L3 (private sets). */
    SetAssocCache l3;

    /** Tier timing replicas: per-worker channel state and counters. */
    TierDevice dram;
    TierDevice nvm;

    /** Level-count shard, merged into the engine's at commit. */
    std::uint64_t levelCounts[kNumMemLevels] = {};

    /** Vmstat shard (only hostFastTouches moves outside rounds). */
    VmStat vm;

    /** Summed memory-system cycles of this worker's accesses, merged
     *  into the engine's master accumulator at commit. */
    std::uint64_t accessCycles = 0;

    /** Recency stamps deferred by fastTouch, applied at rounds. */
    std::vector<std::pair<PageNum, Cycles>> recency;

    /** Simulated cycles charged per executed grain range. */
    LatencyHistogram grainLat;
};

/**
 * The lane of the host worker running on this OS thread, or nullptr on
 * the serial path (no executor, or between parallel regions). The
 * engine's access machinery redirects its L3 / tier-device /
 * level-count mutations through this pointer; one null check per
 * redirect is the whole single-threaded cost of the feature.
 */
extern thread_local HostLane *tls_host_lane;

}  // namespace memtier

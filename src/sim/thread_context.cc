#include "sim/thread_context.h"

namespace memtier {

ThreadContext::ThreadContext(ThreadId id, const CacheParams &params)
    : tlb(params.tlb),
      l1("L1", params.l1Size, params.l1Ways),
      l2("L2", params.l2Size, params.l2Ways),
      tid(id)
{
}

}  // namespace memtier

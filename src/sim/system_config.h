/**
 * @file
 * Aggregate configuration of the simulated machine.
 *
 * The default is the "scaled testbed": the paper's single-socket Xeon
 * Gold 6240 (18 cores, 2.6 GHz) with 192 GB DRAM + 768 GB Optane,
 * capacity-scaled by 12288x to 16 MiB DRAM + 64 MiB NVM so experiments
 * complete in seconds while preserving the footprint:DRAM pressure ratio
 * the paper's evaluation depends on (Section 4.2, Section 6). AutoNUMA
 * time constants are compressed correspondingly (runs last simulated
 * seconds instead of minutes).
 */

#ifndef MEMTIER_SIM_SYSTEM_CONFIG_H_
#define MEMTIER_SIM_SYSTEM_CONFIG_H_

#include <cstdint>

#include <string>

#include "autonuma/autonuma.h"
#include "cache/cache_params.h"
#include "fault/fault_plan.h"
#include "mem/tier_params.h"
#include "os/kernel.h"
#include "policy/tunables.h"
#include "thp/thp_params.h"

namespace memtier {

/** Everything needed to instantiate a simulated machine. */
struct SystemConfig
{
    TierParams dram = makeDramParams(24 * kMiB);
    TierParams nvm = makeNvmParams(96 * kMiB);
    CacheParams cache;
    KernelParams kernel;
    AutoNumaParams autonuma;

    /**
     * Tiering policy selected by registry name ("autonuma", "exchange",
     * "dram-only", "interleave", ...). When empty, the legacy
     * autonumaEnabled flag decides between "autonuma" and no policy,
     * so existing configurations behave exactly as before.
     */
    std::string policyName;

    /** String-keyed tunables forwarded to the policy factory. */
    PolicyTunables policyTunables;

    /**
     * Transparent huge pages. Off by default: every THP code path is
     * gated on thp.enabled, keeping 4 KiB-only runs bit-identical. The
     * MEMTIER_THP environment variable (ON/1) force-enables it.
     */
    ThpParams thp;

    /** False runs the vanilla-kernel baseline (no scanning/migration). */
    bool autonumaEnabled = true;

    /**
     * True gives the kernel the tiering reclaim path (demotion to NVM).
     * Normally tied to autonumaEnabled, but policies that replace the
     * scanner (e.g. dynamic object-level tiering) keep the demotion
     * path while disabling AutoNUMA itself.
     */
    bool tieringKernel = true;

    /** Logical threads (the paper runs 18, one per core). */
    std::uint32_t numThreads = 18;

    /** Pipeline cycles charged per memory operation besides the
     *  memory-system latency (models surrounding ALU work). */
    Cycles issueCycles = 4;

    /** Cost of entering/leaving the kernel for a syscall. */
    Cycles syscallCycles = 2600;

    /** kswapd wakeup period. */
    Cycles kswapdPeriod = secondsToCycles(0.0025);

    /** Timeline (numastat/vmstat/CPU-util) sampling period. */
    Cycles timelinePeriod = secondsToCycles(0.01);

    /** Enable the next-line prefetcher on sequential misses. */
    bool nextLinePrefetch = true;

    /** Deterministic seed for all engine-level randomness. */
    std::uint64_t seed = 42;

    /**
     * Fault-injection plan. The default (no point enabled) constructs
     * no injector at all, so fault-free runs are bit-identical to
     * builds that predate the fault layer.
     */
    FaultPlan faults;

    /**
     * Run the kernel invariant checker every invariantCheckPeriod
     * kernel events. Tests keep it on; the MEMTIER_CHECK_INVARIANTS
     * environment variable (ON/1) force-enables it for any run.
     */
    bool checkInvariants = false;

    /** Kernel events between invariant sweeps. */
    std::uint64_t invariantCheckPeriod = 4096;

    /**
     * Force the reference scalar access path: accessBatch degenerates
     * to element-at-a-time processing with no run coalescing, no
     * translation micro-cache and no bulk fill accounting. The results
     * are bit-identical either way (the golden tests assert it); this
     * knob exists to prove that and to baseline the batched path's
     * host-side speedup. The MEMTIER_SCALAR_PATH environment variable
     * (ON/1) force-enables it.
     */
    bool scalarPath = false;

    /**
     * Host OS threads executing write-disjoint parallel regions. 1
     * (the default) keeps the whole engine on the calling thread and
     * is bit-identical to every pre-parallel golden; values > 1 split
     * the logical threads into that many groups, each run by a real
     * std::thread over the park/round protocol (deterministic for a
     * fixed count, but a different interleaving than serial). The
     * MEMTIER_HOST_THREADS environment variable overrides it; the
     * engine clamps to numThreads.
     */
    std::uint32_t hostThreads = 1;
};

}  // namespace memtier

#endif  // MEMTIER_SIM_SYSTEM_CONFIG_H_

#pragma once
/**
 * @file
 * HostExecutor: runs the engine's logical ThreadContexts on real
 * std::threads for write-disjoint parallel regions, deterministically.
 *
 * Design (the park/round protocol):
 *
 *  - The logical threads are split into hostThreads contiguous groups;
 *    worker w runs the engine's serial earliest-clock-first loop over
 *    its own group. Worker 0 is the calling (main) thread and doubles
 *    as the round coordinator.
 *
 *  - While running, a worker mutates only its own ThreadContexts and
 *    its HostLane (L3 shard, tier replicas, counter shards); every
 *    piece of shared engine/kernel state is frozen. Reads of frozen
 *    state (page table, translation epoch, service deadline) need no
 *    synchronization.
 *
 *  - A worker parks at deterministic points of its own instruction
 *    stream: when a thread clock crosses the service deadline
 *    (parkForService), when the access path needs a kernel mutation --
 *    page fault, hint fault, syscall, page-cache fill (requestRound) --
 *    or when its group is exhausted (Done).
 *
 *  - Once every worker is parked, the coordinator runs one round under
 *    the pool mutex: apply deferred recency buffers in worker-id
 *    order, execute parked request closures in worker-id order, then
 *    run the periodic services at the minimum parked clock if it
 *    crossed the deadline. Workers whose park condition cleared are
 *    released. Rounds are global barriers, so the execution replays
 *    bit-identically for a fixed worker count, and every cross-thread
 *    access is ordered by the mutex (ThreadSanitizer-clean).
 */

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "base/types.h"
#include "sim/host_lane.h"

namespace memtier {

class Engine;
class ThreadContext;

/** One logical thread's remaining iteration range in a region. */
struct HostRange
{
    std::uint64_t next = 0;
    std::uint64_t end = 0;
};

class HostExecutor
{
  public:
    /**
     * @param eng the owning engine (lanes replicate its geometry).
     * @param workers host worker count (>= 2; 1 never constructs one).
     */
    HostExecutor(Engine &eng, std::uint32_t workers);
    ~HostExecutor();

    HostExecutor(const HostExecutor &) = delete;
    HostExecutor &operator=(const HostExecutor &) = delete;

    /** True on a thread currently executing region work. */
    bool inWorker() const { return tls_host_lane != nullptr; }

    /** Worker count. */
    std::uint32_t workerCount() const
    {
        return static_cast<std::uint32_t>(lanes_.size());
    }

    /**
     * Execute one parallel region: @p ranges[i] is logical thread i's
     * iteration range, @p body the grain-range body. Returns with all
     * ranges exhausted and all lane shards committed to the master.
     */
    void run(std::vector<HostRange> ranges, std::uint64_t grain,
             const std::function<void(ThreadContext &, std::uint64_t,
                                      std::uint64_t)> &body);

    /**
     * Park the calling worker because a thread clock crossed the
     * service deadline at @p now; returns once a round advanced the
     * deadline past @p now.
     */
    void parkForService(Cycles now);

    /**
     * Park the calling worker until the coordinator has executed
     * @p fn inside a round (kernel mutations only happen there).
     */
    void requestRound(Cycles now, const std::function<void()> &fn);

  private:
    enum class WState : std::uint8_t {
        Idle,           ///< Between regions.
        Running,        ///< Executing its group.
        ParkedService,  ///< Waiting for the deadline to advance.
        ParkedRequest,  ///< Waiting for its closure to run.
        Done,           ///< Group exhausted this region.
    };

    struct Worker
    {
        WState state = WState::Idle;
        Cycles parkClock = 0;
        const std::function<void()> *closure = nullptr;
    };

    /** Serial earliest-clock-first loop over worker @p w's group. */
    void workerLoop(std::uint32_t w);

    /** Pool thread main: waits for region dispatches. */
    void poolMain(std::uint32_t w);

    /** Park entry common to every worker; coordinates when w == 0. */
    void park(std::uint32_t w, WState s, Cycles now,
              const std::function<void()> *closure);

    /** Coordinator loop: run rounds until worker 0 is released. */
    void coordinateLocked(std::unique_lock<std::mutex> &lk);

    /** One kernel round; requires every worker parked. */
    void runRoundLocked();

    /** Merge every lane into the master engine/kernel state. */
    void commitLanes();

    bool allParkedLocked() const;
    bool allDoneLocked() const;

    Engine &eng_;
    std::vector<HostLane> lanes_;

    std::mutex mu_;
    std::condition_variable cv_;
    std::vector<Worker> workers_;

    // Region state (written by run() before dispatch, read by workers).
    std::vector<HostRange> ranges_;
    std::uint64_t grain_ = 0;
    const std::function<void(ThreadContext &, std::uint64_t,
                             std::uint64_t)> *body_ = nullptr;
    std::vector<std::uint32_t> groupLo_;  ///< First logical tid per worker.
    std::vector<std::uint32_t> groupHi_;  ///< One past the last tid.

    std::uint64_t regionGen_ = 0;
    std::vector<std::uint64_t> doneGen_;
    bool shutdown_ = false;
    std::vector<std::thread> pool_;
};

}  // namespace memtier

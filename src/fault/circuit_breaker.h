/**
 * @file
 * Migration circuit breaker: pauses promotion work when migrations
 * start failing in bulk, then re-enables after a cooldown.
 *
 * Real AutoNUMA backs off its scan rate when migrations are expensive
 * or failing (promotion rate limiting exists for exactly this reason,
 * Moura et al. Section 2.2); the breaker generalizes that into an
 * explicit open/closed state the kernel consults before promoting and
 * the scanner consults before marking pages. Failure history decays
 * exponentially, so one bad burst trips the breaker but ancient
 * history never does.
 */

#ifndef MEMTIER_FAULT_CIRCUIT_BREAKER_H_
#define MEMTIER_FAULT_CIRCUIT_BREAKER_H_

#include <cstdint>

#include "base/types.h"

namespace memtier {

/** Tunables of the migration circuit breaker. */
struct CircuitBreakerParams
{
    /** Failure fraction of the decayed window that trips the breaker. */
    double tripRatio = 0.5;

    /** Minimum decayed attempt count before the breaker may trip. */
    double minAttempts = 8.0;

    /** Half-life of the failure/attempt history decay. */
    Cycles decayHalfLife = secondsToCycles(0.002);

    /** How long the breaker stays open once tripped. */
    Cycles cooldown = secondsToCycles(0.004);
};

/** Decaying-window failure-rate breaker. */
class CircuitBreaker
{
  public:
    /** @param params trip/decay tunables. */
    explicit CircuitBreaker(const CircuitBreakerParams &params = {});

    /**
     * Record one migration attempt.
     *
     * @param success whether the attempt succeeded.
     * @param now attempt time.
     * @return true when this record tripped the breaker open.
     */
    bool record(bool success, Cycles now);

    /** True while the breaker is open (migrations paused). */
    bool isOpen(Cycles now) const { return now < openUntil_; }

    /** Times the breaker has tripped. */
    std::uint64_t trips() const { return trips_; }

    /** Decayed failure fraction of the current window (0 when empty). */
    double failureRate() const;

    /** Parameters in effect. */
    const CircuitBreakerParams &params() const { return cfg; }

  private:
    void decay(Cycles now);

    CircuitBreakerParams cfg;
    double attempts_ = 0.0;
    double failures_ = 0.0;
    Cycles lastDecay_ = 0;
    Cycles openUntil_ = 0;
    std::uint64_t trips_ = 0;
};

}  // namespace memtier

#endif  // MEMTIER_FAULT_CIRCUIT_BREAKER_H_

/**
 * @file
 * Declarative description of what the fault injector should break.
 *
 * A FaultPlan names a set of injection points (frame allocation,
 * migration, exchange, NVM latency, disk reads) and gives each one a
 * trigger probability, a burst length, an optional active time window
 * and, for latency points, an extra-latency amplitude. Together with
 * the plan seed this makes every faulty run exactly reproducible: the
 * same plan on the same workload produces bit-identical failures.
 *
 * Plans are built programmatically or parsed from the compact spec
 * strings the benches accept via --faults:
 *
 *   migrate:p=0.2,burst=8;alloc:p=0.05;nvmlat:p=0.01,extra_ns=400;seed=7
 */

#ifndef MEMTIER_FAULT_FAULT_PLAN_H_
#define MEMTIER_FAULT_FAULT_PLAN_H_

#include <array>
#include <cstdint>
#include <string>

#include "base/types.h"

namespace memtier {

/** Named injection points registered by the kernel and memory layers. */
enum class FaultPoint : std::uint8_t {
    FrameAlloc = 0,  ///< DRAM frame allocation fails (ENOMEM burst).
    Migration,       ///< Promotion/demotion page copy fails transiently.
    Exchange,        ///< Hot/cold page exchange fails transiently.
    NvmLatency,      ///< NVM access latency spike (extra cycles).
    DiskRead,        ///< Page-cache disk read error (forces a retry).
    EccCorrectable,    ///< Correctable ECC error on a mapped frame.
    EccUncorrectable,  ///< Uncorrectable ECC error (hwpoison hard path).
    Count,           ///< Sentinel — keep last.
};

/** Number of FaultPoint values, derived from the sentinel. */
inline constexpr int kNumFaultPoints = static_cast<int>(FaultPoint::Count);

/** Stable short name of @p point ("alloc", "migrate", ...). */
const char *faultPointName(FaultPoint point);

/** Behaviour of one injection point. */
struct FaultSpec
{
    /** Per-query trigger probability; 0 disables the point. */
    double probability = 0.0;

    /** Consecutive queries that fail once a trigger fires. */
    std::uint32_t burstLength = 1;

    /** Active window start in simulated seconds (0 = from the start). */
    double fromSec = 0.0;

    /** Active window end in simulated seconds (0 = unbounded). */
    double toSec = 0.0;

    /** NvmLatency only: extra cycles added per triggered access. */
    Cycles extraCycles = 0;

    /** True when this point can fire at all. */
    bool enabled() const { return probability > 0.0; }
};

/** A full fault-injection configuration. */
struct FaultPlan
{
    std::array<FaultSpec, kNumFaultPoints> points;

    /** Seed of the injector's per-point RNG streams. */
    std::uint64_t seed = 1;

    /** Spec of @p point. */
    FaultSpec &at(FaultPoint point);
    const FaultSpec &at(FaultPoint point) const;

    /** True when at least one point is enabled. */
    bool anyEnabled() const;

    /**
     * Parse a compact plan spec: semicolon-separated clauses, each
     * either "seed=N" or "<point>:key=value[,key=value...]" with point
     * in {alloc, migrate, exchange, nvmlat, diskread, ecc_ce, ecc_ue}
     * and keys p, burst, from_ms, to_ms, extra_ns.
     *
     * @param spec the spec string.
     * @param out receives the parsed plan (untouched on failure).
     * @param error receives a message on failure; may be nullptr.
     * @return true on success.
     */
    static bool parse(const std::string &spec, FaultPlan *out,
                      std::string *error = nullptr);

    /** parse() or fatal() with the parse error (CLI convenience). */
    static FaultPlan parseOrDie(const std::string &spec);

    /**
     * Plan parsed from the @p env_var environment variable, or
     * @p fallback when the variable is unset/empty. Used by the chaos
     * CI stage to push a moderate plan into the chaos-aware tests.
     */
    static FaultPlan fromEnvOr(const char *env_var,
                               const FaultPlan &fallback);

    /** One-line human-readable summary ("(no faults)" when empty). */
    std::string summary() const;
};

}  // namespace memtier

#endif  // MEMTIER_FAULT_FAULT_PLAN_H_

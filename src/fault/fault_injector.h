/**
 * @file
 * Seeded, deterministic fault injector.
 *
 * Each injection point owns an independent RNG stream derived from the
 * plan seed, so whether one point fires never perturbs another point's
 * decisions and a run replayed with the same FaultPlan reproduces the
 * exact same fault sequence. A trigger fails the triggering query plus
 * the next burstLength-1 queries of the same point (failure bursts,
 * the shape real ENOMEM/congestion episodes have); specs may also be
 * confined to a simulated-time window.
 *
 * The injector is pure observation + decision: the kernel and memory
 * layers query it at their named points and implement the actual
 * failure semantics (error returns, retries, fallbacks) themselves.
 */

#ifndef MEMTIER_FAULT_FAULT_INJECTOR_H_
#define MEMTIER_FAULT_FAULT_INJECTOR_H_

#include <array>
#include <cstdint>

#include "base/rng.h"
#include "base/types.h"
#include "fault/fault_plan.h"

namespace memtier {

/** Deterministic per-point fault source. */
class FaultInjector
{
  public:
    /** @param plan what to inject, with the RNG seed. */
    explicit FaultInjector(const FaultPlan &plan);

    /**
     * Should the operation at @p point fail now?
     *
     * Draws from the point's RNG stream only when the point is enabled
     * and @p now falls inside its window, so a plan with a point
     * disabled is bit-identical to no plan at all.
     */
    bool shouldFail(FaultPoint point, Cycles now);

    /**
     * Extra latency to charge at @p point (NvmLatency spikes): the
     * spec's extraCycles when the point triggers, 0 otherwise.
     */
    Cycles latencyPenalty(FaultPoint point, Cycles now);

    /** The plan in effect. */
    const FaultPlan &plan() const { return cfg; }

    /** Failures injected at @p point so far. */
    std::uint64_t injected(FaultPoint point) const;

    /** Queries made at @p point so far. */
    std::uint64_t queried(FaultPoint point) const;

    /** Failures injected across all points. */
    std::uint64_t totalInjected() const;

  private:
    struct PointState
    {
        Rng rng;
        Cycles fromCycles = 0;
        Cycles toCycles = 0;  ///< 0 = unbounded.
        std::uint32_t burstLeft = 0;
        std::uint64_t injectCount = 0;
        std::uint64_t queryCount = 0;

        PointState() : rng(0) {}
    };

    FaultPlan cfg;
    std::array<PointState, kNumFaultPoints> state;
};

}  // namespace memtier

#endif  // MEMTIER_FAULT_FAULT_INJECTOR_H_

#include "fault/fault_injector.h"

namespace memtier {

FaultInjector::FaultInjector(const FaultPlan &plan) : cfg(plan)
{
    for (int i = 0; i < kNumFaultPoints; ++i) {
        PointState &ps = state[static_cast<std::size_t>(i)];
        // Independent stream per point: mixing the point index through
        // SplitMix64 decorrelates the streams even for adjacent seeds.
        SplitMix64 mix(cfg.seed + 0x9e3779b97f4a7c15ULL *
                                      static_cast<std::uint64_t>(i + 1));
        ps.rng = Rng(mix.next());
        const FaultSpec &spec = cfg.points[static_cast<std::size_t>(i)];
        ps.fromCycles = secondsToCycles(spec.fromSec);
        ps.toCycles = spec.toSec > 0.0 ? secondsToCycles(spec.toSec) : 0;
    }
}

bool
FaultInjector::shouldFail(FaultPoint point, Cycles now)
{
    const FaultSpec &spec = cfg.at(point);
    if (!spec.enabled())
        return false;
    PointState &ps = state[static_cast<std::size_t>(point)];
    if (now < ps.fromCycles || (ps.toCycles != 0 && now >= ps.toCycles))
        return false;
    ++ps.queryCount;
    if (ps.burstLeft > 0) {
        --ps.burstLeft;
        ++ps.injectCount;
        return true;
    }
    if (ps.rng.nextBool(spec.probability)) {
        ps.burstLeft = spec.burstLength - 1;
        ++ps.injectCount;
        return true;
    }
    return false;
}

Cycles
FaultInjector::latencyPenalty(FaultPoint point, Cycles now)
{
    return shouldFail(point, now) ? cfg.at(point).extraCycles : 0;
}

std::uint64_t
FaultInjector::injected(FaultPoint point) const
{
    return state[static_cast<std::size_t>(point)].injectCount;
}

std::uint64_t
FaultInjector::queried(FaultPoint point) const
{
    return state[static_cast<std::size_t>(point)].queryCount;
}

std::uint64_t
FaultInjector::totalInjected() const
{
    std::uint64_t total = 0;
    for (const PointState &ps : state)
        total += ps.injectCount;
    return total;
}

}  // namespace memtier

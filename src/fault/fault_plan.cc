#include "fault/fault_plan.h"

#include <cstdlib>
#include <sstream>
#include <vector>

#include "base/logging.h"

namespace memtier {

namespace {

/** Point spec names, indexed by FaultPoint value. */
const char *const kPointNames[kNumFaultPoints] = {
    "alloc", "migrate", "exchange", "nvmlat", "diskread",
    "ecc_ce", "ecc_ue",
};

/** Split @p s on @p sep; empty segments are dropped. */
std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        const std::size_t pos = s.find(sep, start);
        const std::size_t end = pos == std::string::npos ? s.size() : pos;
        if (end > start)
            out.push_back(s.substr(start, end - start));
        if (pos == std::string::npos)
            break;
        start = pos + 1;
    }
    return out;
}

bool
parseDouble(const std::string &s, double *out)
{
    char *end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str() || *end != '\0')
        return false;
    *out = v;
    return true;
}

bool
parseU64(const std::string &s, std::uint64_t *out)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0')
        return false;
    *out = v;
    return true;
}

void
setError(std::string *error, const std::string &message)
{
    if (error != nullptr)
        *error = message;
}

}  // namespace

const char *
faultPointName(FaultPoint point)
{
    return kPointNames[static_cast<int>(point)];
}

FaultSpec &
FaultPlan::at(FaultPoint point)
{
    return points[static_cast<int>(point)];
}

const FaultSpec &
FaultPlan::at(FaultPoint point) const
{
    return points[static_cast<int>(point)];
}

bool
FaultPlan::anyEnabled() const
{
    for (const FaultSpec &spec : points) {
        if (spec.enabled())
            return true;
    }
    return false;
}

bool
FaultPlan::parse(const std::string &spec, FaultPlan *out,
                 std::string *error)
{
    FaultPlan plan;
    for (const std::string &clause : split(spec, ';')) {
        // Plan-level clause: seed=N.
        if (clause.rfind("seed=", 0) == 0) {
            if (!parseU64(clause.substr(5), &plan.seed)) {
                setError(error, "fault plan: bad seed '" + clause + "'");
                return false;
            }
            continue;
        }
        const std::size_t colon = clause.find(':');
        if (colon == std::string::npos || colon == 0) {
            setError(error, "fault plan: malformed clause '" + clause +
                                "' (expected point:key=value,...)");
            return false;
        }
        const std::string name = clause.substr(0, colon);
        int point = -1;
        for (int i = 0; i < kNumFaultPoints; ++i) {
            if (name == kPointNames[i])
                point = i;
        }
        if (point < 0) {
            setError(error, "fault plan: unknown point '" + name +
                                "' (expected alloc, migrate, exchange, "
                                "nvmlat, diskread, ecc_ce or ecc_ue)");
            return false;
        }
        FaultSpec &fs = plan.points[static_cast<std::size_t>(point)];
        for (const std::string &kv : split(clause.substr(colon + 1), ',')) {
            const std::size_t eq = kv.find('=');
            if (eq == std::string::npos || eq == 0) {
                setError(error, "fault plan: malformed assignment '" + kv +
                                    "' in point '" + name + "'");
                return false;
            }
            const std::string key = kv.substr(0, eq);
            const std::string value = kv.substr(eq + 1);
            double d = 0.0;
            std::uint64_t u = 0;
            if (key == "p" && parseDouble(value, &d) &&
                !(d >= 0.0 && d <= 1.0)) {
                setError(error, "fault plan: probability '" + value +
                                    "' in point '" + name +
                                    "' out of range (need 0 <= p <= 1)");
                return false;
            }
            if (key == "p" && parseDouble(value, &d) && d >= 0.0 &&
                d <= 1.0) {
                fs.probability = d;
            } else if (key == "burst" && parseU64(value, &u) && u >= 1) {
                fs.burstLength = static_cast<std::uint32_t>(u);
            } else if (key == "from_ms" && parseDouble(value, &d) &&
                       d >= 0.0) {
                fs.fromSec = d * 1e-3;
            } else if (key == "to_ms" && parseDouble(value, &d) &&
                       d >= 0.0) {
                fs.toSec = d * 1e-3;
            } else if (key == "extra_ns" && parseDouble(value, &d) &&
                       d >= 0.0) {
                fs.extraCycles = secondsToCycles(d * 1e-9);
            } else {
                setError(error, "fault plan: bad assignment '" + kv +
                                    "' in point '" + name +
                                    "' (keys: p, burst, from_ms, to_ms, "
                                    "extra_ns)");
                return false;
            }
        }
        if (!fs.enabled()) {
            setError(error, "fault plan: point '" + name +
                                "' needs p=<probability> > 0");
            return false;
        }
    }
    *out = plan;
    return true;
}

FaultPlan
FaultPlan::parseOrDie(const std::string &spec)
{
    FaultPlan plan;
    std::string error;
    if (!parse(spec, &plan, &error))
        fatal("%s", error.c_str());
    return plan;
}

FaultPlan
FaultPlan::fromEnvOr(const char *env_var, const FaultPlan &fallback)
{
    const char *value = std::getenv(env_var);
    if (value == nullptr || value[0] == '\0')
        return fallback;
    return parseOrDie(value);
}

std::string
FaultPlan::summary() const
{
    if (!anyEnabled())
        return "(no faults)";
    std::ostringstream os;
    bool first = true;
    for (int i = 0; i < kNumFaultPoints; ++i) {
        const FaultSpec &fs = points[static_cast<std::size_t>(i)];
        if (!fs.enabled())
            continue;
        if (!first)
            os << "; ";
        first = false;
        os << kPointNames[i] << " p=" << fs.probability;
        if (fs.burstLength > 1)
            os << " burst=" << fs.burstLength;
        if (fs.toSec > 0.0)
            os << " window=[" << fs.fromSec * 1e3 << ","
               << fs.toSec * 1e3 << "]ms";
        if (fs.extraCycles > 0)
            os << " extra=" << fs.extraCycles << "cy";
    }
    os << "; seed=" << seed;
    return os.str();
}

}  // namespace memtier

#include "fault/circuit_breaker.h"

#include <cmath>

namespace memtier {

CircuitBreaker::CircuitBreaker(const CircuitBreakerParams &params)
    : cfg(params)
{
}

void
CircuitBreaker::decay(Cycles now)
{
    if (now <= lastDecay_)
        return;  // Per-thread clocks are not globally monotone.
    const double halves = static_cast<double>(now - lastDecay_) /
                          static_cast<double>(cfg.decayHalfLife);
    const double factor = std::exp2(-halves);
    attempts_ *= factor;
    failures_ *= factor;
    lastDecay_ = now;
}

bool
CircuitBreaker::record(bool success, Cycles now)
{
    decay(now);
    attempts_ += 1.0;
    if (!success)
        failures_ += 1.0;
    if (isOpen(now))
        return false;
    if (attempts_ >= cfg.minAttempts &&
        failures_ >= cfg.tripRatio * attempts_) {
        openUntil_ = now + cfg.cooldown;
        ++trips_;
        // Reset the window: after the cooldown the breaker needs fresh
        // failures to trip again (re-enable with decay, not memory).
        attempts_ = 0.0;
        failures_ = 0.0;
        return true;
    }
    return false;
}

double
CircuitBreaker::failureRate() const
{
    return attempts_ > 0.0 ? failures_ / attempts_ : 0.0;
}

}  // namespace memtier

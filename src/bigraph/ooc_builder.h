/**
 * @file
 * Out-of-core construction of segmented CSR graphs: edges are streamed
 * once from the generator into per-segment disk spill buckets, then
 * each bucket is sorted, deduplicated and materialized independently,
 * so host RSS is bounded by the largest single segment instead of the
 * whole edge list + CSR (which at scale 24+ would dwarf the machine
 * the monolithic datasetGraph path was built for).
 *
 * The spill pipeline applies exactly CsrGraph::fromEdgeList's rules
 * (symmetrize, drop self loops, sort by (u, v), deduplicate) per
 * bucket -- bucketing by source row makes per-bucket dedup equal to
 * global dedup -- so the materialized content is identical to the
 * monolithic build of the same spec at any segment count.
 */

#ifndef MEMTIER_BIGRAPH_OOC_BUILDER_H_
#define MEMTIER_BIGRAPH_OOC_BUILDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace memtier {

/** Input generator of a segmented graph. */
enum class BigraphKind : std::uint8_t { Kron, Urand };

/** Name of @p kind ("kron"/"urand"). */
const char *bigraphKindName(BigraphKind kind);

/** Everything that identifies a segmented graph build. */
struct BigraphSpec
{
    BigraphKind kind = BigraphKind::Kron;
    int scale = 18;              ///< log2 vertices.
    int degree = 16;             ///< Average edges per vertex.
    std::uint64_t seed = 9241;   ///< Generator seed.
    std::uint32_t segments = 4;  ///< Row-range segments (clamped to n).

    /** Materialize edge weights (SSSP inputs); the weight stream uses
     *  seed ^ 0x5eed, matching weightedDatasetGraph. */
    bool weighted = false;

    /**
     * Build segments in reverse row order (test hook): the artifacts
     * and per-segment checksums must not change, only the simulated
     * allocation order does.
     */
    bool reverseBuild = false;
};

/**
 * The reusable on-disk product of spill + sort + dedup for one spec:
 * per-segment files of sorted, deduplicated (u, v) pairs packed as
 * (u << 32 | v), plus the edge prefix sums. Cached per process so a
 * policy sweep re-materializes segments without regenerating edges.
 */
struct BigraphArtifacts
{
    std::string key;                       ///< Spec identity string.
    std::vector<std::string> segFiles;     ///< Packed-pair file paths.
    std::vector<std::int64_t> edgeCounts;  ///< Deduplicated, directed.
    std::vector<std::int64_t> edgeBases;   ///< Size segments+1 prefix.
    std::int64_t nodes = 0;
    std::int64_t totalEdges = 0;           ///< Directed edge count.
    std::uint32_t segments = 1;            ///< Effective segment count.
    NodeId rowsPerSegment = 0;
    std::uint64_t maxSpillBytes = 0;       ///< Largest pre-dedup bucket
                                           ///< (the host RSS bound).
};

/**
 * Spill directory for the packed-pair buckets: MEMTIER_SPILL_DIR when
 * set, else ".bigraph_spill" under the working directory. Created on
 * first use.
 */
std::string bigraphSpillDir();

/**
 * Run (or fetch from the process-wide cache) phases 1-2 for @p spec:
 * stream-generate, bucket to disk, sort + deduplicate per bucket.
 * reverseBuild does not participate in the cache key -- it only
 * affects materialization order.
 */
const BigraphArtifacts &prepareBigraph(const BigraphSpec &spec);

/**
 * Drop the artifact cache and delete its spill files (tests and
 * RSS-sensitive sweeps).
 */
void clearBigraphArtifacts();

}  // namespace memtier

#endif  // MEMTIER_BIGRAPH_OOC_BUILDER_H_

#include "bigraph/ooc_builder.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>

#include "base/logging.h"
#include "base/rng.h"
#include "bigraph/segmented_csr.h"
#include "graph/generators.h"
#include "graph/stream_load.h"
#include "runtime/sim_file.h"

namespace memtier {

namespace {

/** Pack a directed edge for sorting: lexicographic (u, v) order of
 *  nonnegative NodeIds equals numeric order of the packed word. */
inline std::uint64_t
packPair(NodeId u, NodeId v)
{
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(u))
            << 32) |
           static_cast<std::uint32_t>(v);
}

inline NodeId
pairU(std::uint64_t p)
{
    return static_cast<NodeId>(p >> 32);
}

inline NodeId
pairV(std::uint64_t p)
{
    return static_cast<NodeId>(p & 0xffffffffULL);
}

/** RAII stdio handle. */
struct FileCloser
{
    void
    operator()(std::FILE *f) const
    {
        if (f)
            std::fclose(f);
    }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

std::string
specKey(const BigraphSpec &s)
{
    return std::string(bigraphKindName(s.kind)) +
           std::to_string(s.scale) + "d" + std::to_string(s.degree) +
           "s" + std::to_string(s.seed) + "x" +
           std::to_string(s.segments);
}

/** Process-wide artifact cache, keyed by spec identity. */
std::map<std::string, BigraphArtifacts> &
artifactCache()
{
    static std::map<std::string, BigraphArtifacts> cache;
    return cache;
}

void
writeAll(std::FILE *f, const std::uint64_t *data, std::size_t count,
         const std::string &path)
{
    if (count == 0)
        return;
    const std::size_t written =
        std::fwrite(data, sizeof(std::uint64_t), count, f);
    if (written != count)
        fatal("bigraph: short write to %s", path.c_str());
}

std::vector<std::uint64_t>
readPairFile(const std::string &path)
{
    std::error_code ec;
    const auto bytes = std::filesystem::file_size(path, ec);
    if (ec)
        fatal("bigraph: cannot stat %s", path.c_str());
    std::vector<std::uint64_t> pairs(bytes / sizeof(std::uint64_t));
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        fatal("bigraph: cannot open %s", path.c_str());
    if (!pairs.empty() &&
        std::fread(pairs.data(), sizeof(std::uint64_t), pairs.size(),
                   f.get()) != pairs.size()) {
        fatal("bigraph: short read from %s", path.c_str());
    }
    return pairs;
}

/**
 * Phase 1: stream the generator once, scattering both directions of
 * every non-loop edge into the owning segment's bucket file through
 * small host buffers.
 */
void
spillEdges(const BigraphSpec &spec, BigraphArtifacts &art)
{
    const std::uint32_t s_count = art.segments;
    const NodeId rows_per = art.rowsPerSegment;

    std::vector<FilePtr> files(s_count);
    for (std::uint32_t k = 0; k < s_count; ++k) {
        files[k].reset(std::fopen(art.segFiles[k].c_str(), "wb"));
        if (!files[k])
            fatal("bigraph: cannot create %s", art.segFiles[k].c_str());
    }

    constexpr std::size_t kBufPairs = 1 << 15;  // 256 KiB per bucket.
    std::vector<std::vector<std::uint64_t>> bufs(s_count);
    for (auto &b : bufs)
        b.reserve(kBufPairs);

    std::vector<std::uint64_t> spilled(s_count, 0);
    const auto bucketOf = [&](NodeId u) {
        return std::min<std::uint32_t>(
            static_cast<std::uint32_t>(u / rows_per), s_count - 1);
    };
    const auto push = [&](NodeId u, NodeId v) {
        const std::uint32_t k = bucketOf(u);
        bufs[k].push_back(packPair(u, v));
        if (bufs[k].size() >= kBufPairs) {
            writeAll(files[k].get(), bufs[k].data(), bufs[k].size(),
                     art.segFiles[k]);
            spilled[k] += bufs[k].size();
            bufs[k].clear();
        }
    };
    const auto emit = [&](NodeId u, NodeId v) {
        if (u == v)
            return;  // Drop self loops, as fromEdgeList does.
        push(u, v);
        push(v, u);
    };

    if (spec.kind == BigraphKind::Kron)
        forEachKronEdge(spec.scale, spec.degree, spec.seed, emit);
    else
        forEachUrandEdge(spec.scale, spec.degree, spec.seed, emit);

    for (std::uint32_t k = 0; k < s_count; ++k) {
        writeAll(files[k].get(), bufs[k].data(), bufs[k].size(),
                 art.segFiles[k]);
        spilled[k] += bufs[k].size();
        art.maxSpillBytes =
            std::max(art.maxSpillBytes,
                     spilled[k] * sizeof(std::uint64_t));
    }
}

/**
 * Phase 2: per bucket, sort by (u, v), deduplicate, rewrite in place
 * and record the edge counts -- global dedup falls out of per-bucket
 * dedup because a directed edge's bucket is a function of its source.
 */
void
sortAndDedup(BigraphArtifacts &art)
{
    for (std::uint32_t k = 0; k < art.segments; ++k) {
        std::vector<std::uint64_t> pairs =
            readPairFile(art.segFiles[k]);
        std::sort(pairs.begin(), pairs.end());
        pairs.erase(std::unique(pairs.begin(), pairs.end()),
                    pairs.end());
        FilePtr f(std::fopen(art.segFiles[k].c_str(), "wb"));
        if (!f)
            fatal("bigraph: cannot rewrite %s", art.segFiles[k].c_str());
        writeAll(f.get(), pairs.data(), pairs.size(), art.segFiles[k]);
        art.edgeCounts[k] = static_cast<std::int64_t>(pairs.size());
    }
    art.edgeBases.assign(art.segments + 1, 0);
    for (std::uint32_t k = 0; k < art.segments; ++k)
        art.edgeBases[k + 1] = art.edgeBases[k] + art.edgeCounts[k];
    art.totalEdges = art.edgeBases[art.segments];
}

/** FNV-1a over a 64-bit word. */
inline std::uint64_t
fnv1a(std::uint64_t h, std::uint64_t word)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (word >> (i * 8)) & 0xff;
        h *= 0x100000001b3ULL;
    }
    return h;
}

}  // namespace

const char *
bigraphKindName(BigraphKind kind)
{
    return kind == BigraphKind::Kron ? "kron" : "urand";
}

std::string
bigraphSpillDir()
{
    std::string dir = ".bigraph_spill";
    if (const char *env = std::getenv("MEMTIER_SPILL_DIR"); env && *env)
        dir = env;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        fatal("bigraph: cannot create spill dir %s", dir.c_str());
    return dir;
}

const BigraphArtifacts &
prepareBigraph(const BigraphSpec &spec)
{
    MEMTIER_ASSERT(spec.scale > 0 && spec.scale < 32,
                   "bigraph scale out of range");
    MEMTIER_ASSERT(spec.segments >= 1, "bigraph needs >= 1 segment");

    const std::string key = specKey(spec);
    auto &cache = artifactCache();
    if (const auto it = cache.find(key); it != cache.end())
        return it->second;

    BigraphArtifacts art;
    art.key = key;
    art.nodes = 1LL << spec.scale;
    // Even row split; the last segment may be short. Recompute the
    // effective count so no trailing segment is empty.
    const std::uint32_t requested = std::min<std::uint32_t>(
        spec.segments, static_cast<std::uint32_t>(art.nodes));
    art.rowsPerSegment = static_cast<NodeId>(
        (art.nodes + requested - 1) / requested);
    art.segments = static_cast<std::uint32_t>(
        (art.nodes + art.rowsPerSegment - 1) / art.rowsPerSegment);

    const std::string dir = bigraphSpillDir();
    art.segFiles.resize(art.segments);
    art.edgeCounts.assign(art.segments, 0);
    for (std::uint32_t k = 0; k < art.segments; ++k) {
        art.segFiles[k] =
            dir + "/" + key + ".seg" + std::to_string(k) + ".pairs";
    }

    inform("bigraph: spilling %s scale %d into %u segment buckets",
           bigraphKindName(spec.kind), spec.scale, art.segments);
    spillEdges(spec, art);
    sortAndDedup(art);
    inform("bigraph: %lld directed edges across %u segments "
           "(max bucket %llu MiB)",
           static_cast<long long>(art.totalEdges), art.segments,
           static_cast<unsigned long long>(art.maxSpillBytes >> 20));

    return cache.emplace(key, std::move(art)).first->second;
}

void
clearBigraphArtifacts()
{
    for (auto &[key, art] : artifactCache()) {
        for (const std::string &path : art.segFiles) {
            std::error_code ec;
            std::filesystem::remove(path, ec);
        }
    }
    artifactCache().clear();
}

SegmentedCsrGraph
SegmentedCsrGraph::generate(Engine &engine, SimHeap &heap,
                            ThreadContext &t, const BigraphSpec &spec,
                            const std::string &name)
{
    const BigraphArtifacts &art = prepareBigraph(spec);
    const std::uint64_t wseed = spec.seed ^ 0x5eed;

    SegmentedCsrGraph g;
    g.nodes_ = art.nodes;
    g.edges_ = art.totalEdges;
    g.rowsPer_ = art.rowsPerSegment;
    g.weighted_ = spec.weighted;
    g.segs_.resize(art.segments);
    g.checksums_.assign(art.segments, 0);

    std::vector<std::uint32_t> order(art.segments);
    for (std::uint32_t k = 0; k < art.segments; ++k)
        order[k] = spec.reverseBuild ? art.segments - 1 - k : k;

    // Host staging, reused across segments: the build's RSS bound is
    // one segment's pairs + arrays, never the whole graph.
    std::vector<std::int64_t> idx;
    std::vector<NodeId> adj;
    std::vector<std::int32_t> wts;

    for (const std::uint32_t k : order) {
        CsrSegment &seg = g.segs_[k];
        seg.firstRow = static_cast<NodeId>(
            static_cast<std::int64_t>(k) * art.rowsPerSegment);
        seg.rowEnd = static_cast<NodeId>(
            std::min<std::int64_t>(static_cast<std::int64_t>(k + 1) *
                                       art.rowsPerSegment,
                                   art.nodes));
        seg.edgeBase = art.edgeBases[k];
        seg.edgeEnd = art.edgeBases[k + 1];

        const std::vector<std::uint64_t> pairs =
            readPairFile(art.segFiles[k]);
        MEMTIER_ASSERT(static_cast<std::int64_t>(pairs.size()) ==
                           art.edgeCounts[k],
                       "bigraph: spill file changed size");
        const auto rows = static_cast<std::uint64_t>(seg.rowCount());
        const auto cnt = pairs.size();

        // Local index with global offsets: count per row, prefix-sum,
        // rebase onto the segment's global edge base.
        idx.assign(rows + 1, 0);
        for (const std::uint64_t p : pairs)
            ++idx[static_cast<std::uint64_t>(pairU(p) - seg.firstRow) +
                  1];
        idx[0] = seg.edgeBase;
        for (std::uint64_t r = 1; r <= rows; ++r)
            idx[r] += idx[r - 1];
        adj.resize(cnt);
        for (std::size_t i = 0; i < cnt; ++i)
            adj[i] = pairV(pairs[i]);
        if (spec.weighted) {
            wts.resize(cnt);
            for (std::size_t i = 0; i < cnt; ++i) {
                const NodeId u = pairU(pairs[i]);
                const NodeId v = adj[i];
                // Symmetric endpoint hash: both directions of an
                // undirected edge get the same weight (matches
                // CsrGraph::generateWeights).
                const auto lo =
                    static_cast<std::uint64_t>(std::min(u, v));
                const auto hi =
                    static_cast<std::uint64_t>(std::max(u, v));
                SplitMix64 h(wseed ^ (lo << 32 | hi));
                wts[i] =
                    static_cast<std::int32_t>(h.next() % 255 + 1);
            }
        }

        std::uint64_t sum = 0xcbf29ce484222325ULL;
        for (const std::int64_t o : idx)
            sum = fnv1a(sum, static_cast<std::uint64_t>(o));
        for (const NodeId v : adj)
            sum = fnv1a(sum, static_cast<std::uint64_t>(
                                 static_cast<std::uint32_t>(v)));
        g.checksums_[k] = sum;

        // Timed materialization, mirroring the monolithic loader's
        // layout per segment: header + index + adjacency (+ weights)
        // streamed through the page cache into fresh mmap objects.
        const std::uint64_t file_bytes =
            3 * sizeof(std::int64_t) +
            (rows + 1) * sizeof(std::int64_t) + cnt * sizeof(NodeId) +
            (spec.weighted ? cnt * sizeof(std::int32_t) : 0);
        SimFile file(engine, name + ".seg" + std::to_string(k) + ".sg",
                     file_bytes);
        file.read(t, 0, 3 * sizeof(std::int64_t));
        std::uint64_t file_pos = 3 * sizeof(std::int64_t);

        const std::string suffix = "." + std::to_string(k);
        seg.index = heap.alloc<std::int64_t>(t, "csr.index" + suffix,
                                             rows + 1);
        streamInto(file, t, file_pos, seg.index, idx.data(), rows + 1);
        file_pos += (rows + 1) * sizeof(std::int64_t);

        if (cnt > 0) {
            seg.adj =
                heap.alloc<NodeId>(t, "csr.adj" + suffix, cnt);
            streamInto(file, t, file_pos, seg.adj, adj.data(), cnt);
            file_pos += cnt * sizeof(NodeId);
            if (spec.weighted) {
                seg.weights = heap.alloc<std::int32_t>(
                    t, "csr.wts" + suffix, cnt);
                streamInto(file, t, file_pos, seg.weights, wts.data(),
                           cnt);
            }
        }
        g.footprint_ += (rows + 1) * sizeof(std::int64_t) +
                        cnt * sizeof(NodeId) +
                        (spec.weighted ? cnt * sizeof(std::int32_t)
                                       : 0);
    }
    return g;
}

}  // namespace memtier

/**
 * @file
 * Segmented CSR: the index and adjacency arrays split into fixed-size
 * row-range segments, each backed by its own mmap object
 * ("csr.index.<k>" / "csr.adj.<k>"), so the object-level policies and
 * AutoNUMA scanning can place, promote and demote row ranges
 * independently -- the layout Gill et al. use to fit massive graphs on
 * one tiered machine.
 *
 * SegmentedCsrView is the traversal interface the applications run on:
 * it resolves (vertex -> segment, local offset) and issues the same
 * bulk engine accesses the monolithic SimCsrGraph issued. A view over
 * one segment -- including the implicit view over a SimCsrGraph -- is
 * bit-identical to the monolithic access sequence, which the golden
 * tests pin down.
 */

#ifndef MEMTIER_BIGRAPH_SEGMENTED_CSR_H_
#define MEMTIER_BIGRAPH_SEGMENTED_CSR_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/sim_graph.h"
#include "runtime/sim_heap.h"
#include "runtime/sim_vector.h"

namespace memtier {

struct BigraphSpec;

/**
 * One row-range segment of a segmented CSR graph.
 *
 * The index object holds rowCount()+1 *global* CSR offsets -- rows
 * [firstRow, rowEnd] inclusive of the terminator -- so a row's offset
 * pair always lives in one segment. Because consecutive rows' adjacency
 * is contiguous, the segment's adjacency object covers the global edge
 * range [edgeBase, edgeEnd) and local position = global - edgeBase.
 * The boundary offset is duplicated into both neighboring segments
 * (terminator of k == first entry of k+1), which keeps every per-row
 * access single-segment.
 */
struct CsrSegment
{
    NodeId firstRow = 0;          ///< First row of the segment.
    NodeId rowEnd = 0;            ///< One past the last row.
    std::int64_t edgeBase = 0;    ///< Global offset of index[firstRow].
    std::int64_t edgeEnd = 0;     ///< edgeBase + adjacency entries.
    SimVector<std::int64_t> index;   ///< rowCount()+1 global offsets.
    SimVector<NodeId> adj;           ///< Adjacency entries (may be
                                     ///< invalid when the segment has
                                     ///< no edges).
    SimVector<std::int32_t> weights; ///< Parallel to adj (weighted).

    /** Rows covered by this segment. */
    std::int64_t rowCount() const { return rowEnd - firstRow; }

    /** Adjacency entries in this segment. */
    std::int64_t edgeCount() const { return edgeEnd - edgeBase; }
};

/**
 * A segmented CSR graph materialized in simulated memory: the segment
 * descriptors plus per-segment content checksums from the out-of-core
 * builder. Produced by SegmentedCsrGraph::generate (declared here,
 * built in ooc_builder.cc). Movable, not copyable -- it owns the
 * simulated objects until free().
 */
class SegmentedCsrGraph
{
  public:
    SegmentedCsrGraph() = default;
    SegmentedCsrGraph(const SegmentedCsrGraph &) = delete;
    SegmentedCsrGraph &operator=(const SegmentedCsrGraph &) = delete;
    SegmentedCsrGraph(SegmentedCsrGraph &&) = default;
    SegmentedCsrGraph &operator=(SegmentedCsrGraph &&) = default;

    /**
     * Materialize the graph described by @p spec segment by segment via
     * the out-of-core builder: edges are streamed once from the
     * generator into per-segment disk spill buckets, sorted and
     * deduplicated per segment, then each segment is loaded through its
     * own timed SimFile ("<name>.seg<k>.sg") into its own mmap objects.
     * Host RSS is bounded by the largest single segment, never the
     * whole graph. With spec.segments == 1 the timed access sequence is
     * bit-identical to SimCsrGraph::load of the equivalent host graph.
     */
    static SegmentedCsrGraph generate(Engine &engine, SimHeap &heap,
                                      ThreadContext &t,
                                      const BigraphSpec &spec,
                                      const std::string &name);

    /** Vertex count. */
    std::int64_t numNodes() const { return nodes_; }

    /** Directed edge count. */
    std::int64_t numEdges() const { return edges_; }

    /** Number of segments. */
    std::uint32_t segmentCount() const
    {
        return static_cast<std::uint32_t>(segs_.size());
    }

    /** Segment descriptors, ordered by row range. */
    const std::vector<CsrSegment> &segments() const { return segs_; }

    /** Rows per segment (the last segment may be short). */
    NodeId rowsPerSegment() const { return rowsPer_; }

    /** True when edge weights were materialized. */
    bool hasWeights() const { return weighted_; }

    /**
     * Content checksum of segment @p k (FNV-1a over its index then
     * adjacency values): deterministic in the spec, independent of the
     * segment build order.
     */
    std::uint64_t
    segmentChecksum(std::uint32_t k) const
    {
        return checksums_[k];
    }

    /** Bytes of simulated memory across all segments' objects. */
    std::uint64_t footprintBytes() const { return footprint_; }

    /** Free every segment's simulated objects. */
    void
    free(SimHeap &heap, ThreadContext &t)
    {
        for (CsrSegment &s : segs_) {
            heap.free(t, s.index);
            if (s.adj.valid())
                heap.free(t, s.adj);
            if (s.weights.valid())
                heap.free(t, s.weights);
        }
        segs_.clear();
    }

  private:
    friend class SegmentedCsrView;

    std::vector<CsrSegment> segs_;
    std::vector<std::uint64_t> checksums_;
    std::int64_t nodes_ = 0;
    std::int64_t edges_ = 0;
    NodeId rowsPer_ = 0;
    std::uint64_t footprint_ = 0;
    bool weighted_ = false;
};

/**
 * The traversal interface of a CSR graph for the applications: resolves
 * (vertex -> segment, local offset) and issues through the engine's
 * bulk entry points. Cheap value type; the graph it views must outlive
 * it. Implicitly constructible from a monolithic SimCsrGraph (one
 * segment wrapping its objects, same addresses, same access sequence),
 * so existing call sites keep working unchanged.
 */
class SegmentedCsrView
{
  public:
    SegmentedCsrView() = default;

    /** One-segment view over a monolithic graph (implicit on purpose). */
    SegmentedCsrView(const SimCsrGraph &g)  // NOLINT(runtime/explicit)
        : nodes_(g.numNodes()), edges_(g.numEdges())
    {
        mono_.firstRow = 0;
        mono_.rowEnd = static_cast<NodeId>(nodes_);
        mono_.edgeBase = 0;
        mono_.edgeEnd = edges_;
        mono_.index = g.indexVector();
        mono_.adj = g.adjacencyVector();
        mono_.weights = g.weightsVector();
        segs_ = &mono_;
        nsegs_ = 1;
        rowsPer_ = static_cast<NodeId>(std::max<std::int64_t>(nodes_, 1));
        edgeBases_.assign(1, 0);
    }

    /** View over a segmented graph (implicit on purpose). */
    SegmentedCsrView(const SegmentedCsrGraph &g)  // NOLINT
        : nodes_(g.numNodes()), edges_(g.numEdges()),
          segs_(g.segments().data()),
          nsegs_(static_cast<std::uint32_t>(g.segments().size())),
          rowsPer_(std::max<NodeId>(g.rowsPerSegment(), 1))
    {
        edgeBases_.reserve(nsegs_);
        for (const CsrSegment &s : g.segments())
            edgeBases_.push_back(s.edgeBase);
    }

    SegmentedCsrView(const SegmentedCsrView &other) { *this = other; }

    SegmentedCsrView &
    operator=(const SegmentedCsrView &other)
    {
        nodes_ = other.nodes_;
        edges_ = other.edges_;
        nsegs_ = other.nsegs_;
        rowsPer_ = other.rowsPer_;
        edgeBases_ = other.edgeBases_;
        mono_ = other.mono_;
        // A monolithic view points at its own embedded segment; a
        // multi-segment view aliases the graph's descriptor array.
        segs_ = other.segs_ == &other.mono_ ? &mono_ : other.segs_;
        return *this;
    }

    /** True when this view refers to a graph. */
    bool valid() const { return segs_ != nullptr; }

    /** Vertex count. */
    std::int64_t numNodes() const { return nodes_; }

    /** Directed edge count. */
    std::int64_t numEdges() const { return edges_; }

    /** Number of segments. */
    std::uint32_t segmentCount() const { return nsegs_; }

    /** Segment descriptor @p k. */
    const CsrSegment &segment(std::uint32_t k) const { return segs_[k]; }

    /** True when edge weights are loaded. */
    bool hasWeights() const { return segs_[0].weights.valid(); }

    /** Segment owning row @p u. */
    std::uint32_t
    segmentOfRow(NodeId u) const
    {
        return std::min<std::uint32_t>(
            static_cast<std::uint32_t>(u / rowsPer_), nsegs_ - 1);
    }

    /** Segment owning global adjacency position @p e. */
    std::uint32_t
    segmentOfEdge(std::int64_t e) const
    {
        if (nsegs_ == 1)
            return 0;
        const auto it = std::upper_bound(edgeBases_.begin(),
                                         edgeBases_.end(), e);
        auto k = static_cast<std::uint32_t>(
            (it - edgeBases_.begin()) - 1);
        // Skip empty segments sharing the same base.
        while (segs_[k].edgeEnd <= e)
            ++k;
        return k;
    }

    /** Timed load of the CSR offset of vertex @p u. */
    std::int64_t
    offset(ThreadContext &t, NodeId u) const
    {
        const CsrSegment &s = segs_[segmentOfIndexPos(
            static_cast<std::uint64_t>(u))];
        return s.index.get(
            t, static_cast<std::uint64_t>(u - s.firstRow));
    }

    /** Timed load of adjacency entry @p e. */
    NodeId
    neighbor(ThreadContext &t, std::int64_t e) const
    {
        const CsrSegment &s = segs_[segmentOfEdge(e)];
        return s.adj.get(t,
                         static_cast<std::uint64_t>(e - s.edgeBase));
    }

    /**
     * Timed bulk read of the offset pair of @p u (degree probes that
     * don't need the adjacency row). Always one copyOut: a row's pair
     * lives in one segment by construction.
     */
    std::pair<std::int64_t, std::int64_t>
    offsetPair(ThreadContext &t, NodeId u) const
    {
        const CsrSegment &s = segs_[segmentOfRow(u)];
        const auto local = static_cast<std::uint64_t>(u - s.firstRow);
        std::int64_t offs[2];
        s.index.copyOut(t, local, local + 2, offs);
        return {offs[0], offs[1]};
    }

    /**
     * Timed bulk row read: loads the offset pair of @p u as one batch
     * and the whole adjacency row as batched loads into @p row. The
     * row's edges are contiguous within u's segment, so this issues
     * exactly the monolithic access sequence.
     * @return the row's global CSR range [begin, end).
     */
    std::pair<std::int64_t, std::int64_t>
    neighborsInto(ThreadContext &t, NodeId u,
                  std::vector<NodeId> &row) const
    {
        const CsrSegment &s = segs_[segmentOfRow(u)];
        const auto local = static_cast<std::uint64_t>(u - s.firstRow);
        std::int64_t offs[2];
        s.index.copyOut(t, local, local + 2, offs);
        row.resize(static_cast<std::size_t>(offs[1] - offs[0]));
        s.adj.copyOut(t, static_cast<std::uint64_t>(offs[0] - s.edgeBase),
                      static_cast<std::uint64_t>(offs[1] - s.edgeBase),
                      row.data());
        return {offs[0], offs[1]};
    }

    /**
     * Timed bulk read of index positions [@p begin, @p end) into
     * @p dst -- the segmented equivalent of indexVector().copyOut.
     * A chunk crossing a segment boundary reads the duplicated boundary
     * offset as the lower segment's terminator and resumes in the next
     * segment past its first entry; with one segment this collapses to
     * a single copyOut, bit-identical to the monolithic call.
     */
    void
    offsetsInto(ThreadContext &t, std::uint64_t begin, std::uint64_t end,
                std::int64_t *dst) const
    {
        std::uint64_t b = begin;
        while (b < end) {
            const CsrSegment &s = segs_[segmentOfIndexPos(b)];
            const std::uint64_t stop = std::min<std::uint64_t>(
                end, static_cast<std::uint64_t>(s.rowEnd) + 1);
            const auto lo =
                b - static_cast<std::uint64_t>(s.firstRow);
            s.index.copyOut(
                t, lo, stop - static_cast<std::uint64_t>(s.firstRow),
                dst + (b - begin));
            b = stop;
        }
    }

    /**
     * Timed bulk read of global adjacency positions [@p begin, @p end)
     * into @p dst, split at segment boundaries -- the segmented
     * equivalent of adjacencyVector().copyOut.
     */
    void
    adjacencyInto(ThreadContext &t, std::int64_t begin, std::int64_t end,
                  NodeId *dst) const
    {
        std::int64_t b = begin;
        while (b < end) {
            const CsrSegment &s = segs_[segmentOfEdge(b)];
            const std::int64_t stop = std::min(end, s.edgeEnd);
            s.adj.copyOut(t, static_cast<std::uint64_t>(b - s.edgeBase),
                          static_cast<std::uint64_t>(stop - s.edgeBase),
                          dst + (b - begin));
            b = stop;
        }
    }

    /**
     * Timed bulk read of the edge weights for global CSR range
     * [@p begin, @p end) into @p out.
     */
    void
    weightsInto(ThreadContext &t, std::int64_t begin, std::int64_t end,
                std::vector<std::int32_t> &out) const
    {
        out.resize(static_cast<std::size_t>(end - begin));
        std::int64_t b = begin;
        while (b < end) {
            const CsrSegment &s = segs_[segmentOfEdge(b)];
            const std::int64_t stop = std::min(end, s.edgeEnd);
            s.weights.copyOut(
                t, static_cast<std::uint64_t>(b - s.edgeBase),
                static_cast<std::uint64_t>(stop - s.edgeBase),
                out.data() + (b - begin));
            b = stop;
        }
    }

    /** Timed load of the weight of adjacency entry @p e. */
    std::int32_t
    weightOf(ThreadContext &t, std::int64_t e) const
    {
        const CsrSegment &s = segs_[segmentOfEdge(e)];
        return s.weights.get(
            t, static_cast<std::uint64_t>(e - s.edgeBase));
    }

    /** Untimed CSR offset at index position @p p (validation/sampling). */
    std::int64_t
    rawOffset(std::uint64_t p) const
    {
        const CsrSegment &s = segs_[segmentOfIndexPos(p)];
        return s.index.raw(p - static_cast<std::uint64_t>(s.firstRow));
    }

    /** Untimed degree of @p u (source sampling; no engine accesses). */
    std::int64_t
    rawDegree(NodeId u) const
    {
        const CsrSegment &s = segs_[segmentOfRow(u)];
        const auto local = static_cast<std::uint64_t>(u - s.firstRow);
        return s.index.raw(local + 1) - s.index.raw(local);
    }

  private:
    /**
     * Segment owning *index position* @p p (0..numNodes). A position on
     * a segment boundary maps to the upper segment's first entry; the
     * chunked readers above may still serve it from the lower segment's
     * duplicated terminator when a run crosses the boundary.
     */
    std::uint32_t
    segmentOfIndexPos(std::uint64_t p) const
    {
        return std::min<std::uint32_t>(
            static_cast<std::uint32_t>(
                p / static_cast<std::uint64_t>(rowsPer_)),
            nsegs_ - 1);
    }

    std::int64_t nodes_ = 0;
    std::int64_t edges_ = 0;
    const CsrSegment *segs_ = nullptr;
    std::uint32_t nsegs_ = 0;
    NodeId rowsPer_ = 1;
    std::vector<std::int64_t> edgeBases_;  ///< Per-segment edgeBase.
    CsrSegment mono_;  ///< Storage when viewing a monolithic graph.
};

}  // namespace memtier

#endif  // MEMTIER_BIGRAPH_SEGMENTED_CSR_H_

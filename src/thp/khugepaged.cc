#include "thp/khugepaged.h"

#include <algorithm>

#include "os/kernel.h"

namespace memtier {

Khugepaged::Khugepaged(Kernel &kernel_, const ThpParams &params)
    : kernel(kernel_), cfg(params)
{
}

void
Khugepaged::tick(Cycles now)
{
    ++stats_.ticks;
    const auto &vmas = kernel.addressSpace().vmas();
    if (vmas.empty())
        return;

    std::uint32_t examined = 0;
    std::uint32_t collapses = 0;
    bool wrapped = false;

    while (examined < cfg.khugepagedRangesPerRound &&
           collapses < cfg.khugepagedMaxCollapses) {
        // Find the VMA containing the cursor, or the next one after it.
        const Addr addr = cursor << kPageShift;
        auto it = vmas.upper_bound(addr);
        if (it != vmas.begin()) {
            auto prev = std::prev(it);
            if (prev->second.end > addr)
                it = prev;
        }
        // Skip page-cache ranges: the kernel never PMD-maps them here.
        while (it != vmas.end() && it->second.pageCache)
            ++it;
        if (it == vmas.end()) {
            if (wrapped)
                break;  // Full pass with budget to spare; done.
            wrapped = true;
            cursor = 0;
            continue;
        }
        const Vma &vma = it->second;

        // First aligned range at or after the cursor that fits wholly
        // inside the VMA (collapse never crosses a VMA boundary).
        const PageNum lo = std::max(cursor, pageOf(vma.start));
        const PageNum base = pageOf(roundUpHuge(lo << kPageShift));
        if ((base + kPagesPerHuge) << kPageShift > vma.end) {
            cursor = pageOf(vma.end);  // No room left; next VMA.
            continue;
        }

        ++examined;
        ++stats_.rangesScanned;
        switch (kernel.collapseHugePage(base, now)) {
          case CollapseResult::Collapsed:
            ++stats_.collapsed;
            ++collapses;
            break;
          case CollapseResult::NotEligible:
            ++stats_.notEligible;
            break;
          case CollapseResult::AllocFailed:
            ++stats_.allocFailed;
            break;
        }
        cursor = base + kPagesPerHuge;
    }
}

}  // namespace memtier

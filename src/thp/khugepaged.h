/**
 * @file
 * khugepaged: the background collapse daemon. Periodically walks the
 * process VMAs looking for 2 MiB-aligned, fully-populated, same-tier
 * ranges and asks the kernel to collapse them into PMD mappings,
 * mirroring Linux's khugepaged scan budget (pages_to_scan) and
 * per-round collapse budget.
 */

#ifndef MEMTIER_THP_KHUGEPAGED_H_
#define MEMTIER_THP_KHUGEPAGED_H_

#include <cstdint>

#include "base/types.h"
#include "thp/thp_params.h"

namespace memtier {

class Kernel;

/** Cumulative khugepaged activity counters. */
struct KhugepagedStats
{
    std::uint64_t ticks = 0;          ///< Scan rounds executed.
    std::uint64_t rangesScanned = 0;  ///< 2 MiB ranges examined.
    std::uint64_t collapsed = 0;      ///< Successful collapses.
    std::uint64_t notEligible = 0;    ///< Holes/mixed tiers/markers.
    std::uint64_t allocFailed = 0;    ///< No contiguous 2 MiB frame.
};

/**
 * The collapse daemon. Driven from the engine's simulated-time service
 * clock (one tick per khugepagedPeriod); keeps a round-robin cursor
 * across VMAs so large address spaces are scanned incrementally, like
 * the real daemon's mm_slot scan position.
 */
class Khugepaged
{
  public:
    /**
     * @param kernel the kernel whose address space is scanned.
     * @param params scan/collapse budgets per round.
     */
    Khugepaged(Kernel &kernel, const ThpParams &params);

    /** Run one scan round at simulated time @p now. */
    void tick(Cycles now);

    /** Activity counters. */
    const KhugepagedStats &stats() const { return stats_; }

  private:
    Kernel &kernel;
    ThpParams cfg;
    PageNum cursor = 0;  ///< Next vpn to examine (round-robin).
    KhugepagedStats stats_;
};

}  // namespace memtier

#endif  // MEMTIER_THP_KHUGEPAGED_H_

/**
 * @file
 * Transparent-huge-page model tunables.
 *
 * Header-only (base dependencies only) so the os layer can embed the
 * parameters in KernelParams without linking against the thp library;
 * the collapse daemon itself (khugepaged.h) sits above the kernel.
 */

#ifndef MEMTIER_THP_THP_PARAMS_H_
#define MEMTIER_THP_THP_PARAMS_H_

#include <cstdint>
#include <cstdlib>
#include <string>

#include "base/types.h"

namespace memtier {

/**
 * THP knobs. Everything is inert while @ref enabled is false -- the
 * default -- which keeps 4 KiB-only runs bit-identical to builds that
 * predate the THP model (golden-regression guarded).
 */
struct ThpParams
{
    /** Master switch (the /sys/kernel/mm/transparent_hugepage knob). */
    bool enabled = false;

    /**
     * Allocate PMD mappings directly on first touch of an eligible
     * 2 MiB range (THP "always" policy). When false, huge pages only
     * appear through khugepaged collapse.
     */
    bool faultAlloc = true;

    /** Cycles between khugepaged scan rounds. */
    Cycles khugepagedPeriod = secondsToCycles(0.002);

    /** 2 MiB-aligned ranges examined per khugepaged round. */
    std::uint32_t khugepagedRangesPerRound = 64;

    /** Collapses performed per khugepaged round at most. */
    std::uint32_t khugepagedMaxCollapses = 8;
};

/** MEMTIER_THP=ON/1 force-enables the THP model for any run. */
inline bool
thpForcedByEnv()
{
    const char *env = std::getenv("MEMTIER_THP");
    if (env == nullptr)
        return false;
    const std::string value(env);
    return value == "ON" || value == "on" || value == "1";
}

}  // namespace memtier

#endif  // MEMTIER_THP_THP_PARAMS_H_

/**
 * @file
 * Name -> factory registry of tiering policies. The experiment runner,
 * benches and CLIs select a policy by name ("--policy=exchange") and
 * configure it through a string-keyed tunables map instead of
 * constructing concrete policy classes; each policy declares the
 * tunable keys it understands so unknown keys are rejected up front.
 */

#ifndef MEMTIER_POLICY_POLICY_REGISTRY_H_
#define MEMTIER_POLICY_POLICY_REGISTRY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "autonuma/autonuma.h"
#include "os/kernel_hooks.h"
#include "policy/tunables.h"

namespace memtier {

class Kernel;
class TunableRegistry;

/** Everything a policy factory may draw on. */
struct PolicyContext
{
    /** Kernel whose pages the policy will manage. */
    Kernel &kernel;

    /**
     * Machine-level AutoNUMA parameter block (SystemConfig::autonuma).
     * Factories use it as the base their tunables override, so code
     * that configures AutoNumaParams directly keeps working.
     */
    AutoNumaParams autonumaDefaults;

    /** String-keyed tunables from the CLI/config. */
    PolicyTunables tunables;

    /**
     * Live tunable registry the factory registers the policy's tunables
     * into before applying the CLI assignments through it. When null
     * (legacy/standalone construction) the factory uses a throwaway
     * registry: the assignments still apply, nothing stays adjustable.
     */
    TunableRegistry *registry = nullptr;
};

/** Builds one configured policy instance. */
using PolicyFactory =
    std::function<std::unique_ptr<TieringPolicy>(const PolicyContext &)>;

/**
 * Computes the allowed tunable keys from the assignments themselves,
 * for policies whose key set depends on another tunable (autotune
 * accepts its own keys plus whatever its "base" policy accepts).
 */
using TunableKeysFn =
    std::function<std::vector<std::string>(const PolicyTunables &)>;

/** Process-wide registry of tiering policies. */
class PolicyRegistry
{
  public:
    /** The singleton, with the built-in policies registered. */
    static PolicyRegistry &instance();

    /**
     * Register a policy.
     *
     * @param name registry key (the "--policy=" value).
     * @param description one-line summary for listings.
     * @param tunable_keys tunable keys the policy understands.
     * @param factory instance builder.
     * @param keys_fn optional dynamic key computation; when set it
     *        replaces @p tunable_keys for create()-time validation.
     */
    void add(const std::string &name, const std::string &description,
             std::vector<std::string> tunable_keys,
             PolicyFactory factory, TunableKeysFn keys_fn = nullptr);

    /**
     * Build the policy registered under @p name.
     *
     * @param name registry key.
     * @param ctx construction context (kernel, defaults, tunables).
     * @param error receives a human-readable message on failure
     *        (unknown name, unknown tunable key); may be nullptr.
     * @return the policy, or nullptr on failure.
     */
    std::unique_ptr<TieringPolicy> create(const std::string &name,
                                          const PolicyContext &ctx,
                                          std::string *error
                                          = nullptr) const;

    /** True when @p name is registered. */
    bool contains(const std::string &name) const;

    /** Registered names, sorted. */
    std::vector<std::string> names() const;

    /** Description of @p name (empty when unknown). */
    std::string description(const std::string &name) const;

    /** Tunable keys of @p name (empty when unknown). */
    std::vector<std::string> tunableKeys(const std::string &name) const;

  private:
    PolicyRegistry();

    struct Entry
    {
        std::string name;
        std::string description;
        std::vector<std::string> tunableKeys;
        PolicyFactory factory;
        TunableKeysFn keysFn;
    };

    const Entry *find(const std::string &name) const;

    std::vector<Entry> entries;
};

}  // namespace memtier

#endif  // MEMTIER_POLICY_POLICY_REGISTRY_H_

#include "policy/autotune_policy.h"

#include <algorithm>
#include <cmath>

#include "base/logging.h"

namespace memtier {

AutoTunePolicy::AutoTunePolicy(Kernel &kernel,
                               std::unique_ptr<TieringPolicy> base,
                               const AutoTuneParams &params,
                               TunableRegistry *registry,
                               std::unique_ptr<TunableRegistry>
                                   owned_registry)
    : base_(std::move(base)), params_(params),
      ownedRegistry_(std::move(owned_registry)),
      registry_(registry != nullptr ? registry : ownedRegistry_.get()),
      rng_(params.seed), step_(params.step)
{
    MEMTIER_ASSERT(base_ != nullptr, "autotune needs a base policy");
    MEMTIER_ASSERT(registry_ != nullptr, "autotune needs a registry");
    adoptBase();
    // The base installed itself during its own construction; the
    // wrapper re-installs on top so the kernel talks to the tuner.
    kernel.setTieringPolicy(this);
}

void
AutoTunePolicy::adoptBase()
{
    keys_ = registry_->keysOwnedBy(base_->name());
    initialDir_.reserve(keys_.size());
    // One seeded draw per key, in sorted key order: the only random
    // input the tuner ever consumes, so same-seed runs replay exactly.
    for (std::size_t i = 0; i < keys_.size(); ++i)
        initialDir_.push_back(rng_.nextBool(0.5) ? +1 : -1);
}

int
AutoTunePolicy::currentDir() const
{
    const int d0 = initialDir_[cursor_];
    return secondDir_ ? -d0 : d0;
}

void
AutoTunePolicy::advanceCursor()
{
    if (!secondDir_) {
        secondDir_ = true;  // Same key, opposite direction next.
        return;
    }
    secondDir_ = false;
    if (++cursor_ < keys_.size())
        return;
    cursor_ = 0;
    // A full sweep over every (key, direction) ended. A dry sweep
    // halves the step (successive halving); halving below the floor
    // restarts from the initial step until the restart budget is gone.
    if (!acceptsThisSweep_) {
        step_ /= 2.0;
        ++stat.halvings;
        if (step_ < params_.minStep) {
            if (restartsUsed_ < params_.maxRestarts) {
                ++restartsUsed_;
                ++stat.restarts;
                step_ = params_.step;
            } else {
                dormant_ = true;
            }
        }
    }
    acceptsThisSweep_ = false;
}

void
AutoTunePolicy::epochTick(Cycles now, const MetricsView &mv)
{
    ++stat.epochs;
    if (!haveLast_) {
        haveLast_ = true;
        lastView_ = mv;
        return;
    }
    const MetricsView d = mv.delta(lastView_);
    const Cycles elapsed = mv.now - lastView_.now;
    lastView_ = mv;
    if (d.accesses == 0 || elapsed == 0) {
        // Nothing ran this epoch (load phase barrier, drained
        // workload): no reward signal, judge nothing.
        ++stat.idleEpochs;
        return;
    }
    const double reward = static_cast<double>(d.accesses) /
                          static_cast<double>(elapsed);

    // Observe-only modes compute the reward and stop: the registry is
    // never touched, which keeps the run bit-identical to the bare
    // base policy (golden-tested).
    if (params_.maxSteps == 0 || dormant_ || keys_.empty())
        return;

    if (pending_) {
        // Measure epoch: the previous epoch ran with the proposal in
        // effect. Keep it only on a clear improvement.
        if (reward > baselineReward_ * (1.0 + params_.minGain)) {
            ++stat.accepted;
            acceptsThisSweep_ = true;
            baselineReward_ = reward;
            // Keep climbing the same key in the same direction.
        } else {
            registry_->set(pendingKey_, pendingOld_, now);
            ++stat.reverted;
            advanceCursor();
        }
        pending_ = false;
        return;
    }

    // Baseline epoch: refresh the reference reward, then propose one
    // relative step on the cursor tunable.
    baselineReward_ = reward;
    if (stat.applied >= params_.maxSteps)
        return;

    const std::string &key = keys_[cursor_];
    const TunableRegistry::Tunable *t = registry_->find(key);
    const double old = t->get();
    const int dir = currentDir();
    double proposed = old * (1.0 + dir * step_);
    if (t->integerValued &&
        std::floor(proposed + 0.5) == std::floor(old + 0.5)) {
        // Rounding would swallow the whole step; force a minimal move
        // so small integer tunables still get explored.
        proposed = old + dir;
    }
    const double applied = registry_->set(key, proposed, now);
    if (applied == old) {
        // Clamped back onto the current value: nothing to measure.
        advanceCursor();
        return;
    }
    pending_ = true;
    pendingKey_ = key;
    pendingOld_ = old;
    ++stat.applied;
}

std::vector<PolicyCounter>
AutoTunePolicy::snapshotStats() const
{
    std::vector<PolicyCounter> out = {
        {"tuner_epochs", stat.epochs},
        {"tuner_idle_epochs", stat.idleEpochs},
        {"tuner_applied", stat.applied},
        {"tuner_accepted", stat.accepted},
        {"tuner_reverted", stat.reverted},
        {"tuner_halvings", stat.halvings},
        {"tuner_restarts", stat.restarts},
    };
    const std::vector<PolicyCounter> base = base_->snapshotStats();
    out.insert(out.end(), base.begin(), base.end());
    // Effective values the tuner converged to, exported as fixed-point
    // milli-units so they ride the integer counter channel into CSVs.
    for (const std::string &key : keys_) {
        out.emplace_back("tuned_" + key + "_milli",
                         static_cast<std::uint64_t>(std::llround(
                             registry_->value(key) * 1000.0)));
    }
    return out;
}

std::vector<std::pair<std::string, std::string>>
AutoTunePolicy::effectiveTunables() const
{
    return registry_->effectiveFor(base_->name());
}

}  // namespace memtier

#include "policy/policy_registry.h"

#include <algorithm>

#include "base/logging.h"
#include "policy/autotune_policy.h"
#include "policy/exchange_policy.h"
#include "policy/static_policies.h"
#include "policy/tunable_registry.h"

namespace memtier {

namespace {

/**
 * Register every AutoNumaParams field of @p p as a live tunable.
 * AutoNuma lives below src/policy and cannot name the registry itself,
 * so the registration happens here; the setters it exposes restore
 * construction-equivalent state (threshold sync, token-bucket refill).
 */
void
registerAutoNumaTunables(AutoNuma &p, TunableRegistry &r)
{
    const char *owner = p.name();
    r.add({"scan_period_ms", "cycles between scan rounds (ms)", owner,
           0.05, 1000.0, false, /*rearmScan=*/true,
           [&p] { return cyclesToSeconds(p.config().scanPeriod) * 1e3; },
           [&p](double v) {
               p.setScanPeriod(secondsToCycles(v / 1000.0));
           }});
    r.add({"scan_pages", "pages marked PROT_NONE per scan round", owner,
           16.0, 4096.0, /*integerValued=*/true, false,
           [&p] {
               return static_cast<double>(p.config().scanPagesPerRound);
           },
           [&p](double v) {
               p.setScanPagesPerRound(static_cast<std::uint32_t>(v));
           }});
    r.add({"hot_threshold_ms",
           "initial hint-fault hotness threshold (ms)", owner, 0.01,
           1000.0, false, false,
           [&p] {
               return cyclesToSeconds(p.config().initialThreshold) * 1e3;
           },
           [&p](double v) {
               p.setHotThreshold(secondsToCycles(v / 1000.0));
           }});
    r.add({"threshold_min_ms", "lower clamp of the adaptive threshold",
           owner, 0.01, 100.0, false, false,
           [&p] {
               return cyclesToSeconds(p.config().thresholdMin) * 1e3;
           },
           [&p](double v) {
               p.setThresholdMin(secondsToCycles(v / 1000.0));
           }});
    r.add({"threshold_max_ms", "upper clamp of the adaptive threshold",
           owner, 1.0, 5000.0, false, false,
           [&p] {
               return cyclesToSeconds(p.config().thresholdMax) * 1e3;
           },
           [&p](double v) {
               p.setThresholdMax(secondsToCycles(v / 1000.0));
           }});
    r.add({"rate_limit_kib", "promotion rate limit (KiB per second)",
           owner, 64.0, 1048576.0, /*integerValued=*/true, false,
           [&p] {
               return static_cast<double>(
                   p.config().rateLimitBytesPerSec / kKiB);
           },
           [&p](double v) {
               p.setRateLimit(static_cast<std::uint64_t>(v) * kKiB);
           }});
    r.add({"adjust_period_ms", "threshold adjustment interval (ms)",
           owner, 0.1, 1000.0, false, false,
           [&p] {
               return cyclesToSeconds(p.config().adjustPeriod) * 1e3;
           },
           [&p](double v) {
               p.setAdjustPeriod(secondsToCycles(v / 1000.0));
           }});
    r.add({"failure_holdoff_ms",
           "promotion holdoff after a DRAM frame retirement (ms)", owner,
           0.0, 1000.0, false, false,
           [&p] {
               return cyclesToSeconds(p.config().failureHoldoff) * 1e3;
           },
           [&p](double v) {
               p.setFailureHoldoff(secondsToCycles(v / 1000.0));
           }});
}

/** Apply every CLI assignment through the registry's construction
 *  path (legacy parse semantics, no clamping). */
void
applyAssignments(const PolicyContext &ctx, TunableRegistry &reg)
{
    for (const auto &[key, value] : ctx.tunables.items())
        reg.setFromString(key, value);
}

/** ctx.registry when the caller wired one, else @p local. */
TunableRegistry &
pickRegistry(const PolicyContext &ctx, TunableRegistry &local)
{
    return ctx.registry != nullptr ? *ctx.registry : local;
}

/** Tuner meta-parameters ("autotune"'s own keys, never registered). */
const std::vector<std::string> kAutotuneKeys = {
    "base",     "epoch_ms",  "max_restarts", "max_steps",
    "min_gain", "min_step",  "seed",         "step"};

bool
isAutotuneKey(const std::string &key)
{
    return std::find(kAutotuneKeys.begin(), kAutotuneKeys.end(), key) !=
           kAutotuneKeys.end();
}

}  // namespace

PolicyRegistry::PolicyRegistry()
{
    add("autonuma",
        "AutoNUMA tiering (the paper's baseline): hint-fault driven "
        "promotion with adaptive threshold and rate limit; demotion "
        "through reclaim",
        {"scan_period_ms", "scan_pages", "hot_threshold_ms",
         "threshold_min_ms", "threshold_max_ms", "rate_limit_kib",
         "adjust_period_ms", "failure_holdoff_ms"},
        [](const PolicyContext &ctx) -> std::unique_ptr<TieringPolicy> {
            auto p = std::make_unique<AutoNuma>(ctx.kernel,
                                                ctx.autonumaDefaults);
            TunableRegistry local;
            TunableRegistry &reg = pickRegistry(ctx, local);
            registerAutoNumaTunables(*p, reg);
            applyAssignments(ctx, reg);
            return p;
        });

    add("exchange",
        "AutoTiering-style hot/cold page exchange: hot NVM pages swap "
        "with the coldest DRAM page directly, bypassing reclaim",
        {"scan_period_ms", "scan_pages", "hot_threshold_ms",
         "exchange_batch", "protect_ms", "failure_holdoff_ms"},
        [](const PolicyContext &ctx) -> std::unique_ptr<TieringPolicy> {
            ExchangePolicyParams ep;
            // Inherit the machine's scan cadence so exchange and
            // autonuma see the same page-access information by default.
            ep.scanPeriod = ctx.autonumaDefaults.scanPeriod;
            ep.scanPagesPerRound = ctx.autonumaDefaults.scanPagesPerRound;
            ep.hotThreshold = ctx.autonumaDefaults.initialThreshold;
            auto p = std::make_unique<ExchangePolicy>(ctx.kernel, ep);
            TunableRegistry local;
            TunableRegistry &reg = pickRegistry(ctx, local);
            p->registerTunables(reg);
            applyAssignments(ctx, reg);
            return p;
        });

    add("dram-only",
        "Static DRAM-first placement: pack DRAM to the last frame, "
        "overflow to NVM, never migrate",
        {},
        [](const PolicyContext &ctx) -> std::unique_ptr<TieringPolicy> {
            return std::make_unique<DramOnlyPolicy>(ctx.kernel);
        });

    add("interleave",
        "Static page-interleaved placement across DRAM and NVM "
        "(MPOL_INTERLEAVE), never migrate",
        {"dram_stride", "nvm_stride"},
        [](const PolicyContext &ctx) -> std::unique_ptr<TieringPolicy> {
            auto p = std::make_unique<InterleavePolicy>(ctx.kernel);
            TunableRegistry local;
            TunableRegistry &reg = pickRegistry(ctx, local);
            p->registerTunables(reg);
            applyAssignments(ctx, reg);
            return p;
        });

    add("autotune",
        "online hill-climbing tuner: wraps a base policy and adjusts "
        "its registered tunables per epoch, with revert-on-regression "
        "and successive-halving restarts",
        kAutotuneKeys,
        [](const PolicyContext &ctx) -> std::unique_ptr<TieringPolicy> {
            const PolicyTunables &t = ctx.tunables;
            const std::string baseName = t.getString("base", "autonuma");
            if (baseName == "autotune")
                fatal("autotune cannot wrap itself");

            AutoTuneParams p;
            p.epochPeriod = t.getMillis("epoch_ms", p.epochPeriod);
            p.seed = t.getU64("seed", p.seed);
            p.step = t.getDouble("step", p.step);
            p.minStep = t.getDouble("min_step", p.minStep);
            p.minGain = t.getDouble("min_gain", p.minGain);
            p.maxSteps = t.getU64("max_steps", p.maxSteps);
            p.maxRestarts = t.getU64("max_restarts", p.maxRestarts);

            // Standalone construction (no engine-provided registry)
            // still works: the wrapper owns a private registry that the
            // base registers into.
            std::unique_ptr<TunableRegistry> owned;
            TunableRegistry *reg = ctx.registry;
            if (reg == nullptr) {
                owned = std::make_unique<TunableRegistry>();
                reg = owned.get();
            }

            PolicyContext basectx{ctx.kernel, ctx.autonumaDefaults,
                                  PolicyTunables{}, reg};
            for (const auto &[key, value] : t.items()) {
                if (!isAutotuneKey(key))
                    basectx.tunables.set(key, value);
            }
            std::string err;
            auto base = PolicyRegistry::instance().create(baseName,
                                                          basectx, &err);
            if (base == nullptr)
                fatal("autotune: %s", err.c_str());
            return std::make_unique<AutoTunePolicy>(
                ctx.kernel, std::move(base), p, ctx.registry,
                std::move(owned));
        },
        [](const PolicyTunables &t) {
            // Accept the tuner's own keys plus whatever the selected
            // base policy accepts, so unknown-key rejection still
            // works through the wrapper.
            std::vector<std::string> keys = kAutotuneKeys;
            const std::vector<std::string> base =
                PolicyRegistry::instance().tunableKeys(
                    t.getString("base", "autonuma"));
            keys.insert(keys.end(), base.begin(), base.end());
            return keys;
        });
}

PolicyRegistry &
PolicyRegistry::instance()
{
    static PolicyRegistry registry;
    return registry;
}

void
PolicyRegistry::add(const std::string &name,
                    const std::string &description,
                    std::vector<std::string> tunable_keys,
                    PolicyFactory factory, TunableKeysFn keys_fn)
{
    MEMTIER_ASSERT(find(name) == nullptr, "duplicate policy name");
    entries.push_back({name, description, std::move(tunable_keys),
                       std::move(factory), std::move(keys_fn)});
}

const PolicyRegistry::Entry *
PolicyRegistry::find(const std::string &name) const
{
    for (const Entry &e : entries) {
        if (e.name == name)
            return &e;
    }
    return nullptr;
}

std::unique_ptr<TieringPolicy>
PolicyRegistry::create(const std::string &name, const PolicyContext &ctx,
                       std::string *error) const
{
    const Entry *entry = find(name);
    if (entry == nullptr) {
        if (error != nullptr) {
            std::string known;
            for (const std::string &n : names())
                known += (known.empty() ? "" : ", ") + n;
            *error = "unknown policy '" + name + "' (available: " +
                     known + ")";
        }
        return nullptr;
    }
    const std::vector<std::string> allowed =
        entry->keysFn ? entry->keysFn(ctx.tunables) : entry->tunableKeys;
    const std::vector<std::string> unknown =
        ctx.tunables.unknownKeys(allowed);
    if (!unknown.empty()) {
        if (error != nullptr) {
            *error = "policy '" + name +
                     "' does not understand tunable '" + unknown.front() +
                     "'";
        }
        return nullptr;
    }
    return entry->factory(ctx);
}

bool
PolicyRegistry::contains(const std::string &name) const
{
    return find(name) != nullptr;
}

std::vector<std::string>
PolicyRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(entries.size());
    for (const Entry &e : entries)
        out.push_back(e.name);
    std::sort(out.begin(), out.end());
    return out;
}

std::string
PolicyRegistry::description(const std::string &name) const
{
    const Entry *entry = find(name);
    return entry != nullptr ? entry->description : "";
}

std::vector<std::string>
PolicyRegistry::tunableKeys(const std::string &name) const
{
    const Entry *entry = find(name);
    return entry != nullptr ? entry->tunableKeys
                            : std::vector<std::string>{};
}

}  // namespace memtier

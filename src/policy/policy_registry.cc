#include "policy/policy_registry.h"

#include <algorithm>

#include "base/logging.h"
#include "policy/exchange_policy.h"
#include "policy/static_policies.h"

namespace memtier {

namespace {

/** AutoNumaParams = machine defaults overridden by the tunables map. */
AutoNumaParams
autonumaParams(const PolicyContext &ctx)
{
    AutoNumaParams p = ctx.autonumaDefaults;
    const PolicyTunables &t = ctx.tunables;
    p.scanPeriod = t.getMillis("scan_period_ms", p.scanPeriod);
    p.scanPagesPerRound = static_cast<std::uint32_t>(
        t.getU64("scan_pages", p.scanPagesPerRound));
    p.initialThreshold = t.getMillis("hot_threshold_ms",
                                     p.initialThreshold);
    p.thresholdMin = t.getMillis("threshold_min_ms", p.thresholdMin);
    p.thresholdMax = t.getMillis("threshold_max_ms", p.thresholdMax);
    p.rateLimitBytesPerSec =
        t.has("rate_limit_kib")
            ? t.getU64("rate_limit_kib", 0) * kKiB
            : p.rateLimitBytesPerSec;
    p.adjustPeriod = t.getMillis("adjust_period_ms", p.adjustPeriod);
    p.failureHoldoff = t.getMillis("failure_holdoff_ms",
                                   p.failureHoldoff);
    return p;
}

ExchangePolicyParams
exchangeParams(const PolicyContext &ctx)
{
    ExchangePolicyParams p;
    // Inherit the machine's scan cadence so exchange and autonuma see
    // the same page-access information by default.
    p.scanPeriod = ctx.autonumaDefaults.scanPeriod;
    p.scanPagesPerRound = ctx.autonumaDefaults.scanPagesPerRound;
    p.hotThreshold = ctx.autonumaDefaults.initialThreshold;

    const PolicyTunables &t = ctx.tunables;
    p.scanPeriod = t.getMillis("scan_period_ms", p.scanPeriod);
    p.scanPagesPerRound = static_cast<std::uint32_t>(
        t.getU64("scan_pages", p.scanPagesPerRound));
    p.hotThreshold = t.getMillis("hot_threshold_ms", p.hotThreshold);
    p.exchangeBatch = static_cast<std::uint32_t>(
        t.getU64("exchange_batch", p.exchangeBatch));
    p.protectWindow = t.getMillis("protect_ms", p.protectWindow);
    p.failureHoldoff = t.getMillis("failure_holdoff_ms",
                                   p.failureHoldoff);
    return p;
}

}  // namespace

PolicyRegistry::PolicyRegistry()
{
    add("autonuma",
        "AutoNUMA tiering (the paper's baseline): hint-fault driven "
        "promotion with adaptive threshold and rate limit; demotion "
        "through reclaim",
        {"scan_period_ms", "scan_pages", "hot_threshold_ms",
         "threshold_min_ms", "threshold_max_ms", "rate_limit_kib",
         "adjust_period_ms", "failure_holdoff_ms"},
        [](const PolicyContext &ctx) -> std::unique_ptr<TieringPolicy> {
            return std::make_unique<AutoNuma>(ctx.kernel,
                                              autonumaParams(ctx));
        });

    add("exchange",
        "AutoTiering-style hot/cold page exchange: hot NVM pages swap "
        "with the coldest DRAM page directly, bypassing reclaim",
        {"scan_period_ms", "scan_pages", "hot_threshold_ms",
         "exchange_batch", "protect_ms", "failure_holdoff_ms"},
        [](const PolicyContext &ctx) -> std::unique_ptr<TieringPolicy> {
            return std::make_unique<ExchangePolicy>(ctx.kernel,
                                                    exchangeParams(ctx));
        });

    add("dram-only",
        "Static DRAM-first placement: pack DRAM to the last frame, "
        "overflow to NVM, never migrate",
        {},
        [](const PolicyContext &ctx) -> std::unique_ptr<TieringPolicy> {
            return std::make_unique<DramOnlyPolicy>(ctx.kernel);
        });

    add("interleave",
        "Static page-interleaved placement across DRAM and NVM "
        "(MPOL_INTERLEAVE), never migrate",
        {"dram_stride", "nvm_stride"},
        [](const PolicyContext &ctx) -> std::unique_ptr<TieringPolicy> {
            return std::make_unique<InterleavePolicy>(
                ctx.kernel,
                static_cast<std::uint32_t>(
                    ctx.tunables.getU64("dram_stride", 1)),
                static_cast<std::uint32_t>(
                    ctx.tunables.getU64("nvm_stride", 1)));
        });
}

PolicyRegistry &
PolicyRegistry::instance()
{
    static PolicyRegistry registry;
    return registry;
}

void
PolicyRegistry::add(const std::string &name,
                    const std::string &description,
                    std::vector<std::string> tunable_keys,
                    PolicyFactory factory)
{
    MEMTIER_ASSERT(find(name) == nullptr, "duplicate policy name");
    entries.push_back(
        {name, description, std::move(tunable_keys), std::move(factory)});
}

const PolicyRegistry::Entry *
PolicyRegistry::find(const std::string &name) const
{
    for (const Entry &e : entries) {
        if (e.name == name)
            return &e;
    }
    return nullptr;
}

std::unique_ptr<TieringPolicy>
PolicyRegistry::create(const std::string &name, const PolicyContext &ctx,
                       std::string *error) const
{
    const Entry *entry = find(name);
    if (entry == nullptr) {
        if (error != nullptr) {
            std::string known;
            for (const std::string &n : names())
                known += (known.empty() ? "" : ", ") + n;
            *error = "unknown policy '" + name + "' (available: " +
                     known + ")";
        }
        return nullptr;
    }
    const std::vector<std::string> unknown =
        ctx.tunables.unknownKeys(entry->tunableKeys);
    if (!unknown.empty()) {
        if (error != nullptr) {
            *error = "policy '" + name +
                     "' does not understand tunable '" + unknown.front() +
                     "'";
        }
        return nullptr;
    }
    return entry->factory(ctx);
}

bool
PolicyRegistry::contains(const std::string &name) const
{
    return find(name) != nullptr;
}

std::vector<std::string>
PolicyRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(entries.size());
    for (const Entry &e : entries)
        out.push_back(e.name);
    std::sort(out.begin(), out.end());
    return out;
}

std::string
PolicyRegistry::description(const std::string &name) const
{
    const Entry *entry = find(name);
    return entry != nullptr ? entry->description : "";
}

std::vector<std::string>
PolicyRegistry::tunableKeys(const std::string &name) const
{
    const Entry *entry = find(name);
    return entry != nullptr ? entry->tunableKeys
                            : std::vector<std::string>{};
}

}  // namespace memtier

/**
 * @file
 * String-keyed tunables map for the policy registry: the CLI/config
 * surface is "--tunable key=value" assignments, each policy declares
 * which keys it understands, and the typed getters parse values on
 * demand ("From Good to Great" shows the tunables dominate outcomes,
 * so they must be sweepable without recompiling).
 */

#ifndef MEMTIER_POLICY_TUNABLES_H_
#define MEMTIER_POLICY_TUNABLES_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "base/types.h"

namespace memtier {

/** Ordered key -> value-string map of policy tunables. */
class PolicyTunables
{
  public:
    /**
     * Parse one "key=value" assignment into the map. Malformed input is
     * a hard error: no '=', an empty key, an empty value ("key=") and a
     * duplicate key across repeated assignments all fail (a silently
     * dropped or overwritten tunable is how sweep results lie).
     *
     * @param assignment the "key=value" string.
     * @param error receives a human-readable reason on failure; may be
     *        nullptr.
     * @return false when @p assignment was rejected.
     */
    bool parseAssignment(const std::string &assignment,
                         std::string *error = nullptr);

    /** Set @p key to @p value directly. */
    void set(const std::string &key, const std::string &value);

    /** True when @p key is present. */
    bool has(const std::string &key) const;

    /** Number of tunables set. */
    std::size_t size() const { return values.size(); }

    /** Keys present but not in @p allowed (registry validation). */
    std::vector<std::string>
    unknownKeys(const std::vector<std::string> &allowed) const;

    /** All assignments as "k=v" strings, in key order (CSV labels). */
    std::vector<std::string> assignments() const;

    /** All {key, value} pairs, in key order. */
    std::vector<std::pair<std::string, std::string>> items() const;

    // -- Typed getters (fatal on an unparseable value) ----------------

    /** Raw string value of @p key, or @p fallback when absent. */
    std::string getString(const std::string &key,
                          const std::string &fallback) const;

    /** Unsigned integer value of @p key, or @p fallback when absent. */
    std::uint64_t getU64(const std::string &key,
                         std::uint64_t fallback) const;

    /** Floating-point value of @p key, or @p fallback when absent. */
    double getDouble(const std::string &key, double fallback) const;

    /** Value of @p key in milliseconds converted to cycles, or
     *  @p fallback (already in cycles) when absent. */
    Cycles getMillis(const std::string &key, Cycles fallback) const;

  private:
    std::map<std::string, std::string> values;
};

}  // namespace memtier

#endif  // MEMTIER_POLICY_TUNABLES_H_

#include "policy/exchange_policy.h"

#include <algorithm>

#include "policy/tunable_registry.h"

namespace memtier {

ExchangePolicy::ExchangePolicy(Kernel &kernel,
                               const ExchangePolicyParams &params)
    : kernel(kernel), cfg(params)
{
    kernel.setTieringPolicy(this);
}

void
ExchangePolicy::scanTick(Cycles now)
{
    batchUsed = 0;  // A fresh exchange budget every scan period.

    if (kernel.migrationsPaused(now)) {
        ++stat.scansPaused;
        return;
    }
    const AddressSpace &space = kernel.addressSpace();
    if (space.vmas().empty())
        return;

    std::uint32_t marked = 0;
    // Same walk as the AutoNUMA scanner: resume from the cursor, wrap
    // once, skip page-cache and mbind-pinned regions.
    for (int pass = 0; pass < 2 && marked < cfg.scanPagesPerRound;
         ++pass) {
        for (const auto &[start, vma] : space.vmas()) {
            if (marked >= cfg.scanPagesPerRound)
                break;
            if (vma.end <= scanCursor)
                continue;
            if (vma.pageCache || vma.policy.pinned())
                continue;
            PageNum vpn = pageOf(std::max(vma.start, scanCursor));
            const PageNum end_vpn = pageOf(vma.end);
            for (; vpn < end_vpn && marked < cfg.scanPagesPerRound;
                 ++vpn) {
                // PMD mappings are marked once at the PMD entry (same
                // PMD-granularity model as the AutoNUMA scanner).
                if (PageMeta *hm = kernel.hugeMetaMutable(vpn)) {
                    const PageNum base = hugeBaseOf(vpn);
                    if (hm->present && !hm->protNone && !hm->pinned) {
                        hm->protNone = true;
                        hm->scanTime = now;
                        kernel.shootdownHuge(base);
                        marked += kPagesPerHuge;
                        stat.pagesScanned += kPagesPerHuge;
                    }
                    vpn = base + kPagesPerHuge - 1;
                    continue;
                }
                PageMeta *meta = kernel.pageMetaMutable(vpn);
                if (meta == nullptr || !meta->present || meta->protNone)
                    continue;
                meta->protNone = true;
                meta->scanTime = now;
                kernel.shootdown(vpn);
                ++marked;
                ++stat.pagesScanned;
            }
            scanCursor = pageBase(vpn);
        }
        if (marked < cfg.scanPagesPerRound)
            scanCursor = 0;  // Wrap to the start of the address space.
    }

    // Expire stale protection entries so the map stays bounded.
    for (auto it = protectedUntil.begin(); it != protectedUntil.end();) {
        if (it->second <= now)
            it = protectedUntil.erase(it);
        else
            ++it;
    }
}

Cycles
ExchangePolicy::onHintFault(PageNum vpn, Cycles now, PageMeta &meta)
{
    ++stat.hintFaults;
    if (meta.node != MemNode::NVM)
        return 0;
    ++stat.hintFaultsNvm;

    if (now < promotionHoldUntil) {
        // A DRAM frame was just retired: neither a promotion nor an
        // exchange should push more pages into the shrinking tier until
        // reclaim has adjusted to the reduced capacity.
        ++stat.promotionsHeldOff;
        return 0;
    }

    const Cycles latency = now >= meta.scanTime ? now - meta.scanTime : 0;
    if (latency >= cfg.hotThreshold) {
        ++stat.rejectedCold;
        return 0;
    }

    // PMD mappings take the plain promotion path only: the pairwise
    // 4 KiB exchange cannot host a 2 MiB range, and the kernel demand-
    // splits the mapping itself if no contiguous DRAM frame exists.
    if (meta.huge) {
        const PageNum base = hugeBaseOf(vpn);
        const Cycles cost = kernel.promotePage(vpn, now);
        if (cost > 0) {
            ++stat.promotions;
            protectedUntil[base] = now + cfg.protectWindow;
        }
        return cost;
    }

    // Free-capacity fast path: plain promotion, like AutoNUMA.
    if (kernel.dramHasFreeCapacity()) {
        const Cycles cost = kernel.promotePage(vpn, now);
        if (cost > 0) {
            ++stat.promotions;
            protectedUntil[vpn] = now + cfg.protectWindow;
        }
        return cost;
    }

    // DRAM full: exchange with the coldest DRAM page instead of waiting
    // for reclaim to demote one (the AutoTiering CPM/OPM fast path).
    if (batchUsed >= cfg.exchangeBatch) {
        ++stat.rejectedBatch;
        return 0;
    }
    const PageNum victim = kernel.pickExchangeVictim(now);
    if (victim == kNoPage) {
        ++stat.noVictim;
        return 0;
    }
    const Cycles cost = kernel.exchangePages(vpn, victim, now);
    if (cost > 0) {
        ++stat.exchanges;
        ++batchUsed;
        protectedUntil[vpn] = now + cfg.protectWindow;
        protectedUntil.erase(victim);
    } else {
        ++stat.noVictim;
    }
    return cost;
}

DemotionDecision
ExchangePolicy::onDemotionRequest(PageNum vpn, Cycles now,
                                  const PageMeta &meta, bool direct)
{
    (void)meta;
    (void)direct;
    const auto it = protectedUntil.find(vpn);
    if (it != protectedUntil.end() && it->second > now) {
        ++stat.demotionsVetoed;
        return DemotionDecision::veto();
    }
    return DemotionDecision::allow();
}

void
ExchangePolicy::onMemoryFailure(PageNum vpn, MemNode node,
                                bool uncorrectable, Cycles now)
{
    (void)uncorrectable;
    ++stat.memoryFailures;
    // The retired frame's page is gone or moved; drop any protection
    // entry so the map does not pin a recycled virtual page number.
    protectedUntil.erase(vpn);
    if (node == MemNode::DRAM)
        promotionHoldUntil = std::max(promotionHoldUntil,
                                      now + cfg.failureHoldoff);
}

std::vector<PolicyCounter>
ExchangePolicy::snapshotStats() const
{
    return {
        {"pages_scanned", stat.pagesScanned},
        {"hint_faults", stat.hintFaults},
        {"hint_faults_nvm", stat.hintFaultsNvm},
        {"promotions", stat.promotions},
        {"exchanges", stat.exchanges},
        {"rejected_cold", stat.rejectedCold},
        {"rejected_batch", stat.rejectedBatch},
        {"no_victim", stat.noVictim},
        {"demotions_vetoed", stat.demotionsVetoed},
        {"scans_paused", stat.scansPaused},
        {"memory_failures", stat.memoryFailures},
        {"promotions_held_off", stat.promotionsHeldOff},
    };
}

void
ExchangePolicy::registerTunables(TunableRegistry &registry)
{
    registry.add({"scan_period_ms", "cycles between scan rounds (ms)",
                  name(), 0.05, 1000.0, false, /*rearmScan=*/true,
                  [this] { return cyclesToSeconds(cfg.scanPeriod) * 1e3; },
                  [this](double v) {
                      cfg.scanPeriod = secondsToCycles(v / 1000.0);
                  }});
    registry.add({"scan_pages", "pages marked PROT_NONE per scan round",
                  name(), 16.0, 4096.0, /*integerValued=*/true, false,
                  [this] {
                      return static_cast<double>(cfg.scanPagesPerRound);
                  },
                  [this](double v) {
                      cfg.scanPagesPerRound =
                          static_cast<std::uint32_t>(v);
                  }});
    registry.add({"hot_threshold_ms",
                  "fixed hint-fault hotness threshold (ms)", name(), 0.01,
                  1000.0, false, false,
                  [this] {
                      return cyclesToSeconds(cfg.hotThreshold) * 1e3;
                  },
                  [this](double v) {
                      cfg.hotThreshold = secondsToCycles(v / 1000.0);
                  }});
    registry.add({"exchange_batch", "exchanges allowed per scan period",
                  name(), 1.0, 4096.0, /*integerValued=*/true, false,
                  [this] {
                      return static_cast<double>(cfg.exchangeBatch);
                  },
                  [this](double v) {
                      cfg.exchangeBatch = static_cast<std::uint32_t>(v);
                  }});
    registry.add({"protect_ms",
                  "reclaim protection window for exchanged-in pages (ms)",
                  name(), 0.0, 1000.0, false, false,
                  [this] {
                      return cyclesToSeconds(cfg.protectWindow) * 1e3;
                  },
                  [this](double v) {
                      cfg.protectWindow = secondsToCycles(v / 1000.0);
                  }});
    registry.add({"failure_holdoff_ms",
                  "promotion holdoff after a DRAM frame retirement (ms)",
                  name(), 0.0, 1000.0, false, false,
                  [this] {
                      return cyclesToSeconds(cfg.failureHoldoff) * 1e3;
                  },
                  [this](double v) {
                      cfg.failureHoldoff = secondsToCycles(v / 1000.0);
                  }});
}

}  // namespace memtier

#include "policy/tunables.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>

#include "base/logging.h"

namespace memtier {

bool
PolicyTunables::parseAssignment(const std::string &assignment,
                                std::string *error)
{
    const std::size_t eq = assignment.find('=');
    if (eq == std::string::npos || eq == 0) {
        if (error != nullptr)
            *error = "expected key=value";
        return false;
    }
    const std::string key = assignment.substr(0, eq);
    if (eq + 1 >= assignment.size()) {
        if (error != nullptr)
            *error = "empty value for tunable '" + key + "'";
        return false;
    }
    if (values.count(key) != 0) {
        if (error != nullptr) {
            *error = "duplicate tunable '" + key + "' (already set to '" +
                     values[key] + "')";
        }
        return false;
    }
    values[key] = assignment.substr(eq + 1);
    return true;
}

void
PolicyTunables::set(const std::string &key, const std::string &value)
{
    values[key] = value;
}

bool
PolicyTunables::has(const std::string &key) const
{
    return values.count(key) != 0;
}

std::vector<std::string>
PolicyTunables::unknownKeys(const std::vector<std::string> &allowed) const
{
    std::vector<std::string> unknown;
    for (const auto &[key, value] : values) {
        (void)value;
        if (std::find(allowed.begin(), allowed.end(), key) ==
            allowed.end()) {
            unknown.push_back(key);
        }
    }
    return unknown;
}

std::vector<std::string>
PolicyTunables::assignments() const
{
    std::vector<std::string> out;
    out.reserve(values.size());
    for (const auto &[key, value] : values)
        out.push_back(key + "=" + value);
    return out;
}

std::vector<std::pair<std::string, std::string>>
PolicyTunables::items() const
{
    std::vector<std::pair<std::string, std::string>> out;
    out.reserve(values.size());
    for (const auto &[key, value] : values)
        out.emplace_back(key, value);
    return out;
}

std::string
PolicyTunables::getString(const std::string &key,
                          const std::string &fallback) const
{
    const auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
}

std::uint64_t
PolicyTunables::getU64(const std::string &key,
                       std::uint64_t fallback) const
{
    const auto it = values.find(key);
    if (it == values.end())
        return fallback;
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(it->second.c_str(), &end, 0);
    if (errno != 0 || end == it->second.c_str() || *end != '\0') {
        fatal("tunable %s=%s is not an unsigned integer", key.c_str(),
              it->second.c_str());
    }
    return v;
}

double
PolicyTunables::getDouble(const std::string &key, double fallback) const
{
    const auto it = values.find(key);
    if (it == values.end())
        return fallback;
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (errno != 0 || end == it->second.c_str() || *end != '\0') {
        fatal("tunable %s=%s is not a number", key.c_str(),
              it->second.c_str());
    }
    return v;
}

Cycles
PolicyTunables::getMillis(const std::string &key, Cycles fallback) const
{
    if (!has(key))
        return fallback;
    return secondsToCycles(getDouble(key, 0.0) / 1000.0);
}

}  // namespace memtier

/**
 * @file
 * Static placement baselines from the paper's comparison axis: first
 * touch decides residence once and nothing ever migrates. "dram-only"
 * packs DRAM to the last frame before overflowing to NVM;
 * "interleave" stripes pages across the tiers MPOL_INTERLEAVE-style.
 * Both veto reclaim demotion, so the placement is truly static and the
 * run isolates the cost/benefit of migration machinery.
 */

#ifndef MEMTIER_POLICY_STATIC_POLICIES_H_
#define MEMTIER_POLICY_STATIC_POLICIES_H_

#include <cstdint>

#include "os/kernel.h"
#include "os/kernel_hooks.h"

namespace memtier {

/** Counters shared by the static baselines. */
struct StaticPolicyStats
{
    std::uint64_t firstTouchDram = 0;
    std::uint64_t firstTouchNvm = 0;
    std::uint64_t demotionsVetoed = 0;
};

/** Common base: no scanning, no promotion, no demotion. */
class StaticPolicy : public TieringPolicy
{
  public:
    /** Hint faults never happen (no scanner marks pages); no-op. */
    Cycles
    onHintFault(PageNum vpn, Cycles now, PageMeta &meta) override
    {
        (void)vpn;
        (void)now;
        (void)meta;
        return 0;
    }

    /** Static placement: reclaim must not undo it. */
    DemotionDecision
    onDemotionRequest(PageNum vpn, Cycles now, const PageMeta &meta,
                      bool direct) override
    {
        (void)vpn;
        (void)now;
        (void)meta;
        (void)direct;
        ++stat.demotionsVetoed;
        return DemotionDecision::veto();
    }

    std::vector<PolicyCounter> snapshotStats() const override;

    /** Policy statistics. */
    const StaticPolicyStats &stats() const { return stat; }

  protected:
    StaticPolicyStats stat;
};

/**
 * DRAM-first static placement: every page lands on DRAM while a frame
 * exists (ignoring the allocation watermark), then overflows to NVM.
 */
class DramOnlyPolicy : public StaticPolicy
{
  public:
    /** @param kernel the kernel whose placement this policy steers. */
    explicit DramOnlyPolicy(Kernel &kernel);

    const char *name() const override { return "dram-only"; }

    MemNode onFirstTouchAlloc(PageNum vpn, Cycles now,
                              MemNode chosen) override;

  private:
    Kernel &kernel;
};

/**
 * Page-granular interleave across the tiers, weighted by a
 * DRAM:NVM page ratio (default 1:1, plain MPOL_INTERLEAVE).
 */
class InterleavePolicy : public StaticPolicy
{
  public:
    /**
     * @param kernel the kernel whose placement this policy steers.
     * @param dram_stride pages sent to DRAM per interleave period.
     * @param nvm_stride pages sent to NVM per interleave period.
     */
    InterleavePolicy(Kernel &kernel, std::uint32_t dram_stride = 1,
                     std::uint32_t nvm_stride = 1);

    const char *name() const override { return "interleave"; }

    MemNode onFirstTouchAlloc(PageNum vpn, Cycles now,
                              MemNode chosen) override;

    /** Register the interleave ratio as live tunables. */
    void registerTunables(TunableRegistry &registry) override;

  private:
    Kernel &kernel;
    std::uint32_t dramStride;
    std::uint32_t nvmStride;
    std::uint64_t counter = 0;  ///< Position within the period.
};

}  // namespace memtier

#endif  // MEMTIER_POLICY_STATIC_POLICIES_H_

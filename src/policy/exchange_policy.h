/**
 * @file
 * AutoTiering-style hot/cold page exchange policy (Kim et al., ATC'21:
 * "Exploring the Design Space of Page Management for Multi-Tiered
 * Memory Systems"; see /root/related/Sys-KU__AutoTiering).
 *
 * Like AutoNUMA it scans VMAs, marks pages PROT_NONE and classifies
 * pages by hint-fault latency. Unlike AutoNUMA it does not wait for
 * reclaim to make DRAM room: when a hot NVM page faults and DRAM is
 * full, it *exchanges* the page with the coldest DRAM page in one
 * operation (the CPM/OPM fast path), bypassing the kswapd/direct
 * reclaim demotion path entirely. Recently exchanged-in pages are
 * protected from reclaim demotion for a configurable window so the
 * exchange is not immediately undone (thrash guard).
 */

#ifndef MEMTIER_POLICY_EXCHANGE_POLICY_H_
#define MEMTIER_POLICY_EXCHANGE_POLICY_H_

#include <cstdint>
#include <unordered_map>

#include "os/kernel.h"
#include "os/kernel_hooks.h"

namespace memtier {

/** Tunables of the exchange policy. */
struct ExchangePolicyParams
{
    /** Cycles between scan rounds. */
    Cycles scanPeriod = secondsToCycles(0.01);

    /** Pages marked PROT_NONE per scan round. */
    std::uint32_t scanPagesPerRound = 256;

    /** Fixed hot threshold for the hint fault latency. */
    Cycles hotThreshold = secondsToCycles(0.05);

    /** Exchanges allowed per scan period (the CPM batch limit). */
    std::uint32_t exchangeBatch = 64;

    /** Reclaim-demotion protection window for exchanged-in pages. */
    Cycles protectWindow = secondsToCycles(0.05);

    /** Promotion/exchange holdoff after a DRAM frame retirement. */
    Cycles failureHoldoff = secondsToCycles(0.01);
};

/** Observable statistics of the exchange policy. */
struct ExchangePolicyStats
{
    std::uint64_t pagesScanned = 0;
    std::uint64_t hintFaults = 0;
    std::uint64_t hintFaultsNvm = 0;
    std::uint64_t promotions = 0;        ///< Free-capacity fast path.
    std::uint64_t exchanges = 0;         ///< Direct hot/cold swaps.
    std::uint64_t rejectedCold = 0;      ///< Above the hot threshold.
    std::uint64_t rejectedBatch = 0;     ///< Batch budget exhausted.
    std::uint64_t noVictim = 0;          ///< No DRAM victim available.
    std::uint64_t demotionsVetoed = 0;   ///< Protected-page reclaim hits.
    std::uint64_t scansPaused = 0;       ///< Rounds skipped, breaker open.
    std::uint64_t memoryFailures = 0;    ///< Frames retired under us.
    std::uint64_t promotionsHeldOff = 0; ///< Skipped in the holdoff.
};

/** The hot/cold exchange policy. */
class ExchangePolicy : public TieringPolicy
{
  public:
    /**
     * @param kernel the kernel whose pages this policy manages.
     * @param params policy tunables.
     */
    ExchangePolicy(Kernel &kernel, const ExchangePolicyParams &params);

    const char *name() const override { return "exchange"; }

    /** Mark the next window of pages PROT_NONE (AutoNUMA-style walk). */
    void scanTick(Cycles now) override;

    Cycles scanPeriod() const override { return cfg.scanPeriod; }

    /** Hint fault: promote into free DRAM, or exchange when full. */
    Cycles onHintFault(PageNum vpn, Cycles now, PageMeta &meta) override;

    /** Protect recently exchanged-in pages from reclaim demotion. */
    DemotionDecision onDemotionRequest(PageNum vpn, Cycles now,
                                       const PageMeta &meta,
                                       bool direct) override;

    /** A frame retired: hold off DRAM-bound traffic for a window. */
    void onMemoryFailure(PageNum vpn, MemNode node, bool uncorrectable,
                         Cycles now) override;

    std::vector<PolicyCounter> snapshotStats() const override;

    /** Register every ExchangePolicyParams field as a live tunable. */
    void registerTunables(TunableRegistry &registry) override;

    /** Policy statistics. */
    const ExchangePolicyStats &stats() const { return stat; }

    /** Current parameter block (live values, after any tuning). */
    const ExchangePolicyParams &config() const { return cfg; }

  private:
    Kernel &kernel;
    ExchangePolicyParams cfg;
    ExchangePolicyStats stat;

    Addr scanCursor = 0;          ///< Resume address for the VMA walk.
    std::uint32_t batchUsed = 0;  ///< Exchanges spent this scan period.
    Cycles promotionHoldUntil = 0;  ///< Holdoff after a DRAM retirement.

    /** Exchange-in time of pages under demotion protection. */
    std::unordered_map<PageNum, Cycles> protectedUntil;
};

}  // namespace memtier

#endif  // MEMTIER_POLICY_EXCHANGE_POLICY_H_

#include "policy/tunable_registry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "base/logging.h"
#include "policy/tunables.h"

namespace memtier {

void
TunableRegistry::add(Tunable t)
{
    MEMTIER_ASSERT(!t.key.empty(), "tunable needs a key");
    MEMTIER_ASSERT(t.get != nullptr && t.apply != nullptr,
                   "tunable needs get and apply accessors");
    MEMTIER_ASSERT(t.minValue <= t.maxValue,
                   "tunable clamp range is inverted");
    if (tunables_.count(t.key) != 0)
        fatal("duplicate tunable key '%s'", t.key.c_str());
    tunables_.emplace(t.key, std::move(t));
}

bool
TunableRegistry::contains(const std::string &key) const
{
    return tunables_.count(key) != 0;
}

const TunableRegistry::Tunable *
TunableRegistry::find(const std::string &key) const
{
    const auto it = tunables_.find(key);
    return it == tunables_.end() ? nullptr : &it->second;
}

std::vector<std::string>
TunableRegistry::keys() const
{
    std::vector<std::string> out;
    out.reserve(tunables_.size());
    for (const auto &[key, t] : tunables_) {
        (void)t;
        out.push_back(key);
    }
    return out;  // std::map iteration order is already sorted.
}

std::vector<std::string>
TunableRegistry::keysOwnedBy(const std::string &owner) const
{
    std::vector<std::string> out;
    for (const auto &[key, t] : tunables_) {
        if (t.owner == owner)
            out.push_back(key);
    }
    return out;
}

double
TunableRegistry::value(const std::string &key) const
{
    const Tunable *t = find(key);
    if (t == nullptr)
        fatal("unknown tunable '%s'", key.c_str());
    return t->get();
}

double
TunableRegistry::set(const std::string &key, double v, Cycles now)
{
    const auto it = tunables_.find(key);
    if (it == tunables_.end())
        fatal("unknown tunable '%s'", key.c_str());
    Tunable &t = it->second;

    double clamped = std::min(std::max(v, t.minValue), t.maxValue);
    if (t.integerValued)
        clamped = std::floor(clamped + 0.5);
    if (clamped == t.get())
        return clamped;  // No-op proposal: no apply, no side effects.

    t.apply(clamped);
    ++mutations_;
    if (observer_)
        observer_(t, now);
    return clamped;
}

void
TunableRegistry::setFromString(const std::string &key,
                               const std::string &value)
{
    const auto it = tunables_.find(key);
    if (it == tunables_.end())
        fatal("unknown tunable '%s'", key.c_str());
    Tunable &t = it->second;

    // Route the parse through the PolicyTunables getters so the
    // accepted grammar and the fatal diagnostics stay byte-identical
    // to the pre-registry construction-time translation.
    PolicyTunables one;
    one.set(key, value);
    const double v = t.integerValued
                         ? static_cast<double>(one.getU64(key, 0))
                         : one.getDouble(key, 0.0);
    t.apply(v);  // Unclamped: the legacy path never clamped either.
}

std::string
TunableRegistry::formatValue(const std::string &key) const
{
    const Tunable *t = find(key);
    if (t == nullptr)
        fatal("unknown tunable '%s'", key.c_str());
    char buf[64];
    if (t->integerValued) {
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(
                          std::llround(t->get())));
    } else {
        std::snprintf(buf, sizeof(buf), "%.6g", t->get());
    }
    return buf;
}

std::vector<std::pair<std::string, std::string>>
TunableRegistry::effectiveFor(const std::string &owner) const
{
    std::vector<std::pair<std::string, std::string>> out;
    for (const auto &[key, t] : tunables_) {
        if (t.owner == owner)
            out.emplace_back(key, formatValue(key));
    }
    return out;
}

}  // namespace memtier

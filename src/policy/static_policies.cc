#include "policy/static_policies.h"

#include "policy/tunable_registry.h"

namespace memtier {

std::vector<PolicyCounter>
StaticPolicy::snapshotStats() const
{
    return {
        {"first_touch_dram", stat.firstTouchDram},
        {"first_touch_nvm", stat.firstTouchNvm},
        {"demotions_vetoed", stat.demotionsVetoed},
    };
}

DramOnlyPolicy::DramOnlyPolicy(Kernel &kernel) : kernel(kernel)
{
    kernel.setTieringPolicy(this);
}

MemNode
DramOnlyPolicy::onFirstTouchAlloc(PageNum vpn, Cycles now, MemNode chosen)
{
    (void)vpn;
    (void)now;
    (void)chosen;
    // Pack DRAM completely: override the kernel's watermark-driven NVM
    // fallback and only overflow when DRAM is truly out of frames (the
    // fault path falls back on allocation failure).
    const MemNode node =
        kernel.physicalMemory().dram().freePages() > 0 ? MemNode::DRAM
                                                       : MemNode::NVM;
    if (node == MemNode::DRAM)
        ++stat.firstTouchDram;
    else
        ++stat.firstTouchNvm;
    return node;
}

InterleavePolicy::InterleavePolicy(Kernel &kernel,
                                   std::uint32_t dram_stride,
                                   std::uint32_t nvm_stride)
    : kernel(kernel), dramStride(dram_stride ? dram_stride : 1),
      nvmStride(nvm_stride ? nvm_stride : 1)
{
    kernel.setTieringPolicy(this);
}

void
InterleavePolicy::registerTunables(TunableRegistry &registry)
{
    // The ratio only steers *future* first touches; changing it mid-run
    // never moves already-placed pages.
    registry.add({"dram_stride", "pages sent to DRAM per period", name(),
                  1.0, 64.0, /*integerValued=*/true, false,
                  [this] { return static_cast<double>(dramStride); },
                  [this](double v) {
                      dramStride = static_cast<std::uint32_t>(v);
                      if (dramStride == 0)
                          dramStride = 1;
                  }});
    registry.add({"nvm_stride", "pages sent to NVM per period", name(),
                  1.0, 64.0, /*integerValued=*/true, false,
                  [this] { return static_cast<double>(nvmStride); },
                  [this](double v) {
                      nvmStride = static_cast<std::uint32_t>(v);
                      if (nvmStride == 0)
                          nvmStride = 1;
                  }});
}

MemNode
InterleavePolicy::onFirstTouchAlloc(PageNum vpn, Cycles now,
                                    MemNode chosen)
{
    (void)vpn;
    (void)now;
    (void)chosen;
    // Deal pages round-robin in stride-sized runs: dramStride pages to
    // DRAM, then nvmStride pages to NVM, in first-touch order.
    const std::uint64_t period = dramStride + nvmStride;
    const MemNode node = (counter++ % period) < dramStride
                             ? MemNode::DRAM
                             : MemNode::NVM;
    if (node == MemNode::DRAM)
        ++stat.firstTouchDram;
    else
        ++stat.firstTouchNvm;
    return node;
}

}  // namespace memtier

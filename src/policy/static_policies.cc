#include "policy/static_policies.h"

namespace memtier {

std::vector<PolicyCounter>
StaticPolicy::snapshotStats() const
{
    return {
        {"first_touch_dram", stat.firstTouchDram},
        {"first_touch_nvm", stat.firstTouchNvm},
        {"demotions_vetoed", stat.demotionsVetoed},
    };
}

DramOnlyPolicy::DramOnlyPolicy(Kernel &kernel) : kernel(kernel)
{
    kernel.setTieringPolicy(this);
}

MemNode
DramOnlyPolicy::onFirstTouchAlloc(PageNum vpn, Cycles now, MemNode chosen)
{
    (void)vpn;
    (void)now;
    (void)chosen;
    // Pack DRAM completely: override the kernel's watermark-driven NVM
    // fallback and only overflow when DRAM is truly out of frames (the
    // fault path falls back on allocation failure).
    const MemNode node =
        kernel.physicalMemory().dram().freePages() > 0 ? MemNode::DRAM
                                                       : MemNode::NVM;
    if (node == MemNode::DRAM)
        ++stat.firstTouchDram;
    else
        ++stat.firstTouchNvm;
    return node;
}

InterleavePolicy::InterleavePolicy(Kernel &kernel,
                                   std::uint32_t dram_stride,
                                   std::uint32_t nvm_stride)
    : kernel(kernel), dramStride(dram_stride ? dram_stride : 1),
      nvmStride(nvm_stride ? nvm_stride : 1)
{
    kernel.setTieringPolicy(this);
}

MemNode
InterleavePolicy::onFirstTouchAlloc(PageNum vpn, Cycles now,
                                    MemNode chosen)
{
    (void)vpn;
    (void)now;
    (void)chosen;
    // Deal pages round-robin in stride-sized runs: dramStride pages to
    // DRAM, then nvmStride pages to NVM, in first-touch order.
    const std::uint64_t period = dramStride + nvmStride;
    const MemNode node = (counter++ % period) < dramStride
                             ? MemNode::DRAM
                             : MemNode::NVM;
    if (node == MemNode::DRAM)
        ++stat.firstTouchDram;
    else
        ++stat.firstTouchNvm;
    return node;
}

}  // namespace memtier

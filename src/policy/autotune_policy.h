/**
 * @file
 * Online parameter tuner ("From Good to Great: Improving Memory Tiering
 * Performance Through Parameter Tuning"): a wrapper TieringPolicy that
 * delegates every kernel hook to a base policy and hill-climbs over the
 * base's registered tunables between epochs.
 *
 * The tuner alternates two-epoch cells on the simulated cycle clock:
 * a *baseline* epoch re-measures the base reward (accesses per cycle
 * from the engine's MetricsView deltas) and proposes one relative step
 * on one tunable; the following *measure* epoch accepts the step when
 * the reward improved by at least min_gain, otherwise reverts it. A
 * full sweep over every (tunable, direction) without an accept halves
 * the step (successive halving); when the step underruns min_step the
 * tuner restarts from the initial step up to max_restarts times, then
 * goes dormant. Everything is deterministic: the only randomness is
 * the per-key initial climb direction drawn from a seeded Xoshiro
 * stream, and all scheduling rides the cycle clock — two runs with the
 * same seed produce bit-identical reports.
 */

#ifndef MEMTIER_POLICY_AUTOTUNE_POLICY_H_
#define MEMTIER_POLICY_AUTOTUNE_POLICY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/rng.h"
#include "os/kernel.h"
#include "os/kernel_hooks.h"
#include "os/metrics_view.h"
#include "policy/tunable_registry.h"

namespace memtier {

/** Meta-parameters of the online tuner (not themselves tuned). */
struct AutoTuneParams
{
    /** Cycles between tuning epochs. */
    Cycles epochPeriod = secondsToCycles(0.005);

    /** Seed of the direction-drawing random stream. */
    std::uint64_t seed = 42;

    /** Initial relative step size (0.25 proposes old * (1 +/- 0.25)). */
    double step = 0.25;

    /** Halving floor: below this relative step the sweep restarts. */
    double minStep = 0.05;

    /** Minimum relative reward gain required to accept a step. */
    double minGain = 0.02;

    /** Mutation budget; 0 = observe-only (bit-identical to the base). */
    std::uint64_t maxSteps = 1000000;

    /** Step restarts after halving below minStep before going dormant. */
    std::uint64_t maxRestarts = 2;
};

/** Tuner counters exported through snapshotStats(). */
struct AutoTuneStats
{
    std::uint64_t epochs = 0;       ///< epochTick invocations.
    std::uint64_t idleEpochs = 0;   ///< Epochs with zero accesses.
    std::uint64_t applied = 0;      ///< Mutations proposed and applied.
    std::uint64_t accepted = 0;     ///< Mutations kept (reward gained).
    std::uint64_t reverted = 0;     ///< Mutations rolled back.
    std::uint64_t halvings = 0;     ///< Step halvings (dry sweeps).
    std::uint64_t restarts = 0;     ///< Step restarts after halving out.
};

/** Hill-climbing wrapper policy; registry name "autotune". */
class AutoTunePolicy : public TieringPolicy
{
  public:
    /**
     * @param kernel the kernel (the wrapper installs itself on top of
     *        the base policy's earlier installation).
     * @param base the wrapped policy; all hooks delegate to it.
     * @param params tuner meta-parameters.
     * @param registry registry holding the base's tunables.
     * @param owned_registry set when the wrapper owns the registry
     *        (standalone construction without an engine); may be null.
     */
    AutoTunePolicy(Kernel &kernel, std::unique_ptr<TieringPolicy> base,
                   const AutoTuneParams &params,
                   TunableRegistry *registry,
                   std::unique_ptr<TunableRegistry> owned_registry);

    const char *name() const override { return "autotune"; }

    // -- Pure delegation to the base policy ---------------------------

    Cycles
    onHintFault(PageNum vpn, Cycles now, PageMeta &meta) override
    {
        return base_->onHintFault(vpn, now, meta);
    }

    void scanTick(Cycles now) override { base_->scanTick(now); }

    Cycles scanPeriod() const override { return base_->scanPeriod(); }

    MemNode
    onFirstTouchAlloc(PageNum vpn, Cycles now, MemNode chosen) override
    {
        return base_->onFirstTouchAlloc(vpn, now, chosen);
    }

    DemotionDecision
    onDemotionRequest(PageNum vpn, Cycles now, const PageMeta &meta,
                      bool direct) override
    {
        return base_->onDemotionRequest(vpn, now, meta, direct);
    }

    void
    onMigrationFailure(PageNum vpn, Cycles now, bool promotion) override
    {
        base_->onMigrationFailure(vpn, now, promotion);
    }

    void
    onBreakerEvent(bool open, Cycles now) override
    {
        base_->onBreakerEvent(open, now);
    }

    void
    onMemoryFailure(PageNum vpn, MemNode node, bool uncorrectable,
                    Cycles now) override
    {
        base_->onMemoryFailure(vpn, node, uncorrectable, now);
    }

    void
    onThpCollapse(PageNum base_vpn, Cycles now) override
    {
        base_->onThpCollapse(base_vpn, now);
    }

    void
    onThpSplit(PageNum base_vpn, Cycles now) override
    {
        base_->onThpSplit(base_vpn, now);
    }

    // -- Tuner surface ------------------------------------------------

    Cycles epochPeriod() const override { return params_.epochPeriod; }

    /** One tuning step: measure reward, then propose/accept/revert. */
    void epochTick(Cycles now, const MetricsView &mv) override;

    /** Tuner counters, base counters, and tuned_* effective values. */
    std::vector<PolicyCounter> snapshotStats() const override;

    /** Effective (post-tuning) values of the base's tunables. */
    std::vector<std::pair<std::string, std::string>>
    effectiveTunables() const override;

    /** The wrapped policy. */
    const TieringPolicy &base() const { return *base_; }

    /** Tuner counters. */
    const AutoTuneStats &stats() const { return stat; }

  private:
    /** Snapshot the base-owned tunable keys and draw directions. */
    void adoptBase();

    /** Move to the opposite direction, or to the next key. */
    void advanceCursor();

    /** Current proposal direction for the cursor key. */
    int currentDir() const;

    std::unique_ptr<TieringPolicy> base_;
    AutoTuneParams params_;
    AutoTuneStats stat;

    std::unique_ptr<TunableRegistry> ownedRegistry_;
    TunableRegistry *registry_;

    Rng rng_;
    std::vector<std::string> keys_;  ///< Base-owned tunables, sorted.
    std::vector<int> initialDir_;    ///< Seeded first direction per key.

    // Hill-climb state.
    bool haveLast_ = false;          ///< lastView_ is valid.
    MetricsView lastView_;           ///< Previous epoch's snapshot.
    double baselineReward_ = 0.0;    ///< Reward the proposal must beat.
    bool pending_ = false;           ///< A proposal awaits measurement.
    std::string pendingKey_;
    double pendingOld_ = 0.0;
    std::size_t cursor_ = 0;         ///< Index into keys_.
    bool secondDir_ = false;         ///< Trying the opposite direction.
    bool acceptsThisSweep_ = false;
    double step_ = 0.25;             ///< Current relative step.
    std::uint64_t restartsUsed_ = 0;
    bool dormant_ = false;           ///< Tuning exhausted; observe only.
};

}  // namespace memtier

#endif  // MEMTIER_POLICY_AUTOTUNE_POLICY_H_

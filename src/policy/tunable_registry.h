/**
 * @file
 * Live tunable control plane: a registry where each owner (a tiering
 * policy, or the kernel through the engine) registers named tunables
 * with typed get/apply accessors and clamp ranges. Construction-time
 * configuration and online tuning go through the same entries, so a
 * value the CLI can set with "--tunable key=value" is by construction
 * also adjustable while the workload runs ("From Good to Great" shows
 * the online adjustments are where the wins are).
 *
 * Two application paths with deliberately different semantics:
 *
 *  - setFromString() parses exactly like the legacy PolicyTunables
 *    getters (strtoull/strtod, fatal on junk) and applies *unclamped*,
 *    reproducing the construction-time translation bit for bit.
 *  - set() takes a numeric value from an online tuner, clamps it into
 *    the registered [min, max] range, rounds integer-valued tunables,
 *    and skips the apply entirely when the clamped value equals the
 *    current one (so a no-op proposal has no side effects).
 */

#ifndef MEMTIER_POLICY_TUNABLE_REGISTRY_H_
#define MEMTIER_POLICY_TUNABLE_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "base/types.h"

namespace memtier {

/** Process-local registry of live-adjustable tunables. */
class TunableRegistry
{
  public:
    /** One registered tunable. Values are in CLI units (the unit the
     *  "--tunable key=value" surface uses, e.g. milliseconds for the
     *  *_ms keys); get/apply convert to internal units themselves. */
    struct Tunable
    {
        std::string key;          ///< CLI key ("scan_period_ms").
        std::string description;  ///< One-line summary for listings.
        std::string owner;        ///< Registering owner's name().

        double minValue = 0.0;    ///< Online-tuning clamp, CLI units.
        double maxValue = 0.0;    ///< Online-tuning clamp, CLI units.

        /** True parses/rounds as an unsigned integer (getU64 rules). */
        bool integerValued = false;

        /** True when a change moves the owner's scanPeriod(): the
         *  engine re-arms the scan service when one of these applies. */
        bool rearmScan = false;

        std::function<double()> get;        ///< Current value, CLI units.
        std::function<void(double)> apply;  ///< Install a new value.
    };

    /** Observer invoked after every runtime set() that applied. */
    using ApplyObserver = std::function<void(const Tunable &, Cycles)>;

    /** Register @p t (fatal on a duplicate key or missing accessors). */
    void add(Tunable t);

    /** True when @p key is registered. */
    bool contains(const std::string &key) const;

    /** The tunable registered under @p key, or nullptr. */
    const Tunable *find(const std::string &key) const;

    /** All registered keys, sorted. */
    std::vector<std::string> keys() const;

    /** Keys registered by @p owner, sorted. */
    std::vector<std::string> keysOwnedBy(const std::string &owner) const;

    /** Current value of @p key in CLI units (fatal when unknown). */
    double value(const std::string &key) const;

    /**
     * Online-tuning path: clamp @p v into the tunable's range, round
     * when integer-valued, and apply. When the clamped value equals the
     * current one nothing is applied (no side effects, no observer, no
     * mutation counted).
     *
     * @param key registered tunable key (fatal when unknown).
     * @param v proposed value in CLI units.
     * @param now current cycle, forwarded to the apply observer.
     * @return the value now in effect (clamped, possibly unchanged).
     */
    double set(const std::string &key, double v, Cycles now);

    /**
     * Construction path: parse @p value with the legacy PolicyTunables
     * semantics (integer-valued keys via getU64, others via getDouble;
     * fatal on junk) and apply it *without* clamping, so a CLI
     * assignment configures the policy exactly as the pre-registry
     * translation did.
     */
    void setFromString(const std::string &key, const std::string &value);

    /** Current value of @p key formatted for CSV/JSON ("%.6g", plain
     *  integer for integer-valued tunables). */
    std::string formatValue(const std::string &key) const;

    /** {key, formatted value} for every tunable of @p owner, sorted. */
    std::vector<std::pair<std::string, std::string>>
    effectiveFor(const std::string &owner) const;

    /** Install the post-apply observer (replaces any previous one). */
    void setApplyObserver(ApplyObserver fn) { observer_ = std::move(fn); }

    /** Runtime mutations applied through set() (reverts included). */
    std::uint64_t mutations() const { return mutations_; }

  private:
    std::map<std::string, Tunable> tunables_;
    ApplyObserver observer_;
    std::uint64_t mutations_ = 0;
};

}  // namespace memtier

#endif  // MEMTIER_POLICY_TUNABLE_REGISTRY_H_

/**
 * @file
 * NUMA memory policy attached to a VMA, modelling Linux mbind(2) modes
 * the paper's object-level mapper uses (Section 7).
 */

#ifndef MEMTIER_OS_MEM_POLICY_H_
#define MEMTIER_OS_MEM_POLICY_H_

#include <cstdint>

#include "base/types.h"

namespace memtier {

/** Placement policy for pages of one VMA. */
struct MemPolicy
{
    enum class Mode : std::uint8_t {
        /**
         * Kernel default: first-touch allocation on DRAM while space is
         * available, falling back to NVM; pages are eligible for
         * AutoNUMA scanning, promotion and demotion.
         */
        Default = 0,

        /** MPOL_BIND to a single node; pages are pinned (no migration). */
        Bind,

        /**
         * Split binding used by the spill variant (the starred cc
         * workloads in Figure 11):
         * the first @ref dramPages pages of the region bind to DRAM and
         * the remainder binds to NVM; all pages pinned.
         */
        Split,
    };

    Mode mode = Mode::Default;

    /** Target node for Mode::Bind. */
    MemNode node = MemNode::DRAM;

    /** For Mode::Split: number of leading pages bound to DRAM. */
    std::uint64_t dramPages = 0;

    /** Policy that binds the whole region to @p node. */
    static MemPolicy
    bind(MemNode node)
    {
        MemPolicy p;
        p.mode = Mode::Bind;
        p.node = node;
        return p;
    }

    /** Policy that splits the region after @p dram_pages pages. */
    static MemPolicy
    split(std::uint64_t dram_pages)
    {
        MemPolicy p;
        p.mode = Mode::Split;
        p.dramPages = dram_pages;
        return p;
    }

    /** True when pages under this policy must never migrate. */
    bool
    pinned() const
    {
        return mode != Mode::Default;
    }

    /** Node this policy assigns to the page at @p index within the VMA. */
    MemNode
    nodeForPage(std::uint64_t index) const
    {
        switch (mode) {
          case Mode::Bind:
            return node;
          case Mode::Split:
            return index < dramPages ? MemNode::DRAM : MemNode::NVM;
          case Mode::Default:
            break;
        }
        return MemNode::DRAM;  // Default prefers DRAM (first touch).
    }
};

}  // namespace memtier

#endif  // MEMTIER_OS_MEM_POLICY_H_

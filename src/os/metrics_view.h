/**
 * @file
 * Observation plane for the tunable control plane: a MetricsView is a
 * cumulative snapshot of what the machine has done so far — vmstat
 * counters, total memory accesses with their summed latency, and (when
 * a serving workload is live) the request-latency quantiles. The engine
 * takes one per tuning epoch; policies consume *deltas* between two
 * snapshots, exactly how "From Good to Great"-style online tuners read
 * /proc/vmstat.
 */

#ifndef MEMTIER_OS_METRICS_VIEW_H_
#define MEMTIER_OS_METRICS_VIEW_H_

#include <cstdint>

#include "base/types.h"
#include "os/vmstat.h"

namespace memtier {

/** Cumulative machine-metrics snapshot taken at one instant. */
struct MetricsView
{
    /** Snapshot time on the simulated cycle clock. */
    Cycles now = 0;

    /** Memory accesses completed so far (all levels, all lanes). */
    std::uint64_t accesses = 0;

    /** Cycles those accesses spent in the memory system. */
    std::uint64_t accessCycles = 0;

    /** Kernel vmstat counters at snapshot time. */
    VmStat vm;

    /** True when a serving workload had a live latency histogram. */
    bool hasServing = false;

    /** Serving request-latency quantiles in cycles (0 without serving). */
    double serveP50Cycles = 0.0;
    double serveP99Cycles = 0.0;
    double serveP999Cycles = 0.0;

    /** Cumulative-field delta against an @p earlier snapshot. The
     *  serving quantiles are not cumulative; the delta keeps this
     *  snapshot's values. */
    MetricsView
    delta(const MetricsView &earlier) const
    {
        MetricsView d = *this;
        d.accesses = accesses - earlier.accesses;
        d.accessCycles = accessCycles - earlier.accessCycles;
        d.vm = vm.delta(earlier.vm);
        return d;
    }

    /** Mean access latency in cycles (0 when no accesses happened). */
    double
    meanAccessCycles() const
    {
        return accesses == 0
                   ? 0.0
                   : static_cast<double>(accessCycles) /
                         static_cast<double>(accesses);
    }
};

}  // namespace memtier

#endif  // MEMTIER_OS_METRICS_VIEW_H_

/**
 * @file
 * Upcall interfaces the kernel uses to talk to layers above it without
 * depending on them: TLB shootdowns into the CPU model, tiering-policy
 * decisions (implemented by the policy subsystem), and syscall
 * observation (implemented by the profiler's mmap tracker).
 */

#ifndef MEMTIER_OS_KERNEL_HOOKS_H_
#define MEMTIER_OS_KERNEL_HOOKS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "base/types.h"

namespace memtier {

struct PageMeta;
struct MetricsView;
class TunableRegistry;

/** Sentinel for "no page" in policy/kernel exchanges. */
inline constexpr PageNum kNoPage = static_cast<PageNum>(-1);

/** Implemented by the CPU model: invalidate cached translations. */
class TlbShootdownClient
{
  public:
    virtual ~TlbShootdownClient() = default;

    /** Invalidate @p vpn in every logical thread's TLB. */
    virtual void tlbShootdown(PageNum vpn) = 0;

    /**
     * Invalidate the 2 MiB translation at @p base_vpn in every logical
     * thread's huge TLB. Default no-op so clients that predate the THP
     * model keep compiling (they never see huge mappings).
     */
    virtual void tlbShootdownHuge(PageNum base_vpn) { (void)base_vpn; }
};

/** A policy's answer to "may I demote this DRAM page?". */
struct DemotionDecision
{
    enum class Action : std::uint8_t {
        Allow,     ///< Demote the proposed victim (kernel default).
        Veto,      ///< Keep the victim in DRAM; reclaim moves on.
        Redirect,  ///< Demote @ref alternative instead of the victim.
    };

    Action action = Action::Allow;
    PageNum alternative = kNoPage;  ///< Victim for Action::Redirect.

    static DemotionDecision allow() { return {}; }

    static DemotionDecision
    veto()
    {
        return {Action::Veto, kNoPage};
    }

    static DemotionDecision
    redirect(PageNum vpn)
    {
        return {Action::Redirect, vpn};
    }
};

/** One named cumulative counter exported by a policy. */
using PolicyCounter = std::pair<std::string, std::uint64_t>;

/**
 * Full lifecycle interface between the kernel and a tiering policy.
 *
 * The kernel owns the mechanism (faults, placement, reclaim, migration)
 * and consults the installed policy at every decision point. Every hook
 * except @ref onHintFault has a neutral default, so a policy only
 * implements the events it cares about:
 *
 *  - @ref onHintFault     a scanner-marked page was touched (promote?).
 *  - @ref scanTick        periodic scan invocation (mark pages).
 *  - @ref onFirstTouchAlloc  first-touch placement of a new page.
 *  - @ref onDemotionRequest  reclaim proposes a demotion (veto/redirect?).
 *  - @ref snapshotStats   export policy-private counters for reports.
 */
class TieringPolicy
{
  public:
    virtual ~TieringPolicy() = default;

    /** Stable short name ("autonuma", "exchange", ...). */
    virtual const char *name() const = 0;

    /**
     * A hint page fault occurred on @p vpn.
     *
     * @param vpn faulting page.
     * @param now fault time (the "hint page fault time").
     * @param meta the page's metadata (scanTime holds the scan time).
     * @return extra cycles charged to the faulting thread (e.g. the
     *         synchronous cost of a promotion migration).
     */
    virtual Cycles onHintFault(PageNum vpn, Cycles now, PageMeta &meta) = 0;

    /**
     * Periodic scan invocation, driven by the engine's service clock
     * every @ref scanPeriod cycles. Policies that do not scan keep the
     * default no-op and return 0 from scanPeriod().
     */
    virtual void scanTick(Cycles now) { (void)now; }

    /** Period of @ref scanTick in cycles; 0 disables the scan service. */
    virtual Cycles scanPeriod() const { return 0; }

    /**
     * A page is being populated on first touch into a Default-policy
     * VMA (mbind-pinned regions never consult the policy). @p chosen is
     * the kernel's DRAM-first proposal; the returned node is where the
     * page is placed (allocation failure still falls back to the other
     * tier).
     */
    virtual MemNode
    onFirstTouchAlloc(PageNum vpn, Cycles now, MemNode chosen)
    {
        (void)vpn;
        (void)now;
        return chosen;
    }

    /**
     * Reclaim (kswapd or direct) proposes demoting @p vpn out of DRAM.
     * The policy may allow it, veto it (the page stays; reclaim skips
     * it this pass), or redirect reclaim to a different DRAM page --
     * the mechanism AutoTiering-style exchange policies use to protect
     * recently promoted pages from immediate demotion.
     */
    virtual DemotionDecision
    onDemotionRequest(PageNum vpn, Cycles now, const PageMeta &meta,
                      bool direct)
    {
        (void)vpn;
        (void)now;
        (void)meta;
        (void)direct;
        return DemotionDecision::allow();
    }

    /**
     * A page migration attempt failed (transient fault or ENOMEM).
     * Policies observe failures to adapt their aggressiveness.
     *
     * @param vpn the page whose migration failed.
     * @param now failure time.
     * @param promotion true for promotion/exchange, false for demotion.
     */
    virtual void
    onMigrationFailure(PageNum vpn, Cycles now, bool promotion)
    {
        (void)vpn;
        (void)now;
        (void)promotion;
    }

    /**
     * The migration circuit breaker changed state. While open
     * (@p open true) the kernel refuses promotions and exchanges;
     * scanning policies should stop marking pages until it closes.
     */
    virtual void
    onBreakerEvent(bool open, Cycles now)
    {
        (void)open;
        (void)now;
    }

    /**
     * The memory-failure handler retired a frame on @p node (soft
     * offline past the CE threshold, or the uncorrectable hard path).
     * The tier's effective capacity shrank by one page; scanning
     * policies use this to back off promotions into an eroding tier.
     *
     * @param vpn the page that lived on the poisoned frame.
     * @param node tier of the retired frame.
     * @param uncorrectable true for the UE hard path, false for a
     *        CE-threshold soft offline.
     */
    virtual void
    onMemoryFailure(PageNum vpn, MemNode node, bool uncorrectable,
                    Cycles now)
    {
        (void)vpn;
        (void)node;
        (void)uncorrectable;
        (void)now;
    }

    /**
     * khugepaged collapsed the 4 KiB range at @p base_vpn into a PMD
     * mapping. Hotness state the policy tracked per 4 KiB page now
     * aggregates to the whole range.
     */
    virtual void
    onThpCollapse(PageNum base_vpn, Cycles now)
    {
        (void)base_vpn;
        (void)now;
    }

    /**
     * The PMD mapping at @p base_vpn was split back into 4 KiB PTEs
     * (demand split: a tiering decision straddled the huge page).
     */
    virtual void
    onThpSplit(PageNum base_vpn, Cycles now)
    {
        (void)base_vpn;
        (void)now;
    }

    /** Policy-private cumulative counters for reports/CSV export. */
    virtual std::vector<PolicyCounter> snapshotStats() const { return {}; }

    // -- Live tunable control plane -----------------------------------

    /**
     * Register this policy's live-adjustable tunables into @p registry
     * (keyed exactly like the "--tunable key=value" CLI surface, owner
     * tag == name()). Called once right after construction; policies
     * without tunables keep the default no-op.
     */
    virtual void registerTunables(TunableRegistry &registry)
    {
        (void)registry;
    }

    /**
     * Effective (post-tuning) tunable values as {key, formatted value}
     * pairs, in key order — what the policy is running with *now*, not
     * the defaults it started from. Exported into sweep CSVs and bench
     * reports.
     */
    virtual std::vector<std::pair<std::string, std::string>>
    effectiveTunables() const
    {
        return {};
    }

    /**
     * Period of @ref epochTick in cycles; 0 (the default) disables the
     * epoch service entirely, so non-tuning policies cost nothing.
     */
    virtual Cycles epochPeriod() const { return 0; }

    /**
     * Per-epoch observation callback: the engine hands the policy a
     * fresh cumulative @ref MetricsView every @ref epochPeriod cycles.
     * Online tuners diff consecutive views and adjust tunables here.
     */
    virtual void
    epochTick(Cycles now, const MetricsView &mv)
    {
        (void)now;
        (void)mv;
    }
};

/** Implemented by the mmap tracker (syscall_intercept equivalent). */
class SyscallObserver
{
  public:
    virtual ~SyscallObserver() = default;

    /** An mmap created [addr, addr+bytes) for @p object at @p site. */
    virtual void onMmap(Cycles now, Addr addr, std::uint64_t bytes,
                        ObjectId object, const std::string &site) = 0;

    /** The region starting at @p addr was unmapped. */
    virtual void onMunmap(Cycles now, Addr addr, std::uint64_t bytes,
                          ObjectId object) = 0;
};

}  // namespace memtier

#endif  // MEMTIER_OS_KERNEL_HOOKS_H_

/**
 * @file
 * Upcall interfaces the kernel uses to talk to layers above it without
 * depending on them: TLB shootdowns into the CPU model, tiering-policy
 * decisions (implemented by the autonuma module), and syscall observation
 * (implemented by the profiler's mmap tracker).
 */

#ifndef MEMTIER_OS_KERNEL_HOOKS_H_
#define MEMTIER_OS_KERNEL_HOOKS_H_

#include <cstdint>
#include <string>

#include "base/types.h"

namespace memtier {

struct PageMeta;

/** Implemented by the CPU model: invalidate cached translations. */
class TlbShootdownClient
{
  public:
    virtual ~TlbShootdownClient() = default;

    /** Invalidate @p vpn in every logical thread's TLB. */
    virtual void tlbShootdown(PageNum vpn) = 0;
};

/**
 * Implemented by the AutoNUMA tiering module: consulted when a marked
 * page takes a hint fault.
 */
class TieringPolicy
{
  public:
    virtual ~TieringPolicy() = default;

    /**
     * A hint page fault occurred on @p vpn.
     *
     * @param vpn faulting page.
     * @param now fault time (the "hint page fault time").
     * @param meta the page's metadata (scanTime holds the scan time).
     * @return extra cycles charged to the faulting thread (e.g. the
     *         synchronous cost of a promotion migration).
     */
    virtual Cycles onHintFault(PageNum vpn, Cycles now, PageMeta &meta) = 0;
};

/** Implemented by the mmap tracker (syscall_intercept equivalent). */
class SyscallObserver
{
  public:
    virtual ~SyscallObserver() = default;

    /** An mmap created [addr, addr+bytes) for @p object at @p site. */
    virtual void onMmap(Cycles now, Addr addr, std::uint64_t bytes,
                        ObjectId object, const std::string &site) = 0;

    /** The region starting at @p addr was unmapped. */
    virtual void onMunmap(Cycles now, Addr addr, std::uint64_t bytes,
                          ObjectId object) = 0;
};

}  // namespace memtier

#endif  // MEMTIER_OS_KERNEL_HOOKS_H_

/**
 * @file
 * Process virtual address space: VMAs created by mmap, destroyed by
 * munmap, and re-policied by mbind, as intercepted by the paper's
 * syscall_intercept methodology (Section 3.2).
 */

#ifndef MEMTIER_OS_ADDRESS_SPACE_H_
#define MEMTIER_OS_ADDRESS_SPACE_H_

#include <cstdint>
#include <map>
#include <string>

#include "base/types.h"
#include "os/mem_policy.h"

namespace memtier {

/** One virtual memory area created by a single mmap call. */
struct Vma
{
    Addr start = 0;       ///< First byte (page aligned).
    Addr end = 0;         ///< One past the last byte (page aligned).
    MemPolicy policy;     ///< Placement policy for pages in the region.
    ObjectId object = kNoObject;  ///< Tracked memory object id.
    std::string site;     ///< Allocation call-site tag ("call stack").
    bool pageCache = false;  ///< Kernel page-cache range (not scanned).

    std::uint64_t pages() const { return (end - start) >> kPageShift; }
    bool contains(Addr a) const { return a >= start && a < end; }
};

/** VMA container with a bump virtual-address allocator. */
class AddressSpace
{
  public:
    AddressSpace();

    /**
     * Create a VMA of @p bytes (rounded up to pages).
     * @param bytes requested size.
     * @param object tracked object id for the region.
     * @param site allocation-site tag recorded on the VMA.
     * @param page_cache true for kernel page-cache ranges.
     * @return the region's start address.
     */
    Addr mmap(std::uint64_t bytes, ObjectId object,
              const std::string &site, bool page_cache = false);

    /**
     * Remove the VMA starting at @p start (whole-region munmap, which is
     * how the tracked applications free objects).
     * @return the removed VMA.
     */
    Vma munmap(Addr start);

    /** Apply @p policy to the VMA starting at @p start. */
    void mbind(Addr start, const MemPolicy &policy);

    /** VMA covering @p addr, or nullptr. */
    const Vma *find(Addr addr) const;

    /** VMA starting exactly at @p start, or nullptr. */
    const Vma *findExact(Addr start) const;

    /** All VMAs keyed by start address. */
    const std::map<Addr, Vma> &vmas() const { return regions; }

    /**
     * Align future VMA starts to 2 MiB (THP mode) so collapse-eligible
     * PMD ranges exist. Off by default: the page-aligned legacy layout
     * is part of the bit-identical 4 KiB-mode contract.
     */
    void setHugeAlignment(bool on) { hugeAlign = on; }

    /** Whether VMA starts are 2 MiB-aligned. */
    bool hugeAlignment() const { return hugeAlign; }

  private:
    std::map<Addr, Vma> regions;
    Addr nextAddr;
    bool hugeAlign = false;
};

}  // namespace memtier

#endif  // MEMTIER_OS_ADDRESS_SPACE_H_

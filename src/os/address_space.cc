#include "os/address_space.h"

#include "base/logging.h"

namespace memtier {

namespace {

/** Base of the simulated mmap area (clear of the null page and heap). */
constexpr Addr kMmapBase = 0x1'0000'0000ULL;

}  // namespace

AddressSpace::AddressSpace() : nextAddr(kMmapBase)
{
}

Addr
AddressSpace::mmap(std::uint64_t bytes, ObjectId object,
                   const std::string &site, bool page_cache)
{
    MEMTIER_ASSERT(bytes > 0, "mmap of zero bytes");
    const std::uint64_t pages = roundUpPages(bytes);

    // THP mode places regions on PMD boundaries (the kernel's
    // thp_get_unmapped_area behaviour); without it a region start is
    // only page-aligned and almost never begins a 2 MiB range.
    if (hugeAlign)
        nextAddr = roundUpHuge(nextAddr);

    Vma vma;
    vma.start = nextAddr;
    vma.end = nextAddr + pages * kPageSize;
    vma.object = object;
    vma.site = site;
    vma.pageCache = page_cache;
    regions.emplace(vma.start, vma);

    // Leave one guard page between regions so adjacent objects never
    // share a page (keeps sample->object mapping unambiguous).
    nextAddr = vma.end + kPageSize;
    return vma.start;
}

Vma
AddressSpace::munmap(Addr start)
{
    auto it = regions.find(start);
    MEMTIER_ASSERT(it != regions.end(), "munmap of unknown region");
    Vma vma = it->second;
    regions.erase(it);
    return vma;
}

void
AddressSpace::mbind(Addr start, const MemPolicy &policy)
{
    auto it = regions.find(start);
    MEMTIER_ASSERT(it != regions.end(), "mbind of unknown region");
    it->second.policy = policy;
}

const Vma *
AddressSpace::find(Addr addr) const
{
    auto it = regions.upper_bound(addr);
    if (it == regions.begin())
        return nullptr;
    --it;
    return it->second.contains(addr) ? &it->second : nullptr;
}

const Vma *
AddressSpace::findExact(Addr start) const
{
    auto it = regions.find(start);
    return it == regions.end() ? nullptr : &it->second;
}

}  // namespace memtier

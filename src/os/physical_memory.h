/**
 * @file
 * The machine's physical memory: one DRAM tier (NUMA node 0, CPU
 * attached) and one NVM tier (NUMA node 1, CPU-less), matching the
 * KMEM-DAX setup the paper uses.
 */

#ifndef MEMTIER_OS_PHYSICAL_MEMORY_H_
#define MEMTIER_OS_PHYSICAL_MEMORY_H_

#include <array>
#include <cstdint>

#include "base/types.h"
#include "mem/memory_tier.h"

namespace memtier {

/** Two-tier physical memory. */
class PhysicalMemory
{
  public:
    /**
     * @param dram parameters of the fast tier.
     * @param nvm parameters of the slow tier.
     */
    PhysicalMemory(const TierParams &dram, const TierParams &nvm);

    /** The tier behind @p node. */
    MemoryTier &tier(MemNode node);

    /** Const access. */
    const MemoryTier &tier(MemNode node) const;

    MemoryTier &dram() { return tier(MemNode::DRAM); }
    MemoryTier &nvm() { return tier(MemNode::NVM); }

  private:
    std::array<MemoryTier, kNumNodes> tiers;
};

}  // namespace memtier

#endif  // MEMTIER_OS_PHYSICAL_MEMORY_H_

/**
 * @file
 * Runtime invariant checker: a consistency sweep over the kernel's
 * page table, frame allocators, and reclaim LRU lists, run every N
 * kernel events. Violations abort with a diagnostic dump, so a fault
 * path that corrupts state is caught at the event that corrupted it
 * rather than as a wrong number at the end of a run.
 *
 * The checker only observes -- it never mutates kernel state and draws
 * no randomness -- so enabling it cannot change simulation results.
 * Tests keep it always on; production-style runs gate it behind
 * SystemConfig::checkInvariants (or MEMTIER_CHECK_INVARIANTS=ON).
 */

#ifndef MEMTIER_OS_INVARIANTS_H_
#define MEMTIER_OS_INVARIANTS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "base/types.h"

namespace memtier {

class Kernel;

/** Periodic page-table / allocator / LRU consistency checker. */
class InvariantChecker
{
  public:
    /**
     * @param kernel the kernel to check (observed, never mutated).
     * @param period_events kernel events between full sweeps.
     */
    explicit InvariantChecker(const Kernel &kernel,
                              std::uint64_t period_events = 4096);

    /** One kernel event happened; sweeps every @ref period() events. */
    void onEvent(Cycles now);

    /** Run a full consistency sweep immediately; panics on violation. */
    void checkNow(Cycles now);

    /** Full sweeps completed so far. */
    std::uint64_t checksRun() const { return checks_; }

    /** Kernel events observed so far. */
    std::uint64_t eventsSeen() const { return events_; }

    /** Events between sweeps. */
    std::uint64_t period() const { return period_; }

    /**
     * Install an extra audit invoked at the end of every sweep, for
     * consistency rules that span kernel and non-kernel state (the
     * engine registers its translation micro-cache audit here). The
     * auditor must observe only and abort on violation itself.
     */
    void setAuditor(std::function<void(Cycles)> fn)
    {
        auditor_ = std::move(fn);
    }

  private:
    /** Print a diagnostic dump of kernel state, then abort. */
    [[noreturn]] void fail(Cycles now, const std::string &what) const;

    const Kernel &kernel_;
    std::function<void(Cycles)> auditor_;
    std::uint64_t period_;
    std::uint64_t events_ = 0;
    std::uint64_t checks_ = 0;
};

}  // namespace memtier

#endif  // MEMTIER_OS_INVARIANTS_H_

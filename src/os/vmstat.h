/**
 * @file
 * The vmstat counters the paper tracks (Section 6.6), plus a few extra
 * fault counters useful for analysis. Values are cumulative, as in
 * /proc/vmstat; consumers compute deltas between two readings exactly as
 * the paper does.
 */

#ifndef MEMTIER_OS_VMSTAT_H_
#define MEMTIER_OS_VMSTAT_H_

#include <cstdint>

namespace memtier {

/** Cumulative kernel memory-management counters. */
struct VmStat
{
    /** Minor page faults (first touch of a mapped page). */
    std::uint64_t pgfault = 0;

    /** NUMA hint page faults taken on scanner-marked pages. */
    std::uint64_t numaHintFaults = 0;

    /** Pages successfully promoted NVM -> DRAM. */
    std::uint64_t pgpromoteSuccess = 0;

    /** Promoted pages that were later demoted back (thrashing signal). */
    std::uint64_t pgpromoteDemoted = 0;

    /** Pages demoted DRAM -> NVM by periodic kswapd reclaim. */
    std::uint64_t pgdemoteKswapd = 0;

    /** Pages demoted DRAM -> NVM by synchronous direct reclaim. */
    std::uint64_t pgdemoteDirect = 0;

    /** Reclaim demotion proposals vetoed/redirected by the policy. */
    std::uint64_t pgdemoteVetoed = 0;

    /** Direct hot/cold page exchanges (one exchange swaps two pages). */
    std::uint64_t pgexchangeSuccess = 0;

    /** Exchanged-in pages later pushed back out (exchange thrashing). */
    std::uint64_t pgexchangeThrash = 0;

    /** Total successful page migrations (promotions + demotions). */
    std::uint64_t pgmigrateSuccess = 0;

    /** Promotion candidates seen (below threshold, may not migrate). */
    std::uint64_t promoteCandidates = 0;

    /** Promotions skipped because the rate limit was exhausted. */
    std::uint64_t promoteRateLimited = 0;

    /** Clean page-cache pages dropped by reclaim (no tiering path). */
    std::uint64_t pageCacheDrops = 0;

    /** Page migrations that failed (transient fault or ENOMEM). */
    std::uint64_t pgmigrateFail = 0;

    /** Promotion attempts retried after a transient failure. */
    std::uint64_t promoteRetry = 0;

    /** Promotions/exchanges suppressed while the breaker was open. */
    std::uint64_t promotePaused = 0;

    /** DRAM frame allocations failed by the fault injector. */
    std::uint64_t pgallocFail = 0;

    /** Page-cache disk reads re-issued after a transient read error. */
    std::uint64_t diskReadRetry = 0;

    /** Times the migration circuit breaker tripped open. */
    std::uint64_t breakerTrips = 0;

    /** Huge pages allocated directly on first touch (thp_fault_alloc). */
    std::uint64_t thpFaultAlloc = 0;

    /** Eligible first touches that fell back to a 4 KiB allocation. */
    std::uint64_t thpFaultFallback = 0;

    /** 4 KiB ranges collapsed into PMD mappings (thp_collapse_alloc). */
    std::uint64_t thpCollapseAlloc = 0;

    /** Collapse attempts defeated by fragmentation (no 2 MiB frame). */
    std::uint64_t thpCollapseFail = 0;

    /** PMD mappings split back into 4 KiB PTEs (thp_split_page). */
    std::uint64_t thpSplitPage = 0;

    /** PMD mappings freed whole by munmap. */
    std::uint64_t thpUnmapHuge = 0;

    /** Correctable ECC errors observed on mapped frames. */
    std::uint64_t hwpoisonCe = 0;

    /** Uncorrectable ECC errors (memory-failure hard path entered). */
    std::uint64_t hwpoisonUe = 0;

    /** Pages soft-offlined: migrated off a failing frame, frame retired. */
    std::uint64_t hwpoisonSoftOffline = 0;

    /** Soft-offline attempts abandoned (no healthy frame / copy kept
     *  failing); the page stays on its frame and CE history resets. */
    std::uint64_t hwpoisonSoftOfflineFail = 0;

    /** Anonymous/dirty pages killed with the SIGBUS-analogue. */
    std::uint64_t hwpoisonSigbus = 0;

    /** Clean page-cache pages dropped by the hard path (re-read later). */
    std::uint64_t hwpoisonCacheDropped = 0;

    /** Frames permanently retired across both tiers. */
    std::uint64_t hwpoisonFramesRetired = 0;

    /** Copy-engine chunks scheduled over the copy worker pool. */
    std::uint64_t pgcopyChunks = 0;

    /** Page copies that actually fanned out to more than one worker. */
    std::uint64_t pgcopyParallel = 0;

    /** Copy chunks that queued behind a busy worker (queue depth). */
    std::uint64_t pgcopyQueuedChunks = 0;

    /** Cycles copy workers spent busy (foreground + background). */
    std::uint64_t pgcopyBusyCycles = 0;

    /** Read-only page touches resolved on a host worker without a
     *  kernel round (parallel host execution fast path). */
    std::uint64_t hostFastTouches = 0;

    /** Delta of every field between two snapshots (this - earlier). */
    VmStat
    delta(const VmStat &earlier) const
    {
        VmStat d;
        d.pgfault = pgfault - earlier.pgfault;
        d.numaHintFaults = numaHintFaults - earlier.numaHintFaults;
        d.pgpromoteSuccess = pgpromoteSuccess - earlier.pgpromoteSuccess;
        d.pgpromoteDemoted = pgpromoteDemoted - earlier.pgpromoteDemoted;
        d.pgdemoteKswapd = pgdemoteKswapd - earlier.pgdemoteKswapd;
        d.pgdemoteDirect = pgdemoteDirect - earlier.pgdemoteDirect;
        d.pgdemoteVetoed = pgdemoteVetoed - earlier.pgdemoteVetoed;
        d.pgexchangeSuccess = pgexchangeSuccess - earlier.pgexchangeSuccess;
        d.pgexchangeThrash = pgexchangeThrash - earlier.pgexchangeThrash;
        d.pgmigrateSuccess = pgmigrateSuccess - earlier.pgmigrateSuccess;
        d.promoteCandidates = promoteCandidates - earlier.promoteCandidates;
        d.promoteRateLimited =
            promoteRateLimited - earlier.promoteRateLimited;
        d.pageCacheDrops = pageCacheDrops - earlier.pageCacheDrops;
        d.pgmigrateFail = pgmigrateFail - earlier.pgmigrateFail;
        d.promoteRetry = promoteRetry - earlier.promoteRetry;
        d.promotePaused = promotePaused - earlier.promotePaused;
        d.pgallocFail = pgallocFail - earlier.pgallocFail;
        d.diskReadRetry = diskReadRetry - earlier.diskReadRetry;
        d.breakerTrips = breakerTrips - earlier.breakerTrips;
        d.thpFaultAlloc = thpFaultAlloc - earlier.thpFaultAlloc;
        d.thpFaultFallback = thpFaultFallback - earlier.thpFaultFallback;
        d.thpCollapseAlloc = thpCollapseAlloc - earlier.thpCollapseAlloc;
        d.thpCollapseFail = thpCollapseFail - earlier.thpCollapseFail;
        d.thpSplitPage = thpSplitPage - earlier.thpSplitPage;
        d.thpUnmapHuge = thpUnmapHuge - earlier.thpUnmapHuge;
        d.hwpoisonCe = hwpoisonCe - earlier.hwpoisonCe;
        d.hwpoisonUe = hwpoisonUe - earlier.hwpoisonUe;
        d.hwpoisonSoftOffline =
            hwpoisonSoftOffline - earlier.hwpoisonSoftOffline;
        d.hwpoisonSoftOfflineFail =
            hwpoisonSoftOfflineFail - earlier.hwpoisonSoftOfflineFail;
        d.hwpoisonSigbus = hwpoisonSigbus - earlier.hwpoisonSigbus;
        d.hwpoisonCacheDropped =
            hwpoisonCacheDropped - earlier.hwpoisonCacheDropped;
        d.hwpoisonFramesRetired =
            hwpoisonFramesRetired - earlier.hwpoisonFramesRetired;
        d.pgcopyChunks = pgcopyChunks - earlier.pgcopyChunks;
        d.pgcopyParallel = pgcopyParallel - earlier.pgcopyParallel;
        d.pgcopyQueuedChunks =
            pgcopyQueuedChunks - earlier.pgcopyQueuedChunks;
        d.pgcopyBusyCycles = pgcopyBusyCycles - earlier.pgcopyBusyCycles;
        d.hostFastTouches = hostFastTouches - earlier.hostFastTouches;
        return d;
    }
};

}  // namespace memtier

#endif  // MEMTIER_OS_VMSTAT_H_

/**
 * @file
 * Per-process page table: virtual page -> frame/tier plus the metadata
 * AutoNUMA tiering needs (PROT_NONE scan marker, scan timestamp) and the
 * metadata reclaim needs (recency stamp, owner, pin state).
 */

#ifndef MEMTIER_OS_PAGE_TABLE_H_
#define MEMTIER_OS_PAGE_TABLE_H_

#include <cstdint>
#include <unordered_map>

#include "base/types.h"
#include "mem/memory_tier.h"

namespace memtier {

/**
 * Metadata of one mapped page. A huge (PMD) entry uses the same record:
 * @ref huge is set, @ref frame is the 512-frame-aligned base frame, and
 * the entry is keyed by the 2 MiB-aligned base vpn in the huge table.
 */
struct PageMeta
{
    FrameNum frame = 0;          ///< Frame within the owning tier.
    MemNode node = MemNode::DRAM;
    FrameOwner owner = FrameOwner::App;
    bool present = false;
    bool protNone = false;       ///< Marked by the AutoNUMA scanner.
    bool pinned = false;         ///< mbind-bound; never migrated/scanned.
    bool promoted = false;       ///< Was promoted NVM->DRAM at least once.
    bool exchanged = false;      ///< Entered DRAM via a page exchange.
    bool huge = false;           ///< PMD mapping covering 512 base pages.
    Cycles scanTime = 0;         ///< When the scanner marked the page.
    Cycles lastAccess = 0;       ///< Updated on page-walk (A-bit model).
    Cycles clockStamp = 0;       ///< Last visit of the reclaim clock hand.
};

/**
 * Hash-map-backed page table: one map of 4 KiB PTEs plus one map of
 * PMD entries keyed by 2 MiB-aligned base vpn. A virtual page is mapped
 * by at most one of the two (the invariant checker enforces it).
 */
class PageTable
{
  public:
    /** Metadata of @p vpn, or nullptr when unmapped. */
    PageMeta *find(PageNum vpn);

    /** Const lookup. */
    const PageMeta *find(PageNum vpn) const;

    /** Insert a fresh entry for @p vpn (must not exist). */
    PageMeta &insert(PageNum vpn);

    /** Remove @p vpn's entry (must exist). */
    void erase(PageNum vpn);

    /** PMD entry covering @p vpn (any page of the range), or nullptr. */
    PageMeta *findHuge(PageNum vpn);

    /** Const PMD lookup. */
    const PageMeta *findHuge(PageNum vpn) const;

    /** Insert a fresh PMD entry for the range at @p base_vpn. */
    PageMeta &insertHuge(PageNum base_vpn);

    /** Remove the PMD entry at @p base_vpn (must exist). */
    void eraseHuge(PageNum base_vpn);

    /** Number of mapped 4 KiB pages (PMD entries not included). */
    std::size_t size() const { return table.size(); }

    /** Number of live PMD mappings. */
    std::size_t hugeSize() const { return hugeTable.size(); }

    /** All entries, for consistency sweeps (the invariant checker). */
    const std::unordered_map<PageNum, PageMeta> &
    entries() const
    {
        return table;
    }

    /** All PMD entries keyed by base vpn. */
    const std::unordered_map<PageNum, PageMeta> &
    hugeEntries() const
    {
        return hugeTable;
    }

  private:
    std::unordered_map<PageNum, PageMeta> table;
    std::unordered_map<PageNum, PageMeta> hugeTable;
};

}  // namespace memtier

#endif  // MEMTIER_OS_PAGE_TABLE_H_

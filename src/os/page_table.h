/**
 * @file
 * Per-process page table: virtual page -> frame/tier plus the metadata
 * AutoNUMA tiering needs (PROT_NONE scan marker, scan timestamp) and the
 * metadata reclaim needs (recency stamp, owner, pin state).
 */

#ifndef MEMTIER_OS_PAGE_TABLE_H_
#define MEMTIER_OS_PAGE_TABLE_H_

#include <cstdint>
#include <unordered_map>

#include "base/types.h"
#include "mem/memory_tier.h"

namespace memtier {

/** Metadata of one mapped page. */
struct PageMeta
{
    FrameNum frame = 0;          ///< Frame within the owning tier.
    MemNode node = MemNode::DRAM;
    FrameOwner owner = FrameOwner::App;
    bool present = false;
    bool protNone = false;       ///< Marked by the AutoNUMA scanner.
    bool pinned = false;         ///< mbind-bound; never migrated/scanned.
    bool promoted = false;       ///< Was promoted NVM->DRAM at least once.
    bool exchanged = false;      ///< Entered DRAM via a page exchange.
    Cycles scanTime = 0;         ///< When the scanner marked the page.
    Cycles lastAccess = 0;       ///< Updated on page-walk (A-bit model).
    Cycles clockStamp = 0;       ///< Last visit of the reclaim clock hand.
};

/** Hash-map-backed page table. */
class PageTable
{
  public:
    /** Metadata of @p vpn, or nullptr when unmapped. */
    PageMeta *find(PageNum vpn);

    /** Const lookup. */
    const PageMeta *find(PageNum vpn) const;

    /** Insert a fresh entry for @p vpn (must not exist). */
    PageMeta &insert(PageNum vpn);

    /** Remove @p vpn's entry (must exist). */
    void erase(PageNum vpn);

    /** Number of mapped pages. */
    std::size_t size() const { return table.size(); }

    /** All entries, for consistency sweeps (the invariant checker). */
    const std::unordered_map<PageNum, PageMeta> &
    entries() const
    {
        return table;
    }

  private:
    std::unordered_map<PageNum, PageMeta> table;
};

}  // namespace memtier

#endif  // MEMTIER_OS_PAGE_TABLE_H_

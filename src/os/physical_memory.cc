#include "os/physical_memory.h"

namespace memtier {

PhysicalMemory::PhysicalMemory(const TierParams &dram, const TierParams &nvm)
    : tiers{MemoryTier(dram), MemoryTier(nvm)}
{
}

MemoryTier &
PhysicalMemory::tier(MemNode node)
{
    return tiers[static_cast<int>(node)];
}

const MemoryTier &
PhysicalMemory::tier(MemNode node) const
{
    return tiers[static_cast<int>(node)];
}

}  // namespace memtier

#include "os/kernel.h"

#include <algorithm>

#include "base/logging.h"
#include "fault/fault_injector.h"
#include "os/invariants.h"

namespace memtier {

Kernel::Kernel(PhysicalMemory &phys, const KernelParams &params)
    : phys(phys), cfg(params), breaker(params.breaker),
      copyEngine_(CopyEngineParams{params.copyThreads,
                                   params.copyChunkPages})
{
    // THP wants VMA starts on PMD boundaries so collapse-eligible
    // ranges exist; 4 KiB mode keeps the legacy page-aligned layout.
    if (cfg.thp.enabled)
        space.setHugeAlignment(true);
}

void
Kernel::setShootdownClient(TlbShootdownClient *client)
{
    shootdownClient = client;
}

void
Kernel::setTieringPolicy(TieringPolicy *policy)
{
    tieringPolicy = policy;
}

void
Kernel::setSyscallObserver(SyscallObserver *obs)
{
    observer = obs;
}

void
Kernel::setFaultInjector(FaultInjector *injector)
{
    faults = injector;
}

void
Kernel::setInvariantChecker(InvariantChecker *checker)
{
    invariants = checker;
}

void
Kernel::noteEvent(Cycles now)
{
    if (invariants)
        invariants->onEvent(now);
}

void
Kernel::recordMigration(bool success, Cycles now)
{
    if (breaker.record(success, now)) {
        ++stats.breakerTrips;
        breakerOpenNotified = true;
        if (tieringPolicy)
            tieringPolicy->onBreakerEvent(true, now);
    }
}

Cycles
Kernel::chargedCopy(Cycles now, std::uint64_t bytes)
{
    const Cycles legacy = roundUpPages(bytes) * cfg.migratePageCycles;
    const Cycles charged = copyEngine_.copy(now, bytes, legacy);
    mirrorCopyCounters();
    return charged;
}

Cycles
Kernel::chargedCopyHuge(Cycles now)
{
    const Cycles charged =
        copyEngine_.copy(now, kHugePageSize, cfg.hugeMigrateCycles);
    mirrorCopyCounters();
    return charged;
}

void
Kernel::backgroundCopy(Cycles now, std::uint64_t bytes)
{
    copyEngine_.background(
        now, bytes, roundUpPages(bytes) * cfg.migratePageCycles);
    mirrorCopyCounters();
}

void
Kernel::mirrorCopyCounters()
{
    // Only a parallel pool surfaces pgcopy_* counters; a single-worker
    // engine keeps vmstat byte-identical to the pre-engine kernel so
    // every captured golden still matches.
    if (!copyEngine_.parallel())
        return;
    stats.pgcopyChunks = copyEngine_.chunks();
    stats.pgcopyParallel = copyEngine_.parallelCopies();
    stats.pgcopyQueuedChunks = copyEngine_.queuedChunks();
    stats.pgcopyBusyCycles = copyEngine_.busyCycles();
}

bool
Kernel::migrationsPaused(Cycles now)
{
    const bool open = breaker.isOpen(now);
    if (!open && breakerOpenNotified) {
        breakerOpenNotified = false;
        if (tieringPolicy)
            tieringPolicy->onBreakerEvent(false, now);
    }
    return open;
}

std::optional<FrameNum>
Kernel::allocFrame(MemNode node, FrameOwner owner, Cycles now)
{
    if (node == MemNode::DRAM && faults &&
        faults->shouldFail(FaultPoint::FrameAlloc, now)) {
        ++stats.pgallocFail;
        return std::nullopt;
    }
    return phys.tier(node).allocate(owner);
}

void
Kernel::shootdown(PageNum vpn)
{
    // Every remap funnels through a shootdown (migration, demotion,
    // exchange, collapse/split, munmap, scanner marking), so bumping the
    // epoch here covers all of them. Over-bumping is safe: it only costs
    // software translation caches a refill.
    ++xlatEpoch;
    if (shootdownClient)
        shootdownClient->tlbShootdown(vpn);
}

void
Kernel::shootdownHuge(PageNum base_vpn)
{
    ++xlatEpoch;
    if (shootdownClient)
        shootdownClient->tlbShootdownHuge(base_vpn);
}

PageMeta *
Kernel::lruMeta(PageNum vpn)
{
    // LRU lists hold 4 KiB vpns and huge base vpns alike.
    PageMeta *m = pt.find(vpn);
    return m != nullptr ? m : pt.findHuge(vpn);
}

std::uint64_t
Kernel::minWatermarkPages() const
{
    // Watermarks track the capacity still backed by healthy frames:
    // retired frames are gone for good, so a tier eroded by the
    // memory-failure path keeps proportionate reserves. Identical to
    // totalPages() while nothing has been retired.
    const auto total = phys.dram().healthyPages();
    return std::max<std::uint64_t>(
        16, static_cast<std::uint64_t>(cfg.minWatermarkFrac *
                                       static_cast<double>(total)));
}

std::uint64_t
Kernel::lowWatermarkPages() const
{
    const auto total = phys.dram().healthyPages();
    return std::max<std::uint64_t>(
        32, static_cast<std::uint64_t>(cfg.lowWatermarkFrac *
                                       static_cast<double>(total)));
}

std::uint64_t
Kernel::highWatermarkPages() const
{
    const auto total = phys.dram().healthyPages();
    return std::max<std::uint64_t>(
        64, static_cast<std::uint64_t>(cfg.highWatermarkFrac *
                                       static_cast<double>(total)));
}

// -- Clock lists ------------------------------------------------------

void
Kernel::ClockList::add(PageNum vpn)
{
    MEMTIER_ASSERT(pos.count(vpn) == 0, "page already on LRU");
    pos[vpn] = pages.size();
    pages.push_back(vpn);
}

void
Kernel::ClockList::remove(PageNum vpn)
{
    auto it = pos.find(vpn);
    MEMTIER_ASSERT(it != pos.end(), "page not on LRU");
    const std::size_t idx = it->second;
    const PageNum moved = pages.back();
    pages[idx] = moved;
    pages.pop_back();
    pos.erase(it);
    if (moved != vpn)
        pos[moved] = idx;
    if (hand >= pages.size())
        hand = 0;
}

Kernel::ClockList &
Kernel::listFor(const PageMeta &meta)
{
    return meta.owner == FrameOwner::PageCache ? cacheLru : appLru;
}

// -- Syscalls ---------------------------------------------------------

Addr
Kernel::mmap(Cycles now, std::uint64_t bytes, ObjectId object,
             const std::string &site)
{
    const Addr addr = space.mmap(bytes, object, site);
    if (observer)
        observer->onMmap(now, addr, bytes, object, site);
    return addr;
}

void
Kernel::munmap(Cycles now, Addr start)
{
    const Vma *vma = space.findExact(start);
    MEMTIER_ASSERT(vma != nullptr, "munmap of unknown region");
    const std::uint64_t bytes = vma->end - vma->start;
    const ObjectId object = vma->object;

    for (PageNum vpn = pageOf(vma->start); vpn < pageOf(vma->end); ++vpn) {
        if (isHugeBase(vpn)) {
            if (PageMeta *hm = pt.findHuge(vpn); hm != nullptr) {
                freeHugeMapping(vpn, *hm);
                ++stats.thpUnmapHuge;
                vpn += kPagesPerHuge - 1;
                continue;
            }
        }
        PageMeta *meta = pt.find(vpn);
        if (meta == nullptr)
            continue;
        freePage(vpn, *meta);
        pt.erase(vpn);
        shootdown(vpn);
    }
    space.munmap(start);
    if (observer)
        observer->onMunmap(now, start, bytes, object);
    noteEvent(now);
}

void
Kernel::mbind(Addr start, const MemPolicy &policy)
{
    // Binding must precede population (the paper's mapper intercepts the
    // mmap and binds before the application touches the region).
    const Vma *vma = space.findExact(start);
    MEMTIER_ASSERT(vma != nullptr, "mbind of unknown region");
    space.mbind(start, policy);
}

// -- Faults -----------------------------------------------------------

MemNode
Kernel::choosePlacement(const Vma &vma, PageNum vpn)
{
    const MemPolicy &policy = vma.policy;
    if (policy.mode != MemPolicy::Mode::Default) {
        const std::uint64_t index = vpn - pageOf(vma.start);
        return policy.nodeForPage(index);
    }
    // Default policy: DRAM first while above the min watermark
    // (Finding 3: pages land on DRAM because there is space, not
    // because they are hot).
    if (phys.dram().freePages() > minWatermarkPages())
        return MemNode::DRAM;
    return MemNode::NVM;
}

bool
Kernel::tryHugeFaultAlloc(const Vma &vma, PageNum vpn, Cycles now,
                          TouchResult &result)
{
    // Anonymous Default-policy regions only: page-cache ranges are
    // 4 KiB-grained and explicit mbind placements are not widened.
    if (vma.pageCache || vma.policy.mode != MemPolicy::Mode::Default)
        return false;
    const PageNum base = hugeBaseOf(vpn);
    if (pageBase(base) < vma.start ||
        pageBase(base + kPagesPerHuge) > vma.end) {
        return false;  // PMD range not fully inside the VMA.
    }
    for (PageNum p = base; p < base + kPagesPerHuge; ++p) {
        if (pt.find(p) != nullptr)
            return false;  // Partially populated: khugepaged's job.
    }

    // DRAM first while a whole block fits above the reserve; the
    // tiering policy steers placement exactly as for 4 KiB touches.
    MemNode node =
        phys.dram().freePages() > minWatermarkPages() + kPagesPerHuge
            ? MemNode::DRAM
            : MemNode::NVM;
    if (tieringPolicy)
        node = tieringPolicy->onFirstTouchAlloc(vpn, now, node);

    auto frame = phys.tier(node).allocateHuge(FrameOwner::App);
    if (!frame) {
        const MemNode other =
            node == MemNode::DRAM ? MemNode::NVM : MemNode::DRAM;
        frame = phys.tier(other).allocateHuge(FrameOwner::App);
        if (frame)
            node = other;
    }
    if (!frame) {
        // Fragmentation on both tiers: fall back to a 4 KiB page.
        ++stats.thpFaultFallback;
        return false;
    }

    PageMeta &meta = pt.insertHuge(base);
    meta.frame = *frame;
    meta.node = node;
    meta.owner = FrameOwner::App;
    meta.present = true;
    meta.lastAccess = now;
    if (node == MemNode::DRAM)
        appLru.add(base);
    ++stats.thpFaultAlloc;
    result.node = node;
    return true;
}

TouchResult
Kernel::handlePageFault(PageNum vpn, Cycles now)
{
    const Vma *vma = space.find(pageBase(vpn));
    MEMTIER_ASSERT(vma != nullptr, "fault on unmapped address");

    TouchResult result;
    result.pageFault = true;
    result.cost = cfg.pageFaultCycles;
    ++stats.pgfault;

    // THP "always" policy: one fault populates the whole PMD range.
    if (cfg.thp.enabled && cfg.thp.faultAlloc &&
        tryHugeFaultAlloc(*vma, vpn, now, result)) {
        noteEvent(now);
        return result;
    }

    MemNode node = choosePlacement(*vma, vpn);
    // Default-policy regions let the tiering policy steer first-touch
    // placement; explicit mbind placements are never overridden.
    if (tieringPolicy && vma->policy.mode == MemPolicy::Mode::Default)
        node = tieringPolicy->onFirstTouchAlloc(vpn, now, node);
    const FrameOwner owner =
        vma->pageCache ? FrameOwner::PageCache : FrameOwner::App;

    // The first attempt goes through the injectable allocator; fallback
    // attempts below allocate directly so an injected DRAM failure
    // degrades to NVM placement rather than a spurious OOM.
    auto frame = allocFrame(node, owner, now);
    if (!frame && node == MemNode::DRAM) {
        // DRAM-bound allocation with DRAM exhausted: synchronous direct
        // reclaim makes room (pgdemote_direct), as the bound policy
        // cannot fall back.
        if (vma->policy.pinned() && cfg.demoteOnReclaim) {
            reclaimBatch(cfg.directReclaimBatchPages, /*direct=*/true,
                         now);
            result.cost += cfg.migratePageCycles;
            frame = phys.tier(node).allocate(owner);
        }
        if (!frame) {
            node = MemNode::NVM;
            frame = phys.tier(node).allocate(owner);
        }
    }
    if (!frame && node == MemNode::NVM) {
        // NVM-directed placement (policy interleave) with NVM full.
        node = MemNode::DRAM;
        frame = phys.tier(node).allocate(owner);
    }
    if (!frame)
        fatal("physical memory exhausted (both tiers full)");

    PageMeta &meta = pt.insert(vpn);
    meta.frame = *frame;
    meta.node = node;
    meta.owner = owner;
    meta.present = true;
    meta.pinned = vma->policy.pinned();
    meta.lastAccess = now;
    meta.clockStamp = 0;
    if (node == MemNode::DRAM)
        listFor(meta).add(vpn);

    result.node = node;
    noteEvent(now);
    return result;
}

TouchResult
Kernel::touchHugePage(PageNum vpn, PageMeta &hmeta, Cycles now)
{
    TouchResult result;
    if (hmeta.protNone) {
        // One PMD-granularity hint fault stands in for all 512
        // subpages: the trap cost is paid once and the policy's
        // promotion decision covers the whole range.
        hmeta.protNone = false;
        result.hintFault = true;
        result.cost = cfg.hintFaultCycles;
        ++stats.numaHintFaults;
        if (tieringPolicy)
            result.cost += tieringPolicy->onHintFault(vpn, now, hmeta);
    }
    // The policy may have migrated the range -- or demand-split it,
    // invalidating hmeta -- so re-resolve before stamping recency.
    PageMeta *after = pt.findHuge(vpn);
    if (after == nullptr)
        after = pt.find(vpn);
    MEMTIER_ASSERT(after != nullptr && after->present,
                   "page vanished during huge hint fault");
    after->lastAccess = now;
    result.node = after->node;
    return result;
}

TouchResult
Kernel::touchPage(PageNum vpn, Cycles now, MemOp op)
{
    (void)op;  // Loads and stores fault identically for our purposes.
    PageMeta *meta = pt.find(vpn);
    PageMeta *hmeta = nullptr;
    if (meta == nullptr || !meta->present) {
        hmeta = pt.findHuge(vpn);
        if (hmeta == nullptr || !hmeta->present)
            return handlePageFault(vpn, now);
    }

    // ECC errors strike mapped frames on access: the hardware reports
    // them against the physical address this touch hit, so the query
    // happens before the touch is serviced.
    TouchResult ecc;
    bool remapped = false;
    if (maybeEccFault(vpn, hmeta != nullptr ? hugeBaseOf(vpn) : kNoPage,
                      now, ecc, &remapped)) {
        return ecc;  // SIGBUS, or a cache drop + re-read, completed it.
    }
    if (remapped) {
        // Soft offline split and/or moved the mapping; re-resolve.
        meta = pt.find(vpn);
        hmeta = meta != nullptr && meta->present ? nullptr
                                                 : pt.findHuge(vpn);
    }
    if (hmeta != nullptr && hmeta->present) {
        TouchResult r = touchHugePage(vpn, *hmeta, now);
        r.cost += ecc.cost;
        return r;
    }
    MEMTIER_ASSERT(meta != nullptr && meta->present,
                   "page vanished in the memory-failure handler");

    TouchResult result;
    result.cost = ecc.cost;
    if (meta->protNone) {
        // NUMA hint page fault (Section 2.2): clear the marker, record
        // the fault, and let the tiering policy decide on promotion.
        meta->protNone = false;
        result.hintFault = true;
        result.cost += cfg.hintFaultCycles;
        ++stats.numaHintFaults;
        if (tieringPolicy)
            result.cost += tieringPolicy->onHintFault(vpn, now, *meta);
        // The policy may have migrated the page; re-read below.
        meta = pt.find(vpn);
        MEMTIER_ASSERT(meta != nullptr, "page vanished during hint fault");
    }
    meta->lastAccess = now;
    result.node = meta->node;
    return result;
}

bool
Kernel::fastTouch(PageNum vpn, TouchResult *out) const
{
    // Host workers may only resolve a touch locally when touchPage
    // would have done nothing but stamp recency: the page is present
    // and carries no hint marker, and no fault injector is installed
    // (the executor refuses to go parallel with one, so the ECC query
    // touchPage would make is a no-op here). Everything else needs a
    // kernel round.
    const PageMeta *meta = pt.find(vpn);
    if (meta != nullptr && meta->present) {
        if (meta->protNone)
            return false;
        out->node = meta->node;
        out->cost = 0;
        out->pageFault = false;
        out->hintFault = false;
        out->sigbus = false;
        return true;
    }
    const PageMeta *hmeta = pt.findHuge(vpn);
    if (hmeta != nullptr && hmeta->present && !hmeta->protNone) {
        out->node = hmeta->node;
        out->cost = 0;
        out->pageFault = false;
        out->hintFault = false;
        out->sigbus = false;
        return true;
    }
    return false;
}

void
Kernel::applyDeferredRecency(PageNum vpn, Cycles stamp)
{
    // The page may have been remapped, collapsed, split or unmapped
    // between the worker's probe and this round; stamp whatever
    // mapping covers it now, if any.
    PageMeta *meta = pt.find(vpn);
    if (meta != nullptr && meta->present) {
        meta->lastAccess = stamp;
        return;
    }
    PageMeta *hmeta = pt.findHuge(vpn);
    if (hmeta != nullptr && hmeta->present)
        hmeta->lastAccess = stamp;
}

// -- Memory failure (hwpoison) ----------------------------------------

bool
Kernel::maybeEccFault(PageNum vpn, PageNum huge_base, Cycles now,
                      TouchResult &result, bool *remapped)
{
    if (faults == nullptr)
        return false;
    // Both streams advance independently so each point's trace depends
    // only on the plan seed, not on the other point's outcomes.
    const bool ue = faults->shouldFail(FaultPoint::EccUncorrectable, now);
    const bool ce = faults->shouldFail(FaultPoint::EccCorrectable, now);
    if (!ue && !ce)
        return false;

    if (huge_base != kNoPage) {
        PageMeta *hm = pt.findHuge(vpn);
        MEMTIER_ASSERT(hm != nullptr && hm->present,
                       "ECC fault on unmapped huge range");
        const FrameNum subframe = hm->frame + (vpn - huge_base);
        const MemNode node = hm->node;
        if (ue) {
            ++stats.hwpoisonUe;
            // Poison lands on one 4 KiB subframe: split the PMD first
            // so only that frame is retired, as Linux memory_failure()
            // splits THP before poisoning the head/tail page.
            splitHugePage(huge_base, now);
            PageMeta *m = pt.find(vpn);
            MEMTIER_ASSERT(m != nullptr && m->present,
                           "THP split lost the poisoned page");
            hardMemoryFailure(vpn, *m, now, result);
            *remapped = true;
            return true;
        }
        ++stats.hwpoisonCe;
        if (phys.tier(node).recordCorrectable(subframe) >=
            cfg.ceRetireThreshold) {
            splitHugePage(huge_base, now);
            PageMeta *m = pt.find(vpn);
            MEMTIER_ASSERT(m != nullptr && m->present,
                           "THP split lost the failing page");
            result.cost += softOfflinePage(vpn, *m, now);
            *remapped = true;
        }
        return false;
    }

    PageMeta *meta = pt.find(vpn);
    MEMTIER_ASSERT(meta != nullptr && meta->present,
                   "ECC fault on unmapped page");
    if (ue) {
        ++stats.hwpoisonUe;
        hardMemoryFailure(vpn, *meta, now, result);
        *remapped = true;
        return true;
    }
    ++stats.hwpoisonCe;
    if (phys.tier(meta->node).recordCorrectable(meta->frame) >=
        cfg.ceRetireThreshold) {
        result.cost += softOfflinePage(vpn, *meta, now);
        *remapped = true;
    }
    return false;
}

void
Kernel::hardMemoryFailure(PageNum vpn, PageMeta &meta, Cycles now,
                          TouchResult &result)
{
    result.cost += cfg.memoryFailureCycles;
    const MemNode node = meta.node;
    const FrameOwner owner = meta.owner;
    const FrameNum frame = meta.frame;

    // Unmap and poison: the frame is permanently gone, so the tier's
    // effective capacity shrinks by one page.
    if (node == MemNode::DRAM)
        listFor(meta).remove(vpn);
    phys.tier(node).retire(frame, owner);
    pt.erase(vpn);
    shootdown(vpn);
    ++stats.hwpoisonFramesRetired;
    // Hard offlines feed the breaker as failures so an offline storm
    // trips it and pauses promotions into the eroding tier.
    recordMigration(false, now);
    if (tieringPolicy)
        tieringPolicy->onMemoryFailure(vpn, node, true, now);

    if (owner == FrameOwner::PageCache) {
        // Clean page-cache page: its backing file is intact, so drop
        // the poisoned copy and re-read into a fresh frame. The touch
        // completes transparently, just slower.
        ++stats.hwpoisonCacheDropped;
        const std::uint64_t faults_before = stats.pgfault;
        const TouchResult refault = handlePageFault(vpn, now);
        MEMTIER_ASSERT(stats.pgfault == faults_before + 1,
                       "fault accounting");
        --stats.pgfault;  // Not a user minor fault (as in ensureCached).
        result.cost += refault.cost + cfg.diskReadCyclesPerPage;
        result.node = refault.node;
    } else {
        // Anonymous (dirty) page: the only copy of the data just died.
        // Raise the SIGBUS-analogue; the workload aborts the affected
        // iteration or fails the in-flight request.
        ++stats.hwpoisonSigbus;
        result.sigbus = true;
        result.node = node;
    }
    noteEvent(now);
}

Cycles
Kernel::softOfflinePage(PageNum vpn, PageMeta &meta, Cycles now)
{
    Cycles cost = cfg.memoryFailureCycles;
    const MemNode src = meta.node;
    const MemNode other =
        src == MemNode::DRAM ? MemNode::NVM : MemNode::DRAM;
    for (std::uint32_t attempt = 0;; ++attempt) {
        // Prefer a healthy frame on the same tier; fall back to the
        // other tier when the home tier is full. mbind-pinned pages
        // never change tier, matching the binding contract.
        MemNode dst = src;
        auto frame = phys.tier(src).allocate(meta.owner);
        if (!frame && !meta.pinned) {
            frame = phys.tier(other).allocate(meta.owner);
            if (frame)
                dst = other;
        }
        if (!frame) {
            // No healthy frame anywhere: abandon the offline. The page
            // stays on its failing frame and its CE history resets so
            // the next threshold crossing retries.
            ++stats.hwpoisonSoftOfflineFail;
            phys.tier(src).clearCorrectable(meta.frame);
            recordMigration(false, now);
            return cost;
        }
        if (faults && faults->shouldFail(FaultPoint::Migration, now)) {
            // Transient copy failure: bounded retry with backoff, like
            // the promotion path (soft offline is just a migration).
            phys.tier(dst).free(*frame, meta.owner);
            ++stats.pgmigrateFail;
            recordMigration(false, now);
            if (tieringPolicy)
                tieringPolicy->onMigrationFailure(vpn, now, false);
            if (attempt >= cfg.migrateRetryLimit) {
                ++stats.hwpoisonSoftOfflineFail;
                phys.tier(src).clearCorrectable(meta.frame);
                return cost;
            }
            cost += cfg.migrateRetryBackoffCycles << attempt;
            continue;
        }

        // Copy succeeded: remap onto the healthy frame and retire the
        // failing one. Deliberately not counted as pgmigrate/pgdemote:
        // those counters keep their promotion+demotion+exchange
        // identity, hwpoison_soft_offline counts this path.
        if (src == MemNode::DRAM)
            listFor(meta).remove(vpn);
        phys.tier(src).retire(meta.frame, meta.owner);
        meta.frame = *frame;
        meta.node = dst;
        meta.protNone = false;  // The marker's hint fault is forfeit.
        if (dst == MemNode::DRAM)
            listFor(meta).add(vpn);
        shootdown(vpn);

        ++stats.hwpoisonSoftOffline;
        ++stats.hwpoisonFramesRetired;
        recordMigration(true, now);
        if (tieringPolicy)
            tieringPolicy->onMemoryFailure(vpn, src, false, now);
        noteEvent(now);
        return cost + chargedCopy(now, kPageSize);
    }
}

MemNode
Kernel::nodeOf(PageNum vpn) const
{
    const PageMeta *meta = pt.find(vpn);
    if (meta == nullptr)
        meta = pt.findHuge(vpn);
    MEMTIER_ASSERT(meta != nullptr && meta->present,
                   "nodeOf on non-present page");
    return meta->node;
}

const PageMeta *
Kernel::pageMeta(PageNum vpn) const
{
    const PageMeta *meta = pt.find(vpn);
    return meta != nullptr ? meta : pt.findHuge(vpn);
}

Translation
Kernel::translate(PageNum vpn) const
{
    Translation tr;
    tr.epoch = xlatEpoch;
    if (const PageMeta *hm = pt.findHuge(vpn);
        hm != nullptr && hm->present) {
        tr.frame = hm->frame + (vpn - hugeBaseOf(vpn));
        tr.node = hm->node;
        tr.present = true;
        tr.huge = true;
        return tr;
    }
    if (const PageMeta *m = pt.find(vpn); m != nullptr && m->present) {
        tr.frame = m->frame;
        tr.node = m->node;
        tr.present = true;
    }
    return tr;
}

// -- Page cache -------------------------------------------------------

Addr
Kernel::registerFile(std::uint64_t bytes, const std::string &name)
{
    const ObjectId file_id = nextFileId--;
    return space.mmap(bytes, file_id, "pagecache:" + name,
                      /*page_cache=*/true);
}

Cycles
Kernel::ensureCached(PageNum vpn, Cycles now)
{
    PageMeta *meta = pt.find(vpn);
    if (meta != nullptr && meta->present)
        return 0;
    // Fetch from disk into a fresh page-cache page. Population goes
    // through the normal fault path so placement policy and accounting
    // apply, but does not count as a user minor fault.
    const std::uint64_t faults_before = stats.pgfault;
    TouchResult r = handlePageFault(vpn, now);
    MEMTIER_ASSERT(stats.pgfault == faults_before + 1, "fault accounting");
    --stats.pgfault;
    Cycles cost = r.cost + cfg.diskReadCyclesPerPage;
    // A transient read error re-issues the whole disk read. Reads are
    // bounded-retry: after diskReadRetryLimit re-issues the read is
    // taken as good (media errors are not modelled as permanent).
    for (std::uint32_t retry = 0;
         faults && retry < cfg.diskReadRetryLimit &&
         faults->shouldFail(FaultPoint::DiskRead, now);
         ++retry) {
        ++stats.diskReadRetry;
        cost += cfg.diskReadCyclesPerPage;
    }
    return cost;
}

// -- Reclaim / migration ----------------------------------------------

void
Kernel::freePage(PageNum vpn, PageMeta &meta)
{
    if (meta.node == MemNode::DRAM)
        listFor(meta).remove(vpn);
    phys.tier(meta.node).free(meta.frame, meta.owner);
}

bool
Kernel::demotePage(PageNum vpn, PageMeta &meta, bool direct, Cycles now)
{
    MEMTIER_ASSERT(meta.node == MemNode::DRAM, "demoting non-DRAM page");
    MEMTIER_ASSERT(!meta.huge, "huge pages are split before demotion");
    auto frame = phys.nvm().allocate(meta.owner);
    if (!frame) {
        // Real ENOMEM: the slow tier is full, nothing to retry against.
        ++stats.pgmigrateFail;
        if (tieringPolicy)
            tieringPolicy->onMigrationFailure(vpn, now, false);
        return false;
    }
    if (faults && faults->shouldFail(FaultPoint::Migration, now)) {
        // Transient copy failure: release the target frame; reclaim
        // moves on and will revisit the page on a later pass.
        phys.nvm().free(*frame, meta.owner);
        ++stats.pgmigrateFail;
        recordMigration(false, now);
        if (tieringPolicy)
            tieringPolicy->onMigrationFailure(vpn, now, false);
        return false;
    }

    listFor(meta).remove(vpn);
    phys.dram().free(meta.frame, meta.owner);
    meta.frame = *frame;
    meta.node = MemNode::NVM;
    meta.protNone = false;
    shootdown(vpn);

    ++stats.pgmigrateSuccess;
    if (direct)
        ++stats.pgdemoteDirect;
    else
        ++stats.pgdemoteKswapd;
    if (meta.promoted) {
        ++stats.pgpromoteDemoted;
        meta.promoted = false;
    }
    if (meta.exchanged) {
        ++stats.pgexchangeThrash;
        meta.exchanged = false;
    }
    recordMigration(true, now);
    // Reclaim's copy runs on the engine's workers in the background:
    // it occupies copy bandwidth but never stalls the reclaiming
    // context (kswapd overlaps copy with continued execution).
    backgroundCopy(now, kPageSize);
    return true;
}

bool
Kernel::dropCachePage(PageNum vpn, PageMeta &meta)
{
    MEMTIER_ASSERT(meta.owner == FrameOwner::PageCache,
                   "dropping a non-cache page");
    freePage(vpn, meta);
    pt.erase(vpn);
    shootdown(vpn);
    ++stats.pageCacheDrops;
    return true;
}

PageNum
Kernel::pickVictim(ClockList &list, Cycles now)
{
    // Second-chance clock: a page touched since the hand last visited it
    // is skipped (and its visit stamp refreshed); an untouched page is
    // the victim. Bound the sweep to two revolutions.
    const std::size_t budget = std::max<std::size_t>(1, list.size()) * 2;
    for (std::size_t i = 0; i < budget && !list.pages.empty(); ++i) {
        if (list.hand >= list.pages.size())
            list.hand = 0;
        const PageNum vpn = list.pages[list.hand];
        PageMeta *meta = lruMeta(vpn);
        MEMTIER_ASSERT(meta != nullptr, "LRU references unmapped page");
        if (meta->pinned) {
            ++list.hand;
            continue;
        }
        if (meta->lastAccess > meta->clockStamp) {
            meta->clockStamp = now;
            ++list.hand;
            continue;
        }
        return vpn;
    }
    return kNoPage;
}

std::uint32_t
Kernel::reclaimBatch(std::uint32_t target, bool direct, Cycles now)
{
    std::uint32_t reclaimed = 0;
    // Bound on policy vetoes so a veto-everything policy cannot spin
    // reclaim forever: at most one clock revolution's worth of skips.
    std::uint64_t vetoes = 0;
    const std::uint64_t veto_budget = appLru.size() + cacheLru.size() + 1;
    while (reclaimed < target) {
        // Page cache first (it ages fastest: read-once file pages),
        // then application pages.
        ClockList *list = cacheLru.size() > 0 ? &cacheLru : &appLru;
        if (list->pages.empty())
            break;
        PageNum victim = pickVictim(*list, now);
        if (victim == kNoPage)
            break;
        PageMeta *meta = lruMeta(victim);
        MEMTIER_ASSERT(meta != nullptr, "victim vanished");
        if (meta->huge) {
            // Split-on-demote: reclaim migrates at 4 KiB, so a cold
            // huge victim is demand-split first; its subpages rejoin
            // the LRU individually (and stay cold, so this round will
            // demote some of them right away).
            splitHugePage(victim, now);
            meta = pt.find(victim);
            MEMTIER_ASSERT(meta != nullptr, "split produced no PTE");
        }
        if (cfg.demoteOnReclaim && tieringPolicy) {
            const DemotionDecision d = tieringPolicy->onDemotionRequest(
                victim, now, *meta, direct);
            if (d.action == DemotionDecision::Action::Redirect) {
                PageMeta *alt = pt.find(d.alternative);
                if (alt != nullptr && alt->present && !alt->pinned &&
                    alt->node == MemNode::DRAM) {
                    ++stats.pgdemoteVetoed;  // The proposed victim won.
                    victim = d.alternative;
                    meta = alt;
                } else {
                    // Unusable redirect target: treat as a veto.
                    ++stats.pgdemoteVetoed;
                    ++list->hand;  // Move the clock past the victim.
                    if (++vetoes >= veto_budget)
                        break;
                    continue;
                }
            } else if (d.action == DemotionDecision::Action::Veto) {
                ++stats.pgdemoteVetoed;
                ++list->hand;  // Move the clock past the victim.
                if (++vetoes >= veto_budget)
                    break;
                continue;
            }
        }
        bool ok;
        if (cfg.demoteOnReclaim) {
            ok = demotePage(victim, *meta, direct, now);
        } else {
            // Vanilla kernel with no swap: only clean page-cache pages
            // can be reclaimed; application pages stay where they are.
            if (meta->owner != FrameOwner::PageCache)
                break;
            ok = dropCachePage(victim, *meta);
        }
        if (!ok)
            break;
        ++reclaimed;
    }
    return reclaimed;
}

void
Kernel::kswapdTick(Cycles now)
{
    if (phys.dram().freePages() >= lowWatermarkPages())
        return;
    const std::uint64_t deficit =
        highWatermarkPages() - phys.dram().freePages();
    const std::uint32_t target = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(deficit, cfg.kswapdBatchPages));
    reclaimBatch(target, /*direct=*/false, now);
    noteEvent(now);
}

Cycles
Kernel::promoteHugePage(PageNum vpn, Cycles now)
{
    const PageNum base = hugeBaseOf(vpn);
    PageMeta *hm = pt.findHuge(base);
    MEMTIER_ASSERT(hm != nullptr && hm->present, "promoting bad huge page");
    MEMTIER_ASSERT(hm->node == MemNode::NVM, "promoting non-NVM huge page");
    if (hm->pinned)
        return 0;
    if (migrationsPaused(now)) {
        ++stats.promotePaused;
        return 0;
    }

    auto frame = phys.dram().allocateHuge(FrameOwner::App);
    if (!frame) {
        // No contiguous DRAM block: the tiering decision straddles the
        // huge page. Demand-split it and promote just the faulting
        // subpage; the rest stay NVM and hint-fault individually.
        splitHugePage(base, now);
        return promotePage(vpn, now);
    }
    if (faults && faults->shouldFail(FaultPoint::Migration, now)) {
        // Transient bulk-copy failure: release the target block; the
        // range stays NVM and a later hint fault retries. No synchronous
        // retry loop -- a 2 MiB copy is too large to spin on.
        phys.dram().freeHuge(*frame, FrameOwner::App);
        ++stats.pgmigrateFail;
        recordMigration(false, now);
        if (tieringPolicy)
            tieringPolicy->onMigrationFailure(vpn, now, true);
        return 0;
    }

    phys.nvm().freeHuge(hm->frame, FrameOwner::App);
    hm->frame = *frame;
    hm->node = MemNode::DRAM;
    hm->promoted = true;
    appLru.add(base);
    shootdownHuge(base);

    stats.pgpromoteSuccess += kPagesPerHuge;
    stats.pgmigrateSuccess += kPagesPerHuge;
    recordMigration(true, now);
    noteEvent(now);
    return chargedCopyHuge(now);
}

Cycles
Kernel::promotePage(PageNum vpn, Cycles now)
{
    if (const PageMeta *hm = pt.findHuge(vpn);
        hm != nullptr && hm->present) {
        return promoteHugePage(vpn, now);
    }
    PageMeta *meta = pt.find(vpn);
    MEMTIER_ASSERT(meta != nullptr && meta->present, "promoting bad page");
    MEMTIER_ASSERT(meta->node == MemNode::NVM, "promoting non-NVM page");
    if (meta->pinned)
        return 0;
    if (migrationsPaused(now)) {
        ++stats.promotePaused;
        return 0;
    }

    Cycles cost = 0;
    for (std::uint32_t attempt = 0;; ++attempt) {
        auto frame = phys.dram().allocate(meta->owner);
        if (!frame) {
            // Promotion target allocation enters direct reclaim.
            if (cfg.demoteOnReclaim &&
                reclaimBatch(cfg.directReclaimBatchPages, /*direct=*/true,
                             now) > 0) {
                cost += cfg.migratePageCycles;
                frame = phys.dram().allocate(meta->owner);
            }
            if (!frame) {
                // Real ENOMEM: DRAM cannot be freed; retrying cannot
                // help, so fail the promotion outright.
                ++stats.pgmigrateFail;
                if (tieringPolicy)
                    tieringPolicy->onMigrationFailure(vpn, now, true);
                return 0;
            }
        }
        if (faults && faults->shouldFail(FaultPoint::Migration, now)) {
            // Transient copy failure: release the target frame and
            // retry with exponential backoff, unless the bounded retry
            // budget is spent or this failure tripped the breaker.
            phys.dram().free(*frame, meta->owner);
            ++stats.pgmigrateFail;
            recordMigration(false, now);
            if (tieringPolicy)
                tieringPolicy->onMigrationFailure(vpn, now, true);
            if (attempt >= cfg.migrateRetryLimit || migrationsPaused(now))
                return 0;
            cost += cfg.migrateRetryBackoffCycles << attempt;
            ++stats.promoteRetry;
            continue;
        }

        phys.nvm().free(meta->frame, meta->owner);
        meta->frame = *frame;
        meta->node = MemNode::DRAM;
        meta->promoted = true;
        listFor(*meta).add(vpn);
        shootdown(vpn);

        ++stats.pgpromoteSuccess;
        ++stats.pgmigrateSuccess;
        recordMigration(true, now);
        noteEvent(now);
        return cost + chargedCopy(now, kPageSize);
    }
}

PageNum
Kernel::pickExchangeVictim(Cycles now)
{
    if (appLru.pages.empty())
        return kNoPage;
    const PageNum victim = pickVictim(appLru, now);
    // Exchanges swap exactly one 4 KiB frame per side; a huge victim
    // cannot participate (and is not worth splitting just for this).
    if (victim != kNoPage && pt.findHuge(victim) != nullptr &&
        isHugeBase(victim)) {
        return kNoPage;
    }
    return victim;
}

Cycles
Kernel::exchangePages(PageNum nvm_vpn, PageNum dram_vpn, Cycles now)
{
    PageMeta *up = pt.find(nvm_vpn);
    PageMeta *down = pt.find(dram_vpn);
    if (up == nullptr || down == nullptr || !up->present ||
        !down->present || up->pinned || down->pinned ||
        up->node != MemNode::NVM || down->node != MemNode::DRAM) {
        return 0;
    }
    MEMTIER_ASSERT(up->owner == down->owner ||
                       down->owner == FrameOwner::App,
                   "exchange victim must be an app page");
    if (migrationsPaused(now)) {
        ++stats.promotePaused;
        return 0;
    }
    if (faults && faults->shouldFail(FaultPoint::Exchange, now)) {
        // Transient exchange failure: neither page moves, no frame was
        // touched yet, so the abort is free of side effects.
        ++stats.pgmigrateFail;
        recordMigration(false, now);
        if (tieringPolicy)
            tieringPolicy->onMigrationFailure(nvm_vpn, now, true);
        return 0;
    }

    // Swap frames in place: the DRAM page takes the NVM frame and vice
    // versa. Owner accounting moves with the pages so numastat stays
    // correct when the owners differ.
    listFor(*down).remove(dram_vpn);
    if (up->owner != down->owner) {
        phys.dram().free(down->frame, down->owner);
        phys.nvm().free(up->frame, up->owner);
        const auto dram_frame = phys.dram().allocate(up->owner);
        const auto nvm_frame = phys.nvm().allocate(down->owner);
        MEMTIER_ASSERT(dram_frame && nvm_frame,
                       "exchange re-allocation cannot fail");
        up->frame = *dram_frame;
        down->frame = *nvm_frame;
    } else {
        std::swap(up->frame, down->frame);
    }
    up->node = MemNode::DRAM;
    down->node = MemNode::NVM;
    up->protNone = false;
    down->protNone = false;
    up->promoted = true;
    listFor(*up).add(nvm_vpn);
    shootdown(nvm_vpn);
    shootdown(dram_vpn);

    ++stats.pgexchangeSuccess;
    stats.pgmigrateSuccess += 2;  // Two pages moved.
    ++stats.pgpromoteSuccess;
    if (down->promoted) {
        ++stats.pgpromoteDemoted;
        down->promoted = false;
    }
    if (down->exchanged) {
        ++stats.pgexchangeThrash;
        down->exchanged = false;
    }
    up->exchanged = true;
    recordMigration(true, now);
    noteEvent(now);

    // An exchange copies both pages (roughly two migrations' worth of
    // data movement) but needs no reclaim episode; with a parallel
    // copy pool the two page copies proceed on separate workers.
    return chargedCopy(now, 2 * kPageSize);
}

bool
Kernel::dramHasFreeCapacity() const
{
    return phys.dram().freePages() > highWatermarkPages();
}

// -- Transparent huge pages -------------------------------------------

void
Kernel::freeHugeMapping(PageNum base_vpn, PageMeta &hmeta)
{
    if (hmeta.node == MemNode::DRAM)
        appLru.remove(base_vpn);
    phys.tier(hmeta.node).freeHuge(hmeta.frame, hmeta.owner);
    pt.eraseHuge(base_vpn);
    shootdownHuge(base_vpn);
}

CollapseResult
Kernel::collapseHugePage(PageNum base_vpn, Cycles now)
{
    MEMTIER_ASSERT(isHugeBase(base_vpn), "collapse of unaligned range");
    if (pt.findHuge(base_vpn) != nullptr)
        return CollapseResult::NotEligible;

    // Eligibility: fully populated, one tier, App-owned, unpinned, no
    // pending scan marker (collapsing one would swallow its hint fault).
    MemNode node = MemNode::DRAM;
    for (PageNum p = base_vpn; p < base_vpn + kPagesPerHuge; ++p) {
        const PageMeta *m = pt.find(p);
        if (m == nullptr || !m->present || m->pinned || m->protNone ||
            m->owner != FrameOwner::App) {
            return CollapseResult::NotEligible;
        }
        if (p == base_vpn)
            node = m->node;
        else if (m->node != node)
            return CollapseResult::NotEligible;
    }

    // Like khugepaged: allocate the huge frame first, then copy and
    // retire the 512 scattered source frames.
    auto frame = phys.tier(node).allocateHuge(FrameOwner::App);
    if (!frame) {
        ++stats.thpCollapseFail;
        return CollapseResult::AllocFailed;
    }

    Cycles last_access = 0;
    Cycles clock_stamp = 0;
    for (PageNum p = base_vpn; p < base_vpn + kPagesPerHuge; ++p) {
        PageMeta *m = pt.find(p);
        last_access = std::max(last_access, m->lastAccess);
        clock_stamp = std::max(clock_stamp, m->clockStamp);
        if (m->node == MemNode::DRAM)
            listFor(*m).remove(p);
        phys.tier(node).free(m->frame, m->owner);
        pt.erase(p);
        shootdown(p);
    }

    PageMeta &hmeta = pt.insertHuge(base_vpn);
    hmeta.frame = *frame;
    hmeta.node = node;
    hmeta.owner = FrameOwner::App;
    hmeta.present = true;
    hmeta.lastAccess = last_access;
    hmeta.clockStamp = clock_stamp;
    if (node == MemNode::DRAM)
        appLru.add(base_vpn);

    ++stats.thpCollapseAlloc;
    if (tieringPolicy)
        tieringPolicy->onThpCollapse(base_vpn, now);
    noteEvent(now);
    return CollapseResult::Collapsed;
}

void
Kernel::splitHugePage(PageNum base_vpn, Cycles now)
{
    MEMTIER_ASSERT(isHugeBase(base_vpn), "split of unaligned range");
    PageMeta *hm = pt.findHuge(base_vpn);
    MEMTIER_ASSERT(hm != nullptr && hm->present,
                   "splitting a non-huge range");
    const PageMeta copy = *hm;
    if (copy.node == MemNode::DRAM)
        appLru.remove(base_vpn);
    pt.eraseHuge(base_vpn);

    // The 512 subpages inherit the huge page's contiguous frames; the
    // allocator needs no notification (the frames stay allocated and
    // become individually freeable). A pending scan marker is dropped
    // rather than fanned out to 512 PTEs.
    for (std::uint64_t i = 0; i < kPagesPerHuge; ++i) {
        const PageNum vpn = base_vpn + i;
        PageMeta &m = pt.insert(vpn);
        m.frame = copy.frame + i;
        m.node = copy.node;
        m.owner = copy.owner;
        m.present = true;
        m.pinned = copy.pinned;
        m.promoted = copy.promoted;
        m.lastAccess = copy.lastAccess;
        m.clockStamp = copy.clockStamp;
        if (copy.node == MemNode::DRAM)
            listFor(m).add(vpn);
    }
    shootdownHuge(base_vpn);

    ++stats.thpSplitPage;
    if (tieringPolicy)
        tieringPolicy->onThpSplit(base_vpn, now);
    noteEvent(now);
}

std::uint32_t
Kernel::migratePages(Addr start, Addr end, MemNode target,
                     std::uint32_t max_pages, Cycles now)
{
    std::uint32_t moved = 0;
    for (PageNum vpn = pageOf(start);
         vpn < pageOf(end + kPageSize - 1) && moved < max_pages; ++vpn) {
        if (const PageMeta *hm = pt.findHuge(vpn);
            hm != nullptr && hm->present) {
            const PageNum base = hugeBaseOf(vpn);
            if (hm->pinned || hm->node == target) {
                vpn = base + kPagesPerHuge - 1;
                continue;
            }
            if (target == MemNode::NVM ||
                max_pages - moved < kPagesPerHuge) {
                // Demotion (or a budget smaller than the PMD) straddles
                // the huge page: demand-split and fall through to the
                // 4 KiB path for this and the following subpages.
                splitHugePage(base, now);
            } else {
                if (phys.dram().freePages() <=
                    minWatermarkPages() + kPagesPerHuge) {
                    break;
                }
                const Cycles c = promotePage(vpn, now);
                if (pt.findHuge(vpn) != nullptr) {
                    if (c > 0)
                        moved += static_cast<std::uint32_t>(kPagesPerHuge);
                    vpn = base + kPagesPerHuge - 1;
                } else if (c > 0) {
                    // Promotion demand-split the range and moved one
                    // subpage; keep walking the remaining PTEs.
                    ++moved;
                }
                continue;
            }
        }
        PageMeta *meta = pt.find(vpn);
        if (meta == nullptr || !meta->present || meta->pinned ||
            meta->node == target) {
            continue;
        }
        if (target == MemNode::DRAM) {
            if (phys.dram().freePages() <= minWatermarkPages())
                break;  // Do not drain DRAM below its reserve.
            if (promotePage(vpn, now) > 0)
                ++moved;
        } else {
            if (demotePage(vpn, *meta, /*direct=*/true, now))
                ++moved;
        }
    }
    noteEvent(now);
    return moved;
}

NumaStatSnapshot
Kernel::numastat() const
{
    NumaStatSnapshot snap;
    for (int n = 0; n < kNumNodes; ++n) {
        const auto node = static_cast<MemNode>(n);
        const MemoryTier &tier = phys.tier(node);
        snap.appPages[n] = tier.ownerPages(FrameOwner::App);
        snap.cachePages[n] = tier.ownerPages(FrameOwner::PageCache);
        snap.freePages[n] = tier.freePages();
        snap.retiredPages[n] = tier.retiredPages();
    }
    return snap;
}

}  // namespace memtier

/**
 * @file
 * The simulated OS kernel: demand paging with DRAM-first allocation,
 * NUMA policies, page-cache management, and watermark-driven reclaim
 * that demotes cold DRAM pages to NVM (the tiering kernel's reclaim
 * path). The AutoNUMA scanning/promotion policy plugs in through the
 * TieringPolicy hook so the "AutoNUMA off" baseline is just a null hook.
 */

#ifndef MEMTIER_OS_KERNEL_H_
#define MEMTIER_OS_KERNEL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/types.h"
#include "fault/circuit_breaker.h"
#include "mem/copy_engine.h"
#include "os/address_space.h"
#include "os/kernel_hooks.h"
#include "os/page_table.h"
#include "os/physical_memory.h"
#include "os/vmstat.h"
#include "thp/thp_params.h"

namespace memtier {

class FaultInjector;
class InvariantChecker;

/** Kernel tunables (watermarks, fault costs, reclaim batch sizes). */
struct KernelParams
{
    /** DRAM free fraction below which allocation falls back to NVM. */
    double minWatermarkFrac = 0.005;

    /** DRAM free fraction below which kswapd starts demoting. */
    double lowWatermarkFrac = 0.05;

    /** DRAM free fraction kswapd demotes down to. Sized generously so
     *  reclaim keeps enough headroom for the applications' recurring
     *  allocations to land in DRAM (the Figure 7 behaviour). */
    double highWatermarkFrac = 0.10;

    /** Pages demoted per kswapd invocation when below the low mark. */
    std::uint32_t kswapdBatchPages = 512;

    /** Pages demoted by one synchronous direct-reclaim episode. */
    std::uint32_t directReclaimBatchPages = 32;

    /** Cost of servicing a minor page fault, charged to the thread. */
    Cycles pageFaultCycles = 1400;

    /** Cost of taking a NUMA hint fault (trap + PTE fixup). */
    Cycles hintFaultCycles = 1100;

    /** Synchronous cost of migrating one page (copy 4 KiB + remap). */
    Cycles migratePageCycles = 5200;

    /**
     * Synchronous cost of migrating one 2 MiB huge page. A bulk copy
     * amortizes per-page remap overhead, so this is far below 512x the
     * single-page cost (2 MiB at ~20 GB/s plus one remap/shootdown).
     */
    Cycles hugeMigrateCycles = 260'000;

    /** Disk fetch cost per page-cache miss (about 2 GB/s streaming). */
    Cycles diskReadCyclesPerPage = 5200;

    /**
     * True when reclaim demotes pages to NVM (tiering kernel). When
     * false (vanilla kernel / AutoNUMA disabled), reclaim only drops
     * clean page-cache pages and never migrates application pages.
     */
    bool demoteOnReclaim = true;

    /** Extra promotion attempts after a transient migration failure. */
    std::uint32_t migrateRetryLimit = 3;

    /** Backoff charged before retry i is 2^i times this base cost. */
    Cycles migrateRetryBackoffCycles = 1300;

    /** Disk reads re-issued before a faulty page read is declared ok. */
    std::uint32_t diskReadRetryLimit = 4;

    /** Correctable ECC errors on one frame before it is soft-offlined. */
    std::uint32_t ceRetireThreshold = 3;

    /** Cost of the memory-failure handler itself (poison bookkeeping,
     *  rmap walk, shootdown), charged on top of any migration/re-read. */
    Cycles memoryFailureCycles = 20'000;

    /**
     * Copy workers in the migration copy engine (AutoTiering's
     * copy_page.c pool). 1 charges the legacy serial costs exactly;
     * more workers fan chunked copies out and shorten the synchronous
     * migration latency seen by the faulting thread.
     */
    std::uint32_t copyThreads = 1;

    /** Copy-engine chunk granularity in 4 KiB pages. */
    std::uint32_t copyChunkPages = 16;

    /** Migration circuit-breaker trip/decay tunables. */
    CircuitBreakerParams breaker;

    /** Transparent-huge-page model knobs (inert while disabled). */
    ThpParams thp;
};

/** Outcome of one khugepaged collapse attempt. */
enum class CollapseResult : std::uint8_t {
    Collapsed = 0,  ///< The range is now a PMD mapping.
    NotEligible,    ///< Holes, mixed tiers, pinned/marked pages, ...
    AllocFailed,    ///< No contiguous 2 MiB frame (fragmentation).
};

/**
 * Result of the side-effect-free translation fast path. @ref epoch is
 * the global translation epoch the result was read under: a consumer
 * caching the result may reuse it only while the kernel's epoch still
 * equals it (any remap in between bumps the epoch).
 */
struct Translation
{
    FrameNum frame = 0;            ///< Physical frame (4 KiB granular).
    MemNode node = MemNode::DRAM;  ///< Residence tier.
    std::uint64_t epoch = 0;       ///< Epoch the translation is valid for.
    bool present = false;          ///< False when unmapped/not faulted in.
    bool huge = false;             ///< Covered by a PMD mapping.
};

/** Result of resolving one page touch (TLB-miss path). */
struct TouchResult
{
    MemNode node = MemNode::DRAM;  ///< Residence after handling.
    Cycles cost = 0;               ///< Fault/migration cycles charged.
    bool pageFault = false;
    bool hintFault = false;

    /**
     * An uncorrectable ECC error killed this page: the frame was
     * poisoned and the mapping destroyed. The touch did not complete;
     * the workload must treat it like a SIGBUS (abort the iteration /
     * fail the request). @ref node still reports the failed frame's
     * tier so timing stays deterministic.
     */
    bool sigbus = false;
};

/** Per-node usage snapshot (the paper's numastat/free view). */
struct NumaStatSnapshot
{
    std::uint64_t appPages[kNumNodes] = {0, 0};
    std::uint64_t cachePages[kNumNodes] = {0, 0};
    std::uint64_t freePages[kNumNodes] = {0, 0};

    /** Frames permanently offlined by the memory-failure path. */
    std::uint64_t retiredPages[kNumNodes] = {0, 0};
};

/** The simulated kernel. */
class Kernel
{
  public:
    /**
     * @param phys the machine's two-tier physical memory.
     * @param params kernel tunables.
     */
    Kernel(PhysicalMemory &phys, const KernelParams &params);

    /** Install the CPU-side TLB shootdown client (required). */
    void setShootdownClient(TlbShootdownClient *client);

    /** Install the AutoNUMA tiering policy (nullptr = AutoNUMA off). */
    void setTieringPolicy(TieringPolicy *policy);

    /** Install the mmap/munmap observer (nullptr = no tracking). */
    void setSyscallObserver(SyscallObserver *observer);

    /** Install the fault injector (nullptr = infallible kernel). */
    void setFaultInjector(FaultInjector *injector);

    /** Install the invariant checker (nullptr = no checking). */
    void setInvariantChecker(InvariantChecker *checker);

    // -- Syscall surface ---------------------------------------------

    /** mmap: create a VMA; pages populate on first touch. */
    Addr mmap(Cycles now, std::uint64_t bytes, ObjectId object,
              const std::string &site);

    /** munmap: free all pages of the region starting at @p start. */
    void munmap(Cycles now, Addr start);

    /** mbind: set the placement policy of the region at @p start. */
    void mbind(Addr start, const MemPolicy &policy);

    // -- Address translation / faults --------------------------------

    /**
     * Resolve a touch of @p vpn from the page-walk path: services the
     * minor fault or hint fault if one is pending and refreshes the
     * page's recency stamp (accessed-bit model).
     */
    TouchResult touchPage(PageNum vpn, Cycles now, MemOp op);

    /** Residence of a present page (no fault handling, no recency). */
    MemNode nodeOf(PageNum vpn) const;

    /**
     * Read-only touch probe for host workers running outside a kernel
     * round: succeeds only when @p vpn is present with no pending hint
     * fault (4 KiB PTE or PMD mapping), filling @p out with the same
     * result touchPage would produce for that case (zero cost, no
     * flags). The recency stamp is NOT updated -- the caller defers it
     * via applyDeferredRecency at the next round. Returns false when
     * the touch needs any kernel mutation (fault, hint, ECC check);
     * the caller must then fall back to a full touchPage.
     */
    bool fastTouch(PageNum vpn, TouchResult *out) const;

    /**
     * Apply a recency stamp deferred by a fastTouch: stamp @p vpn's
     * metadata (PTE or covering PMD) with @p stamp. Tolerates the page
     * having been unmapped or remapped since the probe.
     */
    void applyDeferredRecency(PageNum vpn, Cycles stamp);

    /**
     * Monotonic counter bumped on every remap: migration, demotion,
     * exchange, THP collapse/split, munmap -- anything that issues a
     * TLB shootdown. Software translation caches key their entries on
     * this value; an entry tagged with an older epoch must be dropped.
     */
    std::uint64_t translationEpoch() const { return xlatEpoch; }

    /**
     * Side-effect-free translation of @p vpn: no fault handling, no
     * recency stamp, no policy callbacks. The batched access path uses
     * this to validate per-thread translation micro-caches.
     */
    Translation translate(PageNum vpn) const;

    /** Page metadata, or nullptr when unmapped (for introspection). */
    const PageMeta *pageMeta(PageNum vpn) const;

    // -- Page cache ---------------------------------------------------

    /**
     * Reserve the page-cache address range for a file of @p bytes.
     * @return base address of the file's cache pages.
     */
    Addr registerFile(std::uint64_t bytes, const std::string &name);

    /**
     * Ensure file page at @p vpn (within a registered file range) is
     * cached, fetching from disk if needed.
     * @return cycles spent (0 when already cached).
     */
    Cycles ensureCached(PageNum vpn, Cycles now);

    // -- Reclaim / migration -----------------------------------------

    /** Periodic kswapd invocation; demotes when below the low mark. */
    void kswapdTick(Cycles now);

    /**
     * Promote @p vpn from NVM to DRAM (called by the tiering policy).
     * May trigger a small direct-reclaim episode to make room.
     * @return synchronous cycles spent, or 0 when promotion failed.
     */
    Cycles promotePage(PageNum vpn, Cycles now);

    /**
     * Directly swap the residence of an NVM page and a DRAM page
     * (AutoTiering-style exchange), bypassing the reclaim path: no
     * frame is allocated or freed on either tier, so the per-tier
     * resident counts are invariant across the call.
     *
     * @param nvm_vpn present, unpinned NVM-resident page (promoted).
     * @param dram_vpn present, unpinned DRAM-resident app page
     *        (demoted in its place).
     * @return synchronous cycles spent (two page copies + remaps), or
     *         0 when the exchange was not possible.
     */
    Cycles exchangePages(PageNum nvm_vpn, PageNum dram_vpn, Cycles now);

    /**
     * Coldest unpinned DRAM-resident application page per the reclaim
     * clock, for use as an exchange victim.
     * @return the page, or kNoPage when none qualifies.
     */
    PageNum pickExchangeVictim(Cycles now);

    /** True when DRAM has free capacity above the high watermark. */
    bool dramHasFreeCapacity() const;

    /**
     * True while the migration circuit breaker is open: promotions and
     * exchanges are refused and scanners should pause marking. Detects
     * the open->closed transition and notifies the tiering policy.
     */
    bool migrationsPaused(Cycles now);

    /** The migration circuit breaker (read-only introspection). */
    const CircuitBreaker &migrationBreaker() const { return breaker; }

    /**
     * Migrate present, unpinned pages of [start, end) to @p target
     * (move_pages(2) equivalent, used by object-granularity policies).
     * Migrations count into the promotion/demotion vmstat counters.
     * Huge pages promote whole when the budget allows and are demand-
     * split otherwise (a tiering decision straddling the PMD).
     *
     * @param max_pages migration budget.
     * @return pages actually migrated.
     */
    std::uint32_t migratePages(Addr start, Addr end, MemNode target,
                               std::uint32_t max_pages, Cycles now);

    // -- Transparent huge pages ---------------------------------------

    /**
     * Collapse the 512-page range at @p base_vpn into a PMD mapping
     * (khugepaged's work): every page must be present, on the same
     * tier, App-owned, unpinned, and free of a pending scan marker,
     * and a contiguous 2 MiB frame must be available on that tier.
     */
    CollapseResult collapseHugePage(PageNum base_vpn, Cycles now);

    /**
     * Split the PMD mapping at @p base_vpn back into 512 PTEs over the
     * same (contiguous) frames. Accounting-only at the allocator level;
     * the subpages become individually migratable afterwards.
     */
    void splitHugePage(PageNum base_vpn, Cycles now);

    /** True when @p vpn is covered by a present PMD mapping. */
    bool
    isHugeMapped(PageNum vpn) const
    {
        const PageMeta *hm = pt.findHuge(vpn);
        return hm != nullptr && hm->present;
    }

    /** Mutable PMD metadata covering @p vpn (scanner marks it). */
    PageMeta *hugeMetaMutable(PageNum vpn) { return pt.findHuge(vpn); }

    /** Issue a huge-TLB shootdown for the range at @p base_vpn. */
    void shootdownHuge(PageNum base_vpn);

    /** Live PMD mappings (for reports). */
    std::size_t hugeMappings() const { return pt.hugeSize(); }

    // -- Introspection ------------------------------------------------

    /** Cumulative counters. */
    const VmStat &vmstat() const { return stats; }

    /** Mutable counters (the tiering policy updates candidate counts). */
    VmStat &vmstatMutable() { return stats; }

    /** Per-node usage (numastat + free equivalent). */
    NumaStatSnapshot numastat() const;

    /** The process address space (scanner iterates its VMAs). */
    const AddressSpace &addressSpace() const { return space; }

    /** Physical memory (tier timing access from the CPU model). */
    PhysicalMemory &physicalMemory() { return phys; }

    /** Mutable page metadata (scanner marks PROT_NONE through this). */
    PageMeta *pageMetaMutable(PageNum vpn) { return pt.find(vpn); }

    /** Issue a TLB shootdown for @p vpn (used by the scanner). */
    void shootdown(PageNum vpn);

    /** Kernel tunables in effect. */
    const KernelParams &params() const { return cfg; }

    /** The migration copy engine (bandwidth/queue introspection). */
    const CopyEngine &copyEngine() const { return copyEngine_; }

    /** Resize the migration copy worker pool (live "copy_threads"
     *  tunable); a same-size call is a strict no-op. */
    void setCopyThreads(std::uint32_t workers)
    {
        copyEngine_.setWorkers(workers);
    }

  private:
    friend class InvariantChecker;  ///< Reads internal state, only.

    /** Which reclaim LRU a DRAM page sits on. */
    enum class LruList : std::uint8_t { AppLru, CacheLru };

    /** One CLOCK list over DRAM-resident pages. */
    struct ClockList
    {
        std::vector<PageNum> pages;
        std::unordered_map<PageNum, std::size_t> pos;
        std::size_t hand = 0;

        void add(PageNum vpn);
        void remove(PageNum vpn);
        bool contains(PageNum vpn) const { return pos.count(vpn) != 0; }
        std::size_t size() const { return pages.size(); }
    };

    TouchResult handlePageFault(PageNum vpn, Cycles now);

    /**
     * Query the ECC fault points for a touch of @p vpn on @p meta's
     * frame and run the memory-failure handler when one fires. A UE
     * takes the hard path (@ref hardMemoryFailure); a CE past the
     * retire threshold soft-offlines the page. A huge mapping is split
     * first so only one 4 KiB frame is ever retired.
     *
     * @param huge_base base vpn of the covering PMD, or kNoPage.
     * @param remapped set when the mapping was split or moved (the
     *        caller must re-resolve its metadata pointers).
     * @return true when the handler completed the touch itself (SIGBUS
     *         raised, or a cache page dropped and re-read) and @p
     *         result holds the final outcome.
     */
    bool maybeEccFault(PageNum vpn, PageNum huge_base, Cycles now,
                       TouchResult &result, bool *remapped);

    /**
     * Hard memory-failure path for a present 4 KiB mapping (Linux
     * memory_failure()): unmap, retire the frame, then either re-read
     * a clean page-cache page from disk or raise the SIGBUS-analogue
     * for an anonymous page.
     */
    void hardMemoryFailure(PageNum vpn, PageMeta &meta, Cycles now,
                           TouchResult &result);

    /**
     * Soft-offline @p vpn (Linux soft_offline_page()): migrate it to a
     * healthy frame on the same tier (fallback: the other tier) with
     * the usual bounded retry/backoff, then retire the old frame. On
     * exhaustion the page stays where it is and its CE history resets.
     * @return cycles charged to the touching thread.
     */
    Cycles softOfflinePage(PageNum vpn, PageMeta &meta, Cycles now);

    MemNode choosePlacement(const Vma &vma, PageNum vpn);
    bool tryHugeFaultAlloc(const Vma &vma, PageNum vpn, Cycles now,
                           TouchResult &result);
    TouchResult touchHugePage(PageNum vpn, PageMeta &hmeta, Cycles now);
    Cycles promoteHugePage(PageNum base_vpn, Cycles now);
    void freeHugeMapping(PageNum base_vpn, PageMeta &hmeta);
    PageMeta *lruMeta(PageNum vpn);
    void freePage(PageNum vpn, PageMeta &meta);
    bool demotePage(PageNum vpn, PageMeta &meta, bool direct,
                    Cycles now);
    bool dropCachePage(PageNum vpn, PageMeta &meta);
    std::uint32_t reclaimBatch(std::uint32_t target, bool direct,
                               Cycles now);
    PageNum pickVictim(ClockList &list, Cycles now);
    ClockList &listFor(const PageMeta &meta);

    /**
     * Allocate a frame on @p node, subject to injected allocation
     * failures on the DRAM tier (NVM allocation only fails for real,
     * when the tier is full).
     */
    std::optional<FrameNum> allocFrame(MemNode node, FrameOwner owner,
                                       Cycles now);

    /** Feed the breaker one migration outcome; count trips. */
    void recordMigration(bool success, Cycles now);

    /**
     * Route a synchronous page copy of @p bytes through the copy
     * engine; the legacy charge is migratePageCycles per 4 KiB page.
     * @return cycles the caller waits for the copy.
     */
    Cycles chargedCopy(Cycles now, std::uint64_t bytes);

    /** Synchronous 2 MiB copy (legacy charge: hugeMigrateCycles). */
    Cycles chargedCopyHuge(Cycles now);

    /** Background (demotion) copy: occupies workers, charges nothing. */
    void backgroundCopy(Cycles now, std::uint64_t bytes);

    /** Mirror copy-engine counters into vmstat (parallel pools only). */
    void mirrorCopyCounters();

    /** Tick the invariant checker after a kernel event. */
    void noteEvent(Cycles now);

    std::uint64_t minWatermarkPages() const;
    std::uint64_t lowWatermarkPages() const;
    std::uint64_t highWatermarkPages() const;

    PhysicalMemory &phys;
    KernelParams cfg;
    AddressSpace space;
    PageTable pt;
    VmStat stats;

    ClockList appLru;    ///< DRAM-resident application pages.
    ClockList cacheLru;  ///< DRAM-resident page-cache pages.

    TlbShootdownClient *shootdownClient = nullptr;
    TieringPolicy *tieringPolicy = nullptr;
    SyscallObserver *observer = nullptr;
    FaultInjector *faults = nullptr;
    InvariantChecker *invariants = nullptr;

    CircuitBreaker breaker;
    bool breakerOpenNotified = false;

    CopyEngine copyEngine_;

    /** Global translation epoch; see translationEpoch(). */
    std::uint64_t xlatEpoch = 0;

    ObjectId nextFileId = -2;  ///< Page-cache "objects" get negative ids.
};

}  // namespace memtier

#endif  // MEMTIER_OS_KERNEL_H_

#include "os/page_table.h"

#include "base/logging.h"

namespace memtier {

PageMeta *
PageTable::find(PageNum vpn)
{
    auto it = table.find(vpn);
    return it == table.end() ? nullptr : &it->second;
}

const PageMeta *
PageTable::find(PageNum vpn) const
{
    auto it = table.find(vpn);
    return it == table.end() ? nullptr : &it->second;
}

PageMeta &
PageTable::insert(PageNum vpn)
{
    auto [it, inserted] = table.emplace(vpn, PageMeta{});
    MEMTIER_ASSERT(inserted, "page already mapped");
    return it->second;
}

void
PageTable::erase(PageNum vpn)
{
    const auto removed = table.erase(vpn);
    MEMTIER_ASSERT(removed == 1, "erasing unmapped page");
}

}  // namespace memtier

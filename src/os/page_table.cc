#include "os/page_table.h"

#include "base/logging.h"

namespace memtier {

PageMeta *
PageTable::find(PageNum vpn)
{
    auto it = table.find(vpn);
    return it == table.end() ? nullptr : &it->second;
}

const PageMeta *
PageTable::find(PageNum vpn) const
{
    auto it = table.find(vpn);
    return it == table.end() ? nullptr : &it->second;
}

PageMeta &
PageTable::insert(PageNum vpn)
{
    auto [it, inserted] = table.emplace(vpn, PageMeta{});
    MEMTIER_ASSERT(inserted, "page already mapped");
    return it->second;
}

void
PageTable::erase(PageNum vpn)
{
    const auto removed = table.erase(vpn);
    MEMTIER_ASSERT(removed == 1, "erasing unmapped page");
}

PageMeta *
PageTable::findHuge(PageNum vpn)
{
    auto it = hugeTable.find(hugeBaseOf(vpn));
    return it == hugeTable.end() ? nullptr : &it->second;
}

const PageMeta *
PageTable::findHuge(PageNum vpn) const
{
    auto it = hugeTable.find(hugeBaseOf(vpn));
    return it == hugeTable.end() ? nullptr : &it->second;
}

PageMeta &
PageTable::insertHuge(PageNum base_vpn)
{
    MEMTIER_ASSERT(isHugeBase(base_vpn), "PMD entry must be 2MiB-aligned");
    auto [it, inserted] = hugeTable.emplace(base_vpn, PageMeta{});
    MEMTIER_ASSERT(inserted, "huge range already mapped");
    it->second.huge = true;
    return it->second;
}

void
PageTable::eraseHuge(PageNum base_vpn)
{
    const auto removed = hugeTable.erase(base_vpn);
    MEMTIER_ASSERT(removed == 1, "erasing unmapped huge range");
}

}  // namespace memtier

#include "os/invariants.h"

#include <array>
#include <cinttypes>
#include <cstdio>
#include <unordered_set>

#include "base/logging.h"
#include "os/kernel.h"

namespace memtier {

InvariantChecker::InvariantChecker(const Kernel &kernel,
                                   std::uint64_t period_events)
    : kernel_(kernel), period_(period_events)
{
    MEMTIER_ASSERT(period_ > 0, "invariant check period must be positive");
}

void
InvariantChecker::onEvent(Cycles now)
{
    if (++events_ % period_ == 0)
        checkNow(now);
}

void
InvariantChecker::fail(Cycles now, const std::string &what) const
{
    const VmStat &s = kernel_.stats;
    const NumaStatSnapshot numa = kernel_.numastat();
    std::fprintf(stderr, "=== invariant violation at cycle %" PRIu64
                         " (event %" PRIu64 ") ===\n",
                 static_cast<std::uint64_t>(now), events_);
    std::fprintf(stderr, "  %s\n", what.c_str());
    std::fprintf(stderr, "  page table: %zu entries (+%zu huge); "
                         "appLru=%zu cacheLru=%zu\n",
                 kernel_.pt.size(), kernel_.pt.hugeSize(),
                 kernel_.appLru.size(), kernel_.cacheLru.size());
    for (int n = 0; n < kNumNodes; ++n) {
        std::fprintf(stderr, "  node %d: app=%" PRIu64 " cache=%" PRIu64
                             " free=%" PRIu64 " retired=%" PRIu64 "\n",
                     n, numa.appPages[n], numa.cachePages[n],
                     numa.freePages[n], numa.retiredPages[n]);
    }
    std::fprintf(stderr, "  vmstat: pgfault=%" PRIu64
                         " promote=%" PRIu64 " demoteK=%" PRIu64
                         " demoteD=%" PRIu64 " exchange=%" PRIu64
                         " migrate=%" PRIu64 " migrateFail=%" PRIu64
                         " breakerTrips=%" PRIu64 "\n",
                 s.pgfault, s.pgpromoteSuccess, s.pgdemoteKswapd,
                 s.pgdemoteDirect, s.pgexchangeSuccess,
                 s.pgmigrateSuccess, s.pgmigrateFail, s.breakerTrips);
    panic("kernel invariant violated: %s", what.c_str());
}

void
InvariantChecker::checkNow(Cycles now)
{
    ++checks_;
    const Kernel &k = kernel_;

    // Per-(node, owner) page counts rebuilt from the page table; they
    // must match the frame allocators' owner accounting exactly.
    std::array<std::array<std::uint64_t, kNumFrameOwners>, kNumNodes>
        counted{};
    // (node, frame) uniqueness: no two pages may share a frame.
    std::array<std::unordered_set<FrameNum>, kNumNodes> frames;

    for (const auto &[vpn, meta] : k.pt.entries()) {
        if (!meta.present)
            fail(now, strprintf("page table holds non-present page %"
                                PRIu64, vpn));
        const int n = static_cast<int>(meta.node);
        const MemoryTier &tier = k.phys.tier(meta.node);
        if (meta.frame >= tier.totalPages()) {
            fail(now, strprintf("page %" PRIu64 " maps frame %" PRIu64
                                " beyond node %d capacity %" PRIu64,
                                vpn, static_cast<std::uint64_t>(meta.frame),
                                n, tier.totalPages()));
        }
        if (!frames[n].insert(meta.frame).second) {
            fail(now, strprintf("frame %" PRIu64 " on node %d is "
                                "double-mapped (page %" PRIu64 ")",
                                static_cast<std::uint64_t>(meta.frame), n,
                                vpn));
        }
        if (tier.isRetired(meta.frame)) {
            fail(now, strprintf("page %" PRIu64 " maps poisoned frame %"
                                PRIu64 " on node %d",
                                vpn, static_cast<std::uint64_t>(meta.frame),
                                n));
        }
        ++counted[n][static_cast<int>(meta.owner)];

        const bool on_app = k.appLru.contains(vpn);
        const bool on_cache = k.cacheLru.contains(vpn);
        if (meta.node == MemNode::DRAM) {
            const bool want_cache = meta.owner == FrameOwner::PageCache;
            if (on_app == want_cache || on_cache != want_cache) {
                fail(now, strprintf("DRAM page %" PRIu64 " (owner %d) on "
                                    "wrong LRU (app=%d cache=%d)",
                                    vpn, static_cast<int>(meta.owner),
                                    on_app, on_cache));
            }
        } else if (on_app || on_cache) {
            fail(now, strprintf("NVM page %" PRIu64 " still on a DRAM "
                                "LRU", vpn));
        }
        if (meta.pinned && meta.protNone) {
            fail(now, strprintf("pinned page %" PRIu64 " carries a scan "
                                "marker", vpn));
        }
        if (meta.huge) {
            fail(now, strprintf("PTE for page %" PRIu64 " carries the "
                                "huge flag", vpn));
        }
    }

    // Huge (PMD) mappings: aligned, one tier, 512 contiguous frames
    // that collide with no other mapping, and no 4 KiB PTE shadowing
    // any page of the range.
    for (const auto &[base, hmeta] : k.pt.hugeEntries()) {
        if (!isHugeBase(base) || !hmeta.huge || !hmeta.present) {
            fail(now, strprintf("malformed PMD entry at page %" PRIu64,
                                base));
        }
        if (!isHugeBase(hmeta.frame)) {
            fail(now, strprintf("PMD entry %" PRIu64 " has unaligned "
                                "base frame %" PRIu64, base,
                                static_cast<std::uint64_t>(hmeta.frame)));
        }
        const int n = static_cast<int>(hmeta.node);
        const MemoryTier &tier = k.phys.tier(hmeta.node);
        if (hmeta.frame + kPagesPerHuge > tier.totalPages()) {
            fail(now, strprintf("PMD entry %" PRIu64 " maps past node %d "
                                "capacity", base, n));
        }
        if (hmeta.owner != FrameOwner::App) {
            fail(now, strprintf("PMD entry %" PRIu64 " is not App-owned",
                                base));
        }
        for (std::uint64_t i = 0; i < kPagesPerHuge; ++i) {
            if (!frames[n].insert(hmeta.frame + i).second) {
                fail(now, strprintf("huge frame %" PRIu64 " on node %d "
                                    "is double-mapped (range %" PRIu64 ")",
                                    static_cast<std::uint64_t>(
                                        hmeta.frame + i), n, base));
            }
            if (k.pt.find(base + i) != nullptr) {
                fail(now, strprintf("4 KiB PTE %" PRIu64 " shadows the "
                                    "PMD range at %" PRIu64,
                                    base + i, base));
            }
            if (tier.isRetired(hmeta.frame + i)) {
                fail(now, strprintf("PMD range %" PRIu64 " maps poisoned "
                                    "frame %" PRIu64 " on node %d", base,
                                    static_cast<std::uint64_t>(
                                        hmeta.frame + i), n));
            }
        }
        counted[n][static_cast<int>(hmeta.owner)] += kPagesPerHuge;

        const bool on_app = k.appLru.contains(base);
        const bool on_cache = k.cacheLru.contains(base);
        if (hmeta.node == MemNode::DRAM ? (!on_app || on_cache)
                                        : (on_app || on_cache)) {
            fail(now, strprintf("PMD entry %" PRIu64 " on wrong LRU "
                                "(app=%d cache=%d)", base, on_app,
                                on_cache));
        }
        if (hmeta.pinned && hmeta.protNone) {
            fail(now, strprintf("pinned PMD entry %" PRIu64 " carries a "
                                "scan marker", base));
        }
    }

    // Every LRU entry must be a mapped page: a 4 KiB PTE or the base of
    // a PMD mapping (residence/owner agreement was already verified
    // from the page-table side above).
    for (const Kernel::ClockList *list : {&k.appLru, &k.cacheLru}) {
        if (list->pos.size() != list->pages.size()) {
            fail(now, strprintf("LRU index size %zu != list size %zu",
                                list->pos.size(), list->pages.size()));
        }
        for (PageNum vpn : list->pages) {
            if (k.pt.find(vpn) != nullptr)
                continue;
            if (k.pt.findHuge(vpn) != nullptr && isHugeBase(vpn))
                continue;
            fail(now, strprintf("LRU references unmapped page %" PRIu64,
                                vpn));
        }
    }

    // Allocator accounting: counted pages == per-owner allocator view,
    // and used + free == capacity on each tier.
    for (int n = 0; n < kNumNodes; ++n) {
        const MemoryTier &tier = k.phys.tier(static_cast<MemNode>(n));
        std::uint64_t used = 0;
        for (int o = 0; o < kNumFrameOwners; ++o) {
            used += counted[n][o];
            const std::uint64_t have =
                tier.ownerPages(static_cast<FrameOwner>(o));
            if (counted[n][o] != have) {
                fail(now, strprintf("node %d owner %d: page table counts "
                                    "%" PRIu64 " pages, allocator says %"
                                    PRIu64, n, o, counted[n][o], have));
            }
        }
        // Retired frames stay allocated forever but map nothing, so
        // mapped + retired must exactly cover the allocator's used set.
        if (used + tier.retiredPages() != tier.usedPages() ||
            used + tier.retiredPages() + tier.freePages() !=
                tier.totalPages()) {
            fail(now, strprintf("node %d frame conservation broken: "
                                "mapped=%" PRIu64 " retired=%" PRIu64
                                " used=%" PRIu64 " free=%" PRIu64
                                " total=%" PRIu64,
                                n, used, tier.retiredPages(),
                                tier.usedPages(), tier.freePages(),
                                tier.totalPages()));
        }
    }

    // Counter identity: every successful migration is exactly one
    // promotion, one reclaim demotion, or half an exchange (which moves
    // two pages and also counts one promotion).
    const VmStat &s = k.stats;
    const std::uint64_t expect = s.pgpromoteSuccess + s.pgdemoteKswapd +
                                 s.pgdemoteDirect + s.pgexchangeSuccess;
    if (s.pgmigrateSuccess != expect) {
        fail(now, strprintf("pgmigrate_success=%" PRIu64 " != promote+"
                            "demote+exchange=%" PRIu64,
                            s.pgmigrateSuccess, expect));
    }

    // Memory-failure identities: every retired frame came from exactly
    // one soft offline, SIGBUS kill, or cache drop, and the counter
    // agrees with the allocators' retired sets.
    std::uint64_t retired_total = 0;
    for (int n = 0; n < kNumNodes; ++n)
        retired_total += k.phys.tier(static_cast<MemNode>(n)).retiredPages();
    if (s.hwpoisonFramesRetired != retired_total) {
        fail(now, strprintf("hwpoison_frames_retired=%" PRIu64 " != "
                            "allocator retired sets=%" PRIu64,
                            s.hwpoisonFramesRetired, retired_total));
    }
    if (s.hwpoisonSoftOffline + s.hwpoisonSigbus +
            s.hwpoisonCacheDropped != s.hwpoisonFramesRetired) {
        fail(now, strprintf("hwpoison identity broken: soft_offline=%"
                            PRIu64 " + sigbus=%" PRIu64 " + cache_drop=%"
                            PRIu64 " != retired=%" PRIu64,
                            s.hwpoisonSoftOffline, s.hwpoisonSigbus,
                            s.hwpoisonCacheDropped,
                            s.hwpoisonFramesRetired));
    }

    // THP counter identity: every PMD mapping was born from a fault
    // allocation or a collapse and dies by a split or a whole-range
    // munmap, so births - deaths = live PMD mappings.
    const std::uint64_t born = s.thpFaultAlloc + s.thpCollapseAlloc;
    const std::uint64_t died = s.thpSplitPage + s.thpUnmapHuge;
    if (born < died || born - died != k.pt.hugeSize()) {
        fail(now, strprintf("thp counter identity broken: fault_alloc=%"
                            PRIu64 " + collapse=%" PRIu64 " - split=%"
                            PRIu64 " - unmap=%" PRIu64 " != live=%zu",
                            s.thpFaultAlloc, s.thpCollapseAlloc,
                            s.thpSplitPage, s.thpUnmapHuge,
                            k.pt.hugeSize()));
    }

    if (auditor_)
        auditor_(now);
}

}  // namespace memtier

/**
 * @file
 * Deterministic pseudo-random number generators.
 *
 * Everything random in memtier (graph generation, sampling jitter, access
 * interleaving tie-breaks) draws from these seeded generators so that a run
 * is exactly reproducible, which the test suite depends on.
 */

#ifndef MEMTIER_BASE_RNG_H_
#define MEMTIER_BASE_RNG_H_

#include <cstdint>

namespace memtier {

/** SplitMix64: used to seed Xoshiro and for cheap standalone streams. */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state(seed) {}

    /** Next 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    std::uint64_t state;
};

/**
 * Xoshiro256** by Blackman & Vigna: fast, high-quality generator used as
 * the workhorse RNG for graph generation and sampling.
 */
class Rng
{
  public:
    /** Seed the generator deterministically from @p seed via SplitMix64. */
    explicit Rng(std::uint64_t seed = 0x9d2c5680);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) using Lemire rejection-free mapping. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability @p p. */
    bool nextBool(double p);

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s[4];
};

}  // namespace memtier

#endif  // MEMTIER_BASE_RNG_H_

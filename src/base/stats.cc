#include "base/stats.h"

#include <algorithm>
#include <cmath>

#include "base/logging.h"

namespace memtier {

void
RunningStat::add(double x)
{
    if (n == 0) {
        lo = hi = x;
    } else {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }
    ++n;
    total += x;
    const double delta = x - mu;
    mu += delta / static_cast<double>(n);
    m2 += delta * (x - mu);
}

double
RunningStat::variance() const
{
    if (n < 2)
        return 0.0;
    return m2 / static_cast<double>(n - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
PercentileSummary::ensureSorted() const
{
    if (!sorted) {
        std::sort(values.begin(), values.end());
        sorted = true;
    }
}

double
PercentileSummary::percentile(double q) const
{
    if (values.empty())
        return 0.0;
    ensureSorted();
    if (q <= 0.0)
        return values.front();
    if (q >= 1.0)
        return values.back();
    const double pos = q * static_cast<double>(values.size() - 1);
    const std::size_t below = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(below);
    if (below + 1 >= values.size())
        return values.back();
    return values[below] * (1.0 - frac) + values[below + 1] * frac;
}

double
PercentileSummary::mean() const
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
PercentileSummary::stddev() const
{
    if (values.size() < 2)
        return 0.0;
    const double mu = mean();
    double m2 = 0.0;
    for (double v : values)
        m2 += (v - mu) * (v - mu);
    return std::sqrt(m2 / static_cast<double>(values.size() - 1));
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo(lo), hi(hi), counts(buckets, 0)
{
    MEMTIER_ASSERT(buckets > 0, "histogram needs at least one bucket");
    MEMTIER_ASSERT(hi > lo, "histogram range must be non-empty");
}

void
Histogram::add(double x)
{
    ++n;
    if (x < lo) {
        ++under;
        return;
    }
    if (x >= hi) {
        ++over;
        return;
    }
    const double width = (hi - lo) / static_cast<double>(counts.size());
    auto idx = static_cast<std::size_t>((x - lo) / width);
    if (idx >= counts.size())
        idx = counts.size() - 1;
    ++counts[idx];
}

double
Histogram::bucketLow(std::size_t i) const
{
    const double width = (hi - lo) / static_cast<double>(counts.size());
    return lo + width * static_cast<double>(i);
}

LatencyHistogram::LatencyHistogram() : counts(kNumBuckets, 0) {}

std::size_t
LatencyHistogram::bucketIndex(std::uint64_t value)
{
    if (value < kSubBuckets)
        return static_cast<std::size_t>(value);
    // 2^e <= value < 2^(e+1) with e >= kSubBucketShift; the octave's
    // linear sub-bucket is the kSubBucketShift bits under the MSB.
    const unsigned e = 63u - static_cast<unsigned>(
        __builtin_clzll(static_cast<unsigned long long>(value)));
    const unsigned octave = e - kSubBucketShift;
    const std::uint64_t sub = (value >> octave) - kSubBuckets;
    return static_cast<std::size_t>(
        kSubBuckets * (octave + 1) + sub);
}

std::uint64_t
LatencyHistogram::bucketLow(std::size_t i)
{
    if (i < kSubBuckets)
        return i;
    const unsigned octave =
        static_cast<unsigned>(i / kSubBuckets) - 1;
    const std::uint64_t sub = i % kSubBuckets;
    return (kSubBuckets + sub) << octave;
}

std::uint64_t
LatencyHistogram::bucketWidth(std::size_t i)
{
    if (i < kSubBuckets)
        return 1;
    const unsigned octave =
        static_cast<unsigned>(i / kSubBuckets) - 1;
    return 1ULL << octave;
}

void
LatencyHistogram::add(std::uint64_t value)
{
    if (n == 0) {
        lo = hi = value;
    } else {
        lo = std::min(lo, value);
        hi = std::max(hi, value);
    }
    ++n;
    total += value;
    ++counts[bucketIndex(value)];
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        lo = other.lo;
        hi = other.hi;
    } else {
        lo = std::min(lo, other.lo);
        hi = std::max(hi, other.hi);
    }
    n += other.n;
    total += other.total;
    for (std::size_t i = 0; i < kNumBuckets; ++i)
        counts[i] += other.counts[i];
}

double
LatencyHistogram::mean() const
{
    return n ? static_cast<double>(total) / static_cast<double>(n) : 0.0;
}

double
LatencyHistogram::percentile(double q) const
{
    if (n == 0)
        return 0.0;
    if (q <= 0.0)
        return static_cast<double>(lo);
    if (q >= 1.0)
        return static_cast<double>(hi);
    // Rank convention matches PercentileSummary: q * (n - 1), so the
    // two types agree exactly on streams that land in unit buckets.
    const double rank = q * static_cast<double>(n - 1);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
        if (counts[i] == 0)
            continue;
        const double below = static_cast<double>(cum);
        cum += counts[i];
        if (rank < static_cast<double>(cum)) {
            // Interpolate inside the bucket by rank position.
            const double frac =
                (rank - below) / static_cast<double>(counts[i]);
            double v = static_cast<double>(bucketLow(i)) +
                       frac * static_cast<double>(bucketWidth(i) - 1);
            v = std::max(v, static_cast<double>(lo));
            v = std::min(v, static_cast<double>(hi));
            return v;
        }
    }
    return static_cast<double>(hi);
}

std::uint64_t
LatencyHistogram::countAtOrAbove(std::uint64_t threshold) const
{
    std::uint64_t out = 0;
    for (std::size_t i = bucketIndex(threshold); i < kNumBuckets; ++i)
        out += counts[i];
    return out;
}

double
LatencyHistogram::violationFraction(std::uint64_t threshold) const
{
    if (n == 0)
        return 0.0;
    return static_cast<double>(countAtOrAbove(threshold)) /
           static_cast<double>(n);
}

void
TimeSeries::add(double time, double value)
{
    MEMTIER_ASSERT(data.empty() || time >= data.back().time,
                   "time series must be appended in time order");
    data.push_back({time, value});
}

double
TimeSeries::max() const
{
    double best = 0.0;
    for (const auto &p : data)
        best = std::max(best, p.value);
    return best;
}

TimeSeries
TimeSeries::downsampled(std::size_t max_points) const
{
    TimeSeries out;
    if (data.empty() || max_points == 0)
        return out;
    if (data.size() <= max_points) {
        out.data = data;
        return out;
    }
    const std::size_t stride = (data.size() + max_points - 1) / max_points;
    for (std::size_t i = 0; i < data.size(); i += stride)
        out.data.push_back(data[i]);
    if (out.data.back().time != data.back().time)
        out.data.push_back(data.back());
    return out;
}

}  // namespace memtier

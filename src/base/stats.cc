#include "base/stats.h"

#include <algorithm>
#include <cmath>

#include "base/logging.h"

namespace memtier {

void
RunningStat::add(double x)
{
    if (n == 0) {
        lo = hi = x;
    } else {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }
    ++n;
    total += x;
    const double delta = x - mu;
    mu += delta / static_cast<double>(n);
    m2 += delta * (x - mu);
}

double
RunningStat::variance() const
{
    if (n < 2)
        return 0.0;
    return m2 / static_cast<double>(n - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
PercentileSummary::ensureSorted() const
{
    if (!sorted) {
        std::sort(values.begin(), values.end());
        sorted = true;
    }
}

double
PercentileSummary::percentile(double q) const
{
    if (values.empty())
        return 0.0;
    ensureSorted();
    if (q <= 0.0)
        return values.front();
    if (q >= 1.0)
        return values.back();
    const double pos = q * static_cast<double>(values.size() - 1);
    const std::size_t below = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(below);
    if (below + 1 >= values.size())
        return values.back();
    return values[below] * (1.0 - frac) + values[below + 1] * frac;
}

double
PercentileSummary::mean() const
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
PercentileSummary::stddev() const
{
    if (values.size() < 2)
        return 0.0;
    const double mu = mean();
    double m2 = 0.0;
    for (double v : values)
        m2 += (v - mu) * (v - mu);
    return std::sqrt(m2 / static_cast<double>(values.size() - 1));
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo(lo), hi(hi), counts(buckets, 0)
{
    MEMTIER_ASSERT(buckets > 0, "histogram needs at least one bucket");
    MEMTIER_ASSERT(hi > lo, "histogram range must be non-empty");
}

void
Histogram::add(double x)
{
    ++n;
    if (x < lo) {
        ++under;
        return;
    }
    if (x >= hi) {
        ++over;
        return;
    }
    const double width = (hi - lo) / static_cast<double>(counts.size());
    auto idx = static_cast<std::size_t>((x - lo) / width);
    if (idx >= counts.size())
        idx = counts.size() - 1;
    ++counts[idx];
}

double
Histogram::bucketLow(std::size_t i) const
{
    const double width = (hi - lo) / static_cast<double>(counts.size());
    return lo + width * static_cast<double>(i);
}

void
TimeSeries::add(double time, double value)
{
    MEMTIER_ASSERT(data.empty() || time >= data.back().time,
                   "time series must be appended in time order");
    data.push_back({time, value});
}

double
TimeSeries::max() const
{
    double best = 0.0;
    for (const auto &p : data)
        best = std::max(best, p.value);
    return best;
}

TimeSeries
TimeSeries::downsampled(std::size_t max_points) const
{
    TimeSeries out;
    if (data.empty() || max_points == 0)
        return out;
    if (data.size() <= max_points) {
        out.data = data;
        return out;
    }
    const std::size_t stride = (data.size() + max_points - 1) / max_points;
    for (std::size_t i = 0; i < data.size(); i += stride)
        out.data.push_back(data[i]);
    if (out.data.back().time != data.back().time)
        out.data.push_back(data.back());
    return out;
}

}  // namespace memtier

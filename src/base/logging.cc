#include "base/logging.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace memtier {

namespace {

LogLevel g_level = LogLevel::Normal;

std::string
vformat(const char *fmt, va_list args)
{
    va_list copy;
    va_copy(copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (needed < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

}  // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    const std::string msg = vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    const std::string msg = vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    const std::string msg = vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (g_level == LogLevel::Quiet)
        return;
    va_list args;
    va_start(args, fmt);
    const std::string msg = vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    return msg;
}

}  // namespace memtier

#include "base/csv.h"

#include <cmath>

namespace memtier {

std::string
CsvWriter::escape(const std::string &value)
{
    const bool needs_quote =
        value.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quote)
        return value;
    std::string quoted = "\"";
    for (char c : value) {
        if (c == '"')
            quoted += '"';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

void
CsvWriter::header(const std::vector<std::string> &columns)
{
    for (std::size_t i = 0; i < columns.size(); ++i) {
        if (i)
            out << ',';
        out << escape(columns[i]);
    }
    out << '\n';
    wrote_header = true;
}

CsvWriter &
CsvWriter::cell(const std::string &value)
{
    pending.push_back(escape(value));
    return *this;
}

CsvWriter &
CsvWriter::cell(double value)
{
    std::ostringstream tmp;
    if (value == std::floor(value) && std::abs(value) < 1e15) {
        tmp << static_cast<long long>(value);
    } else {
        tmp.precision(6);
        tmp << value;
    }
    pending.push_back(tmp.str());
    return *this;
}

CsvWriter &
CsvWriter::cell(std::uint64_t value)
{
    pending.push_back(std::to_string(value));
    return *this;
}

CsvWriter &
CsvWriter::cell(std::int64_t value)
{
    pending.push_back(std::to_string(value));
    return *this;
}

void
CsvWriter::endRow()
{
    for (std::size_t i = 0; i < pending.size(); ++i) {
        if (i)
            out << ',';
        out << pending[i];
    }
    out << '\n';
    pending.clear();
    ++row_count;
}

}  // namespace memtier

#include "base/types.h"

namespace memtier {

const char *
memNodeName(MemNode node)
{
    return node == MemNode::DRAM ? "DRAM" : "NVM";
}

const char *
memLevelName(MemLevel level)
{
    switch (level) {
      case MemLevel::L1: return "L1";
      case MemLevel::LFB: return "LFB";
      case MemLevel::L2: return "L2";
      case MemLevel::L3: return "L3";
      case MemLevel::DRAM: return "DRAM";
      case MemLevel::NVM: return "NVM";
    }
    return "?";
}

}  // namespace memtier

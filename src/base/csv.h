/**
 * @file
 * Minimal CSV emitter matching the artifact's CSV outputs (allocations,
 * memory traces, mapped samples).
 */

#ifndef MEMTIER_BASE_CSV_H_
#define MEMTIER_BASE_CSV_H_

#include <cstdint>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace memtier {

/**
 * Builds CSV text row by row. Values containing commas, quotes or
 * newlines are quoted per RFC 4180.
 */
class CsvWriter
{
  public:
    /** @param out stream that receives the CSV text. */
    explicit CsvWriter(std::ostream &out) : out(out) {}

    /** Emit the header row from column names. */
    void header(const std::vector<std::string> &columns);

    /** Begin accumulating a new row. */
    CsvWriter &cell(const std::string &value);

    /** Append a numeric cell. */
    CsvWriter &cell(double value);

    /** Append an integer cell. */
    CsvWriter &cell(std::uint64_t value);

    /** Append a signed integer cell. */
    CsvWriter &cell(std::int64_t value);

    /** Terminate the current row. */
    void endRow();

    /** Number of data rows written (excluding the header). */
    std::size_t rows() const { return row_count; }

  private:
    static std::string escape(const std::string &value);

    std::ostream &out;
    std::vector<std::string> pending;
    std::size_t row_count = 0;
    bool wrote_header = false;
};

}  // namespace memtier

#endif  // MEMTIER_BASE_CSV_H_

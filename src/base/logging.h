/**
 * @file
 * Status-message and error helpers, following the gem5 fatal/panic split:
 * fatal() is for user/configuration errors (clean exit), panic() is for
 * internal invariant violations (abort).
 */

#ifndef MEMTIER_BASE_LOGGING_H_
#define MEMTIER_BASE_LOGGING_H_

#include <cstdarg>
#include <string>

namespace memtier {

/** Verbosity of inform() output; warnings and errors always print. */
enum class LogLevel {
    Quiet = 0,
    Normal = 1,
    Verbose = 2,
};

/** Set the global log verbosity. */
void setLogLevel(LogLevel level);

/** Current global log verbosity. */
LogLevel logLevel();

/**
 * Terminate because of a user/configuration error (exit(1)).
 * @param fmt printf-style format for the error message.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Terminate because of an internal invariant violation (abort()).
 * @param fmt printf-style format for the error message.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning about suspicious but survivable behaviour. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a normal status message (suppressed when LogLevel::Quiet). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** printf into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace memtier

/**
 * Checked invariant: panics with location info when @p cond is false.
 * Active in all build types (simulation correctness beats a few cycles).
 */
#define MEMTIER_ASSERT(cond, msg)                                          \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::memtier::panic("assertion failed at %s:%d: %s (%s)",         \
                             __FILE__, __LINE__, #cond, msg);              \
        }                                                                  \
    } while (0)

#endif  // MEMTIER_BASE_LOGGING_H_

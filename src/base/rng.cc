#include "base/rng.h"

namespace memtier {

Rng::Rng(std::uint64_t seed)
{
    SplitMix64 sm(seed);
    for (auto &word : s)
        word = sm.next();
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    if (bound == 0)
        return 0;
    // 128-bit multiply-shift mapping (Lemire); slight modulo bias is
    // irrelevant at our bounds (< 2^40) but the mapping is branch-free.
    const unsigned __int128 product =
        static_cast<unsigned __int128>(next()) * bound;
    return static_cast<std::uint64_t>(product >> 64);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

}  // namespace memtier

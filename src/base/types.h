/**
 * @file
 * Fundamental scalar types and unit helpers used across memtier.
 *
 * All simulated quantities use explicit unit-bearing aliases so that a
 * virtual address is never confused with a cycle count or a byte size.
 */

#ifndef MEMTIER_BASE_TYPES_H_
#define MEMTIER_BASE_TYPES_H_

#include <cstddef>
#include <cstdint>

namespace memtier {

/** A simulated virtual or physical byte address. */
using Addr = std::uint64_t;

/** A simulated time duration or timestamp, in CPU cycles. */
using Cycles = std::uint64_t;

/** Index of a 4 KiB virtual page (vaddr >> kPageShift). */
using PageNum = std::uint64_t;

/** Index of a physical frame within one memory tier. */
using FrameNum = std::uint64_t;

/** Logical simulated-thread identifier. */
using ThreadId = std::uint32_t;

/** Identifier of a tracked memory object (mmap region). */
using ObjectId = std::int64_t;

/** Sentinel for "no object maps to this address". */
inline constexpr ObjectId kNoObject = -1;

/** Page geometry (fixed 4 KiB pages, as on the paper's x86 testbed). */
inline constexpr unsigned kPageShift = 12;
inline constexpr std::uint64_t kPageSize = 1ULL << kPageShift;

/** Huge-page geometry (x86 PMD mappings: 2 MiB = 512 base pages). */
inline constexpr unsigned kHugePageShift = 21;
inline constexpr std::uint64_t kHugePageSize = 1ULL << kHugePageShift;
inline constexpr unsigned kPagesPerHugeShift = kHugePageShift - kPageShift;
inline constexpr std::uint64_t kPagesPerHuge = 1ULL << kPagesPerHugeShift;

/** Cache-line geometry (64 B lines). */
inline constexpr unsigned kLineShift = 6;
inline constexpr std::uint64_t kLineSize = 1ULL << kLineShift;

/** Size literals. */
inline constexpr std::uint64_t kKiB = 1024;
inline constexpr std::uint64_t kMiB = 1024 * kKiB;
inline constexpr std::uint64_t kGiB = 1024 * kMiB;

/** Clock frequency of the simulated CPU (Xeon Gold 6240 @ 2.60 GHz). */
inline constexpr std::uint64_t kCyclesPerSecond = 2'600'000'000ULL;

/** Extract the page number containing @p addr. */
constexpr PageNum
pageOf(Addr addr)
{
    return addr >> kPageShift;
}

/** Extract the cache-line index containing @p addr. */
constexpr Addr
lineOf(Addr addr)
{
    return addr >> kLineShift;
}

/** First byte address of page @p page. */
constexpr Addr
pageBase(PageNum page)
{
    return page << kPageShift;
}

/** Round @p bytes up to a whole number of pages. */
constexpr std::uint64_t
roundUpPages(std::uint64_t bytes)
{
    return (bytes + kPageSize - 1) >> kPageShift;
}

/** First page of the 2 MiB-aligned huge range containing @p vpn. */
constexpr PageNum
hugeBaseOf(PageNum vpn)
{
    return vpn & ~(kPagesPerHuge - 1);
}

/** True when @p vpn starts a 2 MiB-aligned huge range. */
constexpr bool
isHugeBase(PageNum vpn)
{
    return (vpn & (kPagesPerHuge - 1)) == 0;
}

/** Round @p addr up to the next 2 MiB boundary. */
constexpr Addr
roundUpHuge(Addr addr)
{
    return (addr + kHugePageSize - 1) & ~(kHugePageSize - 1);
}

/** Convert a cycle count to seconds of simulated time. */
constexpr double
cyclesToSeconds(Cycles c)
{
    return static_cast<double>(c) / static_cast<double>(kCyclesPerSecond);
}

/** Convert seconds of simulated time to cycles. */
constexpr Cycles
secondsToCycles(double s)
{
    return static_cast<Cycles>(s * static_cast<double>(kCyclesPerSecond));
}

/** The two memory tiers of the simulated machine, as NUMA node ids. */
enum class MemNode : std::uint8_t {
    DRAM = 0,  ///< CPU-attached fast tier (NUMA node 0).
    NVM = 1,   ///< CPU-less slow tier, Optane-like (NUMA node 1).
};

/** Number of memory tiers. */
inline constexpr int kNumNodes = 2;

/** Human-readable tier name ("DRAM" / "NVM"). */
const char *memNodeName(MemNode node);

/**
 * Memory-hierarchy level that serviced an access, mirroring the levels
 * reported by perf-mem samples in the paper (Section 3.1).
 */
enum class MemLevel : std::uint8_t {
    L1 = 0,
    LFB,   ///< Line-fill buffer: hit on an in-flight miss.
    L2,
    L3,
    DRAM,  ///< External access serviced by the fast tier.
    NVM,   ///< External access serviced by the slow tier.
};

/** Number of distinct MemLevel values. */
inline constexpr int kNumMemLevels = 6;

/** Human-readable level name ("L1", "LFB", ...). */
const char *memLevelName(MemLevel level);

/** True for accesses serviced outside the cache hierarchy (Section 5.1). */
constexpr bool
isExternalLevel(MemLevel level)
{
    return level == MemLevel::DRAM || level == MemLevel::NVM;
}

/** Kind of a memory operation. */
enum class MemOp : std::uint8_t {
    Load = 0,
    Store,
};

}  // namespace memtier

#endif  // MEMTIER_BASE_TYPES_H_

/**
 * @file
 * Lightweight statistics containers shared by the profiler and the
 * experiment harness: running moments, percentile summaries, histograms
 * and sampled time series.
 */

#ifndef MEMTIER_BASE_STATS_H_
#define MEMTIER_BASE_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace memtier {

/** Incremental mean/variance/min/max (Welford's algorithm). */
class RunningStat
{
  public:
    /** Fold one observation into the statistic. */
    void add(double x);

    /** Number of observations. */
    std::uint64_t count() const { return n; }

    /** Arithmetic mean (0 when empty). */
    double mean() const { return n ? mu : 0.0; }

    /** Unbiased sample variance (0 when n < 2). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Minimum observation (0 when empty). */
    double min() const { return n ? lo : 0.0; }

    /** Maximum observation (0 when empty). */
    double max() const { return n ? hi : 0.0; }

    /** Sum of all observations. */
    double sum() const { return total; }

  private:
    std::uint64_t n = 0;
    double mu = 0.0;
    double m2 = 0.0;
    double lo = 0.0;
    double hi = 0.0;
    double total = 0.0;
};

/**
 * Exact percentile summary over a retained set of observations.
 *
 * Figure 5 of the paper reports min/25th/50th/75th/avg/max of page reuse
 * intervals; this type computes exactly that summary.
 */
class PercentileSummary
{
  public:
    /** Record one observation. */
    void add(double x) { values.push_back(x); }

    /** Number of observations. */
    std::size_t count() const { return values.size(); }

    /**
     * Value at quantile @p q in [0, 1], by linear interpolation between
     * order statistics. Returns 0 when empty.
     */
    double percentile(double q) const;

    /** Arithmetic mean (0 when empty). */
    double mean() const;

    /** Sample standard deviation (0 when n < 2). */
    double stddev() const;

    /** Smallest observation. */
    double min() const { return percentile(0.0); }

    /** Largest observation. */
    double max() const { return percentile(1.0); }

  private:
    mutable std::vector<double> values;
    mutable bool sorted = false;

    void ensureSorted() const;
};

/** Fixed-bucket histogram over [lo, hi) with overflow/underflow buckets. */
class Histogram
{
  public:
    /**
     * @param lo lower bound of the first regular bucket.
     * @param hi upper bound of the last regular bucket.
     * @param buckets number of regular buckets (> 0).
     */
    Histogram(double lo, double hi, std::size_t buckets);

    /** Record one observation. */
    void add(double x);

    /** Count in regular bucket @p i. */
    std::uint64_t bucketCount(std::size_t i) const { return counts.at(i); }

    /** Inclusive lower edge of regular bucket @p i. */
    double bucketLow(std::size_t i) const;

    /** Observations below the histogram range. */
    std::uint64_t underflow() const { return under; }

    /** Observations at or above the histogram range. */
    std::uint64_t overflow() const { return over; }

    /** Total observations including under/overflow. */
    std::uint64_t total() const { return n; }

    /** Number of regular buckets. */
    std::size_t numBuckets() const { return counts.size(); }

  private:
    double lo;
    double hi;
    std::vector<std::uint64_t> counts;
    std::uint64_t under = 0;
    std::uint64_t over = 0;
    std::uint64_t n = 0;
};

/**
 * Log-bucketed latency histogram: geometric octaves subdivided into
 * 2^kSubBucketShift linear sub-buckets (HdrHistogram-style), so the
 * relative quantization error is bounded by 2^-kSubBucketShift (~3%)
 * at every magnitude while the footprint stays a fixed ~15 KiB.
 *
 * Designed for the serving tier's tail-latency reporting: recording is
 * O(1) with no allocation, histograms from different phases or threads
 * merge exactly (bucket layouts are identical by construction), and
 * every query is a pure function of the recorded multiset -- the same
 * request stream always yields bit-identical percentiles.
 */
class LatencyHistogram
{
  public:
    /** log2 of the linear sub-buckets per octave. */
    static constexpr unsigned kSubBucketShift = 5;

    /** Sub-buckets per octave (also the count of exact unit buckets). */
    static constexpr std::uint64_t kSubBuckets = 1ULL << kSubBucketShift;

    /** Total bucket count covering the full uint64 range. */
    static constexpr std::size_t kNumBuckets =
        static_cast<std::size_t>((64 - kSubBucketShift + 1) *
                                 kSubBuckets);

    LatencyHistogram();

    /** Record one latency observation (any unit; cycles by convention). */
    void add(std::uint64_t value);

    /** Fold @p other into this histogram (exact: same bucket layout). */
    void merge(const LatencyHistogram &other);

    /** Number of observations. */
    std::uint64_t count() const { return n; }

    /** Exact sum of all observations. */
    std::uint64_t sum() const { return total; }

    /** Exact mean (0 when empty). */
    double mean() const;

    /** Exact minimum observation (0 when empty). */
    std::uint64_t min() const { return n ? lo : 0; }

    /** Exact maximum observation (0 when empty). */
    std::uint64_t max() const { return n ? hi : 0; }

    /**
     * Value at quantile @p q in [0, 1]: linear interpolation inside the
     * covering bucket, clamped to the exact observed [min, max]. The
     * result is within one bucket width (<= ~3% relative) of the exact
     * order statistic; values below kSubBuckets are exact.
     */
    double percentile(double q) const;

    /**
     * Observations in buckets at or above the bucket containing
     * @p threshold -- the SLO-violation counter. Resolution is one
     * bucket (~3%): observations quantized into the threshold's bucket
     * count as violations.
     */
    std::uint64_t countAtOrAbove(std::uint64_t threshold) const;

    /** countAtOrAbove as a fraction of count (0 when empty). */
    double violationFraction(std::uint64_t threshold) const;

    /** Bucket index recording @p value (exposed for tests). */
    static std::size_t bucketIndex(std::uint64_t value);

    /** Inclusive lower bound of bucket @p i (exposed for tests). */
    static std::uint64_t bucketLow(std::size_t i);

    /** Width of bucket @p i in value units (exposed for tests). */
    static std::uint64_t bucketWidth(std::size_t i);

  private:
    std::vector<std::uint64_t> counts;
    std::uint64_t n = 0;
    std::uint64_t total = 0;
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
};

/**
 * A (time, value) series sampled at irregular instants, used for the
 * Figure 9/10 style timelines (memory usage, counters, CPU utilization).
 */
class TimeSeries
{
  public:
    struct Point
    {
        double time;   ///< Simulated seconds.
        double value;  ///< Sampled value.
    };

    /** Append a sample; times must be non-decreasing. */
    void add(double time, double value);

    /** All points in time order. */
    const std::vector<Point> &points() const { return data; }

    /** Number of samples. */
    std::size_t size() const { return data.size(); }

    /** Last sampled value (0 when empty). */
    double last() const { return data.empty() ? 0.0 : data.back().value; }

    /** Largest sampled value (0 when empty). */
    double max() const;

    /**
     * Downsample to at most @p max_points by keeping every k-th point
     * (always keeping the final point), for compact report output.
     */
    TimeSeries downsampled(std::size_t max_points) const;

  private:
    std::vector<Point> data;
};

}  // namespace memtier

#endif  // MEMTIER_BASE_STATS_H_

/**
 * @file
 * Lightweight statistics containers shared by the profiler and the
 * experiment harness: running moments, percentile summaries, histograms
 * and sampled time series.
 */

#ifndef MEMTIER_BASE_STATS_H_
#define MEMTIER_BASE_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace memtier {

/** Incremental mean/variance/min/max (Welford's algorithm). */
class RunningStat
{
  public:
    /** Fold one observation into the statistic. */
    void add(double x);

    /** Number of observations. */
    std::uint64_t count() const { return n; }

    /** Arithmetic mean (0 when empty). */
    double mean() const { return n ? mu : 0.0; }

    /** Unbiased sample variance (0 when n < 2). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Minimum observation (0 when empty). */
    double min() const { return n ? lo : 0.0; }

    /** Maximum observation (0 when empty). */
    double max() const { return n ? hi : 0.0; }

    /** Sum of all observations. */
    double sum() const { return total; }

  private:
    std::uint64_t n = 0;
    double mu = 0.0;
    double m2 = 0.0;
    double lo = 0.0;
    double hi = 0.0;
    double total = 0.0;
};

/**
 * Exact percentile summary over a retained set of observations.
 *
 * Figure 5 of the paper reports min/25th/50th/75th/avg/max of page reuse
 * intervals; this type computes exactly that summary.
 */
class PercentileSummary
{
  public:
    /** Record one observation. */
    void add(double x) { values.push_back(x); }

    /** Number of observations. */
    std::size_t count() const { return values.size(); }

    /**
     * Value at quantile @p q in [0, 1], by linear interpolation between
     * order statistics. Returns 0 when empty.
     */
    double percentile(double q) const;

    /** Arithmetic mean (0 when empty). */
    double mean() const;

    /** Sample standard deviation (0 when n < 2). */
    double stddev() const;

    /** Smallest observation. */
    double min() const { return percentile(0.0); }

    /** Largest observation. */
    double max() const { return percentile(1.0); }

  private:
    mutable std::vector<double> values;
    mutable bool sorted = false;

    void ensureSorted() const;
};

/** Fixed-bucket histogram over [lo, hi) with overflow/underflow buckets. */
class Histogram
{
  public:
    /**
     * @param lo lower bound of the first regular bucket.
     * @param hi upper bound of the last regular bucket.
     * @param buckets number of regular buckets (> 0).
     */
    Histogram(double lo, double hi, std::size_t buckets);

    /** Record one observation. */
    void add(double x);

    /** Count in regular bucket @p i. */
    std::uint64_t bucketCount(std::size_t i) const { return counts.at(i); }

    /** Inclusive lower edge of regular bucket @p i. */
    double bucketLow(std::size_t i) const;

    /** Observations below the histogram range. */
    std::uint64_t underflow() const { return under; }

    /** Observations at or above the histogram range. */
    std::uint64_t overflow() const { return over; }

    /** Total observations including under/overflow. */
    std::uint64_t total() const { return n; }

    /** Number of regular buckets. */
    std::size_t numBuckets() const { return counts.size(); }

  private:
    double lo;
    double hi;
    std::vector<std::uint64_t> counts;
    std::uint64_t under = 0;
    std::uint64_t over = 0;
    std::uint64_t n = 0;
};

/**
 * A (time, value) series sampled at irregular instants, used for the
 * Figure 9/10 style timelines (memory usage, counters, CPU utilization).
 */
class TimeSeries
{
  public:
    struct Point
    {
        double time;   ///< Simulated seconds.
        double value;  ///< Sampled value.
    };

    /** Append a sample; times must be non-decreasing. */
    void add(double time, double value);

    /** All points in time order. */
    const std::vector<Point> &points() const { return data; }

    /** Number of samples. */
    std::size_t size() const { return data.size(); }

    /** Last sampled value (0 when empty). */
    double last() const { return data.empty() ? 0.0 : data.back().value; }

    /** Largest sampled value (0 when empty). */
    double max() const;

    /**
     * Downsample to at most @p max_points by keeping every k-th point
     * (always keeping the final point), for compact report output.
     */
    TimeSeries downsampled(std::size_t max_points) const;

  private:
    std::vector<Point> data;
};

}  // namespace memtier

#endif  // MEMTIER_BASE_STATS_H_

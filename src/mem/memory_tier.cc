#include "mem/memory_tier.h"

#include "base/logging.h"

namespace memtier {

MemoryTier::MemoryTier(const TierParams &params)
    : cfg(params), allocator_(params.totalPages()), device_(params)
{
}

std::optional<FrameNum>
MemoryTier::allocate(FrameOwner owner)
{
    auto frame = allocator_.allocate();
    if (frame)
        ++owner_pages[static_cast<int>(owner)];
    return frame;
}

void
MemoryTier::free(FrameNum frame, FrameOwner owner)
{
    auto &count = owner_pages[static_cast<int>(owner)];
    MEMTIER_ASSERT(count > 0, "owner accounting underflow");
    --count;
    allocator_.free(frame);
}

std::uint64_t
MemoryTier::ownerPages(FrameOwner owner) const
{
    return owner_pages[static_cast<int>(owner)];
}

}  // namespace memtier

#include "mem/memory_tier.h"

#include "base/logging.h"

namespace memtier {

MemoryTier::MemoryTier(const TierParams &params)
    : cfg(params), allocator_(params.totalPages()), device_(params)
{
}

std::optional<FrameNum>
MemoryTier::allocate(FrameOwner owner)
{
    auto frame = allocator_.allocate();
    if (frame)
        ++owner_pages[static_cast<int>(owner)];
    return frame;
}

void
MemoryTier::free(FrameNum frame, FrameOwner owner)
{
    auto &count = owner_pages[static_cast<int>(owner)];
    MEMTIER_ASSERT(count > 0, "owner accounting underflow");
    --count;
    allocator_.free(frame);
}

std::optional<FrameNum>
MemoryTier::allocateHuge(FrameOwner owner)
{
    auto base = allocator_.allocateHuge();
    if (base)
        owner_pages[static_cast<int>(owner)] += kPagesPerHuge;
    return base;
}

void
MemoryTier::freeHuge(FrameNum base, FrameOwner owner)
{
    auto &count = owner_pages[static_cast<int>(owner)];
    MEMTIER_ASSERT(count >= kPagesPerHuge, "owner accounting underflow");
    count -= kPagesPerHuge;
    allocator_.freeHuge(base);
}

void
MemoryTier::retire(FrameNum frame, FrameOwner owner)
{
    auto &count = owner_pages[static_cast<int>(owner)];
    MEMTIER_ASSERT(count > 0, "owner accounting underflow");
    --count;
    allocator_.retire(frame);
}

std::uint64_t
MemoryTier::ownerPages(FrameOwner owner) const
{
    return owner_pages[static_cast<int>(owner)];
}

}  // namespace memtier

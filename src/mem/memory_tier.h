/**
 * @file
 * One memory tier = frame pool + timing device + usage accounting.
 */

#ifndef MEMTIER_MEM_MEMORY_TIER_H_
#define MEMTIER_MEM_MEMORY_TIER_H_

#include <array>
#include <cstdint>
#include <optional>

#include "base/types.h"
#include "mem/frame_allocator.h"
#include "mem/tier_device.h"
#include "mem/tier_params.h"

namespace memtier {

/** Who owns a physical frame, for numastat/free-style reporting. */
enum class FrameOwner : std::uint8_t {
    App = 0,       ///< Anonymous application pages (mmap-backed objects).
    PageCache,     ///< File page-cache pages from the input-reading phase.
};

/** Number of FrameOwner categories. */
inline constexpr int kNumFrameOwners = 2;

/**
 * A complete memory tier: capacity management plus device timing, with
 * per-owner page accounting so the harness can reproduce the paper's
 * numastat/free breakdowns (Figure 9).
 */
class MemoryTier
{
  public:
    /** @param params static tier configuration. */
    explicit MemoryTier(const TierParams &params);

    /** Allocate one frame charged to @p owner; nullopt when full. */
    std::optional<FrameNum> allocate(FrameOwner owner);

    /** Free a frame previously charged to @p owner. */
    void free(FrameNum frame, FrameOwner owner);

    /**
     * Allocate a naturally aligned 512-frame block (one 2 MiB huge
     * frame) charged to @p owner; nullopt when no block is fully free.
     */
    std::optional<FrameNum> allocateHuge(FrameOwner owner);

    /** Free an unsplit huge frame previously charged to @p owner. */
    void freeHuge(FrameNum base, FrameOwner owner);

    /**
     * Permanently retire a frame previously charged to @p owner
     * (memory-failure path). The owner's accounting drops by one page
     * but the frame stays allocated in the pool forever, so the tier's
     * effective capacity shrinks.
     */
    void retire(FrameNum frame, FrameOwner owner);

    /** True when @p frame has been retired. */
    bool
    isRetired(FrameNum frame) const
    {
        return allocator_.isRetired(frame);
    }

    /** Pages permanently retired on this tier. */
    std::uint64_t
    retiredPages() const
    {
        return allocator_.retiredFrames();
    }

    /** Capacity still backed by healthy frames. */
    std::uint64_t
    healthyPages() const
    {
        return totalPages() - retiredPages();
    }

    /** Record one correctable ECC error; returns the frame's total. */
    std::uint32_t
    recordCorrectable(FrameNum frame)
    {
        return allocator_.recordCorrectable(frame);
    }

    /** Forget a frame's correctable-error history. */
    void
    clearCorrectable(FrameNum frame)
    {
        allocator_.clearCorrectable(frame);
    }

    /** Timing access to this tier (delegates to the device model). */
    Cycles
    access(Cycles now, MemOp op, bool sequential)
    {
        return device_.access(now, op, sequential);
    }

    /** Pages currently allocated to @p owner. */
    std::uint64_t ownerPages(FrameOwner owner) const;

    /** Total pages allocated across owners. */
    std::uint64_t usedPages() const { return allocator_.usedFrames(); }

    /** Pages still free. */
    std::uint64_t freePages() const { return allocator_.freeFrames(); }

    /** Total capacity in pages. */
    std::uint64_t totalPages() const { return allocator_.totalFrames(); }

    /** Bytes currently allocated across owners. */
    std::uint64_t usedBytes() const { return usedPages() * kPageSize; }

    /** Successful 2 MiB frame allocations on this tier. */
    std::uint64_t hugeAllocs() const { return allocator_.hugeAllocs(); }

    /** 2 MiB frame allocations defeated by fragmentation. */
    std::uint64_t
    hugeAllocFails() const
    {
        return allocator_.hugeAllocFails();
    }

    /** The underlying timing device (for bandwidth/queue statistics). */
    const TierDevice &device() const { return device_; }

    /** Mutable device (per-host-thread replicas drain counters in). */
    TierDevice &deviceMutable() { return device_; }

    /** Static parameters. */
    const TierParams &params() const { return cfg; }

  private:
    TierParams cfg;
    FrameAllocator allocator_;
    TierDevice device_;
    std::array<std::uint64_t, kNumFrameOwners> owner_pages{};
};

}  // namespace memtier

#endif  // MEMTIER_MEM_MEMORY_TIER_H_

#include "mem/tier_device.h"

#include <algorithm>

#include "base/logging.h"

namespace memtier {

TierDevice::TierDevice(const TierParams &params)
    : cfg(params), channelFree(static_cast<std::size_t>(params.channels), 0)
{
    MEMTIER_ASSERT(params.channels > 0, "tier needs at least one channel");
}

Cycles
TierDevice::access(Cycles now, MemOp op, bool sequential)
{
    // Pick the earliest-available channel.
    std::size_t best = 0;
    for (std::size_t i = 1; i < channelFree.size(); ++i) {
        if (channelFree[i] < channelFree[best])
            best = i;
    }

    Cycles start = std::max(now, channelFree[best]);
    Cycles wait = start - now;
    if (cfg.queueWaitCapCycles > 0 && wait > cfg.queueWaitCapCycles) {
        // Back-pressure: the controller throttles the core instead of
        // queueing indefinitely; excess backlog is shed.
        wait = cfg.queueWaitCapCycles;
        start = now + wait;
    }

    Cycles device;
    Cycles service;
    if (op == MemOp::Load) {
        device = sequential ? cfg.loadLatencySeq : cfg.loadLatencyRandom;
        service = cfg.readServiceCycles;
    } else {
        device = cfg.storeLatency;
        service = cfg.writeServiceCycles;
        // Write amplification: a random 64 B store to a device with a
        // larger internal granularity occupies the channel for the full
        // internal block (e.g. 256 B on Optane -> 4x service time).
        if (!sequential && cfg.internalGranularity > kLineSize)
            service *= cfg.internalGranularity / kLineSize;
    }

    channelFree[best] = start + service;
    ++accesses;
    queue_cycles += wait;
    return wait + device;
}

void
TierDevice::reset()
{
    std::fill(channelFree.begin(), channelFree.end(), 0);
}

}  // namespace memtier

#include "mem/frame_allocator.h"

#include <algorithm>

#include "base/logging.h"

namespace memtier {

FrameAllocator::FrameAllocator(std::uint64_t total_frames)
    : total(total_frames),
      blockUsed((total_frames + kPagesPerHuge - 1) >> kPagesPerHugeShift, 0)
{
}

std::optional<FrameNum>
FrameAllocator::allocate()
{
    if (!recycled.empty()) {
        const FrameNum frame = recycled.back();
        recycled.pop_back();
        ++used;
        ++blockUsed[frame >> kPagesPerHugeShift];
        return frame;
    }
    if (next < total) {
        ++used;
        ++blockUsed[next >> kPagesPerHugeShift];
        return next++;
    }
    return std::nullopt;
}

void
FrameAllocator::free(FrameNum frame)
{
    MEMTIER_ASSERT(frame < total, "freeing frame outside the pool");
    MEMTIER_ASSERT(retired_.count(frame) == 0, "freeing a retired frame");
    MEMTIER_ASSERT(used > 0, "freeing with no frames allocated");
    MEMTIER_ASSERT(blockUsed[frame >> kPagesPerHugeShift] > 0,
                   "block accounting underflow");
    --used;
    --blockUsed[frame >> kPagesPerHugeShift];
    recycled.push_back(frame);
}

void
FrameAllocator::retire(FrameNum frame)
{
    MEMTIER_ASSERT(frame < total, "retiring frame outside the pool");
    MEMTIER_ASSERT(retired_.count(frame) == 0,
                   "retiring an already retired frame");
    // The caller must hold the frame (unmapped but allocated): a retired
    // frame keeps its allocator bookkeeping forever, so used/blockUsed
    // stay elevated and neither allocate() nor allocateHuge() can ever
    // hand it out again.
    retired_.insert(frame);
    ce_counts_.erase(frame);
}

std::uint32_t
FrameAllocator::recordCorrectable(FrameNum frame)
{
    MEMTIER_ASSERT(frame < total, "CE on frame outside the pool");
    return ++ce_counts_[frame];
}

void
FrameAllocator::carveBlock(FrameNum base)
{
    const FrameNum end = base + kPagesPerHuge;
    const FrameNum old_next = next;
    if (old_next < end)
        next = end;
    // Never-used frames below the block stay allocatable: move them onto
    // the recycled list (they only exist when the bump pointer sat below
    // the block's base).
    for (FrameNum f = old_next; f < base; ++f)
        recycled.push_back(f);
    // Frames of the block that were used and freed sit on the recycled
    // list; pull them out. Only frames below the old bump pointer can
    // ever have been recycled.
    if (old_next > base) {
        const std::uint64_t expect = std::min(old_next, end) - base;
        const std::uint64_t removed = static_cast<std::uint64_t>(
            std::erase_if(recycled, [base, end](FrameNum f) {
                return f >= base && f < end;
            }));
        MEMTIER_ASSERT(removed == expect,
                       "free block missing recycled frames");
    }
}

std::optional<FrameNum>
FrameAllocator::allocateHuge()
{
    // Lowest fully free, naturally aligned block wins (deterministic).
    const std::uint64_t full_blocks = total >> kPagesPerHugeShift;
    for (std::uint64_t b = 0; b < full_blocks; ++b) {
        if (blockUsed[b] != 0)
            continue;
        const FrameNum base = b << kPagesPerHugeShift;
        carveBlock(base);
        blockUsed[b] = static_cast<std::uint16_t>(kPagesPerHuge);
        used += kPagesPerHuge;
        ++huge_allocs;
        return base;
    }
    ++huge_alloc_fails;
    return std::nullopt;
}

void
FrameAllocator::freeHuge(FrameNum base)
{
    MEMTIER_ASSERT(isHugeBase(base), "huge free of unaligned base");
    MEMTIER_ASSERT(blockUsed[base >> kPagesPerHugeShift] == kPagesPerHuge,
                   "huge free of partially allocated block");
    for (FrameNum f = base; f < base + kPagesPerHuge; ++f)
        free(f);
}

}  // namespace memtier

#include "mem/frame_allocator.h"

#include "base/logging.h"

namespace memtier {

FrameAllocator::FrameAllocator(std::uint64_t total_frames)
    : total(total_frames)
{
}

std::optional<FrameNum>
FrameAllocator::allocate()
{
    if (!recycled.empty()) {
        const FrameNum frame = recycled.back();
        recycled.pop_back();
        ++used;
        return frame;
    }
    if (next < total) {
        ++used;
        return next++;
    }
    return std::nullopt;
}

void
FrameAllocator::free(FrameNum frame)
{
    MEMTIER_ASSERT(frame < total, "freeing frame outside the pool");
    MEMTIER_ASSERT(used > 0, "freeing with no frames allocated");
    --used;
    recycled.push_back(frame);
}

}  // namespace memtier

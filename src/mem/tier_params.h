/**
 * @file
 * Parameter sets describing one memory tier (DRAM or Optane-like NVM).
 *
 * Latency and bandwidth defaults are calibrated against the measurements
 * the paper cites (Izraelevitz et al., "Basic Performance Measurements of
 * the Intel Optane DC Persistent Memory Module"): NVM random-load latency
 * about 3x DRAM, sequential about 2x, read bandwidth about 40 GB/s vs.
 * 100+ GB/s, write bandwidth about 14 GB/s vs. 80 GB/s, and a 256 B
 * internal write granularity that causes write amplification for smaller
 * stores.
 */

#ifndef MEMTIER_MEM_TIER_PARAMS_H_
#define MEMTIER_MEM_TIER_PARAMS_H_

#include <cstdint>
#include <string>

#include "base/types.h"

namespace memtier {

/** Static configuration of one memory tier. */
struct TierParams
{
    /** Tier name for reports ("DRAM", "NVM"). */
    std::string name;

    /** Usable capacity in bytes (scaled from the paper's 192/768 GB). */
    std::uint64_t capacityBytes = 0;

    /** Device latency of a random (row-miss-like) load, in cycles. */
    Cycles loadLatencyRandom = 0;

    /**
     * Device latency of a sequential load (within the previous access's
     * 256 B buffer/row), in cycles.
     */
    Cycles loadLatencySeq = 0;

    /**
     * Latency visible to the pipeline for a store (mostly hidden behind
     * the store buffer / WPQ), in cycles.
     */
    Cycles storeLatency = 0;

    /** Number of independent channels servicing requests. */
    int channels = 1;

    /** Per-channel service time of one 64 B line read, in cycles. */
    Cycles readServiceCycles = 0;

    /** Per-channel service time of one 64 B line write, in cycles. */
    Cycles writeServiceCycles = 0;

    /**
     * Upper bound on the queueing delay any single request observes,
     * modelling controller back-pressure: a saturated device slows the
     * cores down (they stall on earlier requests) rather than building
     * an unbounded queue. 0 disables the cap.
     */
    Cycles queueWaitCapCycles = 0;

    /**
     * Internal access granularity in bytes. Random stores smaller than
     * this waste bandwidth (write amplification); 256 for Optane, 64 for
     * DRAM.
     */
    std::uint64_t internalGranularity = 64;

    /** Total pages this tier can hold. */
    std::uint64_t totalPages() const { return capacityBytes / kPageSize; }
};

/**
 * DRAM tier defaults at the experiment scale.
 * @param capacity_bytes usable capacity of the tier.
 */
TierParams makeDramParams(std::uint64_t capacity_bytes);

/**
 * Optane-like NVM tier defaults at the experiment scale.
 * @param capacity_bytes usable capacity of the tier.
 */
TierParams makeNvmParams(std::uint64_t capacity_bytes);

}  // namespace memtier

#endif  // MEMTIER_MEM_TIER_PARAMS_H_

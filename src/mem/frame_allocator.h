/**
 * @file
 * Physical frame allocator for one memory tier.
 */

#ifndef MEMTIER_MEM_FRAME_ALLOCATOR_H_
#define MEMTIER_MEM_FRAME_ALLOCATOR_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/types.h"

namespace memtier {

/**
 * Hands out page frames from a fixed-size pool, recycling freed frames
 * LIFO. Frame numbers are tier-local.
 *
 * The pool is additionally grouped into naturally aligned 512-frame
 * blocks (buddy-style, one level) so 2 MiB huge frames can be carved
 * out: @ref allocateHuge finds the lowest fully free block and claims
 * all of it. Single-frame allocation order is untouched by the block
 * bookkeeping, so 4 KiB-only runs are bit-identical to builds without
 * huge-page support.
 */
class FrameAllocator
{
  public:
    /** @param total_frames pool size in frames. */
    explicit FrameAllocator(std::uint64_t total_frames);

    /** Allocate one frame; nullopt when the tier is full. */
    std::optional<FrameNum> allocate();

    /** Return a previously allocated frame to the pool. */
    void free(FrameNum frame);

    /**
     * Permanently retire a currently allocated frame (hwpoison). The
     * frame stays counted as used forever and is never recycled, so
     * the pool's effective capacity shrinks by one page. Its block
     * also keeps a nonzero used count, so a block containing a retired
     * frame can never be claimed by @ref allocateHuge. Clears any
     * correctable-error history for the frame.
     */
    void retire(FrameNum frame);

    /** True when @p frame has been retired via @ref retire. */
    bool
    isRetired(FrameNum frame) const
    {
        return retired_.count(frame) != 0;
    }

    /** Frames permanently retired (still counted in usedFrames). */
    std::uint64_t
    retiredFrames() const
    {
        return static_cast<std::uint64_t>(retired_.size());
    }

    /**
     * Record one correctable ECC error against @p frame.
     * @return the frame's cumulative correctable-error count.
     */
    std::uint32_t recordCorrectable(FrameNum frame);

    /** Forget @p frame's correctable-error history. */
    void clearCorrectable(FrameNum frame) { ce_counts_.erase(frame); }

    /**
     * Allocate a naturally aligned 512-frame block for a 2 MiB huge
     * page. Fails (fragmentation) when no block is fully free, even if
     * 512 scattered frames are: the counters record such failures.
     * @return the base frame of the block, or nullopt.
     */
    std::optional<FrameNum> allocateHuge();

    /**
     * Free a block previously obtained from @ref allocateHuge whose
     * 512 frames are all still allocated (i.e. the huge page was not
     * split; split pages return frames individually via @ref free).
     */
    void freeHuge(FrameNum base);

    /** Frames currently allocated. */
    std::uint64_t usedFrames() const { return used; }

    /** Frames still available. */
    std::uint64_t freeFrames() const { return total - used; }

    /** Pool size. */
    std::uint64_t totalFrames() const { return total; }

    /** Successful huge-block allocations. */
    std::uint64_t hugeAllocs() const { return huge_allocs; }

    /**
     * Huge-block allocations that failed because no naturally aligned
     * block was fully free (external fragmentation), counted even when
     * enough scattered single frames existed.
     */
    std::uint64_t hugeAllocFails() const { return huge_alloc_fails; }

  private:
    /** Make every frame of the block at @p base allocated. */
    void carveBlock(FrameNum base);

    std::uint64_t total;
    std::uint64_t next = 0;  ///< High-water mark of never-used frames.
    std::uint64_t used = 0;
    std::vector<FrameNum> recycled;

    /** Allocated frames per naturally aligned 512-frame block. */
    std::vector<std::uint16_t> blockUsed;

    std::uint64_t huge_allocs = 0;
    std::uint64_t huge_alloc_fails = 0;

    /** Frames permanently offlined by the memory-failure path. */
    std::unordered_set<FrameNum> retired_;

    /** Cumulative correctable-error counts for still-healthy frames. */
    std::unordered_map<FrameNum, std::uint32_t> ce_counts_;
};

}  // namespace memtier

#endif  // MEMTIER_MEM_FRAME_ALLOCATOR_H_

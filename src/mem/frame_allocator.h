/**
 * @file
 * Physical frame allocator for one memory tier.
 */

#ifndef MEMTIER_MEM_FRAME_ALLOCATOR_H_
#define MEMTIER_MEM_FRAME_ALLOCATOR_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "base/types.h"

namespace memtier {

/**
 * Hands out page frames from a fixed-size pool, recycling freed frames
 * LIFO. Frame numbers are tier-local.
 */
class FrameAllocator
{
  public:
    /** @param total_frames pool size in frames. */
    explicit FrameAllocator(std::uint64_t total_frames);

    /** Allocate one frame; nullopt when the tier is full. */
    std::optional<FrameNum> allocate();

    /** Return a previously allocated frame to the pool. */
    void free(FrameNum frame);

    /** Frames currently allocated. */
    std::uint64_t usedFrames() const { return used; }

    /** Frames still available. */
    std::uint64_t freeFrames() const { return total - used; }

    /** Pool size. */
    std::uint64_t totalFrames() const { return total; }

  private:
    std::uint64_t total;
    std::uint64_t next = 0;  ///< High-water mark of never-used frames.
    std::uint64_t used = 0;
    std::vector<FrameNum> recycled;
};

}  // namespace memtier

#endif  // MEMTIER_MEM_FRAME_ALLOCATOR_H_

/**
 * @file
 * Timing model of one memory tier's device: fixed load/store latency plus
 * queuing delay on a small set of independent channels.
 */

#ifndef MEMTIER_MEM_TIER_DEVICE_H_
#define MEMTIER_MEM_TIER_DEVICE_H_

#include <cstdint>
#include <vector>

#include "base/types.h"
#include "mem/tier_params.h"

namespace memtier {

/**
 * Models contention and latency of a tier.
 *
 * Each access picks the earliest-free channel; its total latency is the
 * wait until that channel frees, plus the device latency, and the channel
 * stays busy for the line service time (amplified for sub-granularity
 * random stores on NVM, reproducing Optane write amplification).
 */
class TierDevice
{
  public:
    /** @param params static tier configuration. */
    explicit TierDevice(const TierParams &params);

    /**
     * Issue one 64 B line access at simulated time @p now.
     *
     * @param now issue time in cycles.
     * @param op load or store.
     * @param sequential true when the access falls within the tier's
     *        internal granularity of the previous access from the same
     *        thread (row-buffer / Optane-buffer locality).
     * @return total latency in cycles as seen by the requester.
     */
    Cycles access(Cycles now, MemOp op, bool sequential);

    /** Total accesses serviced. */
    std::uint64_t accessCount() const { return accesses; }

    /** Sum of queueing delay cycles across all accesses. */
    std::uint64_t totalQueueCycles() const { return queue_cycles; }

    /** Reset channel availability (e.g. between experiment phases). */
    void reset();

    /**
     * Move this device's access/queue counters into @p into and zero
     * them here. Used by per-host-thread timing replicas to commit
     * their shards into the master device at a barrier; channel
     * availability is deliberately left untouched on both sides.
     */
    void
    drainCountersInto(TierDevice &into)
    {
        into.accesses += accesses;
        into.queue_cycles += queue_cycles;
        accesses = 0;
        queue_cycles = 0;
    }

    /** Static parameters this device was built with. */
    const TierParams &params() const { return cfg; }

  private:
    TierParams cfg;
    std::vector<Cycles> channelFree;
    std::uint64_t accesses = 0;
    std::uint64_t queue_cycles = 0;
};

}  // namespace memtier

#endif  // MEMTIER_MEM_TIER_DEVICE_H_

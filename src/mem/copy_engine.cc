#include "mem/copy_engine.h"

#include <algorithm>

#include "base/logging.h"

namespace memtier {

CopyEngine::CopyEngine(const CopyEngineParams &params)
    : cfg_(params),
      busyUntil_(std::max<std::uint32_t>(params.workers, 1), 0)
{
    if (cfg_.workers == 0)
        cfg_.workers = 1;
    if (cfg_.chunkPages == 0)
        cfg_.chunkPages = 1;
}

void
CopyEngine::setWorkers(std::uint32_t workers)
{
    if (workers == 0)
        workers = 1;
    if (workers == cfg_.workers)
        return;
    cfg_.workers = workers;
    // Growing adds idle workers; shrinking drops the tail horizons. A
    // live resize is allowed to lose in-flight busy state -- the next
    // copy simply sees a (partially) fresh pool.
    busyUntil_.resize(workers, 0);
}

Cycles
CopyEngine::schedule(Cycles now, std::uint64_t bytes, Cycles totalCycles)
{
    bytesCopied_ += bytes;
    busyCycles_ += totalCycles;

    std::uint64_t chunkBytes =
        static_cast<std::uint64_t>(cfg_.chunkPages) * kPageSize;
    // A copy smaller than workers x chunk would leave workers idle;
    // shrink towards page granularity so e.g. an 8 KiB exchange still
    // runs its two page copies on two workers.
    while (chunkBytes > kPageSize &&
           (bytes + chunkBytes - 1) / chunkBytes < cfg_.workers) {
        chunkBytes >>= 1;
    }
    const std::uint64_t nChunks =
        std::max<std::uint64_t>(1, (bytes + chunkBytes - 1) / chunkBytes);
    chunks_ += nChunks;

    // Assign each chunk an exact proportional share of the total cost
    // via cumulative boundaries, so the shares always sum to
    // totalCycles regardless of rounding.
    Cycles completion = now;
    std::size_t firstWorker = busyUntil_.size();
    bool multiWorker = false;
    std::uint64_t doneBytes = 0;
    for (std::uint64_t c = 0; c < nChunks; ++c) {
        const std::uint64_t endBytes =
            std::min(bytes, doneBytes + chunkBytes);
        const Cycles startShare =
            bytes ? static_cast<Cycles>(
                        static_cast<unsigned __int128>(totalCycles) *
                        doneBytes / bytes)
                  : 0;
        const Cycles endShare =
            bytes ? static_cast<Cycles>(
                        static_cast<unsigned __int128>(totalCycles) *
                        endBytes / bytes)
                  : totalCycles;
        const Cycles chunkCycles = endShare - startShare;
        doneBytes = endBytes;

        // Earliest-available worker, ties to the lowest id: the same
        // argmin discipline the tier devices use for channels, so the
        // schedule is a pure function of (now, bytes, totalCycles).
        std::size_t best = 0;
        for (std::size_t w = 1; w < busyUntil_.size(); ++w) {
            if (busyUntil_[w] < busyUntil_[best])
                best = w;
        }
        const Cycles start = std::max(now, busyUntil_[best]);
        if (start > now)
            ++queuedChunks_;
        busyUntil_[best] = start + chunkCycles;
        completion = std::max(completion, busyUntil_[best]);

        if (firstWorker == busyUntil_.size())
            firstWorker = best;
        else if (best != firstWorker)
            multiWorker = true;
    }
    if (multiWorker)
        ++parallelCopies_;
    return completion;
}

Cycles
CopyEngine::copy(Cycles now, std::uint64_t bytes, Cycles legacyTotalCycles)
{
    if (!parallel()) {
        // Single worker: reproduce the legacy serial charge exactly so
        // pre-engine goldens stay bit-identical. Counters still move
        // so bandwidth reporting works in either mode.
        bytesCopied_ += bytes;
        busyCycles_ += legacyTotalCycles;
        chargedCycles_ += legacyTotalCycles;
        chunks_ += 1;
        return legacyTotalCycles;
    }
    const Cycles completion = schedule(now, bytes, legacyTotalCycles);
    const Cycles charged = completion - now;
    chargedCycles_ += charged;
    return charged;
}

void
CopyEngine::background(Cycles now, std::uint64_t bytes,
                       Cycles legacyTotalCycles)
{
    if (!parallel())
        return;  // Legacy model never surfaced demotion copy time.
    (void)schedule(now, bytes, legacyTotalCycles);
}

}  // namespace memtier

#pragma once
/**
 * @file
 * Parallel page-copy engine: a timing model of AutoTiering's
 * multi-threaded copy_page.c worker pool. Migration, exchange and
 * soft-offline page copies hand their byte count plus the legacy
 * single-threaded cycle cost to the engine; it splits the work into
 * chunks, schedules them over a fixed set of simulated copy workers
 * (earliest-available-worker first, ties to the lowest id) and returns
 * the caller-visible completion latency.
 *
 * With one worker the engine returns the legacy cost verbatim, so every
 * golden captured before this engine existed stays bit-identical; the
 * internal byte/cycle counters still accumulate so benches can report
 * copy bandwidth in either mode. With W > 1 a 2 MiB copy fans out to
 * min(W, chunks) workers and completes ~W× sooner, while background
 * (demotion) copies only occupy workers without charging the caller --
 * that is the copy/execution overlap the paper's kswapd path relies on.
 */

#include <cstdint>
#include <vector>

#include "base/types.h"

namespace memtier {

/** Static configuration of the copy worker pool. */
struct CopyEngineParams
{
    /** Simulated copy worker threads; 1 reproduces the legacy cost. */
    std::uint32_t workers = 1;
    /** Chunk granularity in 4 KiB pages (AutoTiering uses 16). */
    std::uint32_t chunkPages = 16;
};

class CopyEngine
{
  public:
    explicit CopyEngine(const CopyEngineParams &params);

    /** True when copies can actually fan out (more than one worker). */
    bool parallel() const { return cfg_.workers > 1; }

    /**
     * Copy @p bytes starting at @p now; @p legacyTotalCycles is the
     * cost the pre-engine code charged for the same copy. Returns the
     * cycles the *caller* waits: exactly @p legacyTotalCycles when the
     * pool has one worker, the critical-path completion otherwise.
     */
    Cycles copy(Cycles now, std::uint64_t bytes, Cycles legacyTotalCycles);

    /**
     * Queue @p bytes of background copy work (demotions done by
     * kswapd): occupies workers and counters but charges the caller
     * nothing. No-op on a single-worker pool, where the legacy model
     * never surfaced demotion copy time to the foreground either.
     */
    void background(Cycles now, std::uint64_t bytes,
                    Cycles legacyTotalCycles);

    const CopyEngineParams &params() const { return cfg_; }

    /**
     * Resize the worker pool to @p workers (live tunable path). New
     * workers start idle; shrinking forgets the dropped workers'
     * busy-until horizons. A no-op when the size is unchanged, so runs
     * that never mutate the tunable stay bit-identical.
     */
    void setWorkers(std::uint32_t workers);

    /** Total bytes handed to the engine (foreground + background). */
    std::uint64_t bytesCopied() const { return bytesCopied_; }
    /** Sum of per-copy charged (caller-visible) cycles. */
    Cycles chargedCycles() const { return chargedCycles_; }
    /** Cycles copy workers spent busy (foreground + background). */
    Cycles busyCycles() const { return busyCycles_; }
    /** Chunks scheduled over the pool. */
    std::uint64_t chunks() const { return chunks_; }
    /** Copies that actually used more than one worker. */
    std::uint64_t parallelCopies() const { return parallelCopies_; }
    /** Chunks that waited behind a busy worker (queue-depth signal). */
    std::uint64_t queuedChunks() const { return queuedChunks_; }

  private:
    /** Schedule one copy; returns completion cycle (>= now). */
    Cycles schedule(Cycles now, std::uint64_t bytes, Cycles totalCycles);

    CopyEngineParams cfg_;
    std::vector<Cycles> busyUntil_;

    std::uint64_t bytesCopied_ = 0;
    Cycles chargedCycles_ = 0;
    Cycles busyCycles_ = 0;
    std::uint64_t chunks_ = 0;
    std::uint64_t parallelCopies_ = 0;
    std::uint64_t queuedChunks_ = 0;
};

}  // namespace memtier

#include "mem/tier_params.h"

namespace memtier {

TierParams
makeDramParams(std::uint64_t capacity_bytes)
{
    TierParams p;
    p.name = "DRAM";
    p.capacityBytes = capacity_bytes;
    // ~87 ns random load at 2.6 GHz; row-buffer-friendly ~62 ns.
    p.loadLatencyRandom = 226;
    p.loadLatencySeq = 161;
    p.storeLatency = 26;
    p.channels = 6;
    // ~105 GB/s aggregate read, ~80 GB/s write across 6 channels.
    p.readServiceCycles = 10;
    p.writeServiceCycles = 13;
    p.internalGranularity = 64;
    p.queueWaitCapCycles = p.loadLatencyRandom * 4;
    return p;
}

TierParams
makeNvmParams(std::uint64_t capacity_bytes)
{
    TierParams p;
    p.name = "NVM";
    p.capacityBytes = capacity_bytes;
    // ~3x DRAM for random loads, ~2x for sequential (Izraelevitz et al.).
    p.loadLatencyRandom = 678;
    p.loadLatencySeq = 322;
    // Store latency visible to the pipeline is higher than DRAM because
    // the WPQ drains slowly under load.
    p.storeLatency = 62;
    p.channels = 6;
    // ~40 GB/s aggregate read, ~14 GB/s write.
    p.readServiceCycles = 25;
    p.writeServiceCycles = 71;
    p.internalGranularity = 256;
    p.queueWaitCapCycles = p.loadLatencyRandom * 4;
    return p;
}

}  // namespace memtier

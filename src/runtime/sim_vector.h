/**
 * @file
 * SimVector<T>: a typed array living in the simulated address space.
 *
 * Element reads/writes issue timed memory operations through the engine
 * while the actual values live in host memory owned by the SimHeap. This
 * is how the graph applications "run on" the simulated tiered memory.
 */

#ifndef MEMTIER_RUNTIME_SIM_VECTOR_H_
#define MEMTIER_RUNTIME_SIM_VECTOR_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>

#include "base/logging.h"
#include "base/types.h"
#include "sim/engine.h"
#include "sim/thread_context.h"

namespace memtier {

/**
 * Non-owning handle to a simulated-memory array. Ownership of both the
 * virtual region and the host backing store stays with the SimHeap that
 * allocated it.
 *
 * @tparam T trivially copyable element of power-of-two size <= 8, so an
 *           aligned element never straddles a cache line.
 */
template <typename T>
class SimVector
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "SimVector elements must be trivially copyable");
    static_assert(sizeof(T) <= 8 && (sizeof(T) & (sizeof(T) - 1)) == 0,
                  "element size must be 1, 2, 4 or 8 bytes");

  public:
    /**
     * Elements per accessBatch issued by the bulk operations. Chunking
     * bounds the request scratch buffer; batch boundaries are free to
     * move because the batched path is bit-identical to per-element
     * issue regardless of where a batch starts or ends.
     */
    static constexpr std::uint64_t kBulkChunk = 4096;

    /** Empty (invalid) handle. */
    SimVector() = default;

    /** Wired handle; built by SimHeap. */
    SimVector(Engine *engine, Addr base, T *host, std::uint64_t count)
        : eng(engine), baseAddr(base), hostPtr(host), n(count)
    {
    }

    /** True when this handle refers to an allocation. */
    bool valid() const { return eng != nullptr; }

    /** Element count. */
    std::uint64_t size() const { return n; }

    /** Base simulated virtual address. */
    Addr base() const { return baseAddr; }

    /** Simulated address of element @p i. */
    Addr
    addrOf(std::uint64_t i) const
    {
        return baseAddr + i * sizeof(T);
    }

    /** Timed load of element @p i on thread @p t. */
    T
    get(ThreadContext &t, std::uint64_t i) const
    {
        MEMTIER_ASSERT(i < n, "SimVector load out of range");
        eng->load(t, addrOf(i));
        return hostPtr[i];
    }

    /** Timed store of @p value into element @p i on thread @p t. */
    void
    set(ThreadContext &t, std::uint64_t i, T value) const
    {
        MEMTIER_ASSERT(i < n, "SimVector store out of range");
        eng->store(t, addrOf(i));
        hostPtr[i] = value;
    }

    /**
     * Timed read-modify-write convenience (our interleaving is
     * serialized, so this is atomic by construction).
     */
    template <typename Fn>
    void
    update(ThreadContext &t, std::uint64_t i, Fn &&fn) const
    {
        MEMTIER_ASSERT(i < n, "SimVector update out of range");
        eng->load(t, addrOf(i));
        hostPtr[i] = fn(hostPtr[i]);
        eng->store(t, addrOf(i));
    }

    // -- Bulk operations ----------------------------------------------
    //
    // Each builds one request list in the thread's scratch buffer and
    // issues a single Engine::accessBatch per chunk, so the engine can
    // coalesce same-line runs and deliver observer records batch-at-a-
    // time. The timed access sequence is exactly the per-element loop's
    // (same addresses, same ops, same order); only the host-side
    // dispatch is amortized.

    /**
     * Timed loads of [@p begin, @p end); calls @p fn(i, value) for each
     * element after its chunk's accesses are issued. @p fn must not
     * itself mutate this vector's elements.
     */
    template <typename Fn>
    void
    forEach(ThreadContext &t, std::uint64_t begin, std::uint64_t end,
            Fn &&fn) const
    {
        MEMTIER_ASSERT(begin <= end && end <= n,
                       "SimVector forEach out of range");
        for (std::uint64_t c = begin; c < end;) {
            const std::uint64_t stop = std::min(end, c + kBulkChunk);
            issueRange(t, c, stop, MemOp::Load);
            for (std::uint64_t i = c; i < stop; ++i)
                fn(i, hostPtr[i]);
            c = stop;
        }
    }

    /** Timed loads of [@p begin, @p end) copied into @p dst. */
    void
    copyOut(ThreadContext &t, std::uint64_t begin, std::uint64_t end,
            T *dst) const
    {
        MEMTIER_ASSERT(begin <= end && end <= n,
                       "SimVector copyOut out of range");
        for (std::uint64_t c = begin; c < end;) {
            const std::uint64_t stop = std::min(end, c + kBulkChunk);
            issueRange(t, c, stop, MemOp::Load);
            c = stop;
        }
        if (end > begin)
            std::memcpy(dst, hostPtr + begin, (end - begin) * sizeof(T));
    }

    /** Timed stores of @p count elements from @p src at @p begin. */
    void
    putRange(ThreadContext &t, std::uint64_t begin, const T *src,
             std::uint64_t count) const
    {
        MEMTIER_ASSERT(begin + count <= n,
                       "SimVector putRange out of range");
        for (std::uint64_t c = begin; c < begin + count;) {
            const std::uint64_t stop =
                std::min(begin + count, c + kBulkChunk);
            issueRange(t, c, stop, MemOp::Store);
            c = stop;
        }
        if (count > 0)
            std::memcpy(hostPtr + begin, src, count * sizeof(T));
    }

    /**
     * Timed stores of [@p begin, @p end) with per-element values from
     * @p gen(i), issued as batches.
     */
    template <typename Gen>
    void
    generate(ThreadContext &t, std::uint64_t begin, std::uint64_t end,
             Gen &&gen) const
    {
        MEMTIER_ASSERT(begin <= end && end <= n,
                       "SimVector generate out of range");
        for (std::uint64_t c = begin; c < end;) {
            const std::uint64_t stop = std::min(end, c + kBulkChunk);
            issueRange(t, c, stop, MemOp::Store);
            for (std::uint64_t i = c; i < stop; ++i)
                hostPtr[i] = gen(i);
            c = stop;
        }
    }

    /** Timed stores filling [@p begin, @p end) with @p value. */
    void
    fillRange(ThreadContext &t, std::uint64_t begin, std::uint64_t end,
              T value) const
    {
        MEMTIER_ASSERT(begin <= end && end <= n,
                       "SimVector fillRange out of range");
        for (std::uint64_t c = begin; c < end;) {
            const std::uint64_t stop = std::min(end, c + kBulkChunk);
            issueRange(t, c, stop, MemOp::Store);
            c = stop;
        }
        std::fill(hostPtr + begin, hostPtr + end, value);
    }

    /**
     * Timed gather: load index elements [@p begin, @p end) of @p idx,
     * then load this vector at each of those positions, writing the
     * values to @p dst in index order.
     */
    template <typename I>
    void
    gatherFrom(ThreadContext &t, const SimVector<I> &idx,
               std::uint64_t begin, std::uint64_t end, T *dst) const
    {
        for (std::uint64_t c = begin; c < end;) {
            const std::uint64_t stop = std::min(end, c + kBulkChunk);
            idx.issueRange(t, c, stop, MemOp::Load);
            auto &addrs = t.addrScratch;
            addrs.clear();
            for (std::uint64_t k = c; k < stop; ++k) {
                const auto i = static_cast<std::uint64_t>(idx.raw(k));
                MEMTIER_ASSERT(i < n, "SimVector gather out of range");
                addrs.push_back(addrOf(i));
            }
            eng->accessMany(t, std::span<const Addr>(addrs),
                            MemOp::Load);
            for (std::uint64_t k = c; k < stop; ++k)
                dst[k - begin] =
                    hostPtr[static_cast<std::uint64_t>(idx.raw(k))];
            c = stop;
        }
    }

    /**
     * Timed gather with host-resident indices: load this vector at each
     * position in @p indices, writing values to @p dst in order.
     */
    template <typename I>
    void
    gather(ThreadContext &t, std::span<const I> indices, T *dst) const
    {
        for (std::size_t c = 0; c < indices.size();) {
            const std::size_t stop =
                std::min(indices.size(),
                         c + static_cast<std::size_t>(kBulkChunk));
            auto &addrs = t.addrScratch;
            addrs.clear();
            for (std::size_t k = c; k < stop; ++k) {
                const auto i = static_cast<std::uint64_t>(indices[k]);
                MEMTIER_ASSERT(i < n, "SimVector gather out of range");
                addrs.push_back(addrOf(i));
            }
            eng->accessMany(t, std::span<const Addr>(addrs),
                            MemOp::Load);
            for (std::size_t k = c; k < stop; ++k)
                dst[k] = hostPtr[static_cast<std::uint64_t>(indices[k])];
            c = stop;
        }
    }

    /** Timed scatter: store @p value at each position in @p indices. */
    template <typename I>
    void
    scatterSet(ThreadContext &t, std::span<const I> indices, T value) const
    {
        for (std::size_t c = 0; c < indices.size();) {
            const std::size_t stop =
                std::min(indices.size(),
                         c + static_cast<std::size_t>(kBulkChunk));
            auto &addrs = t.addrScratch;
            addrs.clear();
            for (std::size_t k = c; k < stop; ++k) {
                const auto i = static_cast<std::uint64_t>(indices[k]);
                MEMTIER_ASSERT(i < n, "SimVector scatter out of range");
                addrs.push_back(addrOf(i));
            }
            eng->accessMany(t, std::span<const Addr>(addrs),
                            MemOp::Store);
            for (std::size_t k = c; k < stop; ++k)
                hostPtr[static_cast<std::uint64_t>(indices[k])] = value;
            c = stop;
        }
    }

    /**
     * Issue the timed accesses for [@p begin, @p end) as one batch
     * without touching host values (building block for the bulk ops;
     * public so composite structures like SimCsrGraph can reuse it).
     */
    void
    issueRange(ThreadContext &t, std::uint64_t begin, std::uint64_t end,
               MemOp op) const
    {
        if (end > begin)
            eng->accessRange(t, addrOf(begin), end - begin,
                             static_cast<std::uint32_t>(sizeof(T)), op);
    }

    /**
     * Untimed host access, for verification and for initializing values
     * whose timed population happens through other calls.
     */
    T *host() { return hostPtr; }

    /** Untimed const host access. */
    const T *host() const { return hostPtr; }

    /** Untimed host element read (validation only). */
    T raw(std::uint64_t i) const { return hostPtr[i]; }

  private:
    Engine *eng = nullptr;
    Addr baseAddr = 0;
    T *hostPtr = nullptr;
    std::uint64_t n = 0;
};

}  // namespace memtier

#endif  // MEMTIER_RUNTIME_SIM_VECTOR_H_

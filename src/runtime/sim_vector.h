/**
 * @file
 * SimVector<T>: a typed array living in the simulated address space.
 *
 * Element reads/writes issue timed memory operations through the engine
 * while the actual values live in host memory owned by the SimHeap. This
 * is how the graph applications "run on" the simulated tiered memory.
 */

#ifndef MEMTIER_RUNTIME_SIM_VECTOR_H_
#define MEMTIER_RUNTIME_SIM_VECTOR_H_

#include <cstdint>
#include <type_traits>

#include "base/logging.h"
#include "base/types.h"
#include "sim/engine.h"
#include "sim/thread_context.h"

namespace memtier {

/**
 * Non-owning handle to a simulated-memory array. Ownership of both the
 * virtual region and the host backing store stays with the SimHeap that
 * allocated it.
 *
 * @tparam T trivially copyable element of power-of-two size <= 8, so an
 *           aligned element never straddles a cache line.
 */
template <typename T>
class SimVector
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "SimVector elements must be trivially copyable");
    static_assert(sizeof(T) <= 8 && (sizeof(T) & (sizeof(T) - 1)) == 0,
                  "element size must be 1, 2, 4 or 8 bytes");

  public:
    /** Empty (invalid) handle. */
    SimVector() = default;

    /** Wired handle; built by SimHeap. */
    SimVector(Engine *engine, Addr base, T *host, std::uint64_t count)
        : eng(engine), baseAddr(base), hostPtr(host), n(count)
    {
    }

    /** True when this handle refers to an allocation. */
    bool valid() const { return eng != nullptr; }

    /** Element count. */
    std::uint64_t size() const { return n; }

    /** Base simulated virtual address. */
    Addr base() const { return baseAddr; }

    /** Simulated address of element @p i. */
    Addr
    addrOf(std::uint64_t i) const
    {
        return baseAddr + i * sizeof(T);
    }

    /** Timed load of element @p i on thread @p t. */
    T
    get(ThreadContext &t, std::uint64_t i) const
    {
        MEMTIER_ASSERT(i < n, "SimVector load out of range");
        eng->load(t, addrOf(i));
        return hostPtr[i];
    }

    /** Timed store of @p value into element @p i on thread @p t. */
    void
    set(ThreadContext &t, std::uint64_t i, T value) const
    {
        MEMTIER_ASSERT(i < n, "SimVector store out of range");
        eng->store(t, addrOf(i));
        hostPtr[i] = value;
    }

    /**
     * Timed read-modify-write convenience (our interleaving is
     * serialized, so this is atomic by construction).
     */
    template <typename Fn>
    void
    update(ThreadContext &t, std::uint64_t i, Fn &&fn) const
    {
        MEMTIER_ASSERT(i < n, "SimVector update out of range");
        eng->load(t, addrOf(i));
        hostPtr[i] = fn(hostPtr[i]);
        eng->store(t, addrOf(i));
    }

    /**
     * Untimed host access, for verification and for initializing values
     * whose timed population happens through other calls.
     */
    T *host() { return hostPtr; }

    /** Untimed const host access. */
    const T *host() const { return hostPtr; }

    /** Untimed host element read (validation only). */
    T raw(std::uint64_t i) const { return hostPtr[i]; }

  private:
    Engine *eng = nullptr;
    Addr baseAddr = 0;
    T *hostPtr = nullptr;
    std::uint64_t n = 0;
};

}  // namespace memtier

#endif  // MEMTIER_RUNTIME_SIM_VECTOR_H_

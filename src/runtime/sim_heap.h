/**
 * @file
 * SimHeap: the application-side allocator. Every allocation is one mmap
 * (the applications allocate multi-page objects, Section 3.2), creating
 * exactly the "memory objects" the paper's methodology tracks.
 */

#ifndef MEMTIER_RUNTIME_SIM_HEAP_H_
#define MEMTIER_RUNTIME_SIM_HEAP_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "base/types.h"
#include "runtime/placement_advisor.h"
#include "runtime/sim_vector.h"
#include "sim/engine.h"

namespace memtier {

/** Allocates and frees simulated-memory arrays backed by host storage. */
class SimHeap
{
  public:
    /** @param engine the machine allocations are mapped into. */
    explicit SimHeap(Engine &engine) : eng(engine) {}

    SimHeap(const SimHeap &) = delete;
    SimHeap &operator=(const SimHeap &) = delete;

    /**
     * Install a placement advisor consulted on every allocation
     * (nullptr = kernel default placement for everything).
     */
    void setAdvisor(PlacementAdvisor *a) { advisor = a; }

    /**
     * Allocate @p count elements of T as one mmap'd object.
     *
     * @param t thread performing the (timed) mmap syscall.
     * @param site allocation-site tag, the "call stack" the tracker
     *        records (e.g. "csr.neighbors").
     * @param count number of elements.
     */
    template <typename T>
    SimVector<T>
    alloc(ThreadContext &t, const std::string &site, std::uint64_t count)
    {
        const std::uint64_t bytes = count * sizeof(T);
        const ObjectId id = nextId++;
        const Addr base = eng.sysMmap(t, bytes, id, site);
        if (advisor) {
            if (const auto policy = advisor->policyFor(site, bytes))
                eng.sysMbind(t, base, *policy);
        }
        auto storage = std::make_unique<std::byte[]>(bytes);
        T *host = reinterpret_cast<T *>(storage.get());
        backing.emplace(base, std::move(storage));
        return SimVector<T>(&eng, base, host, count);
    }

    /** munmap the object behind @p vec and release its host storage. */
    template <typename T>
    void
    free(ThreadContext &t, SimVector<T> &vec)
    {
        MEMTIER_ASSERT(vec.valid(), "freeing an invalid SimVector");
        eng.sysMunmap(t, vec.base());
        const auto erased = backing.erase(vec.base());
        MEMTIER_ASSERT(erased == 1, "double free of SimVector");
        vec = SimVector<T>();
    }

    /** Objects allocated so far (also the next ObjectId). */
    ObjectId allocatedObjects() const { return nextId; }

    /** Number of live allocations. */
    std::size_t liveAllocations() const { return backing.size(); }

  private:
    Engine &eng;
    std::unordered_map<Addr, std::unique_ptr<std::byte[]>> backing;
    ObjectId nextId = 0;
    PlacementAdvisor *advisor = nullptr;
};

}  // namespace memtier

#endif  // MEMTIER_RUNTIME_SIM_HEAP_H_

/**
 * @file
 * Hook by which a placement policy intercepts allocations: the runtime
 * consults the advisor after each mmap and applies the returned mbind,
 * exactly like the paper's syscall_intercept-based mapper (Section 7).
 */

#ifndef MEMTIER_RUNTIME_PLACEMENT_ADVISOR_H_
#define MEMTIER_RUNTIME_PLACEMENT_ADVISOR_H_

#include <cstdint>
#include <optional>
#include <string>

#include "os/mem_policy.h"

namespace memtier {

/** Consulted on every allocation; may bind the new region. */
class PlacementAdvisor
{
  public:
    virtual ~PlacementAdvisor() = default;

    /**
     * Placement decision for an allocation of @p bytes from call site
     * @p site, or nullopt to leave the kernel's default policy.
     */
    virtual std::optional<MemPolicy>
    policyFor(const std::string &site, std::uint64_t bytes) = 0;
};

}  // namespace memtier

#endif  // MEMTIER_RUNTIME_PLACEMENT_ADVISOR_H_

#include "runtime/sim_file.h"

#include <algorithm>

#include "base/logging.h"

namespace memtier {

SimFile::SimFile(Engine &engine, const std::string &name,
                 std::uint64_t bytes)
    : eng(engine), bytes(bytes)
{
    MEMTIER_ASSERT(bytes > 0, "empty SimFile");
    baseAddr = eng.registerFile(bytes, name);
}

void
SimFile::close(ThreadContext &t)
{
    MEMTIER_ASSERT(open(), "double close of SimFile");
    eng.sysMunmap(t, baseAddr);
    baseAddr = 0;
}

void
SimFile::read(ThreadContext &t, std::uint64_t offset, std::uint64_t len)
{
    MEMTIER_ASSERT(open(), "read of a closed SimFile");
    MEMTIER_ASSERT(offset + len <= bytes, "read past end of file");
    const Addr start = baseAddr + offset;
    const Addr end = start + len;

    // Fault in whole pages, then stream the lines.
    for (PageNum vpn = pageOf(start); vpn <= pageOf(end - 1); ++vpn)
        eng.fileReadPage(t, vpn);
    for (Addr line = lineOf(start); line <= lineOf(end - 1); ++line)
        eng.load(t, line << kLineShift);
}

}  // namespace memtier

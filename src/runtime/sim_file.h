/**
 * @file
 * SimFile: a disk-resident input file read through the simulated page
 * cache, modelling the GAPBS .sg loading phase whose page-cache growth
 * and low CPU utilization the paper analyzes (Figure 9, Finding 5).
 */

#ifndef MEMTIER_RUNTIME_SIM_FILE_H_
#define MEMTIER_RUNTIME_SIM_FILE_H_

#include <cstdint>
#include <string>

#include "base/types.h"
#include "sim/engine.h"
#include "sim/thread_context.h"

namespace memtier {

/** Sequentially readable simulated file. */
class SimFile
{
  public:
    /**
     * @param engine machine whose page cache backs the file.
     * @param name file name (for the page-cache VMA tag).
     * @param bytes file size.
     */
    SimFile(Engine &engine, const std::string &name, std::uint64_t bytes);

    /**
     * Timed sequential read of [offset, offset+len): fetches missing
     * pages from disk into the page cache and issues one load per cache
     * line read, charged to thread @p t.
     */
    void read(ThreadContext &t, std::uint64_t offset, std::uint64_t len);

    /**
     * Timed unlink: munmap the page-cache range, releasing every cached
     * page (the LSM store deletes SSTs this way after compaction). The
     * file must not be read afterwards.
     */
    void close(ThreadContext &t);

    /** True until close() releases the page-cache range. */
    bool open() const { return baseAddr != 0; }

    /** File size in bytes. */
    std::uint64_t size() const { return bytes; }

    /** Base address of the file's page-cache range. */
    Addr base() const { return baseAddr; }

  private:
    Engine &eng;
    std::uint64_t bytes;
    Addr baseAddr;
};

}  // namespace memtier

#endif  // MEMTIER_RUNTIME_SIM_FILE_H_

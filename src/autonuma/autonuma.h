/**
 * @file
 * Reimplementation of the AutoNUMA memory-tiering policy (Intel's
 * tiering-0.8 patch series) as characterized in Section 2.2 of the paper:
 *
 *  - A periodic scanner walks the process VMAs and flips a window of
 *    present pages to PROT_NONE, recording the scan time.
 *  - The next touch of a marked page takes a hint page fault; hint fault
 *    latency = fault time - scan time estimates the page's hotness.
 *  - NVM pages are promoted to DRAM unconditionally while DRAM has free
 *    capacity; once DRAM is full, only pages whose hint fault latency is
 *    below a dynamically adjusted threshold are promoted, subject to a
 *    promotion rate limit.
 *  - Demotion happens through the kernel's reclaim path (kswapd/direct),
 *    not here.
 */

#ifndef MEMTIER_AUTONUMA_AUTONUMA_H_
#define MEMTIER_AUTONUMA_AUTONUMA_H_

#include <cstdint>

#include "base/stats.h"
#include "base/types.h"
#include "os/kernel.h"
#include "os/kernel_hooks.h"

namespace memtier {

/** Tunables of the AutoNUMA tiering policy. */
struct AutoNumaParams
{
    /** Cycles between scan rounds (Linux: adaptive 10 ms - 60 s,
     *  compressed for the scaled testbed's seconds-long runs). */
    Cycles scanPeriod = secondsToCycles(0.01);

    /** Pages marked PROT_NONE per scan round. */
    std::uint32_t scanPagesPerRound = 256;

    /**
     * Initial hot threshold for the hint fault latency. The tiering
     * kernel defaults to 1 s against runs lasting minutes; compressed
     * to 100 ms for the scaled testbed's seconds-long runs.
     */
    Cycles initialThreshold = secondsToCycles(0.05);

    /** Lower clamp of the adaptive threshold. */
    Cycles thresholdMin = secondsToCycles(0.0005);

    /** Upper clamp of the adaptive threshold. */
    Cycles thresholdMax = secondsToCycles(0.5);

    /**
     * Promotion rate limit in bytes per simulated second. Section 2.2
     * quotes a 35 MB default for the tiering patch's rate limit while
     * Section 6.7 quotes the sysctl ceiling of 8 GB/s; we scale the
     * effective budget so promotions stay a small fraction of the
     * footprint per run, as every promotion counter in the paper shows.
     */
    std::uint64_t rateLimitBytesPerSec = 512 * kKiB;

    /** Interval between threshold adjustments. */
    Cycles adjustPeriod = secondsToCycles(0.05);

    /**
     * Promotion holdoff after a DRAM frame is retired by the
     * memory-failure path: promotions into the shrinking tier pause
     * for this long so reclaim can re-establish the watermarks against
     * the reduced capacity before the scanner pushes more pages in.
     */
    Cycles failureHoldoff = secondsToCycles(0.01);
};

/** Observable policy statistics (beyond the kernel's vmstat). */
struct AutoNumaStats
{
    std::uint64_t pagesScanned = 0;
    std::uint64_t hintFaults = 0;
    std::uint64_t hintFaultsNvm = 0;
    std::uint64_t promotedFreePath = 0;      ///< DRAM had capacity.
    std::uint64_t promotedThresholdPath = 0; ///< Passed the hot test.
    std::uint64_t rejectedByThreshold = 0;
    std::uint64_t rejectedByRateLimit = 0;
    std::uint64_t promotionFailures = 0;     ///< No DRAM frame available.
    std::uint64_t scansPaused = 0;           ///< Rounds skipped, breaker open.
    std::uint64_t hugeHintFaults = 0;        ///< Hint faults on PMD mappings.
    std::uint64_t thpCollapses = 0;          ///< Collapse notifications.
    std::uint64_t thpSplits = 0;             ///< Split notifications.
    std::uint64_t memoryFailures = 0;        ///< Frames retired under us.
    std::uint64_t promotionsHeldOff = 0;     ///< Skipped in the holdoff.

    /** Distribution of observed hint fault latencies (seconds). */
    PercentileSummary hintLatencySeconds;

    /** Threshold value over time (seconds). */
    TimeSeries thresholdSeconds;
};

/** The AutoNUMA tiering policy. */
class AutoNuma : public TieringPolicy
{
  public:
    /**
     * @param kernel the kernel whose pages this policy manages.
     * @param params policy tunables.
     */
    AutoNuma(Kernel &kernel, const AutoNumaParams &params);

    /** TieringPolicy: registry name. */
    const char *name() const override { return "autonuma"; }

    /**
     * Periodic scan invocation (driven by the engine's service clock):
     * marks the next window of pages PROT_NONE.
     */
    void scanTick(Cycles now) override;

    /**
     * TieringPolicy: hint fault on @p vpn; may promote. A fault on a
     * PMD mapping covers all 512 base pages: the rate limit is charged
     * 2 MiB and a promotion moves the whole range at once.
     */
    Cycles onHintFault(PageNum vpn, Cycles now, PageMeta &meta) override;

    /** TieringPolicy: khugepaged collapsed the range at @p base_vpn. */
    void onThpCollapse(PageNum base_vpn, Cycles now) override;

    /** TieringPolicy: the PMD mapping at @p base_vpn was split. */
    void onThpSplit(PageNum base_vpn, Cycles now) override;

    /**
     * TieringPolicy: a frame was retired. A DRAM retirement opens the
     * promotion holdoff window; NVM retirements only count (there is
     * nothing to stop promoting into).
     */
    void onMemoryFailure(PageNum vpn, MemNode node, bool uncorrectable,
                         Cycles now) override;

    /** TieringPolicy: policy counters for reports/CSV export. */
    std::vector<PolicyCounter> snapshotStats() const override;

    /** Current hot threshold in cycles. */
    Cycles threshold() const { return hotThreshold; }

    /** Policy statistics. */
    const AutoNumaStats &stats() const { return stat; }

    /** Configured scan period (the engine schedules scanTick with it). */
    Cycles scanPeriod() const override { return cfg.scanPeriod; }

    // -- Live tunable setters (control-plane apply callbacks) ---------
    //
    // The policy layer registers these into the TunableRegistry (this
    // library sits below src/policy and cannot name the registry
    // itself). Each setter re-establishes exactly the state a fresh
    // construction with the new value would have produced, so applying
    // a tunable at cycle 0 is bit-identical to passing it to the ctor.

    /** Current parameter block (live values, after any tuning). */
    const AutoNumaParams &config() const { return cfg; }

    void setScanPeriod(Cycles p) { cfg.scanPeriod = p; }

    void
    setScanPagesPerRound(std::uint32_t n)
    {
        cfg.scanPagesPerRound = n;
    }

    /** Moves both the configured initial threshold and the live
     *  adaptive threshold, as a fresh construction would. */
    void
    setHotThreshold(Cycles t)
    {
        cfg.initialThreshold = t;
        hotThreshold = t;
    }

    void setThresholdMin(Cycles t) { cfg.thresholdMin = t; }

    void setThresholdMax(Cycles t) { cfg.thresholdMax = t; }

    /** Installs the new rate and refills the token bucket to the new
     *  full one-second budget, as a fresh construction would. */
    void
    setRateLimit(std::uint64_t bytesPerSec)
    {
        cfg.rateLimitBytesPerSec = bytesPerSec;
        rateTokens = static_cast<double>(bytesPerSec);
    }

    void setAdjustPeriod(Cycles p) { cfg.adjustPeriod = p; }

    void setFailureHoldoff(Cycles c) { cfg.failureHoldoff = c; }

  private:
    void maybeAdjustThreshold(Cycles now);
    bool rateLimitAllows(Cycles now, std::uint64_t bytes);

    Kernel &kernel;
    AutoNumaParams cfg;
    AutoNumaStats stat;

    Cycles hotThreshold;
    Addr scanCursor = 0;  ///< Resume address for the VMA walk.

    // Token-bucket promotion rate limiter.
    double rateTokens = 0.0;
    Cycles rateLastRefill = 0;

    // Threshold adaptation window.
    Cycles nextAdjust = 0;
    std::uint64_t windowCandidateBytes = 0;

    // Promotions pause until this time after a DRAM frame retirement.
    Cycles promotionHoldUntil = 0;
};

}  // namespace memtier

#endif  // MEMTIER_AUTONUMA_AUTONUMA_H_

#include "autonuma/autonuma.h"

#include <algorithm>

#include "base/logging.h"

namespace memtier {

AutoNuma::AutoNuma(Kernel &kernel, const AutoNumaParams &params)
    : kernel(kernel), cfg(params), hotThreshold(params.initialThreshold),
      rateTokens(static_cast<double>(params.rateLimitBytesPerSec))
{
    kernel.setTieringPolicy(this);
}

void
AutoNuma::scanTick(Cycles now)
{
    if (kernel.migrationsPaused(now)) {
        // Breaker open: marking pages now would only produce hint
        // faults whose promotions the kernel refuses. Skip the round.
        ++stat.scansPaused;
        return;
    }
    const AddressSpace &space = kernel.addressSpace();
    if (space.vmas().empty())
        return;

    std::uint32_t marked = 0;
    // Walk VMAs starting from the cursor, wrapping once. Only scannable
    // regions participate: page-cache ranges are reclaim-only and
    // mbind-pinned regions are never migrated (Section 7).
    for (int pass = 0; pass < 2 && marked < cfg.scanPagesPerRound;
         ++pass) {
        for (const auto &[start, vma] : space.vmas()) {
            if (marked >= cfg.scanPagesPerRound)
                break;
            if (vma.end <= scanCursor)
                continue;
            if (vma.pageCache || vma.policy.pinned())
                continue;
            PageNum vpn = pageOf(std::max(vma.start, scanCursor));
            const PageNum end_vpn = pageOf(vma.end);
            for (; vpn < end_vpn && marked < cfg.scanPagesPerRound;
                 ++vpn) {
                // A PMD mapping is marked once at the PMD entry; the
                // one hint fault it produces covers 512 base pages, so
                // the whole range counts against the scan budget.
                if (PageMeta *hm = kernel.hugeMetaMutable(vpn)) {
                    const PageNum base = hugeBaseOf(vpn);
                    if (hm->present && !hm->protNone && !hm->pinned) {
                        hm->protNone = true;
                        hm->scanTime = now;
                        kernel.shootdownHuge(base);
                        marked += kPagesPerHuge;
                        stat.pagesScanned += kPagesPerHuge;
                    }
                    vpn = base + kPagesPerHuge - 1;
                    continue;
                }
                PageMeta *meta = kernel.pageMetaMutable(vpn);
                if (meta == nullptr || !meta->present || meta->protNone)
                    continue;
                meta->protNone = true;
                meta->scanTime = now;
                kernel.shootdown(vpn);
                ++marked;
                ++stat.pagesScanned;
            }
            scanCursor = pageBase(vpn);
        }
        if (marked < cfg.scanPagesPerRound)
            scanCursor = 0;  // Wrap to the start of the address space.
    }
    maybeAdjustThreshold(now);
}

bool
AutoNuma::rateLimitAllows(Cycles now, std::uint64_t bytes)
{
    // Token bucket refilled continuously, capped at one second's worth.
    // Hint faults arrive stamped with per-thread clocks, which are not
    // globally monotone; only refill when time moved forward (an
    // unsigned underflow here would refill the bucket to full).
    const double rate = static_cast<double>(cfg.rateLimitBytesPerSec);
    if (now > rateLastRefill) {
        const double elapsed = cyclesToSeconds(now - rateLastRefill);
        rateTokens = std::min(rateTokens + elapsed * rate, rate);
        rateLastRefill = now;
    }
    if (rateTokens >= static_cast<double>(bytes)) {
        rateTokens -= static_cast<double>(bytes);
        return true;
    }
    return false;
}

void
AutoNuma::maybeAdjustThreshold(Cycles now)
{
    if (nextAdjust == 0) {
        nextAdjust = now + cfg.adjustPeriod;
        return;
    }
    if (now < nextAdjust)
        return;

    // Compare the candidate volume of the window against the rate limit
    // budget: too many candidates -> lower the threshold (stricter);
    // too few -> raise it (more permissive). (Section 2.2.)
    const double window_sec = cyclesToSeconds(cfg.adjustPeriod);
    const double budget =
        static_cast<double>(cfg.rateLimitBytesPerSec) * window_sec;
    if (static_cast<double>(windowCandidateBytes) > budget) {
        hotThreshold = std::max(cfg.thresholdMin, hotThreshold / 2);
    } else {
        hotThreshold = std::min(cfg.thresholdMax,
                                hotThreshold + hotThreshold / 8);
    }
    stat.thresholdSeconds.add(cyclesToSeconds(now),
                              cyclesToSeconds(hotThreshold));
    windowCandidateBytes = 0;
    nextAdjust = now + cfg.adjustPeriod;
}

Cycles
AutoNuma::onHintFault(PageNum vpn, Cycles now, PageMeta &meta)
{
    ++stat.hintFaults;
    const Cycles latency = now >= meta.scanTime ? now - meta.scanTime : 0;
    stat.hintLatencySeconds.add(cyclesToSeconds(latency));
    maybeAdjustThreshold(now);

    if (meta.node != MemNode::NVM)
        return 0;  // DRAM hint faults only feed the latency statistics.

    ++stat.hintFaultsNvm;

    if (now < promotionHoldUntil) {
        // A DRAM frame was just retired: capacity is eroding under us,
        // so stop pushing pages in until reclaim has caught up with
        // the new (smaller) watermarks.
        ++stat.promotionsHeldOff;
        return 0;
    }

    // One fault on a PMD mapping stands for 512 base pages: the rate
    // limit and the threshold-adaptation window are charged in bytes so
    // a huge promotion consumes a proportionate share of the budget.
    const bool huge = meta.huge;
    const std::uint64_t bytes = huge ? kHugePageSize : kPageSize;
    if (huge)
        ++stat.hugeHintFaults;

    // Free-capacity fast path: promote on any hint fault (Section 2.2:
    // "if there is enough free space ... all pages can be promoted").
    if (kernel.dramHasFreeCapacity()) {
        if (!rateLimitAllows(now, bytes)) {
            ++stat.rejectedByRateLimit;
            ++kernel.vmstatMutable().promoteRateLimited;
            return 0;
        }
        const Cycles cost = kernel.promotePage(vpn, now);
        if (cost > 0) {
            ++stat.promotedFreePath;
        } else {
            ++stat.promotionFailures;
        }
        return cost;
    }

    // Constrained path: threshold-gated candidate promotion.
    if (latency >= hotThreshold) {
        ++stat.rejectedByThreshold;
        return 0;
    }
    kernel.vmstatMutable().promoteCandidates +=
        huge ? kPagesPerHuge : 1;
    windowCandidateBytes += bytes;

    if (!rateLimitAllows(now, bytes)) {
        ++stat.rejectedByRateLimit;
        ++kernel.vmstatMutable().promoteRateLimited;
        return 0;
    }
    const Cycles cost = kernel.promotePage(vpn, now);
    if (cost > 0) {
        ++stat.promotedThresholdPath;
    } else {
        ++stat.promotionFailures;
    }
    return cost;
}

void
AutoNuma::onMemoryFailure(PageNum vpn, MemNode node, bool uncorrectable,
                          Cycles now)
{
    (void)vpn;
    (void)uncorrectable;
    ++stat.memoryFailures;
    if (node == MemNode::DRAM)
        promotionHoldUntil = std::max(promotionHoldUntil,
                                      now + cfg.failureHoldoff);
}

void
AutoNuma::onThpCollapse(PageNum base_vpn, Cycles now)
{
    (void)base_vpn;
    (void)now;
    ++stat.thpCollapses;
}

void
AutoNuma::onThpSplit(PageNum base_vpn, Cycles now)
{
    (void)base_vpn;
    (void)now;
    ++stat.thpSplits;
}

std::vector<PolicyCounter>
AutoNuma::snapshotStats() const
{
    return {
        {"pages_scanned", stat.pagesScanned},
        {"hint_faults", stat.hintFaults},
        {"hint_faults_nvm", stat.hintFaultsNvm},
        {"promoted_free_path", stat.promotedFreePath},
        {"promoted_threshold_path", stat.promotedThresholdPath},
        {"rejected_by_threshold", stat.rejectedByThreshold},
        {"rejected_by_rate_limit", stat.rejectedByRateLimit},
        {"promotion_failures", stat.promotionFailures},
        {"scans_paused", stat.scansPaused},
        {"huge_hint_faults", stat.hugeHintFaults},
        {"thp_collapses", stat.thpCollapses},
        {"thp_splits", stat.thpSplits},
        {"memory_failures", stat.memoryFailures},
        {"promotions_held_off", stat.promotionsHeldOff},
    };
}

}  // namespace memtier

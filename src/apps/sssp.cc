#include "apps/sssp.h"

#include <limits>
#include <queue>
#include <span>
#include <vector>

#include "base/logging.h"

namespace memtier {

namespace {

constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();

}  // namespace

SsspOutput
runSssp(Engine &eng, SimHeap &heap, const SegmentedCsrView &g,
        NodeId source)
{
    MEMTIER_ASSERT(g.hasWeights(), "SSSP needs a weighted graph");
    ThreadContext &t0 = eng.thread(0);
    const auto n = static_cast<std::uint64_t>(g.numNodes());

    SimVector<std::int64_t> dist =
        heap.alloc<std::int64_t>(t0, "sssp.dist", n);
    SimVector<std::uint8_t> in_next =
        heap.alloc<std::uint8_t>(t0, "sssp.in_next", n);
    eng.parallelForRanges(
        n, [&](ThreadContext &t, std::uint64_t b, std::uint64_t e) {
            dist.fillRange(t, b, e, kInf);
            in_next.fillRange(t, b, e, 0);
        });
    dist.set(t0, static_cast<std::uint64_t>(source), 0);

    SsspOutput out;
    std::vector<NodeId> frontier{source};
    std::vector<std::vector<NodeId>> staged(eng.threadCount());
    // Per-thread host staging for the bulk row/weight reads.
    struct Scratch
    {
        std::vector<NodeId> row;
        std::vector<std::int32_t> wts;
    };
    std::vector<Scratch> scratch(eng.threadCount());

    while (!frontier.empty()) {
        ++out.rounds;
        eng.parallelForRanges(
            frontier.size(),
            [&](ThreadContext &t, std::uint64_t b, std::uint64_t e) {
                Scratch &s = scratch[t.id()];
                for (std::uint64_t i = b; i < e; ++i) {
                    const NodeId u = frontier[i];
                    const auto ui = static_cast<std::uint64_t>(u);
                    const std::int64_t du = dist.get(t, ui);
                    // Bulk adjacency-row and weight-row reads; the
                    // distance relaxation per edge stays element-at-a-
                    // time (it depends on earlier relaxations).
                    const auto [begin, end] = g.neighborsInto(t, u,
                                                              s.row);
                    g.weightsInto(t, begin, end, s.wts);
                    for (std::size_t k = 0; k < s.row.size(); ++k) {
                        const NodeId v = s.row[k];
                        const std::int64_t w = s.wts[k];
                        const auto vi = static_cast<std::uint64_t>(v);
                        if (du + w < dist.get(t, vi)) {
                            dist.set(t, vi, du + w);
                            if (in_next.get(t, vi) == 0) {
                                in_next.set(t, vi, 1);
                                staged[t.id()].push_back(v);
                            }
                        }
                    }
                }
            });
        frontier.clear();
        for (auto &s : staged) {
            frontier.insert(frontier.end(), s.begin(), s.end());
            s.clear();
        }
        eng.parallelForRanges(
            frontier.size(),
            [&](ThreadContext &t, std::uint64_t b, std::uint64_t e) {
                in_next.scatterSet(
                    t,
                    std::span<const NodeId>(frontier.data() + b, e - b),
                    0);
            });
    }

    out.dist.resize(n);
    for (std::uint64_t v = 0; v < n; ++v) {
        const std::int64_t d = dist.host()[v];
        out.dist[v] = d == kInf ? -1 : d;
    }
    heap.free(t0, in_next);
    heap.free(t0, dist);
    return out;
}

std::vector<std::int64_t>
hostSsspDistances(const CsrGraph &g, NodeId source)
{
    MEMTIER_ASSERT(g.hasWeights(), "SSSP needs a weighted graph");
    const auto n = static_cast<std::size_t>(g.numNodes());
    std::vector<std::int64_t> dist(n, -1);
    using Item = std::pair<std::int64_t, NodeId>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    pq.push({0, source});
    while (!pq.empty()) {
        const auto [d, u] = pq.top();
        pq.pop();
        const auto ui = static_cast<std::size_t>(u);
        if (dist[ui] != -1)
            continue;
        dist[ui] = d;
        const auto begin = g.offsets()[ui];
        const auto end = g.offsets()[ui + 1];
        for (std::int64_t e = begin; e < end; ++e) {
            const NodeId v = g.adjacency()[static_cast<std::size_t>(e)];
            if (dist[static_cast<std::size_t>(v)] == -1)
                pq.push({d + g.weight(e), v});
        }
    }
    return dist;
}

}  // namespace memtier

#include "apps/sssp.h"

#include <limits>
#include <queue>

#include "base/logging.h"

namespace memtier {

namespace {

constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();

}  // namespace

SsspOutput
runSssp(Engine &eng, SimHeap &heap, const SimCsrGraph &g, NodeId source)
{
    MEMTIER_ASSERT(g.hasWeights(), "SSSP needs a weighted graph");
    ThreadContext &t0 = eng.thread(0);
    const auto n = static_cast<std::uint64_t>(g.numNodes());

    SimVector<std::int64_t> dist =
        heap.alloc<std::int64_t>(t0, "sssp.dist", n);
    SimVector<std::uint8_t> in_next =
        heap.alloc<std::uint8_t>(t0, "sssp.in_next", n);
    eng.parallelFor(n, [&](ThreadContext &t, std::uint64_t v) {
        dist.set(t, v, kInf);
        in_next.set(t, v, 0);
    });
    dist.set(t0, static_cast<std::uint64_t>(source), 0);

    SsspOutput out;
    std::vector<NodeId> frontier{source};
    std::vector<std::vector<NodeId>> staged(eng.threadCount());

    while (!frontier.empty()) {
        ++out.rounds;
        eng.parallelFor(
            frontier.size(), [&](ThreadContext &t, std::uint64_t i) {
                const NodeId u = frontier[i];
                const auto ui = static_cast<std::uint64_t>(u);
                const std::int64_t du = dist.get(t, ui);
                const std::int64_t begin = g.offset(t, u);
                const std::int64_t end = g.offset(t, u + 1);
                for (std::int64_t e = begin; e < end; ++e) {
                    const NodeId v = g.neighbor(t, e);
                    const std::int64_t w = g.weightOf(t, e);
                    const auto vi = static_cast<std::uint64_t>(v);
                    if (du + w < dist.get(t, vi)) {
                        dist.set(t, vi, du + w);
                        if (in_next.get(t, vi) == 0) {
                            in_next.set(t, vi, 1);
                            staged[t.id()].push_back(v);
                        }
                    }
                }
            });
        frontier.clear();
        for (auto &s : staged) {
            frontier.insert(frontier.end(), s.begin(), s.end());
            s.clear();
        }
        eng.parallelFor(frontier.size(),
                        [&](ThreadContext &t, std::uint64_t i) {
                            in_next.set(
                                t,
                                static_cast<std::uint64_t>(frontier[i]),
                                0);
                        });
    }

    out.dist.resize(n);
    for (std::uint64_t v = 0; v < n; ++v) {
        const std::int64_t d = dist.host()[v];
        out.dist[v] = d == kInf ? -1 : d;
    }
    heap.free(t0, in_next);
    heap.free(t0, dist);
    return out;
}

std::vector<std::int64_t>
hostSsspDistances(const CsrGraph &g, NodeId source)
{
    MEMTIER_ASSERT(g.hasWeights(), "SSSP needs a weighted graph");
    const auto n = static_cast<std::size_t>(g.numNodes());
    std::vector<std::int64_t> dist(n, -1);
    using Item = std::pair<std::int64_t, NodeId>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    pq.push({0, source});
    while (!pq.empty()) {
        const auto [d, u] = pq.top();
        pq.pop();
        const auto ui = static_cast<std::size_t>(u);
        if (dist[ui] != -1)
            continue;
        dist[ui] = d;
        const auto begin = g.offsets()[ui];
        const auto end = g.offsets()[ui + 1];
        for (std::int64_t e = begin; e < end; ++e) {
            const NodeId v = g.adjacency()[static_cast<std::size_t>(e)];
            if (dist[static_cast<std::size_t>(v)] == -1)
                pq.push({d + g.weight(e), v});
        }
    }
    return dist;
}

}  // namespace memtier

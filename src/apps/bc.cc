#include "apps/bc.h"

#include <algorithm>
#include <deque>

#include "base/logging.h"
#include "base/rng.h"

namespace memtier {

namespace {

/** Rejection-sample vertices of nonzero degree (shared RNG schedule:
 *  every overload draws the same ids for the same graph). */
template <typename DegreeFn>
std::vector<NodeId>
sampleSources(std::int64_t num_nodes, int num_sources,
              std::uint64_t seed, DegreeFn &&degree)
{
    Rng rng(seed);
    std::vector<NodeId> sources;
    sources.reserve(static_cast<std::size_t>(num_sources));
    const auto n = static_cast<std::uint64_t>(num_nodes);
    while (sources.size() < static_cast<std::size_t>(num_sources)) {
        const auto s = static_cast<NodeId>(rng.nextBounded(n));
        if (degree(s) > 0)
            sources.push_back(s);
    }
    return sources;
}

}  // namespace

std::vector<NodeId>
bcSampleSources(const CsrGraph &g, int num_sources, std::uint64_t seed)
{
    return sampleSources(g.numNodes(), num_sources, seed,
                         [&](NodeId s) { return g.degree(s); });
}

std::vector<NodeId>
bcSampleSources(const SegmentedCsrView &g, int num_sources,
                std::uint64_t seed)
{
    return sampleSources(g.numNodes(), num_sources, seed,
                         [&](NodeId s) { return g.rawDegree(s); });
}

BcOutput
runBc(Engine &eng, SimHeap &heap, const SegmentedCsrView &g,
      int num_sources, std::uint64_t seed)
{
    ThreadContext &t0 = eng.thread(0);
    const auto n = static_cast<std::uint64_t>(g.numNodes());
    const std::vector<NodeId> sources =
        bcSampleSources(g, num_sources, seed);

    SimVector<double> scores = heap.alloc<double>(t0, "bc.scores", n);
    eng.parallelForRanges(
        n, [&](ThreadContext &t, std::uint64_t b, std::uint64_t e) {
            scores.fillRange(t, b, e, 0.0);
        });

    BcOutput out;
    std::vector<std::vector<NodeId>> staged(eng.threadCount());
    // Per-thread host staging for the bulk calls.
    struct Scratch
    {
        std::vector<NodeId> ids;
        std::vector<NodeId> row;
    };
    std::vector<Scratch> scratch(eng.threadCount());

    for (const NodeId source : sources) {
        ++out.sourcesProcessed;

        // Per-source working set, allocated fresh each iteration
        // (Figure 7's recurring allocate/free pattern).
        SimVector<std::int32_t> depths =
            heap.alloc<std::int32_t>(t0, "bc.depths", n);
        SimVector<double> sigma =
            heap.alloc<double>(t0, "bc.path_counts", n);
        SimVector<double> delta = heap.alloc<double>(t0, "bc.deltas", n);
        SimVector<NodeId> queue = heap.alloc<NodeId>(t0, "bc.queue", n);

        eng.parallelForRanges(
            n, [&](ThreadContext &t, std::uint64_t b, std::uint64_t e) {
                depths.fillRange(t, b, e, -1);
                sigma.fillRange(t, b, e, 0.0);
                delta.fillRange(t, b, e, 0.0);
            });

        depths.set(t0, static_cast<std::uint64_t>(source), 0);
        sigma.set(t0, static_cast<std::uint64_t>(source), 1.0);
        queue.set(t0, 0, source);

        // Forward: level-synchronous BFS counting shortest paths.
        // level_bounds[d] = first queue index of depth d.
        std::vector<std::uint64_t> level_bounds{0, 1};
        std::int32_t depth = 0;
        while (level_bounds[static_cast<std::size_t>(depth) + 1] >
               level_bounds[static_cast<std::size_t>(depth)]) {
            const std::uint64_t begin =
                level_bounds[static_cast<std::size_t>(depth)];
            const std::uint64_t end =
                level_bounds[static_cast<std::size_t>(depth) + 1];
            eng.parallelForRanges(
                end - begin,
                [&](ThreadContext &t, std::uint64_t b, std::uint64_t e) {
                    Scratch &s = scratch[t.id()];
                    s.ids.resize(e - b);
                    queue.copyOut(t, begin + b, begin + e,
                                  s.ids.data());
                    for (std::uint64_t i = b; i < e; ++i) {
                        const NodeId u = s.ids[i - b];
                        const double sigma_u =
                            sigma.get(t, static_cast<std::uint64_t>(u));
                        // Bulk row read; the depth/sigma relaxation per
                        // edge stays element-at-a-time (it depends on
                        // discoveries by earlier edges).
                        g.neighborsInto(t, u, s.row);
                        for (const NodeId v : s.row) {
                            const auto vi =
                                static_cast<std::uint64_t>(v);
                            const std::int32_t dv = depths.get(t, vi);
                            if (dv == -1) {
                                depths.set(t, vi, depth + 1);
                                sigma.set(t, vi, sigma_u);
                                staged[t.id()].push_back(v);
                            } else if (dv == depth + 1) {
                                sigma.update(t, vi, [&](double sv) {
                                    return sv + sigma_u;
                                });
                            }
                        }
                    }
                });
            // Append the discovered level to the queue.
            std::uint64_t pos = end;
            std::vector<NodeId> next;
            for (auto &s : staged) {
                next.insert(next.end(), s.begin(), s.end());
                s.clear();
            }
            eng.parallelForRanges(
                next.size(),
                [&](ThreadContext &t, std::uint64_t b, std::uint64_t e) {
                    queue.putRange(t, pos + b, next.data() + b, e - b);
                });
            level_bounds.push_back(pos + next.size());
            ++depth;
        }

        // Backward: accumulate dependencies level by level.
        for (std::int32_t d = depth - 1; d >= 0; --d) {
            const std::uint64_t begin =
                level_bounds[static_cast<std::size_t>(d)];
            const std::uint64_t end =
                level_bounds[static_cast<std::size_t>(d) + 1];
            eng.parallelForRanges(
                end - begin,
                [&](ThreadContext &t, std::uint64_t b, std::uint64_t e) {
                    Scratch &s = scratch[t.id()];
                    s.ids.resize(e - b);
                    queue.copyOut(t, begin + b, begin + e,
                                  s.ids.data());
                    for (std::uint64_t i = b; i < e; ++i) {
                        const NodeId u = s.ids[i - b];
                        const auto ui = static_cast<std::uint64_t>(u);
                        const double sigma_u = sigma.get(t, ui);
                        double acc = 0.0;
                        g.neighborsInto(t, u, s.row);
                        for (const NodeId v : s.row) {
                            const auto vi =
                                static_cast<std::uint64_t>(v);
                            if (depths.get(t, vi) == d + 1) {
                                acc += (sigma_u / sigma.get(t, vi)) *
                                       (1.0 + delta.get(t, vi));
                            }
                        }
                        delta.set(t, ui, acc);
                        if (u != source) {
                            scores.update(t, ui, [&](double sc) {
                                return sc + acc;
                            });
                        }
                    }
                });
        }

        heap.free(t0, queue);
        heap.free(t0, delta);
        heap.free(t0, sigma);
        heap.free(t0, depths);
    }

    out.scores.assign(scores.host(), scores.host() + n);
    heap.free(t0, scores);
    return out;
}

std::vector<double>
hostBcScores(const CsrGraph &g, int num_sources, std::uint64_t seed)
{
    const auto n = static_cast<std::size_t>(g.numNodes());
    std::vector<double> scores(n, 0.0);
    const std::vector<NodeId> sources =
        bcSampleSources(g, num_sources, seed);

    for (const NodeId source : sources) {
        std::vector<std::int32_t> depth(n, -1);
        std::vector<double> sigma(n, 0.0);
        std::vector<double> delta(n, 0.0);
        std::vector<NodeId> order;
        order.reserve(n);

        depth[static_cast<std::size_t>(source)] = 0;
        sigma[static_cast<std::size_t>(source)] = 1.0;
        std::deque<NodeId> queue{source};
        while (!queue.empty()) {
            const NodeId u = queue.front();
            queue.pop_front();
            order.push_back(u);
            for (const NodeId v : g.neighbors(u)) {
                const auto vi = static_cast<std::size_t>(v);
                const auto ui = static_cast<std::size_t>(u);
                if (depth[vi] == -1) {
                    depth[vi] = depth[ui] + 1;
                    sigma[vi] = sigma[ui];
                    queue.push_back(v);
                } else if (depth[vi] == depth[ui] + 1) {
                    sigma[vi] += sigma[ui];
                }
            }
        }
        for (auto it = order.rbegin(); it != order.rend(); ++it) {
            const NodeId u = *it;
            const auto ui = static_cast<std::size_t>(u);
            for (const NodeId v : g.neighbors(u)) {
                const auto vi = static_cast<std::size_t>(v);
                if (depth[vi] == depth[ui] + 1) {
                    delta[ui] +=
                        (sigma[ui] / sigma[vi]) * (1.0 + delta[vi]);
                }
            }
            if (u != source)
                scores[ui] += delta[ui];
        }
    }
    return scores;
}

}  // namespace memtier

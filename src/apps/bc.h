/**
 * @file
 * Betweenness centrality (Brandes' algorithm with sampled sources, as
 * GAPBS runs it) on simulated tiered memory. BC is the paper's deep-dive
 * workload: its per-source allocation churn produces the object
 * lifetimes of Figure 7 and its forward/backward sweeps dominate the
 * NVM traffic analyzed in Sections 5 and 6.
 */

#ifndef MEMTIER_APPS_BC_H_
#define MEMTIER_APPS_BC_H_

#include <cstdint>
#include <vector>

#include "bigraph/segmented_csr.h"
#include "runtime/sim_heap.h"

namespace memtier {

/** Host-side result of a BC run. */
struct BcOutput
{
    std::vector<double> scores;  ///< Centrality per vertex (unnormalized).
    int sourcesProcessed = 0;
};

/**
 * Run BC from @p num_sources sampled sources.
 *
 * Per-source working arrays (depths, path counts, deltas, wavefront
 * queue) are allocated and freed each iteration, exactly the allocation
 * pattern whose recurrence Figure 7 shows.
 */
BcOutput runBc(Engine &engine, SimHeap &heap, const SegmentedCsrView &g,
               int num_sources, std::uint64_t seed = 27491);

/** Untimed host reference (exact Brandes over the same sources). */
std::vector<double> hostBcScores(const CsrGraph &g, int num_sources,
                                 std::uint64_t seed = 27491);

/** The deterministic source sample both implementations use. */
std::vector<NodeId> bcSampleSources(const CsrGraph &g, int num_sources,
                                    std::uint64_t seed);

/** Same sample drawn from a view (untimed degree probes; identical RNG
 *  draws, so it matches the host-graph overload for the same graph). */
std::vector<NodeId> bcSampleSources(const SegmentedCsrView &g,
                                    int num_sources, std::uint64_t seed);

}  // namespace memtier

#endif  // MEMTIER_APPS_BC_H_

#include "apps/pagerank.h"

#include <span>
#include <vector>

#include "base/logging.h"

namespace memtier {

PageRankOutput
runPageRank(Engine &eng, SimHeap &heap, const SegmentedCsrView &g,
            int iterations, double damping)
{
    ThreadContext &t0 = eng.thread(0);
    const auto n = static_cast<std::uint64_t>(g.numNodes());
    const double base =
        (1.0 - damping) / static_cast<double>(g.numNodes());

    SimVector<double> rank = heap.alloc<double>(t0, "pr.rank", n);
    SimVector<double> contrib =
        heap.alloc<double>(t0, "pr.contrib", n);

    const double init = 1.0 / static_cast<double>(g.numNodes());
    // Every region below writes only its own [b, e) slice of rank /
    // contrib (gather reads contrib written by the *previous* barrier),
    // so they are safe to fan out across host threads.
    eng.parallelForRanges(
        n,
        [&](ThreadContext &t, std::uint64_t b, std::uint64_t e) {
            rank.fillRange(t, b, e, init);
        },
        16, RegionMode::WriteDisjoint);

    // Per-thread host staging for the bulk calls.
    struct Scratch
    {
        std::vector<std::int64_t> offs;
        std::vector<double> vals;
        std::vector<NodeId> row;
        std::vector<double> neigh;
    };
    std::vector<Scratch> scratch(eng.threadCount());

    PageRankOutput out;
    for (int it = 0; it < iterations; ++it) {
        ++out.iterations;
        // Scatter phase: contribution = rank / degree. One bulk load of
        // the offset slice and the rank slice per subrange, one bulk
        // store of the contributions.
        eng.parallelForRanges(
            n,
            [&](ThreadContext &t, std::uint64_t b, std::uint64_t e) {
                Scratch &s = scratch[t.id()];
                s.offs.resize(e - b + 1);
                g.offsetsInto(t, b, e + 1, s.offs.data());
                s.vals.resize(e - b);
                rank.copyOut(t, b, e, s.vals.data());
                for (std::uint64_t v = b; v < e; ++v) {
                    const std::int64_t deg =
                        s.offs[v - b + 1] - s.offs[v - b];
                    s.vals[v - b] =
                        deg > 0
                            ? s.vals[v - b] / static_cast<double>(deg)
                            : 0.0;
                }
                contrib.putRange(t, b, s.vals.data(), e - b);
            },
            16, RegionMode::WriteDisjoint);
        // Gather phase: pull neighbor contributions. Consecutive
        // vertices' adjacency rows are contiguous in CSR order, so the
        // whole subrange needs only one bulk offset read, one bulk
        // adjacency read, and one bulk gather of the contributions the
        // edges name -- the per-vertex work is pure host arithmetic on
        // the staged values.
        eng.parallelForRanges(
            n,
            [&](ThreadContext &t, std::uint64_t b, std::uint64_t e) {
                if (b == e)
                    return;
                Scratch &s = scratch[t.id()];
                s.offs.resize(e - b + 1);
                g.offsetsInto(t, b, e + 1, s.offs.data());
                const std::int64_t row_b = s.offs[0];
                const std::int64_t row_e = s.offs[e - b];
                const auto len =
                    static_cast<std::uint64_t>(row_e - row_b);
                s.row.resize(len);
                g.adjacencyInto(t, row_b, row_e, s.row.data());
                s.neigh.resize(len);
                contrib.gather(t, std::span<const NodeId>(s.row),
                               s.neigh.data());
                s.vals.resize(e - b);
                for (std::uint64_t v = b; v < e; ++v) {
                    const auto lo = static_cast<std::uint64_t>(
                        s.offs[v - b] - row_b);
                    const auto hi = static_cast<std::uint64_t>(
                        s.offs[v - b + 1] - row_b);
                    double sum = 0.0;
                    for (std::uint64_t j = lo; j < hi; ++j)
                        sum += s.neigh[j];
                    s.vals[v - b] = base + damping * sum;
                }
                rank.putRange(t, b, s.vals.data(), e - b);
            },
            16, RegionMode::WriteDisjoint);
    }

    out.rank.assign(rank.host(), rank.host() + n);
    heap.free(t0, contrib);
    heap.free(t0, rank);
    return out;
}

std::vector<double>
hostPageRank(const CsrGraph &g, int iterations, double damping)
{
    const auto n = static_cast<std::size_t>(g.numNodes());
    const double base = (1.0 - damping) / static_cast<double>(n);
    std::vector<double> rank(n, 1.0 / static_cast<double>(n));
    std::vector<double> contrib(n, 0.0);
    for (int it = 0; it < iterations; ++it) {
        for (std::size_t v = 0; v < n; ++v) {
            const auto deg = g.degree(static_cast<NodeId>(v));
            contrib[v] = deg > 0 ? rank[v] / static_cast<double>(deg)
                                 : 0.0;
        }
        for (std::size_t v = 0; v < n; ++v) {
            double sum = 0.0;
            for (const NodeId u : g.neighbors(static_cast<NodeId>(v)))
                sum += contrib[static_cast<std::size_t>(u)];
            rank[v] = base + damping * sum;
        }
    }
    return rank;
}

}  // namespace memtier

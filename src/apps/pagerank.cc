#include "apps/pagerank.h"

#include "base/logging.h"

namespace memtier {

PageRankOutput
runPageRank(Engine &eng, SimHeap &heap, const SimCsrGraph &g,
            int iterations, double damping)
{
    ThreadContext &t0 = eng.thread(0);
    const auto n = static_cast<std::uint64_t>(g.numNodes());
    const double base =
        (1.0 - damping) / static_cast<double>(g.numNodes());

    SimVector<double> rank = heap.alloc<double>(t0, "pr.rank", n);
    SimVector<double> contrib =
        heap.alloc<double>(t0, "pr.contrib", n);

    const double init = 1.0 / static_cast<double>(g.numNodes());
    eng.parallelFor(n, [&](ThreadContext &t, std::uint64_t v) {
        rank.set(t, v, init);
    });

    PageRankOutput out;
    for (int it = 0; it < iterations; ++it) {
        ++out.iterations;
        // Scatter phase: contribution = rank / degree.
        eng.parallelFor(n, [&](ThreadContext &t, std::uint64_t v) {
            const std::int64_t begin =
                g.offset(t, static_cast<NodeId>(v));
            const std::int64_t end =
                g.offset(t, static_cast<NodeId>(v) + 1);
            const std::int64_t deg = end - begin;
            const double r = rank.get(t, v);
            contrib.set(t, v,
                        deg > 0 ? r / static_cast<double>(deg) : 0.0);
        });
        // Gather phase: pull neighbor contributions.
        eng.parallelFor(n, [&](ThreadContext &t, std::uint64_t v) {
            double sum = 0.0;
            g.forNeighbors(t, static_cast<NodeId>(v), [&](NodeId u) {
                sum += contrib.get(t, static_cast<std::uint64_t>(u));
            });
            rank.set(t, v, base + damping * sum);
        });
    }

    out.rank.assign(rank.host(), rank.host() + n);
    heap.free(t0, contrib);
    heap.free(t0, rank);
    return out;
}

std::vector<double>
hostPageRank(const CsrGraph &g, int iterations, double damping)
{
    const auto n = static_cast<std::size_t>(g.numNodes());
    const double base = (1.0 - damping) / static_cast<double>(n);
    std::vector<double> rank(n, 1.0 / static_cast<double>(n));
    std::vector<double> contrib(n, 0.0);
    for (int it = 0; it < iterations; ++it) {
        for (std::size_t v = 0; v < n; ++v) {
            const auto deg = g.degree(static_cast<NodeId>(v));
            contrib[v] = deg > 0 ? rank[v] / static_cast<double>(deg)
                                 : 0.0;
        }
        for (std::size_t v = 0; v < n; ++v) {
            double sum = 0.0;
            for (const NodeId u : g.neighbors(static_cast<NodeId>(v)))
                sum += contrib[static_cast<std::size_t>(u)];
            rank[v] = base + damping * sum;
        }
    }
    return rank;
}

}  // namespace memtier

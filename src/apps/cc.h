/**
 * @file
 * Connected components via Shiloach-Vishkin style hooking and pointer
 * jumping (the GAPBS "cc_sv" kernel) on simulated tiered memory.
 */

#ifndef MEMTIER_APPS_CC_H_
#define MEMTIER_APPS_CC_H_

#include <cstdint>
#include <vector>

#include "bigraph/segmented_csr.h"
#include "runtime/sim_heap.h"

namespace memtier {

/** Host-side result of a CC run. */
struct CcOutput
{
    std::vector<NodeId> comp;  ///< Component label per vertex.
    int iterations = 0;        ///< Hook+compress rounds executed.
    std::int64_t numComponents = 0;
};

/** Run connected components. */
CcOutput runCc(Engine &engine, SimHeap &heap, const SegmentedCsrView &g);

/** Untimed host reference labelling (BFS flood fill). */
std::vector<NodeId> hostCcLabels(const CsrGraph &g);

}  // namespace memtier

#endif  // MEMTIER_APPS_CC_H_

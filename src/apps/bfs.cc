#include "apps/bfs.h"

#include <algorithm>
#include <deque>

#include "base/logging.h"

namespace memtier {

namespace {

/** Per-thread host-side staging of discovered vertices. */
using Staging = std::vector<std::vector<NodeId>>;

/** Flatten staging buffers into one host vector (thread order). */
std::vector<NodeId>
flatten(Staging &staged)
{
    std::vector<NodeId> flat;
    for (auto &s : staged) {
        flat.insert(flat.end(), s.begin(), s.end());
        s.clear();
    }
    return flat;
}

}  // namespace

BfsOutput
runBfs(Engine &eng, SimHeap &heap, const SimCsrGraph &g, NodeId source,
       const BfsParams &params)
{
    ThreadContext &t0 = eng.thread(0);
    const auto n = static_cast<std::uint64_t>(g.numNodes());
    MEMTIER_ASSERT(source >= 0 &&
                       source < static_cast<NodeId>(g.numNodes()),
                   "BFS source out of range");

    SimVector<NodeId> parent =
        heap.alloc<NodeId>(t0, "bfs.parent", n);
    SimVector<NodeId> frontier =
        heap.alloc<NodeId>(t0, "bfs.frontier", n);
    SimVector<std::uint8_t> front_map =
        heap.alloc<std::uint8_t>(t0, "bfs.front_map", n);
    SimVector<std::uint8_t> next_map =
        heap.alloc<std::uint8_t>(t0, "bfs.next_map", n);

    eng.parallelFor(n, [&](ThreadContext &t, std::uint64_t v) {
        parent.set(t, v, -1);
        front_map.set(t, v, 0);
        next_map.set(t, v, 0);
    });

    parent.set(t0, static_cast<std::uint64_t>(source), source);
    frontier.set(t0, 0, source);
    std::uint64_t frontier_size = 1;
    bool frontier_in_queue = true;

    BfsOutput out;
    out.reached = 1;
    const std::int64_t total_edges = g.numEdges();
    std::int64_t edges_explored = 0;

    Staging staged(eng.threadCount());

    while (frontier_size > 0) {
        ++out.supersteps;

        // Direction heuristic (simplified GAPBS): go bottom-up while the
        // frontier is a large fraction of the graph.
        const bool bottom_up =
            frontier_size * static_cast<std::uint64_t>(params.alpha) >
                n - static_cast<std::uint64_t>(out.reached) +
                    frontier_size &&
            frontier_size > n / static_cast<std::uint64_t>(params.beta);

        if (bottom_up) {
            ++out.bottomUpSteps;
            if (frontier_in_queue) {
                // Convert queue -> bitmap.
                eng.parallelFor(
                    frontier_size,
                    [&](ThreadContext &t, std::uint64_t i) {
                        const NodeId u = frontier.get(t, i);
                        front_map.set(
                            t, static_cast<std::uint64_t>(u), 1);
                    });
                frontier_in_queue = false;
            }
            eng.parallelFor(n, [&](ThreadContext &t, std::uint64_t v) {
                if (parent.get(t, v) != -1)
                    return;
                const NodeId node = static_cast<NodeId>(v);
                const std::int64_t begin = g.offset(t, node);
                const std::int64_t end =
                    g.offset(t, node + 1);
                for (std::int64_t e = begin; e < end; ++e) {
                    const NodeId u = g.neighbor(t, e);
                    if (front_map.get(
                            t, static_cast<std::uint64_t>(u)) != 0) {
                        parent.set(t, v, u);
                        next_map.set(t, v, 1);
                        staged[t.id()].push_back(node);
                        break;
                    }
                }
            });
            // Swap maps; clear the consumed one.
            std::swap(front_map, next_map);
            eng.parallelFor(n, [&](ThreadContext &t, std::uint64_t v) {
                next_map.set(t, v, 0);
            });
        } else {
            if (!frontier_in_queue) {
                // Convert bitmap -> queue (scan all vertices).
                std::uint64_t q = 0;
                std::vector<NodeId> collected;
                eng.parallelFor(
                    n, [&](ThreadContext &t, std::uint64_t v) {
                        if (front_map.get(t, v) != 0) {
                            staged[t.id()].push_back(
                                static_cast<NodeId>(v));
                            front_map.set(t, v, 0);
                        }
                    });
                collected = flatten(staged);
                for (const NodeId v : collected) {
                    frontier.set(t0, q++, v);
                }
                frontier_size = q;
                frontier_in_queue = true;
            }
            eng.parallelFor(
                frontier_size, [&](ThreadContext &t, std::uint64_t i) {
                    const NodeId u = frontier.get(t, i);
                    g.forNeighbors(t, u, [&](NodeId v) {
                        const auto vi = static_cast<std::uint64_t>(v);
                        if (parent.get(t, vi) == -1) {
                            parent.set(t, vi, u);
                            staged[t.id()].push_back(v);
                        }
                    });
                });
        }

        const std::vector<NodeId> next = flatten(staged);
        out.reached += static_cast<std::int64_t>(next.size());
        edges_explored += static_cast<std::int64_t>(frontier_size);
        (void)total_edges;
        (void)edges_explored;

        if (bottom_up) {
            frontier_size = next.size();
            frontier_in_queue = false;
            // front_map already holds the next frontier.
        } else {
            // Write the next frontier queue (timed stores).
            eng.parallelFor(next.size(),
                            [&](ThreadContext &t, std::uint64_t i) {
                                frontier.set(t, i, next[i]);
                            });
            frontier_size = next.size();
            frontier_in_queue = true;
        }
    }

    out.parent.assign(parent.host(), parent.host() + n);

    heap.free(t0, next_map);
    heap.free(t0, front_map);
    heap.free(t0, frontier);
    heap.free(t0, parent);
    return out;
}

std::vector<std::int64_t>
hostBfsDepths(const CsrGraph &g, NodeId source)
{
    std::vector<std::int64_t> depth(
        static_cast<std::size_t>(g.numNodes()), -1);
    std::deque<NodeId> queue;
    depth[static_cast<std::size_t>(source)] = 0;
    queue.push_back(source);
    while (!queue.empty()) {
        const NodeId u = queue.front();
        queue.pop_front();
        for (const NodeId v : g.neighbors(u)) {
            if (depth[static_cast<std::size_t>(v)] == -1) {
                depth[static_cast<std::size_t>(v)] =
                    depth[static_cast<std::size_t>(u)] + 1;
                queue.push_back(v);
            }
        }
    }
    return depth;
}

}  // namespace memtier

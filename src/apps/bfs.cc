#include "apps/bfs.h"

#include <algorithm>
#include <deque>
#include <span>

#include "base/logging.h"

namespace memtier {

namespace {

/** Per-thread host-side staging of discovered vertices. */
using Staging = std::vector<std::vector<NodeId>>;

/** Flatten staging buffers into one host vector (thread order). */
std::vector<NodeId>
flatten(Staging &staged)
{
    std::vector<NodeId> flat;
    for (auto &s : staged) {
        flat.insert(flat.end(), s.begin(), s.end());
        s.clear();
    }
    return flat;
}

}  // namespace

BfsOutput
runBfs(Engine &eng, SimHeap &heap, const SegmentedCsrView &g,
       NodeId source, const BfsParams &params)
{
    ThreadContext &t0 = eng.thread(0);
    const auto n = static_cast<std::uint64_t>(g.numNodes());
    MEMTIER_ASSERT(source >= 0 &&
                       source < static_cast<NodeId>(g.numNodes()),
                   "BFS source out of range");

    SimVector<NodeId> parent =
        heap.alloc<NodeId>(t0, "bfs.parent", n);
    SimVector<NodeId> frontier =
        heap.alloc<NodeId>(t0, "bfs.frontier", n);
    SimVector<std::uint8_t> front_map =
        heap.alloc<std::uint8_t>(t0, "bfs.front_map", n);
    SimVector<std::uint8_t> next_map =
        heap.alloc<std::uint8_t>(t0, "bfs.next_map", n);

    eng.parallelForRanges(
        n, [&](ThreadContext &t, std::uint64_t b, std::uint64_t e) {
            parent.fillRange(t, b, e, -1);
            front_map.fillRange(t, b, e, 0);
            next_map.fillRange(t, b, e, 0);
        });

    // Per-thread host staging for the bulk calls.
    struct Scratch
    {
        std::vector<NodeId> ids;
        std::vector<NodeId> row;
        std::vector<std::uint8_t> bits;
    };
    std::vector<Scratch> scratch(eng.threadCount());

    parent.set(t0, static_cast<std::uint64_t>(source), source);
    frontier.set(t0, 0, source);
    std::uint64_t frontier_size = 1;
    bool frontier_in_queue = true;

    BfsOutput out;
    out.reached = 1;
    const std::int64_t total_edges = g.numEdges();
    std::int64_t edges_explored = 0;

    Staging staged(eng.threadCount());

    while (frontier_size > 0) {
        ++out.supersteps;

        // Direction heuristic (simplified GAPBS): go bottom-up while the
        // frontier is a large fraction of the graph.
        const bool bottom_up =
            frontier_size * static_cast<std::uint64_t>(params.alpha) >
                n - static_cast<std::uint64_t>(out.reached) +
                    frontier_size &&
            frontier_size > n / static_cast<std::uint64_t>(params.beta);

        if (bottom_up) {
            ++out.bottomUpSteps;
            if (frontier_in_queue) {
                // Convert queue -> bitmap: bulk-read the queue slice,
                // scatter the bits.
                eng.parallelForRanges(
                    frontier_size,
                    [&](ThreadContext &t, std::uint64_t b,
                        std::uint64_t e) {
                        Scratch &s = scratch[t.id()];
                        s.ids.resize(e - b);
                        frontier.copyOut(t, b, e, s.ids.data());
                        front_map.scatterSet(
                            t, std::span<const NodeId>(s.ids), 1);
                    });
                frontier_in_queue = false;
            }
            eng.parallelForRanges(
                n, [&](ThreadContext &t, std::uint64_t b,
                       std::uint64_t e) {
                    // Bulk-read the parent slice; each vertex writes
                    // only its own slot, so the snapshot stays fresh
                    // for the whole subrange. The per-edge scan stays
                    // element-at-a-time: its early break makes the
                    // access count data-dependent, which a bulk row
                    // read would change.
                    Scratch &s = scratch[t.id()];
                    s.ids.resize(e - b);
                    parent.copyOut(t, b, e, s.ids.data());
                    for (std::uint64_t v = b; v < e; ++v) {
                        if (s.ids[v - b] != -1)
                            continue;
                        const NodeId node = static_cast<NodeId>(v);
                        const auto [begin, end] = g.offsetPair(t, node);
                        for (std::int64_t ed = begin; ed < end; ++ed) {
                            const NodeId u = g.neighbor(t, ed);
                            if (front_map.get(
                                    t,
                                    static_cast<std::uint64_t>(u)) !=
                                0) {
                                parent.set(t, v, u);
                                next_map.set(t, v, 1);
                                staged[t.id()].push_back(node);
                                break;
                            }
                        }
                    }
                });
            // Swap maps; clear the consumed one.
            std::swap(front_map, next_map);
            eng.parallelForRanges(
                n, [&](ThreadContext &t, std::uint64_t b,
                       std::uint64_t e) {
                    next_map.fillRange(t, b, e, 0);
                });
        } else {
            if (!frontier_in_queue) {
                // Convert bitmap -> queue: bulk-scan the map, clear the
                // set bits with a scatter, bulk-write the queue.
                eng.parallelForRanges(
                    n, [&](ThreadContext &t, std::uint64_t b,
                           std::uint64_t e) {
                        Scratch &s = scratch[t.id()];
                        s.bits.resize(e - b);
                        front_map.copyOut(t, b, e, s.bits.data());
                        s.ids.clear();
                        for (std::uint64_t v = b; v < e; ++v) {
                            if (s.bits[v - b] != 0) {
                                staged[t.id()].push_back(
                                    static_cast<NodeId>(v));
                                s.ids.push_back(
                                    static_cast<NodeId>(v));
                            }
                        }
                        front_map.scatterSet(
                            t, std::span<const NodeId>(s.ids), 0);
                    });
                const std::vector<NodeId> collected = flatten(staged);
                frontier.putRange(t0, 0, collected.data(),
                                  collected.size());
                frontier_size = collected.size();
                frontier_in_queue = true;
            }
            eng.parallelForRanges(
                frontier_size,
                [&](ThreadContext &t, std::uint64_t b, std::uint64_t e) {
                    Scratch &s = scratch[t.id()];
                    s.ids.resize(e - b);
                    frontier.copyOut(t, b, e, s.ids.data());
                    for (std::uint64_t i = b; i < e; ++i) {
                        const NodeId u = s.ids[i - b];
                        // Bulk row read; the parent check-and-claim
                        // per edge stays element-at-a-time (it is
                        // data-dependent on earlier claims).
                        g.neighborsInto(t, u, s.row);
                        for (const NodeId v : s.row) {
                            const auto vi =
                                static_cast<std::uint64_t>(v);
                            if (parent.get(t, vi) == -1) {
                                parent.set(t, vi, u);
                                staged[t.id()].push_back(v);
                            }
                        }
                    }
                });
        }

        const std::vector<NodeId> next = flatten(staged);
        out.reached += static_cast<std::int64_t>(next.size());
        edges_explored += static_cast<std::int64_t>(frontier_size);
        (void)total_edges;
        (void)edges_explored;

        if (bottom_up) {
            frontier_size = next.size();
            frontier_in_queue = false;
            // front_map already holds the next frontier.
        } else {
            // Write the next frontier queue (timed bulk stores).
            eng.parallelForRanges(
                next.size(),
                [&](ThreadContext &t, std::uint64_t b, std::uint64_t e) {
                    frontier.putRange(t, b, next.data() + b, e - b);
                });
            frontier_size = next.size();
            frontier_in_queue = true;
        }
    }

    out.parent.assign(parent.host(), parent.host() + n);

    heap.free(t0, next_map);
    heap.free(t0, front_map);
    heap.free(t0, frontier);
    heap.free(t0, parent);
    return out;
}

std::vector<std::int64_t>
hostBfsDepths(const CsrGraph &g, NodeId source)
{
    std::vector<std::int64_t> depth(
        static_cast<std::size_t>(g.numNodes()), -1);
    std::deque<NodeId> queue;
    depth[static_cast<std::size_t>(source)] = 0;
    queue.push_back(source);
    while (!queue.empty()) {
        const NodeId u = queue.front();
        queue.pop_front();
        for (const NodeId v : g.neighbors(u)) {
            if (depth[static_cast<std::size_t>(v)] == -1) {
                depth[static_cast<std::size_t>(v)] =
                    depth[static_cast<std::size_t>(u)] + 1;
                queue.push_back(v);
            }
        }
    }
    return depth;
}

}  // namespace memtier

/**
 * @file
 * Direction-optimizing breadth-first search (Beamer's algorithm, as in
 * GAPBS) running on simulated tiered memory.
 */

#ifndef MEMTIER_APPS_BFS_H_
#define MEMTIER_APPS_BFS_H_

#include <cstdint>
#include <vector>

#include "bigraph/segmented_csr.h"
#include "runtime/sim_heap.h"

namespace memtier {

/** Host-side result of one BFS run (simulated arrays are freed). */
struct BfsOutput
{
    std::vector<NodeId> parent;   ///< Parent per vertex, -1 unreached.
    std::int64_t reached = 0;     ///< Vertices reached (incl. source).
    int supersteps = 0;           ///< Frontier expansions executed.
    int bottomUpSteps = 0;        ///< Supersteps run in bottom-up mode.
};

/** Tuning knobs of the direction-optimizing heuristic (GAPBS values). */
struct BfsParams
{
    int alpha = 15;  ///< Top-down -> bottom-up switch factor.
    int beta = 18;   ///< Bottom-up -> top-down switch factor.
};

/**
 * Run BFS from @p source.
 *
 * All working state (parent array, frontier queue, frontier bitmaps)
 * is allocated as tracked objects in simulated memory and freed before
 * returning; the returned host copy supports validation.
 */
BfsOutput runBfs(Engine &engine, SimHeap &heap,
                 const SegmentedCsrView &g, NodeId source,
                 const BfsParams &params = BfsParams{});

/** Untimed host reference: depth per vertex, -1 unreached. */
std::vector<std::int64_t> hostBfsDepths(const CsrGraph &g, NodeId source);

}  // namespace memtier

#endif  // MEMTIER_APPS_BFS_H_

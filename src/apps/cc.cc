#include "apps/cc.h"

#include <deque>
#include <unordered_set>
#include <vector>

#include "base/logging.h"

namespace memtier {

CcOutput
runCc(Engine &eng, SimHeap &heap, const SegmentedCsrView &g)
{
    ThreadContext &t0 = eng.thread(0);
    const auto n = static_cast<std::uint64_t>(g.numNodes());

    SimVector<NodeId> comp = heap.alloc<NodeId>(t0, "cc.comp", n);
    eng.parallelForRanges(
        n, [&](ThreadContext &t, std::uint64_t b, std::uint64_t e) {
            comp.generate(t, b, e, [](std::uint64_t v) {
                return static_cast<NodeId>(v);
            });
        });

    // Per-thread host staging for the bulk row reads.
    std::vector<std::vector<NodeId>> rows(eng.threadCount());

    CcOutput out;
    bool change = true;
    while (change) {
        change = false;
        ++out.iterations;

        // Hooking: for every edge (u, v), attach the root of the larger
        // label to the smaller one when the larger endpoint is a root.
        // The adjacency row is read in bulk; the label work stays
        // element-at-a-time because every comp access depends on the
        // hooks performed just before it (including the comp_u reload
        // per edge, which must see hooks by earlier edges).
        eng.parallelForRanges(
            n, [&](ThreadContext &t, std::uint64_t b, std::uint64_t e) {
                std::vector<NodeId> &row = rows[t.id()];
                for (std::uint64_t ui = b; ui < e; ++ui) {
                    g.neighborsInto(t, static_cast<NodeId>(ui), row);
                    for (const NodeId v : row) {
                        const NodeId comp_u = comp.get(t, ui);
                        const NodeId comp_v =
                            comp.get(t, static_cast<std::uint64_t>(v));
                        if (comp_u < comp_v) {
                            const NodeId root = comp.get(
                                t, static_cast<std::uint64_t>(comp_v));
                            if (root == comp_v) {
                                comp.set(
                                    t,
                                    static_cast<std::uint64_t>(comp_v),
                                    comp_u);
                                change = true;
                            }
                        }
                    }
                }
            });

        // Pointer jumping: compress label chains (a data-dependent
        // chase, kept element-at-a-time).
        eng.parallelFor(n, [&](ThreadContext &t, std::uint64_t v) {
            NodeId label = comp.get(t, v);
            while (label !=
                   comp.get(t, static_cast<std::uint64_t>(label))) {
                label = comp.get(t, static_cast<std::uint64_t>(label));
            }
            comp.set(t, v, label);
        });
    }

    out.comp.assign(comp.host(), comp.host() + n);
    std::unordered_set<NodeId> distinct(out.comp.begin(), out.comp.end());
    out.numComponents = static_cast<std::int64_t>(distinct.size());

    heap.free(t0, comp);
    return out;
}

std::vector<NodeId>
hostCcLabels(const CsrGraph &g)
{
    const auto n = static_cast<std::size_t>(g.numNodes());
    std::vector<NodeId> label(n, -1);
    for (std::size_t s = 0; s < n; ++s) {
        if (label[s] != -1)
            continue;
        // Flood fill with the smallest vertex id as the label.
        label[s] = static_cast<NodeId>(s);
        std::deque<NodeId> queue{static_cast<NodeId>(s)};
        while (!queue.empty()) {
            const NodeId u = queue.front();
            queue.pop_front();
            for (const NodeId v : g.neighbors(u)) {
                if (label[static_cast<std::size_t>(v)] == -1) {
                    label[static_cast<std::size_t>(v)] =
                        static_cast<NodeId>(s);
                    queue.push_back(v);
                }
            }
        }
    }
    return label;
}

}  // namespace memtier

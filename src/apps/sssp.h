/**
 * @file
 * Single-source shortest paths (frontier-based label-correcting
 * Bellman-Ford, a simplified form of GAPBS's delta-stepping) on
 * weighted graphs in simulated tiered memory. An extension workload
 * beyond the paper's three kernels.
 */

#ifndef MEMTIER_APPS_SSSP_H_
#define MEMTIER_APPS_SSSP_H_

#include <cstdint>
#include <vector>

#include "bigraph/segmented_csr.h"
#include "runtime/sim_heap.h"

namespace memtier {

/** Host-side result of one SSSP run. */
struct SsspOutput
{
    std::vector<std::int64_t> dist;  ///< Distance per vertex, -1 if
                                     ///< unreachable.
    int rounds = 0;                  ///< Relaxation rounds executed.
};

/**
 * Run SSSP from @p source. The graph must have weights loaded
 * (CsrGraph::generateWeights before SimCsrGraph::load).
 */
SsspOutput runSssp(Engine &engine, SimHeap &heap,
                   const SegmentedCsrView &g, NodeId source);

/** Untimed host reference (Dijkstra). */
std::vector<std::int64_t> hostSsspDistances(const CsrGraph &g,
                                            NodeId source);

}  // namespace memtier

#endif  // MEMTIER_APPS_SSSP_H_

/**
 * @file
 * PageRank (pull-based power iteration, GAPBS "pr" kernel). Not part of
 * the paper's three workloads; included as an extension workload for the
 * harness and the ablation benches.
 */

#ifndef MEMTIER_APPS_PAGERANK_H_
#define MEMTIER_APPS_PAGERANK_H_

#include <cstdint>
#include <vector>

#include "bigraph/segmented_csr.h"
#include "runtime/sim_heap.h"

namespace memtier {

/** Host-side result of a PageRank run. */
struct PageRankOutput
{
    std::vector<double> rank;  ///< Final rank per vertex.
    int iterations = 0;
};

/**
 * Run @p iterations of pull-based PageRank with damping @p damping.
 */
PageRankOutput runPageRank(Engine &engine, SimHeap &heap,
                           const SegmentedCsrView &g, int iterations,
                           double damping = 0.85);

/** Untimed host reference. */
std::vector<double> hostPageRank(const CsrGraph &g, int iterations,
                                 double damping = 0.85);

}  // namespace memtier

#endif  // MEMTIER_APPS_PAGERANK_H_

/**
 * @file
 * The object-level planner (the paper's primary contribution,
 * Section 7): rank objects by external accesses per byte, fill DRAM
 * greedily from the top, send the rest entirely to NVM; the spill
 * variant lets the first non-fitting object straddle the boundary to
 * use leftover DRAM capacity (the starred cc workloads of Figure 11).
 */

#ifndef MEMTIER_CORE_OBJECT_PLANNER_H_
#define MEMTIER_CORE_OBJECT_PLANNER_H_

#include <cstdint>
#include <vector>

#include "core/placement_plan.h"
#include "profile/analysis.h"

namespace memtier {

/** Planner inputs. */
struct PlannerConfig
{
    /** DRAM bytes the plan may consume. Callers usually derive this
     *  from the tier capacity minus a kernel/page-cache reserve. */
    std::uint64_t dramBudgetBytes = 0;

    /** Allow one object to spill across the DRAM/NVM boundary. */
    bool allowSpill = false;

    /** Sites with fewer profiled samples than this are left to the
     *  kernel default (too little signal to pin). */
    std::uint64_t minSamples = 1;
};

/** Decision the planner took for one site (for reports and tests). */
struct PlannedSite
{
    SiteProfile profile;
    MemPolicy policy;
};

/** Full planner output. */
struct PlannerResult
{
    PlacementPlan plan;
    std::vector<PlannedSite> decisions;  ///< In ranking order.
    std::uint64_t dramBytesPlanned = 0;
    bool spilled = false;
};

/**
 * Build a static placement plan from profiled site statistics.
 *
 * @param profiles per-site profile, sorted by descending score (as
 *        siteProfiles() returns).
 * @param config planner inputs.
 */
PlannerResult buildPlan(const std::vector<SiteProfile> &profiles,
                        const PlannerConfig &config);

/**
 * Convenience: the DRAM budget for a tier of @p dram_capacity_bytes,
 * leaving @p reserve_frac for the kernel, watermarks and page cache.
 */
std::uint64_t dramBudget(std::uint64_t dram_capacity_bytes,
                         double reserve_frac = 0.12);

}  // namespace memtier

#endif  // MEMTIER_CORE_OBJECT_PLANNER_H_

/**
 * @file
 * PlacementPlan: the static object-to-tier mapping the paper proposes
 * (Section 7). Keys are allocation sites ("call stacks"): every
 * allocation from a planned site is bound before first touch and stays
 * on its tier for the rest of the run -- no promotions or demotions.
 */

#ifndef MEMTIER_CORE_PLACEMENT_PLAN_H_
#define MEMTIER_CORE_PLACEMENT_PLAN_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "os/mem_policy.h"
#include "runtime/placement_advisor.h"

namespace memtier {

/** Site -> policy mapping applied at allocation time. */
class PlacementPlan : public PlacementAdvisor
{
  public:
    /** Bind every allocation from @p site with @p policy. */
    void bindSite(const std::string &site, const MemPolicy &policy);

    /** PlacementAdvisor: look up the site's policy. */
    std::optional<MemPolicy>
    policyFor(const std::string &site, std::uint64_t bytes) override;

    /** Const lookup of the policy @ref policyFor would return. */
    std::optional<MemPolicy> lookup(const std::string &site) const;

    /** All planned sites. */
    const std::map<std::string, MemPolicy> &entries() const
    {
        return plan;
    }

    /** Number of planned sites. */
    std::size_t size() const { return plan.size(); }

    /** Plan binding every allocation to @p node (all-DRAM / all-NVM). */
    static PlacementPlan bindAll(MemNode node);

  private:
    std::map<std::string, MemPolicy> plan;
    std::optional<MemPolicy> defaultPolicy;
};

}  // namespace memtier

#endif  // MEMTIER_CORE_PLACEMENT_PLAN_H_

#include "core/placement_plan.h"

namespace memtier {

void
PlacementPlan::bindSite(const std::string &site, const MemPolicy &policy)
{
    plan[site] = policy;
}

std::optional<MemPolicy>
PlacementPlan::policyFor(const std::string &site, std::uint64_t bytes)
{
    (void)bytes;
    return lookup(site);
}

std::optional<MemPolicy>
PlacementPlan::lookup(const std::string &site) const
{
    auto it = plan.find(site);
    if (it != plan.end())
        return it->second;
    return defaultPolicy;
}

PlacementPlan
PlacementPlan::bindAll(MemNode node)
{
    PlacementPlan p;
    p.defaultPolicy = MemPolicy::bind(node);
    return p;
}

}  // namespace memtier

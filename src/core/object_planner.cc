#include "core/object_planner.h"

#include "base/logging.h"

namespace memtier {

PlannerResult
buildPlan(const std::vector<SiteProfile> &profiles,
          const PlannerConfig &config)
{
    PlannerResult out;
    std::uint64_t remaining = config.dramBudgetBytes;

    for (const SiteProfile &p : profiles) {
        PlannedSite decision;
        decision.profile = p;

        if (p.externalSamples < config.minSamples ||
            p.peakLiveBytes == 0) {
            // Cold or empty site: whole object to NVM (it would only
            // displace hotter data from DRAM).
            decision.policy = MemPolicy::bind(MemNode::NVM);
        } else if (p.peakLiveBytes <= remaining) {
            decision.policy = MemPolicy::bind(MemNode::DRAM);
            remaining -= p.peakLiveBytes;
            out.dramBytesPlanned += p.peakLiveBytes;
        } else if (config.allowSpill && !out.spilled &&
                   remaining >= kPageSize) {
            // Spill variant: split this one object at the remaining
            // DRAM capacity; everything after it goes to NVM.
            decision.policy =
                MemPolicy::split(remaining / kPageSize);
            out.dramBytesPlanned += remaining;
            remaining = 0;
            out.spilled = true;
        } else {
            decision.policy = MemPolicy::bind(MemNode::NVM);
        }

        out.plan.bindSite(p.site, decision.policy);
        out.decisions.push_back(std::move(decision));
    }
    return out;
}

std::uint64_t
dramBudget(std::uint64_t dram_capacity_bytes, double reserve_frac)
{
    MEMTIER_ASSERT(reserve_frac >= 0.0 && reserve_frac < 1.0,
                   "reserve fraction out of range");
    return static_cast<std::uint64_t>(
        static_cast<double>(dram_capacity_bytes) * (1.0 - reserve_frac));
}

}  // namespace memtier

/**
 * @file
 * Dynamic object-level tiering -- the natural online extension of the
 * paper's static proposal (its conclusion suggests moving from offline
 * profiling to runtime object management). Instead of a one-shot plan,
 * this policy watches external accesses per live object, periodically
 * re-ranks objects by accesses-per-byte over a decaying window, and
 * migrates whole objects between tiers under a per-interval budget.
 *
 * It replaces the AutoNUMA scanner (run with autonumaEnabled=false,
 * tieringKernel=true) while reusing the kernel's reclaim/migration
 * machinery and counters.
 */

#ifndef MEMTIER_CORE_DYNAMIC_TIERING_H_
#define MEMTIER_CORE_DYNAMIC_TIERING_H_

#include <cstdint>
#include <unordered_map>

#include "profile/mmap_tracker.h"
#include "sim/engine.h"

namespace memtier {

/** Tunables of the dynamic object policy. */
struct DynamicTieringParams
{
    /** Rebalance interval. */
    Cycles interval = secondsToCycles(0.02);

    /** Pages migrated per rebalance at most. */
    std::uint32_t migrationBudgetPages = 1024;

    /** DRAM fraction reserved for kernel/page cache. */
    double dramReserveFrac = 0.12;

    /** Exponential decay applied to window counts each rebalance. */
    double decay = 0.5;
};

/** Observable statistics of the dynamic policy. */
struct DynamicTieringStats
{
    std::uint64_t rebalances = 0;
    std::uint64_t pagesMovedUp = 0;    ///< Toward DRAM.
    std::uint64_t pagesMovedDown = 0;  ///< Toward NVM.
};

/** The online object-level tiering policy. */
class DynamicObjectTiering : public AccessObserver
{
  public:
    /**
     * @param engine machine to manage.
     * @param tracker live allocation records (must outlive this).
     * @param params tunables.
     */
    DynamicObjectTiering(Engine &engine, const MmapTracker &tracker,
                         const DynamicTieringParams &params =
                             DynamicTieringParams{});

    /**
     * Attach to the engine: registers as an access observer and as a
     * periodic service. Call once, before the workload runs.
     */
    void install();

    /** AccessObserver: count external accesses per object. */
    void onAccess(const AccessRecord &record) override;

    /** Policy statistics. */
    const DynamicTieringStats &stats() const { return stat; }

  private:
    void rebalance(Cycles now);

    Engine &eng;
    const MmapTracker &tracker;
    DynamicTieringParams cfg;
    DynamicTieringStats stat;
    std::unordered_map<ObjectId, double> windowCounts;
};

}  // namespace memtier

#endif  // MEMTIER_CORE_DYNAMIC_TIERING_H_

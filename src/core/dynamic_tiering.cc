#include "core/dynamic_tiering.h"

#include <algorithm>
#include <vector>

namespace memtier {

DynamicObjectTiering::DynamicObjectTiering(
    Engine &engine, const MmapTracker &tracker,
    const DynamicTieringParams &params)
    : eng(engine), tracker(tracker), cfg(params)
{
}

void
DynamicObjectTiering::install()
{
    eng.addObserver(this);
    eng.addPeriodicService(cfg.interval,
                           [this](Cycles now) { rebalance(now); });
}

void
DynamicObjectTiering::onAccess(const AccessRecord &record)
{
    if (!isExternalLevel(record.level))
        return;
    const ObjectId obj = tracker.objectAt(record.vaddr, record.time);
    if (obj == kNoObject)
        return;
    windowCounts[obj] += 1.0;
}

void
DynamicObjectTiering::rebalance(Cycles now)
{
    ++stat.rebalances;

    // Rank live objects by windowed accesses per byte (the static
    // planner's score, computed online).
    struct Ranked
    {
        const AllocationRecord *rec;
        double score;
    };
    std::vector<Ranked> ranked;
    for (const AllocationRecord &rec : tracker.records()) {
        if (!rec.live() || rec.bytes == 0)
            continue;
        auto it = windowCounts.find(rec.object);
        const double count =
            it == windowCounts.end() ? 0.0 : it->second;
        ranked.push_back({&rec, count / static_cast<double>(rec.bytes)});
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const Ranked &a, const Ranked &b) {
                  if (a.score != b.score)
                      return a.score > b.score;
                  return a.rec->object < b.rec->object;
              });

    // Greedy DRAM budget fill, then migrate mismatched objects under
    // the per-interval page budget -- demotions first so promotions
    // have room to land.
    const auto budget_bytes = static_cast<std::uint64_t>(
        static_cast<double>(
            eng.physicalMemory().dram().params().capacityBytes) *
        (1.0 - cfg.dramReserveFrac));
    std::uint64_t planned = 0;
    std::vector<const AllocationRecord *> want_dram;
    std::vector<const AllocationRecord *> want_nvm;
    for (const Ranked &r : ranked) {
        if (r.score > 0.0 && planned + r.rec->bytes <= budget_bytes) {
            planned += r.rec->bytes;
            want_dram.push_back(r.rec);
        } else {
            want_nvm.push_back(r.rec);
        }
    }

    std::uint32_t budget = cfg.migrationBudgetPages;
    Kernel &kern = eng.kernel();
    for (const AllocationRecord *rec : want_nvm) {
        if (budget == 0)
            break;
        const std::uint32_t moved =
            kern.migratePages(rec->start, rec->start + rec->bytes,
                              MemNode::NVM, budget, now);
        stat.pagesMovedDown += moved;
        budget -= moved;
    }
    for (const AllocationRecord *rec : want_dram) {
        if (budget == 0)
            break;
        const std::uint32_t moved =
            kern.migratePages(rec->start, rec->start + rec->bytes,
                              MemNode::DRAM, budget, now);
        stat.pagesMovedUp += moved;
        budget -= moved;
    }

    // Decay the window so the ranking tracks phase changes.
    for (auto &[obj, count] : windowCounts)
        count *= cfg.decay;
}

}  // namespace memtier

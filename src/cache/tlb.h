/**
 * @file
 * Two-level data TLB (L1 dTLB + STLB) per logical thread.
 *
 * The paper's Table 3 splits external access cost by TLB hit vs. TLB miss;
 * we define "TLB miss" as an access that missed both levels and required a
 * page walk, matching the perf-mem dtlb_miss flag.
 */

#ifndef MEMTIER_CACHE_TLB_H_
#define MEMTIER_CACHE_TLB_H_

#include <cstdint>
#include <vector>

#include "base/types.h"

namespace memtier {

/** Outcome of a TLB lookup. */
enum class TlbOutcome : std::uint8_t {
    L1Hit = 0,  ///< Hit in the first-level dTLB (no extra cost).
    StlbHit,    ///< Missed L1, hit the unified second level (small cost).
    Miss,       ///< Missed both levels; page walk required.
};

/** Configuration of the two TLB levels. */
struct TlbParams
{
    unsigned l1Entries = 64;     ///< Skylake-like 64-entry 4-way dTLB.
    unsigned l1Ways = 4;
    unsigned stlbEntries = 1536; ///< 1536-entry 12-way unified STLB.
    unsigned stlbWays = 12;
    Cycles stlbHitCycles = 9;    ///< Added when L1 misses but STLB hits.
};

/** A two-level, set-associative, LRU TLB over 4 KiB pages. */
class Tlb
{
  public:
    /** @param params geometry and timing. */
    explicit Tlb(const TlbParams &params = TlbParams{});

    /**
     * Translate page @p vpn; fills both levels on miss.
     * @return where the translation was found.
     */
    TlbOutcome lookup(PageNum vpn);

    /** Drop any cached translation of @p vpn (PTE changed). */
    void invalidate(PageNum vpn);

    /** Flush both levels. */
    void flushAll();

    /** Extra cycles charged for an STLB hit. */
    Cycles stlbHitCycles() const { return cfg.stlbHitCycles; }

    std::uint64_t l1Hits() const { return l1_hits; }
    std::uint64_t stlbHits() const { return stlb_hits; }
    std::uint64_t misses() const { return miss_count; }

  private:
    struct Entry
    {
        PageNum vpn = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    struct Level
    {
        std::vector<Entry> entries;
        std::uint64_t sets = 0;
        unsigned ways = 0;

        void init(unsigned total, unsigned ways);
        bool lookup(PageNum vpn, std::uint64_t tick);
        void insert(PageNum vpn, std::uint64_t tick);
        void invalidate(PageNum vpn);
        void flush();
    };

    TlbParams cfg;
    Level l1;
    Level stlb;
    std::uint64_t tick = 0;
    std::uint64_t l1_hits = 0;
    std::uint64_t stlb_hits = 0;
    std::uint64_t miss_count = 0;
};

}  // namespace memtier

#endif  // MEMTIER_CACHE_TLB_H_

/**
 * @file
 * Two-level data TLB (L1 dTLB + STLB) per logical thread.
 *
 * The paper's Table 3 splits external access cost by TLB hit vs. TLB miss;
 * we define "TLB miss" as an access that missed both levels and required a
 * page walk, matching the perf-mem dtlb_miss flag.
 */

#ifndef MEMTIER_CACHE_TLB_H_
#define MEMTIER_CACHE_TLB_H_

#include <cstdint>
#include <vector>

#include "base/types.h"

namespace memtier {

/** Outcome of a TLB lookup. */
enum class TlbOutcome : std::uint8_t {
    L1Hit = 0,  ///< Hit in the first-level dTLB (no extra cost).
    StlbHit,    ///< Missed L1, hit the unified second level (small cost).
    Miss,       ///< Missed both levels; page walk required.
};

/** Configuration of the two TLB levels. */
struct TlbParams
{
    unsigned l1Entries = 64;     ///< Skylake-like 64-entry 4-way dTLB.
    unsigned l1Ways = 4;
    unsigned stlbEntries = 1536; ///< 1536-entry 12-way unified STLB.
    unsigned stlbWays = 12;
    Cycles stlbHitCycles = 9;    ///< Added when L1 misses but STLB hits.

    /**
     * Separate 2 MiB entry classes (Skylake keeps a 32-entry 4-way
     * dTLB array for 2M/4M pages; the STLB's 2 MiB class is sized like
     * the unified array). One huge entry covers 512 base pages, so TLB
     * reach grows by orders of magnitude when THP is on. The arrays
     * exist regardless but see traffic only for PMD-mapped ranges.
     */
    unsigned l1HugeEntries = 32;
    unsigned l1HugeWays = 4;
    unsigned stlbHugeEntries = 1536;
    unsigned stlbHugeWays = 12;
};

/**
 * A two-level, set-associative, LRU TLB with separate 4 KiB and 2 MiB
 * entry classes per level. The 4 KiB path (@ref lookup) never touches
 * the huge arrays, keeping THP-off runs bit-identical.
 */
class Tlb
{
  public:
    /** @param params geometry and timing. */
    explicit Tlb(const TlbParams &params = TlbParams{});

    /**
     * Translate page @p vpn; fills both levels on miss.
     * @return where the translation was found.
     */
    TlbOutcome lookup(PageNum vpn);

    /**
     * Translate the PMD-mapped range at @p base_vpn through the 2 MiB
     * entry classes; fills both huge levels on miss.
     */
    TlbOutcome lookupHuge(PageNum base_vpn);

    /** Install the 2 MiB translation at @p base_vpn in both levels
     *  (used when a fault upgraded a range under a 4 KiB lookup). */
    void insertHuge(PageNum base_vpn);

    /**
     * Batch accounting for @p count back-to-back lookups of @p vpn that
     * are guaranteed L1 hits (the entry was just filled or hit and no
     * shootdown intervened). Equivalent to @p count lookup() calls:
     * the tick advances by @p count, the entry's recency moves to the
     * final tick, and the L1 hit counter grows by @p count -- one way
     * scan instead of @p count.
     */
    void repeatHits(PageNum vpn, std::uint64_t count);

    /** Batch accounting for guaranteed 2 MiB-class L1 hits. */
    void repeatHitsHuge(PageNum base_vpn, std::uint64_t count);

    /** Drop any cached translation of @p vpn (PTE changed). */
    void invalidate(PageNum vpn);

    /** Drop the cached 2 MiB translation at @p base_vpn (PMD changed). */
    void invalidateHuge(PageNum base_vpn);

    /** Flush all levels and entry classes. */
    void flushAll();

    /** Extra cycles charged for an STLB hit. */
    Cycles stlbHitCycles() const { return cfg.stlbHitCycles; }

    std::uint64_t l1Hits() const { return l1_hits; }
    std::uint64_t stlbHits() const { return stlb_hits; }
    std::uint64_t misses() const { return miss_count; }

    /** Hits/misses of the 2 MiB entry classes (kept separate so the
     *  4 KiB counters stay comparable across THP on/off runs). */
    std::uint64_t hugeL1Hits() const { return huge_l1_hits; }
    std::uint64_t hugeStlbHits() const { return huge_stlb_hits; }
    std::uint64_t hugeMisses() const { return huge_miss_count; }

  private:
    struct Entry
    {
        PageNum vpn = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    struct Level
    {
        std::vector<Entry> entries;
        std::uint64_t sets = 0;
        unsigned ways = 0;

        void init(unsigned total, unsigned ways);
        bool lookup(PageNum vpn, std::uint64_t tick);
        void insert(PageNum vpn, std::uint64_t tick);
        void invalidate(PageNum vpn);
        void flush();
    };

    TlbParams cfg;
    Level l1;
    Level stlb;
    Level l1Huge;
    Level stlbHuge;
    std::uint64_t tick = 0;
    std::uint64_t l1_hits = 0;
    std::uint64_t stlb_hits = 0;
    std::uint64_t miss_count = 0;
    std::uint64_t huge_l1_hits = 0;
    std::uint64_t huge_stlb_hits = 0;
    std::uint64_t huge_miss_count = 0;
};

}  // namespace memtier

#endif  // MEMTIER_CACHE_TLB_H_

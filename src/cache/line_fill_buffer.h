/**
 * @file
 * Line-fill buffer (miss status holding registers) model.
 *
 * perf-mem attributes a load to the LFB level when it hits a line whose
 * miss is already in flight. We model a small per-thread buffer of
 * outstanding fills with their completion times.
 */

#ifndef MEMTIER_CACHE_LINE_FILL_BUFFER_H_
#define MEMTIER_CACHE_LINE_FILL_BUFFER_H_

#include <array>
#include <cstdint>
#include <optional>

#include "base/types.h"

namespace memtier {

/** Tracks up to kEntries outstanding cache-line fills. */
class LineFillBuffer
{
  public:
    /** Skylake has 10-12 fill buffers per core. */
    static constexpr std::size_t kEntries = 10;

    /**
     * Check whether @p line has a fill in flight at time @p now.
     * @return remaining cycles until the fill completes, when in flight.
     */
    std::optional<Cycles> inFlight(Addr line, Cycles now) const;

    /**
     * Record a new outstanding fill of @p line completing at @p ready,
     * replacing the oldest entry.
     */
    void add(Addr line, Cycles ready);

    /**
     * True when @p line's fill completed within @p window cycles before
     * @p now (the access would have overlapped the fill on an
     * out-of-order core, so PEBS attributes it to the LFB).
     */
    bool recentlyFilled(Addr line, Cycles now, Cycles window) const;

    /** Number of LFB hits observed. */
    std::uint64_t hits() const { return hit_count; }

    /** Count a hit (called by the access path). */
    void countHit() { ++hit_count; }

  private:
    struct Entry
    {
        Addr line = 0;
        Cycles ready = 0;
        bool valid = false;
    };

    std::array<Entry, kEntries> entries{};
    std::size_t nextSlot = 0;
    std::uint64_t hit_count = 0;
};

}  // namespace memtier

#endif  // MEMTIER_CACHE_LINE_FILL_BUFFER_H_

/**
 * @file
 * Line-fill buffer (miss status holding registers) model.
 *
 * perf-mem attributes a load to the LFB level when it hits a line whose
 * miss is already in flight. We model a small per-thread buffer of
 * outstanding fills with their completion times.
 */

#ifndef MEMTIER_CACHE_LINE_FILL_BUFFER_H_
#define MEMTIER_CACHE_LINE_FILL_BUFFER_H_

#include <array>
#include <cstdint>
#include <optional>

#include "base/types.h"

namespace memtier {

/** Tracks up to kEntries outstanding cache-line fills. */
class LineFillBuffer
{
  public:
    /** Skylake has 10-12 fill buffers per core. */
    static constexpr std::size_t kEntries = 10;

    /**
     * Check whether @p line has a fill in flight at time @p now.
     * @return remaining cycles until the fill completes, when in flight.
     */
    std::optional<Cycles> inFlight(Addr line, Cycles now) const;

    /**
     * Record a new outstanding fill of @p line completing at @p ready,
     * replacing the oldest entry.
     */
    void add(Addr line, Cycles ready);

    /**
     * True when @p line's fill completed within @p window cycles before
     * @p now (the access would have overlapped the fill on an
     * out-of-order core, so PEBS attributes it to the LFB).
     */
    bool recentlyFilled(Addr line, Cycles now, Cycles window) const;

    /**
     * Batch-path fast reject: true when no entry can satisfy inFlight
     * or recentlyFilled at @p now with residency @p window, because
     * every recorded fill completed more than @p window cycles ago.
     * One compare against the running max-ready watermark instead of a
     * buffer scan; conservative (quiet implies both scans miss), so
     * using it cannot change attribution.
     */
    bool
    quietAt(Cycles now, Cycles window) const
    {
        return now >= max_ready + window;
    }

    /**
     * Collect, in buffer order, the ready times of entries tracking
     * @p line. The batched tail loop scans once per same-line run and
     * then evaluates inFlight/recentlyFilled arithmetically against the
     * collected times -- valid because tails never add() entries, so
     * the buffer cannot change mid-run.
     * @return number of matching entries written to @p out.
     */
    std::size_t
    matchesInto(Addr line, Cycles (&out)[kEntries]) const
    {
        std::size_t n = 0;
        for (const auto &e : entries) {
            if (e.valid && e.line == line)
                out[n++] = e.ready;
        }
        return n;
    }

    /** Number of LFB hits observed. */
    std::uint64_t hits() const { return hit_count; }

    /** Count a hit (called by the access path). */
    void countHit() { ++hit_count; }

    /** Count @p n hits at once (batched access path). */
    void countHits(std::uint64_t n) { hit_count += n; }

  private:
    struct Entry
    {
        Addr line = 0;
        Cycles ready = 0;
        bool valid = false;
    };

    std::array<Entry, kEntries> entries{};
    std::size_t nextSlot = 0;
    std::uint64_t hit_count = 0;
    Cycles max_ready = 0;  ///< Largest ready time ever recorded.
};

}  // namespace memtier

#endif  // MEMTIER_CACHE_LINE_FILL_BUFFER_H_

#include "cache/set_assoc_cache.h"

#include <bit>

#include "base/logging.h"

namespace memtier {

SetAssocCache::SetAssocCache(std::string name, std::uint64_t size_bytes,
                             unsigned ways_)
    : label(std::move(name)), assoc(ways_)
{
    MEMTIER_ASSERT(assoc > 0, "cache needs at least one way");
    MEMTIER_ASSERT(size_bytes % (assoc * kLineSize) == 0,
                   "cache size must be a multiple of ways * line size");
    num_sets = size_bytes / (assoc * kLineSize);
    MEMTIER_ASSERT(std::has_single_bit(num_sets),
                   "number of sets must be a power of two");
    ways.resize(num_sets * assoc);
}

bool
SetAssocCache::access(Addr line, bool is_write)
{
    const std::size_t base = setIndex(line) * assoc;
    ++tick;
    for (unsigned w = 0; w < assoc; ++w) {
        Way &way = ways[base + w];
        if (way.matches(line)) {
            way.lastUse = tick;
            if (is_write)
                way.meta |= Way::kDirty;
            ++hit_count;
            return true;
        }
    }
    ++miss_count;
    return false;
}

CacheEviction
SetAssocCache::insert(Addr line, bool dirty)
{
    const std::size_t base = setIndex(line) * assoc;
    ++tick;

    // Prefer an invalid way; otherwise evict true-LRU.
    std::size_t victim = base;
    for (unsigned w = 0; w < assoc; ++w) {
        Way &way = ways[base + w];
        if (!way.valid()) {
            victim = base + w;
            break;
        }
        if (way.lastUse < ways[victim].lastUse)
            victim = base + w;
    }

    CacheEviction evicted;
    Way &slot = ways[victim];
    if (slot.valid()) {
        evicted.valid = true;
        evicted.line = slot.tag();
        evicted.dirty = slot.dirty();
        if (slot.dirty())
            ++writeback_count;
    }
    slot.meta = Way::key(line) | (dirty ? Way::kDirty : 0);
    slot.lastUse = tick;
    return evicted;
}

void
SetAssocCache::accessRepeats(Addr line, std::uint64_t count,
                             bool any_write)
{
    const std::size_t base = setIndex(line) * assoc;
    tick += count;
    for (unsigned w = 0; w < assoc; ++w) {
        Way &way = ways[base + w];
        if (way.matches(line)) {
            way.lastUse = tick;
            if (any_write)
                way.meta |= Way::kDirty;
            hit_count += count;
            return;
        }
    }
    MEMTIER_ASSERT(false, "repeat accounting for a non-resident line");
}

void
SetAssocCache::invalidate(Addr line)
{
    const std::size_t base = setIndex(line) * assoc;
    for (unsigned w = 0; w < assoc; ++w) {
        Way &way = ways[base + w];
        if (way.matches(line)) {
            way.meta = 0;
            return;
        }
    }
}

void
SetAssocCache::clear()
{
    for (auto &way : ways)
        way = Way{};
}

bool
SetAssocCache::contains(Addr line) const
{
    const std::size_t base = setIndex(line) * assoc;
    for (unsigned w = 0; w < assoc; ++w) {
        if (ways[base + w].matches(line))
            return true;
    }
    return false;
}

}  // namespace memtier

/**
 * @file
 * Generic set-associative, write-back, write-allocate cache with LRU
 * replacement, used for L1/L2 (per logical thread) and the shared L3.
 *
 * The simulator indexes caches by virtual line address: graph objects are
 * large contiguous mmap regions so virtual and physical locality coincide,
 * and page migration between tiers does not move data relative to the
 * cache index in a way that matters for the paper's characterization.
 */

#ifndef MEMTIER_CACHE_SET_ASSOC_CACHE_H_
#define MEMTIER_CACHE_SET_ASSOC_CACHE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.h"

namespace memtier {

/** Information about a line displaced by an insert. */
struct CacheEviction
{
    bool valid = false;  ///< True when a line was displaced.
    Addr line = 0;       ///< Line index (addr >> kLineShift) displaced.
    bool dirty = false;  ///< True when the displaced line needs writeback.
};

/** A single cache level. */
class SetAssocCache
{
  public:
    /**
     * @param name level name for stats ("L1", "L2", "L3").
     * @param size_bytes total capacity (must be sets*ways*64).
     * @param ways associativity.
     */
    SetAssocCache(std::string name, std::uint64_t size_bytes, unsigned ways);

    /**
     * Look up @p line; updates LRU and the dirty bit on hit.
     * @param line line index (addr >> kLineShift).
     * @param is_write true for stores (sets the dirty bit on hit).
     * @return true on hit.
     */
    bool access(Addr line, bool is_write);

    /**
     * Insert @p line after a miss, evicting the LRU way if needed.
     * @param line line index to insert.
     * @param dirty initial dirty state (true for store-allocate).
     * @return the displaced line, if any.
     */
    CacheEviction insert(Addr line, bool dirty);

    /** Remove @p line if present (no writeback signalling). */
    void invalidate(Addr line);

    /** Drop all lines (e.g. between experiment phases). */
    void clear();

    /** True when @p line is currently resident (no LRU update). */
    bool contains(Addr line) const;

    std::uint64_t hits() const { return hit_count; }
    std::uint64_t misses() const { return miss_count; }
    std::uint64_t writebacks() const { return writeback_count; }
    const std::string &name() const { return label; }
    std::uint64_t sizeBytes() const { return num_sets * assoc * kLineSize; }

  private:
    struct Way
    {
        Addr tag = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
        bool dirty = false;
    };

    std::size_t setIndex(Addr line) const { return line & (num_sets - 1); }

    std::string label;
    std::uint64_t num_sets;
    unsigned assoc;
    std::vector<Way> ways;  ///< num_sets * assoc, set-major.
    std::uint64_t tick = 0;
    std::uint64_t hit_count = 0;
    std::uint64_t miss_count = 0;
    std::uint64_t writeback_count = 0;
};

}  // namespace memtier

#endif  // MEMTIER_CACHE_SET_ASSOC_CACHE_H_

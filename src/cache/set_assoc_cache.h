/**
 * @file
 * Generic set-associative, write-back, write-allocate cache with LRU
 * replacement, used for L1/L2 (per logical thread) and the shared L3.
 *
 * The simulator indexes caches by virtual line address: graph objects are
 * large contiguous mmap regions so virtual and physical locality coincide,
 * and page migration between tiers does not move data relative to the
 * cache index in a way that matters for the paper's characterization.
 */

#ifndef MEMTIER_CACHE_SET_ASSOC_CACHE_H_
#define MEMTIER_CACHE_SET_ASSOC_CACHE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.h"

namespace memtier {

/** Information about a line displaced by an insert. */
struct CacheEviction
{
    bool valid = false;  ///< True when a line was displaced.
    Addr line = 0;       ///< Line index (addr >> kLineShift) displaced.
    bool dirty = false;  ///< True when the displaced line needs writeback.
};

/** A single cache level. */
class SetAssocCache
{
  public:
    /**
     * @param name level name for stats ("L1", "L2", "L3").
     * @param size_bytes total capacity (must be sets*ways*64).
     * @param ways associativity.
     */
    SetAssocCache(std::string name, std::uint64_t size_bytes, unsigned ways);

    /**
     * Look up @p line; updates LRU and the dirty bit on hit.
     * @param line line index (addr >> kLineShift).
     * @param is_write true for stores (sets the dirty bit on hit).
     * @return true on hit.
     */
    bool access(Addr line, bool is_write);

    /**
     * Insert @p line after a miss, evicting the LRU way if needed.
     * @param line line index to insert.
     * @param dirty initial dirty state (true for store-allocate).
     * @return the displaced line, if any.
     */
    CacheEviction insert(Addr line, bool dirty);

    /**
     * Batch accounting for @p count back-to-back accesses of @p line
     * that are guaranteed hits (the line was just filled or hit and
     * nothing evicted it in between). Equivalent to @p count access()
     * calls: the tick advances by @p count, the way's recency moves to
     * the final tick, the dirty bit absorbs @p any_write, and the hit
     * counter grows by @p count -- one way scan instead of @p count.
     */
    void accessRepeats(Addr line, std::uint64_t count, bool any_write);

    /** Remove @p line if present (no writeback signalling). */
    void invalidate(Addr line);

    /** Drop all lines (e.g. between experiment phases). */
    void clear();

    /** True when @p line is currently resident (no LRU update). */
    bool contains(Addr line) const;

    std::uint64_t hits() const { return hit_count; }
    std::uint64_t misses() const { return miss_count; }
    std::uint64_t writebacks() const { return writeback_count; }
    const std::string &name() const { return label; }
    std::uint64_t sizeBytes() const { return num_sets * assoc * kLineSize; }

  private:
    /**
     * One way, packed to 16 bytes so a set scan touches at most two
     * host cache lines: the tag shares a word with the valid and dirty
     * bits (line indices are at most 58 bits wide, so the shift loses
     * nothing).
     */
    struct Way
    {
        static constexpr std::uint64_t kValid = 1;
        static constexpr std::uint64_t kDirty = 2;

        std::uint64_t meta = 0;  ///< (tag << 2) | dirty << 1 | valid.
        std::uint64_t lastUse = 0;

        static std::uint64_t key(Addr line) { return (line << 2) | kValid; }
        bool valid() const { return meta & kValid; }
        bool dirty() const { return meta & kDirty; }
        Addr tag() const { return meta >> 2; }
        /** True when valid with tag @p line, regardless of dirtiness. */
        bool matches(Addr line) const
        {
            return (meta & ~kDirty) == key(line);
        }
    };

    std::size_t setIndex(Addr line) const { return line & (num_sets - 1); }

    std::string label;
    std::uint64_t num_sets;
    unsigned assoc;
    std::vector<Way> ways;  ///< num_sets * assoc, set-major.
    std::uint64_t tick = 0;
    std::uint64_t hit_count = 0;
    std::uint64_t miss_count = 0;
    std::uint64_t writeback_count = 0;
};

}  // namespace memtier

#endif  // MEMTIER_CACHE_SET_ASSOC_CACHE_H_

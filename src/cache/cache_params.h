/**
 * @file
 * Geometry and latency configuration of the cache hierarchy.
 *
 * Defaults are scaled: the paper's Xeon Gold 6240 has 32 KiB L1 / 1 MiB L2
 * per core and a 24.75 MiB shared L3 against a ~250 GB footprint. At the
 * simulator's ~64 MiB footprints we keep L1 at full size but shrink L2/L3
 * so the cache:footprint ratio, and therefore the fraction of samples
 * serviced outside the caches (the paper's 25-50% band), is preserved.
 */

#ifndef MEMTIER_CACHE_CACHE_PARAMS_H_
#define MEMTIER_CACHE_CACHE_PARAMS_H_

#include <cstdint>

#include "base/types.h"
#include "cache/tlb.h"

namespace memtier {

/** Cache hierarchy configuration (per-thread L1/L2, shared L3). */
struct CacheParams
{
    std::uint64_t l1Size = 16 * kKiB;
    unsigned l1Ways = 8;
    Cycles l1Latency = 4;

    std::uint64_t l2Size = 64 * kKiB;
    unsigned l2Ways = 8;
    Cycles l2Latency = 14;

    std::uint64_t l3Size = 128 * kKiB;
    unsigned l3Ways = 16;
    Cycles l3Latency = 42;

    /**
     * Cycles a completed fill stays attributable to the line-fill
     * buffer. PEBS tags loads that hit a just-filled/in-flight line as
     * LFB; an in-order model needs this residency window to reproduce
     * the overlap an out-of-order core would have.
     */
    Cycles lfbResidencyCycles = 300;

    /** Fixed cost of walking the page tables (cached walk). */
    Cycles pageWalkBaseCycles = 28;

    /**
     * Number of page-table references in a walk that miss the caches and
     * go to memory; charged at the DRAM random-load latency because page
     * tables live on the DRAM node.
     */
    unsigned pageWalkMemRefs = 2;

    /**
     * Memory references of a walk that ends at a PMD entry: the walk is
     * one level shorter, so one fewer reference leaves the caches.
     */
    unsigned pageWalkMemRefsHuge = 1;

    TlbParams tlb;
};

}  // namespace memtier

#endif  // MEMTIER_CACHE_CACHE_PARAMS_H_

#include "cache/line_fill_buffer.h"

namespace memtier {

std::optional<Cycles>
LineFillBuffer::inFlight(Addr line, Cycles now) const
{
    for (const auto &e : entries) {
        if (e.valid && e.line == line && now < e.ready)
            return e.ready - now;
    }
    return std::nullopt;
}

bool
LineFillBuffer::recentlyFilled(Addr line, Cycles now, Cycles window) const
{
    for (const auto &e : entries) {
        if (e.valid && e.line == line && now >= e.ready &&
            now < e.ready + window) {
            return true;
        }
    }
    return false;
}

void
LineFillBuffer::add(Addr line, Cycles ready)
{
    entries[nextSlot] = Entry{line, ready, true};
    nextSlot = (nextSlot + 1) % kEntries;
    if (ready > max_ready)
        max_ready = ready;
}

}  // namespace memtier

#include "cache/tlb.h"

#include <bit>

#include "base/logging.h"

namespace memtier {

void
Tlb::Level::init(unsigned total, unsigned ways_)
{
    MEMTIER_ASSERT(ways_ > 0 && total % ways_ == 0,
                   "TLB entries must divide evenly into ways");
    ways = ways_;
    sets = total / ways_;
    MEMTIER_ASSERT(std::has_single_bit(sets),
                   "TLB set count must be a power of two");
    entries.assign(total, Entry{});
}

bool
Tlb::Level::lookup(PageNum vpn, std::uint64_t tick)
{
    const std::size_t base = (vpn & (sets - 1)) * ways;
    for (unsigned w = 0; w < ways; ++w) {
        Entry &e = entries[base + w];
        if (e.valid && e.vpn == vpn) {
            e.lastUse = tick;
            return true;
        }
    }
    return false;
}

void
Tlb::Level::insert(PageNum vpn, std::uint64_t tick)
{
    const std::size_t base = (vpn & (sets - 1)) * ways;
    std::size_t victim = base;
    for (unsigned w = 0; w < ways; ++w) {
        Entry &e = entries[base + w];
        if (!e.valid) {
            victim = base + w;
            break;
        }
        if (e.lastUse < entries[victim].lastUse)
            victim = base + w;
    }
    entries[victim] = Entry{vpn, tick, true};
}

void
Tlb::Level::invalidate(PageNum vpn)
{
    const std::size_t base = (vpn & (sets - 1)) * ways;
    for (unsigned w = 0; w < ways; ++w) {
        Entry &e = entries[base + w];
        if (e.valid && e.vpn == vpn)
            e.valid = false;
    }
}

void
Tlb::Level::flush()
{
    for (auto &e : entries)
        e.valid = false;
}

Tlb::Tlb(const TlbParams &params) : cfg(params)
{
    l1.init(cfg.l1Entries, cfg.l1Ways);
    stlb.init(cfg.stlbEntries, cfg.stlbWays);
}

TlbOutcome
Tlb::lookup(PageNum vpn)
{
    ++tick;
    if (l1.lookup(vpn, tick)) {
        ++l1_hits;
        return TlbOutcome::L1Hit;
    }
    if (stlb.lookup(vpn, tick)) {
        ++stlb_hits;
        l1.insert(vpn, tick);
        return TlbOutcome::StlbHit;
    }
    ++miss_count;
    l1.insert(vpn, tick);
    stlb.insert(vpn, tick);
    return TlbOutcome::Miss;
}

void
Tlb::invalidate(PageNum vpn)
{
    l1.invalidate(vpn);
    stlb.invalidate(vpn);
}

void
Tlb::flushAll()
{
    l1.flush();
    stlb.flush();
}

}  // namespace memtier

#include "cache/tlb.h"

#include <bit>

#include "base/logging.h"

namespace memtier {

void
Tlb::Level::init(unsigned total, unsigned ways_)
{
    MEMTIER_ASSERT(ways_ > 0 && total % ways_ == 0,
                   "TLB entries must divide evenly into ways");
    ways = ways_;
    sets = total / ways_;
    MEMTIER_ASSERT(std::has_single_bit(sets),
                   "TLB set count must be a power of two");
    entries.assign(total, Entry{});
}

bool
Tlb::Level::lookup(PageNum vpn, std::uint64_t tick)
{
    const std::size_t base = (vpn & (sets - 1)) * ways;
    for (unsigned w = 0; w < ways; ++w) {
        Entry &e = entries[base + w];
        if (e.valid && e.vpn == vpn) {
            e.lastUse = tick;
            return true;
        }
    }
    return false;
}

void
Tlb::Level::insert(PageNum vpn, std::uint64_t tick)
{
    const std::size_t base = (vpn & (sets - 1)) * ways;
    std::size_t victim = base;
    for (unsigned w = 0; w < ways; ++w) {
        Entry &e = entries[base + w];
        if (!e.valid) {
            victim = base + w;
            break;
        }
        if (e.lastUse < entries[victim].lastUse)
            victim = base + w;
    }
    entries[victim] = Entry{vpn, tick, true};
}

void
Tlb::Level::invalidate(PageNum vpn)
{
    const std::size_t base = (vpn & (sets - 1)) * ways;
    for (unsigned w = 0; w < ways; ++w) {
        Entry &e = entries[base + w];
        if (e.valid && e.vpn == vpn)
            e.valid = false;
    }
}

void
Tlb::Level::flush()
{
    for (auto &e : entries)
        e.valid = false;
}

Tlb::Tlb(const TlbParams &params) : cfg(params)
{
    l1.init(cfg.l1Entries, cfg.l1Ways);
    stlb.init(cfg.stlbEntries, cfg.stlbWays);
    l1Huge.init(cfg.l1HugeEntries, cfg.l1HugeWays);
    stlbHuge.init(cfg.stlbHugeEntries, cfg.stlbHugeWays);
}

TlbOutcome
Tlb::lookup(PageNum vpn)
{
    ++tick;
    if (l1.lookup(vpn, tick)) {
        ++l1_hits;
        return TlbOutcome::L1Hit;
    }
    if (stlb.lookup(vpn, tick)) {
        ++stlb_hits;
        l1.insert(vpn, tick);
        return TlbOutcome::StlbHit;
    }
    ++miss_count;
    l1.insert(vpn, tick);
    stlb.insert(vpn, tick);
    return TlbOutcome::Miss;
}

TlbOutcome
Tlb::lookupHuge(PageNum base_vpn)
{
    // Key by huge-page number, not base vpn: a 2 MiB base has nine zero
    // low bits, which would otherwise alias every range onto set 0.
    const PageNum key = base_vpn >> kPagesPerHugeShift;
    ++tick;
    if (l1Huge.lookup(key, tick)) {
        ++huge_l1_hits;
        return TlbOutcome::L1Hit;
    }
    if (stlbHuge.lookup(key, tick)) {
        ++huge_stlb_hits;
        l1Huge.insert(key, tick);
        return TlbOutcome::StlbHit;
    }
    ++huge_miss_count;
    l1Huge.insert(key, tick);
    stlbHuge.insert(key, tick);
    return TlbOutcome::Miss;
}

void
Tlb::repeatHits(PageNum vpn, std::uint64_t count)
{
    tick += count;
    const bool found = l1.lookup(vpn, tick);
    MEMTIER_ASSERT(found, "TLB repeat accounting for a non-resident vpn");
    l1_hits += count;
}

void
Tlb::repeatHitsHuge(PageNum base_vpn, std::uint64_t count)
{
    const PageNum key = base_vpn >> kPagesPerHugeShift;
    tick += count;
    const bool found = l1Huge.lookup(key, tick);
    MEMTIER_ASSERT(found,
                   "TLB repeat accounting for a non-resident huge range");
    huge_l1_hits += count;
}

void
Tlb::insertHuge(PageNum base_vpn)
{
    const PageNum key = base_vpn >> kPagesPerHugeShift;
    ++tick;
    l1Huge.insert(key, tick);
    stlbHuge.insert(key, tick);
}

void
Tlb::invalidate(PageNum vpn)
{
    l1.invalidate(vpn);
    stlb.invalidate(vpn);
}

void
Tlb::invalidateHuge(PageNum base_vpn)
{
    const PageNum key = base_vpn >> kPagesPerHugeShift;
    l1Huge.invalidate(key);
    stlbHuge.invalidate(key);
}

void
Tlb::flushAll()
{
    l1.flush();
    stlb.flush();
    l1Huge.flush();
    stlbHuge.flush();
}

}  // namespace memtier

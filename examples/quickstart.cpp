/**
 * @file
 * Quickstart: build a simulated tiered-memory machine, allocate objects,
 * run a tiny BFS, and inspect what AutoNUMA did.
 *
 *   $ ./examples/quickstart
 *
 * Walks through the core public API in order: SystemConfig -> Engine ->
 * SimHeap/SimVector -> graph apps -> vmstat/numastat introspection.
 */

#include <cstdio>

#include "apps/bfs.h"
#include "graph/generators.h"
#include "graph/sim_graph.h"
#include "runtime/sim_heap.h"

using namespace memtier;

int
main()
{
    // 1. Describe the machine: a scaled version of the paper's testbed
    //    (Xeon Gold 6240, 18 threads, DRAM + Optane-as-NUMA-node).
    SystemConfig config;
    config.dram = makeDramParams(8 * kMiB);   // Fast tier.
    config.nvm = makeNvmParams(32 * kMiB);    // Slow tier, 4x larger.
    config.numThreads = 8;

    Engine engine(config);
    SimHeap heap(engine);
    ThreadContext &main_thread = engine.thread(0);

    // 2. Touch simulated memory directly: allocations are mmap-backed
    //    "objects", loads/stores are timed through TLB+caches+tiers.
    SimVector<std::int64_t> numbers =
        heap.alloc<std::int64_t>(main_thread, "quickstart.numbers", 1024);
    for (std::uint64_t i = 0; i < numbers.size(); ++i)
        numbers.set(main_thread, i, static_cast<std::int64_t>(i * i));
    std::printf("numbers[17] = %lld (thread clock: %.3f ms)\n",
                static_cast<long long>(numbers.get(main_thread, 17)),
                cyclesToSeconds(main_thread.clock()) * 1e3);
    heap.free(main_thread, numbers);

    // 3. Load a small Kronecker graph through the simulated page cache
    //    (the GAPBS ".sg read" phase) and run BFS on it.
    const CsrGraph host = CsrGraph::fromEdgeList(
        1 << 14, generateKron(14, 16, /*seed=*/42));
    SimCsrGraph graph =
        SimCsrGraph::load(engine, heap, main_thread, host, "quickstart");
    std::printf("loaded graph: %lld vertices, %lld directed edges\n",
                static_cast<long long>(graph.numNodes()),
                static_cast<long long>(graph.numEdges()));

    const BfsOutput bfs = runBfs(engine, heap, graph, /*source=*/0);
    std::printf("BFS reached %lld vertices in %d supersteps "
                "(%d bottom-up)\n",
                static_cast<long long>(bfs.reached), bfs.supersteps,
                bfs.bottomUpSteps);

    // 4. Ask the kernel what happened underneath.
    const VmStat &vm = engine.kernel().vmstat();
    const NumaStatSnapshot numa = engine.kernel().numastat();
    std::printf("\nkernel counters after the run:\n");
    std::printf("  minor faults:        %llu\n",
                static_cast<unsigned long long>(vm.pgfault));
    std::printf("  NUMA hint faults:    %llu\n",
                static_cast<unsigned long long>(vm.numaHintFaults));
    std::printf("  pages promoted:      %llu\n",
                static_cast<unsigned long long>(vm.pgpromoteSuccess));
    std::printf("  pages demoted:       %llu (kswapd) + %llu (direct)\n",
                static_cast<unsigned long long>(vm.pgdemoteKswapd),
                static_cast<unsigned long long>(vm.pgdemoteDirect));
    std::printf("  DRAM in use:         %llu pages app, %llu page cache\n",
                static_cast<unsigned long long>(numa.appPages[0]),
                static_cast<unsigned long long>(numa.cachePages[0]));
    std::printf("  NVM in use:          %llu pages app, %llu page cache\n",
                static_cast<unsigned long long>(numa.appPages[1]),
                static_cast<unsigned long long>(numa.cachePages[1]));
    std::printf("  simulated wall time: %.3f s\n",
                cyclesToSeconds(engine.globalTime()));

    graph.free(heap, main_thread);
    return 0;
}

/**
 * @file
 * Peer-to-peer reachability -- the paper's BFS motivation ("locate all
 * the nearest or adjacent nodes in a peer-to-peer network",
 * Section 4.1): run BFS waves from several peers over a uniform-random
 * overlay network and report both the reachability structure and what
 * the memory system did underneath.
 *
 *   $ ./examples/reachability [scale]
 */

#include <cstdio>
#include <cstdlib>

#include "apps/bfs.h"
#include "graph/generators.h"
#include "graph/sim_graph.h"
#include "profile/analysis.h"
#include "profile/perf_mem.h"
#include "runtime/sim_heap.h"

using namespace memtier;

namespace {

/** Scale a capacity with the graph size (base value is for 2^16). */
std::uint64_t
scaledBytes(std::uint64_t base, int scale)
{
    return scale >= 16 ? base << (scale - 16) : base >> (16 - scale);
}

}  // namespace


int
main(int argc, char **argv)
{
    const int scale = argc > 1 ? std::atoi(argv[1]) : 16;

    SystemConfig config;
    config.dram = makeDramParams(scaledBytes(6 * kMiB, scale));
    config.nvm = makeNvmParams(scaledBytes(24 * kMiB, scale));
    Engine engine(config);

    // Attach a perf-mem style sampler, exactly as the paper's
    // methodology does (Section 3.1).
    PerfMemSampler sampler;
    engine.setObserver(&sampler);

    SimHeap heap(engine);
    ThreadContext &t0 = engine.thread(0);

    std::printf("building a 2^%d-peer overlay network...\n", scale);
    const CsrGraph host = CsrGraph::fromEdgeList(
        1 << scale, generateUrand(scale, 16, /*seed=*/7));
    SimCsrGraph graph =
        SimCsrGraph::load(engine, heap, t0, host, "p2p-overlay");

    Rng rng(99);
    for (int wave = 0; wave < 4; ++wave) {
        const auto peer = static_cast<NodeId>(
            rng.nextBounded(static_cast<std::uint64_t>(host.numNodes())));
        const BfsOutput out = runBfs(engine, heap, graph, peer);
        std::printf("wave %d from peer %-8d reached %lld/%lld peers in "
                    "%d hops max\n",
                    wave, peer, static_cast<long long>(out.reached),
                    static_cast<long long>(host.numNodes()),
                    out.supersteps - 1);
    }

    // What did that cost the memory system?
    const auto samples = sampler.samples();
    const LevelShares ls = levelShares(samples);
    const ExternalSplit es = externalSplit(samples);
    const TlbCostMatrix tlb = tlbCostMatrix(samples);
    std::printf("\nmemory behaviour (perf-mem style samples: %zu):\n",
                samples.size());
    std::printf("  outside caches: %.1f%% (DRAM %.1f%% / NVM %.1f%% of "
                "external)\n",
                ls.externalFrac * 100.0, es.dramFrac * 100.0,
                es.nvmFrac * 100.0);
    if (tlb.count[1][1] > 0 && tlb.count[0][0] > 0) {
        std::printf("  NVM+TLB-miss loads average %.0f cycles vs %.0f "
                    "for DRAM+TLB-hit (%.1fx)\n",
                    tlb.mean[1][1], tlb.mean[0][0],
                    tlb.mean[1][1] / tlb.mean[0][0]);
    }
    std::printf("  promotions: %llu, demotions: %llu, hint faults: "
                "%llu\n",
                static_cast<unsigned long long>(
                    engine.kernel().vmstat().pgpromoteSuccess),
                static_cast<unsigned long long>(
                    engine.kernel().vmstat().pgdemoteKswapd +
                    engine.kernel().vmstat().pgdemoteDirect),
                static_cast<unsigned long long>(
                    engine.kernel().vmstat().numaHintFaults));
    std::printf("  simulated time: %.3f s\n",
                cyclesToSeconds(engine.globalTime()));

    graph.free(heap, t0);
    return 0;
}

/**
 * @file
 * Trace dump: runs a workload and writes the paper artifact's CSV files
 * (memory_trace.csv, mmap_trace.csv, munmap_trace.csv, allocations.csv,
 * perfmem_trace_mapped_DRAM.csv, perfmem_trace_mapped_PMEM.csv) into a
 * directory, so the original artifact's plotting scripts can consume
 * simulator output directly.
 *
 *   $ ./examples/trace_dump [outdir] [scale]
 */

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "exp/runner.h"
#include "profile/trace_export.h"

using namespace memtier;

int
main(int argc, char **argv)
{
    const std::string outdir = argc > 1 ? argv[1] : "traces";
    const int scale = argc > 2 ? std::atoi(argv[2]) : 15;

    RunConfig rc;
    rc.workload.app = App::BC;
    rc.workload.kind = GraphKind::Kron;
    rc.workload.scale = scale;
    rc.workload.trials = 2;
    rc.sys.dram = makeDramParams(
        scale >= 16 ? (6 * kMiB) << (scale - 16)
                    : (6 * kMiB) >> (16 - scale));
    rc.sys.nvm = makeNvmParams(
        scale >= 16 ? (24 * kMiB) << (scale - 16)
                    : (24 * kMiB) >> (16 - scale));

    std::fprintf(stderr, "running %s (scale %d)...\n",
                 rc.workload.name().c_str(), scale);
    const RunResult r = runWorkload(rc);

    std::filesystem::create_directories(outdir);
    const auto write = [&](const std::string &name, auto &&writer) {
        std::ofstream out(outdir + "/" + name);
        const std::size_t rows = writer(out);
        std::printf("  %-34s %8zu rows\n", name.c_str(), rows);
    };

    std::printf("writing artifact CSVs to %s/:\n", outdir.c_str());
    write("memory_trace.csv", [&](std::ostream &o) {
        return writeMemoryTrace(o, r.samples);
    });
    write("mmap_trace.csv", [&](std::ostream &o) {
        return writeMmapTrace(o, r.tracker);
    });
    write("munmap_trace.csv", [&](std::ostream &o) {
        return writeMunmapTrace(o, r.tracker);
    });
    write("allocations.csv", [&](std::ostream &o) {
        return writeAllocations(o, r.tracker);
    });
    write("perfmem_trace_mapped_DRAM.csv", [&](std::ostream &o) {
        return writeMappedSamples(o, r.samples, r.tracker,
                                  MemNode::DRAM);
    });
    write("perfmem_trace_mapped_PMEM.csv", [&](std::ostream &o) {
        return writeMappedSamples(o, r.samples, r.tracker,
                                  MemNode::NVM);
    });
    return 0;
}

/**
 * @file
 * Policy explorer: a command-line driver that runs any paper workload
 * under any memory-management mode and prints a full report -- the tool
 * you reach for when exploring "what would AutoNUMA / static mapping /
 * all-NVM do to my workload?".
 *
 *   $ ./examples/policy_explorer bc kron autonuma 16
 *   $ ./examples/policy_explorer cc urand object_spill 17
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "base/logging.h"
#include "exp/report.h"
#include "exp/runner.h"
#include "profile/analysis.h"

using namespace memtier;

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [app] [graph] [mode] [scale]\n"
        "  app:   bc | bfs | cc | pr          (default bc)\n"
        "  graph: kron | urand                (default kron)\n"
        "  mode:  autonuma | notiering | object_static | object_spill |\n"
        "         object_dynamic | all_dram | all_nvm (default autonuma)\n"
        "  scale: log2 vertices, 12..20       (default 16)\n",
        argv0);
    std::exit(1);
}

/** Scale a capacity with the graph size (base value is for 2^16). */
std::uint64_t
scaledBytes(std::uint64_t base, int scale)
{
    return scale >= 16 ? base << (scale - 16) : base >> (16 - scale);
}

}  // namespace

int
main(int argc, char **argv)
{
    RunConfig rc;
    rc.workload.app = App::BC;
    rc.workload.kind = GraphKind::Kron;
    int scale = 16;

    if (argc > 1) {
        const std::string app = argv[1];
        if (app == "bc") rc.workload.app = App::BC;
        else if (app == "bfs") rc.workload.app = App::BFS;
        else if (app == "cc") rc.workload.app = App::CC;
        else if (app == "pr") rc.workload.app = App::PR;
        else usage(argv[0]);
    }
    if (argc > 2) {
        const std::string kind = argv[2];
        if (kind == "kron") rc.workload.kind = GraphKind::Kron;
        else if (kind == "urand") rc.workload.kind = GraphKind::Urand;
        else usage(argv[0]);
    }
    if (argc > 3) {
        const std::string mode = argv[3];
        if (mode == "autonuma") rc.mode = Mode::AutoNuma;
        else if (mode == "notiering") rc.mode = Mode::NoTiering;
        else if (mode == "object_static") rc.mode = Mode::ObjectStatic;
        else if (mode == "object_spill") rc.mode = Mode::ObjectSpill;
        else if (mode == "object_dynamic") rc.mode = Mode::ObjectDynamic;
        else if (mode == "all_dram") rc.mode = Mode::AllDram;
        else if (mode == "all_nvm") rc.mode = Mode::AllNvm;
        else usage(argv[0]);
    }
    if (argc > 4) {
        scale = std::atoi(argv[4]);
        if (scale < 12 || scale > 20)
            usage(argv[0]);
    }
    rc.workload.scale = scale;
    rc.workload.trials = rc.workload.app == App::BC ? 3 : 2;
    rc.sys.dram = makeDramParams(scaledBytes(6 * kMiB, scale));
    rc.sys.nvm = makeNvmParams(scaledBytes(24 * kMiB, scale));

    // Object modes need a profiling pass first.
    PlacementPlan plan;
    const PlacementPlan *plan_ptr = nullptr;
    if (rc.mode == Mode::ObjectStatic || rc.mode == Mode::ObjectSpill) {
        std::fprintf(stderr, "profiling pass under AutoNUMA...\n");
        RunConfig profile_cfg = rc;
        profile_cfg.mode = Mode::AutoNuma;
        const RunResult profile = runWorkload(profile_cfg);
        plan = planFromProfile(profile, rc.sys.dram.capacityBytes,
                               rc.mode == Mode::ObjectSpill);
        plan_ptr = &plan;
    }

    std::fprintf(stderr, "running %s under %s...\n",
                 rc.workload.name().c_str(), modeName(rc.mode));
    const RunResult r = runWorkload(rc, plan_ptr);

    banner(std::cout, r.workloadName + " under " + modeName(r.mode));
    const LevelShares ls = levelShares(r.samples);
    const ExternalSplit es = externalSplit(r.samples);
    const CostSplit cs = externalCostSplit(r.samples);

    TextTable summary({"metric", "value"});
    summary.addRow({"execution time", num(r.totalSeconds, 3) + " s"});
    summary.addRow({"  input reading", num(r.loadSeconds, 3) + " s"});
    summary.addRow({"  compute", num(r.computeSeconds, 3) + " s"});
    summary.addRow({"memory accesses", fmtCount(r.totalAccesses)});
    summary.addRow({"samples collected", fmtCount(r.samples.size())});
    summary.addRow({"outside caches", pct(ls.externalFrac)});
    summary.addRow({"  on DRAM", pct(es.dramFrac)});
    summary.addRow({"  on NVM", pct(es.nvmFrac)});
    summary.addRow({"NVM cost share", pct(cs.nvmCostFrac)});
    summary.addRow({"hint faults", fmtCount(r.vmstat.numaHintFaults)});
    summary.addRow({"promotions", fmtCount(r.vmstat.pgpromoteSuccess)});
    summary.addRow(
        {"demotions", fmtCount(r.vmstat.pgdemoteKswapd +
                               r.vmstat.pgdemoteDirect)});
    summary.addRow({"output checksum",
                    strprintf("%016llx",
                              static_cast<unsigned long long>(
                                  r.outputChecksum))});
    summary.print(std::cout);

    if (plan_ptr != nullptr) {
        std::cout << "\nplacement plan (" << plan.size() << " sites):\n";
        TextTable sites({"site", "placement"});
        for (const auto &[site, policy] : plan.entries()) {
            sites.addRow(
                {site, policy.mode == MemPolicy::Mode::Split
                           ? "split (" +
                                 std::to_string(policy.dramPages) +
                                 " pages DRAM, rest NVM)"
                           : (policy.node == MemNode::DRAM ? "DRAM"
                                                           : "NVM")});
        }
        sites.print(std::cout);
    }

    std::cout << "\ntop objects by external samples:\n";
    auto counts = objectAccessCounts(r.samples, r.tracker);
    std::sort(counts.begin(), counts.end(),
              [](const ObjectAccessCount &a, const ObjectAccessCount &b) {
                  return a.dramSamples + a.nvmSamples >
                         b.dramSamples + b.nvmSamples;
              });
    TextTable objects({"object", "site", "size", "DRAM", "NVM"});
    for (std::size_t i = 0; i < std::min<std::size_t>(8, counts.size());
         ++i) {
        const auto &c = counts[i];
        objects.addRow({std::to_string(c.object), c.site,
                        fmtBytes(c.bytes), fmtCount(c.dramSamples),
                        fmtCount(c.nvmSamples)});
    }
    objects.print(std::cout);
    return 0;
}

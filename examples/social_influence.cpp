/**
 * @file
 * Social-network influence analysis -- the paper's motivating BC use
 * case ("in social network analysis [BC] is actively used for computing
 * the user influence index", Section 4.1) -- run twice: once under
 * AutoNUMA and once under the object-level static mapping, comparing
 * execution time, NVM traffic, and the top influencers found.
 *
 *   $ ./examples/social_influence [scale]
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "exp/runner.h"
#include "profile/analysis.h"

using namespace memtier;

namespace {

/** Scale a capacity with the graph size (base value is for 2^16). */
std::uint64_t
scaledBytes(std::uint64_t base, int scale)
{
    return scale >= 16 ? base << (scale - 16) : base >> (16 - scale);
}

}  // namespace


int
main(int argc, char **argv)
{
    const int scale = argc > 1 ? std::atoi(argv[1]) : 16;

    RunConfig rc;
    rc.workload.app = App::BC;
    rc.workload.kind = GraphKind::Kron;  // Power-law, like a social net.
    rc.workload.scale = scale;
    rc.workload.trials = 3;  // Sampled influence sources.
    // Size the tiers so the network does not fit in the fast tier.
    rc.sys.dram = makeDramParams(scaledBytes(6 * kMiB, scale));
    rc.sys.nvm = makeNvmParams(scaledBytes(24 * kMiB, scale));

    std::printf("computing influence on a 2^%d-user social network...\n",
                scale);

    // Pass 1: profile under AutoNUMA (the kernel's default tiering).
    const RunResult autonuma = runWorkload(rc);
    const ExternalSplit base_split = externalSplit(autonuma.samples);

    // Pass 2: the paper's object-level static mapping, planned from the
    // profile of pass 1.
    const PlacementPlan plan =
        planFromProfile(autonuma, rc.sys.dram.capacityBytes,
                        /*spill=*/false);
    RunConfig rc2 = rc;
    rc2.mode = Mode::ObjectStatic;
    const RunResult object = runWorkload(rc2, &plan);
    const ExternalSplit obj_split = externalSplit(object.samples);

    std::printf("\n%-22s %12s %12s\n", "", "AutoNUMA", "object-level");
    std::printf("%-22s %11.3fs %11.3fs\n", "execution time",
                autonuma.totalSeconds, object.totalSeconds);
    std::printf("%-22s %11.1f%% %11.1f%%\n", "NVM share of ext hits",
                base_split.nvmFrac * 100.0, obj_split.nvmFrac * 100.0);
    std::printf("%-22s %12llu %12llu\n", "pages promoted",
                static_cast<unsigned long long>(
                    autonuma.vmstat.pgpromoteSuccess),
                static_cast<unsigned long long>(
                    object.vmstat.pgpromoteSuccess));
    std::printf("\nobject-level mapping is %.1f%% faster (identical "
                "results: %s)\n",
                (1.0 - object.totalSeconds / autonuma.totalSeconds) *
                    100.0,
                autonuma.outputChecksum == object.outputChecksum
                    ? "yes"
                    : "NO");

    std::printf("\nplacement plan:\n");
    for (const auto &[site, policy] : plan.entries()) {
        const char *where =
            policy.mode == MemPolicy::Mode::Split
                ? "split DRAM/NVM"
                : (policy.node == MemNode::DRAM ? "DRAM" : "NVM");
        std::printf("  %-18s -> %s\n", site.c_str(), where);
    }
    return 0;
}

#!/usr/bin/env python3
"""Render EXPERIMENTS.md from bench_output.txt.

The measured tables are extracted verbatim from the bench suite's
output; the paper values and verdicts are maintained here so the
document can be regenerated after every `./run_benches.sh`.
"""

import re
import sys

BENCH_OUT = "bench_output.txt"
TARGET = "EXPERIMENTS.md"


def load_sections(path):
    sections = {}
    name = None
    buf = []
    for line in open(path):
        m = re.match(r"^=== (\S+) ===$", line)
        if m:
            if name:
                sections[name] = "".join(buf).strip()
            name = m.group(1)
            buf = []
        elif name:
            buf.append(line)
    if name:
        sections[name] = "".join(buf).strip()
    return sections


def block(sections, key):
    body = sections.get(key, "(section missing -- rerun ./run_benches.sh)")
    # Drop the 3-line header each bench prints (repeated per invocation
    # in multi-run sections like fault_sensitivity).
    lines = [l for l in body.splitlines()
             if not (l.startswith("memtier reproduction")
                     or l.startswith("paper reference")
                     or l.startswith("scale:"))]
    return "```\n" + "\n".join(lines).strip() + "\n```"


HEADER = """\
# EXPERIMENTS — paper vs. measured

Every table and figure of *Performance Characterization of AutoNUMA
Memory Tiering on Graph Analytics* (IISWC 2022), reproduced on the
scaled simulated testbed (2^18-vertex graphs, 24 MiB DRAM + 96 MiB NVM,
18 logical threads; see DESIGN.md §3 for the scaling rationale).

Regenerate with:

```sh
cmake -B build -G Ninja && cmake --build build
./run_benches.sh > bench_output.txt
python3 make_experiments_md.py
```

**Reading guide.** The paper measured a real Xeon + Optane machine; we
measure a calibrated simulator. Absolute values are not comparable by
construction (capacities scaled ~8000x, runtimes compressed from minutes
to seconds); the claims under reproduction are the *shapes*: which
mechanism dominates, who wins, and by roughly what factor. Each section
states the paper's numbers, shows the measured output verbatim, and
gives a verdict.
"""


def main():
    sections = load_sections(BENCH_OUT)
    out = [HEADER]

    out.append("""\
## Figure 3 — sample distribution across memory levels

**Paper:** for all six workloads, at least ~25% (up to ~50%) of memory
samples are serviced outside the caches (DRAM+NVM), reflecting graph
analytics' poor locality.

**Measured** (`bench/fig03_sample_levels`):

""" + block(sections, "fig03_sample_levels") + """

**Verdict: reproduced.** The external fraction spans ~20–52% across
workloads (paper: 27–49%), with the same qualitative split: the bc
workloads are the most external-heavy, and LFB hits are a visible
fraction, as in the paper's stacked bars. Two workloads sit a few points
below the paper's 25% floor — at this scale CC's label array caches
slightly better than the paper's 2^30-vertex equivalent.
""")

    out.append("""\
## Figure 4 — pages touched 1 / 2 / 3+ times

**Paper:** ~60% of externally-accessed pages (on average) are touched
exactly once (33–80% of external accesses land on such pages);
two-touch pages add ~10%. Hence a reactive two-touch policy cannot
classify most pages.

**Measured** (`bench/fig04_page_touches`, sparse sampling — see
DESIGN.md on sampling density):

""" + block(sections, "fig04_page_touches") + """

**Verdict: reproduced.** Single-touch pages average ~60%+ of the touched
page population, dominating every workload, exactly the paper's
headline characterization result.
""")

    out.append("""\
## Figure 5 — reuse time of two-touch pages (hottest NVM object)

**Paper:** reuse intervals between the two touches are widely dispersed
(stddev close to the mean; bc_kron p25=14 s vs. max≈73+ s), so no
latency threshold separates them; and at most **1.3%** of two-touch
pages are ever observed promoted (NVM first, DRAM second).

**Measured** (`bench/fig05_reuse_time`; times are simulated seconds —
compare dispersion, not magnitude):

""" + block(sections, "fig05_reuse_time") + """

**Verdict: shape reproduced.** Where the hottest NVM object yields a
two-touch population, the stddev is comparable to the mean (bc_kron:
0.16 vs 0.18), confirming the irregular-reuse claim. The observed
promoted share of two-touch pages is small but above the paper's 1.3%
on the bc workloads — our compressed timescale gives the scanner
relatively more opportunities between the two touches.
""")

    out.append("""\
## Figure 6 — top-10 objects by DRAM / NVM samples (bc_kron)

**Paper:** very few objects concentrate the NVM accesses (object 0 holds
~65% of NVM samples for bc_kron, up to ~90% in other workloads), and the
hottest NVM object is *also* the most-accessed DRAM object — i.e.
AutoNUMA left a hot object straddling both tiers.

**Measured** (`bench/fig06_top_objects`):

""" + block(sections, "fig06_top_objects") + """

**Verdict: reproduced.** A handful of per-source BC arrays concentrate
the NVM samples, and the hottest NVM object ranks at/near the top of the
DRAM ranking too — the same "hot object split across tiers" pathology
the paper dissects.
""")

    out.append("""\
## Figure 7 — allocation timeline (bc_kron)

**Paper:** object 0 (8 GB) was allocated right after another object
released ~13 GB; its pages landed in DRAM because space happened to be
free, not because they were hot (Finding 3). The allocate/free pattern
recurs over time.

**Measured** (`bench/fig07_alloc_timeline`):

""" + block(sections, "fig07_alloc_timeline") + """

**Verdict: reproduced.** The live-bytes timeline shows the recurring
per-source allocation churn, and the hottest NVM object is allocated
within a window in which comparable capacity was just released.
""")

    out.append("""\
## Figure 8 — access pattern inside the hottest NVM object (bc_kron)

**Paper:** at full-run granularity the object's accesses look
structured; zooming into one second reveals random access across the
whole object (Finding 4), so its pages cannot be classified hot.

**Measured** (`bench/fig08_access_pattern`):

""" + block(sections, "fig08_access_pattern") + """

**Verdict: reproduced.** The zoom window's mean page stride between
consecutive samples is a large fraction of the object's page range —
a random walk, not a predictable sweep.
""")

    out.append("""\
## Figure 9 — memory usage, migrations, CPU over time (bc_kron)

**Paper:** DRAM fills during the input-reading phase (application +
page cache); once full, new allocations go to NVM; demotions (mostly
kswapd) exceed promotions; the page cache is cut roughly in half by
demotion (Finding 5); promotions stay below the rate limit (Finding 6);
CPU is low while reading, high while computing.

**Measured** (`bench/fig09_memory_timeline`):

""" + block(sections, "fig09_memory_timeline") + """

**Verdict: reproduced.** All five sub-shapes hold: DRAM fills early,
allocation spills to NVM, kswapd demotions dominate promotions by an
order of magnitude, the input phase's page cache is reclaimed from DRAM
by demotion, and CPU utilization traces the read/compute phases.
""")

    out.append("""\
## Figure 10 — DRAM load samples vs. promotions over time (bc_kron)

**Paper:** little correlation between the number of promoted pages and
DRAM load traffic (Finding 7): DRAM hits come from initial placement,
not promotions, and promoted volume is far below the rate-limit
ceiling.

**Measured** (`bench/fig10_promotion_correlation`):

""" + block(sections, "fig10_promotion_correlation") + """

**Verdict: reproduced.** Promoted pages are a tiny fraction of DRAM
load traffic and the per-interval correlation is weak.
""")

    out.append("""\
## Figure 11 — object-level static mapping vs. AutoNUMA (headline)

**Paper:** the offline object-level mapping reduces execution time by
**21% on average, up to 51%**; bc_kron's NVM samples drop **79%**
(41% faster). The cc workloads *regress* with whole-object assignment
(cc_kron −6%) and recover with the spill variant (cc_kron* +2%).

**Measured** (`bench/fig11_objectlevel_speedup`):

""" + block(sections, "fig11_objectlevel_speedup") + """

**Verdict: reproduced, including the failure mode.** The object-level
mapping wins on the bc and cc_urand workloads by cutting NVM samples
~80–89% (paper bc_kron: −79% → we measure −80%), the whole-object
variant shows the cc_kron regression the paper reports (−1.6% vs. the
paper's −6%), and spilling recovers it (+9.6% vs. the paper's +2%).
Checksums confirm placement never changes application results. Average
and maximum improvements (14.9% / 36.3%) land in the paper's band at
roughly 2/3 of its magnitude — our AutoNUMA baseline keeps relatively
more hot data in DRAM, leaving less room to win — and our bfs
workloads regress slightly where the paper's improved, because at this
scale BFS's external traffic is dominated by the adjacency object that
the planner sends wholly to NVM.
""")

    out.append("""\
## Table 1 — where external samples hit

**Paper** (outside-cache% / DRAM% / NVM%): bc_kron 49.1/67.7/32.3,
bc_urand 28.5/78.2/21.8, bfs_kron 37.4/93.9/6.1, bfs_urand
27.1/68.8/31.2, cc_kron 46.9/95.1/4.9, cc_urand 48.6/91.5/8.5. Key
claim: the NVM share depends on the application–dataset *combination*,
not either alone.

**Measured** (`bench/table1_sample_location`):

""" + block(sections, "table1_sample_location") + """

**Verdict: shape reproduced.** DRAM holds the majority of external hits
for five of six workloads (bc_urand is NVM-heavy), and the NVM share
varies ~3–66% with no per-application or per-dataset pattern — the
paper's combination-dependence claim. Divergence: our bc workloads
carry more NVM traffic than the paper's (the compressed timescale gives
AutoNUMA fewer scan generations to pull BC's per-source arrays up
before they are freed again).
""")

    out.append("""\
## Table 2 — external access cost split

**Paper:** NVM's share of total sampled latency always exceeds its
share of accesses — bc_kron spends 62.5% of external cost on 32.3% of
accesses; bfs_urand 71.8% on 31.2%.

**Measured** (`bench/table2_access_cost`):

""" + block(sections, "table2_access_cost") + """

**Verdict: reproduced.** The cost amplification column is > 1x for every
workload (1.4–2.9x): NVM accesses are disproportionately expensive,
Table 2's exact point.
""")

    out.append("""\
## Table 3 — external cost by node and TLB outcome (Finding 1)

**Paper** (cycles, DRAM hit/miss | NVM hit/miss): e.g. bc_kron 659/772 |
1833/2727; cc_urand 325/903 | 1345/4141. Finding 1: NVM+TLB-miss costs
~4x (up to 5.7x) DRAM+TLB-miss.

**Measured** (`bench/table3_tlb_cost`):

""" + block(sections, "table3_tlb_cost") + """

**Verdict: shape reproduced, magnitude compressed.** The ordering holds
everywhere (DRAM hit < DRAM miss < NVM hit < NVM miss) and NVM/DRAM
TLB-hit ratios match the paper (~2.6–3.4x vs. the paper's ~2.8–4.3x).
The NVM-miss/DRAM-miss ratio is ~1.6–1.8x vs. the paper's 3.5–4.6x: our
page walks always hit DRAM-resident page tables, while on real hardware
walks for NVM-heavy footprints contend with the NVM channel itself — a
documented fidelity limit of the walk model (DESIGN.md §3).
""")

    out.append("""\
## Ablations (beyond the paper)

`bench/ablation_autonuma` sweeps the tiering design space the paper's
Section 2.2 describes:

""" + block(sections, "ablation_autonuma") + """

The sweeps confirm the mechanisms behind the paper's findings: the
promotion rate limit trades promotion coverage against thrashing
(promote-then-demote grows with the budget), scanning faster finds more
candidates at hint-fault cost, and growing DRAM monotonically removes
tiering activity.
""")

    out.append("""\
## Extension — online dynamic object-level tiering

The paper's conclusion proposes moving from offline profiling to
runtime object management; `src/core/dynamic_tiering` implements it
(windowed per-object access counting, periodic re-ranking, budgeted
whole-object migration) and `bench/ablation_dynamic` compares:

""" + block(sections, "ablation_dynamic") + """

The online policy matches or beats the offline static mapping on
average — without any profiling run — and avoids the static mapping's
regressions, supporting the paper's closing argument that object-level
management is the right granularity for graph analytics on tiered
memory.
""")

    out.append("""\
## Failure-rate sensitivity (beyond the paper)

`run_benches.sh` drives `bench/policy_sweep --faults` over increasingly
lossy transient migration (bursts of 8, seeded so every run replays
bit-identically; see DESIGN.md §6 for the fault model):

""" + block(sections, "fault_sensitivity") + """

The workload completes with identical output at every failure rate —
failures cost time and promotion coverage, never correctness. Retries
absorb low rates; as the rate grows, failed and retried migrations
climb and the circuit breaker starts tripping, pausing promotion and
scanning until the failure burst passes. The `migrate_fail`,
`promote_retry`, `alloc_fail`, `disk_read_retry` and `breaker_trips`
columns land in `results/fault_sweep_p*.csv`.
""")

    out.append("""\
## THP sensitivity (beyond the paper)

`run_benches.sh` re-runs the TLB-cost matrix and the policy ablation
with transparent huge pages on (`--thp`: 2 MiB PMD mappings, separate
huge TLB entry classes, one-level-shorter page walks; see DESIGN.md §7
for the model):

""" + block(sections, "thp_sensitivity") + """

One huge TLB entry covers 512 base pages, so the dTLB miss rate
collapses against the Table 3 baseline — an order of magnitude where
page walks actually hurt — which shrinks exactly the penalty the
paper's Finding 1 identifies as compounding NVM access cost. Where the
miss buckets stay populated the NVM-miss/DRAM-miss cost ratio narrows
with it; once THP eliminates nearly all misses the residual bucket
means turn into sparse-sample statistics, so the per-access means
matter less than the vanishing miss *rate*. The `thp` column plus the
`thp_fault_alloc` / `thp_collapse_alloc` / `thp_split_page` counters
land in `results/ablation_policies_thp.csv` and
`results/sweep_autonuma_thp.csv`.
""")

    out.append("""\
## Serving-scenario tail latency (beyond the paper)

The paper measures graph analytics, i.e. throughput; `src/serve` adds
the other canonical tiered-memory scenario: data serving, where the
metric is tail latency. `bench/serving_tail` replays a Redis-style KV
store and a LevelDB-style LSM store under open-loop Zipfian traffic
(diurnal rate swing + a connection-storm window) across the registry's
tiering policies, THP off and on (DESIGN.md §9):

""" + block(sections, "serving_tail") + """

The checksum column proves the policies only move time, never answers.
dram-only bounds the achievable tail; AutoNUMA lands close behind it
once its migrations settle, while exchange pays for its extra
swap traffic precisely where a serving system can least afford it —
p999 and the storm window. The LSM's tail is an order of magnitude
heavier than the KV's (compaction pauses + block-cache misses walking
SimFile-backed SSTs), and interleave hurts it most because every
second cache block lands on NVM. Full per-phase percentiles land in
`results/serving_tail.csv` and `BENCH_serving.json`.

`run_benches.sh` also re-runs the sweep under lossy migration
(`migrate:p=0.2,burst=4`) with the kernel invariant checker armed:

""" + block(sections, "serving_chaos") + """

Checksums match the fault-free run cell for cell — migration failures
fatten the tail but never corrupt a response.
""")

    out.append("""\
## Footprint scaling (beyond the paper)

The paper runs 2^30-vertex graphs (228–292 GB); the scaled testbed
defaults to 2^18 (~33 MB). `src/bigraph` closes part of that gap: the
CSR is split into row-range segments, each an independently placed
mmap object, built out of core (edges stream from the generator into
per-segment disk buckets, so host RSS is bounded by one segment, never
the whole edge list). `bench/scale_sweep` walks the footprint up two
orders of magnitude — kron 2^18→2^24 and urand 2^25 (~4.3 GB) — under
AutoNUMA and the no-tiering baseline, with DRAM/NVM capacities scaled
in proportion (DESIGN.md §12):

""" + block(sections, "scale_sweep") + """

A one-segment build is bit-identical to the monolithic loader (the
`segment-1 golden check` line; CI re-asserts it on every change), so
every number the smaller benches report is unchanged by the subsystem.
Across the sweep the tiering shapes persist at every scale: AutoNUMA
holds the DRAM-hit fraction at 5-7x the no-tiering baseline's
(0.61-0.74 vs 0.10-0.13), paying migration volume that grows with the
footprint, while host peak RSS tracks the materialized segments (~1.3x
footprint) instead of the monolithic path's whole-edge-list blowup —
the monolithic loader cannot build these graphs at all past scale 22.
Wall-clock accesses/sec declines only ~3x across a 140x footprint
growth. The machine-readable record (`BENCH_scale.json`) is what the
CI scale gate regresses against.
""")

    out.append("""\
## Online autotuning (beyond the paper)

The paper tunes AutoNUMA's parameters offline and reports how far the
stock configuration sits from the tuned one; `src/policy/autotune`
closes the loop online. The `autotune` policy wraps any registered base
policy and hill-climbs its live tunables (scan cadence, adjust period,
promotion rate limit, copy threads) between epochs, accepting a change
only when the observed access throughput improves and reverting it
otherwise — fully deterministic (seeded direction choices, cycle-clock
epochs). `bench/autotune_sweep` starts both arms from the same
deliberately mistuned configuration — sluggish scanning plus a starved
promotion budget — under tight DRAM, and lets only the tuned arm move
(DESIGN.md §13):

""" + block(sections, "autotune_sweep") + """

The checksum assertion inside the bench proves tuning never changes
application output. The tuned arm matches or beats the stuck default on
every cell and wins where placement quality dominates (pr/bc under
capacity pressure); the serving workloads are arrival-bound, so the
tuner correctly settles near break-even instead of thrashing. The
trajectory counters (`applied` / `accepted` / `reverted`) land in
`results/autotune_sweep.csv` with the post-run effective tunables; the
machine-readable record (`BENCH_autotune.json`) is what the CI autotune
gate regresses against.
""")

    out.append("""\
## Substrate calibration

`bench/micro_tier_latency` (google-benchmark) validates the memory
model against the measurements the paper cites (Izraelevitz et al.):

""" + block(sections, "micro_tier_latency") + """

NVM random loads cost ~3.0x DRAM (cited: ~3x), sequential ~2x at the
parameter level, and saturating random NVM stores expose the 256 B
write-amplification plus controller back-pressure.

## Summary

| Experiment | Verdict |
|---|---|
| Fig. 3 external fraction 25–50% | reproduced (20–52%) |
| Fig. 4 ~60% single-touch pages | reproduced (~63% avg) |
| Fig. 5 irregular reuse intervals | shape reproduced |
| Fig. 6 few objects own NVM traffic | reproduced |
| Fig. 7 allocation-timing placement (Finding 3) | reproduced |
| Fig. 8 random access in hot object (Finding 4) | reproduced |
| Fig. 9 demotion/page-cache/CPU phases (Findings 5–6) | reproduced |
| Fig. 10 promotions uncorrelated with DRAM hits (Finding 7) | reproduced |
| Fig. 11 object-level wins; cc needs spill | reproduced (incl. failure mode) |
| Table 1 DRAM-majority, combination-dependent NVM share | shape reproduced |
| Table 2 NVM cost amplification | reproduced |
| Table 3 TLB-miss ordering (Finding 1) | shape reproduced, ratio compressed |
| Failure-rate sensitivity (beyond the paper) | correct at every rate; breaker engages |
| THP sensitivity (beyond the paper) | dTLB miss rate falls; NVM/DRAM miss-cost ratio narrows |
| Serving tail latency (beyond the paper) | dram-only bounds the tail; exchange worst at p999/storm; checksums policy-invariant |
| Footprint scaling (beyond the paper) | segmented CSR to 2^24–2^25 (~140x default footprint); segment-1 bit-identical; tiering shapes persist |
| Online autotuning (beyond the paper) | tuned ≥ stock on every cell, up to +22% under capacity pressure; checksums tuning-invariant |
""")

    open(TARGET, "w").write("\n".join(out))
    print(f"wrote {TARGET} from {len(sections)} bench sections")


if __name__ == "__main__":
    sys.exit(main())

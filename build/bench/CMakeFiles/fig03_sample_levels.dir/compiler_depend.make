# Empty compiler generated dependencies file for fig03_sample_levels.
# This may be replaced when dependencies are built.

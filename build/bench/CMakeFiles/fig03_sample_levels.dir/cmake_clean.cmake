file(REMOVE_RECURSE
  "CMakeFiles/fig03_sample_levels.dir/fig03_sample_levels.cc.o"
  "CMakeFiles/fig03_sample_levels.dir/fig03_sample_levels.cc.o.d"
  "fig03_sample_levels"
  "fig03_sample_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_sample_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

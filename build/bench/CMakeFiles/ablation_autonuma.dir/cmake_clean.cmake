file(REMOVE_RECURSE
  "CMakeFiles/ablation_autonuma.dir/ablation_autonuma.cc.o"
  "CMakeFiles/ablation_autonuma.dir/ablation_autonuma.cc.o.d"
  "ablation_autonuma"
  "ablation_autonuma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_autonuma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

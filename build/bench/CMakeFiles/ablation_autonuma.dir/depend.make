# Empty dependencies file for ablation_autonuma.
# This may be replaced when dependencies are built.

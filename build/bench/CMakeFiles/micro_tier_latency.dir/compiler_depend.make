# Empty compiler generated dependencies file for micro_tier_latency.
# This may be replaced when dependencies are built.

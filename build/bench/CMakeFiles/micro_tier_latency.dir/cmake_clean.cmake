file(REMOVE_RECURSE
  "CMakeFiles/micro_tier_latency.dir/micro_tier_latency.cc.o"
  "CMakeFiles/micro_tier_latency.dir/micro_tier_latency.cc.o.d"
  "micro_tier_latency"
  "micro_tier_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_tier_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

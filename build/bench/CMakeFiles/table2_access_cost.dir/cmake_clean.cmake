file(REMOVE_RECURSE
  "CMakeFiles/table2_access_cost.dir/table2_access_cost.cc.o"
  "CMakeFiles/table2_access_cost.dir/table2_access_cost.cc.o.d"
  "table2_access_cost"
  "table2_access_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_access_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

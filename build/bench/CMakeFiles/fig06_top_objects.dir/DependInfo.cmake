
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig06_top_objects.cc" "bench/CMakeFiles/fig06_top_objects.dir/fig06_top_objects.cc.o" "gcc" "bench/CMakeFiles/fig06_top_objects.dir/fig06_top_objects.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/memtier_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/memtier_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/memtier_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/memtier_core.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/memtier_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/memtier_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/memtier_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/autonuma/CMakeFiles/memtier_autonuma.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/memtier_os.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/memtier_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/memtier_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/memtier_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

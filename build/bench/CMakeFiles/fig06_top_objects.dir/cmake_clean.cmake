file(REMOVE_RECURSE
  "CMakeFiles/fig06_top_objects.dir/fig06_top_objects.cc.o"
  "CMakeFiles/fig06_top_objects.dir/fig06_top_objects.cc.o.d"
  "fig06_top_objects"
  "fig06_top_objects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_top_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

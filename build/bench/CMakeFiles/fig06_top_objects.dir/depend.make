# Empty dependencies file for fig06_top_objects.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig07_alloc_timeline.dir/fig07_alloc_timeline.cc.o"
  "CMakeFiles/fig07_alloc_timeline.dir/fig07_alloc_timeline.cc.o.d"
  "fig07_alloc_timeline"
  "fig07_alloc_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_alloc_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig05_reuse_time.dir/fig05_reuse_time.cc.o"
  "CMakeFiles/fig05_reuse_time.dir/fig05_reuse_time.cc.o.d"
  "fig05_reuse_time"
  "fig05_reuse_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_reuse_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

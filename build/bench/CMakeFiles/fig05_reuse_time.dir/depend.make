# Empty dependencies file for fig05_reuse_time.
# This may be replaced when dependencies are built.

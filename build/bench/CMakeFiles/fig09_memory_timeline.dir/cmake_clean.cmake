file(REMOVE_RECURSE
  "CMakeFiles/fig09_memory_timeline.dir/fig09_memory_timeline.cc.o"
  "CMakeFiles/fig09_memory_timeline.dir/fig09_memory_timeline.cc.o.d"
  "fig09_memory_timeline"
  "fig09_memory_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_memory_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

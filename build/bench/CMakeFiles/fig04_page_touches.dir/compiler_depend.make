# Empty compiler generated dependencies file for fig04_page_touches.
# This may be replaced when dependencies are built.

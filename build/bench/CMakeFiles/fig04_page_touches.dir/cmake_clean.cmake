file(REMOVE_RECURSE
  "CMakeFiles/fig04_page_touches.dir/fig04_page_touches.cc.o"
  "CMakeFiles/fig04_page_touches.dir/fig04_page_touches.cc.o.d"
  "fig04_page_touches"
  "fig04_page_touches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_page_touches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

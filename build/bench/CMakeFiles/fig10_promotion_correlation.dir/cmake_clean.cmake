file(REMOVE_RECURSE
  "CMakeFiles/fig10_promotion_correlation.dir/fig10_promotion_correlation.cc.o"
  "CMakeFiles/fig10_promotion_correlation.dir/fig10_promotion_correlation.cc.o.d"
  "fig10_promotion_correlation"
  "fig10_promotion_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_promotion_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig10_promotion_correlation.
# This may be replaced when dependencies are built.

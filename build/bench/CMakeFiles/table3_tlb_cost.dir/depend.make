# Empty dependencies file for table3_tlb_cost.
# This may be replaced when dependencies are built.

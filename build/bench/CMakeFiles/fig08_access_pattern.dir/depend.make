# Empty dependencies file for fig08_access_pattern.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig08_access_pattern.dir/fig08_access_pattern.cc.o"
  "CMakeFiles/fig08_access_pattern.dir/fig08_access_pattern.cc.o.d"
  "fig08_access_pattern"
  "fig08_access_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_access_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/table1_sample_location.dir/table1_sample_location.cc.o"
  "CMakeFiles/table1_sample_location.dir/table1_sample_location.cc.o.d"
  "table1_sample_location"
  "table1_sample_location.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_sample_location.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for table1_sample_location.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for dynamic_tiering_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dynamic_tiering_test.dir/dynamic_tiering_test.cc.o"
  "CMakeFiles/dynamic_tiering_test.dir/dynamic_tiering_test.cc.o.d"
  "dynamic_tiering_test"
  "dynamic_tiering_test.pdb"
  "dynamic_tiering_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_tiering_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

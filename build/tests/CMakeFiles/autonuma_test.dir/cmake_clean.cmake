file(REMOVE_RECURSE
  "CMakeFiles/autonuma_test.dir/autonuma_test.cc.o"
  "CMakeFiles/autonuma_test.dir/autonuma_test.cc.o.d"
  "autonuma_test"
  "autonuma_test.pdb"
  "autonuma_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autonuma_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for autonuma_test.
# This may be replaced when dependencies are built.

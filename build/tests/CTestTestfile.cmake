# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/os_test[1]_include.cmake")
include("/root/repo/build/tests/autonuma_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/profile_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/sssp_test[1]_include.cmake")
include("/root/repo/build/tests/trace_export_test[1]_include.cmake")
include("/root/repo/build/tests/dynamic_tiering_test[1]_include.cmake")
include("/root/repo/build/tests/exp_test[1]_include.cmake")
include("/root/repo/build/tests/invariants_test[1]_include.cmake")

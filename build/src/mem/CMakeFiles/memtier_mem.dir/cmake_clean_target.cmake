file(REMOVE_RECURSE
  "libmemtier_mem.a"
)

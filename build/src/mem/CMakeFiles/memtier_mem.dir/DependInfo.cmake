
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/frame_allocator.cc" "src/mem/CMakeFiles/memtier_mem.dir/frame_allocator.cc.o" "gcc" "src/mem/CMakeFiles/memtier_mem.dir/frame_allocator.cc.o.d"
  "/root/repo/src/mem/memory_tier.cc" "src/mem/CMakeFiles/memtier_mem.dir/memory_tier.cc.o" "gcc" "src/mem/CMakeFiles/memtier_mem.dir/memory_tier.cc.o.d"
  "/root/repo/src/mem/tier_device.cc" "src/mem/CMakeFiles/memtier_mem.dir/tier_device.cc.o" "gcc" "src/mem/CMakeFiles/memtier_mem.dir/tier_device.cc.o.d"
  "/root/repo/src/mem/tier_params.cc" "src/mem/CMakeFiles/memtier_mem.dir/tier_params.cc.o" "gcc" "src/mem/CMakeFiles/memtier_mem.dir/tier_params.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/memtier_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

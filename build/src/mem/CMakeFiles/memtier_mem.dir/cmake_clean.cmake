file(REMOVE_RECURSE
  "CMakeFiles/memtier_mem.dir/frame_allocator.cc.o"
  "CMakeFiles/memtier_mem.dir/frame_allocator.cc.o.d"
  "CMakeFiles/memtier_mem.dir/memory_tier.cc.o"
  "CMakeFiles/memtier_mem.dir/memory_tier.cc.o.d"
  "CMakeFiles/memtier_mem.dir/tier_device.cc.o"
  "CMakeFiles/memtier_mem.dir/tier_device.cc.o.d"
  "CMakeFiles/memtier_mem.dir/tier_params.cc.o"
  "CMakeFiles/memtier_mem.dir/tier_params.cc.o.d"
  "libmemtier_mem.a"
  "libmemtier_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memtier_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for memtier_mem.
# This may be replaced when dependencies are built.

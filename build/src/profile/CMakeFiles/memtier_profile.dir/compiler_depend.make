# Empty compiler generated dependencies file for memtier_profile.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/memtier_profile.dir/analysis.cc.o"
  "CMakeFiles/memtier_profile.dir/analysis.cc.o.d"
  "CMakeFiles/memtier_profile.dir/mmap_tracker.cc.o"
  "CMakeFiles/memtier_profile.dir/mmap_tracker.cc.o.d"
  "CMakeFiles/memtier_profile.dir/perf_mem.cc.o"
  "CMakeFiles/memtier_profile.dir/perf_mem.cc.o.d"
  "CMakeFiles/memtier_profile.dir/trace_export.cc.o"
  "CMakeFiles/memtier_profile.dir/trace_export.cc.o.d"
  "libmemtier_profile.a"
  "libmemtier_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memtier_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

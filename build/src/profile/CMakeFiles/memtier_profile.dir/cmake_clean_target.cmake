file(REMOVE_RECURSE
  "libmemtier_profile.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/memtier_base.dir/csv.cc.o"
  "CMakeFiles/memtier_base.dir/csv.cc.o.d"
  "CMakeFiles/memtier_base.dir/logging.cc.o"
  "CMakeFiles/memtier_base.dir/logging.cc.o.d"
  "CMakeFiles/memtier_base.dir/rng.cc.o"
  "CMakeFiles/memtier_base.dir/rng.cc.o.d"
  "CMakeFiles/memtier_base.dir/stats.cc.o"
  "CMakeFiles/memtier_base.dir/stats.cc.o.d"
  "CMakeFiles/memtier_base.dir/types.cc.o"
  "CMakeFiles/memtier_base.dir/types.cc.o.d"
  "libmemtier_base.a"
  "libmemtier_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memtier_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

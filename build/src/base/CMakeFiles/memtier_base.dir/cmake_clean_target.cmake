file(REMOVE_RECURSE
  "libmemtier_base.a"
)

# Empty dependencies file for memtier_base.
# This may be replaced when dependencies are built.

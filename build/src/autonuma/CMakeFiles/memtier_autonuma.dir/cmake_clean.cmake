file(REMOVE_RECURSE
  "CMakeFiles/memtier_autonuma.dir/autonuma.cc.o"
  "CMakeFiles/memtier_autonuma.dir/autonuma.cc.o.d"
  "libmemtier_autonuma.a"
  "libmemtier_autonuma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memtier_autonuma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

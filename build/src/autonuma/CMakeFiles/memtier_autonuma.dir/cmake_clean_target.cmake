file(REMOVE_RECURSE
  "libmemtier_autonuma.a"
)

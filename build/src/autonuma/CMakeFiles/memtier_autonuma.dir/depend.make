# Empty dependencies file for memtier_autonuma.
# This may be replaced when dependencies are built.

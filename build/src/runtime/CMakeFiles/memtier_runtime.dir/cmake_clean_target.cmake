file(REMOVE_RECURSE
  "libmemtier_runtime.a"
)

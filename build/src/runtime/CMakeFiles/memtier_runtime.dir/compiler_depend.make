# Empty compiler generated dependencies file for memtier_runtime.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/memtier_runtime.dir/sim_file.cc.o"
  "CMakeFiles/memtier_runtime.dir/sim_file.cc.o.d"
  "libmemtier_runtime.a"
  "libmemtier_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memtier_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("mem")
subdirs("cache")
subdirs("os")
subdirs("autonuma")
subdirs("sim")
subdirs("runtime")
subdirs("graph")
subdirs("apps")
subdirs("profile")
subdirs("core")
subdirs("exp")

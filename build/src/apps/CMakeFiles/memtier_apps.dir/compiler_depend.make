# Empty compiler generated dependencies file for memtier_apps.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libmemtier_apps.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/memtier_apps.dir/bc.cc.o"
  "CMakeFiles/memtier_apps.dir/bc.cc.o.d"
  "CMakeFiles/memtier_apps.dir/bfs.cc.o"
  "CMakeFiles/memtier_apps.dir/bfs.cc.o.d"
  "CMakeFiles/memtier_apps.dir/cc.cc.o"
  "CMakeFiles/memtier_apps.dir/cc.cc.o.d"
  "CMakeFiles/memtier_apps.dir/pagerank.cc.o"
  "CMakeFiles/memtier_apps.dir/pagerank.cc.o.d"
  "CMakeFiles/memtier_apps.dir/sssp.cc.o"
  "CMakeFiles/memtier_apps.dir/sssp.cc.o.d"
  "libmemtier_apps.a"
  "libmemtier_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memtier_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libmemtier_graph.a"
)

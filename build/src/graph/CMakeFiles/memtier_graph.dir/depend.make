# Empty dependencies file for memtier_graph.
# This may be replaced when dependencies are built.

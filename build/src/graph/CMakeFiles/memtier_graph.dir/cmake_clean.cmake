file(REMOVE_RECURSE
  "CMakeFiles/memtier_graph.dir/generators.cc.o"
  "CMakeFiles/memtier_graph.dir/generators.cc.o.d"
  "CMakeFiles/memtier_graph.dir/graph.cc.o"
  "CMakeFiles/memtier_graph.dir/graph.cc.o.d"
  "CMakeFiles/memtier_graph.dir/sim_graph.cc.o"
  "CMakeFiles/memtier_graph.dir/sim_graph.cc.o.d"
  "libmemtier_graph.a"
  "libmemtier_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memtier_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

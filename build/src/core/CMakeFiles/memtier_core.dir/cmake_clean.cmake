file(REMOVE_RECURSE
  "CMakeFiles/memtier_core.dir/dynamic_tiering.cc.o"
  "CMakeFiles/memtier_core.dir/dynamic_tiering.cc.o.d"
  "CMakeFiles/memtier_core.dir/object_planner.cc.o"
  "CMakeFiles/memtier_core.dir/object_planner.cc.o.d"
  "CMakeFiles/memtier_core.dir/placement_plan.cc.o"
  "CMakeFiles/memtier_core.dir/placement_plan.cc.o.d"
  "libmemtier_core.a"
  "libmemtier_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memtier_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

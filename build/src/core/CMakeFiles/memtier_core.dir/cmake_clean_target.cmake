file(REMOVE_RECURSE
  "libmemtier_core.a"
)

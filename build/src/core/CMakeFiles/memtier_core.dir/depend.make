# Empty dependencies file for memtier_core.
# This may be replaced when dependencies are built.

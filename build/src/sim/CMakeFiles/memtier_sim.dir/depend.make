# Empty dependencies file for memtier_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libmemtier_sim.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/memtier_sim.dir/engine.cc.o"
  "CMakeFiles/memtier_sim.dir/engine.cc.o.d"
  "CMakeFiles/memtier_sim.dir/thread_context.cc.o"
  "CMakeFiles/memtier_sim.dir/thread_context.cc.o.d"
  "libmemtier_sim.a"
  "libmemtier_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memtier_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

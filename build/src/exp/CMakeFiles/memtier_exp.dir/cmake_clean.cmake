file(REMOVE_RECURSE
  "CMakeFiles/memtier_exp.dir/report.cc.o"
  "CMakeFiles/memtier_exp.dir/report.cc.o.d"
  "CMakeFiles/memtier_exp.dir/runner.cc.o"
  "CMakeFiles/memtier_exp.dir/runner.cc.o.d"
  "CMakeFiles/memtier_exp.dir/workloads.cc.o"
  "CMakeFiles/memtier_exp.dir/workloads.cc.o.d"
  "libmemtier_exp.a"
  "libmemtier_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memtier_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libmemtier_exp.a"
)

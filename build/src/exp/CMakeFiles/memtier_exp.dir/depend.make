# Empty dependencies file for memtier_exp.
# This may be replaced when dependencies are built.

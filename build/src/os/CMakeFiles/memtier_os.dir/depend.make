# Empty dependencies file for memtier_os.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/memtier_os.dir/address_space.cc.o"
  "CMakeFiles/memtier_os.dir/address_space.cc.o.d"
  "CMakeFiles/memtier_os.dir/kernel.cc.o"
  "CMakeFiles/memtier_os.dir/kernel.cc.o.d"
  "CMakeFiles/memtier_os.dir/page_table.cc.o"
  "CMakeFiles/memtier_os.dir/page_table.cc.o.d"
  "CMakeFiles/memtier_os.dir/physical_memory.cc.o"
  "CMakeFiles/memtier_os.dir/physical_memory.cc.o.d"
  "libmemtier_os.a"
  "libmemtier_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memtier_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

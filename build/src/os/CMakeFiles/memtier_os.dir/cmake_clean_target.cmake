file(REMOVE_RECURSE
  "libmemtier_os.a"
)

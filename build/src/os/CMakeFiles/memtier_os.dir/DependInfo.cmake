
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/address_space.cc" "src/os/CMakeFiles/memtier_os.dir/address_space.cc.o" "gcc" "src/os/CMakeFiles/memtier_os.dir/address_space.cc.o.d"
  "/root/repo/src/os/kernel.cc" "src/os/CMakeFiles/memtier_os.dir/kernel.cc.o" "gcc" "src/os/CMakeFiles/memtier_os.dir/kernel.cc.o.d"
  "/root/repo/src/os/page_table.cc" "src/os/CMakeFiles/memtier_os.dir/page_table.cc.o" "gcc" "src/os/CMakeFiles/memtier_os.dir/page_table.cc.o.d"
  "/root/repo/src/os/physical_memory.cc" "src/os/CMakeFiles/memtier_os.dir/physical_memory.cc.o" "gcc" "src/os/CMakeFiles/memtier_os.dir/physical_memory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/memtier_base.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/memtier_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for memtier_cache.
# This may be replaced when dependencies are built.

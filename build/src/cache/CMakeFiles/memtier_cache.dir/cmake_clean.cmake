file(REMOVE_RECURSE
  "CMakeFiles/memtier_cache.dir/line_fill_buffer.cc.o"
  "CMakeFiles/memtier_cache.dir/line_fill_buffer.cc.o.d"
  "CMakeFiles/memtier_cache.dir/set_assoc_cache.cc.o"
  "CMakeFiles/memtier_cache.dir/set_assoc_cache.cc.o.d"
  "CMakeFiles/memtier_cache.dir/tlb.cc.o"
  "CMakeFiles/memtier_cache.dir/tlb.cc.o.d"
  "libmemtier_cache.a"
  "libmemtier_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memtier_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

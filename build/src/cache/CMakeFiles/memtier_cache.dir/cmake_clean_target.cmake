file(REMOVE_RECURSE
  "libmemtier_cache.a"
)

/**
 * @file
 * Unit tests for the runtime layer: SimVector, SimHeap (object
 * tracking, advisor), SimFile.
 */

#include <gtest/gtest.h>

#include "runtime/sim_file.h"
#include "runtime/sim_heap.h"
#include "runtime/sim_vector.h"

namespace memtier {
namespace {

SystemConfig
tinyConfig()
{
    SystemConfig cfg;
    cfg.dram = makeDramParams(512 * kPageSize);
    cfg.nvm = makeNvmParams(2048 * kPageSize);
    cfg.numThreads = 2;
    return cfg;
}

TEST(SimVector, GetSetRoundTrip)
{
    Engine eng(tinyConfig());
    SimHeap heap(eng);
    ThreadContext &t = eng.thread(0);
    auto v = heap.alloc<std::int64_t>(t, "v", 100);
    for (std::uint64_t i = 0; i < 100; ++i)
        v.set(t, i, static_cast<std::int64_t>(i * 3));
    for (std::uint64_t i = 0; i < 100; ++i)
        EXPECT_EQ(v.get(t, i), static_cast<std::int64_t>(i * 3));
    heap.free(t, v);
}

TEST(SimVector, AccessesAreTimed)
{
    Engine eng(tinyConfig());
    SimHeap heap(eng);
    ThreadContext &t = eng.thread(0);
    auto v = heap.alloc<std::int32_t>(t, "v", 16);
    const Cycles before = t.clock();
    v.set(t, 0, 42);
    EXPECT_GT(t.clock(), before);
    heap.free(t, v);
}

TEST(SimVector, UpdateReadsModifiesWrites)
{
    Engine eng(tinyConfig());
    SimHeap heap(eng);
    ThreadContext &t = eng.thread(0);
    auto v = heap.alloc<double>(t, "v", 4);
    v.set(t, 2, 1.5);
    v.update(t, 2, [](double x) { return x * 2.0; });
    EXPECT_DOUBLE_EQ(v.get(t, 2), 3.0);
    heap.free(t, v);
}

TEST(SimVector, AddrOfElements)
{
    Engine eng(tinyConfig());
    SimHeap heap(eng);
    ThreadContext &t = eng.thread(0);
    auto v = heap.alloc<std::int32_t>(t, "v", 8);
    EXPECT_EQ(v.addrOf(0), v.base());
    EXPECT_EQ(v.addrOf(3), v.base() + 12);
    EXPECT_EQ(v.base() % kPageSize, 0u);  // Page aligned.
    heap.free(t, v);
}

TEST(SimVector, InvalidHandle)
{
    SimVector<int> v;
    EXPECT_FALSE(v.valid());
}

TEST(SimHeap, ObjectsGetDistinctIdsAndRegions)
{
    Engine eng(tinyConfig());
    SimHeap heap(eng);
    ThreadContext &t = eng.thread(0);
    auto a = heap.alloc<std::int32_t>(t, "a", 1024);
    auto b = heap.alloc<std::int32_t>(t, "b", 1024);
    EXPECT_NE(a.base(), b.base());
    EXPECT_EQ(heap.allocatedObjects(), 2);
    EXPECT_EQ(heap.liveAllocations(), 2u);
    const Vma *vma = eng.kernel().addressSpace().find(a.base());
    ASSERT_NE(vma, nullptr);
    EXPECT_EQ(vma->site, "a");
    heap.free(t, a);
    heap.free(t, b);
    EXPECT_EQ(heap.liveAllocations(), 0u);
}

TEST(SimHeap, FreeInvalidatesHandle)
{
    Engine eng(tinyConfig());
    SimHeap heap(eng);
    ThreadContext &t = eng.thread(0);
    auto a = heap.alloc<std::int32_t>(t, "a", 4);
    heap.free(t, a);
    EXPECT_FALSE(a.valid());
}

/** Advisor that binds everything to one node and counts queries. */
class CountingAdvisor : public PlacementAdvisor
{
  public:
    std::optional<MemPolicy>
    policyFor(const std::string &, std::uint64_t) override
    {
        ++queries;
        return MemPolicy::bind(MemNode::NVM);
    }
    int queries = 0;
};

TEST(SimHeap, AdvisorConsultedAndApplied)
{
    Engine eng(tinyConfig());
    SimHeap heap(eng);
    CountingAdvisor advisor;
    heap.setAdvisor(&advisor);
    ThreadContext &t = eng.thread(0);
    auto a = heap.alloc<std::int64_t>(t, "a", 1024);
    EXPECT_EQ(advisor.queries, 1);
    a.set(t, 0, 7);  // First touch.
    EXPECT_EQ(eng.kernel().nodeOf(pageOf(a.base())), MemNode::NVM);
    heap.free(t, a);
}

TEST(SimFile, SequentialReadChargesOnce)
{
    Engine eng(tinyConfig());
    ThreadContext &t = eng.thread(0);
    SimFile f(eng, "data.sg", 4 * kPageSize);
    const Cycles before = t.clock();
    f.read(t, 0, 4 * kPageSize);
    const Cycles first = t.clock() - before;
    const Cycles mid = t.clock();
    f.read(t, 0, 4 * kPageSize);
    const Cycles second = t.clock() - mid;
    EXPECT_GT(first, second);  // Disk fetch only the first time.
    EXPECT_EQ(eng.kernel().numastat().cachePages[0], 4u);
}

TEST(SimFile, PartialReadTouchesOnlyItsPages)
{
    Engine eng(tinyConfig());
    ThreadContext &t = eng.thread(0);
    SimFile f(eng, "data.sg", 8 * kPageSize);
    f.read(t, kPageSize, 2 * kPageSize);
    EXPECT_EQ(eng.kernel().numastat().cachePages[0], 2u);
}

TEST(SimFile, SizeExposed)
{
    Engine eng(tinyConfig());
    SimFile f(eng, "data.sg", 12345);
    EXPECT_EQ(f.size(), 12345u);
}

}  // namespace
}  // namespace memtier

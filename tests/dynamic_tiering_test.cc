/**
 * @file
 * Tests for the dynamic object-level tiering extension and the kernel's
 * object-migration API it builds on.
 */

#include <gtest/gtest.h>

#include "core/dynamic_tiering.h"
#include "exp/runner.h"
#include "profile/analysis.h"
#include "runtime/sim_heap.h"

namespace memtier {
namespace {

SystemConfig
tinyConfig()
{
    SystemConfig cfg;
    cfg.dram = makeDramParams(256 * kPageSize);
    cfg.nvm = makeNvmParams(1024 * kPageSize);
    cfg.numThreads = 2;
    cfg.autonumaEnabled = false;  // The dynamic policy replaces it.
    cfg.tieringKernel = true;
    return cfg;
}

// ----------------------------------------------- Kernel::migratePages

TEST(MigratePages, MovesRangeToNvmAndBack)
{
    Engine eng(tinyConfig());
    SimHeap heap(eng);
    ThreadContext &t = eng.thread(0);
    auto v = heap.alloc<std::int64_t>(t, "obj", 8 * 512);  // 8 pages.
    for (std::uint64_t i = 0; i < v.size(); i += 512)
        v.set(t, i, 1);  // Touch each page (lands on DRAM).

    Kernel &kern = eng.kernel();
    const Addr end = v.base() + v.size() * sizeof(std::int64_t);
    EXPECT_EQ(kern.migratePages(v.base(), end, MemNode::NVM, 100, 1000),
              8u);
    for (PageNum vpn = pageOf(v.base()); vpn < pageOf(end); ++vpn)
        EXPECT_EQ(kern.nodeOf(vpn), MemNode::NVM);

    EXPECT_EQ(kern.migratePages(v.base(), end, MemNode::DRAM, 100, 2000),
              8u);
    for (PageNum vpn = pageOf(v.base()); vpn < pageOf(end); ++vpn)
        EXPECT_EQ(kern.nodeOf(vpn), MemNode::DRAM);
    heap.free(t, v);
}

TEST(MigratePages, RespectsBudget)
{
    Engine eng(tinyConfig());
    SimHeap heap(eng);
    ThreadContext &t = eng.thread(0);
    auto v = heap.alloc<std::int64_t>(t, "obj", 8 * 512);
    for (std::uint64_t i = 0; i < v.size(); i += 512)
        v.set(t, i, 1);
    const Addr end = v.base() + v.size() * sizeof(std::int64_t);
    EXPECT_EQ(eng.kernel().migratePages(v.base(), end, MemNode::NVM, 3,
                                        1000),
              3u);
    heap.free(t, v);
}

TEST(MigratePages, SkipsPinnedPages)
{
    Engine eng(tinyConfig());
    SimHeap heap(eng);
    ThreadContext &t = eng.thread(0);
    auto v = heap.alloc<std::int64_t>(t, "obj", 512);
    eng.kernel().mbind(v.base(), MemPolicy::bind(MemNode::DRAM));
    v.set(t, 0, 1);
    const Addr end = v.base() + kPageSize;
    EXPECT_EQ(eng.kernel().migratePages(v.base(), end, MemNode::NVM,
                                        100, 1000),
              0u);
    heap.free(t, v);
}

TEST(MigratePages, NoopWhenAlreadyOnTarget)
{
    Engine eng(tinyConfig());
    SimHeap heap(eng);
    ThreadContext &t = eng.thread(0);
    auto v = heap.alloc<std::int64_t>(t, "obj", 512);
    v.set(t, 0, 1);
    const Addr end = v.base() + kPageSize;
    EXPECT_EQ(eng.kernel().migratePages(v.base(), end, MemNode::DRAM,
                                        100, 1000),
              0u);
    heap.free(t, v);
}

// --------------------------------------------- DynamicObjectTiering

TEST(DynamicTiering, HotObjectPulledToDram)
{
    Engine eng(tinyConfig());
    MmapTracker tracker;
    eng.kernel().setSyscallObserver(&tracker);
    DynamicTieringParams params;
    params.interval = secondsToCycles(0.0001);
    DynamicObjectTiering policy(eng, tracker, params);

    SimHeap heap(eng);
    ThreadContext &t = eng.thread(0);
    // Cold filler takes the DRAM; the hot object (too big for the
    // caches) lands on NVM. The policy attaches only afterwards so the
    // initial placement is the kernel's own.
    auto filler = heap.alloc<std::int64_t>(t, "cold", 250 * 512);
    for (std::uint64_t i = 0; i < filler.size(); i += 512)
        filler.set(t, i, 1);
    auto hot = heap.alloc<std::int64_t>(t, "hot", 200 * 512);
    for (std::uint64_t i = 0; i < hot.size(); i += 512)
        hot.set(t, i, 1);
    // At least the tail of the hot object overflowed to NVM (kswapd
    // keeps only a small DRAM reserve free).
    const PageNum hot_last =
        pageOf(hot.addrOf(hot.size() - 1));
    ASSERT_EQ(eng.kernel().nodeOf(hot_last), MemNode::NVM);
    policy.install();

    // Hammer the hot object long enough for several rebalances.
    Rng rng(5);
    for (int round = 0; round < 150000; ++round)
        hot.get(t, rng.nextBounded(hot.size()));

    EXPECT_GT(policy.stats().rebalances, 0u);
    EXPECT_GT(policy.stats().pagesMovedUp, 0u);
    // The hot object must now be entirely on DRAM.
    EXPECT_EQ(eng.kernel().nodeOf(hot_last), MemNode::DRAM);
    heap.free(t, hot);
    heap.free(t, filler);
}

TEST(DynamicTiering, NoMigrationWithoutTraffic)
{
    Engine eng(tinyConfig());
    MmapTracker tracker;
    eng.kernel().setSyscallObserver(&tracker);
    DynamicTieringParams params;
    params.interval = secondsToCycles(0.001);
    DynamicObjectTiering policy(eng, tracker, params);
    policy.install();

    SimHeap heap(eng);
    ThreadContext &t = eng.thread(0);
    auto v = heap.alloc<std::int64_t>(t, "idle", 512);
    v.set(t, 0, 1);
    // Advance time with cache-hit accesses (no external traffic).
    for (int i = 0; i < 50000; ++i)
        v.get(t, 0);
    EXPECT_EQ(policy.stats().pagesMovedUp, 0u);
    EXPECT_EQ(policy.stats().pagesMovedDown, 0u);
    heap.free(t, v);
}

TEST(DynamicTiering, RunnerModeProducesIdenticalResults)
{
    RunConfig rc;
    rc.workload.app = App::BFS;
    rc.workload.kind = GraphKind::Kron;
    rc.workload.scale = 13;
    rc.workload.trials = 2;
    rc.sys.dram = makeDramParams(512 * kPageSize);
    rc.sys.nvm = makeNvmParams(2048 * kPageSize);
    const RunResult a = runWorkload(rc);

    RunConfig rc2 = rc;
    rc2.mode = Mode::ObjectDynamic;
    const RunResult d = runWorkload(rc2);
    EXPECT_EQ(a.outputChecksum, d.outputChecksum);
    // The dynamic policy migrates via the kernel, so its activity shows
    // up in the migration counters even with AutoNUMA off.
    EXPECT_EQ(d.vmstat.numaHintFaults, 0u);  // No scanner.
}

TEST(DynamicTiering, StatsExposeDirections)
{
    Engine eng(tinyConfig());
    MmapTracker tracker;
    eng.kernel().setSyscallObserver(&tracker);
    DynamicObjectTiering policy(eng, tracker);
    const DynamicTieringStats &st = policy.stats();
    EXPECT_EQ(st.rebalances, 0u);
    EXPECT_EQ(st.pagesMovedUp + st.pagesMovedDown, 0u);
}

}  // namespace
}  // namespace memtier

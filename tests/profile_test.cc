/**
 * @file
 * Unit tests for the profiling infrastructure: the PEBS-style sampler,
 * the mmap tracker and every sample analysis of Sections 5 and 6.
 */

#include <gtest/gtest.h>

#include "profile/analysis.h"
#include "profile/mmap_tracker.h"
#include "profile/perf_mem.h"

namespace memtier {
namespace {

/** Handy sample builder. */
MemorySample
sample(Addr vaddr, MemLevel level, Cycles time = 0, Cycles latency = 100,
       bool tlb_miss = false)
{
    MemorySample s;
    s.vaddr = vaddr;
    s.level = level;
    s.time = time;
    s.latency = latency;
    s.tlbMiss = tlb_miss;
    return s;
}

AccessRecord
record(ThreadId tid, MemOp op = MemOp::Load)
{
    AccessRecord r;
    r.tid = tid;
    r.op = op;
    r.level = MemLevel::L1;
    r.latency = 10;
    return r;
}

// -------------------------------------------------------- PerfMemSampler

TEST(PerfMemSampler, SamplesAtConfiguredRate)
{
    SamplerParams p;
    p.period = 10;
    PerfMemSampler sampler(p);
    for (int i = 0; i < 10000; ++i)
        sampler.onAccess(record(0));
    EXPECT_EQ(sampler.loadsSeen(), 10000u);
    // ~1000 samples expected; jitter is +-12.5%.
    EXPECT_NEAR(static_cast<double>(sampler.samples().size()), 1000.0,
                150.0);
}

TEST(PerfMemSampler, StoresSkippedByDefault)
{
    SamplerParams p;
    p.period = 1;
    PerfMemSampler sampler(p);
    for (int i = 0; i < 100; ++i)
        sampler.onAccess(record(0, MemOp::Store));
    EXPECT_TRUE(sampler.samples().empty());
    EXPECT_EQ(sampler.loadsSeen(), 0u);
}

TEST(PerfMemSampler, StoresRecordedAtL1WhenEnabled)
{
    SamplerParams p;
    p.period = 1;
    p.recordStores = true;
    PerfMemSampler sampler(p);
    AccessRecord r = record(0, MemOp::Store);
    r.level = MemLevel::NVM;  // perf-mem cannot see store data source.
    sampler.onAccess(r);
    sampler.onAccess(r);
    ASSERT_FALSE(sampler.samples().empty());
    EXPECT_EQ(sampler.samples()[0].level, MemLevel::L1);
}

TEST(PerfMemSampler, PerThreadCountdowns)
{
    SamplerParams p;
    p.period = 100;
    PerfMemSampler sampler(p);
    // One access on each of many threads: every thread's first access
    // is sampled (countdown starts at zero).
    for (ThreadId t = 0; t < 8; ++t)
        sampler.onAccess(record(t));
    EXPECT_EQ(sampler.samples().size(), 8u);
}

TEST(PerfMemSampler, TakeSamplesMovesOut)
{
    SamplerParams p;
    p.period = 1;
    PerfMemSampler sampler(p);
    sampler.onAccess(record(0));
    auto taken = sampler.takeSamples();
    EXPECT_EQ(taken.size(), 1u);
    EXPECT_TRUE(sampler.samples().empty());
}

// ------------------------------------------------------------- Analyses

TEST(Analysis, LevelSharesAndExternalFraction)
{
    std::vector<MemorySample> s{
        sample(0, MemLevel::L1), sample(0, MemLevel::L1),
        sample(0, MemLevel::DRAM), sample(0, MemLevel::NVM)};
    const LevelShares ls = levelShares(s);
    EXPECT_DOUBLE_EQ(ls.frac[static_cast<int>(MemLevel::L1)], 0.5);
    EXPECT_DOUBLE_EQ(ls.externalFrac, 0.5);
    EXPECT_EQ(ls.total, 4u);
}

TEST(Analysis, LevelSharesEmpty)
{
    const LevelShares ls = levelShares({});
    EXPECT_EQ(ls.total, 0u);
    EXPECT_DOUBLE_EQ(ls.externalFrac, 0.0);
}

TEST(Analysis, ExternalSplitIgnoresCacheLevels)
{
    std::vector<MemorySample> s{
        sample(0, MemLevel::L1), sample(0, MemLevel::DRAM),
        sample(0, MemLevel::DRAM), sample(0, MemLevel::NVM)};
    const ExternalSplit es = externalSplit(s);
    EXPECT_EQ(es.externalSamples, 3u);
    EXPECT_NEAR(es.dramFrac, 2.0 / 3.0, 1e-12);
    EXPECT_NEAR(es.nvmFrac, 1.0 / 3.0, 1e-12);
}

TEST(Analysis, CostSplitWeightsByLatency)
{
    // One NVM sample costing 3x the DRAM one: Table 2's point that cost
    // shares exceed access shares on NVM.
    std::vector<MemorySample> s{
        sample(0, MemLevel::DRAM, 0, 300),
        sample(0, MemLevel::NVM, 0, 900)};
    const CostSplit cs = externalCostSplit(s);
    EXPECT_NEAR(cs.dramCostFrac, 0.25, 1e-12);
    EXPECT_NEAR(cs.nvmCostFrac, 0.75, 1e-12);
}

TEST(Analysis, TlbCostMatrixMeans)
{
    std::vector<MemorySample> s{
        sample(0, MemLevel::DRAM, 0, 300, false),
        sample(0, MemLevel::DRAM, 0, 500, true),
        sample(0, MemLevel::NVM, 0, 1500, true),
        sample(0, MemLevel::NVM, 0, 2500, true),
        sample(0, MemLevel::L1, 0, 4, true)};  // Ignored: not external.
    const TlbCostMatrix m = tlbCostMatrix(s);
    EXPECT_DOUBLE_EQ(m.mean[0][0], 300.0);
    EXPECT_DOUBLE_EQ(m.mean[0][1], 500.0);
    EXPECT_DOUBLE_EQ(m.mean[1][1], 2000.0);
    EXPECT_EQ(m.count[1][0], 0u);
    EXPECT_EQ(m.count[1][1], 2u);
}

TEST(Analysis, TouchBucketsClassifyPages)
{
    // Page A touched once, page B twice, page C three times.
    const Addr a = 0 * kPageSize;
    const Addr b = 1 * kPageSize;
    const Addr c = 2 * kPageSize;
    std::vector<MemorySample> s{
        sample(a, MemLevel::DRAM), sample(b, MemLevel::DRAM),
        sample(b, MemLevel::NVM),  sample(c, MemLevel::NVM),
        sample(c, MemLevel::DRAM), sample(c, MemLevel::NVM),
        sample(a + 64, MemLevel::L2)};  // Cache hit: not a touch.
    const TouchBuckets tb = pageTouchBuckets(s);
    EXPECT_EQ(tb.touchedPages, 3u);
    EXPECT_EQ(tb.externalAccesses, 6u);
    EXPECT_NEAR(tb.pagesFrac[0], 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(tb.pagesFrac[1], 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(tb.pagesFrac[2], 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(tb.accessFrac[0], 1.0 / 6.0, 1e-12);
    EXPECT_NEAR(tb.accessFrac[1], 2.0 / 6.0, 1e-12);
    EXPECT_NEAR(tb.accessFrac[2], 3.0 / 6.0, 1e-12);
}

TEST(Analysis, TwoTouchPromotedFraction)
{
    const Addr a = 0 * kPageSize;  // NVM -> DRAM: promoted.
    const Addr b = 1 * kPageSize;  // DRAM -> DRAM: not promoted.
    std::vector<MemorySample> s{
        sample(a, MemLevel::NVM, 10), sample(a, MemLevel::DRAM, 20),
        sample(b, MemLevel::DRAM, 10), sample(b, MemLevel::DRAM, 20)};
    EXPECT_DOUBLE_EQ(twoTouchPromotedFraction(s), 0.5);
}

// ----------------------------------------------------------- MmapTracker

TEST(MmapTracker, RecordsAllocationsAndFrees)
{
    MmapTracker tr;
    tr.onMmap(100, 0x1000, 2 * kPageSize, 0, "a");
    tr.onMunmap(500, 0x1000, 2 * kPageSize, 0);
    ASSERT_EQ(tr.records().size(), 1u);
    const AllocationRecord &r = tr.records()[0];
    EXPECT_EQ(r.site, "a");
    EXPECT_EQ(r.allocTime, 100u);
    EXPECT_EQ(r.freeTime, 500u);
    EXPECT_FALSE(r.live());
}

TEST(MmapTracker, IgnoresPageCacheObjects)
{
    MmapTracker tr;
    tr.onMmap(100, 0x1000, kPageSize, -2, "pagecache:f");
    EXPECT_TRUE(tr.records().empty());
}

TEST(MmapTracker, ObjectAtRespectsLifetime)
{
    MmapTracker tr;
    tr.onMmap(100, 0x1000, kPageSize, 0, "a");
    tr.onMunmap(500, 0x1000, kPageSize, 0);
    EXPECT_EQ(tr.objectAt(0x1000, 50), kNoObject);   // Before alloc.
    EXPECT_EQ(tr.objectAt(0x1000, 200), 0);          // Live.
    EXPECT_EQ(tr.objectAt(0x1000, 600), kNoObject);  // After free.
}

TEST(MmapTracker, ObjectAtByRange)
{
    MmapTracker tr;
    tr.onMmap(0, 0x10000, 4 * kPageSize, 0, "a");
    tr.onMmap(0, 0x20000, 4 * kPageSize, 1, "b");
    EXPECT_EQ(tr.objectAt(0x10000 + 3 * kPageSize, 10), 0);
    EXPECT_EQ(tr.objectAt(0x20000, 10), 1);
    EXPECT_EQ(tr.objectAt(0x30000, 10), kNoObject);
    EXPECT_EQ(tr.objectAt(0x0, 10), kNoObject);
}

TEST(MmapTracker, LiveBytesSeriesTracksChurn)
{
    MmapTracker tr;
    tr.onMmap(secondsToCycles(1), 0x1000, 100, 0, "a");
    tr.onMmap(secondsToCycles(2), 0x9000, 50, 1, "b");
    tr.onMunmap(secondsToCycles(3), 0x1000, 100, 0);
    const TimeSeries ts = tr.liveBytesSeries();
    ASSERT_EQ(ts.size(), 3u);
    EXPECT_DOUBLE_EQ(ts.points()[0].value, 100.0);
    EXPECT_DOUBLE_EQ(ts.points()[1].value, 150.0);
    EXPECT_DOUBLE_EQ(ts.points()[2].value, 50.0);
}

TEST(MmapTracker, PeakLiveBytesBySiteHandlesReuse)
{
    MmapTracker tr;
    // Site "w" allocates twice sequentially (not concurrently).
    tr.onMmap(10, 0x1000, 100, 0, "w");
    tr.onMunmap(20, 0x1000, 100, 0);
    tr.onMmap(30, 0x9000, 100, 1, "w");
    // Site "x" holds two allocations at once.
    tr.onMmap(40, 0x20000, 60, 2, "x");
    tr.onMmap(50, 0x30000, 60, 3, "x");
    const auto peaks = tr.peakLiveBytesBySite();
    std::map<std::string, std::uint64_t> m(peaks.begin(), peaks.end());
    EXPECT_EQ(m["w"], 100u);
    EXPECT_EQ(m["x"], 120u);
}

// ----------------------------------------------- Sample->object mapping

TEST(Analysis, ObjectAccessCountsAggregate)
{
    MmapTracker tr;
    tr.onMmap(0, 0x10000, 4 * kPageSize, 0, "hot");
    tr.onMmap(0, 0x20000, 4 * kPageSize, 1, "cold");
    std::vector<MemorySample> s{
        sample(0x10000, MemLevel::NVM, 10),
        sample(0x10040, MemLevel::NVM, 20),
        sample(0x10080, MemLevel::DRAM, 30),
        sample(0x20000, MemLevel::DRAM, 40),
        sample(0x20000, MemLevel::L2, 50),
        sample(0x99000, MemLevel::DRAM, 60)};  // Unmapped: dropped.
    const auto counts = objectAccessCounts(s, tr);
    ASSERT_EQ(counts.size(), 2u);
    EXPECT_EQ(counts[0].object, 0);
    EXPECT_EQ(counts[0].nvmSamples, 2u);
    EXPECT_EQ(counts[0].dramSamples, 1u);
    EXPECT_EQ(counts[0].totalSamples, 3u);
    EXPECT_EQ(counts[1].totalSamples, 2u);
    EXPECT_EQ(hottestNvmObject(counts), 0);
}

TEST(Analysis, HottestNvmObjectNoneWithoutNvmSamples)
{
    MmapTracker tr;
    tr.onMmap(0, 0x10000, kPageSize, 0, "a");
    std::vector<MemorySample> s{sample(0x10000, MemLevel::DRAM, 10)};
    EXPECT_EQ(hottestNvmObject(objectAccessCounts(s, tr)), kNoObject);
}

TEST(Analysis, TwoTouchReuseForObject)
{
    MmapTracker tr;
    tr.onMmap(0, 0x10000, 16 * kPageSize, 0, "obj");
    const Cycles sec = kCyclesPerSecond;
    std::vector<MemorySample> s{
        // Page 0: two touches, NVM involved, gap 2s -> counted.
        sample(0x10000, MemLevel::NVM, 1 * sec),
        sample(0x10000, MemLevel::DRAM, 3 * sec),
        // Page 1: three touches -> excluded.
        sample(0x11000, MemLevel::NVM, 1 * sec),
        sample(0x11000, MemLevel::NVM, 2 * sec),
        sample(0x11000, MemLevel::NVM, 3 * sec),
        // Page 2: two touches but never NVM -> excluded.
        sample(0x12000, MemLevel::DRAM, 1 * sec),
        sample(0x12000, MemLevel::DRAM, 2 * sec)};
    const PercentileSummary reuse = twoTouchReuseSeconds(s, 0, tr);
    ASSERT_EQ(reuse.count(), 1u);
    EXPECT_NEAR(reuse.max(), 2.0, 1e-9);
}

TEST(Analysis, SiteProfilesRankedByScore)
{
    MmapTracker tr;
    tr.onMmap(0, 0x10000, 1 * kPageSize, 0, "small_hot");
    tr.onMmap(0, 0x20000, 16 * kPageSize, 1, "big_warm");
    std::vector<MemorySample> s;
    for (int i = 0; i < 10; ++i)
        s.push_back(sample(0x10000 + i * 64, MemLevel::NVM, 10));
    for (int i = 0; i < 20; ++i)
        s.push_back(sample(0x20000 + i * 64, MemLevel::DRAM, 10));
    const auto profiles = siteProfiles(s, tr);
    ASSERT_EQ(profiles.size(), 2u);
    // small_hot: 10 samples / 4 KiB >> big_warm: 20 / 64 KiB.
    EXPECT_EQ(profiles[0].site, "small_hot");
    EXPECT_GT(profiles[0].score(), profiles[1].score());
    EXPECT_EQ(profiles[0].nvmSamples, 10u);
    EXPECT_EQ(profiles[1].externalSamples, 20u);
}

TEST(Analysis, SiteProfilesIncludeUnsampledSites)
{
    MmapTracker tr;
    tr.onMmap(0, 0x10000, kPageSize, 0, "quiet");
    const auto profiles = siteProfiles({}, tr);
    ASSERT_EQ(profiles.size(), 1u);
    EXPECT_EQ(profiles[0].totalSamples, 0u);
    EXPECT_EQ(profiles[0].peakLiveBytes, kPageSize);
}

}  // namespace
}  // namespace memtier

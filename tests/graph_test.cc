/**
 * @file
 * Unit tests for the graph library: CSR construction, generators and
 * the simulated-memory graph loader.
 */

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/sim_graph.h"

namespace memtier {
namespace {

// ------------------------------------------------------------- CsrGraph

TEST(CsrGraph, BuildsSymmetricAdjacency)
{
    const EdgeList edges{{0, 1}, {1, 2}};
    const CsrGraph g = CsrGraph::fromEdgeList(3, edges);
    EXPECT_EQ(g.numNodes(), 3);
    EXPECT_EQ(g.numEdges(), 4);  // Both directions.
    EXPECT_EQ(g.degree(0), 1);
    EXPECT_EQ(g.degree(1), 2);
    EXPECT_EQ(g.degree(2), 1);
    EXPECT_EQ(g.neighbors(1)[0], 0);
    EXPECT_EQ(g.neighbors(1)[1], 2);
}

TEST(CsrGraph, RemovesSelfLoops)
{
    const EdgeList edges{{0, 0}, {0, 1}};
    const CsrGraph g = CsrGraph::fromEdgeList(2, edges);
    EXPECT_EQ(g.numEdges(), 2);
    EXPECT_EQ(g.degree(0), 1);
}

TEST(CsrGraph, DeduplicatesParallelEdges)
{
    const EdgeList edges{{0, 1}, {0, 1}, {1, 0}};
    const CsrGraph g = CsrGraph::fromEdgeList(2, edges);
    EXPECT_EQ(g.numEdges(), 2);
}

TEST(CsrGraph, NeighborsSortedAscending)
{
    const EdgeList edges{{0, 3}, {0, 1}, {0, 2}};
    const CsrGraph g = CsrGraph::fromEdgeList(4, edges);
    const auto n = g.neighbors(0);
    EXPECT_TRUE(std::is_sorted(n.begin(), n.end()));
}

TEST(CsrGraph, IsolatedVerticesHaveZeroDegree)
{
    const EdgeList edges{{0, 1}};
    const CsrGraph g = CsrGraph::fromEdgeList(5, edges);
    EXPECT_EQ(g.degree(3), 0);
    EXPECT_TRUE(g.neighbors(3).empty());
}

TEST(CsrGraph, OffsetsAreMonotone)
{
    const CsrGraph g =
        CsrGraph::fromEdgeList(8, generateUrand(3, 4, 5));
    const auto &off = g.offsets();
    EXPECT_EQ(off.size(), 9u);
    EXPECT_TRUE(std::is_sorted(off.begin(), off.end()));
    EXPECT_EQ(off.back(), g.numEdges());
}

TEST(CsrGraph, SerializedBytesLayout)
{
    const EdgeList edges{{0, 1}};
    const CsrGraph g = CsrGraph::fromEdgeList(2, edges);
    // Header (3x int64) + offsets (3x int64) + adjacency (2x int32).
    EXPECT_EQ(g.serializedBytes(), 24u + 24u + 8u);
}

// ----------------------------------------------------------- Generators

TEST(Generators, KronDeterministic)
{
    const EdgeList a = generateKron(8, 4, 7);
    const EdgeList b = generateKron(8, 4, 7);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].u, b[i].u);
        EXPECT_EQ(a[i].v, b[i].v);
    }
}

TEST(Generators, KronEdgeCountAndRange)
{
    const EdgeList edges = generateKron(10, 16, 1);
    EXPECT_EQ(edges.size(), (1u << 10) * 16u);
    for (const Edge &e : edges) {
        EXPECT_GE(e.u, 0);
        EXPECT_LT(e.u, 1 << 10);
        EXPECT_GE(e.v, 0);
        EXPECT_LT(e.v, 1 << 10);
    }
}

TEST(Generators, UrandEdgeCountAndRange)
{
    const EdgeList edges = generateUrand(10, 16, 1);
    EXPECT_EQ(edges.size(), (1u << 10) * 16u);
    for (const Edge &e : edges) {
        EXPECT_GE(e.u, 0);
        EXPECT_LT(e.u, 1 << 10);
    }
}

TEST(Generators, KronIsSkewedUrandIsNot)
{
    // The paper's two datasets differ exactly here: kron is power-law,
    // urand is uniform. Compare max degree.
    const CsrGraph kron = CsrGraph::fromEdgeList(
        1 << 12, generateKron(12, 16, 3));
    const CsrGraph urand = CsrGraph::fromEdgeList(
        1 << 12, generateUrand(12, 16, 3));
    std::int64_t kron_max = 0;
    std::int64_t urand_max = 0;
    for (NodeId v = 0; v < (1 << 12); ++v) {
        kron_max = std::max(kron_max, kron.degree(v));
        urand_max = std::max(urand_max, urand.degree(v));
    }
    EXPECT_GT(kron_max, 4 * urand_max);
}

TEST(Generators, SeedsProduceDifferentGraphs)
{
    const EdgeList a = generateUrand(8, 4, 1);
    const EdgeList b = generateUrand(8, 4, 2);
    int same = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        same += a[i].u == b[i].u && a[i].v == b[i].v;
    EXPECT_LT(same, static_cast<int>(a.size() / 10));
}

TEST(Generators, StreamingEmissionMatchesMaterialized)
{
    // The streaming emitters are the materializing generators' RNG
    // loops extracted verbatim; the edge sequences must be identical.
    const EdgeList kron = generateKron(9, 6, 17);
    std::size_t i = 0;
    forEachKronEdge(9, 6, 17, [&](NodeId u, NodeId v) {
        ASSERT_LT(i, kron.size());
        EXPECT_EQ(u, kron[i].u);
        EXPECT_EQ(v, kron[i].v);
        ++i;
    });
    EXPECT_EQ(i, kron.size());

    const EdgeList urand = generateUrand(9, 6, 17);
    i = 0;
    forEachUrandEdge(9, 6, 17, [&](NodeId u, NodeId v) {
        ASSERT_LT(i, urand.size());
        EXPECT_EQ(u, urand[i].u);
        EXPECT_EQ(v, urand[i].v);
        ++i;
    });
    EXPECT_EQ(i, urand.size());
}

TEST(Generators, SeedStableAtScale20)
{
    // Paper-scale seed stability, streamed so the test never holds the
    // edge list: two passes with the same seed must produce the same
    // edge checksum, a different seed must not.
    const auto checksum = [](std::uint64_t seed) {
        std::uint64_t h = 0xcbf29ce484222325ULL;
        std::uint64_t count = 0;
        forEachKronEdge(20, 16, seed, [&](NodeId u, NodeId v) {
            const std::uint64_t packed =
                (static_cast<std::uint64_t>(
                     static_cast<std::uint32_t>(u))
                 << 32) |
                static_cast<std::uint32_t>(v);
            h = (h ^ packed) * 0x100000001b3ULL;
            ++count;
        });
        EXPECT_EQ(count, (1ULL << 20) * 16);
        return h;
    };
    const std::uint64_t a = checksum(9241);
    EXPECT_EQ(checksum(9241), a);
    EXPECT_NE(checksum(9242), a);
}

TEST(Generators, DegreeDistributionSaneAtScale20)
{
    // Degree-distribution sanity at paper scale, from streamed edges
    // plus one 4 MiB count array per generator: kron must be heavily
    // skewed (power-law hubs, many isolated vertices), urand must not.
    const std::int64_t n = 1LL << 20;
    std::vector<std::uint32_t> deg(static_cast<std::size_t>(n), 0);
    forEachKronEdge(20, 16, 9241, [&](NodeId u, NodeId v) {
        ++deg[static_cast<std::size_t>(u)];
        ++deg[static_cast<std::size_t>(v)];
    });
    std::uint64_t kron_max = 0;
    std::int64_t kron_isolated = 0;
    for (const std::uint32_t d : deg) {
        kron_max = std::max<std::uint64_t>(kron_max, d);
        kron_isolated += d == 0;
    }
    // Mean (pre-dedup, both endpoints) is 32; a power-law hub must
    // dwarf it and the skew must leave many vertices untouched.
    EXPECT_GT(kron_max, 32u * 64u);
    EXPECT_GT(kron_isolated, n / 8);

    std::fill(deg.begin(), deg.end(), 0);
    forEachUrandEdge(20, 16, 9241, [&](NodeId u, NodeId v) {
        ++deg[static_cast<std::size_t>(u)];
        ++deg[static_cast<std::size_t>(v)];
    });
    std::uint64_t urand_max = 0;
    std::int64_t urand_isolated = 0;
    for (const std::uint32_t d : deg) {
        urand_max = std::max<std::uint64_t>(urand_max, d);
        urand_isolated += d == 0;
    }
    // Uniform: max degree stays within a small factor of the mean and
    // (at mean 32) isolated vertices are essentially impossible.
    EXPECT_LT(urand_max, 32u * 4u);
    EXPECT_EQ(urand_isolated, 0);
}

// ----------------------------------------------------------- SimCsrGraph

SystemConfig
tinyConfig()
{
    SystemConfig cfg;
    cfg.dram = makeDramParams(1024 * kPageSize);
    cfg.nvm = makeNvmParams(4096 * kPageSize);
    cfg.numThreads = 2;
    return cfg;
}

TEST(SimCsrGraph, LoadMirrorsHostGraph)
{
    Engine eng(tinyConfig());
    SimHeap heap(eng);
    ThreadContext &t = eng.thread(0);
    const CsrGraph host =
        CsrGraph::fromEdgeList(1 << 8, generateUrand(8, 8, 11));
    SimCsrGraph g = SimCsrGraph::load(eng, heap, t, host, "t");

    EXPECT_EQ(g.numNodes(), host.numNodes());
    EXPECT_EQ(g.numEdges(), host.numEdges());
    for (NodeId u = 0; u < host.numNodes(); ++u) {
        EXPECT_EQ(g.offset(t, u), host.offsets()[u]);
        std::vector<NodeId> got;
        g.forNeighbors(t, u, [&](NodeId v) { got.push_back(v); });
        const auto want = host.neighbors(u);
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t i = 0; i < got.size(); ++i)
            EXPECT_EQ(got[i], want[i]);
    }
    g.free(heap, t);
}

TEST(SimCsrGraph, LoadGoesThroughPageCache)
{
    Engine eng(tinyConfig());
    SimHeap heap(eng);
    ThreadContext &t = eng.thread(0);
    const CsrGraph host =
        CsrGraph::fromEdgeList(1 << 8, generateUrand(8, 8, 11));
    SimCsrGraph g = SimCsrGraph::load(eng, heap, t, host, "t");
    // Page cache now holds the whole serialized file.
    const auto stat = eng.kernel().numastat();
    const std::uint64_t cache_pages =
        stat.cachePages[0] + stat.cachePages[1];
    EXPECT_EQ(cache_pages, roundUpPages(host.serializedBytes()));
    g.free(heap, t);
}

TEST(SimCsrGraph, LoadCreatesTwoObjects)
{
    Engine eng(tinyConfig());
    SimHeap heap(eng);
    ThreadContext &t = eng.thread(0);
    const CsrGraph host =
        CsrGraph::fromEdgeList(1 << 6, generateUrand(6, 4, 11));
    SimCsrGraph g = SimCsrGraph::load(eng, heap, t, host, "t");
    EXPECT_EQ(heap.liveAllocations(), 2u);  // index + adjacency.
    g.free(heap, t);
    EXPECT_EQ(heap.liveAllocations(), 0u);
}

}  // namespace
}  // namespace memtier

/**
 * @file
 * Tests for the data-serving tier: Zipfian/open-loop request
 * generation, the KV and LSM stores against host reference models,
 * LSM flush/compaction invariants, driver determinism (same seed ->
 * bit-identical latency percentiles), and the fault-injection chaos
 * scenario with the kernel invariant checker enabled.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "base/rng.h"
#include "exp/runner.h"
#include "fault/fault_plan.h"
#include "serve/kv_store.h"
#include "serve/lsm_store.h"
#include "serve/request_gen.h"
#include "serve/serve_driver.h"

namespace memtier {
namespace {

SystemConfig
tinyConfig()
{
    SystemConfig cfg;
    cfg.dram = makeDramParams(512 * kPageSize);
    cfg.nvm = makeNvmParams(4096 * kPageSize);
    cfg.numThreads = 4;
    return cfg;
}

// ----------------------------------------------------------- generator

TEST(ZipfianKeys, DeterministicAndInRange)
{
    ZipfianKeys keys(1024, 0.99);
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t k = keys.next(a);
        EXPECT_EQ(k, keys.next(b));
        EXPECT_LT(k, 1024u);
    }
}

TEST(ZipfianKeys, SkewConcentratesOnHotKeys)
{
    const std::uint64_t n = 1024;
    ZipfianKeys zipf(n, 0.99);
    ZipfianKeys unif(n, 0.0);
    const int draws = 20000;

    auto hot_fraction = [&](const ZipfianKeys &keys) {
        Rng rng(7);
        std::map<std::uint64_t, int> counts;
        for (int i = 0; i < draws; ++i)
            ++counts[keys.next(rng)];
        int best = 0;
        for (const auto &[k, c] : counts)
            best = std::max(best, c);
        return static_cast<double>(best) / draws;
    };

    // The zipfian hottest key draws a large share; uniform's does not.
    EXPECT_GT(hot_fraction(zipf), 0.05);
    EXPECT_LT(hot_fraction(unif), 0.01);
}

TEST(ZipfianKeys, RankScramblingIsABijection)
{
    const std::uint64_t n = 256;
    ZipfianKeys keys(n, 0.5);
    std::set<std::uint64_t> seen;
    for (std::uint64_t r = 0; r < n; ++r)
        seen.insert(keys.keyOfRank(r));
    EXPECT_EQ(seen.size(), n);
}

TEST(RequestGenerator, SameSeedSameStream)
{
    GeneratorParams p;
    p.numKeys = 1 << 10;
    p.requests = 5000;
    const std::vector<ServeRequest> a = generateAll(p);
    const std::vector<ServeRequest> b = generateAll(p);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(a.size(), p.requests);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].arrival, b[i].arrival);
        EXPECT_EQ(a[i].op, b[i].op);
        EXPECT_EQ(a[i].key, b[i].key);
        EXPECT_EQ(a[i].phase, b[i].phase);
    }
}

TEST(RequestGenerator, ArrivalsIncreaseAndMixIsRoughlyConfigured)
{
    GeneratorParams p;
    p.numKeys = 1 << 10;
    p.requests = 10000;
    const std::vector<ServeRequest> reqs = generateAll(p);

    std::uint64_t gets = 0;
    std::uint64_t scans = 0;
    Cycles prev = 0;
    for (const ServeRequest &r : reqs) {
        EXPECT_GE(r.arrival, prev);
        prev = r.arrival;
        gets += r.op == ServeOp::Get;
        scans += r.op == ServeOp::Scan;
        if (r.op == ServeOp::Scan) {
            EXPECT_EQ(r.scanLength, p.scanLength);
        }
    }
    const double n = static_cast<double>(p.requests);
    EXPECT_NEAR(static_cast<double>(gets) / n, p.readFraction, 0.02);
    EXPECT_NEAR(static_cast<double>(scans) / n, p.scanFraction, 0.01);
}

TEST(RequestGenerator, StormWindowIsLabeledAndFaster)
{
    GeneratorParams p;
    RequestGenerator gen(p);

    const double in_storm = p.stormStartSec + p.stormDurationSec / 2;
    const double before = p.stormStartSec - p.stormDurationSec;
    EXPECT_EQ(gen.phaseAt(in_storm), ServePhase::Storm);
    EXPECT_NE(gen.phaseAt(before), ServePhase::Storm);
    EXPECT_GT(gen.rateAt(in_storm), 2.0 * p.baseRate);

    // Peak vs off-peak from the diurnal sin: crest above base rate,
    // trough below (clipped at 10%). Disable the storm so its window
    // cannot shadow the diurnal trough.
    GeneratorParams calm = p;
    calm.stormDurationSec = 0;
    RequestGenerator diurnal(calm);
    const double crest = calm.diurnalPeriodSec / 4;
    const double trough = 3 * calm.diurnalPeriodSec / 4;
    EXPECT_EQ(diurnal.phaseAt(crest), ServePhase::Peak);
    EXPECT_EQ(diurnal.phaseAt(trough), ServePhase::OffPeak);
    EXPECT_GT(diurnal.rateAt(crest), calm.baseRate);
    EXPECT_LT(diurnal.rateAt(trough), calm.baseRate);
    EXPECT_GE(diurnal.rateAt(trough), 0.1 * calm.baseRate);
}

// ------------------------------------------------------------ KV store

TEST(SimKvStore, MatchesHostMapReference)
{
    Engine eng(tinyConfig());
    SimHeap heap(eng);
    ThreadContext &t = eng.thread(0);

    KvParams p;
    p.tableSlots = 1 << 11;
    p.arenaSlots = 1 << 10;
    p.valueWords = 4;
    SimKvStore store(eng, heap, t, p);

    std::map<std::uint64_t, std::uint64_t> ref;
    Rng rng(99);
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t key = rng.nextBounded(1 << 10);
        const double dice = rng.nextDouble();
        if (dice < 0.5) {
            const auto got = store.get(t, key);
            const auto it = ref.find(key);
            EXPECT_EQ(got.found, it != ref.end());
            if (it != ref.end()) {
                EXPECT_EQ(got.value,
                          SimKvStore::valueDigest(key, it->second,
                                                  p.valueWords));
            }
        } else if (dice < 0.85) {
            const std::uint64_t value = rng.next();
            store.set(t, key, value);
            ref[key] = value;
        } else {
            EXPECT_EQ(store.del(t, key), ref.erase(key) == 1);
        }
    }
    EXPECT_EQ(store.liveKeys(), ref.size());
    EXPECT_GT(store.totalProbes(), 0u);
    store.freeStorage(t);
    EXPECT_EQ(heap.liveAllocations(), 0u);
}

TEST(SimKvStore, DeleteFreesArenaForReuse)
{
    Engine eng(tinyConfig());
    SimHeap heap(eng);
    ThreadContext &t = eng.thread(0);

    KvParams p;
    p.tableSlots = 1 << 8;
    p.arenaSlots = 64;  // Tight arena: reuse is mandatory.
    p.valueWords = 2;
    SimKvStore store(eng, heap, t, p);

    // Three full fill/drain rounds over a 64-key space exercise the
    // free list; without reuse the third round would exhaust the arena.
    for (int round = 0; round < 3; ++round) {
        for (std::uint64_t k = 0; k < 64; ++k)
            store.set(t, k, round * 1000 + k);
        for (std::uint64_t k = 0; k < 64; ++k)
            EXPECT_TRUE(store.del(t, k));
    }
    EXPECT_EQ(store.liveKeys(), 0u);
    store.freeStorage(t);
}

// ----------------------------------------------------------- LSM store

TEST(SimLsmStore, MatchesHostMapThroughFlushAndCompaction)
{
    Engine eng(tinyConfig());
    SimHeap heap(eng);
    ThreadContext &t = eng.thread(0);

    LsmParams p;
    p.memtableSlots = 256;  // Small: forces rotation + flushes.
    p.maxImmutables = 1;
    p.l0CompactionThreshold = 2;
    p.blockCacheBlocks = 4;  // Small: forces cache eviction.
    SimLsmStore store(eng, heap, t, p);

    std::map<std::uint64_t, std::uint64_t> ref;
    Rng rng(1234);
    for (int i = 0; i < 4000; ++i) {
        const std::uint64_t key = rng.nextBounded(1 << 10);
        const double dice = rng.nextDouble();
        if (dice < 0.4) {
            const auto got = store.get(t, key);
            const auto it = ref.find(key);
            EXPECT_EQ(got.found, it != ref.end()) << "key " << key;
            if (it != ref.end()) {
                EXPECT_EQ(got.value, it->second);
            }
        } else if (dice < 0.85) {
            const std::uint64_t value = rng.nextBounded(1ULL << 62) + 1;
            store.put(t, key, value);
            ref[key] = value;
        } else {
            store.del(t, key);
            ref.erase(key);
        }
    }

    // The churn must have exercised the full write path.
    EXPECT_GT(store.stats().flushes, 0u);
    EXPECT_GT(store.stats().compactions, 0u);
    EXPECT_GT(store.stats().blockCacheHits, 0u);
    EXPECT_GT(store.stats().blockCacheMisses, 0u);

    // Every key still answers correctly after the dust settles.
    for (std::uint64_t key = 0; key < (1 << 10); ++key) {
        const auto got = store.get(t, key);
        const auto it = ref.find(key);
        ASSERT_EQ(got.found, it != ref.end()) << "key " << key;
        if (it != ref.end()) {
            EXPECT_EQ(got.value, it->second);
        }
    }
    store.freeStorage(t);
    EXPECT_EQ(heap.liveAllocations(), 0u);
}

TEST(SimLsmStore, FlushAllLeavesOneSortedTombstoneFreeRun)
{
    Engine eng(tinyConfig());
    SimHeap heap(eng);
    ThreadContext &t = eng.thread(0);

    LsmParams p;
    p.memtableSlots = 256;
    p.maxImmutables = 1;
    p.l0CompactionThreshold = 3;
    SimLsmStore store(eng, heap, t, p);

    std::map<std::uint64_t, std::uint64_t> ref;
    Rng rng(5);
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t key = rng.nextBounded(512);
        if (rng.nextDouble() < 0.8) {
            const std::uint64_t value = rng.nextBounded(1ULL << 62) + 1;
            store.put(t, key, value);
            ref[key] = value;
        } else {
            store.del(t, key);
            ref.erase(key);
        }
    }
    store.flushAll(t);

    EXPECT_EQ(store.mutableEntries(), 0u);
    EXPECT_EQ(store.immutableCount(), 0u);
    EXPECT_EQ(store.l0Count(), 0u);
    ASSERT_TRUE(store.hasL1());

    // L1 is exactly the live reference set, strictly ascending (no
    // duplicates, no tombstones).
    const std::vector<std::uint64_t> &keys = store.l1Keys();
    ASSERT_EQ(keys.size(), ref.size());
    std::uint64_t i = 0;
    for (const auto &[k, v] : ref) {
        EXPECT_EQ(keys[i], k);
        if (i > 0) {
            EXPECT_LT(keys[i - 1], keys[i]);
        }
        const auto got = store.get(t, k);
        EXPECT_TRUE(got.found);
        EXPECT_EQ(got.value, v);
        ++i;
    }

    // Scans over the compacted run are deterministic and non-trivial.
    const std::uint64_t d1 = store.scan(t, 0, 32);
    const std::uint64_t d2 = store.scan(t, 0, 32);
    EXPECT_EQ(d1, d2);
    EXPECT_NE(d1, 0u);
    store.freeStorage(t);
}

// -------------------------------------------------------------- driver

ServingSpec
smallSpec(ServeApp app)
{
    ServingSpec spec;
    spec.app = app;
    spec.gen.numKeys = 1 << 10;
    spec.gen.requests = 3000;
    spec.kv.tableSlots = 1 << 11;
    spec.kv.arenaSlots = 1 << 10;
    spec.kv.valueWords = 8;
    spec.lsm.memtableSlots = 512;
    spec.serverThreads = 2;
    return spec;
}

TEST(ServingDriver, SameSeedBitIdenticalReport)
{
    for (const ServeApp app : {ServeApp::KV, ServeApp::LSM}) {
        const ServingSpec spec = smallSpec(app);
        ServingReport a;
        ServingReport b;
        {
            Engine eng(tinyConfig());
            SimHeap heap(eng);
            a = runServing(eng, heap, spec);
        }
        {
            Engine eng(tinyConfig());
            SimHeap heap(eng);
            b = runServing(eng, heap, spec);
        }
        EXPECT_EQ(a.requests, spec.gen.requests);
        EXPECT_EQ(a.checksum, b.checksum);
        EXPECT_EQ(a.latency.count(), b.latency.count());
        EXPECT_EQ(a.latency.sum(), b.latency.sum());
        EXPECT_EQ(a.latency.percentile(0.50), b.latency.percentile(0.50));
        EXPECT_EQ(a.latency.percentile(0.99), b.latency.percentile(0.99));
        EXPECT_EQ(a.latency.percentile(0.999),
                  b.latency.percentile(0.999));
        EXPECT_EQ(a.totalSeconds, b.totalSeconds);
        for (int ph = 0; ph < kNumServePhases; ++ph)
            EXPECT_EQ(a.phaseLatency[ph].count(),
                      b.phaseLatency[ph].count());
    }
}

TEST(ServingDriver, QueueingShowsUpInLatency)
{
    // At a crushing arrival rate every request after the first queues,
    // so the mean latency must far exceed the per-request service time
    // observed at a trickle rate. Background tiering is off so the
    // trickle run's idle gaps don't accrue hinting faults that would
    // mask the queueing delta.
    SystemConfig cfg = tinyConfig();
    cfg.autonumaEnabled = false;
    ServingSpec relaxed = smallSpec(ServeApp::KV);
    relaxed.gen.requests = 500;
    relaxed.gen.baseRate = 1e3;  // Effectively idle servers.
    ServingSpec crushed = relaxed;
    crushed.gen.baseRate = 1e8;  // Far beyond service capacity.

    ServingReport slow;
    ServingReport fast;
    {
        Engine eng(cfg);
        SimHeap heap(eng);
        slow = runServing(eng, heap, relaxed);
    }
    {
        Engine eng(cfg);
        SimHeap heap(eng);
        fast = runServing(eng, heap, crushed);
    }
    EXPECT_GT(fast.latency.mean(), 10.0 * slow.latency.mean());
}

TEST(ServingDriver, PhaseHistogramsPartitionTheRequests)
{
    const ServingSpec spec = smallSpec(ServeApp::KV);
    Engine eng(tinyConfig());
    SimHeap heap(eng);
    const ServingReport rep = runServing(eng, heap, spec);

    std::uint64_t phase_total = 0;
    for (int ph = 0; ph < kNumServePhases; ++ph)
        phase_total += rep.phaseLatency[ph].count();
    EXPECT_EQ(phase_total, rep.latency.count());
    EXPECT_EQ(rep.latency.count(), rep.requests);
    std::uint64_t op_total = 0;
    for (const std::uint64_t c : rep.opCounts)
        op_total += c;
    EXPECT_EQ(op_total, rep.requests);
    EXPECT_GT(rep.prefillSeconds, 0.0);
    EXPECT_GT(rep.totalSeconds, rep.prefillSeconds);
}

// ------------------------------------------- exp-layer integration

TEST(ServingWorkloads, SpecMappingAndNames)
{
    WorkloadSpec w;
    w.app = App::KV;
    w.kind = GraphKind::Kron;
    w.scale = 10;
    w.trials = 2;
    EXPECT_EQ(w.name(), "kv_zipf");
    EXPECT_TRUE(isServingApp(App::KV));
    EXPECT_TRUE(isServingApp(App::LSM));
    EXPECT_FALSE(isServingApp(App::PR));

    ServingSpec spec = servingSpecFor(w);
    EXPECT_EQ(spec.app, ServeApp::KV);
    EXPECT_EQ(spec.gen.numKeys, 1u << 10);
    EXPECT_EQ(spec.gen.requests, 10000u);
    EXPECT_DOUBLE_EQ(spec.gen.zipfTheta, 0.99);
    EXPECT_GE(spec.kv.arenaSlots, spec.gen.numKeys);

    w.app = App::LSM;
    w.kind = GraphKind::Urand;
    EXPECT_EQ(w.name(), "lsm_unif");
    spec = servingSpecFor(w);
    EXPECT_EQ(spec.app, ServeApp::LSM);
    EXPECT_DOUBLE_EQ(spec.gen.zipfTheta, 0.0);
}

RunConfig
servingRunConfig(App app)
{
    RunConfig rc;
    rc.workload.app = app;
    rc.workload.kind = GraphKind::Kron;
    rc.workload.scale = 10;
    rc.workload.trials = 1;
    rc.sampling = false;
    rc.sys.dram = makeDramParams(512 * kPageSize);
    rc.sys.nvm = makeNvmParams(4096 * kPageSize);
    return rc;
}

TEST(ServingWorkloads, RunWorkloadProducesServingReport)
{
    const RunResult r = runWorkload(servingRunConfig(App::KV));
    EXPECT_TRUE(r.hasServing);
    EXPECT_EQ(r.workloadName, "kv_zipf");
    EXPECT_EQ(r.serving.requests, 5000u);
    EXPECT_EQ(r.outputChecksum, r.serving.checksum);
    EXPECT_GT(r.loadSeconds, 0.0);
    EXPECT_GT(r.computeSeconds, 0.0);
    EXPECT_GT(r.totalAccesses, 0u);
}

TEST(ServingWorkloads, ChecksumIsPolicyInvariant)
{
    RunConfig autonuma = servingRunConfig(App::LSM);
    autonuma.policy = "autonuma";
    RunConfig interleave = servingRunConfig(App::LSM);
    interleave.policy = "interleave";

    const RunResult a = runWorkload(autonuma);
    const RunResult b = runWorkload(interleave);
    EXPECT_EQ(a.outputChecksum, b.outputChecksum);
    EXPECT_GT(a.serving.lsm.flushes, 0u);
    EXPECT_EQ(a.serving.lsm.flushes, b.serving.lsm.flushes);
}

/** Serving config under tier pressure: DRAM far below the store
 *  footprint and compressed AutoNUMA clocks, so scans, migrations and
 *  (with a plan installed) migration faults actually fire within the
 *  short simulated run. */
RunConfig
pressuredServingConfig(App app)
{
    RunConfig rc = servingRunConfig(app);
    // Scale 13 keeps the touched footprint (KV arena; LSM block cache
    // plus SST page cache) well above the shrunken DRAM.
    rc.workload.scale = 13;
    rc.sys.dram = makeDramParams(48 * kPageSize);
    rc.sys.autonuma.scanPeriod = secondsToCycles(0.0005);
    rc.sys.autonuma.adjustPeriod = secondsToCycles(0.002);
    rc.sys.autonuma.rateLimitBytesPerSec = 4 * kMiB;
    return rc;
}

TEST(ServingWorkloads, ChaosRunSurvivesFaultsWithInvariantsOn)
{
    for (const App app : {App::KV, App::LSM}) {
        RunConfig clean = pressuredServingConfig(app);
        const RunResult base = runWorkload(clean);

        RunConfig chaos = pressuredServingConfig(app);
        chaos.sys.faults = FaultPlan::parseOrDie(
            "migrate:p=0.2,burst=4;alloc:p=0.02;seed=7");
        chaos.sys.checkInvariants = true;
        chaos.sys.invariantCheckPeriod = 512;
        const RunResult r = runWorkload(chaos);

        // Faults fired, invariants held, and the answers are exactly
        // the fault-free answers.
        EXPECT_GT(r.faultsInjected, 0u) << appName(app);
        EXPECT_GT(r.invariantChecksRun, 0u) << appName(app);
        EXPECT_EQ(r.outputChecksum, base.outputChecksum) << appName(app);
    }
}

}  // namespace
}  // namespace memtier

/**
 * @file
 * Correctness tests for the graph applications: every simulated-memory
 * kernel must produce exactly the result of its untimed host reference.
 */

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "apps/bc.h"
#include "apps/bfs.h"
#include "apps/cc.h"
#include "apps/pagerank.h"
#include "graph/generators.h"
#include "runtime/sim_heap.h"

namespace memtier {
namespace {

SystemConfig
testConfig()
{
    SystemConfig cfg;
    cfg.dram = makeDramParams(1024 * kPageSize);
    cfg.nvm = makeNvmParams(4096 * kPageSize);
    cfg.numThreads = 6;
    return cfg;
}

/** Workbench holding a loaded simulated graph. */
struct Bench
{
    explicit Bench(const CsrGraph &host)
        : eng(testConfig()), heap(eng),
          g(SimCsrGraph::load(eng, heap, eng.thread(0), host, "test"))
    {
    }

    ~Bench() { g.free(heap, eng.thread(0)); }

    Engine eng;
    SimHeap heap;
    SimCsrGraph g;
};

// ------------------------------------------------------------------ BFS

enum class Kind { Kron, Urand };

struct GraphCase
{
    Kind kind;
    int scale;
    int degree;
};

class AppsOnGraphs : public ::testing::TestWithParam<GraphCase>
{
  protected:
    CsrGraph
    makeGraph() const
    {
        const GraphCase c = GetParam();
        EdgeList edges = c.kind == Kind::Kron
                             ? generateKron(c.scale, c.degree, 99)
                             : generateUrand(c.scale, c.degree, 99);
        return CsrGraph::fromEdgeList(
            static_cast<NodeId>(1 << c.scale), edges);
    }
};

TEST_P(AppsOnGraphs, BfsMatchesHostDepths)
{
    const CsrGraph host = makeGraph();
    Bench b(host);
    const NodeId source = 1;
    const BfsOutput out = runBfs(b.eng, b.heap, b.g, source);
    const std::vector<std::int64_t> depth = hostBfsDepths(host, source);

    std::int64_t reached = 0;
    for (NodeId v = 0; v < host.numNodes(); ++v) {
        const auto vi = static_cast<std::size_t>(v);
        if (depth[vi] == -1) {
            EXPECT_EQ(out.parent[vi], -1) << "vertex " << v;
            continue;
        }
        ++reached;
        ASSERT_NE(out.parent[vi], -1) << "vertex " << v;
        if (v == source)
            continue;
        // Parent must be exactly one level shallower.
        const NodeId p = out.parent[vi];
        EXPECT_EQ(depth[static_cast<std::size_t>(p)] + 1, depth[vi])
            << "vertex " << v;
    }
    EXPECT_EQ(out.reached, reached);
}

TEST_P(AppsOnGraphs, CcMatchesHostComponents)
{
    const CsrGraph host = makeGraph();
    Bench b(host);
    const CcOutput out = runCc(b.eng, b.heap, b.g);
    const std::vector<NodeId> want = hostCcLabels(host);

    // Same partition: labels must agree as an equivalence relation.
    // Two vertices share a host label iff they share a sim label.
    std::map<NodeId, NodeId> host_to_sim;
    for (NodeId v = 0; v < host.numNodes(); ++v) {
        const auto vi = static_cast<std::size_t>(v);
        auto [it, fresh] =
            host_to_sim.emplace(want[vi], out.comp[vi]);
        if (!fresh) {
            ASSERT_EQ(it->second, out.comp[vi]) << "vertex " << v;
        }
    }
    std::set<NodeId> host_labels(want.begin(), want.end());
    EXPECT_EQ(out.numComponents,
              static_cast<std::int64_t>(host_labels.size()));
}

TEST_P(AppsOnGraphs, BcMatchesHostScores)
{
    const CsrGraph host = makeGraph();
    Bench b(host);
    const BcOutput out = runBc(b.eng, b.heap, b.g, 3, 1234);
    const std::vector<double> want = hostBcScores(host, 3, 1234);
    ASSERT_EQ(out.scores.size(), want.size());
    for (std::size_t v = 0; v < want.size(); ++v)
        EXPECT_NEAR(out.scores[v], want[v], 1e-6 + 1e-9 * want[v])
            << "vertex " << v;
}

TEST_P(AppsOnGraphs, PageRankMatchesHost)
{
    const CsrGraph host = makeGraph();
    Bench b(host);
    const PageRankOutput out = runPageRank(b.eng, b.heap, b.g, 5);
    const std::vector<double> want = hostPageRank(host, 5);
    for (std::size_t v = 0; v < want.size(); ++v)
        EXPECT_NEAR(out.rank[v], want[v], 1e-12) << "vertex " << v;
}

INSTANTIATE_TEST_SUITE_P(
    Graphs, AppsOnGraphs,
    ::testing::Values(GraphCase{Kind::Kron, 8, 8},
                      GraphCase{Kind::Urand, 8, 8},
                      GraphCase{Kind::Kron, 10, 16},
                      GraphCase{Kind::Urand, 10, 4}));

// --------------------------------------------------------- Edge cases

TEST(Bfs, SingletonSourceReachesOnlyItself)
{
    // Vertex 4 is isolated by construction.
    const CsrGraph host = CsrGraph::fromEdgeList(5, {{0, 1}, {1, 2}});
    Bench b(host);
    const BfsOutput out = runBfs(b.eng, b.heap, b.g, 4);
    EXPECT_EQ(out.reached, 1);
    EXPECT_EQ(out.parent[4], 4);
    EXPECT_EQ(out.parent[0], -1);
}

TEST(Bfs, LineGraphDepths)
{
    EdgeList chain;
    for (NodeId v = 0; v + 1 < 64; ++v)
        chain.push_back({v, static_cast<NodeId>(v + 1)});
    const CsrGraph host = CsrGraph::fromEdgeList(64, chain);
    Bench b(host);
    const BfsOutput out = runBfs(b.eng, b.heap, b.g, 0);
    EXPECT_EQ(out.reached, 64);
    EXPECT_EQ(out.supersteps, 64);  // 63 expansions + final empty check.
    // Each parent is the previous vertex on the chain.
    for (NodeId v = 1; v < 64; ++v)
        EXPECT_EQ(out.parent[static_cast<std::size_t>(v)], v - 1);
}

TEST(Bfs, BottomUpKicksInOnDenseGraph)
{
    // A dense-ish graph where the frontier quickly covers most nodes.
    const CsrGraph host =
        CsrGraph::fromEdgeList(1 << 8, generateUrand(8, 32, 5));
    Bench b(host);
    const BfsOutput out = runBfs(b.eng, b.heap, b.g, 0);
    EXPECT_GT(out.bottomUpSteps, 0);
    EXPECT_GT(out.reached, (1 << 8) * 9 / 10);
}

TEST(Cc, DisconnectedComponentsCounted)
{
    const CsrGraph host =
        CsrGraph::fromEdgeList(6, {{0, 1}, {2, 3}, {4, 5}});
    Bench b(host);
    const CcOutput out = runCc(b.eng, b.heap, b.g);
    EXPECT_EQ(out.numComponents, 3);
    EXPECT_EQ(out.comp[0], out.comp[1]);
    EXPECT_NE(out.comp[0], out.comp[2]);
}

TEST(Cc, FullyConnectedSingleComponent)
{
    EdgeList star;
    for (NodeId v = 1; v < 32; ++v)
        star.push_back({0, v});
    const CsrGraph host = CsrGraph::fromEdgeList(32, star);
    Bench b(host);
    const CcOutput out = runCc(b.eng, b.heap, b.g);
    EXPECT_EQ(out.numComponents, 1);
}

TEST(Bc, StarCenterDominates)
{
    EdgeList star;
    for (NodeId v = 1; v < 16; ++v)
        star.push_back({0, v});
    const CsrGraph host = CsrGraph::fromEdgeList(16, star);
    Bench b(host);
    const BcOutput out = runBc(b.eng, b.heap, b.g, 8, 77);
    // The hub lies on every shortest path between leaves.
    for (std::size_t v = 1; v < 16; ++v)
        EXPECT_GE(out.scores[0], out.scores[v]);
    EXPECT_GT(out.scores[0], 0.0);
}

TEST(Bc, AllocatesAndFreesPerSourceObjects)
{
    const CsrGraph host =
        CsrGraph::fromEdgeList(1 << 6, generateUrand(6, 4, 5));
    Bench b(host);
    const std::size_t before = b.heap.liveAllocations();
    runBc(b.eng, b.heap, b.g, 2, 77);
    EXPECT_EQ(b.heap.liveAllocations(), before);  // No leaks.
    // 4 working arrays per source + scores, freed again.
    EXPECT_GE(b.heap.allocatedObjects(), 2 + 2 * 4 + 1);
}

TEST(PageRank, RanksSumToOne)
{
    const CsrGraph host =
        CsrGraph::fromEdgeList(1 << 7, generateUrand(7, 8, 3));
    Bench b(host);
    const PageRankOutput out = runPageRank(b.eng, b.heap, b.g, 10);
    double sum = 0.0;
    for (const double r : out.rank)
        sum += r;
    EXPECT_NEAR(sum, 1.0, 0.05);  // Leakage via dangling nodes only.
}

}  // namespace
}  // namespace memtier

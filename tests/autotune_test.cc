/**
 * @file
 * Tests for the live tunable control plane: TunableRegistry edge cases
 * (clamping, rounding, no-op sets, observers, the unclamped
 * construction path) and the autotune wrapper policy's determinism --
 * two same-seed runs must produce bit-identical reports even when the
 * tuner mutates tunables while the workload runs.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "exp/runner.h"
#include "policy/tunable_registry.h"

namespace memtier {
namespace {

// ------------------------------------------------------ TunableRegistry

/** A registry with one double and one integer tunable backed by plain
 *  locals, plus counters observing every apply. */
class RegistryFixture : public ::testing::Test
{
  protected:
    RegistryFixture()
    {
        reg.add({"period_ms", "a double tunable", "alpha", 0.5, 100.0,
                 false, false, [this] { return period; },
                 [this](double v) {
                     period = v;
                     ++applies;
                 }});
        reg.add({"batch", "an integer tunable", "beta", 2.0, 64.0, true,
                 false, [this] { return double(batch); },
                 [this](double v) {
                     batch = static_cast<std::uint64_t>(v);
                     ++applies;
                 }});
    }

    TunableRegistry reg;
    double period = 10.0;
    std::uint64_t batch = 8;
    int applies = 0;
};

TEST_F(RegistryFixture, ListsAndFindsRegisteredKeys)
{
    EXPECT_EQ(reg.keys(),
              (std::vector<std::string>{"batch", "period_ms"}));
    EXPECT_EQ(reg.keysOwnedBy("alpha"),
              (std::vector<std::string>{"period_ms"}));
    EXPECT_EQ(reg.keysOwnedBy("beta"),
              (std::vector<std::string>{"batch"}));
    EXPECT_TRUE(reg.keysOwnedBy("nobody").empty());
    EXPECT_TRUE(reg.contains("batch"));
    EXPECT_FALSE(reg.contains("bogus"));
    EXPECT_EQ(reg.find("bogus"), nullptr);
    ASSERT_NE(reg.find("period_ms"), nullptr);
    EXPECT_EQ(reg.find("period_ms")->owner, "alpha");
    EXPECT_DOUBLE_EQ(reg.value("period_ms"), 10.0);
}

TEST_F(RegistryFixture, SetClampsIntoTheRegisteredRange)
{
    EXPECT_DOUBLE_EQ(reg.set("period_ms", 1000.0, 1), 100.0);
    EXPECT_DOUBLE_EQ(period, 100.0);
    EXPECT_DOUBLE_EQ(reg.set("period_ms", 0.001, 2), 0.5);
    EXPECT_DOUBLE_EQ(period, 0.5);
    EXPECT_EQ(applies, 2);
    EXPECT_EQ(reg.mutations(), 2u);
}

TEST_F(RegistryFixture, SetRoundsIntegerTunables)
{
    EXPECT_DOUBLE_EQ(reg.set("batch", 11.6, 1), 12.0);
    EXPECT_EQ(batch, 12u);
    EXPECT_DOUBLE_EQ(reg.set("batch", 5.4, 2), 5.0);
    EXPECT_EQ(batch, 5u);
    // Clamp happens before rounding: 1000 -> 64, 0.2 -> 2.
    EXPECT_DOUBLE_EQ(reg.set("batch", 1000.0, 3), 64.0);
    EXPECT_DOUBLE_EQ(reg.set("batch", 0.2, 4), 2.0);
    EXPECT_EQ(batch, 2u);
}

TEST_F(RegistryFixture, NoOpSetHasNoSideEffects)
{
    bool observed = false;
    reg.setApplyObserver(
        [&](const TunableRegistry::Tunable &, Cycles) {
            observed = true;
        });
    // Proposing the current value applies nothing.
    EXPECT_DOUBLE_EQ(reg.set("period_ms", 10.0, 1), 10.0);
    // A wild value that clamps back onto the current one is also a
    // no-op (8 rounds to 8).
    EXPECT_DOUBLE_EQ(reg.set("batch", 8.2, 2), 8.0);
    EXPECT_EQ(applies, 0);
    EXPECT_EQ(reg.mutations(), 0u);
    EXPECT_FALSE(observed);
}

TEST_F(RegistryFixture, ObserverSeesEveryAppliedSet)
{
    std::vector<std::pair<std::string, Cycles>> seen;
    reg.setApplyObserver(
        [&](const TunableRegistry::Tunable &t, Cycles now) {
            seen.emplace_back(t.key, now);
        });
    reg.set("period_ms", 20.0, 111);
    reg.set("batch", 4.0, 222);
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0], (std::pair<std::string, Cycles>{"period_ms", 111}));
    EXPECT_EQ(seen[1], (std::pair<std::string, Cycles>{"batch", 222}));
}

TEST_F(RegistryFixture, SetFromStringAppliesUnclamped)
{
    // The construction path must reproduce the CLI exactly: values
    // outside the online-tuning clamp range still apply verbatim.
    reg.setFromString("period_ms", "2500.5");
    EXPECT_DOUBLE_EQ(period, 2500.5);
    // Integer keys parse with getU64 semantics (base 0: hex works).
    reg.setFromString("batch", "0x80");
    EXPECT_EQ(batch, 128u);
    EXPECT_EQ(applies, 2);
    // The construction path counts no runtime mutations.
    EXPECT_EQ(reg.mutations(), 0u);
}

TEST_F(RegistryFixture, FormatsValuesByType)
{
    EXPECT_EQ(reg.formatValue("batch"), "8");
    EXPECT_EQ(reg.formatValue("period_ms"), "10");
    reg.set("period_ms", 12.25, 1);
    EXPECT_EQ(reg.formatValue("period_ms"), "12.25");
    EXPECT_EQ(reg.effectiveFor("alpha"),
              (std::vector<std::pair<std::string, std::string>>{
                  {"period_ms", "12.25"}}));
}

// ---------------------------------------------------- Autotune end-to-end

/** The policy goldens' workload with an aggressive tuning cadence so
 *  the hill climber takes many steps within the short run. */
RunConfig
tunedConfig()
{
    RunConfig rc;
    rc.workload.app = App::PR;
    rc.workload.kind = GraphKind::Kron;
    rc.workload.scale = 13;
    rc.workload.trials = 8;
    rc.sampling = false;
    rc.sys.dram = makeDramParams(192 * kPageSize);
    rc.sys.nvm = makeNvmParams(4096 * kPageSize);
    rc.sys.autonuma = AutoNumaParams{};
    rc.policy = "autotune";
    rc.tunables = {"base=autonuma",  "epoch_ms=0.2", "min_gain=0",
                   "seed=7",         "scan_period_ms=0.5",
                   "adjust_period_ms=2", "rate_limit_kib=4096"};
    return rc;
}

std::uint64_t
counter(const RunResult &r, const std::string &key)
{
    for (const auto &[name, value] : r.policyCounters) {
        if (name == key)
            return value;
    }
    return ~0ULL;
}

TEST(AutotuneEndToEnd, TunerActuallyMovesTunables)
{
    const RunResult r = runWorkload(tunedConfig());
    EXPECT_EQ(r.policyName, "autotune");
    EXPECT_GT(counter(r, "tuner_epochs"), 0u);
    EXPECT_GT(counter(r, "tuner_applied"), 0u);
    // Every measured proposal was either kept or rolled back; at most
    // one proposal can still be pending when the run ends.
    const std::uint64_t settled =
        counter(r, "tuner_accepted") + counter(r, "tuner_reverted");
    EXPECT_LE(settled, counter(r, "tuner_applied"));
    EXPECT_GE(settled + 1, counter(r, "tuner_applied"));
    // The observation plane recorded one MetricsView per epoch.
    EXPECT_EQ(r.metricsEpochs.size(), counter(r, "tuner_epochs"));
    // Tuning must never change application output.
    EXPECT_EQ(r.outputChecksum, 0xb5d59696c650f8d5ull);
}

TEST(AutotuneEndToEnd, SameSeedReplaysBitIdentical)
{
    const RunResult a = runWorkload(tunedConfig());
    const RunResult b = runWorkload(tunedConfig());

    EXPECT_EQ(a.outputChecksum, b.outputChecksum);
    EXPECT_DOUBLE_EQ(a.totalSeconds, b.totalSeconds);
    EXPECT_EQ(a.vmstat.pgfault, b.vmstat.pgfault);
    EXPECT_EQ(a.vmstat.numaHintFaults, b.vmstat.numaHintFaults);
    EXPECT_EQ(a.vmstat.pgpromoteSuccess, b.vmstat.pgpromoteSuccess);
    EXPECT_EQ(a.vmstat.pgdemoteKswapd, b.vmstat.pgdemoteKswapd);
    EXPECT_EQ(a.vmstat.pgdemoteDirect, b.vmstat.pgdemoteDirect);
    EXPECT_EQ(a.vmstat.pgmigrateSuccess, b.vmstat.pgmigrateSuccess);

    // The whole tuner trajectory replays: every counter and every
    // effective tunable value is identical, not just the totals.
    ASSERT_EQ(a.policyCounters.size(), b.policyCounters.size());
    for (std::size_t i = 0; i < a.policyCounters.size(); ++i) {
        EXPECT_EQ(a.policyCounters[i].first, b.policyCounters[i].first);
        EXPECT_EQ(a.policyCounters[i].second, b.policyCounters[i].second)
            << a.policyCounters[i].first;
    }
    EXPECT_EQ(a.effectiveTunables, b.effectiveTunables);

    ASSERT_EQ(a.metricsEpochs.size(), b.metricsEpochs.size());
    for (std::size_t i = 0; i < a.metricsEpochs.size(); ++i) {
        EXPECT_EQ(a.metricsEpochs[i].now, b.metricsEpochs[i].now);
        EXPECT_EQ(a.metricsEpochs[i].accesses,
                  b.metricsEpochs[i].accesses);
        EXPECT_EQ(a.metricsEpochs[i].accessCycles,
                  b.metricsEpochs[i].accessCycles);
    }
}

TEST(AutotuneEndToEnd, DifferentSeedsMayDivergeButStayCorrect)
{
    RunConfig rc = tunedConfig();
    const RunResult a = runWorkload(rc);
    for (std::string &t : rc.tunables) {
        if (t.rfind("seed=", 0) == 0)
            t = "seed=99";
    }
    const RunResult b = runWorkload(rc);
    // Output is placement-invariant regardless of the tuner's path.
    EXPECT_EQ(a.outputChecksum, b.outputChecksum);
}

TEST(AutotuneEndToEnd, WrapsTheExchangePolicyToo)
{
    RunConfig rc = tunedConfig();
    rc.tunables = {"base=exchange", "epoch_ms=0.2", "min_gain=0",
                   "scan_period_ms=0.5", "protect_ms=2"};
    const RunResult r = runWorkload(rc);
    EXPECT_EQ(r.policyName, "autotune");
    EXPECT_GT(r.vmstat.pgexchangeSuccess, 0u);
    EXPECT_GT(counter(r, "tuner_applied"), 0u);
    EXPECT_EQ(r.outputChecksum, 0xb5d59696c650f8d5ull);
}

TEST(AutotuneEndToEnd, ServingWorkloadExposesLatencyQuantiles)
{
    RunConfig rc;
    rc.workload.app = App::KV;
    rc.workload.kind = GraphKind::Kron;
    rc.workload.scale = 12;
    rc.workload.trials = 2;
    rc.sampling = false;
    rc.sys.dram = makeDramParams(192 * kPageSize);
    rc.sys.nvm = makeNvmParams(4096 * kPageSize);
    rc.sys.autonuma = AutoNumaParams{};
    rc.policy = "autotune";
    rc.tunables = {"base=autonuma", "epoch_ms=0.2", "min_gain=0",
                   "scan_period_ms=0.5"};
    const RunResult r = runWorkload(rc);
    ASSERT_TRUE(r.hasServing);
    ASSERT_FALSE(r.metricsEpochs.empty());
    // At least one epoch fell inside the serve phase and sampled the
    // live latency histogram.
    bool saw_serving = false;
    for (const MetricsView &mv : r.metricsEpochs) {
        if (!mv.hasServing)
            continue;
        saw_serving = true;
        EXPECT_GE(mv.serveP99Cycles, mv.serveP50Cycles);
        EXPECT_GE(mv.serveP999Cycles, mv.serveP99Cycles);
    }
    EXPECT_TRUE(saw_serving);
}

}  // namespace
}  // namespace memtier

/**
 * @file
 * Unit tests for the memory-tier substrate: frame allocation, device
 * timing (latency, queuing, write amplification) and usage accounting.
 */

#include <gtest/gtest.h>

#include "mem/copy_engine.h"
#include "mem/frame_allocator.h"
#include "mem/memory_tier.h"
#include "mem/tier_device.h"
#include "mem/tier_params.h"

namespace memtier {
namespace {

// ------------------------------------------------------- FrameAllocator

TEST(FrameAllocator, AllocatesSequentially)
{
    FrameAllocator fa(4);
    EXPECT_EQ(fa.allocate().value(), 0u);
    EXPECT_EQ(fa.allocate().value(), 1u);
    EXPECT_EQ(fa.usedFrames(), 2u);
    EXPECT_EQ(fa.freeFrames(), 2u);
}

TEST(FrameAllocator, ExhaustsAndRefuses)
{
    FrameAllocator fa(2);
    ASSERT_TRUE(fa.allocate().has_value());
    ASSERT_TRUE(fa.allocate().has_value());
    EXPECT_FALSE(fa.allocate().has_value());
}

TEST(FrameAllocator, RecyclesFreedFrames)
{
    FrameAllocator fa(2);
    const FrameNum a = fa.allocate().value();
    ASSERT_TRUE(fa.allocate().has_value());
    fa.free(a);
    EXPECT_EQ(fa.allocate().value(), a);
}

TEST(FrameAllocator, FreeMakesRoom)
{
    FrameAllocator fa(1);
    const FrameNum a = fa.allocate().value();
    EXPECT_FALSE(fa.allocate().has_value());
    fa.free(a);
    EXPECT_TRUE(fa.allocate().has_value());
}

TEST(FrameAllocator, CountsStayConsistent)
{
    FrameAllocator fa(8);
    std::vector<FrameNum> frames;
    for (int i = 0; i < 8; ++i)
        frames.push_back(fa.allocate().value());
    for (const FrameNum f : frames)
        fa.free(f);
    EXPECT_EQ(fa.usedFrames(), 0u);
    EXPECT_EQ(fa.freeFrames(), 8u);
}

// -------------------------------------- FrameAllocator, frame health

TEST(FrameAllocatorHealth, RetiredFrameIsNeverRecycled)
{
    FrameAllocator fa(2);
    const FrameNum a = fa.allocate().value();
    fa.retire(a);
    EXPECT_TRUE(fa.isRetired(a));
    EXPECT_EQ(fa.retiredFrames(), 1u);
    // Retired frames stay counted as used forever: the pool shrank.
    EXPECT_EQ(fa.usedFrames(), 1u);
    EXPECT_EQ(fa.freeFrames(), 1u);
    EXPECT_NE(fa.allocate().value(), a);
    EXPECT_FALSE(fa.allocate().has_value());
}

TEST(FrameAllocatorHealth, CorrectableCountsPerFrameAndClear)
{
    FrameAllocator fa(4);
    const FrameNum a = fa.allocate().value();
    const FrameNum b = fa.allocate().value();
    EXPECT_EQ(fa.recordCorrectable(a), 1u);
    EXPECT_EQ(fa.recordCorrectable(a), 2u);
    EXPECT_EQ(fa.recordCorrectable(b), 1u);  // Independent per frame.
    fa.clearCorrectable(a);
    EXPECT_EQ(fa.recordCorrectable(a), 1u);  // History reset.
    // Retiring clears the history too (the frame is gone for good).
    fa.retire(b);
    EXPECT_TRUE(fa.isRetired(b));
}

TEST(FrameAllocatorHealth, RetiredFrameBlocksHugeClaim)
{
    // A block containing a retired frame keeps a nonzero used count,
    // so allocateHuge can never hand out a range with a poisoned page.
    FrameAllocator fa(2 * kPagesPerHuge);
    const FrameNum a = fa.allocate().value();
    ASSERT_LT(a, kPagesPerHuge);
    fa.retire(a);
    const FrameNum huge = fa.allocateHuge().value();
    EXPECT_EQ(huge, kPagesPerHuge);  // The healthy block, not block 0.
    EXPECT_FALSE(fa.allocateHuge().has_value());
}

TEST(MemoryTierHealth, RetireShrinksHealthyCapacity)
{
    MemoryTier tier(makeDramParams(16 * kPageSize));
    const FrameNum f = tier.allocate(FrameOwner::App).value();
    EXPECT_EQ(tier.healthyPages(), 16u);
    tier.retire(f, FrameOwner::App);
    EXPECT_TRUE(tier.isRetired(f));
    EXPECT_EQ(tier.retiredPages(), 1u);
    EXPECT_EQ(tier.healthyPages(), 15u);
    EXPECT_EQ(tier.totalPages(), 16u);
    // The owner no longer holds the page, but the frame stays used.
    EXPECT_EQ(tier.ownerPages(FrameOwner::App), 0u);
    EXPECT_EQ(tier.usedPages(), 1u);
}

// ------------------------------------------- FrameAllocator, 2 MiB path

TEST(FrameAllocatorHuge, AllocatesAlignedFullBlock)
{
    FrameAllocator fa(2 * kPagesPerHuge);
    const FrameNum base = fa.allocateHuge().value();
    EXPECT_EQ(base, 0u);
    EXPECT_TRUE(isHugeBase(base));
    EXPECT_EQ(fa.usedFrames(), kPagesPerHuge);
    EXPECT_EQ(fa.hugeAllocs(), 1u);
    // Singles continue past the carved block.
    EXPECT_EQ(fa.allocate().value(), kPagesPerHuge);
}

TEST(FrameAllocatorHuge, SkipsPartiallyUsedBlocks)
{
    FrameAllocator fa(2 * kPagesPerHuge);
    ASSERT_EQ(fa.allocate().value(), 0u);  // Dirties block 0.
    EXPECT_EQ(fa.allocateHuge().value(), kPagesPerHuge);
}

TEST(FrameAllocatorHuge, FailsWhenNoBlockIsFree)
{
    FrameAllocator fa(kPagesPerHuge);
    const FrameNum f = fa.allocate().value();
    EXPECT_FALSE(fa.allocateHuge().has_value());
    EXPECT_EQ(fa.hugeAllocFails(), 1u);
    fa.free(f);
    EXPECT_TRUE(fa.allocateHuge().has_value());
    EXPECT_EQ(fa.hugeAllocs(), 1u);
}

TEST(FrameAllocatorHuge, CarveCollectsRecycledFrames)
{
    // Frames previously freed into the recycle list must not resurface
    // after their block is carved into a huge allocation.
    FrameAllocator fa(2 * kPagesPerHuge);
    std::vector<FrameNum> singles;
    for (int i = 0; i < 5; ++i)
        singles.push_back(fa.allocate().value());
    for (const FrameNum f : singles)
        fa.free(f);
    EXPECT_EQ(fa.allocateHuge().value(), 0u);
    // The recycled 0..4 are gone; the next single comes from block 1.
    EXPECT_EQ(fa.allocate().value(), kPagesPerHuge);
}

TEST(FrameAllocatorHuge, FreeHugeReturnsAllFrames)
{
    FrameAllocator fa(kPagesPerHuge);
    const FrameNum base = fa.allocateHuge().value();
    fa.freeHuge(base);
    EXPECT_EQ(fa.usedFrames(), 0u);
    EXPECT_EQ(fa.freeFrames(), kPagesPerHuge);
    // The block is whole again and can be re-carved.
    EXPECT_TRUE(fa.allocateHuge().has_value());
}

TEST(FrameAllocatorHuge, SingleFrameOrderUnchangedByBookkeeping)
{
    // The block-occupancy bookkeeping must not perturb the 4 KiB
    // allocation order (bump then recycled-LIFO) that the bit-identical
    // THP-off contract depends on.
    FrameAllocator fa(16);
    ASSERT_EQ(fa.allocate().value(), 0u);
    ASSERT_EQ(fa.allocate().value(), 1u);
    const FrameNum a = fa.allocate().value();
    fa.free(1);
    fa.free(a);
    EXPECT_EQ(fa.allocate().value(), a);  // LIFO recycle.
    EXPECT_EQ(fa.allocate().value(), 1u);
    EXPECT_EQ(fa.allocate().value(), 3u);  // Bump resumes.
}

TEST(MemoryTierHuge, OwnerAccountingCoversWholeBlock)
{
    MemoryTier tier(makeDramParams(2 * kPagesPerHuge * kPageSize));
    const FrameNum base = tier.allocateHuge(FrameOwner::App).value();
    EXPECT_EQ(tier.ownerPages(FrameOwner::App), kPagesPerHuge);
    EXPECT_EQ(tier.usedPages(), kPagesPerHuge);
    tier.freeHuge(base, FrameOwner::App);
    EXPECT_EQ(tier.ownerPages(FrameOwner::App), 0u);
    EXPECT_EQ(tier.usedPages(), 0u);
}

// ----------------------------------------------------------- TierParams

TEST(TierParams, DramDefaults)
{
    const TierParams p = makeDramParams(16 * kMiB);
    EXPECT_EQ(p.name, "DRAM");
    EXPECT_EQ(p.totalPages(), 16 * kMiB / kPageSize);
    EXPECT_EQ(p.internalGranularity, kLineSize);
}

TEST(TierParams, NvmSlowerThanDram)
{
    const TierParams dram = makeDramParams(kMiB);
    const TierParams nvm = makeNvmParams(kMiB);
    // The paper's cited measurements: ~3x random, ~2x sequential.
    const double random_ratio =
        static_cast<double>(nvm.loadLatencyRandom) /
        static_cast<double>(dram.loadLatencyRandom);
    const double seq_ratio = static_cast<double>(nvm.loadLatencySeq) /
                             static_cast<double>(dram.loadLatencySeq);
    EXPECT_NEAR(random_ratio, 3.0, 0.3);
    EXPECT_NEAR(seq_ratio, 2.0, 0.3);
    EXPECT_GT(nvm.writeServiceCycles, dram.writeServiceCycles);
    EXPECT_EQ(nvm.internalGranularity, 256u);
}

// ----------------------------------------------------------- TierDevice

TEST(TierDevice, UncontendedLatencyMatchesParams)
{
    const TierParams p = makeDramParams(kMiB);
    TierDevice dev(p);
    EXPECT_EQ(dev.access(0, MemOp::Load, false), p.loadLatencyRandom);
    // Far-future access: channels idle again.
    EXPECT_EQ(dev.access(100000, MemOp::Load, true), p.loadLatencySeq);
}

TEST(TierDevice, StoreLatencyVisible)
{
    const TierParams p = makeNvmParams(kMiB);
    TierDevice dev(p);
    EXPECT_EQ(dev.access(0, MemOp::Store, true), p.storeLatency);
}

TEST(TierDevice, QueuingDelaysBursts)
{
    TierParams p = makeDramParams(kMiB);
    p.channels = 1;
    p.readServiceCycles = 10;
    TierDevice dev(p);
    const Cycles first = dev.access(0, MemOp::Load, false);
    // Same-instant second access must wait one service slot.
    const Cycles second = dev.access(0, MemOp::Load, false);
    EXPECT_EQ(first, p.loadLatencyRandom);
    EXPECT_EQ(second, p.loadLatencyRandom + 10);
    EXPECT_EQ(dev.totalQueueCycles(), 10u);
}

TEST(TierDevice, MultipleChannelsAbsorbBursts)
{
    TierParams p = makeDramParams(kMiB);
    p.channels = 4;
    TierDevice dev(p);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(dev.access(0, MemOp::Load, false), p.loadLatencyRandom);
    // Fifth concurrent access queues.
    EXPECT_GT(dev.access(0, MemOp::Load, false), p.loadLatencyRandom);
}

TEST(TierDevice, WriteAmplificationOnRandomNvmStores)
{
    TierParams p = makeNvmParams(kMiB);
    p.channels = 1;
    TierDevice dev(p);
    // A random sub-granularity store occupies the channel for the full
    // 256 B internal block: 4x the 64 B service time.
    dev.access(0, MemOp::Store, false);
    const Cycles next = dev.access(0, MemOp::Load, false);
    EXPECT_EQ(next, p.loadLatencyRandom + 4 * p.writeServiceCycles);
}

TEST(TierDevice, NoAmplificationOnSequentialNvmStores)
{
    TierParams p = makeNvmParams(kMiB);
    p.channels = 1;
    TierDevice dev(p);
    dev.access(0, MemOp::Store, true);
    const Cycles next = dev.access(0, MemOp::Load, false);
    EXPECT_EQ(next, p.loadLatencyRandom + p.writeServiceCycles);
}

TEST(TierDevice, ResetClearsChannels)
{
    TierParams p = makeDramParams(kMiB);
    p.channels = 1;
    TierDevice dev(p);
    dev.access(0, MemOp::Load, false);
    dev.reset();
    EXPECT_EQ(dev.access(0, MemOp::Load, false), p.loadLatencyRandom);
}

TEST(TierDevice, CountsAccesses)
{
    TierDevice dev(makeDramParams(kMiB));
    dev.access(0, MemOp::Load, false);
    dev.access(0, MemOp::Store, false);
    EXPECT_EQ(dev.accessCount(), 2u);
}

// ----------------------------------------------------------- MemoryTier

TEST(MemoryTier, OwnerAccounting)
{
    MemoryTier tier(makeDramParams(64 * kPageSize));
    auto f1 = tier.allocate(FrameOwner::App);
    auto f2 = tier.allocate(FrameOwner::PageCache);
    ASSERT_TRUE(f1 && f2);
    EXPECT_EQ(tier.ownerPages(FrameOwner::App), 1u);
    EXPECT_EQ(tier.ownerPages(FrameOwner::PageCache), 1u);
    EXPECT_EQ(tier.usedPages(), 2u);
    tier.free(*f1, FrameOwner::App);
    EXPECT_EQ(tier.ownerPages(FrameOwner::App), 0u);
    EXPECT_EQ(tier.usedPages(), 1u);
}

TEST(MemoryTier, CapacityInPages)
{
    MemoryTier tier(makeNvmParams(16 * kPageSize));
    EXPECT_EQ(tier.totalPages(), 16u);
    EXPECT_EQ(tier.freePages(), 16u);
    for (int i = 0; i < 16; ++i)
        ASSERT_TRUE(tier.allocate(FrameOwner::App).has_value());
    EXPECT_FALSE(tier.allocate(FrameOwner::App).has_value());
    EXPECT_EQ(tier.usedBytes(), 16 * kPageSize);
}

// Parameterized sanity sweep: the device never returns a latency below
// its configured floor, at any utilization.
class TierDeviceLoad : public ::testing::TestWithParam<int>
{
};

TEST_P(TierDeviceLoad, LatencyNeverBelowDeviceFloor)
{
    TierParams p = makeNvmParams(kMiB);
    p.channels = GetParam();
    TierDevice dev(p);
    Cycles now = 0;
    for (int i = 0; i < 1000; ++i) {
        const Cycles lat = dev.access(now, MemOp::Load, false);
        EXPECT_GE(lat, p.loadLatencyRandom);
        now += 3;  // Heavy offered load.
    }
    // Queuing appears whenever the offered load exceeds capacity
    // (service/channels per cycle); 12 channels absorb this load.
    if (GetParam() <= 6) {
        EXPECT_GT(dev.totalQueueCycles(), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Channels, TierDeviceLoad,
                         ::testing::Values(1, 2, 6, 12));

// ----------------------------------------------------------- CopyEngine

TEST(CopyEngine, SingleWorkerReturnsLegacyCostVerbatim)
{
    CopyEngine ce(CopyEngineParams{1, 16});
    EXPECT_FALSE(ce.parallel());
    EXPECT_EQ(ce.copy(1000, kPageSize, 7000), 7000u);
    EXPECT_EQ(ce.copy(9999, 2 * kMiB, 123456), 123456u);
    EXPECT_EQ(ce.bytesCopied(), kPageSize + 2 * kMiB);
    EXPECT_EQ(ce.chargedCycles(), 7000u + 123456u);
    EXPECT_EQ(ce.parallelCopies(), 0u);
    EXPECT_EQ(ce.queuedChunks(), 0u);
}

TEST(CopyEngine, SingleWorkerBackgroundIsNoOp)
{
    // The legacy model never surfaced demotion copy time, so with one
    // worker background work must not move any counter.
    CopyEngine ce(CopyEngineParams{1, 16});
    ce.background(0, 2 * kMiB, 50000);
    EXPECT_EQ(ce.bytesCopied(), 0u);
    EXPECT_EQ(ce.busyCycles(), 0u);
    EXPECT_EQ(ce.chunks(), 0u);
}

TEST(CopyEngine, HugeCopyFansOutAcrossIdleWorkers)
{
    // 2 MiB on 4 workers: 32 chunks of 16 pages, each an exact 1/32
    // share of the legacy cost -> completion is exactly legacy/4.
    CopyEngine ce(CopyEngineParams{4, 16});
    EXPECT_TRUE(ce.parallel());
    const Cycles charged = ce.copy(0, 2 * kMiB, 32000);
    EXPECT_EQ(charged, 8000u);
    EXPECT_EQ(ce.chunks(), 32u);
    EXPECT_EQ(ce.parallelCopies(), 1u);
    // Workers stayed saturated: the whole legacy cost is busy time.
    EXPECT_EQ(ce.busyCycles(), 32000u);
}

TEST(CopyEngine, SmallExchangeShrinksChunksToReachTwoWorkers)
{
    // An 8 KiB exchange is far below the 64 KiB chunk default; the
    // engine halves the chunk towards page granularity so both page
    // copies still overlap on two workers.
    CopyEngine ce(CopyEngineParams{4, 16});
    const Cycles charged = ce.copy(0, 2 * kPageSize, 7000);
    EXPECT_EQ(charged, 3500u);
    EXPECT_EQ(ce.chunks(), 2u);
    EXPECT_EQ(ce.parallelCopies(), 1u);
}

TEST(CopyEngine, ProportionalSharesSumExactlyToLegacyCost)
{
    // Odd byte/cycle ratios must not leak rounding error: the chunk
    // shares are cumulative-boundary differences, so serialized on one
    // busy worker they recover the legacy total exactly.
    CopyEngine ce(CopyEngineParams{2, 1});
    const std::uint64_t bytes = 5 * kPageSize;  // 5 chunks on 2 workers.
    const Cycles legacy = 9999;
    ce.copy(0, bytes, legacy);
    EXPECT_EQ(ce.busyCycles(), legacy);
    EXPECT_EQ(ce.chunks(), 5u);
    EXPECT_GT(ce.queuedChunks(), 0u);  // 5 chunks > 2 workers.
}

TEST(CopyEngine, BackgroundOccupiesWorkersWithoutCharging)
{
    CopyEngine ce(CopyEngineParams{2, 16});
    ce.background(0, 2 * kMiB, 40000);
    EXPECT_EQ(ce.chargedCycles(), 0u);
    EXPECT_GT(ce.busyCycles(), 0u);
    // A foreground copy right behind it queues on the busy pool and
    // pays for the wait -- the copy/execution overlap is visible.
    const Cycles charged = ce.copy(0, 2 * kPageSize, 1000);
    EXPECT_GT(charged, 1000u);
    EXPECT_GT(ce.queuedChunks(), 0u);
}

TEST(CopyEngine, ScheduleIsDeterministic)
{
    CopyEngine a(CopyEngineParams{3, 4});
    CopyEngine b(CopyEngineParams{3, 4});
    for (int i = 0; i < 50; ++i) {
        const Cycles now = static_cast<Cycles>(i) * 777;
        const std::uint64_t bytes = (i % 7 + 1) * kPageSize;
        EXPECT_EQ(a.copy(now, bytes, 1000 + i),
                  b.copy(now, bytes, 1000 + i));
        if (i % 3 == 0) {
            a.background(now, 2 * kMiB, 9000);
            b.background(now, 2 * kMiB, 9000);
        }
    }
    EXPECT_EQ(a.chargedCycles(), b.chargedCycles());
    EXPECT_EQ(a.busyCycles(), b.busyCycles());
    EXPECT_EQ(a.queuedChunks(), b.queuedChunks());
    EXPECT_EQ(a.parallelCopies(), b.parallelCopies());
}

}  // namespace
}  // namespace memtier
